(* Tests for directory persistence, workload files and the what-if report. *)

module P = Xia_storage.Persist
module DS = Xia_storage.Doc_store
module Cat = Xia_index.Catalog
module W = Xia_workload.Workload
module Report = Xia_advisor.Report
module D = Xia_index.Index_def

let tc name f = Alcotest.test_case name `Quick f

let tmp_dir prefix =
  let dir = Filename.concat (Filename.get_temp_dir_name ()) (prefix ^ string_of_int (Random.int 1_000_000)) in
  Sys.mkdir dir 0o755;
  dir

let write_file dir name content =
  let oc = open_out (Filename.concat dir name) in
  output_string oc content;
  close_out oc

let persist_tests =
  [
    tc "save then load roundtrips documents" (fun () ->
        let store = DS.create "T" in
        ignore (DS.insert store (Helpers.xml "<a><b>1</b></a>"));
        ignore (DS.insert store (Helpers.xml {|<a id="7">x</a>|}));
        let dir = tmp_dir "xia_save" in
        P.save_directory store dir;
        let store2 = DS.create "T2" in
        let report = P.load_directory store2 dir in
        Alcotest.(check int) "loaded" 2 report.P.loaded;
        Alcotest.(check (list (pair string string))) "no failures" [] report.P.failed;
        Alcotest.(check int) "count" 2 (DS.doc_count store2);
        Alcotest.(check int) "elements" (DS.total_elements store) (DS.total_elements store2));
    tc "load skips non-xml files and reports bad xml" (fun () ->
        let dir = tmp_dir "xia_load" in
        write_file dir "good.xml" "<a/>";
        write_file dir "bad.xml" "<a><b></a>";
        write_file dir "notes.txt" "not xml";
        let store = DS.create "T" in
        let report = P.load_directory store dir in
        Alcotest.(check int) "loaded" 1 report.P.loaded;
        Alcotest.(check int) "failed" 1 (List.length report.P.failed);
        Alcotest.(check int) "count" 1 (DS.doc_count store));
    tc "load of missing directory raises" (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (P.load_directory (DS.create "T") "/nonexistent/dir/xyz");
             false
           with Invalid_argument _ -> true));
    tc "save creates nested directories" (fun () ->
        let store = DS.create "T" in
        ignore (DS.insert store (Helpers.xml "<a/>"));
        let dir =
          Filename.concat (tmp_dir "xia_nest") (Filename.concat "deep" "er")
        in
        P.save_directory store dir;
        Alcotest.(check bool) "exists" true (Sys.is_directory dir));
    tc "ids reproducible via filename order" (fun () ->
        let dir = tmp_dir "xia_order" in
        write_file dir "b.xml" "<b/>";
        write_file dir "a.xml" "<a/>";
        let store = DS.create "T" in
        ignore (P.load_directory store dir);
        match DS.find store 0 with
        | Some doc ->
            Alcotest.(check (option string)) "first is a.xml" (Some "a")
              (Xia_xml.Types.tag_of doc)
        | None -> Alcotest.fail "doc 0 missing");
  ]

let workload_file_tests =
  [
    tc "workload_lines parses frequencies and comments" (fun () ->
        let dir = tmp_dir "xia_wl" in
        write_file dir "wl.txt"
          "# comment\n\nfor $x in T/a return $x\n5.5|delete from T where /a\n";
        let lines = P.workload_lines (Filename.concat dir "wl.txt") in
        Alcotest.(check int) "two" 2 (List.length lines);
        (match lines with
        | [ (f1, _); (f2, s2) ] ->
            Alcotest.(check (float 0.001)) "default" 1.0 f1;
            Alcotest.(check (float 0.001)) "explicit" 5.5 f2;
            Alcotest.(check string) "text" "delete from T where /a" s2
        | _ -> Alcotest.fail "unexpected"));
    tc "Workload.of_file accepts both languages" (fun () ->
        let dir = tmp_dir "xia_wl2" in
        write_file dir "wl.txt"
          ("for $x in T/a where $x/k = \"v\" return $x\n"
         ^ "2.0|SELECT * FROM T WHERE XMLEXISTS('/a[k=\"v\"]')\n");
        let wl = W.of_file (Filename.concat dir "wl.txt") in
        Alcotest.(check int) "two" 2 (W.size wl);
        (* Both lines must expose the same indexable pattern. *)
        match List.map (fun (i : W.item) -> Xia_query.Rewriter.indexable_patterns i.W.statement) wl with
        | [ [ (_, p1, _) ]; [ (_, p2, _) ] ] ->
            Alcotest.(check string) "same" (Xia_xpath.Pattern.to_string p1)
              (Xia_xpath.Pattern.to_string p2)
        | _ -> Alcotest.fail "expected one pattern each");
    tc "of_file reports parse errors with line numbers" (fun () ->
        let dir = tmp_dir "xia_wl3" in
        write_file dir "wl.txt" "for $x in T/a return $x\nnot a statement\n";
        Alcotest.(check bool) "raises" true
          (try
             ignore (W.of_file (Filename.concat dir "wl.txt"));
             false
           with Invalid_argument msg -> String.length msg > 0));
  ]

let report_tests =
  [
    tc "what-if report on the TPoX fixture" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let wl = Xia_workload.Tpox.workload () in
        let defs =
          [
            D.make ~table:"SECURITY" ~pattern:(Helpers.pattern "/Security/Symbol")
              ~dtype:D.Dstring ();
            D.make ~table:"SECURITY" ~pattern:(Helpers.pattern "/Security/Name")
              ~dtype:D.Dstring ();
          ]
        in
        let r = Report.evaluate_configuration catalog wl defs in
        Alcotest.(check int) "statements" (W.size wl) (List.length r.Report.statements);
        Alcotest.(check bool) "speedup > 1" true (r.Report.est_speedup > 1.0);
        Alcotest.(check bool) "size positive" true (r.Report.total_size > 0);
        (* /Security/Name is never a predicate: must be reported unused. *)
        Alcotest.(check int) "one unused" 1 (List.length r.Report.unused);
        Alcotest.(check bool) "name is the unused one" true
          (match r.Report.unused with
          | [ d ] -> Xia_xpath.Pattern.to_string d.D.pattern = "/Security/Name"
          | _ -> false));
    tc "report maintenance positive with DML workload" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let wl = Xia_workload.Tpox.workload_with_updates ~update_freq:10.0 () in
        let defs =
          [
            D.make ~table:Xia_workload.Tpox.order_table
              ~pattern:(Helpers.pattern "/FIXML/Order/@ID") ~dtype:D.Dstring ();
          ]
        in
        let r = Report.evaluate_configuration catalog wl defs in
        Alcotest.(check bool) "charged" true (r.Report.maintenance > 0.0));
    tc "report renders" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let wl = Xia_workload.Workload.prefix 2 (Xia_workload.Tpox.workload ()) in
        let r = Report.evaluate_configuration catalog wl [] in
        let text = Fmt.str "%a" Report.pp r in
        Alcotest.(check bool) "mentions workload" true
          (String.length text > 40));
  ]

let suites =
  [
    ("persist.directory", persist_tests);
    ("persist.workload_file", workload_file_tests);
    ("report.whatif", report_tests);
  ]
