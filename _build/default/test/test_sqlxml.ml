(* Tests for the SQL/XML front end: both languages must produce identical
   statements (and therefore identical candidates). *)

module S = Xia_query.Sqlxml
module Q = Xia_query.Ast
module R = Xia_query.Rewriter

let tc name f = Alcotest.test_case name `Quick f

let parse = S.parse_statement_exn

let parser_tests =
  [
    tc "select star with xmlexists" (fun () ->
        match parse {|SELECT * FROM SECURITY WHERE XMLEXISTS('$d/Security[Symbol="X"]' PASSING SDOC AS "d")|} with
        | Q.Select { bindings = [ ("d", src) ]; where = []; return_ = [ Q.Ret_var "d" ] } ->
            Alcotest.(check string) "table" "SECURITY" src.Q.table;
            Alcotest.(check string) "column" "SDOC" src.Q.column;
            Alcotest.(check string) "path" {|/Security[Symbol="X"]|}
              (Xia_xpath.Printer.path_to_string src.Q.path)
        | _ -> Alcotest.fail "unexpected shape");
    tc "binding variable prefix optional" (fun () ->
        match parse {|SELECT * FROM T WHERE XMLEXISTS('/a[b>1]')|} with
        | Q.Select { bindings = [ (_, src) ]; _ } ->
            Alcotest.(check string) "path" "/a[b>1]"
              (Xia_xpath.Printer.path_to_string src.Q.path)
        | _ -> Alcotest.fail "unexpected shape");
    tc "keywords case-insensitive" (fun () ->
        ignore (parse {|select * from T where xmlexists('/a')|}));
    tc "xmlquery return path" (fun () ->
        match parse {|SELECT XMLQUERY('$d/Security/Name') FROM SECURITY WHERE XMLEXISTS('$d/Security[Yield>4.5]')|} with
        | Q.Select { return_ = [ Q.Ret_path ("d", rel) ]; _ } ->
            Alcotest.(check string) "rel" "Name" (Xia_xpath.Printer.relative_to_string rel)
        | _ -> Alcotest.fail "expected relative return");
    tc "insert with xmlparse" (fun () ->
        match parse {|INSERT INTO T VALUES (XMLPARSE('<a><b>1</b></a>'))|} with
        | Q.Insert { table = "T"; document } ->
            Alcotest.(check string) "doc" "<a><b>1</b></a>"
              (Xia_xml.Printer.to_string document)
        | _ -> Alcotest.fail "expected insert");
    tc "insert with bare string" (fun () ->
        match parse {|INSERT INTO T VALUES ('<a/>')|} with
        | Q.Insert _ -> ()
        | _ -> Alcotest.fail "expected insert");
    tc "sql string quote escaping" (fun () ->
        match parse {|SELECT * FROM T WHERE XMLEXISTS('/a[b="it''s"]')|} with
        | Q.Select { bindings = [ (_, src) ]; _ } ->
            Alcotest.(check string) "path" {|/a[b="it's"]|}
              (Xia_xpath.Printer.path_to_string src.Q.path)
        | _ -> Alcotest.fail "unexpected shape");
    tc "delete" (fun () ->
        match parse {|DELETE FROM T WHERE XMLEXISTS('/a[k="v"]')|} with
        | Q.Delete { table = "T"; selector } ->
            Alcotest.(check string) "sel" {|/a[k="v"]|}
              (Xia_xpath.Printer.path_to_string selector)
        | _ -> Alcotest.fail "expected delete");
    tc "update with xmlpath" (fun () ->
        match parse {|UPDATE T SET XMLPATH '/a/b' = '9' WHERE XMLEXISTS('/a[c=1]')|} with
        | Q.Update { target; new_value = "9"; _ } ->
            Alcotest.(check string) "target" "/a/b"
              (Xia_xpath.Printer.path_to_string target)
        | _ -> Alcotest.fail "expected update");
    tc "rejects garbage" (fun () ->
        Alcotest.(check bool) "err" true (Result.is_error (S.parse_statement "DROP TABLE x")));
    tc "rejects trailing content" (fun () ->
        Alcotest.(check bool) "err" true
          (Result.is_error (S.parse_statement {|SELECT * FROM T WHERE XMLEXISTS('/a') junk|})));
  ]

let equivalence_tests =
  [
    tc "paper Q1 in both languages exposes identical candidates" (fun () ->
        let xq =
          Helpers.statement
            {|for $sec in SECURITY('SDOC')/Security where $sec/Symbol = "BCIIPRC" return $sec|}
        in
        let sql =
          parse
            {|SELECT * FROM SECURITY WHERE XMLEXISTS('$d/Security[Symbol="BCIIPRC"]' PASSING SDOC AS "d")|}
        in
        let pats s =
          List.map
            (fun (t, p, d) ->
              (t, Xia_xpath.Pattern.to_string p, Xia_index.Index_def.data_type_to_string d))
            (R.indexable_patterns s)
        in
        Alcotest.(check (list (triple string string string))) "same candidates"
          (pats xq) (pats sql));
    tc "both languages get the same plan and cost" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let xq =
          Helpers.statement
            {|for $s in SECURITY('SDOC')/Security[Yield>4.5] return $s|}
        in
        let sql = parse {|SELECT * FROM SECURITY WHERE XMLEXISTS('$d/Security[Yield>4.5]')|} in
        let cost s = Xia_optimizer.Optimizer.statement_cost catalog s in
        Alcotest.(check (float 0.0001)) "same cost" (cost xq) (cost sql));
    tc "parse_any dispatches correctly" (fun () ->
        (match S.parse_any "for $x in T/a return $x" with
        | Ok (`Xquery _) -> ()
        | _ -> Alcotest.fail "expected xquery");
        (match S.parse_any {|SELECT * FROM T WHERE XMLEXISTS('/a')|} with
        | Ok (`Sqlxml _) -> ()
        | _ -> Alcotest.fail "expected sqlxml");
        (match S.parse_any "insert into T <a/>" with
        | Ok (`Xquery _) -> ()
        | _ -> Alcotest.fail "expected xquery insert");
        (match S.parse_any {|INSERT INTO T VALUES ('<a/>')|} with
        | Ok (`Sqlxml _) -> ()
        | _ -> Alcotest.fail "expected sqlxml insert"));
  ]

let suites =
  [ ("sqlxml.parser", parser_tests); ("sqlxml.equivalence", equivalence_tests) ]
