(* Tests for physical execution: index plans must return exactly what a full
   scan returns, and DML must mutate the store correctly. *)

module E = Xia_optimizer.Executor
module O = Xia_optimizer.Optimizer
module Cat = Xia_index.Catalog
module D = Xia_index.Index_def
module DS = Xia_storage.Doc_store

let tc name f = Alcotest.test_case name `Quick f

(* 400 docs; a key equality selects 10, so index plans actually win. *)
let small_catalog () =
  let catalog = Cat.create () in
  let store = DS.create "T" in
  for i = 0 to 399 do
    ignore
      (DS.insert store
         (Helpers.xml (Printf.sprintf "<a><k>K%02d</k><v>%d</v></a>" (i mod 40) i)))
  done;
  ignore (Cat.add_table catalog store);
  ignore (Cat.runstats catalog "T");
  catalog

let def ?(dtype = D.Dstring) p = D.make ~table:"T" ~pattern:(Helpers.pattern p) ~dtype ()

let rows catalog stmt = (E.run_statement catalog (Helpers.statement stmt)).E.rows

let correctness_tests =
  [
    tc "docscan counts bound nodes" (fun () ->
        let catalog = small_catalog () in
        Alcotest.(check int) "all" 400 (rows catalog "for $x in T/a return $x");
        Alcotest.(check int) "filtered" 10 (rows catalog {|for $x in T/a where $x/k = "K02" return $x|}));
    tc "index scan returns same rows as docscan" (fun () ->
        let catalog = small_catalog () in
        let q = {|for $x in T/a where $x/k = "K02" return $x|} in
        let before = rows catalog q in
        ignore (Cat.create_index catalog (def "/a/k"));
        let r = E.run_statement catalog (Helpers.statement q) in
        Alcotest.(check int) "same rows" before r.E.rows;
        Alcotest.(check bool) "used index" true (r.E.metrics.E.docs_fetched > 0);
        Alcotest.(check int) "no scan" 0 r.E.metrics.E.docs_scanned);
    tc "general index also returns correct rows" (fun () ->
        let catalog = small_catalog () in
        let q = {|for $x in T/a where $x/k = "K02" return $x|} in
        let before = rows catalog q in
        ignore (Cat.create_index catalog (def "/a//*"));
        Alcotest.(check int) "same" before (rows catalog q));
    tc "numeric range via index" (fun () ->
        let catalog = small_catalog () in
        let q = "for $x in T/a where $x/v >= 395 return $x" in
        let before = rows catalog q in
        Alcotest.(check int) "five" 5 before;
        ignore (Cat.create_index catalog (def ~dtype:D.Ddouble "/a/v"));
        Alcotest.(check int) "same" before (rows catalog q));
    tc "index anding returns intersection" (fun () ->
        let catalog = small_catalog () in
        let q = {|for $x in T/a where $x/k = "K02" and $x/v > 200 return $x|} in
        let before = rows catalog q in
        ignore (Cat.create_index catalog (def "/a/k"));
        ignore (Cat.create_index catalog (def ~dtype:D.Ddouble "/a/v"));
        Alcotest.(check int) "same" before (rows catalog q));
    tc "ne condition via index" (fun () ->
        let catalog = small_catalog () in
        let q = {|for $x in T/a where $x/k != "K02" return $x|} in
        let before = rows catalog q in
        Alcotest.(check int) "rest" 390 before;
        ignore (Cat.create_index catalog (def "/a/k"));
        Alcotest.(check int) "same" before (rows catalog q));
    tc "multi-binding product semantics" (fun () ->
        let catalog = small_catalog () in
        Alcotest.(check int) "10*5" 50
          (rows catalog {|for $x in T/a, $y in T/a where $x/k = "K02" and $y/v >= 395 return $x|}));
    tc "virtual-only plan falls back to scan" (fun () ->
        let catalog = small_catalog () in
        Cat.set_virtual_indexes catalog [ def "/a/k" ];
        let plan =
          O.optimize ~mode:O.Evaluate catalog
            (Helpers.statement {|for $x in T/a where $x/k = "K02" return $x|})
        in
        let r = E.run_plan catalog plan in
        Cat.clear_virtual_indexes catalog;
        Alcotest.(check int) "rows" 10 r.E.rows;
        Alcotest.(check bool) "scanned" true (r.E.metrics.E.docs_scanned > 0));
  ]

let dml_tests =
  [
    tc "insert adds a document" (fun () ->
        let catalog = small_catalog () in
        let n0 = DS.doc_count (Cat.store catalog "T") in
        Alcotest.(check int) "one row" 1
          (rows catalog "insert into T <a><k>K9</k><v>100</v></a>");
        Alcotest.(check int) "count" (n0 + 1) (DS.doc_count (Cat.store catalog "T")));
    tc "delete removes matching documents" (fun () ->
        let catalog = small_catalog () in
        Alcotest.(check int) "ten deleted" 10 (rows catalog {|delete from T where /a[k="K02"]|});
        Alcotest.(check int) "rest left" 390 (DS.doc_count (Cat.store catalog "T"));
        Alcotest.(check int) "none match" 0 (rows catalog {|for $x in T/a where $x/k = "K02" return $x|}));
    tc "delete via index same effect" (fun () ->
        let c1 = small_catalog () in
        let c2 = small_catalog () in
        ignore (Cat.create_index c2 (def "/a/k"));
        Alcotest.(check int) "same" (rows c1 {|delete from T where /a[k="K02"]|})
          (rows c2 {|delete from T where /a[k="K02"]|}));
    tc "update rewrites values" (fun () ->
        let catalog = small_catalog () in
        Alcotest.(check int) "updated" 10
          (rows catalog {|update T set /a/v = "999" where /a[k="K02"]|});
        Alcotest.(check int) "now match" 10
          (rows catalog "for $x in T/a where $x/v = 999 return $x"));
    tc "stale index refreshed before next query" (fun () ->
        let catalog = small_catalog () in
        ignore (Cat.create_index catalog (def "/a/k"));
        ignore (rows catalog "insert into T <a><k>K02</k><v>777</v></a>");
        Alcotest.(check int) "eleven" 11 (rows catalog {|for $x in T/a where $x/k = "K02" return $x|}));
    tc "set_value replaces direct text only" (fun () ->
        let doc = Helpers.xml "<a><b>old<c>keep</c></b></a>" in
        let doc' = E.set_value doc (Helpers.xpath "/a/b") "new" in
        Alcotest.(check string) "rewritten" "<a><b>new<c>keep</c></b></a>"
          (Xia_xml.Printer.to_string doc'));
  ]

(* Property: for random synthetic queries, the indexed run always returns the
   same row count as the unindexed run. *)
let property_tests =
  [
    QCheck.Test.make ~count:30 ~name:"indexed execution agrees with scans"
      QCheck.(int_range 0 10_000)
      (fun seed ->
        let catalog = Helpers.fresh_tiny_catalog () in
        let tables = Cat.table_names catalog in
        let wl = Xia_workload.Synthetic.workload ~seed catalog tables 3 in
        let before =
          List.map
            (fun (i : Xia_workload.Workload.item) ->
              (E.run_statement catalog i.statement).E.rows)
            wl
        in
        (* Index every enumerated pattern and re-run. *)
        List.iter
          (fun (i : Xia_workload.Workload.item) ->
            List.iter
              (fun (table, pattern, dtype) ->
                let d = D.make ~table ~pattern ~dtype () in
                try ignore (Cat.create_index catalog d) with Invalid_argument _ -> ())
              (O.enumerate_indexes catalog i.statement))
          wl;
        let after =
          List.map
            (fun (i : Xia_workload.Workload.item) ->
              (E.run_statement catalog i.statement).E.rows)
            wl
        in
        before = after);
  ]

let suites =
  [
    ("executor.correctness", correctness_tests);
    ("executor.dml", dml_tests);
    Helpers.qsuite "executor.properties" property_tests;
  ]
