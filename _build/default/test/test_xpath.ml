(* Tests for the XPath AST, parser, printer and evaluator. *)

module A = Xia_xpath.Ast
module P = Xia_xpath.Parser
module Pr = Xia_xpath.Printer
module E = Xia_xpath.Eval

let tc name f = Alcotest.test_case name `Quick f
let check = Alcotest.check

let roundtrip s = Pr.path_to_string (Helpers.xpath s)

let parser_tests =
  [
    tc "simple path" (fun () ->
        check Alcotest.string "rt" "/Security/Yield" (roundtrip "/Security/Yield"));
    tc "descendant axis" (fun () ->
        check Alcotest.string "rt" "//Yield" (roundtrip "//Yield"));
    tc "mixed axes" (fun () ->
        check Alcotest.string "rt" "/a//b/c" (roundtrip "/a//b/c"));
    tc "wildcard" (fun () ->
        check Alcotest.string "rt" "/Security/SecInfo/*/Sector"
          (roundtrip "/Security/SecInfo/*/Sector"));
    tc "attribute step" (fun () ->
        check Alcotest.string "rt" "/Order/@ID" (roundtrip "/Order/@ID"));
    tc "attribute wildcard" (fun () ->
        check Alcotest.string "rt" "/Order/@*" (roundtrip "/Order/@*"));
    tc "descendant wildcard" (fun () ->
        check Alcotest.string "rt" "/Security//*" (roundtrip "/Security//*"));
    tc "numeric predicate" (fun () ->
        check Alcotest.string "rt" "/Security[Yield>4.5]" (roundtrip "/Security[Yield>4.5]"));
    tc "string predicate" (fun () ->
        check Alcotest.string "rt" {|/Security[Symbol="BCIIPRC"]|}
          (roundtrip {|/Security[Symbol="BCIIPRC"]|}));
    tc "single-quoted literal" (fun () ->
        check Alcotest.string "rt" {|/a[b="x"]|} (roundtrip "/a[b='x']"));
    tc "existence predicate" (fun () ->
        check Alcotest.string "rt" "/a[b/c]" (roundtrip "/a[b/c]"));
    tc "self comparison" (fun () ->
        check Alcotest.string "rt" "/a/b[.>=3]" (roundtrip "/a/b[. >= 3]"));
    tc "relative path in predicate" (fun () ->
        check Alcotest.string "rt" {|/Security[SecInfo/*/Sector="Energy"]/Name|}
          (roundtrip {|/Security[SecInfo/*/Sector="Energy"]/Name|}));
    tc "multiple predicates on one step" (fun () ->
        check Alcotest.string "rt" "/a[b][c>1]" (roundtrip "/a[b][c > 1]"));
    tc "negative number literal" (fun () ->
        check Alcotest.string "rt" "/a[b<-2.5]" (roundtrip "/a[b < -2.5]"));
    tc "not-equal operator" (fun () ->
        check Alcotest.string "rt" {|/a[b!="x"]|} (roundtrip {|/a[b != "x"]|}));
    tc "all comparison operators" (fun () ->
        List.iter
          (fun op -> ignore (Helpers.xpath (Printf.sprintf "/a[b%s1]" op)))
          [ "="; "!="; "<"; "<="; ">"; ">=" ]);
    tc "relative parse" (fun () ->
        let p = P.parse_relative_exn "SecInfo/*/Sector" in
        check Alcotest.string "rt" "SecInfo/*/Sector" (Pr.relative_to_string p));
    tc "relative with descendant" (fun () ->
        let p = P.parse_relative_exn "a//b" in
        check Alcotest.string "rt" "a//b" (Pr.relative_to_string p));
    tc "prefix parsing stops at foreign char" (fun () ->
        match P.parse_prefix "/a/b = 3" ~pos:0 with
        | Ok (p, stop) ->
            check Alcotest.string "path" "/a/b" (Pr.path_to_string p);
            check Alcotest.int "pos" 4 stop
        | Error _ -> Alcotest.fail "prefix parse failed");
    tc "rejects empty" (fun () ->
        Alcotest.(check bool) "err" true (Result.is_error (P.parse "")));
    tc "rejects relative in absolute position" (fun () ->
        Alcotest.(check bool) "err" true (Result.is_error (P.parse "a/b")));
    tc "rejects unterminated predicate" (fun () ->
        Alcotest.(check bool) "err" true (Result.is_error (P.parse "/a[b")));
    tc "rejects trailing slash" (fun () ->
        Alcotest.(check bool) "err" true (Result.is_error (P.parse "/a/")));
  ]

let ast_tests =
  [
    tc "strip_predicates removes all" (fun () ->
        let p = Helpers.xpath {|/a[b>1]/c[d="x"]|} in
        Alcotest.(check bool) "has preds" true (A.has_predicates p);
        let s = A.strip_predicates p in
        Alcotest.(check bool) "no preds" false (A.has_predicates s);
        check Alcotest.string "shape" "/a/c" (Pr.path_to_string s));
    tc "flip_cmp is involutive" (fun () ->
        List.iter
          (fun c -> Alcotest.(check bool) "inv" true (A.flip_cmp (A.flip_cmp c) = c))
          [ A.Eq; A.Ne; A.Lt; A.Le; A.Gt; A.Ge ]);
    tc "literal_matches numeric coercion" (fun () ->
        Alcotest.(check bool) "gt" true (A.literal_matches "4.7" A.Gt (A.Number_lit 4.5));
        Alcotest.(check bool) "not gt" false (A.literal_matches "4.2" A.Gt (A.Number_lit 4.5));
        Alcotest.(check bool) "trim" true (A.literal_matches " 42 " A.Eq (A.Number_lit 42.0));
        Alcotest.(check bool) "non-numeric" false
          (A.literal_matches "abc" A.Gt (A.Number_lit 0.0)));
    tc "literal_matches string compare" (fun () ->
        Alcotest.(check bool) "eq" true (A.literal_matches "Energy" A.Eq (A.String_lit "Energy"));
        Alcotest.(check bool) "lt" true (A.literal_matches "Apple" A.Lt (A.String_lit "Banana")));
    tc "equal_path distinguishes axes" (fun () ->
        Alcotest.(check bool) "neq" false
          (A.equal_path (Helpers.xpath "/a/b") (Helpers.xpath "/a//b")));
  ]

let eval_on doc path = E.eval_doc (Helpers.xml doc) (Helpers.xpath path)

let values matches = List.map (fun (m : E.match_) -> m.E.value) matches

let eval_tests =
  [
    tc "root match" (fun () ->
        Alcotest.(check int) "n" 1 (List.length (eval_on "<a>x</a>" "/a")));
    tc "root mismatch" (fun () ->
        Alcotest.(check int) "n" 0 (List.length (eval_on "<a>x</a>" "/b")));
    tc "child navigation" (fun () ->
        check (Alcotest.list Alcotest.string) "vals" [ "1"; "2" ]
          (values (eval_on "<a><b>1</b><b>2</b><c>3</c></a>" "/a/b")));
    tc "descendant finds deep nodes" (fun () ->
        check (Alcotest.list Alcotest.string) "vals" [ "1"; "2" ]
          (values (eval_on "<a><b>1</b><c><b>2</b></c></a>" "//b")));
    tc "descendant of root includes root" (fun () ->
        Alcotest.(check int) "n" 1 (List.length (eval_on "<a>x</a>" "//a")));
    tc "wildcard step" (fun () ->
        check (Alcotest.list Alcotest.string) "vals" [ "1"; "2" ]
          (values (eval_on "<a><b><s>1</s></b><c><s>2</s></c></a>" "/a/*/s")));
    tc "attribute step" (fun () ->
        check (Alcotest.list Alcotest.string) "vals" [ "7" ]
          (values (eval_on {|<a id="7"><b id="8"/></a>|} "/a/@id")));
    tc "descendant attribute includes self" (fun () ->
        check (Alcotest.list Alcotest.string) "vals" [ "7"; "8" ]
          (values (eval_on {|<a id="7"><b id="8"/></a>|} "//@id")));
    tc "attribute wildcard" (fun () ->
        check (Alcotest.list Alcotest.string) "vals" [ "1"; "2" ]
          (values (eval_on {|<a x="1" y="2"/>|} "/a/@*")));
    tc "no navigation through attributes" (fun () ->
        Alcotest.(check int) "n" 0 (List.length (eval_on {|<a id="7"/>|} "/a/@id/b")));
    tc "numeric predicate filters" (fun () ->
        check (Alcotest.list Alcotest.string) "vals" [ "5" ]
          (values (eval_on "<r><a><v>5</v></a><a><v>3</v></a></r>" "/r/a[v>4]/v")));
    tc "string predicate filters" (fun () ->
        Alcotest.(check int) "n" 1
          (List.length (eval_on "<r><a><s>x</s></a><a><s>y</s></a></r>" {|/r/a[s="x"]|})));
    tc "existence predicate" (fun () ->
        Alcotest.(check int) "n" 1
          (List.length (eval_on "<r><a><b/></a><a/></r>" "/r/a[b]")));
    tc "self-comparison predicate" (fun () ->
        check (Alcotest.list Alcotest.string) "vals" [ "9" ]
          (values (eval_on "<r><v>9</v><v>2</v></r>" "/r/v[.>5]")));
    tc "paper example Q2 pattern" (fun () ->
        check (Alcotest.list Alcotest.string) "vals" [ "Energy" ]
          (values
             (E.eval_doc Helpers.security_doc
                (Helpers.xpath "/Security[Yield>4.5]/SecInfo/*/Sector"))));
    tc "predicate on mid path with descendant" (fun () ->
        Alcotest.(check int) "n" 1
          (List.length
             (eval_on "<r><a><k>1</k><deep><t/></deep></a><a><k>0</k></a></r>"
                "/r/a[k=1]//t")));
    tc "duplicates removed under //" (fun () ->
        (* Both /r/a and /r//a reach the same node exactly once. *)
        Alcotest.(check int) "n" 1
          (List.length (eval_on "<r><a><a/></a></r>" "/r/a/a")));
    tc "document order maintained" (fun () ->
        check (Alcotest.list Alcotest.string) "vals" [ "1"; "2"; "3" ]
          (values (eval_on "<r><x>1</x><y><x>2</x></y><x>3</x></r>" "//x")));
    tc "eval_elements drops attributes" (fun () ->
        let root = E.annotate (Helpers.xml {|<a id="1"><b/></a>|}) in
        Alcotest.(check int) "n" 0 (List.length (E.eval_elements root (Helpers.xpath "/a/@id")));
        Alcotest.(check int) "n" 1 (List.length (E.eval_elements root (Helpers.xpath "/a/b"))));
    tc "eval_relative" (fun () ->
        let root = E.annotate Helpers.security_doc in
        let rel = P.parse_relative_exn "SecInfo/*/Sector" in
        check (Alcotest.list Alcotest.string) "vals" [ "Energy" ]
          (List.map (fun (m : E.match_) -> m.E.value) (E.eval_relative root rel)));
    tc "predicate_holds_on" (fun () ->
        let root = E.annotate Helpers.security_doc in
        let pred =
          A.Compare (P.parse_relative_exn "Yield", A.Gt, A.Number_lit 4.5)
        in
        Alcotest.(check bool) "holds" true (E.predicate_holds_on root pred));
    tc "annotate rejects text root" (fun () ->
        Alcotest.check_raises "invalid" (Invalid_argument "Eval.annotate: document root is a text node")
          (fun () -> ignore (E.annotate (Xia_xml.Types.text "x"))));
  ]

let properties =
  [
    QCheck.Test.make ~count:200 ~name:"//* returns every element" Helpers.doc_arbitrary
      (fun doc ->
        List.length (E.eval_doc doc (Helpers.xpath "//*"))
        = Xia_xml.Types.count_elements doc);
    QCheck.Test.make ~count:200 ~name:"eval results are distinct node ids"
      Helpers.doc_arbitrary (fun doc ->
        let ms = E.eval_doc doc (Helpers.xpath "//*") in
        let ids = List.map (fun (m : E.match_) -> (m.E.id.pre, m.E.id.attr)) ms in
        List.length ids = List.length (List.sort_uniq compare ids));
    QCheck.Test.make ~count:200 ~name:"/a subset of //a" Helpers.doc_arbitrary
      (fun doc ->
        let direct = E.eval_doc doc (Helpers.xpath "/a") in
        let deep = E.eval_doc doc (Helpers.xpath "//a") in
        List.for_all
          (fun (m : E.match_) ->
            List.exists
              (fun (m' : E.match_) -> Xia_xml.Types.equal_node_id m.E.id m'.E.id)
              deep)
          direct);
  ]

let suites =
  [
    ("xpath.parser", parser_tests);
    ("xpath.ast", ast_tests);
    ("xpath.eval", eval_tests);
    Helpers.qsuite "xpath.properties" properties;
  ]
