test/test_optimizer.ml: Alcotest Float Helpers List Printf Xia_index Xia_optimizer Xia_query Xia_storage Xia_xpath
