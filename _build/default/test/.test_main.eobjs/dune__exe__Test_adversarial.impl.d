test/test_adversarial.ml: Alcotest Helpers Lazy List Printf String Sys Xia_advisor Xia_workload Xia_xml Xia_xpath
