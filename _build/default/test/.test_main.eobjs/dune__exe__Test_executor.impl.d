test/test_executor.ml: Alcotest Helpers List Printf QCheck Xia_index Xia_optimizer Xia_storage Xia_workload Xia_xml
