test/test_workload.ml: Alcotest Helpers Lazy List Option Random String Xia_advisor Xia_index Xia_query Xia_storage Xia_workload Xia_xml Xia_xpath
