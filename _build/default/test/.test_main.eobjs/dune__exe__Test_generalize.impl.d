test/test_generalize.ml: Alcotest Helpers List Option QCheck String Xia_advisor Xia_index Xia_xpath
