test/test_histogram.ml: Alcotest Float Fun Helpers List Option Printf Xia_index Xia_optimizer Xia_query Xia_storage Xia_xpath
