test/test_query.ml: Alcotest Helpers List Result Xia_index Xia_query Xia_xml Xia_xpath
