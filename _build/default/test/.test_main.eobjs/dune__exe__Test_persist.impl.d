test/test_persist.ml: Alcotest Filename Fmt Helpers Lazy List Random String Sys Xia_advisor Xia_index Xia_query Xia_storage Xia_workload Xia_xml Xia_xpath
