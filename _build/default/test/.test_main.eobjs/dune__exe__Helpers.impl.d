test/helpers.ml: List Option QCheck QCheck_alcotest String Xia_index Xia_query Xia_workload Xia_xml Xia_xpath
