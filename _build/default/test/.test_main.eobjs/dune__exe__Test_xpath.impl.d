test/test_xpath.ml: Alcotest Helpers List Printf QCheck Result Xia_xml Xia_xpath
