test/test_sqlxml.ml: Alcotest Helpers Lazy List Result Xia_index Xia_optimizer Xia_query Xia_xml Xia_xpath
