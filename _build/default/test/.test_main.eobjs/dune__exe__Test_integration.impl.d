test/test_integration.ml: Alcotest Array Float Hashtbl Helpers Lazy List Printf QCheck Random String Xia_advisor Xia_index Xia_optimizer Xia_query Xia_workload Xia_xpath
