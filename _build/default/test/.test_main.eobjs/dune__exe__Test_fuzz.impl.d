test/test_fuzz.ml: Char Helpers Printf QCheck String Xia_query Xia_xml Xia_xpath
