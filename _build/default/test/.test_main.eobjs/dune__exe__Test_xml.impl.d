test/test_xml.ml: Alcotest Helpers List QCheck String Xia_xml
