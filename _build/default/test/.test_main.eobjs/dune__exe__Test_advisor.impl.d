test/test_advisor.ml: Alcotest Helpers Lazy List Option Printf String Xia_advisor Xia_index Xia_optimizer Xia_workload Xia_xpath
