test/test_storage.ml: Alcotest Helpers List QCheck Xia_storage Xia_xml
