test/test_pattern.ml: Alcotest Helpers List QCheck Result Xia_xml Xia_xpath
