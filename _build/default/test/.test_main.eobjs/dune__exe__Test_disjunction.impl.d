test/test_disjunction.ml: Alcotest Helpers List Printf Result Xia_advisor Xia_index Xia_optimizer Xia_query Xia_storage Xia_workload Xia_xpath
