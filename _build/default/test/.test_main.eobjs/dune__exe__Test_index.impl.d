test/test_index.ml: Alcotest Helpers List Option Printf QCheck Random Xia_index Xia_storage
