(* Tests for the workload abstractions and the benchmark generators. *)

module W = Xia_workload.Workload
module Tpox = Xia_workload.Tpox
module Xmark = Xia_workload.Xmark
module Syn = Xia_workload.Synthetic
module Cat = Xia_index.Catalog
module DS = Xia_storage.Doc_store

let tc name f = Alcotest.test_case name `Quick f

let workload_tests =
  [
    tc "of_strings labels sequentially" (fun () ->
        let w = W.of_strings [ "for $x in T/a return $x"; "insert into T <a/>" ] in
        Alcotest.(check (list string)) "labels" [ "S1"; "S2" ] (W.labels w));
    tc "queries/dml partition" (fun () ->
        let w = W.of_strings [ "for $x in T/a return $x"; "insert into T <a/>" ] in
        Alcotest.(check int) "queries" 1 (W.size (W.queries w));
        Alcotest.(check int) "dml" 1 (W.size (W.dml w)));
    tc "prefix" (fun () ->
        let w = W.of_strings [ "for $x in T/a return $x"; "insert into T <a/>" ] in
        Alcotest.(check int) "one" 1 (W.size (W.prefix 1 w));
        Alcotest.(check int) "zero" 0 (W.size (W.prefix 0 w));
        Alcotest.(check int) "over" 2 (W.size (W.prefix 10 w)));
    tc "total_frequency" (fun () ->
        let w =
          [ W.item ~freq:2.0 "a" (Helpers.statement "for $x in T/a return $x");
            W.item ~freq:3.5 "b" (Helpers.statement "for $x in T/a return $x") ]
        in
        Alcotest.(check (float 0.001)) "sum" 5.5 (W.total_frequency w));
    tc "find_opt" (fun () ->
        let w = W.of_strings [ "for $x in T/a return $x" ] in
        Alcotest.(check bool) "found" true (W.find_opt w "S1" <> None);
        Alcotest.(check bool) "missing" true (W.find_opt w "S9" = None));
  ]

let tpox_tests =
  [
    tc "generator is deterministic for a seed" (fun () ->
        let rng1 = Random.State.make [| 5 |] and rng2 = Random.State.make [| 5 |] in
        Alcotest.(check string) "same"
          (Xia_xml.Printer.to_string (Tpox.security rng1 3))
          (Xia_xml.Printer.to_string (Tpox.security rng2 3)));
    tc "security docs contain the paper's paths" (fun () ->
        let rng = Random.State.make [| 1 |] in
        (* bonds/funds always carry Yield; scan a few to find one *)
        let docs = List.init 20 (fun i -> Tpox.security rng i) in
        Alcotest.(check bool) "symbol" true
          (List.for_all (fun d -> Xia_xpath.Eval.exists_doc d (Helpers.xpath "/Security/Symbol")) docs);
        Alcotest.(check bool) "sector via wildcard" true
          (List.for_all
             (fun d -> Xia_xpath.Eval.exists_doc d (Helpers.xpath "/Security/SecInfo/*/Sector"))
             docs);
        Alcotest.(check bool) "some yield" true
          (List.exists (fun d -> Xia_xpath.Eval.exists_doc d (Helpers.xpath "/Security/Yield")) docs));
    tc "customer and order shapes" (fun () ->
        let rng = Random.State.make [| 2 |] in
        let c = Tpox.customer rng 7 in
        Alcotest.(check bool) "balance path" true
          (Xia_xpath.Eval.exists_doc c
             (Helpers.xpath "/Customer/Accounts/Account/Balance/OnlineActualBal"));
        let o = Tpox.order rng 3 ~n_securities:10 ~n_customers:10 in
        Alcotest.(check bool) "order id" true
          (Xia_xpath.Eval.exists_doc o (Helpers.xpath "/FIXML/Order/@ID")));
    tc "load creates three tables with stats" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        Alcotest.(check (list string)) "tables"
          [ Tpox.custacc_table; Tpox.security_table; Tpox.order_table ]
          (Cat.table_names catalog);
        Alcotest.(check int) "securities" Tpox.tiny_scale.Tpox.securities
          (DS.doc_count (Cat.store catalog Tpox.security_table)));
    tc "eleven queries, all parseable" (fun () ->
        Alcotest.(check int) "eleven" 11 (W.size (Tpox.queries ())));
    tc "dml statements parse" (fun () ->
        Alcotest.(check int) "four" 4 (W.size (Tpox.dml ()));
        Alcotest.(check bool) "all dml" true
          (List.for_all (fun (i : W.item) -> Xia_query.Ast.is_dml i.W.statement) (Tpox.dml ())));
    tc "workload_with_updates applies frequency" (fun () ->
        let w = Tpox.workload_with_updates ~update_freq:7.0 () in
        let u = Option.get (W.find_opt w "U1") in
        Alcotest.(check (float 0.001)) "freq" 7.0 u.W.freq);
  ]

let xmark_tests =
  [
    tc "xmark load and stats" (fun () ->
        let catalog = Cat.create () in
        Xmark.load ~scale:Xmark.tiny_scale catalog;
        Alcotest.(check int) "items" Xmark.tiny_scale.Xmark.items
          (DS.doc_count (Cat.store catalog Xmark.item_table)));
    tc "xmark queries parse and expose candidates" (fun () ->
        let catalog = Cat.create () in
        Xmark.load ~scale:Xmark.tiny_scale catalog;
        let wl = Xmark.workload () in
        Alcotest.(check int) "eight" 8 (W.size wl);
        let set = Xia_advisor.Enumeration.candidates catalog wl in
        Alcotest.(check bool) "candidates" true
          (Xia_advisor.Candidate.cardinality set > 5));
    tc "person profile income is an attribute path" (fun () ->
        let rng = Random.State.make [| 3 |] in
        let found = ref false in
        for i = 0 to 19 do
          if Xia_xpath.Eval.exists_doc (Xmark.person rng i) (Helpers.xpath "/person/profile/@income")
          then found := true
        done;
        Alcotest.(check bool) "found" true !found);
  ]

let synthetic_tests =
  [
    tc "synthetic workload has requested size" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let wl = Syn.workload catalog (Cat.table_names catalog) 12 in
        Alcotest.(check int) "twelve" 12 (W.size wl));
    tc "synthetic is deterministic per seed" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let str wl =
          String.concat "\n"
            (List.map
               (fun (i : W.item) -> Xia_query.Printer.statement_to_string i.W.statement)
               wl)
        in
        let a = Syn.workload ~seed:11 catalog (Cat.table_names catalog) 8 in
        let b = Syn.workload ~seed:11 catalog (Cat.table_names catalog) 8 in
        let c = Syn.workload ~seed:12 catalog (Cat.table_names catalog) 8 in
        Alcotest.(check string) "same" (str a) (str b);
        Alcotest.(check bool) "different" true (str a <> str c));
    tc "synthetic queries expose indexable patterns" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let wl = Syn.workload catalog (Cat.table_names catalog) 10 in
        List.iter
          (fun (i : W.item) ->
            Alcotest.(check bool) i.W.label true
              (List.length (Xia_query.Rewriter.indexable_accesses i.W.statement) >= 1))
          wl);
    tc "synthetic paths occur in the data" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let wl = Syn.workload catalog [ Tpox.security_table ] 10 in
        let stats = Cat.stats catalog Tpox.security_table in
        List.iter
          (fun (i : W.item) ->
            List.iter
              (fun (a : Xia_query.Rewriter.access) ->
                Alcotest.(check bool)
                  (Xia_xpath.Pattern.to_string a.Xia_query.Rewriter.pattern)
                  true
                  (Xia_storage.Path_stats.matching stats a.Xia_query.Rewriter.pattern <> []))
              (Xia_query.Rewriter.indexable_accesses i.W.statement))
          wl);
  ]

let suites =
  [
    ("workload.core", workload_tests);
    ("workload.tpox", tpox_tests);
    ("workload.xmark", xmark_tests);
    ("workload.synthetic", synthetic_tests);
  ]
