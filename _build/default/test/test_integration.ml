(* Cross-module integration tests: whole-pipeline invariants on both
   benchmarks, and properties tying estimation to execution. *)

module A = Xia_advisor.Advisor
module B = Xia_advisor.Benefit
module C = Xia_advisor.Candidate
module S = Xia_advisor.Search
module Cat = Xia_index.Catalog
module D = Xia_index.Index_def
module W = Xia_workload.Workload

let tc name f = Alcotest.test_case name `Quick f

let xmark_fixture =
  lazy
    (let catalog = Cat.create () in
     Xia_workload.Xmark.load ~scale:Xia_workload.Xmark.tiny_scale catalog;
     let wl = Xia_workload.Xmark.workload () in
     (catalog, wl))

let xmark_tests =
  [
    tc "advisor end-to-end on xmark" (fun () ->
        let catalog, wl = Lazy.force xmark_fixture in
        let r = A.advise catalog wl ~budget:(8 * 1024 * 1024) A.Greedy_heuristics in
        Alcotest.(check bool) "has indexes" true (List.length (A.indexes r) > 0);
        Alcotest.(check bool) "speedup" true (r.A.est_speedup >= 1.0));
    tc "xmark recommendations execute correctly" (fun () ->
        let catalog, wl = Lazy.force xmark_fixture in
        let r = A.advise catalog wl ~budget:(8 * 1024 * 1024) A.Top_down_full in
        (* Row counts must be identical with and without the indexes. *)
        let rows defs =
          Cat.drop_all_indexes catalog;
          List.iter (fun d -> ignore (Cat.create_index catalog d)) defs;
          let counts =
            List.map
              (fun (i : W.item) ->
                (Xia_optimizer.Executor.run_statement catalog i.W.statement)
                  .Xia_optimizer.Executor.rows)
              wl
          in
          Cat.drop_all_indexes catalog;
          counts
        in
        Alcotest.(check (list int)) "same rows" (rows []) (rows (A.indexes r)));
  ]

let session =
  lazy
    (let catalog = Lazy.force Helpers.shared_catalog in
     A.create_session catalog (Xia_workload.Tpox.workload ()))

let pipeline_tests =
  [
    tc "affected sets point to statements that expose the pattern" (fun () ->
        let s = Lazy.force session in
        let items = Array.of_list s.A.workload in
        List.iter
          (fun (c : C.t) ->
            C.Int_set.iter
              (fun i ->
                let pats =
                  Xia_query.Rewriter.indexable_patterns items.(i).W.statement
                in
                Alcotest.(check bool)
                  (Printf.sprintf "cand %d affects stmt %d" c.C.id i)
                  true
                  (List.exists
                     (fun (table, pattern, dtype) ->
                       String.equal table c.C.def.D.table
                       && D.equal_data_type dtype c.C.def.D.dtype
                       && Xia_xpath.Pattern.covers ~general:c.C.def.D.pattern
                            ~specific:pattern)
                     pats))
              c.C.affected)
          (C.to_list s.A.candidates));
    tc "DAG parents cover their children" (fun () ->
        let s = Lazy.force session in
        List.iter
          (fun (c : C.t) ->
            List.iter
              (fun (ch : C.t) ->
                Alcotest.(check bool) "covers" true
                  (D.covers ~general:c.C.def ~specific:ch.C.def))
              (C.children_of s.A.candidates c))
          (C.to_list s.A.candidates));
    tc "DAG is acyclic" (fun () ->
        let s = Lazy.force session in
        let set = s.A.candidates in
        let visiting = Hashtbl.create 64 and done_ = Hashtbl.create 64 in
        let rec dfs (c : C.t) =
          if Hashtbl.mem done_ c.C.id then ()
          else if Hashtbl.mem visiting c.C.id then Alcotest.fail "cycle in DAG"
          else begin
            Hashtbl.add visiting c.C.id ();
            List.iter dfs (C.children_of set c);
            Hashtbl.remove visiting c.C.id;
            Hashtbl.add done_ c.C.id ()
          end
        in
        List.iter dfs (C.to_list set));
    tc "benefit equals base minus configured workload cost for query-only" (fun () ->
        let s = Lazy.force session in
        let config = C.basics s.A.candidates in
        let benefit = B.benefit s.A.evaluator config in
        let base = B.base_workload_cost s.A.evaluator in
        let configured = B.workload_cost s.A.evaluator config in
        (* No DML: maintenance is zero, so the decomposed (sub-configuration)
           benefit must equal the monolithic difference. *)
        Alcotest.(check bool) "consistent" true
          (Float.abs (benefit -. (base -. configured)) < 1e-6 *. Float.max 1.0 base));
    tc "est_speedup consistent with benefit accounting" (fun () ->
        let s = Lazy.force session in
        let r = A.session_advise s ~budget:max_int A.All_index in
        Alcotest.(check bool) "speedup = base/new" true
          (Float.abs (r.A.est_speedup -. (r.A.base_cost /. r.A.new_cost)) < 1e-9));
  ]

let monotonicity_properties =
  [
    QCheck.Test.make ~count:40
      ~name:"adding an index never hurts a query-only workload"
      QCheck.(int_range 0 1_000_000)
      (fun seed ->
        let s = Lazy.force session in
        let all = C.to_list s.A.candidates in
        let rng = Random.State.make [| seed |] in
        let subset = List.filter (fun _ -> Random.State.bool rng) all in
        let extra = List.nth all (Random.State.int rng (List.length all)) in
        let with_extra =
          if List.exists (fun (c : C.t) -> c.C.id = extra.C.id) subset then subset
          else extra :: subset
        in
        B.benefit s.A.evaluator with_extra >= B.benefit s.A.evaluator subset -. 1e-6);
    QCheck.Test.make ~count:20 ~name:"search outcomes always fit their budget"
      QCheck.(int_range 1 64)
      (fun mb ->
        let s = Lazy.force session in
        let budget = mb * 64 * 1024 in
        List.for_all
          (fun alg ->
            (A.session_advise s ~budget alg).A.outcome.S.size <= budget)
          A.all_algorithms);
  ]

let suites =
  [
    ("integration.xmark", xmark_tests);
    ("integration.pipeline", pipeline_tests);
    Helpers.qsuite "integration.properties" monotonicity_properties;
  ]
