(* Shared test fixtures and generators. *)

module T = Xia_xml.Types

let xml s = Xia_xml.Parser.parse_exn s
let xpath s = Xia_xpath.Parser.parse_exn s
let pattern s = Xia_xpath.Pattern.of_string s
let statement s = Xia_query.Parser.parse_statement_exn s

(* The paper's running-example document shape. *)
let security_doc =
  xml
    {|<Security><Symbol>BCIIPRC</Symbol><Name>BCII Preferred C</Name>
       <SecurityType>Bond</SecurityType>
       <SecInfo><BondInformation><Sector>Energy</Sector><Industry>OilGas</Industry></BondInformation></SecInfo>
       <Price><LastTrade>42.17</LastTrade></Price>
       <Yield>4.7</Yield></Security>|}

(* A tiny deterministic TPoX catalog shared by the expensive suites (built
   once, queries must not mutate it). *)
let shared_catalog =
  lazy
    (let catalog = Xia_index.Catalog.create () in
     Xia_workload.Tpox.load ~scale:Xia_workload.Tpox.tiny_scale ~seed:7 catalog;
     catalog)

let fresh_tiny_catalog ?(seed = 7) () =
  let catalog = Xia_index.Catalog.create () in
  Xia_workload.Tpox.load ~scale:Xia_workload.Tpox.tiny_scale ~seed catalog;
  catalog

(* ---------- QCheck generators ---------- *)

let tag_gen = QCheck.Gen.oneofl [ "a"; "b"; "c"; "d"; "item"; "name"; "Price" ]

let text_gen =
  QCheck.Gen.oneofl [ "x"; "Energy"; "4.5"; "hello world"; "42"; "-3.25"; "" ]

let attr_gen =
  QCheck.Gen.(
    map2 (fun k v -> (k, v)) (oneofl [ "id"; "Acct"; "Sym" ]) text_gen)

(* Random XML trees of bounded depth/width. *)
let xml_gen =
  QCheck.Gen.(
    sized_size (int_range 1 30) (fix (fun self n ->
        if n <= 1 then map (fun s -> T.text s) text_gen
        else
          map3
            (fun tag attrs children -> T.element ~attrs tag children)
            tag_gen
            (list_size (int_range 0 2) attr_gen)
            (list_size (int_range 0 3) (self (n / 2))))))

(* Documents must be rooted at an element. *)
let doc_gen =
  QCheck.Gen.(
    map3
      (fun tag attrs children -> T.element ~attrs tag children)
      tag_gen
      (list_size (int_range 0 2) attr_gen)
      (list_size (int_range 0 4) (xml_gen)))

let doc_arbitrary = QCheck.make ~print:Xia_xml.Printer.to_string doc_gen

(* Random linear patterns. *)
let pattern_gen =
  QCheck.Gen.(
    let step_gen =
      map2
        (fun axis test -> { Xia_xpath.Pattern.axis; test })
        (oneofl [ Xia_xpath.Ast.Child; Xia_xpath.Ast.Descendant ])
        (frequency
           [
             (4, map (fun t -> Xia_xpath.Ast.Elem (Xia_xpath.Ast.Name t)) tag_gen);
             (1, return (Xia_xpath.Ast.Elem Xia_xpath.Ast.Wildcard));
             (1, map (fun t -> Xia_xpath.Ast.Attr (Xia_xpath.Ast.Name t)) (oneofl [ "id"; "Sym" ]));
           ])
    in
    list_size (int_range 1 5) step_gen)

let pattern_arbitrary = QCheck.make ~print:Xia_xpath.Pattern.to_string pattern_gen

(* Random rooted label paths. *)
let label_path_gen =
  QCheck.Gen.(
    let* elems = list_size (int_range 1 5) tag_gen in
    let* attr = frequency [ (3, return None); (1, map Option.some (oneofl [ "@id"; "@Sym" ])) ] in
    return (match attr with None -> elems | Some a -> elems @ [ a ]))

let label_path_arbitrary =
  QCheck.make ~print:(String.concat "/") label_path_gen

let qsuite name cells = (name, List.map QCheck_alcotest.to_alcotest cells)
