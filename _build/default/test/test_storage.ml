(* Tests for the document store and path statistics. *)

module DS = Xia_storage.Doc_store
module PS = Xia_storage.Path_stats

let tc name f = Alcotest.test_case name `Quick f

let store_with docs =
  let s = DS.create "T" in
  List.iter (fun d -> ignore (DS.insert s (Helpers.xml d))) docs;
  s

let doc_store_tests =
  [
    tc "insert assigns increasing ids" (fun () ->
        let s = DS.create "T" in
        let a = DS.insert s (Helpers.xml "<a/>") in
        let b = DS.insert s (Helpers.xml "<b/>") in
        Alcotest.(check bool) "increasing" true (b > a);
        Alcotest.(check int) "count" 2 (DS.doc_count s));
    tc "find returns stored document" (fun () ->
        let s = DS.create "T" in
        let id = DS.insert s (Helpers.xml "<a>x</a>") in
        match DS.find s id with
        | Some d -> Alcotest.(check string) "doc" "<a>x</a>" (Xia_xml.Printer.to_string d)
        | None -> Alcotest.fail "not found");
    tc "delete removes and updates totals" (fun () ->
        let s = DS.create "T" in
        let id = DS.insert s (Helpers.xml "<a><b>xxx</b></a>") in
        let bytes = DS.total_bytes s in
        Alcotest.(check bool) "bytes" true (bytes > 0);
        Alcotest.(check bool) "deleted" true (DS.delete s id);
        Alcotest.(check int) "count" 0 (DS.doc_count s);
        Alcotest.(check int) "bytes zero" 0 (DS.total_bytes s);
        Alcotest.(check int) "elements zero" 0 (DS.total_elements s);
        Alcotest.(check bool) "double delete" false (DS.delete s id));
    tc "replace swaps content" (fun () ->
        let s = DS.create "T" in
        let id = DS.insert s (Helpers.xml "<a/>") in
        Alcotest.(check bool) "replaced" true (DS.replace s id (Helpers.xml "<b><c/></b>"));
        Alcotest.(check int) "elements" 2 (DS.total_elements s);
        Alcotest.(check bool) "missing" false (DS.replace s 999 (Helpers.xml "<x/>")));
    tc "generation bumps on DML only" (fun () ->
        let s = DS.create "T" in
        let g0 = DS.generation s in
        let id = DS.insert s (Helpers.xml "<a/>") in
        let g1 = DS.generation s in
        ignore (DS.find s id);
        Alcotest.(check int) "find no bump" g1 (DS.generation s);
        ignore (DS.delete s id);
        Alcotest.(check bool) "bumps" true (DS.generation s > g1 && g1 > g0));
    tc "pages at least one" (fun () ->
        Alcotest.(check int) "pages" 1 (DS.pages (DS.create "T")));
    tc "fold and iter visit all docs" (fun () ->
        let s = store_with [ "<a/>"; "<b/>"; "<c/>" ] in
        Alcotest.(check int) "fold" 3 (DS.fold (fun _ _ n -> n + 1) s 0);
        Alcotest.(check int) "ids" 3 (List.length (DS.doc_ids s)));
    tc "averages" (fun () ->
        let s = store_with [ "<a><b/></a>"; "<a/>" ] in
        Alcotest.(check (float 0.001)) "elems" 1.5 (DS.avg_doc_elements s);
        Alcotest.(check bool) "bytes" true (DS.avg_doc_bytes s > 0.0));
  ]

let stats_of docs = PS.collect (store_with docs)

let path_stats_tests =
  [
    tc "collect counts nodes per path" (fun () ->
        let st = stats_of [ "<a><b>1</b><b>2</b></a>"; "<a><b>3</b></a>" ] in
        match PS.find st [ "a"; "b" ] with
        | Some info ->
            Alcotest.(check int) "nodes" 3 info.PS.node_count;
            Alcotest.(check int) "docs" 2 info.PS.doc_count;
            Alcotest.(check int) "distinct" 3 info.PS.distinct_values
        | None -> Alcotest.fail "path missing");
    tc "distinct values deduplicated" (fun () ->
        let st = stats_of [ "<a><b>x</b><b>x</b><b>y</b></a>" ] in
        match PS.find st [ "a"; "b" ] with
        | Some info -> Alcotest.(check int) "distinct" 2 info.PS.distinct_values
        | None -> Alcotest.fail "path missing");
    tc "numeric stats" (fun () ->
        let st = stats_of [ "<a><v>1.5</v><v>4.5</v><v>nope</v></a>" ] in
        match PS.find st [ "a"; "v" ] with
        | Some info ->
            Alcotest.(check int) "numeric" 2 info.PS.numeric_count;
            Alcotest.(check (float 0.001)) "min" 1.5 info.PS.min_num;
            Alcotest.(check (float 0.001)) "max" 4.5 info.PS.max_num
        | None -> Alcotest.fail "path missing");
    tc "attribute paths recorded" (fun () ->
        let st = stats_of [ {|<a id="1"><b k="2"/></a>|} ] in
        Alcotest.(check bool) "a/@id" true (PS.find st [ "a"; "@id" ] <> None);
        Alcotest.(check bool) "a/b/@k" true (PS.find st [ "a"; "b"; "@k" ] <> None));
    tc "dataguide size" (fun () ->
        let st = stats_of [ "<a><b/><c><d/></c></a>" ] in
        Alcotest.(check int) "paths" 4 (PS.path_count st);
        Alcotest.(check int) "all_paths" 4 (List.length (PS.all_paths st)));
    tc "doc-level aggregates" (fun () ->
        let st = stats_of [ "<a><b/></a>"; "<a/>" ] in
        Alcotest.(check int) "docs" 2 st.PS.doc_count;
        Alcotest.(check int) "elements" 3 st.PS.total_elements);
    tc "matching respects the pattern" (fun () ->
        let st = stats_of [ "<a><b><s>1</s></b><c><s>2</s></c></a>" ] in
        let hits = PS.matching st (Helpers.pattern "/a/*/s") in
        Alcotest.(check int) "two paths" 2 (List.length hits);
        let hits2 = PS.matching st (Helpers.pattern "/a/b/s") in
        Alcotest.(check int) "one path" 1 (List.length hits2));
    tc "matching is memoized per generation" (fun () ->
        let store = store_with [ "<a><b>1</b></a>" ] in
        let st = PS.collect store in
        let h1 = PS.matching st (Helpers.pattern "//b") in
        let h2 = PS.matching st (Helpers.pattern "//b") in
        Alcotest.(check bool) "same" true (h1 == h2));
    tc "avg_value_bytes" (fun () ->
        let st = stats_of [ "<a><b>xx</b><b>yyyy</b></a>" ] in
        match PS.find st [ "a"; "b" ] with
        | Some info -> Alcotest.(check (float 0.001)) "avg" 3.0 (PS.avg_value_bytes info)
        | None -> Alcotest.fail "path missing");
    tc "ordered is deterministic" (fun () ->
        let st = stats_of [ "<a><z/><m/><b/></a>" ] in
        let keys = List.map (fun i -> i.PS.path_key) st.PS.ordered in
        Alcotest.(check (list string)) "sorted" [ "a"; "a/b"; "a/m"; "a/z" ] keys);
  ]

let properties =
  [
    QCheck.Test.make ~count:100 ~name:"stats node totals match document walk"
      (QCheck.list_of_size (QCheck.Gen.int_range 1 5) Helpers.doc_arbitrary)
      (fun docs ->
        let s = DS.create "P" in
        List.iter (fun d -> ignore (DS.insert s d)) docs;
        let st = PS.collect s in
        let total_from_stats = PS.fold (fun acc i -> acc + i.PS.node_count) st 0 in
        let total_walk = ref 0 in
        DS.iter (fun _ d -> Xia_xml.Types.iter_nodes (fun _ _ _ -> incr total_walk) d) s;
        total_from_stats = !total_walk);
    QCheck.Test.make ~count:100 ~name:"doc_count per path never exceeds table docs"
      (QCheck.list_of_size (QCheck.Gen.int_range 1 5) Helpers.doc_arbitrary)
      (fun docs ->
        let s = DS.create "P" in
        List.iter (fun d -> ignore (DS.insert s d)) docs;
        let st = PS.collect s in
        PS.fold (fun ok i -> ok && i.PS.doc_count <= st.PS.doc_count) st true);
  ]

let suites =
  [
    ("storage.doc_store", doc_store_tests);
    ("storage.path_stats", path_stats_tests);
    Helpers.qsuite "storage.properties" properties;
  ]
