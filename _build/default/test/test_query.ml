(* Tests for the query AST, parser, printer and rewriter. *)

module Q = Xia_query.Ast
module QP = Xia_query.Parser
module QPr = Xia_query.Printer
module R = Xia_query.Rewriter
module D = Xia_index.Index_def

let tc name f = Alcotest.test_case name `Quick f

let roundtrip s = QPr.statement_to_string (Helpers.statement s)

let parser_tests =
  [
    tc "minimal flwor" (fun () ->
        Alcotest.(check string) "rt" "for $x in T('XMLDOC')/a return $x"
          (roundtrip "for $x in T/a return $x"));
    tc "paper Q1" (fun () ->
        Alcotest.(check string) "rt"
          {|for $sec in SECURITY('SDOC')/Security where $sec/Symbol = "BCIIPRC" return $sec|}
          (roundtrip
             {|for $sec in SECURITY('SDOC')/Security where $sec/Symbol = "BCIIPRC" return $sec|}));
    tc "paper Q2 with constructor" (fun () ->
        Alcotest.(check string) "rt"
          {|for $sec in SECURITY('SDOC')/Security[Yield>4.5] where $sec/SecInfo/*/Sector = "Energy" return <Security>{$sec/Name}</Security>|}
          (roundtrip
             {|for $sec in SECURITY('SDOC')/Security[Yield>4.5]
               where $sec/SecInfo/*/Sector = "Energy"
               return <Security>{$sec/Name}</Security>|}));
    tc "multiple bindings" (fun () ->
        match Helpers.statement "for $a in T/x, $b in U/y return $a, $b" with
        | Q.Select f ->
            Alcotest.(check int) "bindings" 2 (List.length f.Q.bindings);
            Alcotest.(check int) "returns" 2 (List.length f.Q.return_)
        | _ -> Alcotest.fail "expected select");
    tc "conjunctive where" (fun () ->
        match Helpers.statement {|for $c in T/c where $c/a = 1 and $c/b = "x" return $c|} with
        | Q.Select f -> Alcotest.(check int) "wheres" 2 (List.length f.Q.where)
        | _ -> Alcotest.fail "expected select");
    tc "where existence clause" (fun () ->
        match Helpers.statement "for $c in T/c where $c/opt return $c" with
        | Q.Select { where = [ [ { predicate = Xia_xpath.Ast.Exists _; _ } ] ]; _ } -> ()
        | _ -> Alcotest.fail "expected existence where");
    tc "attribute where" (fun () ->
        Alcotest.(check string) "rt" "for $o in T('XMLDOC')/o where $o/@id = 7 return $o"
          (roundtrip "for $o in T/o where $o/@id = 7 return $o"));
    tc "insert statement" (fun () ->
        match Helpers.statement "insert into T <a><b>1</b></a>" with
        | Q.Insert { table; document } ->
            Alcotest.(check string) "table" "T" table;
            Alcotest.(check string) "doc" "<a><b>1</b></a>"
              (Xia_xml.Printer.to_string document)
        | _ -> Alcotest.fail "expected insert");
    tc "delete statement" (fun () ->
        Alcotest.(check string) "rt" {|delete from T where /a[b="x"]|}
          (roundtrip {|delete from T where /a[b="x"]|}));
    tc "update statement" (fun () ->
        Alcotest.(check string) "rt" {|update T set /a/b = "9" where /a[c=1]|}
          (roundtrip {|update T set /a/b = "9" where /a[c=1]|}));
    tc "trailing semicolon accepted" (fun () ->
        ignore (Helpers.statement "for $x in T/a return $x;"));
    tc "nested constructor items" (fun () ->
        match Helpers.statement "for $x in T/a return <r>{$x/b, $x/c}</r>" with
        | Q.Select { return_ = [ Q.Ret_element ("r", items) ]; _ } ->
            Alcotest.(check int) "items" 2 (List.length items)
        | _ -> Alcotest.fail "expected element return");
    tc "rejects missing return" (fun () ->
        Alcotest.(check bool) "err" true
          (Result.is_error (QP.parse_statement "for $x in T/a")));
    tc "rejects unknown verb" (fun () ->
        Alcotest.(check bool) "err" true (Result.is_error (QP.parse_statement "select 1")));
    tc "rejects trailing garbage" (fun () ->
        Alcotest.(check bool) "err" true
          (Result.is_error (QP.parse_statement "for $x in T/a return $x garbage")));
    tc "rejects bad xml in insert" (fun () ->
        Alcotest.(check bool) "err" true
          (Result.is_error (QP.parse_statement "insert into T <a><b></a>")));
    tc "statement metadata" (fun () ->
        let s = Helpers.statement "for $x in T/a return $x" in
        Alcotest.(check bool) "query" true (Q.is_query s);
        Alcotest.(check bool) "not dml" false (Q.is_dml s);
        Alcotest.(check (option string)) "table" (Some "T") (Q.statement_table s);
        let d = Helpers.statement "delete from U where /a" in
        Alcotest.(check bool) "dml" true (Q.is_dml d);
        Alcotest.(check (list string)) "tables" [ "U" ] (Q.tables d));
  ]

(* The paper's Table I: the basic candidates of Q1 and Q2. *)
let table_one_tests =
  [
    tc "Q1 exposes C1 (/Security/Symbol, string)" (fun () ->
        let q1 =
          Helpers.statement
            {|for $sec in SECURITY('SDOC')/Security where $sec/Symbol = "BCIIPRC" return $sec|}
        in
        match R.indexable_patterns q1 with
        | [ (table, pattern, dtype) ] ->
            Alcotest.(check string) "table" "SECURITY" table;
            Alcotest.(check string) "pattern" "/Security/Symbol"
              (Xia_xpath.Pattern.to_string pattern);
            Alcotest.(check bool) "string" true (dtype = D.Dstring)
        | l -> Alcotest.failf "expected exactly C1, got %d" (List.length l));
    tc "Q2 exposes C2 and C3" (fun () ->
        let q2 =
          Helpers.statement
            {|for $sec in SECURITY('SDOC')/Security[Yield>4.5]
              where $sec/SecInfo/*/Sector = "Energy"
              return <Security>{$sec/Name}</Security>|}
        in
        let pats =
          List.map
            (fun (_, p, d) -> (Xia_xpath.Pattern.to_string p, D.data_type_to_string d))
            (R.indexable_patterns q2)
        in
        Alcotest.(check bool) "C3 yield numeric" true
          (List.mem ("/Security/Yield", "DOUBLE") pats);
        Alcotest.(check bool) "C2 sector string" true
          (List.mem ("/Security/SecInfo/*/Sector", "VARCHAR") pats);
        Alcotest.(check int) "exactly two" 2 (List.length pats));
  ]

let rewriter_tests =
  [
    tc "nav pattern strips predicates" (fun () ->
        let s = Helpers.statement "for $x in T/a[b>1]/c return $x" in
        match R.bindings_of_statement s with
        | [ b ] ->
            Alcotest.(check string) "nav" "/a/c"
              (Xia_xpath.Pattern.to_string b.R.nav_pattern)
        | _ -> Alcotest.fail "expected one binding");
    tc "nested predicates contribute accesses" (fun () ->
        let s = Helpers.statement "for $x in T/a[b[c>1]/d] return $x" in
        let pats =
          List.map (fun a -> Xia_xpath.Pattern.to_string a.R.pattern) (R.indexable_accesses s)
        in
        Alcotest.(check bool) "outer exists" true (List.mem "/a/b/d" pats);
        Alcotest.(check bool) "inner compare" true (List.mem "/a/b/c" pats));
    tc "existence where yields Cexists" (fun () ->
        let s = Helpers.statement "for $x in T/a where $x/opt return $x" in
        match R.indexable_accesses s with
        | [ a ] ->
            Alcotest.(check bool) "exists" true (a.R.condition = R.Cexists);
            Alcotest.(check bool) "string type" true (a.R.dtype = D.Dstring)
        | _ -> Alcotest.fail "expected one access");
    tc "numeric literal gives DOUBLE type" (fun () ->
        let s = Helpers.statement "for $x in T/a where $x/v > 3 return $x" in
        match R.indexable_accesses s with
        | [ a ] -> Alcotest.(check bool) "double" true (a.R.dtype = D.Ddouble)
        | _ -> Alcotest.fail "expected one access");
    tc "delete selector is indexable" (fun () ->
        let s = Helpers.statement {|delete from T where /a[k="v"]|} in
        match R.indexable_accesses s with
        | [ a ] ->
            Alcotest.(check string) "pattern" "/a/k" (Xia_xpath.Pattern.to_string a.R.pattern)
        | _ -> Alcotest.fail "expected one access");
    tc "update selector is indexable, target is not" (fun () ->
        let s = Helpers.statement {|update T set /a/b = "1" where /a[c=2]|} in
        let pats =
          List.map (fun a -> Xia_xpath.Pattern.to_string a.R.pattern) (R.indexable_accesses s)
        in
        Alcotest.(check (list string)) "only selector" [ "/a/c" ] pats);
    tc "insert exposes nothing" (fun () ->
        let s = Helpers.statement "insert into T <a/>" in
        Alcotest.(check int) "none" 0 (List.length (R.indexable_accesses s)));
    tc "duplicate accesses deduplicated" (fun () ->
        let s =
          Helpers.statement {|for $x in T/a where $x/k = "v" and $x/k = "v" return $x|}
        in
        Alcotest.(check int) "one" 1 (List.length (R.indexable_accesses s)));
    tc "where clause for unknown var ignored" (fun () ->
        let s = Helpers.statement {|for $x in T/a where $y/k = "v" return $x|} in
        Alcotest.(check int) "none" 0 (List.length (R.indexable_accesses s)));
    tc "multi-binding accesses attach to their binding" (fun () ->
        let s =
          Helpers.statement
            {|for $a in T/x, $b in U/y where $a/p = 1 and $b/q = 2 return $a|}
        in
        match R.bindings_of_statement s with
        | [ ba; bb ] ->
            Alcotest.(check int) "a filters" 1 (List.length ba.R.filters);
            Alcotest.(check int) "b filters" 1 (List.length bb.R.filters);
            Alcotest.(check string) "a table" "T"
              (match ba.R.filters with [ [ a ] ] -> a.R.table | _ -> "?")
        | _ -> Alcotest.fail "expected two bindings");
    tc "dtype_of_condition" (fun () ->
        Alcotest.(check bool) "exists" true (R.dtype_of_condition R.Cexists = D.Dstring);
        Alcotest.(check bool) "num" true
          (R.dtype_of_condition (R.Ccompare (Xia_xpath.Ast.Eq, Xia_xpath.Ast.Number_lit 1.0))
          = D.Ddouble));
  ]

let suites =
  [
    ("query.parser", parser_tests);
    ("query.table1", table_one_tests);
    ("query.rewriter", rewriter_tests);
  ]
