(* Tests for disjunctive where clauses (OR) and index-ORing plans. *)

module Q = Xia_query.Ast
module QP = Xia_query.Parser
module R = Xia_query.Rewriter
module O = Xia_optimizer.Optimizer
module Plan = Xia_optimizer.Plan
module E = Xia_optimizer.Executor
module Cat = Xia_index.Catalog
module D = Xia_index.Index_def
module DS = Xia_storage.Doc_store

let tc name f = Alcotest.test_case name `Quick f

let parser_tests =
  [
    tc "or produces one group with two clauses" (fun () ->
        match Helpers.statement {|for $x in T/a where $x/k = "a" or $x/m = "b" return $x|} with
        | Q.Select { where = [ [ _; _ ] ]; _ } -> ()
        | _ -> Alcotest.fail "expected one group of two");
    tc "or binds tighter than and" (fun () ->
        match
          Helpers.statement
            {|for $x in T/a where $x/k = "a" or $x/m = "b" and $x/v > 1 return $x|}
        with
        | Q.Select { where = [ [ _; _ ]; [ _ ] ]; _ } -> ()
        | _ -> Alcotest.fail "expected (k or m) and (v)");
    tc "cross-variable or rejected" (fun () ->
        Alcotest.(check bool) "err" true
          (Result.is_error
             (QP.parse_statement
                {|for $x in T/a, $y in U/b where $x/k = "a" or $y/m = "b" return $x|})));
    tc "printer roundtrips or" (fun () ->
        let s = {|for $x in T('XMLDOC')/a where $x/k = "a" or $x/m = "b" and $x/v > 1 return $x|} in
        Alcotest.(check string) "rt" s
          (Xia_query.Printer.statement_to_string (Helpers.statement s)));
  ]

let rewriter_tests =
  [
    tc "or group becomes one multi-access filter" (fun () ->
        let s = Helpers.statement {|for $x in T/a where $x/k = "a" or $x/m = "b" return $x|} in
        match R.bindings_of_statement s with
        | [ { R.filters = [ [ a1; a2 ] ]; _ } ] ->
            Alcotest.(check string) "first" "/a/k" (Xia_xpath.Pattern.to_string a1.R.pattern);
            Alcotest.(check string) "second" "/a/m" (Xia_xpath.Pattern.to_string a2.R.pattern)
        | _ -> Alcotest.fail "expected one disjunctive filter");
    tc "both disjunct patterns are candidates" (fun () ->
        let s = Helpers.statement {|for $x in T/a where $x/k = "a" or $x/m = "b" return $x|} in
        Alcotest.(check int) "two" 2 (List.length (R.indexable_patterns s)));
  ]

(* 600 docs with two selective keys. *)
let or_catalog () =
  let catalog = Cat.create () in
  let store = DS.create "T" in
  for i = 0 to 599 do
    ignore
      (DS.insert store
         (Helpers.xml
            (Printf.sprintf "<a><k>K%02d</k><m>M%02d</m><v>%d</v></a>" (i mod 60)
               (i mod 50) i)))
  done;
  ignore (Cat.add_table catalog store);
  ignore (Cat.runstats catalog "T");
  catalog

let def ?(dtype = D.Dstring) p = D.make ~table:"T" ~pattern:(Helpers.pattern p) ~dtype ()

let or_query = {|for $x in T/a where $x/k = "K03" or $x/m = "M07" return $x|}

let optimizer_tests =
  [
    tc "index OR plan chosen when both disjuncts indexed" (fun () ->
        let catalog = or_catalog () in
        Cat.set_virtual_indexes catalog [ def "/a/k"; def "/a/m" ];
        let p = O.optimize ~mode:O.Evaluate catalog (Helpers.statement or_query) in
        Cat.clear_virtual_indexes catalog;
        match p.Plan.bindings with
        | [ { plan = Plan.Index_or [ _; _ ]; _ } ] -> ()
        | [ b ] -> Alcotest.failf "expected IXOR, got %a" Plan.pp_binding_plan b.Plan.plan
        | _ -> Alcotest.fail "one binding expected");
    tc "no index OR when one disjunct lacks an index" (fun () ->
        let catalog = or_catalog () in
        Cat.set_virtual_indexes catalog [ def "/a/k" ];
        let p = O.optimize ~mode:O.Evaluate catalog (Helpers.statement or_query) in
        Cat.clear_virtual_indexes catalog;
        match p.Plan.bindings with
        | [ { plan = Plan.Doc_scan; _ } ] -> ()
        | _ -> Alcotest.fail "expected doc scan");
    tc "or estimate uses inclusion-exclusion" (fun () ->
        let catalog = or_catalog () in
        let p = O.optimize ~mode:O.Evaluate catalog (Helpers.statement or_query) in
        match p.Plan.bindings with
        | [ b ] ->
            (* 10 + 12 matching docs, minus tiny overlap *)
            Alcotest.(check bool) "approx 22" true
              (b.Plan.est_docs > 15.0 && b.Plan.est_docs < 30.0)
        | _ -> Alcotest.fail "one binding expected");
    tc "index OR is cheaper than doc scan" (fun () ->
        let catalog = or_catalog () in
        let base =
          (O.optimize ~mode:O.Evaluate catalog (Helpers.statement or_query)).Plan.total_cost
        in
        Cat.set_virtual_indexes catalog [ def "/a/k"; def "/a/m" ];
        let indexed =
          (O.optimize ~mode:O.Evaluate catalog (Helpers.statement or_query)).Plan.total_cost
        in
        Cat.clear_virtual_indexes catalog;
        Alcotest.(check bool) "cheaper" true (indexed < base));
  ]

let executor_tests =
  [
    tc "or rows correct without indexes" (fun () ->
        let catalog = or_catalog () in
        (* k = K03: 10 docs; m = M07: 12 docs; the residue classes 3 (mod 60)
           and 7 (mod 50) never coincide below 600, so the union is 22 *)
        let r = E.run_statement catalog (Helpers.statement or_query) in
        Alcotest.(check int) "rows" 22 r.E.rows);
    tc "or rows identical via index OR" (fun () ->
        let catalog = or_catalog () in
        let before = (E.run_statement catalog (Helpers.statement or_query)).E.rows in
        ignore (Cat.create_index catalog (def "/a/k"));
        ignore (Cat.create_index catalog (def "/a/m"));
        let r = E.run_statement catalog (Helpers.statement or_query) in
        Alcotest.(check int) "same" before r.E.rows;
        Alcotest.(check bool) "used indexes" true (r.E.metrics.E.docs_fetched > 0);
        Alcotest.(check int) "no scan" 0 r.E.metrics.E.docs_scanned);
    tc "or-and mix evaluated correctly" (fun () ->
        let catalog = or_catalog () in
        let q =
          {|for $x in T/a where $x/k = "K03" or $x/m = "M07" and $x/v >= 300 return $x|}
        in
        let before = (E.run_statement catalog (Helpers.statement q)).E.rows in
        (* (k or m) and (v >= 300): half of the 20 *)
        Alcotest.(check bool) "plausible" true (before >= 5 && before <= 15);
        ignore (Cat.create_index catalog (def "/a/k"));
        ignore (Cat.create_index catalog (def "/a/m"));
        ignore (Cat.create_index catalog (def ~dtype:D.Ddouble "/a/v"));
        Alcotest.(check int) "same" before
          (E.run_statement catalog (Helpers.statement q)).E.rows);
    tc "advisor recommends for an or-heavy workload" (fun () ->
        let catalog = or_catalog () in
        let wl = Xia_workload.Workload.of_strings [ or_query ] in
        let r =
          Xia_advisor.Advisor.advise catalog wl ~budget:(4 * 1024 * 1024)
            Xia_advisor.Advisor.Greedy_heuristics
        in
        (* both disjunct indexes are needed together *)
        Alcotest.(check int) "two indexes" 2
          (List.length (Xia_advisor.Advisor.indexes r));
        Alcotest.(check bool) "beneficial" true (r.Xia_advisor.Advisor.est_speedup > 1.0));
  ]

let suites =
  [
    ("disjunction.parser", parser_tests);
    ("disjunction.rewriter", rewriter_tests);
    ("disjunction.optimizer", optimizer_tests);
    ("disjunction.executor", executor_tests);
  ]
