(* Tests for index definitions, derived statistics, physical indexes, the
   catalog and the maintenance cost model. *)

module D = Xia_index.Index_def
module IS = Xia_index.Index_stats
module PI = Xia_index.Physical_index
module Cat = Xia_index.Catalog
module M = Xia_index.Maintenance
module DS = Xia_storage.Doc_store
module PS = Xia_storage.Path_stats

let tc name f = Alcotest.test_case name `Quick f

let def ?(table = "T") ?(dtype = D.Dstring) p =
  D.make ~table ~pattern:(Helpers.pattern p) ~dtype ()

let store_with docs =
  let s = DS.create "T" in
  List.iter (fun d -> ignore (DS.insert s (Helpers.xml d))) docs;
  s

let def_tests =
  [
    tc "fresh names are unique" (fun () ->
        let a = def "/a/b" and b = def "/a/b" in
        Alcotest.(check bool) "names differ" true (a.D.name <> b.D.name);
        Alcotest.(check bool) "same logically" true (D.same a b));
    tc "logical key distinguishes type" (fun () ->
        Alcotest.(check bool) "differ" true
          (D.logical_key (def ~dtype:D.Dstring "/a/b")
          <> D.logical_key (def ~dtype:D.Ddouble "/a/b")));
    tc "covers requires same table and type" (fun () ->
        Alcotest.(check bool) "covers" true
          (D.covers ~general:(def "/a//*") ~specific:(def "/a/b"));
        Alcotest.(check bool) "type mismatch" false
          (D.covers ~general:(def ~dtype:D.Ddouble "/a//*") ~specific:(def "/a/b"));
        Alcotest.(check bool) "table mismatch" false
          (D.covers ~general:(def ~table:"U" "/a//*") ~specific:(def "/a/b")));
  ]

let stats_tests =
  [
    tc "derive counts typed entries" (fun () ->
        let st = PS.collect (store_with [ "<a><v>1</v><v>x</v><v>2</v></a>" ]) in
        let s_str = IS.derive st (def "/a/v") in
        let s_num = IS.derive st (def ~dtype:D.Ddouble "/a/v") in
        Alcotest.(check int) "string entries" 3 s_str.IS.entries;
        Alcotest.(check int) "numeric entries" 2 s_num.IS.entries;
        Alcotest.(check (float 0.001)) "min" 1.0 s_num.IS.min_num;
        Alcotest.(check (float 0.001)) "max" 2.0 s_num.IS.max_num);
    tc "derive aggregates covered paths" (fun () ->
        let st = PS.collect (store_with [ "<a><b><s>1</s></b><c><s>2</s></c></a>" ]) in
        let s = IS.derive st (def "/a//*") in
        (* b, c, s, s *)
        Alcotest.(check int) "entries" 4 s.IS.entries);
    tc "empty pattern yields empty stats with one page" (fun () ->
        let st = PS.collect (store_with [ "<a/>" ]) in
        let s = IS.derive st (def "/zzz") in
        Alcotest.(check int) "entries" 0 s.IS.entries;
        Alcotest.(check int) "size" Xia_storage.Cost_params.page_size s.IS.size_bytes);
    tc "matched_docs clamped by table size" (fun () ->
        let st = PS.collect (store_with [ "<a><b>1</b><c>2</c></a>" ]) in
        let s = IS.derive st (def "/a/*") in
        Alcotest.(check int) "docs" 1 s.IS.matched_docs);
    tc "general index is at least as large" (fun () ->
        let st =
          PS.collect
            (store_with [ "<a><b>alpha</b><c>beta</c></a>"; "<a><b>gamma</b></a>" ])
        in
        let spec = IS.derive st (def "/a/b") in
        let gen = IS.derive st (def "/a//*") in
        Alcotest.(check bool) "bigger" true (gen.IS.size_bytes >= spec.IS.size_bytes);
        Alcotest.(check bool) "more entries" true (gen.IS.entries >= spec.IS.entries));
    tc "btree shape monotone in entries" (fun () ->
        let s1, l1, v1 = IS.btree_shape ~entries:100 ~avg_key_bytes:8.0 in
        let s2, l2, v2 = IS.btree_shape ~entries:1_000_000 ~avg_key_bytes:8.0 in
        Alcotest.(check bool) "size" true (s2 > s1);
        Alcotest.(check bool) "leaves" true (l2 > l1);
        Alcotest.(check bool) "levels" true (v2 >= v1 && v1 >= 1));
    tc "derive_cached memoizes per generation" (fun () ->
        let store = store_with [ "<a><b>1</b></a>" ] in
        let st = PS.collect store in
        let d = def "/a/b" in
        Alcotest.(check bool) "same" true (IS.derive_cached st d == IS.derive_cached st d));
  ]

let entry_values entries = List.map (fun (e : PI.entry) -> e.PI.key) entries

let physical_tests =
  [
    tc "build collects covered nodes" (fun () ->
        let s = store_with [ "<a><b>x</b><b>y</b></a>"; "<a><b>x</b></a>" ] in
        let pi = PI.build s (def "/a/b") in
        Alcotest.(check int) "entries" 3 (PI.entry_count pi));
    tc "lookup_eq" (fun () ->
        let s = store_with [ "<a><b>x</b><b>y</b></a>"; "<a><b>x</b></a>" ] in
        let pi = PI.build s (def "/a/b") in
        Alcotest.(check int) "x" 2 (List.length (PI.lookup_eq pi (PI.Kstring "x")));
        Alcotest.(check int) "y" 1 (List.length (PI.lookup_eq pi (PI.Kstring "y")));
        Alcotest.(check int) "none" 0 (List.length (PI.lookup_eq pi (PI.Kstring "z"))));
    tc "numeric index rejects invalid values" (fun () ->
        let s = store_with [ "<a><v>1</v><v>junk</v><v>2.5</v></a>" ] in
        let pi = PI.build s (def ~dtype:D.Ddouble "/a/v") in
        Alcotest.(check int) "entries" 2 (PI.entry_count pi));
    tc "range lookup inclusive/exclusive" (fun () ->
        let s = store_with [ "<a><v>1</v><v>2</v><v>3</v><v>4</v></a>" ] in
        let pi = PI.build s (def ~dtype:D.Ddouble "/a/v") in
        let range lo hi = List.length (PI.lookup_range pi ~lo ~hi) in
        Alcotest.(check int) "all" 4 (range PI.Unbounded PI.Unbounded);
        Alcotest.(check int) ">=2" 3 (range (PI.Inclusive (PI.Kdouble 2.0)) PI.Unbounded);
        Alcotest.(check int) ">2" 2 (range (PI.Exclusive (PI.Kdouble 2.0)) PI.Unbounded);
        Alcotest.(check int) "<3" 2 (range PI.Unbounded (PI.Exclusive (PI.Kdouble 3.0)));
        Alcotest.(check int) "2..3" 2
          (range (PI.Inclusive (PI.Kdouble 2.0)) (PI.Inclusive (PI.Kdouble 3.0))));
    tc "lookup_ne" (fun () ->
        let s = store_with [ "<a><v>1</v><v>2</v><v>2</v></a>" ] in
        let pi = PI.build s (def ~dtype:D.Ddouble "/a/v") in
        Alcotest.(check int) "ne 2" 1 (List.length (PI.lookup_ne pi (PI.Kdouble 2.0))));
    tc "entries sorted by key" (fun () ->
        let s = store_with [ "<a><v>3</v><v>1</v><v>2</v></a>" ] in
        let pi = PI.build s (def ~dtype:D.Ddouble "/a/v") in
        let keys = entry_values (PI.all pi) in
        Alcotest.(check bool) "sorted" true
          (keys = List.sort PI.compare_key keys));
    tc "attribute pattern indexes attributes" (fun () ->
        let s = store_with [ {|<a id="7"><b id="8"/></a>|} ] in
        let pi = PI.build s (def "//@id") in
        Alcotest.(check int) "entries" 2 (PI.entry_count pi));
    tc "wildcard pattern build uses memoized acceptance" (fun () ->
        let s = store_with [ "<a><b>1</b><c>2</c></a>"; "<a><b>3</b></a>" ] in
        let pi = PI.build s (def "/a/*") in
        Alcotest.(check int) "entries" 3 (PI.entry_count pi));
    tc "size_bytes consistent with virtual model" (fun () ->
        let s = store_with [ "<a><b>hello</b><b>world</b></a>" ] in
        let st = PS.collect s in
        let d = def "/a/b" in
        let pi = PI.build s d in
        Alcotest.(check int) "same size" (IS.derive st d).IS.size_bytes (PI.size_bytes pi));
    tc "distinct_doc_count" (fun () ->
        let s = store_with [ "<a><b>x</b><b>y</b></a>"; "<a><b>z</b></a>" ] in
        let pi = PI.build s (def "/a/b") in
        Alcotest.(check int) "docs" 2 (PI.distinct_doc_count (PI.all pi)));
    tc "key_of_value conversion" (fun () ->
        Alcotest.(check bool) "str" true
          (PI.key_of_value D.Dstring "abc" = Some (PI.Kstring "abc"));
        Alcotest.(check bool) "num" true
          (PI.key_of_value D.Ddouble "4.5" = Some (PI.Kdouble 4.5));
        Alcotest.(check bool) "reject" true (PI.key_of_value D.Ddouble "abc" = None));
  ]

(* Incremental maintenance: folding the change log into an index must be
   indistinguishable from rebuilding it. *)
let same_entries a b =
  let l pi = List.map (fun (e : PI.entry) -> (e.PI.key, e.PI.doc, e.PI.node)) (PI.all pi) in
  l a = l b

let incremental_tests =
  [
    tc "insert via change log equals rebuild" (fun () ->
        let s = store_with [ "<a><b>x</b></a>" ] in
        let pi = PI.build s (def "/a/b") in
        let gen0 = PI.built_generation pi in
        ignore (DS.insert s (Helpers.xml "<a><b>y</b><b>z</b></a>"));
        let changes = Option.get (DS.changes_since s gen0) in
        let inc = PI.apply_changes pi ~generation:(DS.generation s) changes in
        Alcotest.(check bool) "equal" true (same_entries inc (PI.build s (def "/a/b")));
        Alcotest.(check int) "three" 3 (PI.entry_count inc));
    tc "delete via change log equals rebuild" (fun () ->
        let s = store_with [ "<a><b>x</b></a>"; "<a><b>y</b></a>" ] in
        let pi = PI.build s (def "/a/b") in
        let gen0 = PI.built_generation pi in
        ignore (DS.delete s 0);
        let changes = Option.get (DS.changes_since s gen0) in
        let inc = PI.apply_changes pi ~generation:(DS.generation s) changes in
        Alcotest.(check bool) "equal" true (same_entries inc (PI.build s (def "/a/b")));
        Alcotest.(check int) "one" 1 (PI.entry_count inc));
    tc "replace via change log equals rebuild" (fun () ->
        let s = store_with [ "<a><b>x</b></a>" ] in
        let pi = PI.build s (def "/a/b") in
        let gen0 = PI.built_generation pi in
        ignore (DS.replace s 0 (Helpers.xml "<a><b>q</b><c/></a>"));
        let changes = Option.get (DS.changes_since s gen0) in
        let inc = PI.apply_changes pi ~generation:(DS.generation s) changes in
        Alcotest.(check bool) "equal" true (same_entries inc (PI.build s (def "/a/b"))));
    tc "changes_since None after deep history" (fun () ->
        let s = DS.create "T" in
        Alcotest.(check bool) "fresh log reaches gen 0" true
          (DS.changes_since s 0 <> None));
    tc "catalog refresh uses incremental path transparently" (fun () ->
        let c = Cat.create () in
        let t = Cat.add_table c (store_with [ "<a><b>1</b></a>" ]) in
        ignore (Cat.create_index c (def "/a/b"));
        for i = 2 to 5 do
          ignore (DS.insert t.Cat.store (Helpers.xml (Printf.sprintf "<a><b>%d</b></a>" i)))
        done;
        ignore (DS.delete t.Cat.store 0);
        Cat.refresh_indexes c;
        match Cat.real_indexes c "T" with
        | [ pi ] ->
            Alcotest.(check int) "entries" 4 (PI.entry_count pi);
            Alcotest.(check int) "fresh" (DS.generation t.Cat.store)
              (PI.built_generation pi)
        | _ -> Alcotest.fail "expected one index");
  ]

let incremental_properties =
  [
    QCheck.Test.make ~count:60 ~name:"random DML: incremental equals rebuild"
      QCheck.(pair (int_range 0 100_000) (int_range 1 25))
      (fun (seed, ops) ->
        let rng = Random.State.make [| seed |] in
        let s = store_with [ "<a><b>x</b></a>"; "<a><b>y</b><c>z</c></a>" ] in
        let d = def "/a/*" in
        let pi = ref (PI.build s d) in
        let ok = ref true in
        for _ = 1 to ops do
          let gen0 = PI.built_generation !pi in
          (match Random.State.int rng 3 with
          | 0 ->
              ignore
                (DS.insert s
                   (Helpers.xml
                      (Printf.sprintf "<a><b>v%d</b></a>" (Random.State.int rng 50))))
          | 1 -> (
              match DS.doc_ids s with
              | [] -> ()
              | ids -> ignore (DS.delete s (List.nth ids (Random.State.int rng (List.length ids)))))
          | _ -> (
              match DS.doc_ids s with
              | [] -> ()
              | ids ->
                  ignore
                    (DS.replace s
                       (List.nth ids (Random.State.int rng (List.length ids)))
                       (Helpers.xml
                          (Printf.sprintf "<a><c>r%d</c></a>" (Random.State.int rng 50))))));
          match DS.changes_since s gen0 with
          | None -> ()
          | Some changes ->
              pi := PI.apply_changes !pi ~generation:(DS.generation s) changes;
              if not (same_entries !pi (PI.build s d)) then ok := false
        done;
        !ok);
  ]

let catalog_tests =
  [
    tc "add and find tables" (fun () ->
        let c = Cat.create () in
        ignore (Cat.add_table c (store_with [ "<a/>" ]));
        Alcotest.(check bool) "found" true (Cat.find_table c "T" <> None);
        Alcotest.(check (list string)) "names" [ "T" ] (Cat.table_names c));
    tc "duplicate table rejected" (fun () ->
        let c = Cat.create () in
        ignore (Cat.add_table c (DS.create "T"));
        Alcotest.(check bool) "raises" true
          (try
             ignore (Cat.add_table c (DS.create "T"));
             false
           with Invalid_argument _ -> true));
    tc "stats cached and refreshed on change" (fun () ->
        let c = Cat.create () in
        let t = Cat.add_table c (store_with [ "<a><b>1</b></a>" ]) in
        let s1 = Cat.stats c "T" in
        let s2 = Cat.stats c "T" in
        Alcotest.(check bool) "cached" true (s1 == s2);
        ignore (DS.insert t.Cat.store (Helpers.xml "<a><b>2</b></a>"));
        let s3 = Cat.stats c "T" in
        Alcotest.(check bool) "refreshed" true (s3 != s2);
        Alcotest.(check int) "docs" 2 s3.PS.doc_count);
    tc "create/drop index" (fun () ->
        let c = Cat.create () in
        ignore (Cat.add_table c (store_with [ "<a><b>1</b></a>" ]));
        let d = def "/a/b" in
        ignore (Cat.create_index c d);
        Alcotest.(check int) "one" 1 (List.length (Cat.real_indexes c "T"));
        Alcotest.(check bool) "dropped" true (Cat.drop_index c d.D.name);
        Alcotest.(check int) "zero" 0 (List.length (Cat.real_indexes c "T"));
        Alcotest.(check bool) "missing" false (Cat.drop_index c "nope"));
    tc "duplicate logical index rejected" (fun () ->
        let c = Cat.create () in
        ignore (Cat.add_table c (store_with [ "<a><b>1</b></a>" ]));
        ignore (Cat.create_index c (def "/a/b"));
        Alcotest.(check bool) "raises" true
          (try
             ignore (Cat.create_index c (def "/a/b"));
             false
           with Invalid_argument _ -> true));
    tc "refresh_indexes rebuilds stale" (fun () ->
        let c = Cat.create () in
        let t = Cat.add_table c (store_with [ "<a><b>1</b></a>" ]) in
        ignore (Cat.create_index c (def "/a/b"));
        ignore (DS.insert t.Cat.store (Helpers.xml "<a><b>2</b></a>"));
        Cat.refresh_indexes c;
        match Cat.real_indexes c "T" with
        | [ pi ] -> Alcotest.(check int) "entries" 2 (PI.entry_count pi)
        | _ -> Alcotest.fail "expected one index");
    tc "virtual indexes set and cleared" (fun () ->
        let c = Cat.create () in
        ignore (Cat.add_table c (store_with [ "<a/>" ]));
        Cat.set_virtual_indexes c [ def "/a/b"; def "/a/c" ];
        Alcotest.(check int) "two" 2 (List.length (Cat.virtual_indexes c "T"));
        Cat.set_virtual_indexes c [ def "/a/d" ];
        Alcotest.(check int) "replaced" 1 (List.length (Cat.virtual_indexes c "T"));
        Cat.clear_virtual_indexes c;
        Alcotest.(check int) "cleared" 0 (List.length (Cat.virtual_indexes c "T")));
  ]

let maintenance_tests =
  [
    tc "queries cost nothing (no docs affected)" (fun () ->
        let st = PS.collect (store_with [ "<a><b>1</b></a>" ]) in
        let s = IS.derive st (def "/a/b") in
        Alcotest.(check (float 0.001)) "zero" 0.0
          (M.cost s M.Dml_insert ~docs_affected:0.0));
    tc "insert charges entries_per_doc" (fun () ->
        let st = PS.collect (store_with [ "<a><b>1</b><b>2</b></a>" ]) in
        let s = IS.derive st (def "/a/b") in
        let c1 = M.cost s M.Dml_insert ~docs_affected:1.0 in
        let c2 = M.cost s M.Dml_insert ~docs_affected:2.0 in
        Alcotest.(check bool) "positive" true (c1 > 0.0);
        Alcotest.(check (float 0.001)) "linear" (2.0 *. c1) c2);
    tc "irrelevant index pays nothing" (fun () ->
        let st = PS.collect (store_with [ "<a><b>1</b></a>" ]) in
        let s = IS.derive st (def "/zzz/q") in
        Alcotest.(check (float 0.001)) "zero" 0.0 (M.cost s M.Dml_insert ~docs_affected:1.0));
    tc "bigger index costs more to maintain" (fun () ->
        let st =
          PS.collect (store_with [ "<a><b>1</b><c>2</c><d>3</d></a>" ])
        in
        let small = IS.derive st (def "/a/b") in
        let big = IS.derive st (def "/a/*") in
        Alcotest.(check bool) "more" true
          (M.cost big M.Dml_insert ~docs_affected:1.0
          > M.cost small M.Dml_insert ~docs_affected:1.0));
  ]

let suites =
  [
    ("index.def", def_tests);
    ("index.stats", stats_tests);
    ("index.physical", physical_tests);
    ("index.incremental", incremental_tests);
    Helpers.qsuite "index.incremental_properties" incremental_properties;
    ("index.catalog", catalog_tests);
    ("index.maintenance", maintenance_tests);
  ]
