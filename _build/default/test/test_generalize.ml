(* Tests for the generalization algorithm — including the paper's two worked
   examples, which pin down the exact semantics of Algorithm 1 / Table II. *)

module G = Xia_advisor.Generalize
module C = Xia_advisor.Candidate
module Pat = Xia_xpath.Pattern
module D = Xia_index.Index_def

let tc name f = Alcotest.test_case name `Quick f

let pat = Helpers.pattern

let pair_strs a b =
  List.sort String.compare (List.map Pat.to_string (G.pair (pat a) (pat b)))

let paper_examples =
  [
    tc "C1 + C2 -> /Security//*" (fun () ->
        Alcotest.(check (list string)) "result" [ "/Security//*" ]
          (pair_strs "/Security/Symbol" "/Security/SecInfo/*/Sector"));
    tc "/a/b/d + /a/d/b/d -> {/a//b/d, /a//d}" (fun () ->
        Alcotest.(check (list string)) "result" [ "/a//b/d"; "/a//d" ]
          (pair_strs "/a/b/d" "/a/d/b/d"));
  ]

let pair_tests =
  [
    tc "identical patterns generalize to themselves" (fun () ->
        Alcotest.(check (list string)) "same" [ "/a/b" ] (pair_strs "/a/b" "/a/b"));
    tc "same length different last step" (fun () ->
        Alcotest.(check (list string)) "wild last" [ "/a/*" ] (pair_strs "/a/b" "/a/c"));
    tc "axis generalization" (fun () ->
        Alcotest.(check (list string)) "descendant wins" [ "/a//b" ]
          (pair_strs "/a/b" "/a//b"));
    tc "different roots fold to descendant (rule 0)" (fun () ->
        Alcotest.(check (list string)) "wild root" [ "//b" ] (pair_strs "/a/b" "/x/b"));
    tc "different lengths get filler" (fun () ->
        Alcotest.(check (list string)) "deep" [ "/a//c" ] (pair_strs "/a/c" "/a/b/c"));
    tc "attribute last steps generalize together" (fun () ->
        Alcotest.(check (list string)) "attr wild" [ "/a/@*" ]
          (pair_strs "/a/@id" "/a/@name"));
    tc "element and attribute last steps do not generalize" (fun () ->
        Alcotest.(check (list string)) "none" [] (pair_strs "/a/b" "/a/@id"));
    tc "wildcards in inputs" (fun () ->
        Alcotest.(check (list string)) "kept" [ "/a/*" ] (pair_strs "/a/*" "/a/b"));
    tc "result covers both inputs (spot)" (fun () ->
        List.iter
          (fun g ->
            Alcotest.(check bool) "covers a" true (Pat.covers ~general:g ~specific:(pat "/r/x/y"));
            Alcotest.(check bool) "covers b" true (Pat.covers ~general:g ~specific:(pat "/r/y")))
          (G.pair (pat "/r/x/y") (pat "/r/y")));
  ]

(* Targeted tests for each advanceStep rule of Table II. *)
let rule_tests =
  [
    tc "rule 1: both last steps generalize directly" (fun () ->
        Alcotest.(check (list string)) "r" [ "/x" ] (pair_strs "/x" "/x");
        Alcotest.(check (list string)) "r2" [ "/*" ] (pair_strs "/x" "/y"));
    tc "rule 2: shorter left expression gets a filler" (fun () ->
        (* left is at its last step, right must fast-forward *)
        Alcotest.(check (list string)) "r" [ "/a//c" ] (pair_strs "/a/c" "/a/b/b2/c"));
    tc "rule 3: shorter right expression gets a filler" (fun () ->
        Alcotest.(check (list string)) "r" [ "/a//c" ] (pair_strs "/a/b/b2/c" "/a/c"));
    tc "rule 4 alternative 1: parallel advance (then rule 0 folds)" (fun () ->
        Alcotest.(check (list string)) "r" [ "/a//c" ] (pair_strs "/a/b/c" "/a/x/c"));
    tc "rule 4 re-occurrence: skipped nodes become a gap" (fun () ->
        (* the paper's /a/b/d + /a/d/b/d example exercises alternatives 2/3 *)
        Alcotest.(check (list string)) "r" [ "/a//b/d"; "/a//d" ]
          (pair_strs "/a/b/d" "/a/d/b/d"));
    tc "rule 0: middle wildcards collapse, last wildcard kept" (fun () ->
        (* raw generalization is /a/x/x (x = star); the middle one folds into
           a descendant axis, the last is preserved *)
        Alcotest.(check (list string)) "r" [ "/a//*" ] (pair_strs "/a/b/x" "/a/c/y"));
    tc "axes generalize per-step" (fun () ->
        Alcotest.(check (list string)) "r" [ "//a/b" ] (pair_strs "/a/b" "//a/b"));
  ]

let mkdef ?(table = "T") ?(dtype = D.Dstring) p =
  D.make ~table ~pattern:(pat p) ~dtype ()

let close_with patterns =
  let set = C.create_set () in
  List.iteri
    (fun i p ->
      let c = C.add set ~origin:C.Basic (mkdef p) in
      C.mark_affected c i)
    patterns;
  G.close set;
  set

let close_tests =
  [
    tc "fixpoint adds the paper's general candidate" (fun () ->
        let set = close_with [ "/Security/Symbol"; "/Security/SecInfo/*/Sector" ] in
        let generals = List.map (fun c -> Pat.to_string c.C.def.D.pattern) (C.generals set) in
        Alcotest.(check bool) "security//*" true (List.mem "/Security//*" generals));
    tc "DAG edges wired parent/child" (fun () ->
        let set = close_with [ "/Security/Symbol"; "/Security/SecInfo/*/Sector" ] in
        match C.generals set with
        | [ g ] ->
            let children = C.children_of set g in
            Alcotest.(check int) "two children" 2 (List.length children);
            List.iter
              (fun ch ->
                Alcotest.(check bool) "parent link" true
                  (List.exists (fun p -> p.C.id = g.C.id) (C.parents_of set ch)))
              children
        | l -> Alcotest.failf "expected one general, got %d" (List.length l));
    tc "affected sets propagate to generals" (fun () ->
        let set = close_with [ "/Security/Symbol"; "/Security/SecInfo/*/Sector" ] in
        match C.generals set with
        | [ g ] ->
            Alcotest.(check (list int)) "both stmts" [ 0; 1 ]
              (C.Int_set.elements g.C.affected)
        | _ -> Alcotest.fail "expected one general");
    tc "different types never generalize together" (fun () ->
        let set = C.create_set () in
        ignore (C.add set ~origin:C.Basic (mkdef ~dtype:D.Dstring "/a/b"));
        ignore (C.add set ~origin:C.Basic (mkdef ~dtype:D.Ddouble "/a/c"));
        G.close set;
        Alcotest.(check int) "no generals" 0 (List.length (C.generals set)));
    tc "different tables never generalize together" (fun () ->
        let set = C.create_set () in
        ignore (C.add set ~origin:C.Basic (mkdef ~table:"T" "/a/b"));
        ignore (C.add set ~origin:C.Basic (mkdef ~table:"U" "/a/c"));
        G.close set;
        Alcotest.(check int) "no generals" 0 (List.length (C.generals set)));
    tc "input that is already the generalization gets the edge" (fun () ->
        let set = close_with [ "/a/b"; "/a/*" ] in
        Alcotest.(check int) "no new nodes" 2 (C.cardinality set);
        let star = Option.get (C.find_by_key set (D.logical_key (mkdef "/a/*"))) in
        Alcotest.(check bool) "has child" true (not (C.Int_set.is_empty star.C.children)));
    tc "closure reaches fixpoint across generations" (fun () ->
        (* b+c gives /a/*; with /x/y it further generalizes. *)
        let set = close_with [ "/a/b"; "/a/c"; "/x/y" ] in
        let generals = List.map (fun c -> Pat.to_string c.C.def.D.pattern) (C.generals set) in
        Alcotest.(check bool) "a/*" true (List.mem "/a/*" generals);
        Alcotest.(check bool) "//*" true (List.mem "//*" generals));
    tc "roots are un-generalized tops" (fun () ->
        let set = close_with [ "/a/b"; "/a/c" ] in
        let roots = List.map (fun c -> Pat.to_string c.C.def.D.pattern) (C.roots set) in
        Alcotest.(check (list string)) "one root" [ "/a/*" ] roots);
    tc "basics keep Basic origin after re-derivation" (fun () ->
        let set = close_with [ "/a/*"; "/a/b" ] in
        let star = Option.get (C.find_by_key set (D.logical_key (mkdef "/a/*"))) in
        Alcotest.(check bool) "still basic" true (star.C.origin = C.Basic));
  ]

let properties =
  [
    QCheck.Test.make ~count:300 ~name:"pair results cover both inputs"
      (QCheck.pair Helpers.pattern_arbitrary Helpers.pattern_arbitrary)
      (fun (a, b) ->
        List.for_all
          (fun g ->
            Pat.covers ~general:g ~specific:a && Pat.covers ~general:g ~specific:b)
          (G.pair a b));
    QCheck.Test.make ~count:300 ~name:"pair is symmetric up to set equality"
      (QCheck.pair Helpers.pattern_arbitrary Helpers.pattern_arbitrary)
      (fun (a, b) ->
        let keys l = List.sort_uniq String.compare (List.map Pat.key l) in
        keys (G.pair a b) = keys (G.pair b a));
    QCheck.Test.make ~count:300 ~name:"pair of equal pattern is itself"
      Helpers.pattern_arbitrary (fun p ->
        match G.pair p p with
        | [ g ] -> Pat.equal g (Pat.rewrite_middle_wildcards p)
        | _ -> false);
    QCheck.Test.make ~count:100 ~name:"generalization terminates and is bounded"
      (QCheck.list_of_size (QCheck.Gen.int_range 1 6) Helpers.pattern_arbitrary)
      (fun pats ->
        let set = C.create_set () in
        List.iteri
          (fun i p ->
            (* Skip attribute-in-middle patterns the generator cannot rule out. *)
            let c = C.add set ~origin:C.Basic (D.make ~table:"T" ~pattern:p ~dtype:D.Dstring ()) in
            C.mark_affected c i)
          pats;
        G.close set;
        C.cardinality set <= G.max_candidates);
  ]

let suites =
  [
    ("generalize.paper", paper_examples);
    ("generalize.pair", pair_tests);
    ("generalize.rules", rule_tests);
    ("generalize.close", close_tests);
    Helpers.qsuite "generalize.properties" properties;
  ]
