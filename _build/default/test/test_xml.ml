(* Tests for the XML data model, parser and printer. *)

module T = Xia_xml.Types
module P = Xia_xml.Parser
module Pr = Xia_xml.Printer

let check = Alcotest.check
let tc name f = Alcotest.test_case name `Quick f

let parse_ok s =
  match P.parse s with
  | Ok doc -> doc
  | Error e -> Alcotest.failf "parse %S failed: %a" s P.pp_error e

let parse_err s =
  match P.parse s with
  | Ok _ -> Alcotest.failf "parse %S unexpectedly succeeded" s
  | Error _ -> ()

let roundtrip s = Pr.to_string (parse_ok s)

let basic_tests =
  [
    tc "simple element" (fun () ->
        check Alcotest.string "rt" "<a/>" (roundtrip "<a></a>"));
    tc "self closing" (fun () -> check Alcotest.string "rt" "<a/>" (roundtrip "<a/>"));
    tc "text content" (fun () ->
        check Alcotest.string "rt" "<a>hello</a>" (roundtrip "<a>hello</a>"));
    tc "nested" (fun () ->
        check Alcotest.string "rt" "<a><b>x</b><c/></a>" (roundtrip "<a><b>x</b><c/></a>"));
    tc "attributes" (fun () ->
        check Alcotest.string "rt" {|<a id="1" k="v"/>|} (roundtrip {|<a id="1" k="v"/>|}));
    tc "single-quoted attributes" (fun () ->
        check Alcotest.string "rt" {|<a id="1"/>|} (roundtrip "<a id='1'/>"));
    tc "entities decoded and re-encoded" (fun () ->
        check Alcotest.string "rt" "<a>x&amp;y&lt;z</a>" (roundtrip "<a>x&amp;y&lt;z</a>"));
    tc "numeric character reference" (fun () ->
        check Alcotest.string "rt" "<a>A</a>" (roundtrip "<a>&#65;</a>"));
    tc "hex character reference" (fun () ->
        check Alcotest.string "rt" "<a>A</a>" (roundtrip "<a>&#x41;</a>"));
    tc "apos and quot entities" (fun () ->
        check Alcotest.string "rt" "<a>'\"</a>" (roundtrip "<a>&apos;&quot;</a>"));
    tc "comments skipped" (fun () ->
        check Alcotest.string "rt" "<a><b/></a>" (roundtrip "<a><!-- note --><b/></a>"));
    tc "xml declaration skipped" (fun () ->
        check Alcotest.string "rt" "<a/>" (roundtrip "<?xml version=\"1.0\"?><a/>"));
    tc "doctype skipped" (fun () ->
        check Alcotest.string "rt" "<a/>" (roundtrip "<!DOCTYPE a><a/>"));
    tc "cdata" (fun () ->
        check Alcotest.string "rt" "<a>1 &lt; 2</a>" (roundtrip "<a><![CDATA[1 < 2]]></a>"));
    tc "whitespace-only text dropped" (fun () ->
        check Alcotest.string "rt" "<a><b/><c/></a>" (roundtrip "<a>\n  <b/>\n  <c/>\n</a>"));
    tc "mixed content preserved" (fun () ->
        check Alcotest.string "rt" "<a>x<b/>y</a>" (roundtrip "<a>x<b/>y</a>"));
    tc "namespace-ish tags are flat labels" (fun () ->
        check Alcotest.string "rt" "<ns:a><ns:b/></ns:a>" (roundtrip "<ns:a><ns:b/></ns:a>"));
    tc "mismatched closing tag rejected" (fun () -> parse_err "<a></b>");
    tc "unterminated element rejected" (fun () -> parse_err "<a><b></b>");
    tc "trailing garbage rejected" (fun () -> parse_err "<a/>junk");
    tc "empty input rejected" (fun () -> parse_err "");
    tc "unknown entity rejected" (fun () -> parse_err "<a>&nope;</a>");
    tc "attr without value rejected" (fun () -> parse_err "<a id/>");
  ]

let model_tests =
  [
    tc "count_elements" (fun () ->
        check Alcotest.int "n" 4 (T.count_elements (parse_ok "<a><b/><c><d/></c></a>")));
    tc "count_nodes includes attrs and text" (fun () ->
        check Alcotest.int "n" 4 (T.count_nodes (parse_ok {|<a id="1" k="2">x</a>|})));
    tc "direct_text concatenates only direct children" (fun () ->
        match parse_ok "<a>x<b>inner</b>y</a>" with
        | T.Element e -> check Alcotest.string "v" "xy" (T.direct_text e)
        | T.Text _ -> Alcotest.fail "expected element");
    tc "node_value of text" (fun () ->
        check Alcotest.string "v" "s" (T.node_value (T.text "s")));
    tc "leaf builds tag with value" (fun () ->
        check Alcotest.string "rt" "<t>v</t>" (Pr.to_string (T.leaf "t" "v")));
    tc "byte_size positive and grows" (fun () ->
        let small = T.byte_size (parse_ok "<a/>") in
        let big = T.byte_size (parse_ok "<a><b>some text here</b></a>") in
        Alcotest.(check bool) "grows" true (small > 0 && big > small));
    tc "iter_nodes preorder ids and label paths" (fun () ->
        let doc = parse_ok {|<a id="7"><b>x</b><c><d/></c></a>|} in
        let seen = ref [] in
        T.iter_nodes
          (fun id path value -> seen := (id, path, value) :: !seen)
          doc;
        let seen = List.rev !seen in
        check Alcotest.int "count" 5 (List.length seen);
        (match seen with
        | (id0, p0, _) :: (ida, pa, va) :: _ ->
            check Alcotest.int "root pre" 0 id0.T.pre;
            check (Alcotest.list Alcotest.string) "root path" [ "a" ] p0;
            check (Alcotest.option Alcotest.int) "attr idx" (Some 0) ida.T.attr;
            check (Alcotest.list Alcotest.string) "attr path" [ "a"; "@id" ] pa;
            check Alcotest.string "attr value" "7" va
        | _ -> Alcotest.fail "missing nodes");
        let paths = List.map (fun (_, p, _) -> String.concat "/" p) seen in
        Alcotest.(check bool) "d path present" true (List.mem "a/c/d" paths));
    tc "find_by_pre" (fun () ->
        let doc = parse_ok "<a><b/><c><d/></c></a>" in
        (match T.find_by_pre doc 3 with
        | Some e -> check Alcotest.string "tag" "d" e.T.tag
        | None -> Alcotest.fail "pre 3 not found");
        Alcotest.(check bool) "missing" true (T.find_by_pre doc 99 = None));
    tc "equal structural" (fun () ->
        Alcotest.(check bool) "eq" true
          (T.equal (parse_ok "<a><b>x</b></a>") (parse_ok "<a><b>x</b></a>"));
        Alcotest.(check bool) "neq" false
          (T.equal (parse_ok "<a><b>x</b></a>") (parse_ok "<a><b>y</b></a>")));
    tc "node_id compare orders by pre then attr" (fun () ->
        let a = { T.pre = 1; attr = None } in
        let b = { T.pre = 1; attr = Some 0 } in
        let c = { T.pre = 2; attr = None } in
        Alcotest.(check bool) "a<b" true (T.compare_node_id a b < 0);
        Alcotest.(check bool) "b<c" true (T.compare_node_id b c < 0);
        Alcotest.(check bool) "a=a" true (T.equal_node_id a a));
    tc "pretty printer parses back" (fun () ->
        (* no mixed content: pretty-printing interleaves indentation text *)
        let doc = parse_ok {|<a id="1"><b>x</b><c><d/></c></a>|} in
        let pretty = Pr.to_pretty_string doc in
        Alcotest.(check bool) "equal" true (T.equal doc (parse_ok pretty)));
  ]

let properties =
  [
    QCheck.Test.make ~count:200 ~name:"print/parse roundtrip" Helpers.doc_arbitrary
      (fun doc ->
        match P.parse (Pr.to_string doc) with
        | Ok doc' ->
            (* Whitespace-only text runs are dropped by the parser; compare
               the second roundtrip for a fixpoint instead. *)
            String.equal (Pr.to_string doc') (Pr.to_string (P.parse_exn (Pr.to_string doc')))
        | Error _ -> false);
    QCheck.Test.make ~count:200 ~name:"count_elements = iter_nodes elements"
      Helpers.doc_arbitrary (fun doc ->
        let n = ref 0 in
        T.iter_nodes (fun id _ _ -> if id.T.attr = None then incr n) doc;
        !n = T.count_elements doc);
    QCheck.Test.make ~count:200 ~name:"preorder ids are dense and increasing"
      Helpers.doc_arbitrary (fun doc ->
        let ids = ref [] in
        T.iter_nodes (fun id _ _ -> if id.T.attr = None then ids := id.T.pre :: !ids) doc;
        let ids = List.rev !ids in
        List.mapi (fun i x -> (i, x)) ids |> List.for_all (fun (i, x) -> i = x));
  ]

let suites =
  [
    ("xml.parser", basic_tests);
    ("xml.model", model_tests);
    Helpers.qsuite "xml.properties" properties;
  ]
