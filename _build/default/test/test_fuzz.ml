(* Fuzz-ish robustness properties: parsers must never crash — they return a
   Result or raise Invalid_argument from the _exn wrappers, nothing else. *)

let printable_gen =
  QCheck.Gen.(string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 60))

let printable = QCheck.make ~print:(Printf.sprintf "%S") printable_gen

(* Mutate a valid input by splicing random characters, to reach deeper parser
   states than pure noise. *)
let mutated_gen seeds =
  QCheck.Gen.(
    let* base = oneofl seeds in
    let* pos = int_range 0 (max 1 (String.length base - 1)) in
    let* insert = string_size ~gen:(map Char.chr (int_range 32 126)) (int_range 0 5) in
    return
      (String.sub base 0 (min pos (String.length base))
      ^ insert
      ^ String.sub base pos (String.length base - pos)))

let xpath_seeds =
  [
    "/Security[Yield>4.5]/SecInfo/*/Sector";
    "//Yield";
    "/a/@id";
    {|/a[b="x"][c]|};
    "/Order/@*";
  ]

let query_seeds =
  [
    {|for $s in T('C')/a where $s/b = 1 return $s|};
    {|for $s in T/a[b>1], $t in U/c return <r>{$s/x}</r>|};
    "insert into T <a><b>1</b></a>";
    {|delete from T where /a[k="v"]|};
    {|update T set /a/b = "9" where /a[c=1]|};
  ]

let sql_seeds =
  [
    {|SELECT * FROM T WHERE XMLEXISTS('/a[b="x"]' PASSING C AS "d")|};
    {|SELECT XMLQUERY('$d/a/n') FROM T WHERE XMLEXISTS('$d/a[b>1]')|};
    {|INSERT INTO T VALUES (XMLPARSE('<a/>'))|};
    {|UPDATE T SET XMLPATH '/a/b' = 'v' WHERE XMLEXISTS('/a')|};
  ]

let xml_seeds =
  [ {|<a id="1"><b>x&amp;y</b><!-- c --><![CDATA[z]]></a>|}; "<a><b/><c>t</c></a>" ]

let total f x =
  match f x with
  | Ok _ | Error _ -> true

let suites =
  [
    Helpers.qsuite "fuzz.parsers"
      [
        QCheck.Test.make ~count:500 ~name:"xml parser total on noise" printable
          (total Xia_xml.Parser.parse);
        QCheck.Test.make ~count:500 ~name:"xml parser total on mutations"
          (QCheck.make (mutated_gen xml_seeds))
          (total Xia_xml.Parser.parse);
        QCheck.Test.make ~count:500 ~name:"xpath parser total on noise" printable
          (total Xia_xpath.Parser.parse);
        QCheck.Test.make ~count:500 ~name:"xpath parser total on mutations"
          (QCheck.make (mutated_gen xpath_seeds))
          (total Xia_xpath.Parser.parse);
        QCheck.Test.make ~count:500 ~name:"query parser total on noise" printable
          (total Xia_query.Parser.parse_statement);
        QCheck.Test.make ~count:500 ~name:"query parser total on mutations"
          (QCheck.make (mutated_gen query_seeds))
          (total Xia_query.Parser.parse_statement);
        QCheck.Test.make ~count:500 ~name:"sqlxml parser total on mutations"
          (QCheck.make (mutated_gen sql_seeds))
          (total Xia_query.Sqlxml.parse_statement);
        QCheck.Test.make ~count:300 ~name:"valid xpath reparses to equal ast"
          (QCheck.make (QCheck.Gen.oneofl xpath_seeds))
          (fun s ->
            match Xia_xpath.Parser.parse s with
            | Error _ -> false
            | Ok p ->
                let printed = Xia_xpath.Printer.path_to_string p in
                (match Xia_xpath.Parser.parse printed with
                | Ok p' -> Xia_xpath.Ast.equal_path p p'
                | Error _ -> false));
        QCheck.Test.make ~count:300 ~name:"valid statements reparse to same text"
          (QCheck.make (QCheck.Gen.oneofl query_seeds))
          (fun s ->
            match Xia_query.Parser.parse_statement s with
            | Error _ -> false
            | Ok stmt ->
                let printed = Xia_query.Printer.statement_to_string stmt in
                (match Xia_query.Parser.parse_statement printed with
                | Ok stmt' ->
                    String.equal printed (Xia_query.Printer.statement_to_string stmt')
                | Error _ -> false));
      ];
  ]
