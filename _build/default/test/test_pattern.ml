(* Tests for linear index patterns and NFA containment. *)

module Pat = Xia_xpath.Pattern

let tc name f = Alcotest.test_case name `Quick f
let pat = Helpers.pattern

let covers g s = Pat.covers ~general:(pat g) ~specific:(pat s)
let accepts p path = Pat.accepts (pat p) path

let accepts_tests =
  [
    tc "exact path" (fun () ->
        Alcotest.(check bool) "yes" true (accepts "/a/b" [ "a"; "b" ]);
        Alcotest.(check bool) "no shorter" false (accepts "/a/b" [ "a" ]);
        Alcotest.(check bool) "no longer" false (accepts "/a/b" [ "a"; "b"; "c" ]));
    tc "wildcard matches any element label" (fun () ->
        Alcotest.(check bool) "yes" true (accepts "/a/*" [ "a"; "anything" ]);
        Alcotest.(check bool) "not attr" false (accepts "/a/*" [ "a"; "@id" ]));
    tc "descendant gap" (fun () ->
        Alcotest.(check bool) "depth1" true (accepts "/a//b" [ "a"; "b" ]);
        Alcotest.(check bool) "depth3" true (accepts "/a//b" [ "a"; "x"; "y"; "b" ]);
        Alcotest.(check bool) "missing" false (accepts "/a//b" [ "a"; "x" ]));
    tc "leading descendant" (fun () ->
        Alcotest.(check bool) "root" true (accepts "//b" [ "b" ]);
        Alcotest.(check bool) "deep" true (accepts "//b" [ "x"; "y"; "b" ]));
    tc "attribute label" (fun () ->
        Alcotest.(check bool) "yes" true (accepts "/a/@id" [ "a"; "@id" ]);
        Alcotest.(check bool) "wrong attr" false (accepts "/a/@id" [ "a"; "@x" ]);
        Alcotest.(check bool) "attr wildcard" true (accepts "/a/@*" [ "a"; "@x" ]));
    tc "universal matches all element paths" (fun () ->
        Alcotest.(check bool) "yes" true (Pat.accepts Pat.universal [ "x"; "y"; "z" ]);
        Alcotest.(check bool) "not attrs" false (Pat.accepts Pat.universal [ "x"; "@a" ]));
    tc "universal_attr matches attribute paths" (fun () ->
        Alcotest.(check bool) "yes" true (Pat.accepts Pat.universal_attr [ "x"; "@a" ]));
    tc "recursive labels" (fun () ->
        Alcotest.(check bool) "aa" true (accepts "/a//a" [ "a"; "a" ]);
        Alcotest.(check bool) "axa" true (accepts "/a//a" [ "a"; "x"; "a" ]));
  ]

let covers_tests =
  [
    tc "reflexive" (fun () ->
        Alcotest.(check bool) "yes" true (covers "/a/b" "/a/b"));
    tc "wildcard covers name" (fun () ->
        Alcotest.(check bool) "yes" true (covers "/a/*" "/a/b");
        Alcotest.(check bool) "no" false (covers "/a/b" "/a/*"));
    tc "descendant covers child" (fun () ->
        Alcotest.(check bool) "yes" true (covers "/a//b" "/a/b");
        Alcotest.(check bool) "deeper" true (covers "/a//b" "/a/x/b");
        Alcotest.(check bool) "no" false (covers "/a/b" "/a//b"));
    tc "paper example: Security//* covers both C1-shaped patterns" (fun () ->
        Alcotest.(check bool) "symbol" true (covers "/Security//*" "/Security/Symbol");
        Alcotest.(check bool) "sector" true
          (covers "/Security//*" "/Security/SecInfo/*/Sector");
        Alcotest.(check bool) "not reverse" false
          (covers "/Security/Symbol" "/Security//*"));
    tc "universal covers everything element" (fun () ->
        Alcotest.(check bool) "b" true
          (Pat.covers ~general:Pat.universal ~specific:(pat "/a/b/c"));
        Alcotest.(check bool) "wild" true
          (Pat.covers ~general:Pat.universal ~specific:(pat "/a//*"));
        Alcotest.(check bool) "not attr" false
          (Pat.covers ~general:Pat.universal ~specific:(pat "/a/@id")));
    tc "attr patterns covered by //@*" (fun () ->
        Alcotest.(check bool) "yes" true
          (Pat.covers ~general:Pat.universal_attr ~specific:(pat "/a/b/@id")));
    tc "incomparable patterns" (fun () ->
        Alcotest.(check bool) "no1" false (covers "/a/b" "/a/c");
        Alcotest.(check bool) "no2" false (covers "/a/c" "/a/b"));
    tc "tricky: //a//b vs /a/x/b" (fun () ->
        Alcotest.(check bool) "yes" true (covers "//a//b" "/a/x/b"));
    tc "tricky: /a/*/b does not cover /a/b" (fun () ->
        Alcotest.(check bool) "no" false (covers "/a/*/b" "/a/b"));
    tc "tricky: /a//b covers /a/*/b" (fun () ->
        Alcotest.(check bool) "yes" true (covers "/a//b" "/a/*/b"));
    tc "tricky: //* vs fresh labels" (fun () ->
        (* Containment must hold even for labels unseen in either pattern. *)
        Alcotest.(check bool) "yes" true (covers "//*" "/zzz/qqq"));
    tc "equivalent" (fun () ->
        Alcotest.(check bool) "same lang" true
          (Pat.equivalent (pat "/a//b") (pat "/a//b"));
        Alcotest.(check bool) "diff" false (Pat.equivalent (pat "/a//b") (pat "/a/b")));
  ]

let rewrite_tests =
  [
    tc "single middle wildcard" (fun () ->
        Alcotest.(check string) "rw" "/a//b"
          (Pat.to_string (Pat.rewrite_middle_wildcards (pat "/a/*/b"))));
    tc "two middle wildcards" (fun () ->
        Alcotest.(check string) "rw" "/a//b"
          (Pat.to_string (Pat.rewrite_middle_wildcards (pat "/a/*/*/b"))));
    tc "descendant wildcard middle" (fun () ->
        Alcotest.(check string) "rw" "/a//b"
          (Pat.to_string (Pat.rewrite_middle_wildcards (pat "/a//*/b"))));
    tc "last wildcard kept" (fun () ->
        Alcotest.(check string) "rw" "/a//*"
          (Pat.to_string (Pat.rewrite_middle_wildcards (pat "/a//*"))));
    tc "leading wildcard folds" (fun () ->
        Alcotest.(check string) "rw" "//b"
          (Pat.to_string (Pat.rewrite_middle_wildcards (pat "/*/b"))));
    tc "no change without wildcards" (fun () ->
        Alcotest.(check string) "rw" "/a/b/c"
          (Pat.to_string (Pat.rewrite_middle_wildcards (pat "/a/b/c"))));
    tc "rewrite only generalizes" (fun () ->
        let p = pat "/a/*/b/*/c" in
        let r = Pat.rewrite_middle_wildcards p in
        Alcotest.(check bool) "covers" true (Pat.covers ~general:r ~specific:p));
  ]

let misc_tests =
  [
    tc "of_string rejects predicates" (fun () ->
        Alcotest.(check bool) "err" true
          (Result.is_error (Pat.of_string_result "/a[b>1]/c")));
    tc "targets_attribute" (fun () ->
        Alcotest.(check bool) "attr" true (Pat.targets_attribute (pat "/a/@id"));
        Alcotest.(check bool) "elem" false (Pat.targets_attribute (pat "/a/b")));
    tc "is_general_shape" (fun () ->
        Alcotest.(check bool) "wild" true (Pat.is_general_shape (pat "/a/*"));
        Alcotest.(check bool) "desc" true (Pat.is_general_shape (pat "/a//b"));
        Alcotest.(check bool) "plain" false (Pat.is_general_shape (pat "/a/b")));
    tc "specificity ordering" (fun () ->
        Alcotest.(check bool) "named > wild" true
          (Pat.specificity (pat "/a/b") > Pat.specificity (pat "/a/*"));
        Alcotest.(check bool) "child > desc" true
          (Pat.specificity (pat "/a/b") > Pat.specificity (pat "/a//b")));
    tc "key is canonical" (fun () ->
        Alcotest.(check string) "key" "/a//*" (Pat.key (pat "/a//*")));
    tc "compare consistent with equal" (fun () ->
        Alcotest.(check int) "eq" 0 (Pat.compare (pat "/a/b") (pat "/a/b")));
    tc "last_step of empty raises" (fun () ->
        Alcotest.check_raises "invalid"
          (Invalid_argument "Pattern.last_step: empty pattern") (fun () ->
            ignore (Pat.last_step [])));
  ]

let properties =
  [
    QCheck.Test.make ~count:300 ~name:"covers is reflexive" Helpers.pattern_arbitrary
      (fun p -> Pat.covers ~general:p ~specific:p);
    QCheck.Test.make ~count:300 ~name:"universal covers every element pattern"
      Helpers.pattern_arbitrary (fun p ->
        Pat.targets_attribute p || Pat.covers ~general:Pat.universal ~specific:p);
    QCheck.Test.make ~count:500
      ~name:"covers implies accepts-subset on sampled paths"
      (QCheck.triple Helpers.pattern_arbitrary Helpers.pattern_arbitrary
         Helpers.label_path_arbitrary)
      (fun (g, s, path) ->
        (* Whenever g covers s, every sampled path s accepts is accepted by
           g as well — the semantic meaning of containment. *)
        (not (Pat.covers ~general:g ~specific:s))
        || (not (Pat.accepts s path))
        || Pat.accepts g path);
    QCheck.Test.make ~count:300 ~name:"rewrite rule 0 generalizes"
      Helpers.pattern_arbitrary (fun p ->
        let r = Pat.rewrite_middle_wildcards p in
        Pat.covers ~general:r ~specific:p);
    QCheck.Test.make ~count:200 ~name:"covers transitive (sampled)"
      (QCheck.triple Helpers.pattern_arbitrary Helpers.pattern_arbitrary
         Helpers.pattern_arbitrary) (fun (a, b, c) ->
        (* a ⊇ b and b ⊇ c implies a ⊇ c *)
        (not (Pat.covers ~general:a ~specific:b && Pat.covers ~general:b ~specific:c))
        || Pat.covers ~general:a ~specific:c);
    QCheck.Test.make ~count:300 ~name:"accepts agrees with eval reachability"
      (QCheck.pair Helpers.pattern_arbitrary Helpers.doc_arbitrary) (fun (p, doc) ->
        (* Every node whose label path the pattern accepts is found by
           evaluating the pattern as a path, and vice versa. *)
        let by_accepts = ref 0 in
        Xia_xml.Types.iter_nodes
          (fun _ path _ -> if Pat.accepts p path then incr by_accepts)
          doc;
        let by_eval =
          List.length (Xia_xpath.Eval.eval_doc doc (Pat.to_path p))
        in
        !by_accepts = by_eval);
  ]

let suites =
  [
    ("pattern.accepts", accepts_tests);
    ("pattern.covers", covers_tests);
    ("pattern.rewrite", rewrite_tests);
    ("pattern.misc", misc_tests);
    Helpers.qsuite "pattern.properties" properties;
  ]
