(* Full TPoX scenario: generate the three-table TPoX-like database, run every
   search algorithm at several disk budgets, and validate the best
   configuration by actually executing the workload.

     dune exec examples/tpox_advisor.exe *)

module Advisor = Xia_advisor.Advisor
module Search = Xia_advisor.Search
module Catalog = Xia_index.Catalog
module W = Xia_workload.Workload

let () =
  let catalog = Catalog.create () in
  Format.printf "Generating TPoX data...@.";
  Xia_workload.Tpox.load catalog;
  List.iter
    (fun t ->
      let s = Catalog.store catalog t in
      Format.printf "  %-10s %6d docs %8d KB@." t
        (Xia_storage.Doc_store.doc_count s)
        (Xia_storage.Doc_store.total_bytes s / 1024))
    (Catalog.table_names catalog);

  let workload = Xia_workload.Tpox.workload () in
  Format.printf "@.Workload: the 11 TPoX queries.@.";

  let session = Advisor.create_session catalog workload in
  Format.printf "Candidates: %d basic, %d after generalization.@.@."
    (List.length (Xia_advisor.Candidate.basics session.Advisor.candidates))
    (Xia_advisor.Candidate.cardinality session.Advisor.candidates);

  let all = Advisor.session_advise session ~budget:max_int Advisor.All_index in
  let all_size = all.Advisor.outcome.Search.size in
  Format.printf "All-Index configuration: %d indexes, %d KB, est speedup %.2fx@.@."
    (List.length all.Advisor.outcome.Search.config)
    (all_size / 1024) all.Advisor.est_speedup;

  Format.printf "%-10s | %-20s %4s %2s %2s %9s %8s %6s@." "budget" "algorithm" "idx"
    "G" "S" "size(KB)" "speedup" "calls";
  Format.printf "%s@." (String.make 78 '-');
  List.iter
    (fun frac ->
      let budget = int_of_float (frac *. float_of_int all_size) in
      List.iter
        (fun alg ->
          let r = Advisor.session_advise session ~budget alg in
          Format.printf "%8.2fx | %-20s %4d %2d %2d %9d %7.2fx %6d@." frac
            (Advisor.algorithm_name alg)
            (List.length r.Advisor.outcome.Search.config)
            r.Advisor.general_count r.Advisor.specific_count
            (r.Advisor.outcome.Search.size / 1024)
            r.Advisor.est_speedup r.Advisor.outcome.Search.optimizer_calls)
        Advisor.all_algorithms;
      Format.printf "%s@." (String.make 78 '-'))
    [ 0.25; 0.5; 1.0; 2.0 ];

  (* Validate the winning configuration by real execution. *)
  let best = Advisor.session_advise session ~budget:all_size Advisor.Greedy_heuristics in
  Format.printf "@.Recommended DDL (greedy+heuristics at 1.0x):@.";
  List.iter
    (fun d -> Format.printf "  CREATE INDEX %a@." Xia_index.Index_def.pp d)
    (Advisor.indexes best);
  let actual = Advisor.actual_speedup catalog workload (Advisor.indexes best) in
  Format.printf "@.Actual measured speedup of that configuration: %.2fx@." actual
