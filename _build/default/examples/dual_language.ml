(* Dual-language support: the same workload written in mini-XQuery and in
   SQL/XML produces identical candidates, identical plans and an identical
   recommendation — the paper's point that optimizer coupling makes the
   advisor language-agnostic ("our XML Index Advisor implementation in DB2
   supports both XQuery and SQL/XML simply by virtue of the fact that the
   DB2 query optimizer supports both").

     dune exec examples/dual_language.exe *)

module Advisor = Xia_advisor.Advisor
module Catalog = Xia_index.Catalog
module W = Xia_workload.Workload

let xquery_workload =
  [
    {|for $sec in SECURITY('SDOC')/Security where $sec/Symbol = "SYM00042" return $sec|};
    {|for $sec in SECURITY('SDOC')/Security[Yield>4.5] return $sec|};
    {|for $cust in CUSTACC('CADOC')/Customer where $cust/Nationality = "Norway" return $cust|};
  ]

let sqlxml_workload =
  [
    {|SELECT * FROM SECURITY WHERE XMLEXISTS('$d/Security[Symbol="SYM00042"]' PASSING SDOC AS "d")|};
    {|SELECT * FROM SECURITY WHERE XMLEXISTS('$d/Security[Yield>4.5]' PASSING SDOC AS "d")|};
    {|SELECT * FROM CUSTACC WHERE XMLEXISTS('$d/Customer[Nationality="Norway"]' PASSING CADOC AS "d")|};
  ]

let parse_sql s = Xia_query.Sqlxml.parse_statement_exn s

let recommend catalog wl =
  Advisor.advise catalog wl ~budget:(8 * 1024 * 1024) Advisor.Greedy_heuristics

let ddl r =
  List.sort String.compare
    (List.map
       (fun (d : Xia_index.Index_def.t) ->
         Printf.sprintf "%s XMLPATTERN '%s' AS %s" d.table
           (Xia_xpath.Pattern.to_string d.pattern)
           (Xia_index.Index_def.data_type_to_string d.dtype))
       (Advisor.indexes r))

let () =
  let catalog = Catalog.create () in
  Xia_workload.Tpox.load catalog;
  let xq = W.of_strings xquery_workload in
  let sql = W.of_statements (List.map parse_sql sqlxml_workload) in
  Format.printf "XQuery workload:@.";
  List.iter (fun s -> Format.printf "  %s@." s) xquery_workload;
  Format.printf "@.SQL/XML workload:@.";
  List.iter (fun s -> Format.printf "  %s@." s) sqlxml_workload;
  let rx = recommend catalog xq in
  let rs = recommend catalog sql in
  Format.printf "@.Recommendation from the XQuery form:@.";
  List.iter (Format.printf "  CREATE INDEX ON %s@.") (ddl rx);
  Format.printf "@.Recommendation from the SQL/XML form:@.";
  List.iter (Format.printf "  CREATE INDEX ON %s@.") (ddl rs);
  Format.printf "@.Identical: %b (speedups %.2fx vs %.2fx)@."
    (ddl rx = ddl rs) rx.Advisor.est_speedup rs.Advisor.est_speedup
