(* Generalization to unseen queries (the paper's Section VII-C story).

   A DBA trains the advisor on the first n queries of a 20-query workload and
   the remaining queries arrive later.  The top-down search recommends
   general indexes - e.g. the pattern "/Security/SecInfo//star" - that keep
   benefiting the unseen queries, while greedy-with-heuristics over-fits the
   training set.

     dune exec examples/evolving_workload.exe *)

module Advisor = Xia_advisor.Advisor
module Catalog = Xia_index.Catalog
module W = Xia_workload.Workload

let () =
  let catalog = Catalog.create () in
  Xia_workload.Tpox.load catalog;
  (* 11 TPoX queries + 9 variation queries for diversity, as in the paper. *)
  let test_workload =
    Xia_workload.Tpox.workload () @ Xia_workload.Tpox.variation_queries ()
  in
  Format.printf "Test workload: %d queries.@.@." (W.size test_workload);

  let session_all = Advisor.create_session catalog test_workload in
  let all = Advisor.session_advise session_all ~budget:max_int Advisor.All_index in
  let budget = 20 * all.Advisor.outcome.Xia_advisor.Search.size in

  Format.printf
    "%5s | %-28s | %-28s | %s@." "train" "top-down lite (sp, G/S)" "heuristics (sp, G/S)"
    "all-index sp";
  Format.printf "%s@." (String.make 92 '-');
  let all_sp = all.Advisor.est_speedup in
  List.iter
    (fun n ->
      let train = W.prefix n test_workload in
      let td = Advisor.advise catalog train ~budget Advisor.Top_down_lite in
      let h = Advisor.advise catalog train ~budget Advisor.Greedy_heuristics in
      let sp r = Advisor.estimated_speedup catalog test_workload (Advisor.indexes r) in
      Format.printf "%5d | %10.2fx  (G:%2d, S:%2d)   | %10.2fx  (G:%2d, S:%2d)   | %10.2fx@."
        n (sp td) td.Advisor.general_count td.Advisor.specific_count (sp h)
        h.Advisor.general_count h.Advisor.specific_count all_sp)
    [ 1; 2; 4; 6; 8; 10; 12; 14; 16; 18; 20 ];

  Format.printf
    "@.The top-down configurations keep their edge on unseen queries because they@.\
     contain general patterns; at train=20 both algorithms see the whole workload@.\
     and the specific configuration wins, as in the paper's Figure 4.@."
