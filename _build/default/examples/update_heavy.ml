(* Index maintenance vs. query benefit.

   The advisor's benefit formula charges every index mc(x, s) for each
   update/delete/insert statement.  As the share of order-entry transactions
   grows, indexes on the hot XORDER table become less attractive and
   eventually drop out of the recommendation — while the read-only SECURITY
   and CUSTACC indexes are unaffected.

     dune exec examples/update_heavy.exe *)

module Advisor = Xia_advisor.Advisor
module Catalog = Xia_index.Catalog
module D = Xia_index.Index_def
module W = Xia_workload.Workload

let count_on table r =
  List.length
    (List.filter (fun (d : D.t) -> String.equal d.D.table table) (Advisor.indexes r))

let () =
  let catalog = Catalog.create () in
  Xia_workload.Tpox.load catalog;
  let budget = 8 * 1024 * 1024 in
  Format.printf
    "Workload: 11 TPoX queries + order-entry DML at increasing frequency.@.@.";
  Format.printf "%10s | %7s | %8s | %8s | %8s@." "DML freq" "indexes" "XORDER"
    "SECURITY" "CUSTACC";
  Format.printf "%s@." (String.make 56 '-');
  List.iter
    (fun update_freq ->
      let wl = Xia_workload.Tpox.workload_with_updates ~update_freq () in
      let r = Advisor.advise catalog wl ~budget Advisor.Greedy_heuristics in
      Format.printf "%10.0f | %7d | %8d | %8d | %8d@." update_freq
        (List.length (Advisor.indexes r))
        (count_on Xia_workload.Tpox.order_table r)
        (count_on Xia_workload.Tpox.security_table r)
        (count_on Xia_workload.Tpox.custacc_table r))
    [ 0.0; 1.0; 100.0; 1_000.0; 10_000.0; 100_000.0 ];
  Format.printf
    "@.As the order tables get hotter, the advisor stops recommending indexes on@.\
     them: their maintenance cost outweighs the lookup benefit.@."
