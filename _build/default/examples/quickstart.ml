(* Quickstart: load a small XML table, run the advisor on the paper's two
   running-example queries, and inspect what the optimizer does with the
   recommendation.

     dune exec examples/quickstart.exe *)

module Catalog = Xia_index.Catalog
module Doc_store = Xia_storage.Doc_store
module Advisor = Xia_advisor.Advisor
module Optimizer = Xia_optimizer.Optimizer

let () =
  (* 1. Create a catalog with one table of Security documents. *)
  let catalog = Catalog.create () in
  let store = Doc_store.create "SECURITY" in
  let rng = Random.State.make [| 2024 |] in
  for i = 0 to 1999 do
    ignore (Doc_store.insert store (Xia_workload.Tpox.security rng i))
  done;
  ignore (Catalog.add_table catalog store);
  Catalog.runstats_all catalog;
  Format.printf "Loaded %d documents (%d KB, %d distinct paths)@.@."
    (Doc_store.doc_count store)
    (Doc_store.total_bytes store / 1024)
    (Xia_storage.Path_stats.path_count (Catalog.stats catalog "SECURITY"));

  (* 2. The training workload: the paper's Q1 and Q2. *)
  let workload =
    Xia_workload.Workload.of_strings
      [
        {|for $sec in SECURITY('SDOC')/Security where $sec/Symbol = "SYM00042" return $sec|};
        {|for $sec in SECURITY('SDOC')/Security[Yield>4.5]
          where $sec/SecInfo/*/Sector = "Energy"
          return <Security>{$sec/Name}</Security>|};
      ]
  in
  Format.printf "Workload:@.%a@.@." Xia_workload.Workload.pp workload;

  (* 3. What does the optimizer's Enumerate Indexes mode see? *)
  Format.printf "Basic candidates (Enumerate Indexes mode):@.";
  List.iter
    (fun (item : Xia_workload.Workload.item) ->
      List.iter
        (fun (table, pattern, dtype) ->
          Format.printf "  %s: %s on %s AS %s@." item.label
            (Xia_xpath.Pattern.to_string pattern)
            table
            (Xia_index.Index_def.data_type_to_string dtype))
        (Optimizer.enumerate_indexes catalog item.statement))
    workload;
  Format.printf "@.";

  (* 4. Ask the advisor for a configuration within 1 MB of disk. *)
  let budget = 1024 * 1024 in
  let r = Advisor.advise catalog workload ~budget Advisor.Greedy_heuristics in
  Format.printf "Recommendation (budget %d KB):@.%a@." (budget / 1024)
    Advisor.pp_recommendation r;

  (* 5. Materialize the recommendation and compare actual execution. *)
  let wall0, cost0, _ = Advisor.execute_workload catalog workload [] in
  let wall1, cost1, _ = Advisor.execute_workload catalog workload (Advisor.indexes r) in
  Format.printf
    "Estimated speedup: %.1fx@.Actual speedup:    %.1fx (work), %.1fx (wall: %.4fs -> %.4fs)@."
    r.Advisor.est_speedup (cost0 /. cost1)
    (if wall1 > 0.0 then wall0 /. wall1 else Float.nan)
    wall0 wall1
