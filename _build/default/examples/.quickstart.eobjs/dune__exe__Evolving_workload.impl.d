examples/evolving_workload.ml: Format List String Xia_advisor Xia_index Xia_workload
