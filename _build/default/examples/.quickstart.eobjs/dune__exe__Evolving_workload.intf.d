examples/evolving_workload.mli:
