examples/update_heavy.mli:
