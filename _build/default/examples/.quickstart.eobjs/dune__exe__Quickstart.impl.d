examples/quickstart.ml: Float Format List Random Xia_advisor Xia_index Xia_optimizer Xia_storage Xia_workload Xia_xpath
