examples/dual_language.ml: Format List Printf String Xia_advisor Xia_index Xia_query Xia_workload Xia_xpath
