examples/tpox_advisor.ml: Format List String Xia_advisor Xia_index Xia_storage Xia_workload
