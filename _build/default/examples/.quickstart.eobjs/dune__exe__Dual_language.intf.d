examples/dual_language.mli:
