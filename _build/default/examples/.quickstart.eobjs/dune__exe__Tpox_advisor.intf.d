examples/tpox_advisor.mli:
