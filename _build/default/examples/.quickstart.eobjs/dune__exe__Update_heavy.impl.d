examples/update_heavy.ml: Format List String Xia_advisor Xia_index Xia_workload
