examples/quickstart.mli:
