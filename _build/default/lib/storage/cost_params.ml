(* Cost-model constants shared by the storage engine, the index size model
   and the query optimizer.

   Units are abstract "cost units" roughly proportional to microseconds on a
   2000s-era server, in the spirit of the DB2 cost model the paper relies on:
   sequential I/O is much cheaper per page than random I/O, and CPU work is
   orders of magnitude cheaper than I/O. *)

let page_size = 4096

(* I/O *)
let sequential_page_cost = 80.0
let random_page_cost = 900.0

(* Fraction of random page reads served by the buffer pool. *)
let buffer_hit_ratio = 0.3

let effective_random_page_cost = random_page_cost *. (1.0 -. buffer_hit_ratio)

(* CPU.  XML navigation is expensive per node (tree traversal, name tests,
   type checks) — this is precisely why XML index advisors matter: the
   no-index plan pays it for every node of every document. *)
let cpu_per_node = 6.0         (* visiting one node during navigation *)
let cpu_per_predicate = 2.0    (* evaluating one predicate on one node *)
let cpu_per_index_entry = 0.25 (* scanning one index leaf entry *)
let cpu_per_result = 1.0       (* constructing one result item *)

(* Index entry layout: key bytes + record id + page overhead share. *)
let rid_bytes = 12
let entry_overhead_bytes = 6
let leaf_fill_factor = 0.70
let key_prefix_compression = 0.75 (* average fraction of key bytes stored *)

(* B-tree update cost per maintained entry (insert/delete), including the
   amortized descend and page write. *)
let index_update_entry_cost = 25.0
