(* Loading and saving document tables as directories of XML files.

   A table maps to a directory; every regular file ending in ".xml" becomes
   one document (in lexicographic filename order, so ids are reproducible).
   This is how external data enters the advisor: point the CLI at a directory
   of XML documents. *)

type load_report = {
  loaded : int;
  failed : (string * string) list;  (* filename, error *)
}

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let xml_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix (String.lowercase_ascii f) ".xml")
  |> List.sort String.compare

(* Load every *.xml file of [dir] into [store].  Malformed files are
   reported, not fatal. *)
let load_directory store dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    invalid_arg (Printf.sprintf "Persist.load_directory: %s is not a directory" dir);
  let loaded = ref 0 in
  let failed = ref [] in
  List.iter
    (fun file ->
      let path = Filename.concat dir file in
      match Xia_xml.Parser.parse (read_file path) with
      | Ok doc ->
          ignore (Doc_store.insert store doc);
          incr loaded
      | Error e -> failed := (file, Fmt.str "%a" Xia_xml.Parser.pp_error e) :: !failed)
    (xml_files dir);
  { loaded = !loaded; failed = List.rev !failed }

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    let parent = Filename.dirname dir in
    if parent <> dir then mkdir_p parent;
    Sys.mkdir dir 0o755
  end

(* Write every document of [store] to [dir] as NNNNNN.xml. *)
let save_directory store dir =
  mkdir_p dir;
  Doc_store.iter
    (fun id doc ->
      let path = Filename.concat dir (Printf.sprintf "%06d.xml" id) in
      let oc = open_out_bin path in
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc (Xia_xml.Printer.to_string doc)))
    store

(* Workload files: '#' comments and blank lines ignored; each remaining line
   is "[freq|]statement"; parsing of the statement itself is left to the
   caller (query front ends live above this library). *)
let workload_lines path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      List.rev !lines)
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else
           match String.index_opt line '|' with
           | Some i -> (
               let prefix = String.trim (String.sub line 0 i) in
               let rest = String.trim (String.sub line (i + 1) (String.length line - i - 1)) in
               match float_of_string_opt prefix with
               | Some freq -> Some (freq, rest)
               | None -> Some (1.0, line))
           | None -> Some (1.0, line))
