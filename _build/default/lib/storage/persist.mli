(** Loading and saving tables as directories of XML files, plus workload-file
    reading. *)

type load_report = {
  loaded : int;
  failed : (string * string) list;  (** filename, error message *)
}

(** Load every [*.xml] file of a directory (lexicographic order) into the
    store; malformed files are reported in [failed].
    @raise Invalid_argument when the directory does not exist. *)
val load_directory : Doc_store.t -> string -> load_report

(** Write every document as [NNNNNN.xml]; creates the directory. *)
val save_directory : Doc_store.t -> string -> unit

(** Read a workload file: ['#'] comments and blank lines skipped, each line
    is ["freq|statement"] or just a statement (frequency 1.0).  Statement
    text is returned verbatim. *)
val workload_lines : string -> (float * string) list
