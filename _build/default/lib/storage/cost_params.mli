(** Cost-model constants shared by the storage engine, the index size model
    and the optimizer.  Abstract cost units; only ratios matter. *)

val page_size : int

val sequential_page_cost : float
val random_page_cost : float
val buffer_hit_ratio : float

(** [random_page_cost] discounted by the buffer hit ratio. *)
val effective_random_page_cost : float

val cpu_per_node : float
val cpu_per_predicate : float
val cpu_per_index_entry : float
val cpu_per_result : float

val rid_bytes : int
val entry_overhead_bytes : int
val leaf_fill_factor : float
val key_prefix_compression : float

val index_update_entry_cost : float
