(** A table of XML documents (one XML-typed column, as in DB2 pureXML). *)

type doc_id = int

(** One DML event.  Replacement is logged as delete + insert. *)
type change = {
  gen : int;
  kind : [ `Insert | `Delete ];
  doc_id : doc_id;
  doc : Xia_xml.Types.t;
}

type t

val create : string -> t

val name : t -> string

(** Monotone counter bumped by every DML operation; lets caches detect
    staleness. *)
val generation : t -> int

(** Changes after generation [gen], oldest first; [None] when the bounded
    change log has been truncated past that point (consumers must rebuild). *)
val changes_since : t -> int -> change list option

val doc_count : t -> int
val total_bytes : t -> int
val total_elements : t -> int

(** Number of storage pages occupied by the table. *)
val pages : t -> int

val insert : t -> Xia_xml.Types.t -> doc_id
val find : t -> doc_id -> Xia_xml.Types.t option

(** [false] when the document does not exist. *)
val delete : t -> doc_id -> bool

(** Replace the document stored under an existing id. *)
val replace : t -> doc_id -> Xia_xml.Types.t -> bool

val iter : (doc_id -> Xia_xml.Types.t -> unit) -> t -> unit
val fold : (doc_id -> Xia_xml.Types.t -> 'a -> 'a) -> t -> 'a -> 'a
val doc_ids : t -> doc_id list

val avg_doc_bytes : t -> float
val avg_doc_elements : t -> float
