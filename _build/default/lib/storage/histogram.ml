(* Equi-width histograms over numeric path values.

   RUNSTATS keeps a bounded sample of each path's numeric values and builds a
   small equi-width histogram from it; the optimizer then estimates range
   selectivities from bucket densities instead of assuming one uniform
   distribution between min and max — which matters for skewed values. *)

type t = {
  lo : float;
  hi : float;
  counts : int array;  (* bucket i covers [lo + i*w, lo + (i+1)*w) *)
  total : int;
}

let default_buckets = 16

let bucket_count t = Array.length t.counts
let total t = t.total
let bounds t = (t.lo, t.hi)

(* Build from a sample; [None] when the sample is empty or degenerate. *)
let create ?(buckets = default_buckets) values =
  match values with
  | [] -> None
  | v0 :: _ ->
      let lo = List.fold_left Float.min v0 values in
      let hi = List.fold_left Float.max v0 values in
      if hi <= lo then None
      else begin
        let counts = Array.make (max 1 buckets) 0 in
        let width = (hi -. lo) /. float_of_int (Array.length counts) in
        List.iter
          (fun v ->
            let i =
              min (Array.length counts - 1) (int_of_float ((v -. lo) /. width))
            in
            counts.(i) <- counts.(i) + 1)
          values;
        Some { lo; hi; counts; total = List.length values }
      end

(* Fraction of values strictly below [x], with linear interpolation inside
   the straddled bucket. *)
let fraction_below t x =
  if x <= t.lo then 0.0
  else if x >= t.hi then 1.0
  else begin
    let n = Array.length t.counts in
    let width = (t.hi -. t.lo) /. float_of_int n in
    let pos = (x -. t.lo) /. width in
    let full = int_of_float pos in
    let partial = pos -. float_of_int full in
    let below = ref 0.0 in
    for i = 0 to min (n - 1) (full - 1) do
      below := !below +. float_of_int t.counts.(i)
    done;
    if full < n then below := !below +. (partial *. float_of_int t.counts.(full));
    !below /. float_of_int (max 1 t.total)
  end

(* Fraction of values in [x, y) — clamped, y >= x. *)
let fraction_between t x y =
  Float.max 0.0 (fraction_below t y -. fraction_below t x)

(* Density around a point: the straddling bucket's share, used as an upper
   bound for equality fractions. *)
let point_density t x =
  if x < t.lo || x > t.hi then 0.0
  else begin
    let n = Array.length t.counts in
    let width = (t.hi -. t.lo) /. float_of_int n in
    let i = min (n - 1) (max 0 (int_of_float ((x -. t.lo) /. width))) in
    float_of_int t.counts.(i) /. float_of_int (max 1 t.total)
  end

let pp ppf t =
  Fmt.pf ppf "hist[%g..%g: %a]" t.lo t.hi
    Fmt.(array ~sep:(any ",") int)
    t.counts
