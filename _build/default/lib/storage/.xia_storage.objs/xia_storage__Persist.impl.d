lib/storage/persist.ml: Array Doc_store Filename Fmt Fun List Printf String Sys Xia_xml
