lib/storage/persist.mli: Doc_store
