lib/storage/path_stats.ml: Doc_store Hashtbl Histogram List Random String Xia_xml Xia_xpath
