lib/storage/histogram.ml: Array Float Fmt List
