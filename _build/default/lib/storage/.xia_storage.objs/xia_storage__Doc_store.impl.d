lib/storage/doc_store.ml: Cost_params Hashtbl List Xia_xml
