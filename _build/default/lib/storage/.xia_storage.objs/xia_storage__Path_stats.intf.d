lib/storage/path_stats.mli: Doc_store Hashtbl Histogram Xia_xpath
