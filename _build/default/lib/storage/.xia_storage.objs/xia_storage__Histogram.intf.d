lib/storage/histogram.mli: Format
