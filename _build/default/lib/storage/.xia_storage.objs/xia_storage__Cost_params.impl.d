lib/storage/cost_params.ml:
