lib/storage/doc_store.mli: Xia_xml
