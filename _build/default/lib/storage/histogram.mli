(** Equi-width histograms over numeric path values, built by RUNSTATS from a
    bounded sample and used for range-selectivity estimation. *)

type t

val default_buckets : int

(** [None] on an empty or single-point sample. *)
val create : ?buckets:int -> float list -> t option

val bucket_count : t -> int
val total : t -> int
val bounds : t -> float * float

(** Fraction of values strictly below [x] (interpolated in the straddled
    bucket); 0 below the range, 1 above. *)
val fraction_below : t -> float -> float

(** Fraction of values in [\[x, y)]. *)
val fraction_between : t -> float -> float -> float

(** Share of the bucket straddling [x]. *)
val point_density : t -> float -> float

val pp : Format.formatter -> t -> unit
