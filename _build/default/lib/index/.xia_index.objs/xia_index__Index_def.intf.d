lib/index/index_def.mli: Format Xia_xpath
