lib/index/catalog.ml: Hashtbl Index_def List Physical_index Printf String Xia_storage
