lib/index/catalog.mli: Index_def Physical_index Xia_storage
