lib/index/physical_index.mli: Format Index_def Xia_storage Xia_xml
