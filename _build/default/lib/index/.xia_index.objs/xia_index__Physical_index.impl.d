lib/index/physical_index.ml: Array Float Fmt Hashtbl Index_def Index_stats List String Xia_storage Xia_xml Xia_xpath
