lib/index/index_stats.ml: Float Fmt Hashtbl Index_def List Xia_storage
