lib/index/maintenance.mli: Index_stats
