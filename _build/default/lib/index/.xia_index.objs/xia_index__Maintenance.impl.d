lib/index/maintenance.ml: Index_stats Xia_storage
