lib/index/index_def.ml: Fmt Printf String Xia_xpath
