lib/index/index_stats.mli: Format Index_def Xia_storage
