(** Index maintenance cost model — the [mc(x, s)] term in the paper's benefit
    formula.  Charged only for insert / delete / update statements. *)

type dml_kind =
  | Dml_insert
  | Dml_delete
  | Dml_update

(** Expected number of index entries touched by one statement affecting
    [docs_affected] documents. *)
val entries_touched : Index_stats.t -> dml_kind -> docs_affected:float -> float

(** Maintenance cost in optimizer cost units. *)
val cost : Index_stats.t -> dml_kind -> docs_affected:float -> float
