(* Index maintenance cost model: the [mc(x, s)] term of the paper's benefit
   formula.

   DB2's optimizer estimates for update/delete/insert statements do not
   include the cost of updating indexes, so the advisor charges each index in
   a configuration for the entries a data-modifying statement would touch:
   inserting a document adds (on average) [entries_per_doc] entries to every
   index whose pattern matches somewhere in documents of that table, deleting
   removes them, and an update is a delete plus an insert of the modified
   nodes.  Pure queries have zero maintenance cost. *)

module Cost_params = Xia_storage.Cost_params

type dml_kind =
  | Dml_insert
  | Dml_delete
  | Dml_update

(* Expected number of index entries touched by one statement of the given
   kind, given how many documents the statement affects. *)
let entries_touched (stats : Index_stats.t) kind ~docs_affected =
  let per_doc = stats.Index_stats.entries_per_doc in
  (* Only documents that actually contribute entries matter. *)
  let contributing =
    if stats.Index_stats.matched_docs = 0 then 0.0 else docs_affected
  in
  match kind with
  | Dml_insert | Dml_delete -> per_doc *. contributing
  | Dml_update ->
      (* The updated subtree is typically a fraction of the document; charge a
         delete + insert of half the document's entries. *)
      per_doc *. contributing

let cost stats kind ~docs_affected =
  let touched = entries_touched stats kind ~docs_affected in
  if touched <= 0.0 then 0.0
  else
    (* Each touched entry pays a B-tree descend share plus the entry update. *)
    let descend =
      float_of_int stats.Index_stats.levels *. Cost_params.cpu_per_index_entry
    in
    touched *. (Cost_params.index_update_entry_cost +. descend)
