(** Index statistics derived from data statistics — what the optimizer sees
    for a {e virtual} index.  Derived by aggregating {!Xia_storage.Path_stats}
    over the dataguide paths the index pattern covers and fitting a B-tree
    size model. *)

module Path_stats = Xia_storage.Path_stats
module Cost_params = Xia_storage.Cost_params

type t = {
  entries : int;            (** number of indexed (typed) nodes *)
  distinct_keys : int;
  avg_key_bytes : float;
  matched_docs : int;       (** documents contributing at least one entry *)
  entries_per_doc : float;
  size_bytes : int;         (** estimated on-disk size *)
  leaf_pages : int;
  levels : int;             (** B-tree height (≥ 1) *)
  min_num : float;          (** numeric key range ([Ddouble] only) *)
  max_num : float;
}

val empty : t

(** B-tree size model: [(size_bytes, leaf_pages, levels)]. *)
val btree_shape : entries:int -> avg_key_bytes:float -> int * int * int

val derive : Xia_storage.Path_stats.t -> Index_def.t -> t

(** [derive] memoized on (index logical key, stats generation). *)
val derive_cached : Xia_storage.Path_stats.t -> Index_def.t -> t

val pp : Format.formatter -> t -> unit
