(** Materialized partial XML index: sorted (key, doc, node) entries for every
    node covered by the pattern.  Used only for actual execution — the advisor
    itself works with virtual indexes. *)

module Doc_store = Xia_storage.Doc_store

type key =
  | Kstring of string
  | Kdouble of float

val compare_key : key -> key -> int
val pp_key : Format.formatter -> key -> unit

type entry = {
  key : key;
  doc : Doc_store.doc_id;
  node : Xia_xml.Types.node_id;
}

type t

val def : t -> Index_def.t
val entry_count : t -> int

(** Store generation at build time; a differing store generation means the
    index is stale. *)
val built_generation : t -> int

(** Key a value would get in an index of this type; [None] when a [Ddouble]
    index rejects a non-numeric value. *)
val key_of_value : Index_def.data_type -> string -> key option

val build : Doc_store.t -> Index_def.t -> t

(** Entry-comparison order used by the index (key, then doc, then node). *)
val compare_entry : entry -> entry -> int

(** Fold a change list into the index without rescanning the table; the
    result reports [generation] as its build generation. *)
val apply_changes : t -> generation:int -> Doc_store.change list -> t

val lookup_eq : t -> key -> entry list

type bound =
  | Unbounded
  | Inclusive of key
  | Exclusive of key

val lookup_range : t -> lo:bound -> hi:bound -> entry list
val lookup_ne : t -> key -> entry list
val all : t -> entry list
val iter : (entry -> unit) -> t -> unit

(** Size under the same B-tree layout model as virtual indexes. *)
val size_bytes : t -> int

val distinct_doc_count : entry list -> int
