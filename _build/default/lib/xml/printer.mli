(** XML serialization. *)

(** Compact single-line serialization; inverse of {!Parser.parse} up to
    whitespace normalization. *)
val to_string : Types.t -> string

(** Indented, human-readable serialization. *)
val to_pretty_string : Types.t -> string

val pp : Format.formatter -> Types.t -> unit
