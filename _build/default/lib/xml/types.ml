(* XML tree model.

   Documents are element trees with interleaved text leaves and attributes on
   elements.  Namespaces are flattened into the tag name (["ns:tag"] is an
   ordinary label), which is all the index advisor needs. *)

type t =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : t list;
}

(* Identity of a node inside one document: [pre] is the preorder rank of the
   owning element; [attr] selects one of its attributes when set. *)
type node_id = {
  pre : int;
  attr : int option;
}

let compare_node_id a b =
  match compare a.pre b.pre with
  | 0 -> compare a.attr b.attr
  | c -> c

let equal_node_id a b = compare_node_id a b = 0

let element ?(attrs = []) tag children = Element { tag; attrs; children }
let text s = Text s

(* Leaf element holding a single text value: <tag>value</tag>. *)
let leaf ?(attrs = []) tag value = element ~attrs tag [ text value ]

let is_element = function Element _ -> true | Text _ -> false

let tag_of = function
  | Element e -> Some e.tag
  | Text _ -> None

(* Concatenation of the direct text children of an element; this is the value
   a value index stores for the node. *)
let direct_text e =
  let buf = Buffer.create 16 in
  let add = function
    | Text s -> Buffer.add_string buf s
    | Element _ -> ()
  in
  List.iter add e.children;
  Buffer.contents buf

let node_value = function
  | Element e -> direct_text e
  | Text s -> s

let rec count_elements = function
  | Text _ -> 0
  | Element e -> 1 + List.fold_left (fun n c -> n + count_elements c) 0 e.children

let rec count_nodes = function
  | Text _ -> 1
  | Element e ->
      1 + List.length e.attrs
      + List.fold_left (fun n c -> n + count_nodes c) 0 e.children

(* Serialized size approximation, used by the storage layer to report table
   sizes in bytes without keeping the source text around. *)
let rec byte_size = function
  | Text s -> String.length s
  | Element e ->
      let tag_cost = (2 * String.length e.tag) + 5 in
      let attr_cost =
        List.fold_left
          (fun n (k, v) -> n + String.length k + String.length v + 4)
          0 e.attrs
      in
      List.fold_left (fun n c -> n + byte_size c) (tag_cost + attr_cost) e.children

(* Iterate over every element (and its attributes) with its preorder id and
   rooted label path.  Attribute labels are "@name".  The traversal order
   defines [node_id.pre]: the root element has rank 0. *)
let iter_nodes f doc =
  let counter = ref 0 in
  let rec walk rev_path node =
    match node with
    | Text _ -> ()
    | Element e ->
        let pre = !counter in
        incr counter;
        let rev_path = e.tag :: rev_path in
        let label_path = List.rev rev_path in
        f { pre; attr = None } label_path (direct_text e);
        List.iteri
          (fun i (k, v) ->
            f { pre; attr = Some i } (label_path @ [ "@" ^ k ]) v)
          e.attrs;
        List.iter (walk rev_path) e.children
  in
  walk [] doc

(* Find the element with a given preorder rank, if any. *)
let find_by_pre doc pre =
  let counter = ref 0 in
  let exception Found of element in
  let rec walk = function
    | Text _ -> ()
    | Element e ->
        let here = !counter in
        incr counter;
        if here = pre then raise (Found e);
        if here > pre then raise Exit;
        List.iter walk e.children
  in
  try
    walk doc;
    None
  with
  | Found e -> Some e
  | Exit -> None

let rec equal a b =
  match a, b with
  | Text s, Text s' -> String.equal s s'
  | Element e, Element e' ->
      String.equal e.tag e'.tag
      && List.length e.attrs = List.length e'.attrs
      && List.for_all2
           (fun (k, v) (k', v') -> String.equal k k' && String.equal v v')
           e.attrs e'.attrs
      && List.length e.children = List.length e'.children
      && List.for_all2 equal e.children e'.children
  | Element _, Text _ | Text _, Element _ -> false
