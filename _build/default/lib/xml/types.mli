(** XML tree model used throughout the advisor.

    Documents are ordinary element trees.  Namespaces are not interpreted: a
    prefixed tag is a flat label.  Mixed content is supported; the value of an
    element (as seen by value indexes) is the concatenation of its direct text
    children. *)

type t =
  | Element of element
  | Text of string

and element = {
  tag : string;
  attrs : (string * string) list;
  children : t list;
}

(** Identity of a node within a single document. [pre] is the preorder rank of
    the owning element (root = 0); [attr = Some i] designates the i-th
    attribute of that element. *)
type node_id = {
  pre : int;
  attr : int option;
}

val compare_node_id : node_id -> node_id -> int
val equal_node_id : node_id -> node_id -> bool

val element : ?attrs:(string * string) list -> string -> t list -> t
val text : string -> t

(** [leaf tag v] is [<tag>v</tag>]. *)
val leaf : ?attrs:(string * string) list -> string -> string -> t

val is_element : t -> bool
val tag_of : t -> string option

(** Concatenated direct text children of an element. *)
val direct_text : element -> string

(** Value of a node: [direct_text] for elements, the text for text nodes. *)
val node_value : t -> string

val count_elements : t -> int

(** Elements + attributes + text nodes. *)
val count_nodes : t -> int

(** Approximate serialized size in bytes. *)
val byte_size : t -> int

(** [iter_nodes f doc] calls [f id label_path value] for every element and
    every attribute of [doc] in document order.  Attribute labels appear as
    ["@name"] path components. *)
val iter_nodes : (node_id -> string list -> string -> unit) -> t -> unit

(** Element with the given preorder rank. *)
val find_by_pre : t -> int -> element option

val equal : t -> t -> bool
