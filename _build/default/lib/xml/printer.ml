(* XML serialization. *)

let escape_text s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_attr s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let add_attrs buf attrs =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (escape_attr v);
      Buffer.add_char buf '"')
    attrs

let rec add_compact buf = function
  | Types.Text s -> Buffer.add_string buf (escape_text s)
  | Types.Element e ->
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      add_attrs buf e.attrs;
      if e.children = [] then Buffer.add_string buf "/>"
      else begin
        Buffer.add_char buf '>';
        List.iter (add_compact buf) e.children;
        Buffer.add_string buf "</";
        Buffer.add_string buf e.tag;
        Buffer.add_char buf '>'
      end

let to_string doc =
  let buf = Buffer.create 256 in
  add_compact buf doc;
  Buffer.contents buf

let rec add_pretty buf indent = function
  | Types.Text s -> Buffer.add_string buf (escape_text s)
  | Types.Element e ->
      let pad = String.make (2 * indent) ' ' in
      Buffer.add_string buf pad;
      Buffer.add_char buf '<';
      Buffer.add_string buf e.tag;
      add_attrs buf e.attrs;
      (match e.children with
      | [] -> Buffer.add_string buf "/>\n"
      | [ Types.Text s ] ->
          Buffer.add_char buf '>';
          Buffer.add_string buf (escape_text s);
          Buffer.add_string buf "</";
          Buffer.add_string buf e.tag;
          Buffer.add_string buf ">\n"
      | children ->
          Buffer.add_string buf ">\n";
          List.iter
            (fun c ->
              match c with
              | Types.Text _ ->
                  Buffer.add_string buf (String.make (2 * (indent + 1)) ' ');
                  add_pretty buf (indent + 1) c;
                  Buffer.add_char buf '\n'
              | Types.Element _ -> add_pretty buf (indent + 1) c)
            children;
          Buffer.add_string buf pad;
          Buffer.add_string buf "</";
          Buffer.add_string buf e.tag;
          Buffer.add_string buf ">\n")

let to_pretty_string doc =
  let buf = Buffer.create 256 in
  add_pretty buf 0 doc;
  Buffer.contents buf

let pp ppf doc = Fmt.string ppf (to_string doc)
