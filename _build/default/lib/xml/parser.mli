(** Non-validating XML parser: elements, attributes, text, entities, CDATA,
    comments, processing instructions and DOCTYPE (skipped). *)

type error = { position : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse : string -> (Types.t, error) result

(** @raise Invalid_argument on malformed input. *)
val parse_exn : string -> Types.t
