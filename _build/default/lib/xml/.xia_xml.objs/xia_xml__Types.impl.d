lib/xml/types.ml: Buffer List String
