lib/xml/parser.ml: Buffer Char Fmt List Printf String Types
