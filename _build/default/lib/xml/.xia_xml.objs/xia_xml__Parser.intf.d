lib/xml/parser.mli: Format Types
