lib/xml/printer.mli: Format Types
