lib/xml/printer.ml: Buffer Fmt List String Types
