lib/xml/types.mli:
