(* Recursive-descent XML parser.

   Supports elements, attributes, text, entity references, CDATA sections,
   comments and processing instructions/declarations.  This is not a validating
   parser; it accepts the well-formed subset needed for benchmark data. *)

type error = { position : int; message : string }

let pp_error ppf e = Fmt.pf ppf "XML parse error at offset %d: %s" e.position e.message

exception Fail of error

type state = {
  input : string;
  mutable pos : int;
}

let fail st message = raise (Fail { position = st.pos; message })

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let expect st s =
  if looking_at st s then st.pos <- st.pos + String.length s
  else fail st (Printf.sprintf "expected %S" s)

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (match peek st with Some c when is_space c -> true | _ -> false) do
    advance st
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | _ -> false

let is_name_char c =
  is_name_start c || (match c with '0' .. '9' | '-' | '.' -> true | _ -> false)

let parse_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | _ -> fail st "expected a name");
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

let decode_entity st =
  (* Called with pos on '&'. *)
  advance st;
  let start = st.pos in
  while (match peek st with Some ';' -> false | Some _ -> true | None -> false) do
    advance st
  done;
  (match peek st with Some ';' -> () | _ -> fail st "unterminated entity reference");
  let name = String.sub st.input start (st.pos - start) in
  advance st;
  match name with
  | "amp" -> "&"
  | "lt" -> "<"
  | "gt" -> ">"
  | "quot" -> "\""
  | "apos" -> "'"
  | _ ->
      if String.length name > 1 && name.[0] = '#' then
        let code =
          try
            if name.[1] = 'x' || name.[1] = 'X' then
              int_of_string ("0x" ^ String.sub name 2 (String.length name - 2))
            else int_of_string (String.sub name 1 (String.length name - 1))
          with _ -> fail st "invalid character reference"
        in
        if code < 0x80 then String.make 1 (Char.chr code) else "?"
      else fail st (Printf.sprintf "unknown entity &%s;" name)

let parse_quoted st =
  let quote =
    match peek st with
    | Some (('"' | '\'') as q) -> advance st; q
    | _ -> fail st "expected a quoted value"
  in
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated attribute value"
    | Some c when c = quote -> advance st
    | Some '&' -> Buffer.add_string buf (decode_entity st); loop ()
    | Some c -> Buffer.add_char buf c; advance st; loop ()
  in
  loop ();
  Buffer.contents buf

let parse_attributes st =
  let rec loop acc =
    skip_space st;
    match peek st with
    | Some c when is_name_start c ->
        let name = parse_name st in
        skip_space st;
        expect st "=";
        skip_space st;
        let value = parse_quoted st in
        loop ((name, value) :: acc)
    | _ -> List.rev acc
  in
  loop []

let skip_until st terminator =
  let n = String.length st.input in
  let rec loop () =
    if st.pos >= n then fail st (Printf.sprintf "expected %S before end of input" terminator)
    else if looking_at st terminator then st.pos <- st.pos + String.length terminator
    else (advance st; loop ())
  in
  loop ()

let rec skip_misc st =
  skip_space st;
  if looking_at st "<?" then (skip_until st "?>"; skip_misc st)
  else if looking_at st "<!--" then (skip_until st "-->"; skip_misc st)
  else if looking_at st "<!DOCTYPE" then (skip_until st ">"; skip_misc st)

let rec parse_element st =
  expect st "<";
  let tag = parse_name st in
  let attrs = parse_attributes st in
  skip_space st;
  if looking_at st "/>" then begin
    expect st "/>";
    Types.Element { tag; attrs; children = [] }
  end
  else begin
    expect st ">";
    let children = parse_content st tag in
    Types.Element { tag; attrs; children }
  end

and parse_content st tag =
  let buf = Buffer.create 16 in
  let children = ref [] in
  let flush_text () =
    let s = Buffer.contents buf in
    Buffer.clear buf;
    (* Whitespace-only runs between elements are formatting noise. *)
    if String.exists (fun c -> not (is_space c)) s then
      children := Types.Text s :: !children
  in
  let rec loop () =
    match peek st with
    | None -> fail st (Printf.sprintf "unterminated element <%s>" tag)
    | Some '<' ->
        if looking_at st "</" then begin
          flush_text ();
          expect st "</";
          let closing = parse_name st in
          if not (String.equal closing tag) then
            fail st (Printf.sprintf "mismatched closing tag </%s> for <%s>" closing tag);
          skip_space st;
          expect st ">"
        end
        else if looking_at st "<!--" then (skip_until st "-->"; loop ())
        else if looking_at st "<![CDATA[" then begin
          st.pos <- st.pos + String.length "<![CDATA[";
          let start = st.pos in
          skip_until st "]]>";
          Buffer.add_string buf (String.sub st.input start (st.pos - start - 3));
          loop ()
        end
        else if looking_at st "<?" then (skip_until st "?>"; loop ())
        else begin
          flush_text ();
          children := parse_element st :: !children;
          loop ()
        end
    | Some '&' -> Buffer.add_string buf (decode_entity st); loop ()
    | Some c -> Buffer.add_char buf c; advance st; loop ()
  in
  loop ();
  List.rev !children

let parse input =
  let st = { input; pos = 0 } in
  try
    skip_misc st;
    let root = parse_element st in
    skip_misc st;
    skip_space st;
    if st.pos <> String.length input then Error { position = st.pos; message = "trailing content after document element" }
    else Ok root
  with Fail e -> Error e

let parse_exn input =
  match parse input with
  | Ok doc -> doc
  | Error e -> invalid_arg (Fmt.str "%a" pp_error e)
