(* Rendering of XPath ASTs back to their concrete syntax. *)

let axis_to_string = function
  | Ast.Child -> "/"
  | Ast.Descendant -> "//"

let name_test_to_string = function
  | Ast.Name s -> s
  | Ast.Wildcard -> "*"

let node_test_to_string = function
  | Ast.Elem nt -> name_test_to_string nt
  | Ast.Attr nt -> "@" ^ name_test_to_string nt

let cmp_to_string = function
  | Ast.Eq -> "="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="

let literal_to_string = function
  | Ast.String_lit s -> Printf.sprintf "%S" s
  | Ast.Number_lit f ->
      if Float.is_integer f && Float.abs f < 1e15 then
        string_of_int (int_of_float f)
      else string_of_float f

let rec add_path buf ~absolute path =
  List.iteri
    (fun i (s : Ast.step) ->
      if i > 0 || absolute then Buffer.add_string buf (axis_to_string s.axis)
      else if s.axis = Ast.Descendant then Buffer.add_string buf "//";
      Buffer.add_string buf (node_test_to_string s.test);
      List.iter (add_predicate buf) s.predicates)
    path

and add_predicate buf pred =
  Buffer.add_char buf '[';
  (match pred with
  | Ast.Exists rel -> add_rel_or_self buf rel
  | Ast.Compare (rel, cmp, lit) ->
      add_rel_or_self buf rel;
      Buffer.add_string buf (cmp_to_string cmp);
      Buffer.add_string buf (literal_to_string lit));
  Buffer.add_char buf ']'

and add_rel_or_self buf = function
  | [] -> Buffer.add_char buf '.'
  | rel -> add_path buf ~absolute:false rel

let path_to_string path =
  let buf = Buffer.create 32 in
  add_path buf ~absolute:true path;
  Buffer.contents buf

let relative_to_string path =
  let buf = Buffer.create 32 in
  add_path buf ~absolute:false path;
  Buffer.contents buf

let pp_path ppf p = Fmt.string ppf (path_to_string p)
let pp_cmp ppf c = Fmt.string ppf (cmp_to_string c)
let pp_literal ppf l = Fmt.string ppf (literal_to_string l)
