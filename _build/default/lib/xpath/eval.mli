(** XPath evaluation over XML documents. *)

(** Annotated element: preorder rank, tag, attributes, direct-text value and
    element children.  Built once per document with {!annotate}. *)
type anode = {
  pre : int;
  tag : string;
  attrs : (string * string) array;
  value : string;
  children : anode list;
}

(** @raise Invalid_argument if the root is a text node. *)
val annotate : Xia_xml.Types.t -> anode

type match_ = {
  id : Xia_xml.Types.node_id;
  value : string;
}

(** Evaluate an absolute path (with predicates) against an annotated document.
    Results are in document order, duplicate-free. *)
val eval : anode -> Ast.path -> match_ list

(** [eval] composed with {!annotate}. *)
val eval_doc : Xia_xml.Types.t -> Ast.path -> match_ list

(** Element nodes reached by an absolute path; attribute matches are dropped
    (an element binding is required to navigate further). *)
val eval_elements : anode -> Ast.path -> anode list

(** Does the predicate hold with the element as context node? *)
val predicate_holds_on : anode -> Ast.predicate -> bool

(** Evaluate a relative path from a given element context. *)
val eval_relative : anode -> Ast.path -> match_ list

val exists_doc : Xia_xml.Types.t -> Ast.path -> bool
