(* XPath evaluation over an XML document.

   Evaluation works on an annotated view of the tree in which every element
   carries its preorder rank and its concatenated direct text value.  The
   result of evaluating a path is the set of matched nodes (elements or
   attributes) with their values, in document order and without duplicates. *)

type anode = {
  pre : int;
  tag : string;
  attrs : (string * string) array;
  value : string;
  children : anode list;
}

let annotate doc =
  let counter = ref 0 in
  let rec walk = function
    | Xia_xml.Types.Text _ -> None
    | Xia_xml.Types.Element e ->
        let pre = !counter in
        incr counter;
        let children = List.filter_map walk e.children in
        Some
          {
            pre;
            tag = e.tag;
            attrs = Array.of_list e.attrs;
            value = Xia_xml.Types.direct_text e;
            children;
          }
  in
  match walk doc with
  | Some root -> root
  | None -> invalid_arg "Eval.annotate: document root is a text node"

(* Evaluation context: an element or one of its attributes. *)
type context =
  | C_elem of anode
  | C_attr of anode * int

let context_id = function
  | C_elem n -> { Xia_xml.Types.pre = n.pre; attr = None }
  | C_attr (n, i) -> { Xia_xml.Types.pre = n.pre; attr = Some i }

let context_value = function
  | C_elem n -> n.value
  | C_attr (n, i) -> snd n.attrs.(i)

type match_ = {
  id : Xia_xml.Types.node_id;
  value : string;
}

let name_test_ok nt tag =
  match nt with
  | Ast.Wildcard -> true
  | Ast.Name s -> String.equal s tag

let rec descendants_acc n acc =
  List.fold_left (fun acc c -> descendants_acc c (c :: acc)) acc n.children

(* All proper descendants of [n], in reverse document order. *)
let descendants n = descendants_acc n []

let attr_contexts nt n =
  let acc = ref [] in
  Array.iteri
    (fun i (k, _) -> if name_test_ok nt k then acc := C_attr (n, i) :: !acc)
    n.attrs;
  List.rev !acc

(* One structural step from a single context node (predicates not applied). *)
let step_from ctx (s : Ast.step) =
  match ctx with
  | C_attr _ -> []
  | C_elem n -> (
      match s.axis, s.test with
      | Ast.Child, Ast.Elem nt ->
          List.filter_map
            (fun c -> if name_test_ok nt c.tag then Some (C_elem c) else None)
            n.children
      | Ast.Child, Ast.Attr nt -> attr_contexts nt n
      | Ast.Descendant, Ast.Elem nt ->
          List.rev
            (List.filter
               (fun c -> match c with C_elem d -> name_test_ok nt d.tag | C_attr _ -> false)
               (List.rev_map (fun d -> C_elem d) (descendants n)))
      | Ast.Descendant, Ast.Attr nt ->
          (* descendant-or-self::node()/attribute::nt *)
          let nodes = n :: List.rev (descendants n) in
          List.concat_map (attr_contexts nt) nodes)

let dedup_contexts ctxs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun c ->
      let id = context_id c in
      let key = (id.Xia_xml.Types.pre, id.Xia_xml.Types.attr) in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    ctxs

let rec eval_steps ctxs path =
  match path with
  | [] -> ctxs
  | s :: rest ->
      let next = List.concat_map (fun c -> step_after_predicates c s) ctxs in
      eval_steps (dedup_contexts next) rest

and step_after_predicates ctx s =
  let reached = step_from ctx s in
  if s.Ast.predicates = [] then reached
  else List.filter (fun c -> List.for_all (predicate_holds c) s.Ast.predicates) reached

and predicate_holds ctx = function
  | Ast.Exists rel -> eval_steps [ ctx ] rel <> []
  | Ast.Compare ([], cmp, lit) -> Ast.literal_matches (context_value ctx) cmp lit
  | Ast.Compare (rel, cmp, lit) ->
      List.exists
        (fun c -> Ast.literal_matches (context_value c) cmp lit)
        (eval_steps [ ctx ] rel)

(* Evaluate an absolute path from the (virtual) document node.  The document
   node has the root element as its single child, and its descendants are the
   root element and everything below it. *)
let eval root path =
  match path with
  | [] -> [ { id = context_id (C_elem root); value = root.value } ]
  | first :: rest ->
      let initial =
        match first.Ast.axis, first.Ast.test with
        | Ast.Child, Ast.Elem nt ->
            if name_test_ok nt root.tag then [ C_elem root ] else []
        | Ast.Child, Ast.Attr _ -> []
        | Ast.Descendant, Ast.Elem nt ->
            let all = C_elem root :: List.rev_map (fun d -> C_elem d) (descendants root) in
            List.filter
              (fun c -> match c with C_elem n -> name_test_ok nt n.tag | C_attr _ -> false)
              all
        | Ast.Descendant, Ast.Attr nt ->
            let nodes = root :: List.rev (descendants root) in
            List.concat_map (attr_contexts nt) nodes
      in
      let initial =
        if first.Ast.predicates = [] then initial
        else
          List.filter
            (fun c -> List.for_all (predicate_holds c) first.Ast.predicates)
            initial
      in
      let finals = eval_steps (dedup_contexts initial) rest in
      List.map (fun c -> { id = context_id c; value = context_value c }) finals

let eval_doc doc path = eval (annotate doc) path

(* Element nodes reached by an absolute path (attribute matches dropped). *)
let eval_elements root path =
  match path with
  | [] -> [ root ]
  | first :: rest ->
      let initial =
        match first.Ast.axis, first.Ast.test with
        | Ast.Child, Ast.Elem nt ->
            if name_test_ok nt root.tag then [ C_elem root ] else []
        | Ast.Descendant, Ast.Elem nt ->
            let all = C_elem root :: List.rev_map (fun d -> C_elem d) (descendants root) in
            List.filter
              (fun c -> match c with C_elem n -> name_test_ok nt n.tag | C_attr _ -> false)
              all
        | _, Ast.Attr _ -> []
      in
      let initial =
        if first.Ast.predicates = [] then initial
        else
          List.filter
            (fun c -> List.for_all (predicate_holds c) first.Ast.predicates)
            initial
      in
      List.filter_map
        (fun c -> match c with C_elem n -> Some n | C_attr _ -> None)
        (eval_steps (dedup_contexts initial) rest)

(* Does the predicate hold for an element context? *)
let predicate_holds_on node pred = predicate_holds (C_elem node) pred

(* Evaluate a relative path from an element context. *)
let eval_relative node path =
  List.map
    (fun c -> { id = context_id c; value = context_value c })
    (eval_steps [ C_elem node ] path)

let exists_doc doc path = eval_doc doc path <> []
