(** Parser for the XPath subset of {!Ast}.

    Examples of accepted absolute paths:
    ["/Security/Yield"], ["/Security//*"], ["//Yield"],
    ["/Security\[Yield>4.5\]/Name"], ["/Order/@ID"],
    ["/Security\[SecInfo/*/Sector=\"Energy\"\]"]. *)

type error = { position : int; message : string }

val pp_error : Format.formatter -> error -> unit

(** Parse an absolute path (starting with [/] or [//]). *)
val parse : string -> (Ast.path, error) result

(** Parse a relative path (as used inside predicates), e.g. ["SecInfo/*/Sector"].
    A leading [/] is also accepted and means a child step. *)
val parse_relative_path : string -> (Ast.path, error) result

(** Parse an absolute path starting at [pos], greedily; returns the path and
    the position of the first unconsumed character. *)
val parse_prefix : string -> pos:int -> (Ast.path * int, error) result

(** Same for a relative path. *)
val parse_relative_prefix : string -> pos:int -> (Ast.path * int, error) result

(** @raise Invalid_argument on malformed input. *)
val parse_exn : string -> Ast.path

(** @raise Invalid_argument on malformed input. *)
val parse_relative_exn : string -> Ast.path
