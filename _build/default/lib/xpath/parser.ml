(* Parser for the XPath subset.

   Grammar (whitespace allowed around tokens inside predicates):

     absolute  ::= ('/' | '//') step (('/' | '//') step)*
     relative  ::= step (('/' | '//') step)*        (first axis is Child)
     step      ::= nametest predicate*
     nametest  ::= NAME | '*' | '@' NAME | '@' '*'
     predicate ::= '[' rel-or-self (CMP literal)? ']'
     rel-or-self ::= '.' | relative
     CMP       ::= '=' | '!=' | '<' | '<=' | '>' | '>='
     literal   ::= NUMBER | '"' chars '"' | '\'' chars '\'' *)

type error = { position : int; message : string }

let pp_error ppf e = Fmt.pf ppf "XPath parse error at offset %d: %s" e.position e.message

exception Fail of error

type state = {
  input : string;
  mutable pos : int;
}

let fail st message = raise (Fail { position = st.pos; message })

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.input then Some st.input.[st.pos + 1] else None

let advance st = st.pos <- st.pos + 1

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (match peek st with Some c when is_space c -> true | _ -> false) do
    advance st
  done

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' -> true
  | _ -> false

let is_name_char c =
  is_name_start c || (match c with '0' .. '9' | '-' | '.' | ':' -> true | _ -> false)

let parse_name st =
  let start = st.pos in
  (match peek st with
  | Some c when is_name_start c -> advance st
  | _ -> fail st "expected a name");
  while (match peek st with Some c when is_name_char c -> true | _ -> false) do
    advance st
  done;
  String.sub st.input start (st.pos - start)

let parse_axis_leading st =
  (* At the start of an absolute path or between steps. *)
  match peek st with
  | Some '/' ->
      advance st;
      if peek st = Some '/' then (advance st; Ast.Descendant) else Ast.Child
  | _ -> fail st "expected '/' or '//'"

let parse_name_test st =
  match peek st with
  | Some '*' -> advance st; Ast.Elem Ast.Wildcard
  | Some '@' ->
      advance st;
      (match peek st with
      | Some '*' -> advance st; Ast.Attr Ast.Wildcard
      | _ -> Ast.Attr (Ast.Name (parse_name st)))
  | _ -> Ast.Elem (Ast.Name (parse_name st))

let parse_number st =
  let start = st.pos in
  (match peek st with Some '-' -> advance st | _ -> ());
  let digits = ref 0 in
  while (match peek st with Some ('0' .. '9') -> true | _ -> false) do
    incr digits; advance st
  done;
  if peek st = Some '.' && (match peek2 st with Some ('0' .. '9') -> true | _ -> false)
  then begin
    advance st;
    while (match peek st with Some ('0' .. '9') -> true | _ -> false) do
      incr digits; advance st
    done
  end;
  if !digits = 0 then fail st "expected a number";
  float_of_string (String.sub st.input start (st.pos - start))

let parse_literal st =
  match peek st with
  | Some (('"' | '\'') as q) ->
      advance st;
      let start = st.pos in
      while (match peek st with Some c when c <> q -> true | _ -> false) do
        advance st
      done;
      (match peek st with
      | Some c when c = q ->
          let s = String.sub st.input start (st.pos - start) in
          advance st;
          Ast.String_lit s
      | _ -> fail st "unterminated string literal")
  | Some ('0' .. '9' | '-') -> Ast.Number_lit (parse_number st)
  | _ -> fail st "expected a literal"

let parse_cmp st =
  match peek st with
  | Some '=' -> advance st; Ast.Eq
  | Some '!' ->
      advance st;
      if peek st = Some '=' then (advance st; Ast.Ne) else fail st "expected '!='"
  | Some '<' ->
      advance st;
      if peek st = Some '=' then (advance st; Ast.Le) else Ast.Lt
  | Some '>' ->
      advance st;
      if peek st = Some '=' then (advance st; Ast.Ge) else Ast.Gt
  | _ -> fail st "expected a comparison operator"

let rec parse_step st =
  let test = parse_name_test st in
  let predicates = parse_predicates st [] in
  (test, predicates)

and parse_predicates st acc =
  if peek st = Some '[' then begin
    advance st;
    skip_space st;
    let rel =
      if peek st = Some '.' then (advance st; [])
      else parse_relative st
    in
    skip_space st;
    let pred =
      match peek st with
      | Some ']' -> Ast.Exists rel
      | _ ->
          let cmp = parse_cmp st in
          skip_space st;
          let lit = parse_literal st in
          Ast.Compare (rel, cmp, lit)
    in
    skip_space st;
    (match peek st with
    | Some ']' -> advance st
    | _ -> fail st "expected ']'");
    parse_predicates st (pred :: acc)
  end
  else List.rev acc

and parse_relative st =
  (* First step has an implicit Child axis (or Descendant for a leading //). *)
  let first_axis =
    if peek st = Some '/' then parse_axis_leading st else Ast.Child
  in
  let test, predicates = parse_step st in
  let first = { Ast.axis = first_axis; test; predicates } in
  parse_rest st [ first ]

and parse_rest st acc =
  match peek st with
  | Some '/' ->
      let axis = parse_axis_leading st in
      let test, predicates = parse_step st in
      parse_rest st ({ Ast.axis; test; predicates } :: acc)
  | _ -> List.rev acc

let parse_absolute_state st =
  let axis = parse_axis_leading st in
  let test, predicates = parse_step st in
  parse_rest st [ { Ast.axis; test; predicates } ]

let finish st result =
  skip_space st;
  if st.pos <> String.length st.input then
    Error { position = st.pos; message = "trailing characters" }
  else Ok result

let parse input =
  let st = { input; pos = 0 } in
  try finish st (parse_absolute_state st) with Fail e -> Error e

(* Prefix variants: parse greedily from [pos], returning the path and the
   position of the first unconsumed character.  Used by the query parser to
   embed paths inside larger statements. *)
let parse_prefix input ~pos =
  let st = { input; pos } in
  try
    let p = parse_absolute_state st in
    Ok (p, st.pos)
  with Fail e -> Error e

let parse_relative_prefix input ~pos =
  let st = { input; pos } in
  try
    let p = parse_relative st in
    Ok (p, st.pos)
  with Fail e -> Error e

let parse_relative_path input =
  let st = { input; pos = 0 } in
  try finish st (parse_relative st) with Fail e -> Error e

let parse_exn input =
  match parse input with
  | Ok p -> p
  | Error e -> invalid_arg (Fmt.str "%S: %a" input pp_error e)

let parse_relative_exn input =
  match parse_relative_path input with
  | Ok p -> p
  | Error e -> invalid_arg (Fmt.str "%S: %a" input pp_error e)
