lib/xpath/parser.ml: Ast Fmt List String
