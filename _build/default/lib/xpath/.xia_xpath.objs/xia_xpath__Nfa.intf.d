lib/xpath/nfa.mli: Ast
