lib/xpath/printer.mli: Ast Format
