lib/xpath/eval.ml: Array Ast Hashtbl List String Xia_xml
