lib/xpath/printer.ml: Ast Buffer Float Fmt List Printf
