lib/xpath/ast.mli:
