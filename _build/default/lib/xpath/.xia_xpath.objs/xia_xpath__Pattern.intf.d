lib/xpath/pattern.mli: Ast Format Parser
