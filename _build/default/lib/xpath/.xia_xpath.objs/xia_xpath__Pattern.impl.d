lib/xpath/pattern.ml: Ast Fmt Hashtbl List Nfa Parser Printer String
