lib/xpath/nfa.ml: Array Ast Hashtbl List Queue String
