lib/xpath/parser.mli: Ast Format
