lib/xpath/eval.mli: Ast Xia_xml
