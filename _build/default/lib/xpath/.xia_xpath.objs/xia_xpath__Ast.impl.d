lib/xpath/ast.ml: Float List String
