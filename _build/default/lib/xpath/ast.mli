(** Abstract syntax for the XPath subset understood by the system: linear
    paths over child ([/]) and descendant ([//]) axes with label, wildcard and
    attribute name tests, plus step predicates (path existence and comparisons
    with literals). *)

type axis =
  | Child        (** [/] *)
  | Descendant   (** [//] *)

type name_test =
  | Name of string
  | Wildcard     (** [*] *)

type node_test =
  | Elem of name_test
  | Attr of name_test  (** [@name] or [@*] *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type literal =
  | String_lit of string
  | Number_lit of float

type step = {
  axis : axis;
  test : node_test;
  predicates : predicate list;
}

and predicate =
  | Exists of step list
      (** [\[a/b\]] — a node reachable by the relative path exists. *)
  | Compare of step list * cmp * literal
      (** [\[a/b > 4.5\]]; an empty relative path means the step itself,
          written [\[. > 4.5\]]. *)

type path = step list

val step : ?predicates:predicate list -> axis -> node_test -> step

val equal_axis : axis -> axis -> bool
val equal_name_test : name_test -> name_test -> bool
val equal_node_test : node_test -> node_test -> bool
val equal_literal : literal -> literal -> bool
val equal_step : step -> step -> bool
val equal_predicate : predicate -> predicate -> bool
val equal_path : path -> path -> bool

(** Remove all predicates, keeping the structural skeleton. *)
val strip_predicates : path -> path

(** Alias of {!strip_predicates}. *)
val structural : path -> path

val has_predicates : path -> bool

(** [flip_cmp c] is the comparison with operand order reversed
    (so [a c b] iff [b (flip_cmp c) a]). *)
val flip_cmp : cmp -> cmp

(** [eval_cmp_int c n] interprets [c] against [compare]-style result [n]. *)
val eval_cmp_int : cmp -> int -> bool

(** [literal_matches v c lit]: does node value [v] satisfy [v c lit]?  Numeric
    literals coerce [v] to a float (failure to coerce means no match); string
    literals compare lexically. *)
val literal_matches : string -> cmp -> literal -> bool
