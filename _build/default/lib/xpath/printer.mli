(** Rendering XPath ASTs back to concrete syntax; inverse of {!Parser}. *)

val axis_to_string : Ast.axis -> string
val node_test_to_string : Ast.node_test -> string
val cmp_to_string : Ast.cmp -> string
val literal_to_string : Ast.literal -> string

(** Absolute form, leading [/] or [//]. *)
val path_to_string : Ast.path -> string

(** Relative form: no leading slash for a child first step. *)
val relative_to_string : Ast.path -> string

val pp_path : Format.formatter -> Ast.path -> unit
val pp_cmp : Format.formatter -> Ast.cmp -> unit
val pp_literal : Format.formatter -> Ast.literal -> unit
