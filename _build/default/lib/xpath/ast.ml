(* Abstract syntax for the XPath subset used by the advisor.

   Paths are sequences of steps along the child or descendant axis, with name
   tests that are labels, wildcards or attributes.  Steps may carry predicates:
   existence of a relative path, or a comparison between a relative path (or
   the step itself, when the relative path is empty) and a literal. *)

type axis =
  | Child        (* / *)
  | Descendant   (* // *)

type name_test =
  | Name of string
  | Wildcard

type node_test =
  | Elem of name_test
  | Attr of name_test

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type literal =
  | String_lit of string
  | Number_lit of float

type step = {
  axis : axis;
  test : node_test;
  predicates : predicate list;
}

and predicate =
  | Exists of step list                       (* [a/b] *)
  | Compare of step list * cmp * literal      (* [a/b > 4.5]; [] path means self: [. > 4.5] *)

type path = step list

let step ?(predicates = []) axis test = { axis; test; predicates }

let equal_axis a b =
  match a, b with
  | Child, Child | Descendant, Descendant -> true
  | Child, Descendant | Descendant, Child -> false

let equal_name_test a b =
  match a, b with
  | Name x, Name y -> String.equal x y
  | Wildcard, Wildcard -> true
  | Name _, Wildcard | Wildcard, Name _ -> false

let equal_node_test a b =
  match a, b with
  | Elem x, Elem y | Attr x, Attr y -> equal_name_test x y
  | Elem _, Attr _ | Attr _, Elem _ -> false

let equal_literal a b =
  match a, b with
  | String_lit x, String_lit y -> String.equal x y
  | Number_lit x, Number_lit y -> Float.equal x y
  | String_lit _, Number_lit _ | Number_lit _, String_lit _ -> false

let rec equal_step a b =
  equal_axis a.axis b.axis
  && equal_node_test a.test b.test
  && List.length a.predicates = List.length b.predicates
  && List.for_all2 equal_predicate a.predicates b.predicates

and equal_predicate a b =
  match a, b with
  | Exists p, Exists q -> equal_path p q
  | Compare (p, c, l), Compare (q, c', l') ->
      equal_path p q && c = c' && equal_literal l l'
  | Exists _, Compare _ | Compare _, Exists _ -> false

and equal_path a b =
  List.length a = List.length b && List.for_all2 equal_step a b

(* Strip all predicates, keeping only the structural skeleton of the path. *)
let strip_predicates path = List.map (fun s -> { s with predicates = [] }) path

let structural = strip_predicates

let has_predicates path = List.exists (fun s -> s.predicates <> []) path

let flip_cmp = function
  | Eq -> Eq
  | Ne -> Ne
  | Lt -> Gt
  | Le -> Ge
  | Gt -> Lt
  | Ge -> Le

let eval_cmp_int c n =
  match c with
  | Eq -> n = 0
  | Ne -> n <> 0
  | Lt -> n < 0
  | Le -> n <= 0
  | Gt -> n > 0
  | Ge -> n >= 0

(* Comparison semantics: a numeric literal coerces the node value to a number
   (no match if the coercion fails); a string literal compares lexically. *)
let literal_matches value cmp literal =
  match literal with
  | Number_lit x -> (
      match float_of_string_opt (String.trim value) with
      | None -> false
      | Some v -> eval_cmp_int cmp (Float.compare v x))
  | String_lit s -> eval_cmp_int cmp (String.compare value s)
