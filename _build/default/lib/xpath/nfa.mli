(** Finite automata over rooted label paths, for deciding exactly whether one
    linear XPath pattern matches a concrete path or covers another pattern. *)

type step = Ast.axis * Ast.node_test

type t

(** Compile a list of pattern steps. Attribute tests match labels spelled
    ["@name"].  @raise Invalid_argument beyond 60 steps. *)
val of_steps : step list -> t

(** Does the pattern match this rooted label path? *)
val accepts : t -> string list -> bool

(** [contained sub sup]: is every label path matched by [sub] also matched by
    [sup]?  Exact (not heuristic) containment. *)
val contained : t -> t -> bool
