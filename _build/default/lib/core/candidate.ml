(* Candidate indexes and the candidate DAG.

   A candidate is a potential index (definition + provenance).  Basic
   candidates come out of the optimizer's Enumerate Indexes mode; general
   candidates are produced by the generalization algorithm, which also wires
   the DAG: a general candidate is the parent of every candidate it was
   generalized from.  Each candidate carries its *affected set* — the
   workload statements whose basic patterns it covers — which drives the
   efficient benefit evaluation of Section VI-C. *)

module Index_def = Xia_index.Index_def
module Index_stats = Xia_index.Index_stats
module Pattern = Xia_xpath.Pattern
module Int_set = Set.Make (Int)

type origin =
  | Basic
  | General

type t = {
  id : int;
  def : Index_def.t;
  origin : origin;
  mutable parents : Int_set.t;   (* candidates generalizing this one *)
  mutable children : Int_set.t;  (* candidates this one was generalized from *)
  mutable affected : Int_set.t;  (* workload statement indices *)
}

type set = {
  by_id : (int, t) Hashtbl.t;
  by_key : (string, int) Hashtbl.t;  (* logical key -> id *)
  mutable next_id : int;
}

let create_set () = { by_id = Hashtbl.create 64; by_key = Hashtbl.create 64; next_id = 0 }

let find_by_key set key =
  match Hashtbl.find_opt set.by_key key with
  | None -> None
  | Some id -> Hashtbl.find_opt set.by_id id

let find set id = Hashtbl.find_opt set.by_id id

let get set id =
  match find set id with
  | Some c -> c
  | None -> invalid_arg (Printf.sprintf "Candidate.get: unknown id %d" id)

(* Add a candidate (or return the existing one with the same logical
   identity).  An existing basic candidate is never downgraded: re-adding it
   as general keeps its Basic origin. *)
let add set ~origin (def : Index_def.t) =
  let key = Index_def.logical_key def in
  match find_by_key set key with
  | Some c -> c
  | None ->
      let id = set.next_id in
      set.next_id <- id + 1;
      let c =
        {
          id;
          def;
          origin;
          parents = Int_set.empty;
          children = Int_set.empty;
          affected = Int_set.empty;
        }
      in
      Hashtbl.add set.by_id id c;
      Hashtbl.add set.by_key key id;
      c

let add_edge ~parent ~child =
  if parent.id <> child.id then begin
    parent.children <- Int_set.add child.id parent.children;
    child.parents <- Int_set.add parent.id child.parents
  end

let mark_affected c stmt_index = c.affected <- Int_set.add stmt_index c.affected

let to_list set =
  List.sort
    (fun a b -> compare a.id b.id)
    (Hashtbl.fold (fun _ c acc -> c :: acc) set.by_id [])

let basics set = List.filter (fun c -> c.origin = Basic) (to_list set)
let generals set = List.filter (fun c -> c.origin = General) (to_list set)

let cardinality set = Hashtbl.length set.by_id

(* Roots of the DAG: candidates nobody generalizes further. *)
let roots set = List.filter (fun c -> Int_set.is_empty c.parents) (to_list set)

let children_of set c = List.filter_map (find set) (Int_set.elements c.children)
let parents_of set c = List.filter_map (find set) (Int_set.elements c.parents)

let is_general c = c.origin = General

(* Derived statistics and size: virtual-index statistics from the data
   statistics of the candidate's table. *)
let stats catalog (c : t) =
  Index_stats.derive_cached (Xia_index.Catalog.stats catalog c.def.Index_def.table) c.def

let size catalog c = (stats catalog c).Index_stats.size_bytes

let config_size catalog config =
  List.fold_left (fun acc c -> acc + size catalog c) 0 config

(* Recompute affected sets from basic candidates: a candidate affects every
   statement one of whose basic patterns it covers. *)
let compute_affected set =
  let basic = basics set in
  List.iter
    (fun c ->
      if is_general c then begin
        let affected =
          List.fold_left
            (fun acc (b : t) ->
              if Index_def.covers ~general:c.def ~specific:b.def then
                Int_set.union acc b.affected
              else acc)
            c.affected basic
        in
        c.affected <- affected
      end)
    (to_list set)

let pp ppf c =
  Fmt.pf ppf "#%d %s %a AS %a [%s]%s" c.id c.def.Index_def.table Pattern.pp
    c.def.Index_def.pattern Index_def.pp_data_type c.def.Index_def.dtype
    (String.concat "," (List.map string_of_int (Int_set.elements c.affected)))
    (match c.origin with Basic -> "" | General -> " (general)")
