(** Candidate indexes and the candidate DAG.

    Basic candidates come from the optimizer's Enumerate Indexes mode;
    general candidates from the generalization algorithm, which also records
    DAG edges (a general candidate is the parent of the candidates it was
    generalized from).  The affected set of a candidate is the set of
    workload statement indices whose basic patterns it covers. *)

module Index_def = Xia_index.Index_def
module Index_stats = Xia_index.Index_stats
module Int_set : Set.S with type elt = int

type origin =
  | Basic
  | General

type t = {
  id : int;
  def : Index_def.t;
  origin : origin;
  mutable parents : Int_set.t;
  mutable children : Int_set.t;
  mutable affected : Int_set.t;
}

type set

val create_set : unit -> set

val find_by_key : set -> string -> t option
val find : set -> int -> t option

(** @raise Invalid_argument on unknown ids. *)
val get : set -> int -> t

(** Add (or retrieve) a candidate by logical identity. *)
val add : set -> origin:origin -> Index_def.t -> t

(** Record that [parent] generalizes [child]. *)
val add_edge : parent:t -> child:t -> unit

val mark_affected : t -> int -> unit

val to_list : set -> t list
val basics : set -> t list
val generals : set -> t list
val cardinality : set -> int

(** DAG roots: candidates with no parents. *)
val roots : set -> t list

val children_of : set -> t -> t list
val parents_of : set -> t -> t list
val is_general : t -> bool

(** Derived (virtual) statistics of the candidate. *)
val stats : Xia_index.Catalog.t -> t -> Index_stats.t

(** Estimated on-disk size in bytes. *)
val size : Xia_index.Catalog.t -> t -> int

val config_size : Xia_index.Catalog.t -> t list -> int

(** Fill in the affected sets of general candidates from the basic ones. *)
val compute_affected : set -> unit

val pp : Format.formatter -> t -> unit
