(** Configuration search: the paper's five algorithms plus the All-Index
    reference configuration. *)

type outcome = {
  algorithm : string;
  config : Candidate.t list;
  size : int;               (** estimated total size in bytes *)
  benefit : float;          (** full-evaluation benefit of the final config *)
  optimizer_calls : int;    (** evaluator calls consumed by the search *)
  elapsed : float;          (** seconds *)
}

(** β = 0.10, the size-expansion threshold of the heuristic search. *)
val beta_default : float

(** Basic candidates covered by a candidate. *)
val covered_basics : Candidate.set -> Candidate.t -> Candidate.t list

(** Plain greedy on individual benefit density; ignores interaction. *)
val greedy : Benefit.t -> Candidate.set -> budget:int -> outcome

(** Greedy with the covered-pattern bitmap and the two general-index
    admission conditions (IB and (1+β) size). *)
val greedy_heuristics :
  ?beta:float -> Benefit.t -> Candidate.set -> budget:int -> outcome

type td_variant = Lite | Full

val top_down : ?variant:td_variant -> Benefit.t -> Candidate.set -> budget:int -> outcome
val top_down_lite : Benefit.t -> Candidate.set -> budget:int -> outcome
val top_down_full : Benefit.t -> Candidate.set -> budget:int -> outcome

(** Exact 0/1 knapsack on individual benefits (optimal modulo interaction). *)
val dynamic_programming : Benefit.t -> Candidate.set -> budget:int -> outcome

(** All basic candidates: an index for every indexable workload pattern. *)
val all_index : Benefit.t -> Candidate.set -> outcome

val pp_outcome : Format.formatter -> outcome -> unit
