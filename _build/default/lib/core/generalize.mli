(** Candidate generalization: generalizeStep (Algorithm 1) + advanceStep
    (Table II) + rewrite rule 0, iterated over all compatible candidate pairs
    to a fixpoint, wiring the candidate DAG along the way. *)

module Pattern = Xia_xpath.Pattern

(** [gen_axis a b] is descendant if either axis is descendant. *)
val gen_axis : Xia_xpath.Ast.axis -> Xia_xpath.Ast.axis -> Xia_xpath.Ast.axis

(** Generalize two name tests; [None] on element/attribute kind mismatch. *)
val gen_test :
  Xia_xpath.Ast.node_test -> Xia_xpath.Ast.node_test -> Xia_xpath.Ast.node_test option

(** All generalizations of one pattern pair, normalized (rule 0) and
    deduplicated.  [pair /Security/Symbol /Security/SecInfo/*/Sector]
    is [\[/Security//*\]]. *)
val pair : Pattern.t -> Pattern.t -> Pattern.t list

(** Same table, same data type. *)
val compatible : Candidate.t -> Candidate.t -> bool

(** Safety cap on the candidate-set size. *)
val max_candidates : int

(** Expand the set to a fixpoint and recompute affected sets. *)
val close : Candidate.set -> unit
