(* Benefit evaluation (Sections III and VI-C).

   Benefit(x1..xn; W) = Σ_{s∈W} freq_s · ((s_old − s_new) − Σ_i mc(x_i, s))

   s_old / s_new come from the optimizer's Evaluate Indexes mode.  The
   evaluation is made efficient exactly as in the paper:

   - only statements in the union of the configuration's affected sets are
     re-optimized (others cannot change cost);
   - the configuration is partitioned into sub-configurations of indexes with
     overlapping affected sets (indexes in different sub-configurations
     cannot interact);
   - evaluated sub-configurations are cached.

   Note: the paper prints the maintenance term outside the frequency product;
   we scale mc by the statement frequency, which is the only reading under
   which repeating an update statement matters. *)

module Catalog = Xia_index.Catalog
module Maintenance = Xia_index.Maintenance
module Optimizer = Xia_optimizer.Optimizer
module Plan = Xia_optimizer.Plan
module Workload = Xia_workload.Workload
module Ast = Xia_query.Ast
module Int_set = Candidate.Int_set

type t = {
  catalog : Catalog.t;
  items : Workload.item array;
  base_costs : float array;       (* per statement, no indexes *)
  base_affected : float array;    (* per statement, estimated documents modified *)
  cache : (string, float) Hashtbl.t;  (* sub-configuration -> cost delta term *)
  mutable evaluations : int;      (* optimizer calls made through this evaluator *)
  mutable cache_hits : int;
  mutable useful_memo : (int, unit) Hashtbl.t option;
      (* memoized [useful_ids] result; valid because an evaluator is always
         paired with one candidate set *)
}

let dml_kind = function
  | Ast.Insert _ -> Some Maintenance.Dml_insert
  | Ast.Delete _ -> Some Maintenance.Dml_delete
  | Ast.Update _ -> Some Maintenance.Dml_update
  | Ast.Select _ -> None

let create catalog (workload : Workload.t) =
  let items = Array.of_list workload in
  Catalog.clear_virtual_indexes catalog;
  let base =
    Array.map
      (fun (item : Workload.item) ->
        Optimizer.optimize ~mode:Optimizer.Evaluate catalog item.statement)
      items
  in
  {
    catalog;
    items;
    base_costs = Array.map (fun p -> p.Plan.total_cost) base;
    base_affected = Array.map (fun p -> p.Plan.affected_docs) base;
    cache = Hashtbl.create 256;
    evaluations = Array.length items;
    cache_hits = 0;
    useful_memo = None;
  }

let base_workload_cost t =
  let total = ref 0.0 in
  Array.iteri
    (fun i (item : Workload.item) -> total := !total +. (item.freq *. t.base_costs.(i)))
    t.items;
  !total

(* Cost of the whole workload under a configuration (one Evaluate pass per
   statement; captures all interactions).  Used for final reporting. *)
let workload_cost t (config : Candidate.t list) =
  Catalog.set_virtual_indexes t.catalog (List.map (fun c -> c.Candidate.def) config);
  let total = ref 0.0 in
  Array.iter
    (fun (item : Workload.item) ->
      t.evaluations <- t.evaluations + 1;
      total :=
        !total
        +. (item.freq *. Optimizer.statement_cost ~mode:Optimizer.Evaluate t.catalog item.statement))
    t.items;
  Catalog.clear_virtual_indexes t.catalog;
  !total

(* Maintenance charge of a configuration: for every DML statement, every
   index of the configuration on the statement's table pays mc. *)
let maintenance_charge t (config : Candidate.t list) =
  let total = ref 0.0 in
  Array.iteri
    (fun i (item : Workload.item) ->
      match dml_kind item.statement with
      | None -> ()
      | Some kind ->
          let tables = Ast.tables item.statement in
          List.iter
            (fun (c : Candidate.t) ->
              if List.mem c.def.Xia_index.Index_def.table tables then begin
                let stats = Candidate.stats t.catalog c in
                total :=
                  !total
                  +. item.freq
                     *. Maintenance.cost stats kind ~docs_affected:t.base_affected.(i)
              end)
            config)
    t.items;
  !total

(* Partition a configuration into sub-configurations with overlapping
   affected sets (union-find over candidates). *)
let sub_configurations (config : Candidate.t list) =
  let arr = Array.of_list config in
  let n = Array.length arr in
  let parent = Array.init n (fun i -> i) in
  let rec find i = if parent.(i) = i then i else (parent.(i) <- find parent.(i); parent.(i)) in
  let union i j =
    let ri = find i and rj = find j in
    if ri <> rj then parent.(ri) <- rj
  in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      if not (Int_set.disjoint arr.(i).Candidate.affected arr.(j).Candidate.affected) then
        union i j
    done
  done;
  let groups = Hashtbl.create 8 in
  Array.iteri
    (fun i c ->
      let r = find i in
      Hashtbl.replace groups r (c :: (Option.value ~default:[] (Hashtbl.find_opt groups r))))
    arr;
  Hashtbl.fold (fun _ g acc -> g :: acc) groups []

let sub_config_key (sub : Candidate.t list) =
  String.concat ";"
    (List.sort String.compare
       (List.map (fun c -> Xia_index.Index_def.logical_key c.Candidate.def) sub))

(* Cost-delta term of one sub-configuration: Σ freq·(s_old − s_new) over its
   affected statements. *)
let sub_config_delta t (sub : Candidate.t list) =
  let key = sub_config_key sub in
  match Hashtbl.find_opt t.cache key with
  | Some d ->
      t.cache_hits <- t.cache_hits + 1;
      d
  | None ->
      let affected =
        List.fold_left
          (fun acc c -> Int_set.union acc c.Candidate.affected)
          Int_set.empty sub
      in
      Catalog.set_virtual_indexes t.catalog (List.map (fun c -> c.Candidate.def) sub);
      let delta =
        Int_set.fold
          (fun stmt_index acc ->
            if stmt_index < 0 || stmt_index >= Array.length t.items then acc
            else begin
              let item = t.items.(stmt_index) in
              t.evaluations <- t.evaluations + 1;
              let cost_new =
                Optimizer.statement_cost ~mode:Optimizer.Evaluate t.catalog item.statement
              in
              acc +. (item.freq *. (t.base_costs.(stmt_index) -. cost_new))
            end)
          affected 0.0
      in
      Catalog.clear_virtual_indexes t.catalog;
      Hashtbl.add t.cache key delta;
      delta

(* The paper's Benefit(x1..xn; W). *)
let benefit t (config : Candidate.t list) =
  match config with
  | [] -> 0.0
  | _ ->
      let subs = sub_configurations config in
      let delta = List.fold_left (fun acc sub -> acc +. sub_config_delta t sub) 0.0 subs in
      delta -. maintenance_charge t config

(* Individual benefit of a single candidate, memoized through the
   sub-configuration cache (a singleton is its own sub-configuration). *)
let individual_benefit t c = benefit t [ c ]

(* Candidates used by at least one optimizer plan when every basic candidate
   of a statement is installed together.  This captures indexes whose value
   only shows in combination (index ANDing): their individual benefit can be
   zero, yet the optimizer picks them alongside a partner.  The paper's
   preprocessing criterion — drop indexes "not being used in optimizer
   plans" — is exactly this check. *)
let used_in_plans t (set : Candidate.set) =
  let used = Hashtbl.create 32 in
  let basics = Candidate.basics set in
  Array.iteri
    (fun stmt_index (item : Workload.item) ->
      let config =
        List.filter (fun (c : Candidate.t) -> Int_set.mem stmt_index c.affected) basics
      in
      if config <> [] then begin
        Catalog.set_virtual_indexes t.catalog
          (List.map (fun (c : Candidate.t) -> c.Candidate.def) config);
        t.evaluations <- t.evaluations + 1;
        let plan = Optimizer.optimize ~mode:Optimizer.Evaluate t.catalog item.statement in
        List.iter
          (fun d -> Hashtbl.replace used (Xia_index.Index_def.logical_key d) ())
          (Plan.indexes_used plan)
      end)
    t.items;
  Catalog.clear_virtual_indexes t.catalog;
  used

(* Is this candidate worth keeping in a search space?  Positive individual
   benefit, or used by some plan in combination. *)
let useful_ids t set =
  match t.useful_memo with
  | Some ids -> ids
  | None ->
      let used = used_in_plans t set in
      let ids = Hashtbl.create 64 in
      List.iter
        (fun (c : Candidate.t) ->
          if
            individual_benefit t c > 0.0
            || Hashtbl.mem used (Xia_index.Index_def.logical_key c.def)
          then Hashtbl.replace ids c.id ())
        (Candidate.to_list set);
      t.useful_memo <- Some ids;
      ids
