(* Basic candidate enumeration (Section IV).

   Every workload statement is optimized in the Enumerate Indexes mode; the
   patterns the optimizer matched against the universal virtual index become
   basic candidates, each recording which statements produced it (the seed of
   its affected set). *)

module Index_def = Xia_index.Index_def

(* Enumerate basic candidates for a workload into a fresh candidate set. *)
let basic_candidates catalog (workload : Xia_workload.Workload.t) =
  let set = Candidate.create_set () in
  List.iteri
    (fun stmt_index (item : Xia_workload.Workload.item) ->
      let patterns = Xia_optimizer.Optimizer.enumerate_indexes catalog item.statement in
      List.iter
        (fun (table, pattern, dtype) ->
          let def = Index_def.make ~table ~pattern ~dtype () in
          let c = Candidate.add set ~origin:Candidate.Basic def in
          Candidate.mark_affected c stmt_index)
        patterns)
    workload;
  set

(* Full candidate generation: enumerate then generalize. *)
let candidates catalog workload =
  let set = basic_candidates catalog workload in
  Generalize.close set;
  set
