lib/core/generalize.mli: Candidate Xia_xpath
