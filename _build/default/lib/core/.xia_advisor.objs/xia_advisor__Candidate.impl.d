lib/core/candidate.ml: Fmt Hashtbl Int List Printf Set String Xia_index Xia_xpath
