lib/core/advisor.mli: Benefit Candidate Format Search Xia_index Xia_workload
