lib/core/benefit.ml: Array Candidate Hashtbl List Option String Xia_index Xia_optimizer Xia_query Xia_workload
