lib/core/search.mli: Benefit Candidate Format
