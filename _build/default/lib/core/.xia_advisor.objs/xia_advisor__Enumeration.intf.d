lib/core/enumeration.mli: Candidate Xia_index Xia_workload
