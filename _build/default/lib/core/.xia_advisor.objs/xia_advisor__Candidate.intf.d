lib/core/candidate.mli: Format Set Xia_index
