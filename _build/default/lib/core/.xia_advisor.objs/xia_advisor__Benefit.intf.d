lib/core/benefit.mli: Candidate Hashtbl Xia_index Xia_workload
