lib/core/search.ml: Array Benefit Candidate Float Fmt Hashtbl List String Sys Xia_index Xia_storage Xia_xpath
