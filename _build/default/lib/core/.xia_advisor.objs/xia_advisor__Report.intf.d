lib/core/report.mli: Format Xia_index Xia_workload
