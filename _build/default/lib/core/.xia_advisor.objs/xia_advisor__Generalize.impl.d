lib/core/generalize.ml: Candidate Hashtbl List Queue String Xia_index Xia_xpath
