lib/core/advisor.ml: Benefit Candidate Enumeration Fmt List Logs Report Search Sys Xia_index Xia_optimizer Xia_workload
