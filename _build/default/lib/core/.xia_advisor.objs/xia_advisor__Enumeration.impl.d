lib/core/enumeration.ml: Candidate Generalize List Xia_index Xia_optimizer Xia_workload
