lib/core/report.ml: Fmt List String Xia_index Xia_optimizer Xia_query Xia_workload
