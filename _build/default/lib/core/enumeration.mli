(** Basic candidate enumeration through the optimizer's Enumerate Indexes
    mode (Section IV). *)

(** Basic candidates of a workload, with affected sets seeded by the
    statements that produced each pattern. *)
val basic_candidates :
  Xia_index.Catalog.t -> Xia_workload.Workload.t -> Candidate.set

(** [basic_candidates] followed by generalization to a fixpoint. *)
val candidates : Xia_index.Catalog.t -> Xia_workload.Workload.t -> Candidate.set
