(** What-if analysis: evaluate an arbitrary index configuration over a
    workload (DB2's EVALUATE INDEXES as a service), with per-statement
    costs, plans, and unused-index warnings. *)

module Catalog = Xia_index.Catalog
module Index_def = Xia_index.Index_def
module Workload = Xia_workload.Workload

type statement_report = {
  label : string;
  statement_text : string;
  freq : float;
  base_cost : float;
  new_cost : float;
  speedup : float;
  plan : string;
  indexes_used : Index_def.t list;
}

type t = {
  defs : Index_def.t list;
  total_size : int;
  statements : statement_report list;
  base_total : float;
  new_total : float;
  est_speedup : float;
  maintenance : float;
  unused : Index_def.t list;
}

val evaluate_configuration : Catalog.t -> Workload.t -> Index_def.t list -> t

val pp : Format.formatter -> t -> unit
