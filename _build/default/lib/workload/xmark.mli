(** XMark-like auction benchmark, shredded into per-entity documents. *)

val item_table : string
val person_table : string
val auction_table : string

val item : Random.State.t -> int -> Xia_xml.Types.t
val person : Random.State.t -> int -> Xia_xml.Types.t

val open_auction :
  Random.State.t -> int -> n_items:int -> n_persons:int -> Xia_xml.Types.t

type scale = {
  items : int;
  persons : int;
  auctions : int;
}

val default_scale : scale
val tiny_scale : scale

val load : ?scale:scale -> ?seed:int -> Xia_index.Catalog.t -> unit

val query_strings : string list
val queries : unit -> Workload.t
val workload : unit -> Workload.t
