(* Workloads: statements with occurrence frequencies.

   The benefit of an index configuration is a frequency-weighted sum over the
   workload's statements, so frequencies are first-class here. *)

type item = {
  label : string;
  statement : Xia_query.Ast.statement;
  freq : float;
}

type t = item list

let item ?(freq = 1.0) label statement = { label; statement; freq }

let of_statements stmts =
  List.mapi (fun i s -> item (Printf.sprintf "S%d" (i + 1)) s) stmts

(* Load a workload file: '#' comments, blank lines, "freq|statement" lines;
   statements may be mini-XQuery or SQL/XML. *)
let of_file path =
  List.mapi
    (fun i (freq, text) ->
      match Xia_query.Sqlxml.parse_any text with
      | Ok (`Xquery s) | Ok (`Sqlxml s) ->
          { label = Printf.sprintf "S%d" (i + 1); statement = s; freq }
      | Error msg ->
          invalid_arg (Printf.sprintf "%s: line %d: %s" path (i + 1) msg))
    (Xia_storage.Persist.workload_lines path)

let of_strings strs =
  List.mapi
    (fun i s -> item (Printf.sprintf "S%d" (i + 1)) (Xia_query.Parser.parse_statement_exn s))
    strs

let queries w = List.filter (fun i -> Xia_query.Ast.is_query i.statement) w
let dml w = List.filter (fun i -> Xia_query.Ast.is_dml i.statement) w

let size = List.length

let total_frequency w = List.fold_left (fun acc i -> acc +. i.freq) 0.0 w

(* First [n] items: the paper's training prefixes in the generalization
   experiment. *)
let prefix n w = List.filteri (fun i _ -> i < n) w

let labels w = List.map (fun i -> i.label) w

let find_opt w label = List.find_opt (fun i -> String.equal i.label label) w

let pp_item ppf i =
  Fmt.pf ppf "%s (freq %.1f): %s" i.label i.freq
    (Xia_query.Printer.statement_to_string i.statement)

let pp ppf w = Fmt.(list ~sep:(any "@.") pp_item) ppf w
