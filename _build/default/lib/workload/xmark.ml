(* XMark-like benchmark: an auction site (Schmidt et al., "The XML Benchmark
   Project").  The original is one large document; like TPoX-era DB2 setups we
   shred it into per-entity documents across three tables, preserving the
   schema shape XMark queries navigate (items with nested descriptions,
   persons with optional profiles, open auctions with bidder histories). *)

module T = Xia_xml.Types

let item_table = "XMITEM"
let person_table = "XMPERSON"
let auction_table = "XMAUCTION"

let regions =
  [| "africa"; "asia"; "australia"; "europe"; "namerica"; "samerica" |]

let categories = Array.init 30 (fun i -> Printf.sprintf "category%d" i)

let cities =
  [| "Amsterdam"; "Berlin"; "Paris"; "Tokyo"; "Sydney"; "Lagos"; "Toronto";
     "Lima"; "Mumbai"; "Seoul"; "Madrid"; "Rome" |]

let words =
  [| "vintage"; "rare"; "mint"; "boxed"; "signed"; "antique"; "modern";
     "classic"; "limited"; "original"; "restored"; "handmade" |]

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let item rng i =
  let region = pick rng regions in
  T.element
    ~attrs:[ ("id", Printf.sprintf "item%d" i) ]
    "item"
    [
      T.leaf "location" (pick rng cities);
      T.leaf "region" region;
      T.leaf "name" (Printf.sprintf "%s %s %d" (pick rng words) (pick rng words) i);
      T.leaf "quantity" (string_of_int (1 + Random.State.int rng 10));
      T.element "payment" [ T.leaf "method" (pick rng [| "Cash"; "Creditcard"; "Wire" |]) ];
      T.element "description"
        [
          T.element "parlist"
            [
              T.leaf "listitem" (pick rng words);
              T.leaf "listitem" (pick rng words);
            ];
        ];
      T.leaf "incategory" (pick rng categories);
      T.element "mailbox"
        (List.init (Random.State.int rng 3) (fun _ ->
             T.element "mail"
               [
                 T.leaf "from" (pick rng cities);
                 T.leaf "date" (Printf.sprintf "%02d/%02d/2025"
                                  (1 + Random.State.int rng 12)
                                  (1 + Random.State.int rng 28));
               ]));
    ]

let person rng i =
  let has_profile = Random.State.int rng 100 < 70 in
  T.element
    ~attrs:[ ("id", Printf.sprintf "person%d" i) ]
    "person"
    ([
       T.leaf "name" (Printf.sprintf "Person %d" i);
       T.leaf "emailaddress" (Printf.sprintf "mailto:p%d@example.org" i);
       T.element "address"
         [
           T.leaf "street" (Printf.sprintf "%d Main St" (Random.State.int rng 999));
           T.leaf "city" (pick rng cities);
           T.leaf "country" (pick rng regions);
         ];
     ]
    @
    if has_profile then
      [
        T.element
          ~attrs:[ ("income", Printf.sprintf "%.2f" (20_000.0 +. Random.State.float rng 80_000.0)) ]
          "profile"
          [
            T.leaf "interest" (pick rng categories);
            T.leaf "education" (pick rng [| "HighSchool"; "College"; "Graduate" |]);
          ];
      ]
    else [])

let open_auction rng i ~n_items ~n_persons =
  let n_bids = Random.State.int rng 5 in
  let initial = 1.0 +. Random.State.float rng 200.0 in
  T.element
    ~attrs:[ ("id", Printf.sprintf "open_auction%d" i) ]
    "open_auction"
    ([
       T.leaf "initial" (Printf.sprintf "%.2f" initial);
       T.leaf "current" (Printf.sprintf "%.2f" (initial +. (6.0 *. float_of_int n_bids)));
       T.element ~attrs:[ ("item", Printf.sprintf "item%d" (Random.State.int rng (max 1 n_items))) ] "itemref" [];
       T.element ~attrs:[ ("person", Printf.sprintf "person%d" (Random.State.int rng (max 1 n_persons))) ] "seller" [];
     ]
    @ List.init n_bids (fun b ->
          T.element "bidder"
            [
              T.leaf "date" (Printf.sprintf "%02d/%02d/2025"
                               (1 + Random.State.int rng 12)
                               (1 + Random.State.int rng 28));
              T.leaf "increase" (Printf.sprintf "%.2f" (1.5 +. float_of_int b));
            ]))

type scale = {
  items : int;
  persons : int;
  auctions : int;
}

let default_scale = { items = 2500; persons = 1500; auctions = 2000 }
let tiny_scale = { items = 200; persons = 120; auctions = 150 }

let load ?(scale = default_scale) ?(seed = 1789) catalog =
  let rng = Random.State.make [| seed |] in
  let items = Xia_storage.Doc_store.create item_table in
  let persons = Xia_storage.Doc_store.create person_table in
  let auctions = Xia_storage.Doc_store.create auction_table in
  for i = 0 to scale.items - 1 do
    ignore (Xia_storage.Doc_store.insert items (item rng i))
  done;
  for i = 0 to scale.persons - 1 do
    ignore (Xia_storage.Doc_store.insert persons (person rng i))
  done;
  for i = 0 to scale.auctions - 1 do
    ignore
      (Xia_storage.Doc_store.insert auctions
         (open_auction rng i ~n_items:scale.items ~n_persons:scale.persons))
  done;
  ignore (Xia_index.Catalog.add_table catalog items);
  ignore (Xia_index.Catalog.add_table catalog persons);
  ignore (Xia_index.Catalog.add_table catalog auctions);
  Xia_index.Catalog.runstats_all catalog

(* Queries echoing XMark Q1 (person by id), Q2 (bid increases), Q5 (items
   sold above a price), Q8/Q9-style joins reduced to their index-relevant
   halves, plus attribute and wildcard navigation. *)
let query_strings =
  [
    {|for $p in XMPERSON('XDOC')/person where $p/@id = "person42" return $p/name|};
    {|for $a in XMAUCTION('XDOC')/open_auction[bidder/increase > 6] return $a/current|};
    {|for $i in XMITEM('XDOC')/item where $i/region = "europe" and $i/incategory = "category7" return $i/name|};
    {|for $a in XMAUCTION('XDOC')/open_auction where $a/current > 180 return <High>{$a/itemref/@item}</High>|};
    {|for $p in XMPERSON('XDOC')/person[profile/@income > 85000] return $p/emailaddress|};
    {|for $i in XMITEM('XDOC')/item where $i/description/*/listitem = "vintage" return $i|};
    {|for $p in XMPERSON('XDOC')/person where $p/address/city = "Tokyo" return $p/name|};
    {|for $a in XMAUCTION('XDOC')/open_auction where $a/seller/@person = "person99" return $a|};
  ]

let queries () =
  List.mapi
    (fun i s ->
      Workload.item (Printf.sprintf "X%d" (i + 1)) (Xia_query.Parser.parse_statement_exn s))
    query_strings

let workload () = queries ()
