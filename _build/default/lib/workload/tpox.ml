(* TPoX-like benchmark: data generator and query workload.

   TPoX (Transaction Processing over XML, Nicola et al., SIGMOD 2007) models
   a financial brokerage: security master data, customers with accounts, and
   FIXML orders.  The real benchmark's 1 GB scale is far beyond what a unit
   bench needs; this generator reproduces the schema shape the paper's
   examples rely on (Symbol, Yield, SecInfo/*/Sector, account balances, FIXML
   attributes) at a configurable document count, with deterministic
   pseudo-random content. *)

module T = Xia_xml.Types

let security_table = "SECURITY"
let custacc_table = "CUSTACC"
let order_table = "XORDER"

let sectors =
  [| "Energy"; "Technology"; "Finance"; "Healthcare"; "Utilities"; "Materials";
     "Industrials"; "ConsumerStaples"; "ConsumerDiscretionary"; "Telecom";
     "RealEstate"; "Transport" |]

let industries =
  [| "OilGas"; "Semiconductors"; "Software"; "Banks"; "Insurance"; "Biotech";
     "Pharma"; "ElectricUtilities"; "Chemicals"; "Aerospace"; "Defense";
     "FoodProducts"; "Beverages"; "Retail"; "Automobiles"; "Media"; "Wireless";
     "REITs"; "Railroads"; "Airlines"; "Mining"; "Steel"; "Paper"; "Machinery";
     "Construction"; "Textiles"; "Tobacco"; "Gaming"; "Lodging"; "Restaurants";
     "ITServices"; "Hardware"; "Internet"; "AssetManagement"; "Brokerage";
     "Reinsurance"; "WaterUtilities"; "GasUtilities"; "Shipping"; "Logistics" |]

let countries =
  [| "USA"; "Canada"; "Germany"; "France"; "UK"; "Japan"; "Australia"; "Brazil";
     "India"; "China"; "Mexico"; "Spain"; "Italy"; "Netherlands"; "Sweden";
     "Norway"; "Switzerland"; "Austria"; "Belgium"; "Denmark"; "Finland";
     "Ireland"; "Portugal"; "Greece"; "Poland"; "Korea"; "Singapore";
     "SouthAfrica"; "Argentina"; "Chile" |]

let first_names =
  [| "James"; "Mary"; "Robert"; "Patricia"; "John"; "Jennifer"; "Michael";
     "Linda"; "David"; "Elizabeth"; "William"; "Barbara"; "Richard"; "Susan";
     "Joseph"; "Jessica"; "Thomas"; "Sarah"; "Charles"; "Karen" |]

let last_names =
  [| "Smith"; "Johnson"; "Williams"; "Brown"; "Jones"; "Garcia"; "Miller";
     "Davis"; "Rodriguez"; "Martinez"; "Hernandez"; "Lopez"; "Gonzalez";
     "Wilson"; "Anderson"; "Taylor"; "Moore"; "Jackson"; "Martin"; "Lee" |]

let tiers = [| "Platinum"; "Gold"; "Silver"; "Standard" |]
let currencies = [| "USD"; "EUR"; "GBP"; "JPY"; "CAD"; "CHF" |]

let pick rng arr = arr.(Random.State.int rng (Array.length arr))

let money rng lo hi =
  Printf.sprintf "%.2f" (lo +. Random.State.float rng (hi -. lo))

let date rng =
  Printf.sprintf "20%02d-%02d-%02d"
    (20 + Random.State.int rng 7)
    (1 + Random.State.int rng 12)
    (1 + Random.State.int rng 28)

let symbol_of i = Printf.sprintf "SYM%05d" i

(* One Security document.  The child of SecInfo depends on the security type,
   which is what makes the paper's /Security/SecInfo/*/Sector wildcard (and
   its /Security//* generalization) meaningful. *)
let security rng i =
  let sec_type = pick rng [| "Stock"; "Bond"; "Fund" |] in
  let sector = pick rng sectors in
  let industry = pick rng industries in
  let info_children =
    [ T.leaf "Sector" sector; T.leaf "Industry" industry ]
    @
    match sec_type with
    | "Stock" ->
        [
          T.leaf "PE" (Printf.sprintf "%.1f" (5.0 +. Random.State.float rng 45.0));
          T.leaf "SharesOutstanding" (string_of_int (Random.State.int rng 10_000_000));
          T.leaf "MarketCap" (money rng 1e6 1e9);
        ]
    | "Bond" ->
        [
          T.leaf "CouponRate" (Printf.sprintf "%.2f" (Random.State.float rng 9.0));
          T.leaf "MaturityDate" (date rng);
          T.leaf "Rating" (pick rng [| "AAA"; "AA"; "A"; "BBB"; "BB"; "B" |]);
        ]
    | _ ->
        [
          T.leaf "ManagementFee" (Printf.sprintf "%.2f" (Random.State.float rng 2.5));
          T.leaf "FundFamily" (Printf.sprintf "Family%02d" (Random.State.int rng 25));
        ]
  in
  let info_tag = sec_type ^ "Information" in
  let yield_opt =
    (* Stocks pay a dividend yield only sometimes; bonds and funds always
       carry a Yield element. *)
    if String.equal sec_type "Stock" && Random.State.int rng 100 < 60 then []
    else [ T.leaf "Yield" (Printf.sprintf "%.1f" (Random.State.float rng 10.0)) ]
  in
  let price = 1.0 +. Random.State.float rng 999.0 in
  T.element "Security"
    ([
       T.leaf "Symbol" (symbol_of i);
       T.leaf "Name" (Printf.sprintf "%s %s Corp %d" (pick rng industries) sec_type i);
       T.leaf "SecurityType" sec_type;
       T.element "SecInfo" [ T.element info_tag info_children ];
       T.element "Price"
         [
           T.leaf "LastTrade" (Printf.sprintf "%.2f" price);
           T.leaf "Ask" (Printf.sprintf "%.2f" (price *. 1.01));
           T.leaf "Bid" (Printf.sprintf "%.2f" (price *. 0.99));
         ];
     ]
    @ yield_opt)

let account_id_of customer_index k = Printf.sprintf "ACCT%05d%d" customer_index k

let customer rng i =
  let id = 1000 + i in
  let n_accounts = 1 + Random.State.int rng 3 in
  let accounts =
    List.init n_accounts (fun k ->
        T.element
          ~attrs:[ ("id", account_id_of i k) ]
          "Account"
          [
            T.leaf "Category" (pick rng [| "Checking"; "Savings"; "Brokerage"; "Retirement" |]);
            T.leaf "Currency" (pick rng currencies);
            T.element "Balance"
              [
                T.leaf "OnlineActualBal" (money rng 0.0 100_000.0);
                T.leaf "AvailableBal" (money rng 0.0 100_000.0);
              ];
            T.leaf "LastUpdate" (date rng);
          ])
  in
  T.element
    ~attrs:[ ("id", string_of_int id) ]
    "Customer"
    [
      T.element "Name"
        [ T.leaf "FirstName" (pick rng first_names); T.leaf "LastName" (pick rng last_names) ];
      T.leaf "Nationality" (pick rng countries);
      T.leaf "CountryOfResidence" (pick rng countries);
      T.leaf "Tier" (pick rng tiers);
      T.element "Accounts" accounts;
    ]

let order rng i ~n_securities ~n_customers =
  let sym = symbol_of (Random.State.int rng (max 1 n_securities)) in
  let cust = Random.State.int rng (max 1 n_customers) in
  let acct = account_id_of cust 0 in
  T.element "FIXML"
    [
      T.element
        ~attrs:
          [
            ("ID", Printf.sprintf "ORD%06d" i);
            ("Acct", acct);
            ("Side", if Random.State.bool rng then "1" else "2");
            ("TrdDt", date rng);
            ("Typ", string_of_int (1 + Random.State.int rng 2));
          ]
        "Order"
        [
          T.element ~attrs:[ ("Sym", sym); ("SecTyp", "CS") ] "Instrmt" [];
          T.element ~attrs:[ ("Qty", string_of_int (100 * (1 + Random.State.int rng 50))) ] "OrdQty" [];
        ];
    ]

type scale = {
  securities : int;
  customers : int;
  orders : int;
}

let default_scale = { securities = 4000; customers = 2000; orders = 3000 }

let tiny_scale = { securities = 300; customers = 150; orders = 200 }

(* Populate a catalog with the three TPoX tables and collect statistics. *)
let load ?(scale = default_scale) ?(seed = 42) catalog =
  let rng = Random.State.make [| seed |] in
  let sec = Xia_storage.Doc_store.create security_table in
  let cust = Xia_storage.Doc_store.create custacc_table in
  let ord = Xia_storage.Doc_store.create order_table in
  for i = 0 to scale.securities - 1 do
    ignore (Xia_storage.Doc_store.insert sec (security rng i))
  done;
  for i = 0 to scale.customers - 1 do
    ignore (Xia_storage.Doc_store.insert cust (customer rng i))
  done;
  for i = 0 to scale.orders - 1 do
    ignore
      (Xia_storage.Doc_store.insert ord
         (order rng i ~n_securities:scale.securities ~n_customers:scale.customers))
  done;
  ignore (Xia_index.Catalog.add_table catalog sec);
  ignore (Xia_index.Catalog.add_table catalog cust);
  ignore (Xia_index.Catalog.add_table catalog ord);
  Xia_index.Catalog.runstats_all catalog

(* The 11-query TPoX-flavoured workload (mirroring the benchmark's query set;
   Q1 and Q2 are verbatim the paper's running examples). *)
let query_strings =
  [
    (* Q1: return a security having the specified symbol (paper Q1) *)
    {|for $sec in SECURITY('SDOC')/Security where $sec/Symbol = "SYM00042" return $sec|};
    (* Q2: securities in a sector with a yield range (paper Q2) *)
    {|for $sec in SECURITY('SDOC')/Security[Yield>4.5] where $sec/SecInfo/*/Sector = "Energy" return <Security>{$sec/Name}</Security>|};
    (* Q3: price of a security by symbol *)
    {|for $sec in SECURITY('SDOC')/Security where $sec/Symbol = "SYM01007" return $sec/Price/LastTrade|};
    (* Q4: securities of an industry *)
    {|for $sec in SECURITY('SDOC')/Security where $sec/SecInfo/*/Industry = "Semiconductors" return <Result>{$sec/Symbol, $sec/Name}</Result>|};
    (* Q5: cheap stocks with a low PE *)
    {|for $sec in SECURITY('SDOC')/Security[SecInfo/StockInformation/PE < 12] where $sec/Price/LastTrade < 40 return <Stock>{$sec/Symbol}</Stock>|};
    (* Q6: customer profile by id *)
    {|for $cust in CUSTACC('CADOC')/Customer where $cust/@id = 1042 return $cust/Name|};
    (* Q7: accounts of wealthy customers *)
    {|for $cust in CUSTACC('CADOC')/Customer[Accounts/Account/Balance/OnlineActualBal > 95000] return <Rich>{$cust/Name/LastName}</Rich>|};
    (* Q8: premium customers of a nationality *)
    {|for $cust in CUSTACC('CADOC')/Customer where $cust/Nationality = "Norway" and $cust/Tier = "Platinum" return $cust|};
    (* Q9: account lookup by account id *)
    {|for $cust in CUSTACC('CADOC')/Customer where $cust/Accounts/Account/@id = "ACCT001230" return <Owner>{$cust/Name}</Owner>|};
    (* Q10: order by order id *)
    {|for $ord in XORDER('ODOC')/FIXML/Order where $ord/@ID = "ORD000123" return $ord|};
    (* Q11: orders booked against an account *)
    {|for $ord in XORDER('ODOC')/FIXML/Order where $ord/@Acct = "ACCT000770" return <Ord>{$ord/@ID}</Ord>|};
  ]

let queries () =
  List.mapi
    (fun i s ->
      Workload.item (Printf.sprintf "Q%d" (i + 1)) (Xia_query.Parser.parse_statement_exn s))
    query_strings

(* DML statements for maintenance-cost experiments (TPoX's transaction side:
   order entry, price update, order deletion, customer address change). *)
let dml_strings =
  [
    {|insert into XORDER <FIXML><Order ID="ORDNEW001" Acct="ACCT000420" Side="1" TrdDt="2026-07-01" Typ="1"><Instrmt Sym="SYM00042" SecTyp="CS"/><OrdQty Qty="500"/></Order></FIXML>|};
    {|update SECURITY set /Security/Price/LastTrade = "99.50" where /Security[Symbol="SYM00042"]|};
    {|delete from XORDER where /FIXML/Order[@ID="ORD000099"]|};
    {|update CUSTACC set /Customer/Tier = "Gold" where /Customer[@id=1042]|};
  ]

let dml () =
  List.mapi
    (fun i s ->
      Workload.item (Printf.sprintf "U%d" (i + 1)) (Xia_query.Parser.parse_statement_exn s))
    dml_strings

(* Nine "variation" queries: unseen leaves under the subtrees the main
   queries touch (the paper's scenario where "the rich structure of XML
   allows users to pose queries that retrieve elements ... reachable by
   different paths with slight variations").  A general index such as
   /Security/SecInfo//* learned from Q2/Q4 keeps serving most of these. *)
let variation_query_strings =
  [
    {|for $sec in SECURITY('SDOC')/Security where $sec/SecInfo/*/Rating = "AAA" return $sec|};
    {|for $sec in SECURITY('SDOC')/Security[SecInfo/*/CouponRate > 7] return $sec/Name|};
    {|for $sec in SECURITY('SDOC')/Security where $sec/SecInfo/*/FundFamily = "Family07" return $sec|};
    {|for $sec in SECURITY('SDOC')/Security where $sec/SecInfo/*/MarketCap > 900000000 return $sec/Symbol|};
    {|for $sec in SECURITY('SDOC')/Security where $sec/Price/Ask < 5 return $sec|};
    {|for $cust in CUSTACC('CADOC')/Customer where $cust/Accounts/Account/Currency = "CHF" return $cust/Name|};
    {|for $cust in CUSTACC('CADOC')/Customer where $cust/Accounts/Account/Category = "Retirement" return $cust|};
    {|for $cust in CUSTACC('CADOC')/Customer where $cust/CountryOfResidence = "Japan" return $cust/Name|};
    {|for $ord in XORDER('ODOC')/FIXML/Order where $ord/Instrmt/@Sym = "SYM00042" return $ord|};
  ]

let variation_queries () =
  List.mapi
    (fun i s ->
      Workload.item (Printf.sprintf "V%d" (i + 1)) (Xia_query.Parser.parse_statement_exn s))
    variation_query_strings

let workload () = queries ()

let workload_with_updates ?(update_freq = 1.0) () =
  queries () @ List.map (fun i -> { i with Workload.freq = update_freq }) (dml ())
