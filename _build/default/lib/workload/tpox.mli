(** TPoX-like benchmark: deterministic data generator (securities, customer
    accounts, FIXML orders) and the 11-query workload the paper evaluates on,
    plus DML statements for maintenance experiments. *)

val security_table : string
val custacc_table : string
val order_table : string

(** Deterministic single-document generators (exposed for tests). *)
val security : Random.State.t -> int -> Xia_xml.Types.t

val customer : Random.State.t -> int -> Xia_xml.Types.t

val order :
  Random.State.t -> int -> n_securities:int -> n_customers:int -> Xia_xml.Types.t

val symbol_of : int -> string

type scale = {
  securities : int;
  customers : int;
  orders : int;
}

val default_scale : scale
val tiny_scale : scale

(** Create and fill the three tables in the catalog, then collect
    statistics. *)
val load : ?scale:scale -> ?seed:int -> Xia_index.Catalog.t -> unit

val query_strings : string list

(** The 11 read-only queries (Q1 and Q2 are the paper's running examples). *)
val queries : unit -> Workload.t

(** Insert / update / delete statements (order entry, price update, ...). *)
val dml : unit -> Workload.t

val variation_query_strings : string list

(** Nine "variation" queries on unseen leaves under the subtrees the main
    queries navigate — the future-workload scenario of Section VII-C. *)
val variation_queries : unit -> Workload.t

(** Alias for {!queries}. *)
val workload : unit -> Workload.t

(** Queries plus DML with the given frequency on each DML statement. *)
val workload_with_updates : ?update_freq:float -> unit -> Workload.t
