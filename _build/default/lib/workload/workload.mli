(** Workloads: statements with occurrence frequencies. *)

type item = {
  label : string;
  statement : Xia_query.Ast.statement;
  freq : float;
}

type t = item list

val item : ?freq:float -> string -> Xia_query.Ast.statement -> item

val of_statements : Xia_query.Ast.statement list -> t

(** Load a workload file (['#'] comments, blank lines, ["freq|statement"]
    lines; statements may be mini-XQuery or SQL/XML).
    @raise Invalid_argument on parse errors. *)
val of_file : string -> t

(** Parse one statement per string. @raise Invalid_argument on parse errors. *)
val of_strings : string list -> t

val queries : t -> t
val dml : t -> t
val size : t -> int
val total_frequency : t -> float

(** First [n] items (training prefix). *)
val prefix : int -> t -> t

val labels : t -> string list
val find_opt : t -> string -> item option

val pp_item : Format.formatter -> item -> unit
val pp : Format.formatter -> t -> unit
