lib/workload/workload.ml: Fmt List Printf String Xia_query Xia_storage
