lib/workload/xmark.ml: Array List Printf Random Workload Xia_index Xia_query Xia_storage Xia_xml
