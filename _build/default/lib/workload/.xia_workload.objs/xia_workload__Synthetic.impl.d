lib/workload/synthetic.ml: Array Float List Printf Random String Workload Xia_index Xia_query Xia_storage Xia_xpath
