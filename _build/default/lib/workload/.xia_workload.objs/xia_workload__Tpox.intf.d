lib/workload/tpox.mli: Random Workload Xia_index Xia_xml
