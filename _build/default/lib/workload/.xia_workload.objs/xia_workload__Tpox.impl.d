lib/workload/tpox.ml: Array List Printf Random String Workload Xia_index Xia_query Xia_storage Xia_xml
