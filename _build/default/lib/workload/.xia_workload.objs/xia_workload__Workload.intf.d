lib/workload/workload.mli: Format Xia_query
