lib/workload/synthetic.mli: Random Workload Xia_index Xia_query
