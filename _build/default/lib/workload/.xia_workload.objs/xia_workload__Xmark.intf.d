lib/workload/xmark.mli: Random Workload Xia_index Xia_xml
