(** Parser for workload statements (mini-XQuery FLWOR plus DML). *)

type error = { position : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_statement : string -> (Ast.statement, error) result

(** @raise Invalid_argument on malformed input. *)
val parse_statement_exn : string -> Ast.statement
