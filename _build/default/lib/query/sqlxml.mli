(** SQL/XML front end: a DB2-flavoured subset parsed into the same statement
    AST as the XQuery front end, so the advisor treats both languages
    identically (the paper's dual-language property).

    Supported forms (keywords case-insensitive):
    {v
    SELECT * FROM t WHERE XMLEXISTS('$d/path[pred]' PASSING col AS "d")
    SELECT XMLQUERY('$d/path2') FROM t WHERE XMLEXISTS('$d/path1' ...)
    INSERT INTO t VALUES (XMLPARSE('<doc.../>'))
    DELETE FROM t WHERE XMLEXISTS('$d/path[pred]' ...)
    UPDATE t SET XMLPATH '/a/b' = 'v' WHERE XMLEXISTS('$d/path[pred]' ...)
    v} *)

type error = { position : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_statement : string -> (Ast.statement, error) result

(** @raise Invalid_argument on malformed input. *)
val parse_statement_exn : string -> Ast.statement

(** Parse either language, tagging which grammar matched. *)
val parse_any :
  string -> ([ `Xquery of Ast.statement | `Sqlxml of Ast.statement ], string) result
