(* Workload statement AST: a FLWOR subset plus insert/delete/update.

   This models the XQuery shapes the paper's TPoX workload uses:

     for $sec in SECURITY('SDOC')/Security[Yield>4.5]
     where $sec/SecInfo/*/Sector = "Energy"
     return <Security>{$sec/Name}</Security>

   Variables bind to nodes reached by an absolute path over one table; where
   clauses constrain a variable through a relative path; return clauses
   extract relative paths (possibly wrapped in element constructors, which we
   record for faithful printing but which carry no optimization weight). *)

module Xp = Xia_xpath.Ast

type source = {
  table : string;
  column : string;  (* informational: TPoX's SECURITY('SDOC') argument *)
  path : Xp.path;   (* absolute, may contain predicates *)
}

type where_clause = {
  var : string;
  predicate : Xp.predicate;  (* relative path + optional comparison *)
}

(* One conjunct of the where clause: a disjunction of simple clauses.  The
   common case is a singleton ("$x/a = 1"); multiple entries mean OR
   ("$x/a = 1 or $x/b = 2"), which index plans serve by index ORing. *)
type where_group = where_clause list

type return_item =
  | Ret_var of string                     (* $v *)
  | Ret_path of string * Xp.path          (* $v/rel *)
  | Ret_element of string * return_item list  (* <tag>{...}</tag> *)

type flwor = {
  bindings : (string * source) list;
  where : where_group list;  (* conjunction of disjunctions *)
  return_ : return_item list;
}

type statement =
  | Select of flwor
  | Insert of { table : string; document : Xia_xml.Types.t }
  | Delete of { table : string; selector : Xp.path }
      (* delete every document in which the selector matches *)
  | Update of {
      table : string;
      selector : Xp.path;  (* documents to update *)
      target : Xp.path;    (* nodes to modify within each document *)
      new_value : string;
    }

let is_query = function
  | Select _ -> true
  | Insert _ | Delete _ | Update _ -> false

let is_dml s = not (is_query s)

let statement_table = function
  | Select f -> (
      match f.bindings with
      | (_, src) :: _ -> Some src.table
      | [] -> None)
  | Insert { table; _ } | Delete { table; _ } | Update { table; _ } -> Some table

let rec return_vars = function
  | Ret_var v -> [ v ]
  | Ret_path (v, _) -> [ v ]
  | Ret_element (_, items) -> List.concat_map return_vars items

(* All tables a statement touches. *)
let tables = function
  | Select f -> List.sort_uniq String.compare (List.map (fun (_, s) -> s.table) f.bindings)
  | Insert { table; _ } | Delete { table; _ } | Update { table; _ } -> [ table ]
