lib/query/rewriter.mli: Ast Format Xia_index Xia_xpath
