lib/query/parser.ml: Ast Fmt List Printf String Xia_xml Xia_xpath
