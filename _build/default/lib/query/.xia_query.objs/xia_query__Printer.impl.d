lib/query/printer.ml: Ast Buffer Fmt List Printf Xia_xml Xia_xpath
