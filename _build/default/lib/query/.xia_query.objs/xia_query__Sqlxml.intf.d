lib/query/sqlxml.mli: Ast Format
