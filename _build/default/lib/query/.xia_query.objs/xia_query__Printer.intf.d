lib/query/printer.mli: Ast Format
