lib/query/sqlxml.ml: Ast Buffer Fmt List Parser Printf String Xia_xml Xia_xpath
