lib/query/ast.mli: Xia_xml Xia_xpath
