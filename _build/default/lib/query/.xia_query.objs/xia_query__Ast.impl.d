lib/query/ast.ml: List String Xia_xml Xia_xpath
