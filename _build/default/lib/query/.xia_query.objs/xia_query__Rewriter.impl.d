lib/query/rewriter.ml: Ast Fmt Hashtbl List Printf String Xia_index Xia_xpath
