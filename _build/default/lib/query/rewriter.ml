(* Query rewriting: expose the indexable access patterns of a statement.

   This plays the role of the DB2 rewrite + index-matching machinery the
   paper couples to: predicates buried in binding paths and where clauses are
   composed with their anchoring paths into absolute, predicate-free linear
   patterns, each with the comparison it supports and the SQL type an index
   must have to serve it.  In the running example, Q1's

     for $sec in SECURITY('SDOC')/Security where $sec/Symbol = "BCIIPRC" ...

   exposes the access (/Security/Symbol, =, VARCHAR) — candidate C1, "only
   exposed by query rewrites". *)

module Xp = Xia_xpath.Ast
module Pattern = Xia_xpath.Pattern
module Index_def = Xia_index.Index_def

type condition =
  | Cexists
  | Ccompare of Xp.cmp * Xp.literal

let equal_condition a b =
  match a, b with
  | Cexists, Cexists -> true
  | Ccompare (c, l), Ccompare (c', l') -> c = c' && Xp.equal_literal l l'
  | Cexists, Ccompare _ | Ccompare _, Cexists -> false

let pp_condition ppf = function
  | Cexists -> Fmt.string ppf "[exists]"
  | Ccompare (cmp, lit) ->
      Fmt.pf ppf "%s %s"
        (Xia_xpath.Printer.cmp_to_string cmp)
        (Xia_xpath.Printer.literal_to_string lit)

type access = {
  table : string;
  pattern : Pattern.t;
  condition : condition;
  dtype : Index_def.data_type;
}

let pp_access ppf a =
  Fmt.pf ppf "%s:%a %a (%a)" a.table Pattern.pp a.pattern pp_condition a.condition
    Index_def.pp_data_type a.dtype

let dtype_of_condition = function
  | Cexists -> Index_def.Dstring
  | Ccompare (_, Xp.String_lit _) -> Index_def.Dstring
  | Ccompare (_, Xp.Number_lit _) -> Index_def.Ddouble

let access ~table pattern condition =
  { table; pattern; condition; dtype = dtype_of_condition condition }

(* Collect accesses from the predicates of a path.  [prefix] is the pattern
   of the steps leading to (and including) the step carrying the predicate;
   predicates may nest, so we recurse into their relative paths. *)
let rec accesses_in_path ~table prefix (path : Xp.path) =
  match path with
  | [] -> []
  | step :: rest ->
      let prefix = prefix @ [ { Pattern.axis = step.Xp.axis; test = step.Xp.test } ] in
      let here =
        List.concat_map (accesses_in_predicate ~table prefix) step.Xp.predicates
      in
      here @ accesses_in_path ~table prefix rest

and accesses_in_predicate ~table prefix = function
  | Xp.Exists rel ->
      access ~table (prefix @ Pattern.of_path rel) Cexists
      :: accesses_in_path ~table prefix rel
  | Xp.Compare (rel, cmp, lit) ->
      access ~table (prefix @ Pattern.of_path rel) (Ccompare (cmp, lit))
      :: accesses_in_path ~table prefix rel

(* A filter constrains the binding; it is a disjunction of accesses (a
   singleton for plain predicates, several for "a = 1 or b = 2").  An index
   plan can serve a multi-access filter only by ORing an index per access. *)
type filter = access list

type binding_info = {
  var : string;
  source : Ast.source;
  nav_pattern : Pattern.t;  (* structural skeleton of the binding path *)
  filters : filter list;    (* conjunction of (disjunctions of) accesses *)
}

let clause_access ~table nav (w : Ast.where_clause) =
  match w.predicate with
  | Xp.Exists rel -> access ~table (nav @ Pattern.of_path rel) Cexists
  | Xp.Compare (rel, cmp, lit) ->
      access ~table (nav @ Pattern.of_path rel) (Ccompare (cmp, lit))

let clause_nested ~table nav (w : Ast.where_clause) =
  match w.predicate with
  | Xp.Exists rel | Xp.Compare (rel, _, _) -> accesses_in_path ~table nav rel

let binding_filters (var, (src : Ast.source)) (where : Ast.where_group list) =
  let nav = Pattern.of_path src.path in
  let table = src.table in
  let from_path =
    List.map (fun a -> [ a ]) (accesses_in_path ~table [] src.path)
  in
  let from_where =
    List.concat_map
      (fun (group : Ast.where_group) ->
        match group with
        | [] -> []
        | first :: _ when not (String.equal first.Ast.var var) -> []
        | [ w ] ->
            (* singleton: the access plus its nested predicate accesses, each
               its own conjunctive filter *)
            [ clause_access ~table nav w ]
            :: List.map (fun a -> [ a ]) (clause_nested ~table nav w)
        | disjuncts ->
            (* OR group: one filter with an access per branch; nested
               predicate accesses of a branch are dropped (they only hold on
               that branch, so they cannot be conjunctive filters) *)
            [ List.map (clause_access ~table nav) disjuncts ])
      where
  in
  { var; source = src; nav_pattern = nav; filters = from_path @ from_where }

let selector_binding ~table selector =
  let src = { Ast.table; column = "XMLDOC"; path = selector } in
  binding_filters ("__selector", src) []

let bindings_of_statement = function
  | Ast.Select f -> List.map (fun b -> binding_filters b f.where) f.bindings
  | Ast.Insert _ -> []
  | Ast.Delete { table; selector } -> [ selector_binding ~table selector ]
  | Ast.Update { table; selector; _ } -> [ selector_binding ~table selector ]

let dedup_accesses accesses =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun a ->
      let key =
        Fmt.str "%s|%s|%a|%s" a.table (Pattern.key a.pattern) pp_condition a.condition
          (Index_def.data_type_to_string a.dtype)
      in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.add seen key ();
        true
      end)
    accesses

let indexable_accesses stmt =
  dedup_accesses
    (List.concat_map
       (fun b -> List.concat b.filters)
       (bindings_of_statement stmt))

(* The index patterns (with types) a statement exposes: the paper's per-query
   candidate index patterns, before generalization. *)
let indexable_patterns stmt =
  let seen = Hashtbl.create 16 in
  List.filter_map
    (fun a ->
      let key =
        Printf.sprintf "%s|%s|%s" a.table (Pattern.key a.pattern)
          (Index_def.data_type_to_string a.dtype)
      in
      if Hashtbl.mem seen key then None
      else begin
        Hashtbl.add seen key ();
        Some (a.table, a.pattern, a.dtype)
      end)
    (indexable_accesses stmt)
