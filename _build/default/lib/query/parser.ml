(* Parser for workload statements.

   Accepted forms (case-sensitive keywords, whitespace-insensitive):

     for $v in TABLE('COL')/path [, $w in ...]
       [where $v/rel CMP literal [and ...]]
       return ITEM [, ITEM]

     insert into TABLE <xml .../>
     delete from TABLE where /absolute/path[pred]
     update TABLE set /absolute/path = "value" where /absolute/path[pred]

   ITEM ::= $v | $v/rel | <tag>{ ITEM [, ITEM] }</tag> *)

module Xp_parser = Xia_xpath.Parser

type error = { position : int; message : string }

let pp_error ppf e = Fmt.pf ppf "query parse error at offset %d: %s" e.position e.message

exception Fail of error

type state = {
  input : string;
  mutable pos : int;
}

let fail st message = raise (Fail { position = st.pos; message })

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (match peek st with Some c when is_space c -> true | _ -> false) do
    advance st
  done

let looking_at st s =
  let n = String.length s in
  st.pos + n <= String.length st.input && String.sub st.input st.pos n = s

let is_word_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
  | _ -> false

(* Keyword match: the keyword must not be followed by a word character. *)
let keyword st kw =
  skip_space st;
  let n = String.length kw in
  if
    looking_at st kw
    && (st.pos + n >= String.length st.input || not (is_word_char st.input.[st.pos + n]))
  then begin
    st.pos <- st.pos + n;
    true
  end
  else false

let expect_keyword st kw =
  if not (keyword st kw) then fail st (Printf.sprintf "expected keyword %S" kw)

let parse_word st =
  skip_space st;
  let start = st.pos in
  while (match peek st with Some c when is_word_char c -> true | _ -> false) do
    advance st
  done;
  if st.pos = start then fail st "expected an identifier";
  String.sub st.input start (st.pos - start)

let parse_var st =
  skip_space st;
  (match peek st with
  | Some '$' -> advance st
  | _ -> fail st "expected a variable ($name)");
  parse_word st

let embed_xpath st result =
  match result with
  | Ok (path, pos) ->
      st.pos <- pos;
      path
  | Error (e : Xp_parser.error) ->
      raise (Fail { position = e.position; message = "in path: " ^ e.message })

let parse_absolute_path st =
  skip_space st;
  embed_xpath st (Xp_parser.parse_prefix st.input ~pos:st.pos)

let parse_relative_path st =
  embed_xpath st (Xp_parser.parse_relative_prefix st.input ~pos:st.pos)

let parse_quoted st =
  skip_space st;
  match peek st with
  | Some (('"' | '\'') as q) ->
      advance st;
      let start = st.pos in
      while (match peek st with Some c when c <> q -> true | _ -> false) do
        advance st
      done;
      (match peek st with
      | Some c when c = q ->
          let s = String.sub st.input start (st.pos - start) in
          advance st;
          s
      | _ -> fail st "unterminated string literal")
  | _ -> fail st "expected a quoted string"

let parse_source st =
  let table = parse_word st in
  skip_space st;
  let column =
    if peek st = Some '(' then begin
      advance st;
      let c = parse_quoted st in
      skip_space st;
      (match peek st with
      | Some ')' -> advance st
      | _ -> fail st "expected ')'");
      c
    end
    else "XMLDOC"
  in
  let path = parse_absolute_path st in
  { Ast.table; column; path }

let parse_cmp st =
  skip_space st;
  match peek st with
  | Some '=' -> advance st; Some Xia_xpath.Ast.Eq
  | Some '!' ->
      advance st;
      if peek st = Some '=' then (advance st; Some Xia_xpath.Ast.Ne)
      else fail st "expected '!='"
  | Some '<' ->
      advance st;
      if peek st = Some '=' then (advance st; Some Xia_xpath.Ast.Le)
      else Some Xia_xpath.Ast.Lt
  | Some '>' ->
      advance st;
      if peek st = Some '=' then (advance st; Some Xia_xpath.Ast.Ge)
      else Some Xia_xpath.Ast.Gt
  | _ -> None

let parse_literal st =
  skip_space st;
  match peek st with
  | Some ('"' | '\'') -> Xia_xpath.Ast.String_lit (parse_quoted st)
  | Some ('0' .. '9' | '-') ->
      let start = st.pos in
      if peek st = Some '-' then advance st;
      while
        (match peek st with Some ('0' .. '9' | '.') -> true | _ -> false)
      do
        advance st
      done;
      (match float_of_string_opt (String.sub st.input start (st.pos - start)) with
      | Some f -> Xia_xpath.Ast.Number_lit f
      | None -> fail st "invalid number")
  | _ -> fail st "expected a literal"

let parse_where_clause st =
  let var = parse_var st in
  skip_space st;
  let rel = if peek st = Some '/' then (advance st; parse_relative_path st) else [] in
  match parse_cmp st with
  | None ->
      if rel = [] then fail st "a bare $var cannot be a where clause";
      { Ast.var; predicate = Xia_xpath.Ast.Exists rel }
  | Some cmp ->
      let lit = parse_literal st in
      { Ast.var; predicate = Xia_xpath.Ast.Compare (rel, cmp, lit) }

let rec parse_return_item st =
  skip_space st;
  match peek st with
  | Some '$' ->
      let var = parse_var st in
      if peek st = Some '/' then begin
        advance st;
        let rel = parse_relative_path st in
        Ast.Ret_path (var, rel)
      end
      else Ast.Ret_var var
  | Some '<' ->
      advance st;
      let tag = parse_word st in
      skip_space st;
      (match peek st with
      | Some '>' -> advance st
      | _ -> fail st "expected '>'");
      skip_space st;
      (match peek st with
      | Some '{' -> advance st
      | _ -> fail st "expected '{'");
      let items = parse_return_items st in
      skip_space st;
      (match peek st with
      | Some '}' -> advance st
      | _ -> fail st "expected '}'");
      skip_space st;
      if not (looking_at st ("</" ^ tag ^ ">")) then
        fail st (Printf.sprintf "expected closing </%s>" tag);
      st.pos <- st.pos + String.length tag + 3;
      Ast.Ret_element (tag, items)
  | _ -> fail st "expected a return item ($var, $var/path or an element constructor)"

and parse_return_items st =
  let first = parse_return_item st in
  let rec more acc =
    skip_space st;
    if peek st = Some ',' then begin
      advance st;
      more (parse_return_item st :: acc)
    end
    else List.rev acc
  in
  more [ first ]

let parse_flwor st =
  let rec parse_bindings acc =
    let var = parse_var st in
    expect_keyword st "in";
    let src = parse_source st in
    skip_space st;
    if peek st = Some ',' then begin
      advance st;
      skip_space st;
      parse_bindings ((var, src) :: acc)
    end
    else List.rev ((var, src) :: acc)
  in
  let bindings = parse_bindings [] in
  let where =
    (* conjunction of disjunctions: OR binds tighter than AND *)
    if keyword st "where" then begin
      let rec disjuncts acc =
        let c = parse_where_clause st in
        (match acc with
        | first :: _ when not (String.equal first.Ast.var c.Ast.var) ->
            fail st "all branches of an 'or' must constrain the same variable"
        | _ -> ());
        if keyword st "or" then disjuncts (c :: acc) else List.rev (c :: acc)
      in
      let rec groups acc =
        let g = disjuncts [] in
        if keyword st "and" then groups (g :: acc) else List.rev (g :: acc)
      in
      groups []
    end
    else []
  in
  expect_keyword st "return";
  let return_ = parse_return_items st in
  { Ast.bindings; where; return_ }

let finish st result =
  skip_space st;
  (* Allow a trailing semicolon. *)
  if peek st = Some ';' then advance st;
  skip_space st;
  if st.pos <> String.length st.input then
    Error { position = st.pos; message = "trailing characters" }
  else Ok result

let parse_statement_state st =
  skip_space st;
  if keyword st "for" then Ast.Select (parse_flwor st)
  else if keyword st "insert" then begin
    expect_keyword st "into";
    let table = parse_word st in
    skip_space st;
    let rest = String.sub st.input st.pos (String.length st.input - st.pos) in
    let rest =
      (* Strip a trailing semicolon from the XML payload. *)
      let r = String.trim rest in
      if String.length r > 0 && r.[String.length r - 1] = ';' then
        String.sub r 0 (String.length r - 1)
      else r
    in
    match Xia_xml.Parser.parse rest with
    | Ok document ->
        st.pos <- String.length st.input;
        Ast.Insert { table; document }
    | Error e ->
        raise (Fail { position = st.pos + e.position; message = "in XML: " ^ e.message })
  end
  else if keyword st "delete" then begin
    expect_keyword st "from";
    let table = parse_word st in
    expect_keyword st "where";
    let selector = parse_absolute_path st in
    Ast.Delete { table; selector }
  end
  else if keyword st "update" then begin
    let table = parse_word st in
    expect_keyword st "set";
    let target = parse_absolute_path st in
    skip_space st;
    (match peek st with
    | Some '=' -> advance st
    | _ -> fail st "expected '='");
    let new_value = parse_quoted st in
    expect_keyword st "where";
    let selector = parse_absolute_path st in
    Ast.Update { table; selector; target; new_value }
  end
  else fail st "expected 'for', 'insert', 'delete' or 'update'"

let parse_statement input =
  let st = { input; pos = 0 } in
  try
    let s = parse_statement_state st in
    finish st s
  with Fail e -> Error e

let parse_statement_exn input =
  match parse_statement input with
  | Ok s -> s
  | Error e -> invalid_arg (Fmt.str "%S: %a" input pp_error e)
