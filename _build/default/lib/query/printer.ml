(* Concrete syntax for workload statements; inverse of Parser. *)

module Xpp = Xia_xpath.Printer

let rec add_return buf = function
  | Ast.Ret_var v -> Buffer.add_string buf ("$" ^ v)
  | Ast.Ret_path (v, rel) ->
      Buffer.add_string buf ("$" ^ v ^ "/");
      Buffer.add_string buf (Xpp.relative_to_string rel)
  | Ast.Ret_element (tag, items) ->
      Buffer.add_string buf ("<" ^ tag ^ ">{");
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_string buf ", ";
          add_return buf item)
        items;
      Buffer.add_string buf ("}</" ^ tag ^ ">")

let add_where buf (w : Ast.where_clause) =
  Buffer.add_string buf ("$" ^ w.var);
  match w.predicate with
  | Xia_xpath.Ast.Exists rel ->
      Buffer.add_char buf '/';
      Buffer.add_string buf (Xpp.relative_to_string rel)
  | Xia_xpath.Ast.Compare (rel, cmp, lit) ->
      if rel <> [] then begin
        Buffer.add_char buf '/';
        Buffer.add_string buf (Xpp.relative_to_string rel)
      end;
      Buffer.add_string buf (" " ^ Xpp.cmp_to_string cmp ^ " ");
      Buffer.add_string buf (Xpp.literal_to_string lit)

let flwor_to_string (f : Ast.flwor) =
  let buf = Buffer.create 128 in
  List.iteri
    (fun i (v, (src : Ast.source)) ->
      Buffer.add_string buf (if i = 0 then "for " else ", ");
      Buffer.add_string buf
        (Printf.sprintf "$%s in %s('%s')%s" v src.table src.column
           (Xpp.path_to_string src.path)))
    f.bindings;
  if f.where <> [] then begin
    Buffer.add_string buf " where ";
    List.iteri
      (fun i group ->
        if i > 0 then Buffer.add_string buf " and ";
        List.iteri
          (fun j w ->
            if j > 0 then Buffer.add_string buf " or ";
            add_where buf w)
          group)
      f.where
  end;
  Buffer.add_string buf " return ";
  List.iteri
    (fun i item ->
      if i > 0 then Buffer.add_string buf ", ";
      add_return buf item)
    f.return_;
  Buffer.contents buf

let statement_to_string = function
  | Ast.Select f -> flwor_to_string f
  | Ast.Insert { table; document } ->
      Printf.sprintf "insert into %s %s" table (Xia_xml.Printer.to_string document)
  | Ast.Delete { table; selector } ->
      Printf.sprintf "delete from %s where %s" table (Xpp.path_to_string selector)
  | Ast.Update { table; selector; target; new_value } ->
      Printf.sprintf "update %s set %s = %S where %s" table
        (Xpp.path_to_string target) new_value
        (Xpp.path_to_string selector)

let pp ppf s = Fmt.string ppf (statement_to_string s)
