(** Query rewriting: expose the indexable access patterns of a statement —
    the role the paper delegates to DB2's rewrite and index-matching steps. *)

module Xp = Xia_xpath.Ast
module Pattern = Xia_xpath.Pattern
module Index_def = Xia_index.Index_def

type condition =
  | Cexists
  | Ccompare of Xp.cmp * Xp.literal

val equal_condition : condition -> condition -> bool
val pp_condition : Format.formatter -> condition -> unit

(** One indexable access: an absolute predicate-free pattern plus the
    condition it must satisfy and the index type able to serve it. *)
type access = {
  table : string;
  pattern : Pattern.t;
  condition : condition;
  dtype : Index_def.data_type;
}

val pp_access : Format.formatter -> access -> unit

val dtype_of_condition : condition -> Index_def.data_type

(** A disjunction of accesses; a singleton for plain predicates.  Index
    plans serve multi-access filters by index ORing. *)
type filter = access list

type binding_info = {
  var : string;
  source : Ast.source;
  nav_pattern : Pattern.t;  (** structural skeleton of the binding path *)
  filters : filter list;    (** conjunction of (disjunctions of) accesses *)
}

(** Per-binding navigation pattern and filters.  Delete/update selectors are
    treated as a binding (their document search is index-eligible); inserts
    expose nothing. *)
val bindings_of_statement : Ast.statement -> binding_info list

(** All filters of a statement, deduplicated. *)
val indexable_accesses : Ast.statement -> access list

(** Distinct (table, pattern, type) triples the statement exposes: the
    statement's candidate index patterns before generalization. *)
val indexable_patterns :
  Ast.statement -> (string * Pattern.t * Index_def.data_type) list
