(** Workload statement AST: a FLWOR subset plus insert / delete / update. *)

module Xp = Xia_xpath.Ast

type source = {
  table : string;
  column : string;  (** informational column tag, e.g. TPoX's ['SDOC'] *)
  path : Xp.path;   (** absolute binding path, may contain predicates *)
}

type where_clause = {
  var : string;
  predicate : Xp.predicate;
}

(** One conjunct: a disjunction of simple clauses (singleton = plain
    predicate). *)
type where_group = where_clause list

type return_item =
  | Ret_var of string
  | Ret_path of string * Xp.path
  | Ret_element of string * return_item list

type flwor = {
  bindings : (string * source) list;
  where : where_group list;  (** conjunction of disjunctions *)
  return_ : return_item list;
}

type statement =
  | Select of flwor
  | Insert of { table : string; document : Xia_xml.Types.t }
  | Delete of { table : string; selector : Xp.path }
  | Update of {
      table : string;
      selector : Xp.path;
      target : Xp.path;
      new_value : string;
    }

val is_query : statement -> bool
val is_dml : statement -> bool

(** Primary table of the statement (first binding for queries). *)
val statement_table : statement -> string option

val return_vars : return_item -> string list
val tables : statement -> string list
