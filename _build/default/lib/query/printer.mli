(** Concrete syntax for workload statements; inverse of {!Parser}. *)

val flwor_to_string : Ast.flwor -> string
val statement_to_string : Ast.statement -> string
val pp : Format.formatter -> Ast.statement -> unit
