(* SQL/XML front end.

   The paper stresses that the advisor supports "both XQuery and SQL/XML
   simply by virtue of the fact that the DB2 query optimizer supports both of
   these languages" — the advisor works on whatever the optimizer can parse
   and match.  This module gives the reproduction the same property: a
   DB2-flavoured SQL/XML subset is parsed into the same statement AST the
   XQuery front end produces, so enumeration, costing and search are
   identical for both languages.

   Supported subset (keywords case-insensitive):

     SELECT * FROM t WHERE XMLEXISTS('$d/path[pred]' [PASSING col AS "d"])
     SELECT XMLQUERY('$d/path2') FROM t WHERE XMLEXISTS('$d/path1' ...)
     INSERT INTO t VALUES (XMLPARSE('<doc.../>'))
     INSERT INTO t VALUES ('<doc.../>')
     DELETE FROM t WHERE XMLEXISTS('$d/path[pred]' ...)
     UPDATE t SET XMLPATH '/a/b' = 'v' WHERE XMLEXISTS('$d/path[pred]' ...)

   The XMLEXISTS argument is an absolute path over the document; the binding
   variable prefix ("$d/") is optional.  The PASSING clause is accepted and
   recorded as the column name. *)

type error = { position : int; message : string }

let pp_error ppf e = Fmt.pf ppf "SQL/XML parse error at offset %d: %s" e.position e.message

exception Fail of error

type state = {
  input : string;
  mutable pos : int;
}

let fail st message = raise (Fail { position = st.pos; message })

let peek st = if st.pos < String.length st.input then Some st.input.[st.pos] else None
let advance st = st.pos <- st.pos + 1

let is_space = function ' ' | '\t' | '\n' | '\r' -> true | _ -> false

let skip_space st =
  while (match peek st with Some c when is_space c -> true | _ -> false) do
    advance st
  done

let is_word_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true
  | _ -> false

(* Case-insensitive keyword. *)
let keyword st kw =
  skip_space st;
  let n = String.length kw in
  if
    st.pos + n <= String.length st.input
    && String.uppercase_ascii (String.sub st.input st.pos n) = String.uppercase_ascii kw
    && (st.pos + n >= String.length st.input || not (is_word_char st.input.[st.pos + n]))
  then begin
    st.pos <- st.pos + n;
    true
  end
  else false

let expect_keyword st kw =
  if not (keyword st kw) then fail st (Printf.sprintf "expected %s" (String.uppercase_ascii kw))

let parse_word st =
  skip_space st;
  let start = st.pos in
  while (match peek st with Some c when is_word_char c -> true | _ -> false) do
    advance st
  done;
  if st.pos = start then fail st "expected an identifier";
  String.sub st.input start (st.pos - start)

let expect_char st c =
  skip_space st;
  match peek st with
  | Some x when x = c -> advance st
  | _ -> fail st (Printf.sprintf "expected '%c'" c)

(* SQL single-quoted string with '' escaping. *)
let parse_sql_string st =
  skip_space st;
  (match peek st with
  | Some '\'' -> advance st
  | _ -> fail st "expected a string literal");
  let buf = Buffer.create 32 in
  let rec loop () =
    match peek st with
    | None -> fail st "unterminated string literal"
    | Some '\'' ->
        advance st;
        if peek st = Some '\'' then begin
          Buffer.add_char buf '\'';
          advance st;
          loop ()
        end
    | Some c ->
        Buffer.add_char buf c;
        advance st;
        loop ()
  in
  loop ();
  Buffer.contents buf

(* Strip an optional leading "$var/" from an XMLEXISTS/XMLQUERY argument. *)
let strip_binding_var s =
  let s = String.trim s in
  if String.length s > 1 && s.[0] = '$' then
    match String.index_opt s '/' with
    | Some i -> String.sub s i (String.length s - i)
    | None -> s
  else s

let parse_inner_path st raw =
  match Xia_xpath.Parser.parse (strip_binding_var raw) with
  | Ok p -> p
  | Error (e : Xia_xpath.Parser.error) ->
      raise (Fail { position = st.pos; message = "in XMLEXISTS path: " ^ e.message })

(* XMLEXISTS('path' [PASSING col AS "d"]); returns (path, column). *)
let parse_xmlexists st =
  expect_keyword st "XMLEXISTS";
  expect_char st '(';
  let raw = parse_sql_string st in
  let path = parse_inner_path st raw in
  let column =
    if keyword st "PASSING" then begin
      let col = parse_word st in
      if keyword st "AS" then begin
        skip_space st;
        (match peek st with
        | Some '"' -> (
            advance st;
            let _var = parse_word st in
            match peek st with
            | Some '"' -> advance st
            | _ -> fail st "expected closing '\"'")
        | _ -> ignore (parse_word st))
      end;
      col
    end
    else "XMLDOC"
  in
  expect_char st ')';
  (path, column)

let finish st stmt =
  skip_space st;
  if peek st = Some ';' then advance st;
  skip_space st;
  if st.pos <> String.length st.input then
    Error { position = st.pos; message = "trailing characters" }
  else Ok stmt

(* Derive the relative return path of XMLQUERY('$d/p2') against the
   XMLEXISTS binding path: if p2 extends the binding's first step, the rest
   becomes a relative return path. *)
let return_of_xmlquery binding_path q_path =
  match binding_path, q_path with
  | b0 :: _, q0 :: (_ :: _ as rest)
    when Xia_xpath.Ast.equal_node_test b0.Xia_xpath.Ast.test q0.Xia_xpath.Ast.test ->
      Ast.Ret_path ("d", rest)
  | _ -> Ast.Ret_var "d"

let parse_statement_state st =
  skip_space st;
  if keyword st "SELECT" then begin
    let xmlquery_raw =
      if keyword st "XMLQUERY" then begin
        expect_char st '(';
        let raw = parse_sql_string st in
        (* tolerate a PASSING clause inside XMLQUERY too *)
        if keyword st "PASSING" then begin
          ignore (parse_word st);
          if keyword st "AS" then begin
            skip_space st;
            match peek st with
            | Some '"' ->
                advance st;
                ignore (parse_word st);
                expect_char st '"'
            | _ -> ignore (parse_word st)
          end
        end;
        expect_char st ')';
        Some raw
      end
      else begin
        skip_space st;
        (match peek st with
        | Some '*' -> advance st
        | _ -> fail st "expected '*' or XMLQUERY(...)");
        None
      end
    in
    expect_keyword st "FROM";
    let table = parse_word st in
    expect_keyword st "WHERE";
    let path, column = parse_xmlexists st in
    let return_ =
      match xmlquery_raw with
      | None -> [ Ast.Ret_var "d" ]
      | Some raw -> [ return_of_xmlquery path (parse_inner_path st raw) ]
    in
    Ast.Select
      {
        bindings = [ ("d", { Ast.table; column; path }) ];
        where = [];
        return_;
      }
  end
  else if keyword st "INSERT" then begin
    expect_keyword st "INTO";
    let table = parse_word st in
    expect_keyword st "VALUES";
    expect_char st '(';
    let xml_text =
      if keyword st "XMLPARSE" then begin
        expect_char st '(';
        let s = parse_sql_string st in
        expect_char st ')';
        s
      end
      else parse_sql_string st
    in
    expect_char st ')';
    match Xia_xml.Parser.parse xml_text with
    | Ok document -> Ast.Insert { table; document }
    | Error e ->
        raise (Fail { position = st.pos; message = "in XML value: " ^ e.message })
  end
  else if keyword st "DELETE" then begin
    expect_keyword st "FROM";
    let table = parse_word st in
    expect_keyword st "WHERE";
    let selector, _ = parse_xmlexists st in
    Ast.Delete { table; selector }
  end
  else if keyword st "UPDATE" then begin
    let table = parse_word st in
    expect_keyword st "SET";
    expect_keyword st "XMLPATH";
    let target_raw = parse_sql_string st in
    let target = parse_inner_path st target_raw in
    expect_char st '=';
    let new_value = parse_sql_string st in
    expect_keyword st "WHERE";
    let selector, _ = parse_xmlexists st in
    Ast.Update { table; selector; target; new_value }
  end
  else fail st "expected SELECT, INSERT, DELETE or UPDATE"

let parse_statement input =
  let st = { input; pos = 0 } in
  try finish st (parse_statement_state st) with Fail e -> Error e

let parse_statement_exn input =
  match parse_statement input with
  | Ok s -> s
  | Error e -> invalid_arg (Fmt.str "%S: %a" input pp_error e)

(* Parse either language: SQL/XML when the statement starts with a SQL verb,
   mini-XQuery otherwise. *)
let parse_any input =
  let trimmed = String.trim input in
  let starts_with_sql =
    List.exists
      (fun kw ->
        String.length trimmed >= String.length kw
        && String.uppercase_ascii (String.sub trimmed 0 (String.length kw)) = kw)
      [ "SELECT"; "DELETE FROM"; "UPDATE "; "INSERT INTO" ]
  in
  (* "insert into"/"delete from"/"update" exist in both grammars; the XQuery
     front end is tried first for them, the SQL/XML one on failure. *)
  if starts_with_sql then
    match Parser.parse_statement input with
    | Ok s -> Ok (`Xquery s)
    | Error _ -> (
        match parse_statement input with
        | Ok s -> Ok (`Sqlxml s)
        | Error e -> Error (Fmt.str "%a" pp_error e))
  else
    match Parser.parse_statement input with
    | Ok s -> Ok (`Xquery s)
    | Error e -> Error (Fmt.str "%a" Parser.pp_error e)
