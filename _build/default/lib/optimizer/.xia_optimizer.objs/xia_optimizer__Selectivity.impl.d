lib/optimizer/selectivity.ml: Float List Xia_index Xia_query Xia_storage Xia_xpath
