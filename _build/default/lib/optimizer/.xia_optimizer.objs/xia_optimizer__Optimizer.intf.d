lib/optimizer/optimizer.mli: Plan Xia_index Xia_query Xia_xpath
