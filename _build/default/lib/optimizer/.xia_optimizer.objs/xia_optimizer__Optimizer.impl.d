lib/optimizer/optimizer.ml: Float Hashtbl List Option Plan Printf Selectivity String Xia_index Xia_query Xia_storage Xia_xml Xia_xpath
