lib/optimizer/plan.ml: Fmt Hashtbl List Xia_index Xia_query Xia_xpath
