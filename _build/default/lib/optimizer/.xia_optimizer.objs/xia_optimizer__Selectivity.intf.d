lib/optimizer/selectivity.mli: Xia_index Xia_query Xia_storage Xia_xpath
