lib/optimizer/executor.mli: Plan Xia_index Xia_query Xia_xml Xia_xpath
