lib/optimizer/plan.mli: Format Xia_index Xia_query
