lib/optimizer/executor.ml: Float Hashtbl List Optimizer Plan String Sys Xia_index Xia_query Xia_storage Xia_xml Xia_xpath
