(* Physical plans.

   Per query binding, the optimizer chooses among scanning the whole table,
   a single index scan serving one filter, or ANDing several index scans;
   residual filters are always verified on the fetched documents. *)

module Index_def = Xia_index.Index_def
module Index_stats = Xia_index.Index_stats

type index_choice = {
  def : Index_def.t;
  stats : Index_stats.t;
  access : Xia_query.Rewriter.access;  (* the filter this index serves *)
  is_virtual : bool;
}

type binding_plan =
  | Doc_scan
  | Index_scan of index_choice
  | Index_and of index_choice list  (* at least two, intersecting *)
  | Index_or of index_choice list   (* one per disjunct of an OR filter *)

type planned_binding = {
  info : Xia_query.Rewriter.binding_info;
  plan : binding_plan;
  est_cost : float;
  est_docs : float;  (* documents expected to satisfy every filter *)
}

type t = {
  statement : Xia_query.Ast.statement;
  bindings : planned_binding list;
  total_cost : float;
  affected_docs : float;  (* DML only: documents the statement modifies *)
}

let indexes_used plan =
  let of_binding b =
    match b.plan with
    | Doc_scan -> []
    | Index_scan c -> [ c.def ]
    | Index_and cs | Index_or cs -> List.map (fun c -> c.def) cs
  in
  let all = List.concat_map of_binding plan.bindings in
  let seen = Hashtbl.create 8 in
  List.filter
    (fun (d : Index_def.t) ->
      let k = Index_def.logical_key d in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.add seen k ();
        true
      end)
    all

let uses_index plan def =
  List.exists (fun d -> Index_def.same d def) (indexes_used plan)

let pp_binding_plan ppf = function
  | Doc_scan -> Fmt.string ppf "DOCSCAN"
  | Index_scan c ->
      Fmt.pf ppf "IXSCAN(%s%s on %a)" c.def.Index_def.name
        (if c.is_virtual then "*" else "")
        Xia_xpath.Pattern.pp c.def.Index_def.pattern
  | Index_and cs ->
      Fmt.pf ppf "IXAND(%a)"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf c ->
             Fmt.pf ppf "%s%s" c.def.Index_def.name (if c.is_virtual then "*" else "")))
        cs
  | Index_or cs ->
      Fmt.pf ppf "IXOR(%a)"
        (Fmt.list ~sep:(Fmt.any ", ") (fun ppf c ->
             Fmt.pf ppf "%s%s" c.def.Index_def.name (if c.is_virtual then "*" else "")))
        cs

let pp ppf plan =
  Fmt.pf ppf "cost=%.1f" plan.total_cost;
  List.iter
    (fun b ->
      Fmt.pf ppf "@ [$%s: %a, est_docs=%.1f, cost=%.1f]" b.info.Xia_query.Rewriter.var
        pp_binding_plan b.plan b.est_docs b.est_cost)
    plan.bindings
