(** Physical plans chosen by the optimizer. *)

module Index_def = Xia_index.Index_def
module Index_stats = Xia_index.Index_stats

type index_choice = {
  def : Index_def.t;
  stats : Index_stats.t;
  access : Xia_query.Rewriter.access;
  is_virtual : bool;
}

type binding_plan =
  | Doc_scan
  | Index_scan of index_choice
  | Index_and of index_choice list
  | Index_or of index_choice list

type planned_binding = {
  info : Xia_query.Rewriter.binding_info;
  plan : binding_plan;
  est_cost : float;
  est_docs : float;
}

type t = {
  statement : Xia_query.Ast.statement;
  bindings : planned_binding list;
  total_cost : float;
  affected_docs : float;
}

(** Distinct indexes appearing in the plan. *)
val indexes_used : t -> Index_def.t list

val uses_index : t -> Index_def.t -> bool

val pp_binding_plan : Format.formatter -> binding_plan -> unit
val pp : Format.formatter -> t -> unit
