(* Recommendation-quality evaluation harness (lib/eval) tests.

   - Oracle soundness: the exhaustive optimum dominates every search
     algorithm's outcome EXACTLY (same evaluator, same feasibility, shared
     sub-configuration cache — no epsilon), across synthetic instances,
     budgets and domain counts; and whenever the useful pool has no index
     interaction, dynamic programming matches the optimum under its own
     rounded-unit feasibility (modulo float-summation order).
   - Committed cases: every algorithm's regret on the default eval specs is
     in (0, 1], the heuristic search stays at >= 0.9, and the oracle rows
     are exactly optimal.
   - Perturbation: a broken search-phase cost model collapses regret while
     ground truth stands still — the quality ratchet's failure mode.
   - Spearman: tie-corrected rank correlation unit cases. *)

module A = Xia_advisor.Advisor
module B = Xia_advisor.Benefit
module C = Xia_advisor.Candidate
module S = Xia_advisor.Search
module En = Xia_advisor.Enumeration
module Cat = Xia_index.Catalog
module W = Xia_workload.Workload
module Synthetic = Xia_workload.Synthetic
module Eval = Xia_eval.Eval
module Ex = Xia_eval.Exhaustive
module Opt = Xia_optimizer.Optimizer

let tc name f = Alcotest.test_case name `Quick f

(* ---------- spearman ----------------------------------------------------- *)

let close a b = Float.abs (a -. b) < 1e-9

let spearman_tests =
  [
    tc "perfect monotone = 1" (fun () ->
        Alcotest.(check bool) "rho" true
          (close 1.0 (Eval.spearman [| 1.; 2.; 3.; 4. |] [| 10.; 20.; 30.; 40. |])));
    tc "reversed = -1" (fun () ->
        Alcotest.(check bool) "rho" true
          (close (-1.0) (Eval.spearman [| 1.; 2.; 3. |] [| 9.; 5.; 1. |])));
    tc "ties share average ranks" (fun () ->
        (* xs has a tie on the middle pair; ys orders them apart: rho must be
           strictly between 0 and 1 and symmetric in the tied pair. *)
        let rho = Eval.spearman [| 1.; 2.; 2.; 4. |] [| 1.; 2.; 3.; 4. |] in
        let rho' = Eval.spearman [| 1.; 2.; 2.; 4. |] [| 1.; 3.; 2.; 4. |] in
        Alcotest.(check bool) "0 < rho < 1" true (rho > 0.0 && rho < 1.0);
        Alcotest.(check bool) "tie-symmetric" true (close rho rho'));
    tc "degenerate inputs = 0" (fun () ->
        Alcotest.(check bool) "constant" true
          (close 0.0 (Eval.spearman [| 3.; 3.; 3. |] [| 1.; 2.; 3. |]));
        Alcotest.(check bool) "short" true
          (close 0.0 (Eval.spearman [| 1. |] [| 2. |])));
  ]

(* ---------- exhaustive oracle -------------------------------------------- *)

let exhaustive_unit_tests =
  [
    tc "zero budget admits exactly the empty configuration" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let wl = W.prefix 3 (Xia_workload.Tpox.workload ()) in
        let set = En.candidates catalog wl in
        let ev = B.create ~domains:1 catalog wl in
        let r = Ex.search ev set ~budget:0 in
        Alcotest.(check int) "config" 0 (List.length r.Ex.config);
        Alcotest.(check int) "feasible" 1 r.Ex.feasible;
        Alcotest.(check bool) "benefit" true (Float.equal 0.0 r.Ex.benefit);
        Alcotest.(check int) "rank of 0" 1 (Ex.rank r 0.0));
    tc "pool-limit guard refuses large instances" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let wl = W.prefix 4 (Xia_workload.Tpox.workload ()) in
        let set = En.candidates catalog wl in
        let ev = B.create ~domains:1 catalog wl in
        let budget = 1024 * 1024 in
        let fitting =
          List.length
            (List.filter
               (fun c -> B.candidate_size ev c <= budget)
               (C.to_list set))
        in
        Alcotest.check_raises "limit 0"
          (Invalid_argument
             (Printf.sprintf
                "Exhaustive.search: %d candidates exceed the small-instance \
                 limit 0"
                fitting))
          (fun () -> ignore (Ex.search ~limit:0 ev set ~budget)));
  ]

(* One synthetic instance: tiny TPoX catalog, [n] random queries, a budget
   fraction of the All-Index size.  Returns everything the properties need. *)
let build_instance ~seed ~n ~frac ~domains =
  let catalog = Lazy.force Helpers.shared_catalog in
  let wl =
    Synthetic.workload ~seed catalog (Cat.table_names catalog) n
  in
  let set = En.candidates catalog wl in
  let ev = B.create ~domains catalog wl in
  let all = B.config_size ev (C.basics set) in
  let budget = int_of_float (frac *. float_of_int all) in
  (catalog, wl, set, ev, budget)

(* Canonical order before scoring: [B.benefit] sums interaction-group
   deltas in first-member order, so comparing an algorithm's config against
   the oracle's enumeration of the same SET is only exact (bit-for-bit)
   when both are evaluated in one order. *)
let truth_of ev (o : S.outcome) = B.benefit ev (Ex.canonical o.S.config)

(* The five algorithms under their eval keys. *)
let algorithms =
  [
    ("greedy", fun ev set ~budget -> S.greedy ev set ~budget);
    ("heuristics", fun ev set ~budget -> S.greedy_heuristics ev set ~budget);
    ("tdlite", fun ev set ~budget -> S.top_down_lite ev set ~budget);
    ("tdfull", fun ev set ~budget -> S.top_down_full ev set ~budget);
    ("dp", fun ev set ~budget -> S.dynamic_programming ev set ~budget);
  ]

(* Exhaustive dominance is EXACT: every algorithm picks a budget-feasible
   subset of the same useful pool the oracle enumerates, and both score
   configurations on the same evaluator, so the oracle's optimum is an upper
   bound with no float slack.  When the useful pool is interaction-free
   (every sub-configuration a singleton, so benefit is additive), dynamic
   programming must also MATCH the optimum under its own rounded-unit
   feasibility, up to float-summation order. *)
let qcheck_oracle =
  QCheck.Test.make ~name:"exhaustive dominates; dp optimal sans interaction"
    ~count:12
    QCheck.(
      quad (int_range 0 1000) (int_range 3 8)
        (oneofl [ 0.3; 0.55; 0.9 ])
        (oneofl [ 1; 4 ]))
    (fun (seed, n, frac, domains) ->
      let _catalog, _wl, set, ev, budget =
        build_instance ~seed ~n ~frac ~domains
      in
      let exh =
        match Ex.search ev set ~budget with
        | exception Invalid_argument _ ->
            (* Pool above the small-instance limit: not this oracle's job. *)
            QCheck.assume_fail ()
        | exh -> exh
      in
      List.iter
        (fun (name, search) ->
          let o = search ev set ~budget in
          let b = truth_of ev o in
          if b > exh.Ex.benefit then
            QCheck.Test.fail_reportf
              "%s beats the exhaustive optimum: %.9f > %.9f (seed %d)" name b
              exh.Ex.benefit seed;
          if Float.equal b exh.Ex.benefit && Ex.rank exh b <> 1 then
            QCheck.Test.fail_reportf "%s optimal but rank %d (seed %d)" name
              (Ex.rank exh b) seed)
        algorithms;
      (* DP-vs-optimum under DP's own feasibility (sizes rounded UP to its
         knapsack granularity), when benefit is additive. *)
      let useful = B.useful_ids ev set in
      let pool =
        List.filter (fun (c : C.t) -> Hashtbl.mem useful c.C.id)
          (C.to_list set)
      in
      let interaction_free =
        List.for_all
          (fun g -> List.length g = 1)
          (B.sub_configurations pool)
      in
      if interaction_free then begin
        let unit = max Xia_storage.Cost_params.page_size (budget / 2048) in
        let units = max 1 (budget / unit) in
        let weight c = (B.candidate_size ev c + unit - 1) / unit in
        let rounded =
          Ex.search ~ids:useful ~weight ~capacity:units ev set ~budget
        in
        let dp = S.dynamic_programming ev set ~budget in
        let dpb = truth_of ev dp in
        if dpb > rounded.Ex.benefit then
          QCheck.Test.fail_reportf
            "dp beats the rounded-feasibility optimum: %.9f > %.9f (seed %d)"
            dpb rounded.Ex.benefit seed;
        let eps = 1e-6 *. Float.max 1.0 rounded.Ex.benefit in
        if rounded.Ex.benefit -. dpb > eps then
          QCheck.Test.fail_reportf
            "dp suboptimal without interaction: %.9f vs optimum %.9f (seed %d)"
            dpb rounded.Ex.benefit seed
      end;
      true)

(* Deterministic companion to the qcheck property: scan a fixed seed range
   for interaction-free instances so the DP-equals-optimum branch is
   provably non-vacuous (qcheck alone could silently never hit it), and
   check the equality on every instance found. *)
let dp_matches_on_interaction_free =
  tc "dp = exhaustive on interaction-free instances (seed scan)" (fun () ->
      let hits = ref 0 in
      for seed = 0 to 39 do
        let _catalog, _wl, set, ev, budget =
          build_instance ~seed ~n:3 ~frac:0.9 ~domains:1
        in
        let useful = B.useful_ids ev set in
        let pool =
          List.filter (fun (c : C.t) -> Hashtbl.mem useful c.C.id)
            (C.to_list set)
        in
        let interaction_free =
          pool <> []
          && List.for_all (fun g -> List.length g = 1) (B.sub_configurations pool)
        in
        if interaction_free && List.length pool <= Ex.default_limit then begin
          incr hits;
          let unit = max Xia_storage.Cost_params.page_size (budget / 2048) in
          let units = max 1 (budget / unit) in
          let weight c = (B.candidate_size ev c + unit - 1) / unit in
          let rounded =
            Ex.search ~ids:useful ~weight ~capacity:units ev set ~budget
          in
          let dpb = truth_of ev (S.dynamic_programming ev set ~budget) in
          let eps = 1e-6 *. Float.max 1.0 rounded.Ex.benefit in
          Alcotest.(check bool)
            (Printf.sprintf "seed %d: dp %.9f = optimum %.9f" seed dpb
               rounded.Ex.benefit)
            true
            (dpb <= rounded.Ex.benefit && rounded.Ex.benefit -. dpb <= eps)
        end
      done;
      Alcotest.(check bool)
        (Printf.sprintf "interaction-free instances found (%d)" !hits)
        true (!hits > 0))

(* ---------- committed eval cases ----------------------------------------- *)

(* One full harness run shared by the committed-case properties (the whole
   thing takes well under a second at the tiny scale). *)
let committed = lazy (Eval.run ~domains:2 ~small:true Eval.default_specs)

let committed_case_tests =
  [
    tc "regret in (0,1] for every algorithm on every committed case" (fun () ->
        List.iter
          (fun (r : Eval.case_result) ->
            List.iter
              (fun (e : Eval.entry) ->
                let label =
                  Printf.sprintf "%s/%.2f/%s" e.Eval.e_case e.Eval.e_frac
                    e.Eval.e_algorithm
                in
                Alcotest.(check bool)
                  (label ^ " regret > 0") true (e.Eval.e_regret > 0.0);
                Alcotest.(check bool)
                  (label ^ " regret <= 1") true (e.Eval.e_regret <= 1.0);
                Alcotest.(check bool)
                  (label ^ " rank >= 1") true (e.Eval.e_rank >= 1))
              r.Eval.r_entries)
          (Lazy.force committed));
    tc "heuristics regret >= 0.9 on every committed case" (fun () ->
        List.iter
          (fun (r : Eval.case_result) ->
            List.iter
              (fun (e : Eval.entry) ->
                if e.Eval.e_algorithm = "heuristics" then
                  Alcotest.(check bool)
                    (Printf.sprintf "%s/%.2f heuristics regret %.6f"
                       e.Eval.e_case e.Eval.e_frac e.Eval.e_regret)
                    true (e.Eval.e_regret >= 0.9))
              r.Eval.r_entries)
          (Lazy.force committed));
    tc "oracle rows are exactly optimal" (fun () ->
        List.iter
          (fun (r : Eval.case_result) ->
            List.iter
              (fun (e : Eval.entry) ->
                if e.Eval.e_algorithm = "exhaustive" then begin
                  Alcotest.(check bool)
                    (e.Eval.e_case ^ " regret = 1") true
                    (Float.equal 1.0 e.Eval.e_regret);
                  Alcotest.(check int) (e.Eval.e_case ^ " rank") 1 e.Eval.e_rank
                end)
              r.Eval.r_entries)
          (Lazy.force committed));
    tc "spearman within [-1,1] and elapsed the only wobbly field" (fun () ->
        List.iter
          (fun (r : Eval.case_result) ->
            Alcotest.(check bool)
              (r.Eval.r_case ^ " spearman bounded") true
              (r.Eval.r_spearman >= -1.0 && r.Eval.r_spearman <= 1.0);
            Alcotest.(check bool)
              (r.Eval.r_case ^ " statements > 0") true (r.Eval.r_statements > 0))
          (Lazy.force committed));
    tc "run is deterministic across domain counts" (fun () ->
        let strip r = { r with Eval.r_elapsed = 0.0 } in
        let spec =
          List.filter
            (fun s -> s.Eval.s_name = "tpox-small")
            Eval.default_specs
        in
        let a = List.map strip (Eval.run ~domains:1 ~small:true spec) in
        let b = List.map strip (Eval.run ~domains:4 ~small:true spec) in
        Alcotest.(check bool) "identical modulo elapsed" true (a = b));
  ]

(* ---------- perturbation ------------------------------------------------- *)

let perturbation_tests =
  [
    tc "perturbed search collapses regret; ground truth stands" (fun () ->
        let spec =
          List.filter
            (fun s -> s.Eval.s_name = "tpox-small")
            Eval.default_specs
        in
        let broken = Eval.run ~domains:2 ~perturb:1e6 ~small:true spec in
        Alcotest.(check bool)
          "factor reset after run" true
          (Float.equal 1.0 (Atomic.get Opt.index_cost_factor));
        List.iter
          (fun (r : Eval.case_result) ->
            List.iter
              (fun (e : Eval.entry) ->
                if e.Eval.e_algorithm <> "exhaustive" then begin
                  Alcotest.(check bool)
                    (Printf.sprintf "%s/%.2f/%s regret collapsed (%.6f)"
                       e.Eval.e_case e.Eval.e_frac e.Eval.e_algorithm
                       e.Eval.e_regret)
                    true
                    (e.Eval.e_regret < 0.5);
                  (* The yardstick is unperturbed: the optimum stays the
                     committed cases' optimum, strictly positive. *)
                  Alcotest.(check bool)
                    (e.Eval.e_case ^ " optimum positive") true
                    (e.Eval.e_optimal > 0.0)
                end)
              r.Eval.r_entries)
          broken);
  ]

let suites =
  [
    ("eval.spearman", spearman_tests);
    ("eval.exhaustive", exhaustive_unit_tests @ [ dp_matches_on_interaction_free ]);
    ("eval.cases", committed_case_tests);
    ("eval.perturbation", perturbation_tests);
    Helpers.qsuite "eval.qcheck" [ qcheck_oracle ];
  ]
