(* Tests for selectivity estimation, plan choice and the two advisor modes. *)

module O = Xia_optimizer.Optimizer
module Plan = Xia_optimizer.Plan
module Sel = Xia_optimizer.Selectivity
module Cat = Xia_index.Catalog
module D = Xia_index.Index_def
module DS = Xia_storage.Doc_store
module R = Xia_query.Rewriter

let tc name f = Alcotest.test_case name `Quick f

(* A controlled catalog: 500 docs, each <a><k>K{i mod 50}</k><v>i</v></a>, so
   a key equality selects exactly 10 documents. *)
let controlled_catalog () =
  let catalog = Cat.create () in
  let store = DS.create "T" in
  for i = 0 to 499 do
    ignore
      (DS.insert store
         (Helpers.xml
            (Printf.sprintf "<a><k>K%02d</k><v>%d</v><pad>ppppppppp</pad></a>" (i mod 50) i)))
  done;
  ignore (Cat.add_table catalog store);
  ignore (Cat.runstats catalog "T");
  catalog

let def ?(table = "T") ?(dtype = D.Dstring) p =
  D.make ~table ~pattern:(Helpers.pattern p) ~dtype ()

let access ?(table = "T") p cond =
  let pattern = Helpers.pattern p in
  { R.table; pattern; condition = cond; dtype = R.dtype_of_condition cond }

let eq_str v = R.Ccompare (Xia_xpath.Ast.Eq, Xia_xpath.Ast.String_lit v)
let gt_num v = R.Ccompare (Xia_xpath.Ast.Gt, Xia_xpath.Ast.Number_lit v)

let selectivity_tests =
  [
    tc "string equality ~ 1/distinct" (fun () ->
        let catalog = controlled_catalog () in
        let stats = Cat.stats catalog "T" in
        let est =
          Sel.lookup_estimate stats (Helpers.pattern "/a/k") D.Dstring (eq_str "K03")
        in
        Alcotest.(check (float 0.5)) "entries" 10.0 est.Sel.entries_matched;
        Alcotest.(check (float 0.5)) "docs" 10.0 est.Sel.docs_matched);
    tc "numeric range fraction" (fun () ->
        let catalog = controlled_catalog () in
        let stats = Cat.stats catalog "T" in
        let est =
          Sel.lookup_estimate stats (Helpers.pattern "/a/v") D.Ddouble (gt_num 449.5)
        in
        (* v uniform 0..499; > 449.5 is ~10% *)
        Alcotest.(check bool) "about 50" true
          (est.Sel.entries_matched > 30.0 && est.Sel.entries_matched < 70.0));
    tc "numeric eq outside range is zero" (fun () ->
        let catalog = controlled_catalog () in
        let stats = Cat.stats catalog "T" in
        let est =
          Sel.lookup_estimate stats (Helpers.pattern "/a/v") D.Ddouble
            (R.Ccompare (Xia_xpath.Ast.Eq, Xia_xpath.Ast.Number_lit 5000.0))
        in
        Alcotest.(check (float 0.001)) "zero" 0.0 est.Sel.entries_matched);
    tc "exists matches everything on the path" (fun () ->
        let catalog = controlled_catalog () in
        let stats = Cat.stats catalog "T" in
        let est = Sel.lookup_estimate stats (Helpers.pattern "/a/k") D.Dstring R.Cexists in
        Alcotest.(check (float 0.5)) "entries" 500.0 est.Sel.entries_matched);
    tc "general index matches more entries than specific" (fun () ->
        let catalog = controlled_catalog () in
        let stats = Cat.stats catalog "T" in
        let q = Helpers.pattern "/a/v" in
        let spec = Sel.lookup_estimate ~query:q stats q D.Ddouble (gt_num 50.0) in
        let gen =
          Sel.lookup_estimate ~query:q stats (Helpers.pattern "/a//*") D.Ddouble
            (gt_num 50.0)
        in
        Alcotest.(check bool) "more" true
          (gen.Sel.entries_matched >= spec.Sel.entries_matched));
    tc "cross-path string-eq damping" (fun () ->
        let catalog = controlled_catalog () in
        let stats = Cat.stats catalog "T" in
        let q = Helpers.pattern "/a/k" in
        let spec = Sel.lookup_estimate ~query:q stats q D.Dstring (eq_str "K03") in
        let gen =
          Sel.lookup_estimate ~query:q stats (Helpers.pattern "/a/*") D.Dstring
            (eq_str "K03")
        in
        (* The pad/v paths contribute only a tiny collision mass. *)
        Alcotest.(check bool) "close to specific" true
          (gen.Sel.entries_matched < spec.Sel.entries_matched +. 5.0
          && gen.Sel.entries_matched >= spec.Sel.entries_matched);
        Alcotest.(check bool) "bigger population" true
          (gen.Sel.total_entries > spec.Sel.total_entries));
    tc "doc_fraction bounded by 1" (fun () ->
        let catalog = controlled_catalog () in
        let stats = Cat.stats catalog "T" in
        let f = Sel.doc_fraction stats (access "/a/k" R.Cexists) in
        Alcotest.(check (float 0.001)) "all docs" 1.0 f);
    tc "combined_doc_fraction multiplies" (fun () ->
        let catalog = controlled_catalog () in
        let stats = Cat.stats catalog "T" in
        let a1 = access "/a/k" (eq_str "K03") in
        let a2 = access "/a/v" (gt_num 249.5) in
        let c = Sel.combined_doc_fraction stats [ [ a1 ]; [ a2 ] ] in
        (* 2% * 50% = 1% *)
        Alcotest.(check bool) "about 1%" true (c > 0.004 && c < 0.025));
  ]

let matching_tests =
  [
    tc "exact match" (fun () ->
        Alcotest.(check bool) "yes" true
          (O.index_matches (def "/a/k") (access "/a/k" (eq_str "x"))));
    tc "general pattern matches" (fun () ->
        Alcotest.(check bool) "yes" true
          (O.index_matches (def "/a//*") (access "/a/k" (eq_str "x"))));
    tc "type mismatch rejected" (fun () ->
        Alcotest.(check bool) "no" false
          (O.index_matches (def ~dtype:D.Dstring "/a/v") (access "/a/v" (gt_num 1.0))));
    tc "table mismatch rejected" (fun () ->
        Alcotest.(check bool) "no" false
          (O.index_matches (def ~table:"U" "/a/k") (access "/a/k" (eq_str "x"))));
    tc "narrower index rejected" (fun () ->
        Alcotest.(check bool) "no" false
          (O.index_matches (def "/a/k") (access "/a/*" (eq_str "x"))));
  ]

let plan_of catalog stmt = O.optimize ~mode:O.Evaluate catalog (Helpers.statement stmt)

(* Exercises the legacy mutable virtual-index interface on purpose;
   [Fun.protect] so a failing test body cannot leave the catalog dirty. *)
let with_virtual catalog defs f =
  Cat.set_virtual_indexes catalog defs;
  Fun.protect ~finally:(fun () -> Cat.clear_virtual_indexes catalog) f

let plan_tests =
  [
    tc "no indexes means doc scan" (fun () ->
        let catalog = controlled_catalog () in
        match (plan_of catalog {|for $x in T/a where $x/k = "K03" return $x|}).Plan.bindings with
        | [ { plan = Plan.Doc_scan; _ } ] -> ()
        | _ -> Alcotest.fail "expected doc scan");
    tc "selective predicate picks index scan" (fun () ->
        let catalog = controlled_catalog () in
        with_virtual catalog [ def "/a/k" ] (fun () ->
            match
              (plan_of catalog {|for $x in T/a where $x/k = "K03" return $x|}).Plan.bindings
            with
            | [ { plan = Plan.Index_scan c; _ } ] ->
                Alcotest.(check bool) "virtual" true c.Plan.is_virtual
            | _ -> Alcotest.fail "expected index scan"));
    tc "index scan is cheaper than doc scan" (fun () ->
        let catalog = controlled_catalog () in
        let base = (plan_of catalog {|for $x in T/a where $x/k = "K03" return $x|}).Plan.total_cost in
        let indexed =
          with_virtual catalog [ def "/a/k" ] (fun () ->
              (plan_of catalog {|for $x in T/a where $x/k = "K03" return $x|}).Plan.total_cost)
        in
        Alcotest.(check bool) "cheaper" true (indexed < base));
    tc "two predicates can use index anding" (fun () ->
        let catalog = controlled_catalog () in
        with_virtual catalog [ def "/a/k"; def ~dtype:D.Ddouble "/a/v" ] (fun () ->
            let p =
              plan_of catalog {|for $x in T/a where $x/k = "K03" and $x/v > 449.5 return $x|}
            in
            match p.Plan.bindings with
            | [ { plan = Plan.Index_and [ _; _ ]; _ } ] -> ()
            | [ { plan = Plan.Index_scan _; _ } ] -> () (* acceptable if single wins *)
            | _ -> Alcotest.fail "expected an index plan"));
    tc "specific index preferred over general" (fun () ->
        let catalog = controlled_catalog () in
        with_virtual catalog [ def "/a/k"; def "/a//*" ] (fun () ->
            match
              (plan_of catalog {|for $x in T/a where $x/k = "K03" return $x|}).Plan.bindings
            with
            | [ { plan = Plan.Index_scan c; _ } ] ->
                Alcotest.(check string) "pattern" "/a/k"
                  (Xia_xpath.Pattern.to_string c.Plan.def.D.pattern)
            | _ -> Alcotest.fail "expected index scan"));
    tc "normal mode ignores virtual indexes" (fun () ->
        let catalog = controlled_catalog () in
        with_virtual catalog [ def "/a/k" ] (fun () ->
            match
              (O.optimize ~mode:O.Normal catalog
                 (Helpers.statement {|for $x in T/a where $x/k = "K03" return $x|}))
                .Plan.bindings
            with
            | [ { plan = Plan.Doc_scan; _ } ] -> ()
            | _ -> Alcotest.fail "expected doc scan in normal mode"));
    tc "insert cost independent of indexes" (fun () ->
        let catalog = controlled_catalog () in
        let stmt = "insert into T <a><k>K1</k><v>5</v></a>" in
        let c0 = (plan_of catalog stmt).Plan.total_cost in
        let c1 =
          with_virtual catalog [ def "/a/k" ] (fun () -> (plan_of catalog stmt).Plan.total_cost)
        in
        Alcotest.(check (float 0.001)) "same" c0 c1;
        Alcotest.(check (float 0.001)) "affected" 1.0 (plan_of catalog stmt).Plan.affected_docs);
    tc "delete benefits from index on selector" (fun () ->
        let catalog = controlled_catalog () in
        let stmt = {|delete from T where /a[k="K03"]|} in
        let base = (plan_of catalog stmt).Plan.total_cost in
        let indexed =
          with_virtual catalog [ def "/a/k" ] (fun () -> (plan_of catalog stmt).Plan.total_cost)
        in
        Alcotest.(check bool) "cheaper" true (indexed < base);
        Alcotest.(check bool) "affected ~10" true
          (Float.abs ((plan_of catalog stmt).Plan.affected_docs -. 10.0) < 3.0));
    tc "update affected docs estimated" (fun () ->
        let catalog = controlled_catalog () in
        let p = plan_of catalog {|update T set /a/v = "0" where /a[k="K03"]|} in
        Alcotest.(check bool) "positive" true (p.Plan.affected_docs > 0.0));
    tc "plan indexes_used dedups" (fun () ->
        let catalog = controlled_catalog () in
        with_virtual catalog [ def "/a/k" ] (fun () ->
            let p = plan_of catalog {|for $x in T/a where $x/k = "K03" return $x|} in
            Alcotest.(check int) "one" 1 (List.length (Plan.indexes_used p))));
    tc "counters accumulate" (fun () ->
        let catalog = controlled_catalog () in
        O.reset_counters ();
        ignore (plan_of catalog "for $x in T/a return $x");
        ignore (O.enumerate_indexes catalog (Helpers.statement "for $x in T/a return $x"));
        Alcotest.(check int) "optimize" 1 (Atomic.get O.counters.O.optimize_calls);
        Alcotest.(check int) "enumerate" 1 (Atomic.get O.counters.O.enumerate_calls));
  ]

let enumerate_tests =
  [
    tc "enumerate returns predicate patterns" (fun () ->
        let catalog = controlled_catalog () in
        let pats =
          O.enumerate_indexes catalog
            (Helpers.statement {|for $x in T/a where $x/k = "K03" and $x/v > 5 return $x|})
        in
        let strs =
          List.map
            (fun (_, p, d) ->
              (Xia_xpath.Pattern.to_string p, D.data_type_to_string d))
            pats
        in
        Alcotest.(check bool) "k string" true (List.mem ("/a/k", "VARCHAR") strs);
        Alcotest.(check bool) "v double" true (List.mem ("/a/v", "DOUBLE") strs);
        Alcotest.(check int) "two" 2 (List.length strs));
    tc "enumerate covers attribute predicates" (fun () ->
        let catalog = controlled_catalog () in
        let pats =
          O.enumerate_indexes catalog
            (Helpers.statement {|for $x in T/a where $x/@id = "7" return $x|})
        in
        Alcotest.(check int) "one" 1 (List.length pats));
    tc "enumerate of unconstrained query is empty" (fun () ->
        let catalog = controlled_catalog () in
        Alcotest.(check int) "none" 0
          (List.length
             (O.enumerate_indexes catalog (Helpers.statement "for $x in T/a return $x"))));
    tc "enumerate of insert is empty" (fun () ->
        let catalog = controlled_catalog () in
        Alcotest.(check int) "none" 0
          (List.length (O.enumerate_indexes catalog (Helpers.statement "insert into T <a/>"))));
  ]

(* Consistency invariants tying the two optimizer modes together. *)
let plan_stmt catalog stmt = O.optimize ~mode:O.Evaluate catalog stmt

let consistency_tests =
  [
    tc "virtual and real estimates agree for the same definitions" (fun () ->
        let catalog = controlled_catalog () in
        let stmt = Helpers.statement {|for $x in T/a where $x/k = "K03" return $x|} in
        let d = def "/a/k" in
        let virtual_cost =
          with_virtual catalog [ d ] (fun () -> (plan_stmt catalog stmt).Plan.total_cost)
        in
        ignore (Cat.create_index catalog d);
        let real_cost =
          (O.optimize ~mode:O.Normal catalog stmt).Plan.total_cost
        in
        Alcotest.(check (float 0.0001)) "same" virtual_cost real_cost);
    tc "adding a virtual index never increases a query's cost" (fun () ->
        let catalog = controlled_catalog () in
        let stmts =
          List.map Helpers.statement
            [
              {|for $x in T/a where $x/k = "K03" return $x|};
              "for $x in T/a where $x/v > 250 return $x";
              "for $x in T/a return $x";
            ]
        in
        List.iter
          (fun stmt ->
            let base = (plan_stmt catalog stmt).Plan.total_cost in
            let indexed =
              with_virtual catalog
                [ def "/a/k"; def ~dtype:D.Ddouble "/a/v"; def "/a//*" ]
                (fun () -> (plan_stmt catalog stmt).Plan.total_cost)
            in
            Alcotest.(check bool) "monotone" true (indexed <= base))
          stmts);
    tc "costs are positive and finite" (fun () ->
        let catalog = controlled_catalog () in
        List.iter
          (fun q ->
            let c = (plan_of catalog q).Plan.total_cost in
            Alcotest.(check bool) q true (c > 0.0 && Float.is_finite c))
          [
            "for $x in T/a return $x";
            "insert into T <a><k>K00</k></a>";
            {|delete from T where /a[k="K03"]|};
            {|update T set /a/v = "1" where /a[k="K03"]|};
          ]);
    tc "empty table plans gracefully" (fun () ->
        let catalog = Cat.create () in
        ignore (Cat.add_table catalog (DS.create "E"));
        ignore (Cat.runstats catalog "E");
        let p = plan_of catalog {|for $x in E/a where $x/k = "v" return $x|} in
        Alcotest.(check bool) "finite" true (Float.is_finite p.Plan.total_cost);
        Alcotest.(check (float 0.001)) "no docs" 0.0
          (match p.Plan.bindings with [ b ] -> b.Plan.est_docs | _ -> -1.0));
  ]

let suites =
  [
    ("optimizer.selectivity", selectivity_tests);
    ("optimizer.matching", matching_tests);
    ("optimizer.plans", plan_tests);
    ("optimizer.enumerate", enumerate_tests);
    ("optimizer.consistency", consistency_tests);
  ]
