(* The observability layer (lib/obs).

   The load-bearing suite is differential: running the full advisor pipeline
   with tracing+metrics enabled must produce bit-identical results to running
   it disabled — same recommended configuration, same costs, same evaluator
   counters — at one domain and at four.  Instrumentation only ever reads the
   clock and bumps observability state, never advisor state.

   The property suite drives random span trees from several concurrent
   domains and checks the flushed output is well-nested and monotonic, which
   trace.ml promises by construction.  Exporters and the metrics registry get
   deterministic unit locks. *)

module A = Xia_advisor.Advisor
module B = Xia_advisor.Benefit
module C = Xia_advisor.Candidate
module S = Xia_advisor.Search
module Cat = Xia_index.Catalog
module Obs = Xia_obs.Obs
module Trace = Xia_obs.Trace
module Metrics = Xia_obs.Metrics

let tc name f = Alcotest.test_case name `Quick f

(* ------------------------------------------------- differential harness -- *)

let tiny_workload catalog =
  Xia_workload.Tpox.workload ()
  @ Xia_workload.Synthetic.workload ~seed:11 catalog (Cat.table_names catalog) 8

let config_ids (o : S.outcome) = List.map (fun (c : C.t) -> c.C.id) o.S.config

(* Everything a caller can observe from one full advisor run: the
   recommendation itself plus the evaluator's work counters. *)
type fingerprint = {
  ids : int list;
  size : int;
  benefit : float;
  optimizer_calls : int;
  base_cost : float;
  new_cost : float;
  est_speedup : float;
  evaluations : int;
  cache_hits : int;
}

let fingerprint ~domains algorithm =
  let catalog = Lazy.force Helpers.shared_catalog in
  let workload = tiny_workload catalog in
  let session = A.create_session ~domains catalog workload in
  let all = A.session_advise session ~budget:max_int A.All_index in
  let r = A.session_advise session ~budget:(all.A.outcome.S.size / 2) algorithm in
  {
    ids = config_ids r.A.outcome;
    size = r.A.outcome.S.size;
    benefit = r.A.outcome.S.benefit;
    optimizer_calls = r.A.outcome.S.optimizer_calls;
    base_cost = r.A.base_cost;
    new_cost = r.A.new_cost;
    est_speedup = r.A.est_speedup;
    evaluations = B.evaluations session.A.evaluator;
    cache_hits = B.cache_hits session.A.evaluator;
  }

let check_fingerprint label (a : fingerprint) (b : fingerprint) =
  Alcotest.(check (list int)) (label ^ " config") a.ids b.ids;
  Alcotest.(check int) (label ^ " size") a.size b.size;
  Alcotest.(check bool) (label ^ " benefit") true (Float.equal a.benefit b.benefit);
  Alcotest.(check int) (label ^ " optimizer calls") a.optimizer_calls b.optimizer_calls;
  Alcotest.(check bool) (label ^ " base cost") true (Float.equal a.base_cost b.base_cost);
  Alcotest.(check bool) (label ^ " new cost") true (Float.equal a.new_cost b.new_cost);
  Alcotest.(check bool) (label ^ " est speedup") true
    (Float.equal a.est_speedup b.est_speedup);
  Alcotest.(check int) (label ^ " evaluations") a.evaluations b.evaluations;
  Alcotest.(check int) (label ^ " cache hits") a.cache_hits b.cache_hits

let differential_tests =
  let case algorithm =
    tc (A.algorithm_name algorithm ^ ": enabled = disabled") (fun () ->
        List.iter
          (fun domains ->
            let label =
              Printf.sprintf "%s domains=%d" (A.algorithm_name algorithm) domains
            in
            let off = fingerprint ~domains algorithm in
            let on =
              Obs.with_enabled true (fun () ->
                  Fun.protect
                    ~finally:(fun () -> ignore (Trace.flush ()))
                    (fun () -> fingerprint ~domains algorithm))
            in
            check_fingerprint label off on)
          [ 1; 4 ])
  in
  List.map case [ A.Greedy_heuristics; A.Top_down_full; A.Dynamic_programming ]

let switch_tests =
  [
    tc "disabled runs record no spans" (fun () ->
        ignore (Trace.flush ());
        ignore (fingerprint ~domains:1 A.Greedy);
        Alcotest.(check int) "no spans" 0 (List.length (Trace.flush ())));
    tc "enabled runs record pipeline spans and metrics" (fun () ->
        ignore (Trace.flush ());
        ignore (Obs.with_enabled true (fun () -> fingerprint ~domains:1 A.Greedy_heuristics));
        let names =
          List.sort_uniq compare
            (List.map (fun (s : Trace.span) -> s.Trace.name) (Trace.flush ()))
        in
        List.iter
          (fun expected ->
            Alcotest.(check bool) ("span " ^ expected) true (List.mem expected names))
          [
            "advisor.session_advise"; "enumeration.candidates"; "generalize.close";
            "benefit.workload_cost"; "search.all_index"; "search.greedy_heuristics";
          ];
        Alcotest.(check bool) "benefit.evaluations counted" true
          (Metrics.value (Metrics.counter "benefit.evaluations") > 0));
  ]

(* ------------------------------------------ span well-nestedness (qcheck) -- *)

(* Random span trees on four concurrent domains; the flushed result must be
   per-domain well-nested (no partial interval overlap) with close-order
   stop times monotone.  Sequencing inside a domain is driven by a seeded
   PRNG so failures replay. *)
let span_shape_prop =
  QCheck.Test.make ~count:20 ~name:"concurrent spans flush well-nested and monotonic"
    QCheck.(make Gen.(int_range 0 10_000))
    (fun seed ->
      ignore (Trace.flush ());
      Obs.with_enabled true (fun () ->
          let work salt =
            let st = Random.State.make [| seed; salt |] in
            let rec go depth =
              Trace.with_span
                ~args:(fun () -> [ ("depth", string_of_int depth) ])
                (Printf.sprintf "s%d.d%d" salt depth)
                (fun () ->
                  let kids = if depth >= 3 then 0 else Random.State.int st 3 in
                  for _ = 1 to kids do
                    go (depth + 1)
                  done)
            in
            for _ = 1 to 1 + Random.State.int st 3 do
              go 0
            done
          in
          let spawned = List.init 3 (fun i -> Domain.spawn (fun () -> work i)) in
          work 99;
          List.iter Domain.join spawned);
      let spans = Trace.flush () in
      (* Flushed order restricted to one domain is exactly open order (the
         tie-break cannot depend on clock granularity): open_seq must be
         strictly increasing per tid in flush order. *)
      let flush_order_is_open_order =
        let last = Hashtbl.create 8 in
        List.for_all
          (fun (s : Trace.span) ->
            let prev =
              Option.value ~default:0 (Hashtbl.find_opt last s.Trace.tid)
            in
            Hashtbl.replace last s.Trace.tid s.Trace.open_seq;
            prev < s.Trace.open_seq)
          spans
      in
      let by_tid = Hashtbl.create 8 in
      List.iter
        (fun (s : Trace.span) ->
          Hashtbl.replace by_tid s.Trace.tid
            (s :: Option.value ~default:[] (Hashtbl.find_opt by_tid s.Trace.tid)))
        spans;
      spans <> [] && flush_order_is_open_order
      && Hashtbl.fold
           (fun _tid ss ok ->
             let ss =
               List.sort (fun (a : Trace.span) b -> compare a.Trace.seq b.Trace.seq) ss
             in
             let intervals_ok =
               List.for_all (fun (s : Trace.span) -> s.Trace.start_s <= s.Trace.stop_s) ss
             in
             let rec stops_monotone = function
               | (a : Trace.span) :: (b :: _ as rest) ->
                   a.Trace.stop_s <= b.Trace.stop_s && stops_monotone rest
               | _ -> true
             in
             let well_nested =
               List.for_all
                 (fun (a : Trace.span) ->
                   List.for_all
                     (fun (b : Trace.span) ->
                       (* partial overlap — a opens, b opens, a closes, b
                          closes, all strictly — is the one forbidden shape *)
                       not
                         (a.Trace.start_s < b.Trace.start_s
                         && b.Trace.start_s < a.Trace.stop_s
                         && a.Trace.stop_s < b.Trace.stop_s))
                     ss)
                 ss
             in
             ok && intervals_ok && stops_monotone ss && well_nested)
           by_tid true)

(* --------------------------------------------------------- exporter locks -- *)

let sample_spans =
  [
    {
      Trace.name = "outer"; args = []; tid = 0; seq = 2; open_seq = 1;
      depth = 0; start_s = 1.0; stop_s = 2.0;
    };
    {
      Trace.name = "inner"; args = [ ("k", "v") ]; tid = 0; seq = 1;
      open_seq = 2; depth = 1; start_s = 1.25; stop_s = 1.5;
    };
  ]

let exporter_tests =
  [
    tc "chrome export is regression-locked" (fun () ->
        Alcotest.(check string) "chrome"
          ("{\"traceEvents\":[\n\
            {\"name\":\"outer\",\"cat\":\"xia\",\"ph\":\"X\",\"ts\":1000000.0,\"dur\":1000000.0,\"pid\":0,\"tid\":0},\n\
            {\"name\":\"inner\",\"cat\":\"xia\",\"ph\":\"X\",\"ts\":1250000.0,\"dur\":250000.0,\"pid\":0,\"tid\":0,\"args\":{\"k\":\"v\"}}\n\
            ]}\n")
          (Trace.export_chrome sample_spans));
    tc "text export indents by depth and lists args" (fun () ->
        let text = Trace.export_text sample_spans in
        match String.split_on_char '\n' text with
        | [ header; outer; inner; "" ] ->
            Alcotest.(check string) "header" "domain 0" header;
            Alcotest.(check bool) "outer at depth 0" true
              (String.length outer > 2 && String.sub outer 0 3 = "  o");
            Alcotest.(check bool) "inner at depth 1" true
              (String.length inner > 4 && String.sub inner 0 5 = "    i");
            Alcotest.(check bool) "inner args rendered" true
              (String.length inner >= 5
              && String.sub inner (String.length inner - 5) 5 = "{k=v}")
        | lines -> Alcotest.failf "expected 3 lines, got %d" (List.length lines - 1));
    tc "json strings are escaped" (fun () ->
        let spans =
          [
            {
              Trace.name = "quo\"te"; args = [ ("a", "b\\c") ]; tid = 1; seq = 1;
              open_seq = 1; depth = 0; start_s = 0.0; stop_s = 0.0;
            };
          ]
        in
        let out = Trace.export_chrome spans in
        let has_sub needle hay =
          let n = String.length needle and m = String.length hay in
          let rec scan i = i + n <= m && (String.sub hay i n = needle || scan (i + 1)) in
          scan 0
        in
        Alcotest.(check bool) "name escaped" true (has_sub {|"quo\"te"|} out);
        Alcotest.(check bool) "arg escaped" true (has_sub {|"b\\c"|} out));
  ]

(* --------------------------------------------------------------- metrics -- *)

let metrics_tests =
  [
    tc "counter: incr/add accumulate; re-registration shares state" (fun () ->
        let c = Metrics.counter "test_obs.counter" in
        let base = Metrics.value c in
        Metrics.incr c;
        Metrics.add (Metrics.counter "test_obs.counter") 4;
        Alcotest.(check int) "value" (base + 5) (Metrics.value c));
    tc "kind clash raises Invalid_argument" (fun () ->
        ignore (Metrics.counter "test_obs.clash");
        match Metrics.gauge "test_obs.clash" with
        | _ -> Alcotest.fail "expected Invalid_argument"
        | exception Invalid_argument _ -> ());
    tc "histogram buckets observations by bound" (fun () ->
        let h = Metrics.histogram ~bounds_us:[| 10.; 100. |] "test_obs.hist" in
        Metrics.observe_us h 5.0;
        Metrics.observe_us h 50.0;
        Metrics.observe_us h 5000.0;
        (* 5ms lands in the implicit overflow bucket *)
        match List.assoc "test_obs.hist" (Metrics.snapshot ()) with
        | Metrics.Histogram_v { count; sum_us; buckets } ->
            Alcotest.(check int) "count" 3 count;
            Alcotest.(check int) "sum" 5055 sum_us;
            Alcotest.(check (list int)) "per-bucket" [ 1; 1; 1 ]
              (List.map snd buckets);
            Alcotest.(check bool) "overflow bound" true
              (Float.equal infinity (fst (List.nth buckets 2)))
        | _ -> Alcotest.fail "expected a histogram"
        | exception Not_found -> Alcotest.fail "histogram not in snapshot");
    tc "json serialization is regression-locked" (fun () ->
        Alcotest.(check string) "json"
          ("{\"metrics\":[\n\
            {\"name\":\"c\",\"type\":\"counter\",\"value\":3},\n\
            {\"name\":\"g\",\"type\":\"gauge\",\"value\":1.5},\n\
            {\"name\":\"h\",\"type\":\"histogram\",\"count\":2,\"sum_us\":30,\"buckets\":[{\"le_us\":20,\"n\":1},{\"le_us\":\"inf\",\"n\":1}]}\n\
            ]}\n")
          (Metrics.to_json
             [
               ("c", Metrics.Counter_v 3);
               ("g", Metrics.Gauge_v 1.5);
               ( "h",
                 Metrics.Histogram_v
                   { count = 2; sum_us = 30; buckets = [ (20., 1); (infinity, 1) ] } );
             ]));
  ]

let suites =
  [
    ("obs.differential", differential_tests);
    ("obs.switch", switch_tests);
    Helpers.qsuite "obs.qcheck" [ span_shape_prop ];
    ("obs.exporters", exporter_tests);
    ("obs.metrics", metrics_tests);
  ]
