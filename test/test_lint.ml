(* The xia_lint static analyzer (lib/analysis): every check ID gets a
   positive hit, a negative non-hit and (for D001/D002/D004/H002) a
   suppression path, plus the self-check that the repository's own lib/ is
   lint-clean under the checked-in allow file. *)

module Lint = Xia_analysis.Lint
module Checks = Xia_analysis.Checks
module Finding = Xia_analysis.Finding
module Suppress = Xia_analysis.Suppress

let tc name f = Alcotest.test_case name `Quick f

let findings ?(filename = "fixture.ml") src =
  match Lint.lint_source ~filename src with
  | Ok fs -> fs
  | Error (e : Lint.error) -> Alcotest.failf "parse error in %s: %s" e.path e.message

let ids ?filename src =
  List.map (fun (f : Finding.t) -> (f.line, f.id)) (findings ?filename src)

let check_ids name expected ?filename src =
  Alcotest.(check (list (pair int string))) name expected (ids ?filename src)

(* ---------------------------------------------------------------- D001 -- *)

let d001_tests =
  [
    tc "toplevel ref / Hashtbl / Buffer / Array.make hit" (fun () ->
        check_ids "all flagged"
          [ (1, "D001"); (2, "D001"); (3, "D001"); (4, "D001") ]
          "let a = ref 0\n\
           let b = Hashtbl.create 16\n\
           let c = Buffer.create 64\n\
           let d = Array.make 4 0\n");
    tc "mutable-field record literal hit" (fun () ->
        check_ids "record flagged"
          [ (2, "D001") ]
          "type t = { mutable n : int; label : string }\n\
           let state = { n = 0; label = \"x\" }\n");
    tc "immutable record literal not hit" (fun () ->
        check_ids "clean" []
          "type t = { n : int; label : string }\n\
           let state = { n = 0; label = \"x\" }\n");
    tc "constructor payload and tuple are descended into" (fun () ->
        check_ids "nested flagged"
          [ (1, "D001"); (2, "D001") ]
          "let a = Some (ref 0)\nlet b, c = (ref 0, 1)\n");
    tc "function-local allocation not hit" (fun () ->
        check_ids "clean" []
          "let f () =\n\
          \  let tbl = Hashtbl.create 16 in\n\
          \  let r = ref 0 in\n\
          \  Hashtbl.length tbl + !r\n");
    tc "memoizing closure over a let-in ref is hit" (fun () ->
        check_ids "captured state flagged"
          [ (2, "D001") ]
          "let cached =\n\
          \  let memo = ref None in\n\
          \  fun () -> !memo\n");
    tc "let-in consumed at initialization not hit" (fun () ->
        check_ids "clean" []
          "let size =\n\
          \  let tbl = Hashtbl.create 16 in\n\
          \  Hashtbl.length tbl\n");
    tc "safe wrapper inside a closure-returning let-in not hit" (fun () ->
        check_ids "clean" []
          "let cached =\n\
          \  let memo = Lazy.from_fun (fun () -> Hashtbl.create 8) in\n\
          \  fun () -> Lazy.force memo\n");
    tc "Atomic/DLS/Mutex/Lazy wrappers not hit" (fun () ->
        check_ids "clean" []
          "let a = Atomic.make 0\n\
           let b = Domain.DLS.new_key (fun () -> Hashtbl.create 64)\n\
           let c = Mutex.create ()\n\
           let d = lazy (Hashtbl.create 8)\n\
           let e = Lazy.from_fun (fun () -> Buffer.create 8)\n");
    tc "nested module toplevel is still toplevel" (fun () ->
        check_ids "flagged inside module"
          [ (2, "D001") ]
          "module M = struct\n  let cache = Hashtbl.create 8\nend\n");
    tc "attribute suppression on binding" (fun () ->
        check_ids "suppressed" []
          "let a = ref 0 [@@lint.allow \"D001\"]\n");
    tc "attribute suppression on expression" (fun () ->
        check_ids "suppressed" [] "let a = (ref 0 [@lint.allow \"D001\"])\n");
    tc "allow-file suppression by path and line" (fun () ->
        let fs = findings "let a = ref 0\nlet b = ref 1\n" in
        let entry =
          { Suppress.id = "D001"; path = "fixture.ml"; line = Some 1; reason = "test" }
        in
        let kept, suppressed = Suppress.apply [ entry ] fs in
        Alcotest.(check (list (pair int string)))
          "line 1 suppressed, line 2 kept"
          [ (2, "D001") ]
          (List.map (fun (f : Finding.t) -> (f.line, f.id)) kept);
        Alcotest.(check int) "one suppressed" 1 (List.length suppressed));
  ]

(* ---------------------------------------------------------------- D002 -- *)

let d002_tests =
  [
    tc "Sys.time hit (also as a function value)" (fun () ->
        check_ids "both flagged"
          [ (1, "D002"); (2, "D002") ]
          "let f () = Sys.time ()\nlet g = [ Sys.time ]\n");
    tc "Unix.gettimeofday not hit (that is D004's territory)" (fun () ->
        check_ids "clean" [] "let f () = Unix.gettimeofday ()\n");
    tc "attribute suppression" (fun () ->
        check_ids "suppressed" []
          "let cpu_seconds () = (Sys.time () [@lint.allow \"D002\"])\n");
  ]

(* ---------------------------------------------------------------- D004 -- *)

let d004_tests =
  [
    tc "gettimeofday in lib/ hit (also as a function value)" (fun () ->
        check_ids "both flagged" ~filename:"lib/core/search.ml"
          [ (1, "D004"); (2, "D004") ]
          "let f () = Unix.gettimeofday ()\nlet g = [ Unix.gettimeofday ]\n");
    tc "lib/obs/ is the sanctioned home, not hit" (fun () ->
        check_ids "clean" [] ~filename:"lib/obs/obs.ml"
          "let now_s () = Unix.gettimeofday ()\n");
    tc "non-library code (bin/, bench/, test/) not hit" (fun () ->
        let src = "let t0 = fun () -> Unix.gettimeofday ()\n" in
        check_ids "bin clean" [] ~filename:"bin/xia_advise.ml" src;
        check_ids "bench clean" [] ~filename:"bench/main.ml" src;
        check_ids "test clean" [] ~filename:"test/helpers.ml" src);
    tc "relative lib path still applies" (fun () ->
        check_ids "flagged" ~filename:"../lib/optimizer/executor.ml"
          [ (1, "D004") ]
          "let stamp () = Unix.gettimeofday ()\n");
    tc "Obs.now_s not hit" (fun () ->
        check_ids "clean" [] ~filename:"lib/core/benefit.ml"
          "let stamp () = Xia_obs.Obs.now_s ()\n");
    tc "attribute suppression" (fun () ->
        check_ids "suppressed" [] ~filename:"lib/core/par.ml"
          "let raw () = (Unix.gettimeofday () [@lint.allow \"D004\"])\n");
  ]

(* ---------------------------------------------------------------- D003 -- *)

let d003_tests =
  [
    tc "catalog mutation reachable in what-if module" (fun () ->
        let src =
          "let install c defs = Catalog.set_virtual_indexes c defs\n\
           let benefit c defs = install c defs\n"
        in
        let fs = findings ~filename:"lib/core/benefit.ml" src in
        Alcotest.(check (list (pair int string)))
          "one D003 at the call site"
          [ (1, "D003") ]
          (List.map (fun (f : Finding.t) -> (f.line, f.id)) fs);
        let msg = (List.hd fs).Finding.message in
        let has_sub needle =
          let n = String.length needle and m = String.length msg in
          let rec scan i = i + n <= m && (String.sub msg i n = needle || scan (i + 1)) in
          scan 0
        in
        Alcotest.(check bool) "names the mutator" true (has_sub "Catalog.set_virtual_indexes");
        Alcotest.(check bool)
          "lists both entry points" true
          (has_sub "reachable from: benefit, install"));
    tc "same code outside what-if modules not hit" (fun () ->
        check_ids "clean" [] ~filename:"lib/core/search.ml"
          "let install c defs = Catalog.set_virtual_indexes c defs\n");
    tc "warm_stats and reads are allowed" (fun () ->
        check_ids "clean" [] ~filename:"benefit.ml"
          "let prepare c = Catalog.warm_stats c\n\
           let read c = Catalog.stats c \"T\"\n");
    tc "attribute suppression" (fun () ->
        check_ids "suppressed" [] ~filename:"benefit.ml"
          "let install c = (Catalog.drop_all_indexes c [@lint.allow \"D003\"])\n");
  ]

(* ---------------------------------------------------------------- H001 -- *)

let h001_tests =
  [
    tc "ml without mli is flagged; paired ml is not" (fun () ->
        let fs =
          Checks.missing_mli
            ~mls:[ "lib/a/one.ml"; "lib/a/two.ml" ]
            ~mlis:[ "lib/a/one.mli" ]
        in
        Alcotest.(check (list (pair string string)))
          "only two.ml"
          [ ("lib/a/two.ml", "H001") ]
          (List.map (fun (f : Finding.t) -> (f.file, f.id)) fs));
    tc "bin/ and bench/ executables are exempt" (fun () ->
        let fs =
          Checks.missing_mli
            ~mls:[ "bin/xia_advise.ml"; "bench/main.ml"; "lib/a/one.ml" ]
            ~mlis:[]
        in
        Alcotest.(check (list (pair string string)))
          "only the lib module"
          [ ("lib/a/one.ml", "H001") ]
          (List.map (fun (f : Finding.t) -> (f.file, f.id)) fs));
  ]

(* ---------------------------------------------------------------- H002 -- *)

let h002_tests =
  [
    tc "failwith and assert false hit" (fun () ->
        check_ids "both flagged"
          [ (1, "H002"); (2, "H002") ]
          "let f () = failwith \"nope\"\nlet g () = assert false\n");
    tc "assert with a real condition not hit" (fun () ->
        check_ids "clean" [] "let f x = assert (x > 0)\n");
    tc "lint note on the same line suppresses" (fun () ->
        check_ids "suppressed" []
          "let f () = failwith \"nope\" (* lint: caller validated input *)\n");
    tc "lint note on the previous line suppresses" (fun () ->
        check_ids "suppressed" []
          "let f = function\n\
          \  | Some v -> v\n\
          \  (* lint: filtered to Some above *)\n\
          \  | None -> assert false\n");
    tc "attribute suppression" (fun () ->
        check_ids "suppressed" []
          "let f () = (assert false [@lint.allow \"H002\"])\n");
  ]

(* -------------------------------------------------- allow-file parsing -- *)

let allow_file_tests =
  [
    tc "entry with path, line and reason parses" (fun () ->
        match
          Suppress.parse_allow_file ~file:"lint.allow"
            "# comment\n\nD001 lib/core/par.ml:68 -- intentional pool handle\n"
        with
        | Error msgs -> Alcotest.failf "unexpected errors: %s" (String.concat "; " msgs)
        | Ok [ e ] ->
            Alcotest.(check string) "id" "D001" e.Suppress.id;
            Alcotest.(check string) "path" "lib/core/par.ml" e.Suppress.path;
            Alcotest.(check (option int)) "line" (Some 68) e.Suppress.line;
            Alcotest.(check string) "reason" "intentional pool handle" e.Suppress.reason
        | Ok es -> Alcotest.failf "expected one entry, got %d" (List.length es));
    tc "entry without a reason is rejected" (fun () ->
        match Suppress.parse_allow_file ~file:"lint.allow" "D001 lib/core/par.ml\n" with
        | Ok _ -> Alcotest.fail "entry without reason must be an error"
        | Error msgs -> Alcotest.(check int) "one error" 1 (List.length msgs));
    tc "path matches by component suffix" (fun () ->
        let f =
          Finding.make ~file:"../lib/index/index_def.ml" ~line:29 ~col:0 ~id:"D001"
            ~message:"m"
        in
        let e line =
          { Suppress.id = "D001"; path = "lib/index/index_def.ml"; line; reason = "r" }
        in
        Alcotest.(check bool) "any-line entry" true (Suppress.suppresses (e None) f);
        Alcotest.(check bool) "right line" true (Suppress.suppresses (e (Some 29)) f);
        Alcotest.(check bool) "wrong line" false (Suppress.suppresses (e (Some 30)) f);
        Alcotest.(check bool) "wrong id" false
          (Suppress.suppresses { (e None) with Suppress.id = "D002" } f));
  ]

(* ------------------------------------------------------- output format -- *)

let format_tests =
  [
    tc "text format is file:line [ID] message" (fun () ->
        Alcotest.(check string) "text" "a.ml:3 [D001] boom"
          (Finding.to_string
             (Finding.make ~file:"a.ml" ~line:3 ~col:2 ~id:"D001" ~message:"boom")));
    tc "json format is regression-locked" (fun () ->
        let fs =
          [
            Finding.make ~file:"b.ml" ~line:1 ~col:0 ~id:"H001" ~message:"no mli";
            Finding.make ~file:"a.ml" ~line:3 ~col:2 ~id:"D001" ~message:"say \"hi\"";
          ]
        in
        Alcotest.(check string)
          "sorted array, one object per line"
          "[\n\
          \  {\"file\":\"a.ml\",\"line\":3,\"col\":2,\"id\":\"D001\",\"message\":\"say \\\"hi\\\"\"},\n\
          \  {\"file\":\"b.ml\",\"line\":1,\"col\":0,\"id\":\"H001\",\"message\":\"no mli\"}\n\
           ]\n"
          (Finding.list_to_json fs));
    tc "empty json report" (fun () ->
        Alcotest.(check string) "empty array" "[]\n" (Finding.list_to_json []));
    tc "syntax errors are reported, not raised" (fun () ->
        match Lint.lint_source ~filename:"bad.ml" "let let let" with
        | Ok _ -> Alcotest.fail "expected a parse error"
        | Error (e : Lint.error) -> Alcotest.(check string) "path" "bad.ml" e.path);
  ]

(* ------------------------------------------------------ repo self-check -- *)

let self_check_tests =
  [
    tc "repo lib/ is lint-clean under lint.allow" (fun () ->
        let allow =
          match Suppress.load_allow_file "../lint.allow" with
          | Ok entries -> entries
          | Error msgs -> Alcotest.failf "lint.allow: %s" (String.concat "; " msgs)
        in
        Alcotest.(check bool)
          "suppression budget: <= 5 allowlisted entries" true
          (List.length allow <= 5);
        let report = Lint.lint_paths ~allow [ "../lib" ] in
        Alcotest.(check (list string))
          "no analysis errors" []
          (List.map (fun (e : Lint.error) -> e.path ^ ": " ^ e.message) report.errors);
        Alcotest.(check (list string))
          "no findings" []
          (List.map Finding.to_string report.findings));
    tc "injected D001 violation fails the full pipeline" (fun () ->
        (* The acceptance-criteria demonstration: the exact bug class PR 1
           shipped (a toplevel ref on a parallel path) yields a non-empty
           report, which is exactly what makes bin/xia_lint — and with it
           `dune build @lint` — exit non-zero. *)
        let dir = Filename.temp_dir "xia_lint_test" "" in
        let path = Filename.concat dir "injected.ml" in
        Fun.protect
          ~finally:(fun () ->
            if Sys.file_exists path then Sys.remove path;
            Sys.rmdir dir)
          (fun () ->
            Out_channel.with_open_text path (fun oc ->
                output_string oc "let counter = ref 0\n");
            let report = Lint.lint_paths [ dir ] in
            Alcotest.(check (list string))
              "D001 for the global, H001 for the missing mli"
              [ "D001"; "H001" ]
              (List.sort String.compare
                 (List.map (fun (f : Finding.t) -> f.id) report.findings))));
  ]

let suites =
  [
    ("lint.d001", d001_tests);
    ("lint.d002", d002_tests);
    ("lint.d003", d003_tests);
    ("lint.d004", d004_tests);
    ("lint.h001", h001_tests);
    ("lint.h002", h002_tests);
    ("lint.allow_file", allow_file_tests);
    ("lint.format", format_tests);
    ("lint.self_check", self_check_tests);
  ]
