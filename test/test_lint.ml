(* The xia_lint static analyzer (lib/analysis): every check ID gets a
   positive hit, a negative non-hit and a suppression path; the
   whole-program checks (D003, the N/E-series, the R-series) additionally
   get two-unit temp-dir projects proving the cross-module cases the old
   per-file analysis could not see; the interprocedural effect pass gets a
   golden summary dump and cross-unit propagation cases; plus the
   self-check that the repository's own lib/ is lint-clean under the
   checked-in allow file. *)

module Lint = Xia_analysis.Lint
module Checks = Xia_analysis.Checks
module Finding = Xia_analysis.Finding
module Suppress = Xia_analysis.Suppress

let tc name f = Alcotest.test_case name `Quick f

let findings ?(filename = "fixture.ml") src =
  match Lint.lint_source ~filename src with
  | Ok fs -> fs
  | Error (e : Lint.error) -> Alcotest.failf "parse error in %s: %s" e.path e.message

let ids ?filename src =
  List.map (fun (f : Finding.t) -> (f.line, f.id)) (findings ?filename src)

let check_ids name expected ?filename src =
  Alcotest.(check (list (pair int string))) name expected (ids ?filename src)

let contains haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec scan i = i + n <= m && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let index_of haystack needle =
  let n = String.length needle and m = String.length haystack in
  let rec scan i =
    if i + n > m then -1 else if String.sub haystack i n = needle then i else scan (i + 1)
  in
  scan 0

(* A throwaway directory holding a multi-unit project, for the
   whole-program checks. *)
let with_temp_project files f =
  let dir = Filename.temp_dir "xia_lint_test" "" in
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun e -> Sys.remove (Filename.concat dir e)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      List.iter
        (fun (name, src) ->
          Out_channel.with_open_text (Filename.concat dir name) (fun oc ->
              output_string oc src))
        files;
      f dir)

(* ---------------------------------------------------------------- D001 -- *)

let d001_tests =
  [
    tc "toplevel ref / Hashtbl / Buffer / Array.make hit" (fun () ->
        check_ids "all flagged"
          [ (1, "D001"); (2, "D001"); (3, "D001"); (4, "D001") ]
          "let a = ref 0\n\
           let b = Hashtbl.create 16\n\
           let c = Buffer.create 64\n\
           let d = Array.make 4 0\n");
    tc "mutable-field record literal hit" (fun () ->
        check_ids "record flagged"
          [ (2, "D001") ]
          "type t = { mutable n : int; label : string }\n\
           let state = { n = 0; label = \"x\" }\n");
    tc "immutable record literal not hit" (fun () ->
        check_ids "clean" []
          "type t = { n : int; label : string }\n\
           let state = { n = 0; label = \"x\" }\n");
    tc "constructor payload and tuple are descended into" (fun () ->
        check_ids "nested flagged"
          [ (1, "D001"); (2, "D001") ]
          "let a = Some (ref 0)\nlet b, c = (ref 0, 1)\n");
    tc "function-local allocation not hit" (fun () ->
        check_ids "clean" []
          "let f () =\n\
          \  let tbl = Hashtbl.create 16 in\n\
          \  let r = ref 0 in\n\
          \  Hashtbl.length tbl + !r\n");
    tc "memoizing closure over a let-in ref is hit" (fun () ->
        check_ids "captured state flagged"
          [ (2, "D001") ]
          "let cached =\n\
          \  let memo = ref None in\n\
          \  fun () -> !memo\n");
    tc "let-in consumed at initialization not hit" (fun () ->
        check_ids "clean" []
          "let size =\n\
          \  let tbl = Hashtbl.create 16 in\n\
          \  Hashtbl.length tbl\n");
    tc "safe wrapper inside a closure-returning let-in not hit" (fun () ->
        check_ids "clean" []
          "let cached =\n\
          \  let memo = Lazy.from_fun (fun () -> Hashtbl.create 8) in\n\
          \  fun () -> Lazy.force memo\n");
    tc "Atomic/DLS/Mutex/Lazy wrappers not hit" (fun () ->
        check_ids "clean" []
          "let a = Atomic.make 0\n\
           let b = Domain.DLS.new_key (fun () -> Hashtbl.create 64)\n\
           let c = Mutex.create ()\n\
           let d = lazy (Hashtbl.create 8)\n\
           let e = Lazy.from_fun (fun () -> Buffer.create 8)\n");
    tc "nested module toplevel is still toplevel" (fun () ->
        check_ids "flagged inside module"
          [ (2, "D001") ]
          "module M = struct\n  let cache = Hashtbl.create 8\nend\n");
    tc "attribute suppression on binding" (fun () ->
        check_ids "suppressed" []
          "let a = ref 0 [@@lint.allow \"D001\"]\n");
    tc "attribute suppression on expression" (fun () ->
        check_ids "suppressed" [] "let a = (ref 0 [@lint.allow \"D001\"])\n");
    tc "allow-file suppression by path and line" (fun () ->
        let fs = findings "let a = ref 0\nlet b = ref 1\n" in
        let entry =
          { Suppress.id = "D001"; path = "fixture.ml"; line = Some 1; reason = "test" }
        in
        let kept, suppressed = Suppress.apply [ entry ] fs in
        Alcotest.(check (list (pair int string)))
          "line 1 suppressed, line 2 kept"
          [ (2, "D001") ]
          (List.map (fun (f : Finding.t) -> (f.line, f.id)) kept);
        Alcotest.(check int) "one suppressed" 1 (List.length suppressed));
  ]

(* ---------------------------------------------------------------- D002 -- *)

let d002_tests =
  [
    tc "Sys.time hit (also as a function value)" (fun () ->
        check_ids "both flagged"
          [ (1, "D002"); (2, "D002") ]
          "let f () = Sys.time ()\nlet g = [ Sys.time ]\n");
    tc "Unix.gettimeofday not hit (that is D004's territory)" (fun () ->
        check_ids "clean" [] "let f () = Unix.gettimeofday ()\n");
    tc "attribute suppression" (fun () ->
        check_ids "suppressed" []
          "let cpu_seconds () = (Sys.time () [@lint.allow \"D002\"])\n");
  ]

(* ---------------------------------------------------------------- D004 -- *)

let d004_tests =
  [
    tc "gettimeofday in lib/ hit (also as a function value)" (fun () ->
        check_ids "both flagged" ~filename:"lib/core/search.ml"
          [ (1, "D004"); (2, "D004") ]
          "let f () = Unix.gettimeofday ()\nlet g = [ Unix.gettimeofday ]\n");
    tc "lib/obs/ is the sanctioned home, not hit" (fun () ->
        check_ids "clean" [] ~filename:"lib/obs/obs.ml"
          "let now_s () = Unix.gettimeofday ()\n");
    tc "non-library code (bin/, bench/, test/) not hit" (fun () ->
        let src = "let t0 = fun () -> Unix.gettimeofday ()\n" in
        check_ids "bin clean" [] ~filename:"bin/xia_advise.ml" src;
        check_ids "bench clean" [] ~filename:"bench/main.ml" src;
        check_ids "test clean" [] ~filename:"test/helpers.ml" src);
    tc "relative lib path still applies" (fun () ->
        check_ids "flagged" ~filename:"../lib/optimizer/executor.ml"
          [ (1, "D004") ]
          "let stamp () = Unix.gettimeofday ()\n");
    tc "Obs.now_s not hit" (fun () ->
        check_ids "clean" [] ~filename:"lib/core/benefit.ml"
          "let stamp () = Xia_obs.Obs.now_s ()\n");
    tc "attribute suppression" (fun () ->
        check_ids "suppressed" [] ~filename:"lib/core/par.ml"
          "let raw () = (Unix.gettimeofday () [@lint.allow \"D004\"])\n");
  ]

(* ---------------------------------------------------------------- D003 -- *)

let d003_tests =
  [
    tc "catalog mutation reachable in what-if module" (fun () ->
        let src =
          "let install c defs = Catalog.set_virtual_indexes c defs\n\
           let benefit c defs = install c defs\n"
        in
        let fs = findings ~filename:"lib/core/benefit.ml" src in
        Alcotest.(check (list (pair int string)))
          "one D003 at the call site"
          [ (1, "D003") ]
          (List.map (fun (f : Finding.t) -> (f.line, f.id)) fs);
        let msg = (List.hd fs).Finding.message in
        let has_sub needle =
          let n = String.length needle and m = String.length msg in
          let rec scan i = i + n <= m && (String.sub msg i n = needle || scan (i + 1)) in
          scan 0
        in
        Alcotest.(check bool) "names the mutator" true (has_sub "Catalog.set_virtual_indexes");
        Alcotest.(check bool)
          "lists both entry points" true
          (has_sub "reachable from: benefit, install"));
    tc "same code outside what-if modules not hit" (fun () ->
        check_ids "clean" [] ~filename:"lib/core/search.ml"
          "let install c defs = Catalog.set_virtual_indexes c defs\n");
    tc "warm_stats and reads are allowed" (fun () ->
        check_ids "clean" [] ~filename:"benefit.ml"
          "let prepare c = Catalog.warm_stats c\n\
           let read c = Catalog.stats c \"T\"\n");
    tc "attribute suppression" (fun () ->
        check_ids "suppressed" [] ~filename:"benefit.ml"
          "let install c = (Catalog.drop_all_indexes c [@lint.allow \"D003\"])\n");
  ]

(* ---------------------------------------------------------------- H001 -- *)

let h001_tests =
  [
    tc "ml without mli is flagged; paired ml is not" (fun () ->
        let fs =
          Checks.missing_mli
            ~mls:[ "lib/a/one.ml"; "lib/a/two.ml" ]
            ~mlis:[ "lib/a/one.mli" ]
        in
        Alcotest.(check (list (pair string string)))
          "only two.ml"
          [ ("lib/a/two.ml", "H001") ]
          (List.map (fun (f : Finding.t) -> (f.file, f.id)) fs));
    tc "bin/ and bench/ executables are exempt" (fun () ->
        let fs =
          Checks.missing_mli
            ~mls:[ "bin/xia_advise.ml"; "bench/main.ml"; "lib/a/one.ml" ]
            ~mlis:[]
        in
        Alcotest.(check (list (pair string string)))
          "only the lib module"
          [ ("lib/a/one.ml", "H001") ]
          (List.map (fun (f : Finding.t) -> (f.file, f.id)) fs));
  ]

(* ---------------------------------------------------------------- H002 -- *)

let h002_tests =
  [
    tc "failwith and assert false hit" (fun () ->
        check_ids "both flagged"
          [ (1, "H002"); (2, "H002") ]
          "let f () = failwith \"nope\"\nlet g () = assert false\n");
    tc "assert with a real condition not hit" (fun () ->
        check_ids "clean" [] "let f x = assert (x > 0)\n");
    tc "lint note on the same line suppresses" (fun () ->
        check_ids "suppressed" []
          "let f () = failwith \"nope\" (* lint: caller validated input *)\n");
    tc "lint note on the previous line suppresses" (fun () ->
        check_ids "suppressed" []
          "let f = function\n\
          \  | Some v -> v\n\
          \  (* lint: filtered to Some above *)\n\
          \  | None -> assert false\n");
    tc "attribute suppression" (fun () ->
        check_ids "suppressed" []
          "let f () = (assert false [@lint.allow \"H002\"])\n");
  ]

(* -------------------------------------------------- allow-file parsing -- *)

let allow_file_tests =
  [
    tc "entry with path, line and reason parses" (fun () ->
        match
          Suppress.parse_allow_file ~file:"lint.allow"
            "# comment\n\nD001 lib/core/par.ml:68 -- intentional pool handle\n"
        with
        | Error msgs -> Alcotest.failf "unexpected errors: %s" (String.concat "; " msgs)
        | Ok [ e ] ->
            Alcotest.(check string) "id" "D001" e.Suppress.id;
            Alcotest.(check string) "path" "lib/core/par.ml" e.Suppress.path;
            Alcotest.(check (option int)) "line" (Some 68) e.Suppress.line;
            Alcotest.(check string) "reason" "intentional pool handle" e.Suppress.reason
        | Ok es -> Alcotest.failf "expected one entry, got %d" (List.length es));
    tc "entry without a reason is rejected" (fun () ->
        match Suppress.parse_allow_file ~file:"lint.allow" "D001 lib/core/par.ml\n" with
        | Ok _ -> Alcotest.fail "entry without reason must be an error"
        | Error msgs -> Alcotest.(check int) "one error" 1 (List.length msgs));
    tc "path matches by component suffix" (fun () ->
        let f =
          Finding.make ~file:"../lib/index/index_def.ml" ~line:29 ~col:0 ~id:"D001"
            ~message:"m"
        in
        let e line =
          { Suppress.id = "D001"; path = "lib/index/index_def.ml"; line; reason = "r" }
        in
        Alcotest.(check bool) "any-line entry" true (Suppress.suppresses (e None) f);
        Alcotest.(check bool) "right line" true (Suppress.suppresses (e (Some 29)) f);
        Alcotest.(check bool) "wrong line" false (Suppress.suppresses (e (Some 30)) f);
        Alcotest.(check bool) "wrong id" false
          (Suppress.suppresses { (e None) with Suppress.id = "D002" } f));
  ]

(* ------------------------------------------------------- output format -- *)

let format_tests =
  [
    tc "text format is file:line [ID] message" (fun () ->
        Alcotest.(check string) "text" "a.ml:3 [D001] boom"
          (Finding.to_string
             (Finding.make ~file:"a.ml" ~line:3 ~col:2 ~id:"D001" ~message:"boom")));
    tc "json format is regression-locked" (fun () ->
        let fs =
          [
            Finding.make ~file:"b.ml" ~line:1 ~col:0 ~id:"H001" ~message:"no mli";
            Finding.make ~file:"a.ml" ~line:3 ~col:2 ~id:"D001" ~message:"say \"hi\"";
          ]
        in
        Alcotest.(check string)
          "sorted array, one object per line"
          "[\n\
          \  {\"file\":\"a.ml\",\"line\":3,\"col\":2,\"id\":\"D001\",\"message\":\"say \\\"hi\\\"\"},\n\
          \  {\"file\":\"b.ml\",\"line\":1,\"col\":0,\"id\":\"H001\",\"message\":\"no mli\"}\n\
           ]\n"
          (Finding.list_to_json fs));
    tc "empty json report" (fun () ->
        Alcotest.(check string) "empty array" "[]\n" (Finding.list_to_json []));
    tc "syntax errors are reported, not raised" (fun () ->
        match Lint.lint_source ~filename:"bad.ml" "let let let" with
        | Ok _ -> Alcotest.fail "expected a parse error"
        | Error (e : Lint.error) -> Alcotest.(check string) "path" "bad.ml" e.path);
  ]

(* ------------------------------------------------------ repo self-check -- *)

let self_check_tests =
  [
    tc "repo lib/ is lint-clean under lint.allow" (fun () ->
        let allow =
          match Suppress.load_allow_file "../lint.allow" with
          | Ok entries -> entries
          | Error msgs -> Alcotest.failf "lint.allow: %s" (String.concat "; " msgs)
        in
        Alcotest.(check bool)
          "suppression budget: <= 5 allowlisted entries" true
          (List.length allow <= 5);
        let report = Lint.lint_paths ~allow [ "../lib" ] in
        Alcotest.(check (list string))
          "no analysis errors" []
          (List.map (fun (e : Lint.error) -> e.path ^ ": " ^ e.message) report.errors);
        Alcotest.(check (list string))
          "no findings" []
          (List.map Finding.to_string report.findings));
    tc "repo lib/ is R-clean without any suppression" (fun () ->
        (* The race checks pass on lib/ on their own merits: no allow-file
           entry and no attribute hides an R-series finding. *)
        let report = Lint.lint_paths [ "../lib" ] in
        Alcotest.(check (list string))
          "no R-series findings" []
          (List.filter_map
             (fun (f : Finding.t) ->
               if String.length f.id > 0 && f.id.[0] = 'R' then
                 Some (Finding.to_string f)
               else None)
             report.findings));
    tc "repo lib/ is L/X-clean without any suppression" (fun () ->
        (* Same bar for the flow-sensitive checks: every lock region and
           save/restore in lib/ is exception-safe on its own merits — no
           allow-file entry and no attribute hides an L/X-series finding. *)
        let report = Lint.lint_paths [ "../lib" ] in
        Alcotest.(check (list string))
          "no L/X-series findings" []
          (List.filter_map
             (fun (f : Finding.t) ->
               if String.length f.id > 0 && (f.id.[0] = 'L' || f.id.[0] = 'X')
               then Some (Finding.to_string f)
               else None)
             report.findings));
    tc "injected D001 violation fails the full pipeline" (fun () ->
        (* The acceptance-criteria demonstration: the exact bug class PR 1
           shipped (a toplevel ref on a parallel path) yields a non-empty
           report, which is exactly what makes bin/xia_lint — and with it
           `dune build @lint` — exit non-zero. *)
        let dir = Filename.temp_dir "xia_lint_test" "" in
        let path = Filename.concat dir "injected.ml" in
        Fun.protect
          ~finally:(fun () ->
            if Sys.file_exists path then Sys.remove path;
            Sys.rmdir dir)
          (fun () ->
            Out_channel.with_open_text path (fun oc ->
                output_string oc "let counter = ref 0\n");
            let report = Lint.lint_paths [ dir ] in
            Alcotest.(check (list string))
              "D001 for the global, H001 for the missing mli"
              [ "D001"; "H001" ]
              (List.sort String.compare
                 (List.map (fun (f : Finding.t) -> f.id) report.findings))));
  ]

(* ----------------------------------------- cross-unit call graph cases -- *)

let callgraph_tests =
  [
    tc "cross-unit D003 the per-file analysis provably missed" (fun () ->
        let helpers = "let set c defs = Catalog.set_virtual_indexes c defs\n" in
        let benefit = "let evaluate c defs = Helpers.set c defs\n" in
        (* Either unit alone — the old per-file view — is clean: the mutator
           lives outside the what-if module, and the what-if module only
           calls an opaque sibling. *)
        Alcotest.(check (list string))
          "helpers.ml alone is clean" []
          (List.map
             (fun (f : Finding.t) -> f.id)
             (findings ~filename:"lib/core/helpers.ml" helpers));
        Alcotest.(check (list string))
          "benefit.ml alone is clean" []
          (List.map
             (fun (f : Finding.t) -> f.id)
             (findings ~filename:"lib/core/benefit.ml" benefit));
        with_temp_project
          [ ("helpers.ml", helpers); ("benefit.ml", benefit) ]
          (fun dir ->
            let report = Lint.lint_paths [ dir ] in
            let d003 =
              List.filter (fun (f : Finding.t) -> f.id = "D003") report.findings
            in
            Alcotest.(check int) "whole-program view finds it" 1 (List.length d003);
            let f = List.hd d003 in
            Alcotest.(check string)
              "anchored at the mutator site" "helpers.ml"
              (Filename.basename f.Finding.file);
            Alcotest.(check bool)
              "names the cross-unit entry point" true
              (contains f.Finding.message "Benefit.evaluate")));
    tc "cross-unit R001: Par.map of a function touching another unit's global"
      (fun () ->
        with_temp_project
          [
            ("state.ml", "let counter = ref 0\n");
            ( "worker.ml",
              "let tick _x = State.counter := !State.counter + 1\n\
               let run items = Par.map tick items\n" );
          ]
          (fun dir ->
            let report = Lint.lint_paths [ dir ] in
            let r001 =
              List.filter (fun (f : Finding.t) -> f.id = "R001") report.findings
            in
            Alcotest.(check bool) "flagged" true (r001 <> []);
            let f = List.hd r001 in
            Alcotest.(check string)
              "anchored at the racy access" "worker.ml"
              (Filename.basename f.Finding.file);
            Alcotest.(check bool)
              "names the global and the call path" true
              (contains f.Finding.message "counter"
              && contains f.Finding.message "via tick")));
    tc "callgraph DOT is deterministic and shows the cross-unit edge" (fun () ->
        with_temp_project
          [
            ("helpers.ml", "let set c defs = Catalog.set_virtual_indexes c defs\n");
            ("benefit.ml", "let evaluate c defs = Helpers.set c defs\n");
          ]
          (fun dir ->
            let dot1, errs = Lint.callgraph_dot [ dir ] in
            let dot2, _ = Lint.callgraph_dot [ dir ] in
            Alcotest.(check (list string))
              "no errors" []
              (List.map (fun (e : Lint.error) -> e.message) errs);
            Alcotest.(check string) "deterministic" dot1 dot2;
            Alcotest.(check bool)
              "digraph with both labelled nodes" true
              (contains dot1 "digraph"
              && contains dot1 "benefit.evaluate"
              && contains dot1 "helpers.set")));
  ]

(* ---------------------------------------------------------------- R001 -- *)

let r001_tests =
  [
    tc "closure capturing a raw local ref" (fun () ->
        check_ids "flagged at the reference"
          [ (3, "R001") ]
          "let f items =\n  let acc = ref 0 in\n  Par.iter (fun x -> acc := x) items\n");
    tc "Atomic-wrapped local is clean" (fun () ->
        check_ids "clean" []
          "let f items =\n\
          \  let acc = Atomic.make 0 in\n\
          \  Par.iter (fun _x -> Atomic.incr acc) items\n");
    tc "per-item results are clean" (fun () ->
        check_ids "clean" [] "let f items = Par.map (fun x -> x + 1) items\n");
    tc "named function reaching a toplevel ref, same unit" (fun () ->
        check_ids "D001 for the global, R001 at the access"
          [ (1, "D001"); (2, "R001") ]
          "let table = Hashtbl.create 16\n\
           let record x = Hashtbl.replace table x ()\n\
           let run items = Par.iter record items\n");
    tc "Domain.spawn closure reaching a toplevel Hashtbl" (fun () ->
        check_ids "D001 for the global, R001 at the access"
          [ (1, "D001"); (2, "R001") ]
          "let t = Hashtbl.create 8\n\
           let spawn () = Domain.spawn (fun () -> Hashtbl.clear t)\n");
    tc "Mutex.lock discipline defers to the human" (fun () ->
        (* No R001: the lock covers the access.  The bare lock/unlock pair
           around a may-raise container call is L002's business now. *)
        check_ids "D001 for the raw global, L002 for the bare pair"
          [ (1, "D001"); (3, "L002") ]
          "let table = Hashtbl.create 16\n\
           let m = Mutex.create ()\n\
           let record x = Mutex.lock m; Hashtbl.replace table x (); Mutex.unlock m\n\
           let run items = Par.iter record items\n");
    tc "mutable-field write on a captured record" (fun () ->
        check_ids "flagged"
          [ (2, "R001") ]
          "type t = { mutable count : int }\n\
           let bump t items = Par.iter (fun _x -> t.count <- t.count + 1) items\n");
    tc "attribute suppression at the fan-out site" (fun () ->
        check_ids "suppressed" []
          "let f items =\n\
          \  let acc = ref 0 in\n\
          \  (Par.iter (fun x -> acc := x) items [@lint.allow \"R001\"])\n");
  ]

(* ---------------------------------------------------------------- R002 -- *)

let r002_tests =
  [
    tc "lock-order inversion flagged in both directions" (fun () ->
        check_ids "both sites"
          [ (3, "R002"); (4, "R002") ]
          "let a = Mutex.create ()\n\
           let b = Mutex.create ()\n\
           let f () = Mutex.lock a; Mutex.lock b; Mutex.unlock b; Mutex.unlock a\n\
           let g () = Mutex.lock b; Mutex.lock a; Mutex.unlock a; Mutex.unlock b\n");
    tc "consistent order is clean" (fun () ->
        check_ids "clean" []
          "let a = Mutex.create ()\n\
           let b = Mutex.create ()\n\
           let f () = Mutex.lock a; Mutex.lock b; Mutex.unlock b; Mutex.unlock a\n\
           let g () = Mutex.lock a; Mutex.lock b; Mutex.unlock b; Mutex.unlock a\n");
    tc "re-lock of the same mutex self-deadlocks" (fun () ->
        check_ids "flagged"
          [ (2, "R002") ]
          "let m = Mutex.create ()\nlet f () = Mutex.lock m; Mutex.lock m\n");
    tc "inversion through a callee" (fun () ->
        check_ids "call site and direct site"
          [ (4, "R002"); (5, "R002") ]
          "let a = Mutex.create ()\n\
           let b = Mutex.create ()\n\
           let inner () = Mutex.lock b; Mutex.unlock b\n\
           let outer () = Mutex.lock a; inner (); Mutex.unlock a\n\
           let other () = Mutex.lock b; Mutex.lock a; Mutex.unlock a; Mutex.unlock b\n");
    tc "closure body does not inherit the definition-site lock" (fun () ->
        check_ids "clean" []
          "let a = Mutex.create ()\n\
           let b = Mutex.create ()\n\
           let f () =\n\
          \  Mutex.lock a;\n\
          \  let g () = Mutex.lock b; Mutex.unlock b in\n\
          \  Mutex.unlock a;\n\
          \  g\n\
           let h () = Mutex.lock b; Mutex.lock a; Mutex.unlock a; Mutex.unlock b\n");
    tc "attribute suppression keeps the other direction" (fun () ->
        check_ids "only the unsuppressed site"
          [ (6, "R002") ]
          "let a = Mutex.create ()\n\
           let b = Mutex.create ()\n\
           let f () =\n\
          \  Mutex.lock a; (Mutex.lock b [@lint.allow \"R002\"]);\n\
          \  Mutex.unlock b; Mutex.unlock a\n\
           let g () = Mutex.lock b; Mutex.lock a; Mutex.unlock a; Mutex.unlock b\n");
  ]

(* ---------------------------------------------------------------- R003 -- *)

let r003_tests =
  [
    tc "nested get inside set" (fun () ->
        check_ids "flagged"
          [ (2, "R003") ]
          "let c = Atomic.make 0\nlet bump () = Atomic.set c (Atomic.get c + 1)\n");
    tc "let-bound save/restore idiom is not matched" (fun () ->
        check_ids "clean" []
          "let c = Atomic.make 0\n\
           let bump () = let v = Atomic.get c in Atomic.set c (v + 1)\n");
    tc "get of a different atomic is fine" (fun () ->
        check_ids "clean" []
          "let a = Atomic.make 0\n\
           let b = Atomic.make 0\n\
           let copy () = Atomic.set a (Atomic.get b)\n");
    tc "field-path targets match symbolically" (fun () ->
        check_ids "flagged"
          [ (2, "R003") ]
          "type t = { counter : int Atomic.t }\n\
           let bump t = Atomic.set t.counter (Atomic.get t.counter + 1)\n");
    tc "attribute suppression" (fun () ->
        check_ids "suppressed" []
          "let c = Atomic.make 0\n\
           let bump () = (Atomic.set c (Atomic.get c + 1) [@lint.allow \"R003\"])\n");
  ]

(* ------------------------------------- L001: blocking call under a lock -- *)

let l001_tests =
  [
    tc "IO builtin inside a protected critical section" (fun () ->
        let fs =
          findings
            "let m = Mutex.create ()\n\
             let run () =\n\
            \  Mutex.lock m;\n\
            \  Fun.protect ~finally:(fun () -> Mutex.unlock m)\n\
            \    (fun () -> print_endline \"x\")\n"
        in
        Alcotest.(check (list (pair int string)))
          "flagged at the blocking site"
          [ (5, "L001") ]
          (List.map (fun (f : Finding.t) -> (f.line, f.id)) fs);
        Alcotest.(check bool)
          "names the primitive and the mutex" true
          (contains (List.hd fs).Finding.message "print_endline"
          && contains (List.hd fs).Finding.message "mutex m"));
    tc "optimizer entry inside a protected critical section" (fun () ->
        check_ids "flagged"
          [ (5, "L001") ]
          "let m = Mutex.create ()\n\
           let run c s =\n\
          \  Mutex.lock m;\n\
          \  Fun.protect ~finally:(fun () -> Mutex.unlock m)\n\
          \    (fun () -> Optimizer.optimize c s)\n");
    tc "pure work under the lock is fine" (fun () ->
        check_ids "clean" []
          "let m = Mutex.create ()\n\
           let n = Atomic.make 0\n\
           let bump () =\n\
          \  Mutex.lock m;\n\
          \  Atomic.incr n;\n\
          \  Mutex.unlock m\n");
    tc "IO after the unlock is fine" (fun () ->
        check_ids "clean" []
          "let m = Mutex.create ()\n\
           let n = Atomic.make 0\n\
           let run () =\n\
          \  Mutex.lock m;\n\
          \  Atomic.incr n;\n\
          \  Mutex.unlock m;\n\
          \  print_endline \"done\"\n");
    tc "attribute suppression at the blocking site" (fun () ->
        check_ids "suppressed" []
          "let m = Mutex.create ()\n\
           let run () =\n\
          \  Mutex.lock m;\n\
          \  Fun.protect ~finally:(fun () -> Mutex.unlock m)\n\
          \    (fun () -> (print_endline \"x\" [@lint.allow \"L001\"]))\n");
    tc "cross-unit: blocking only visible through the effect summary" (fun () ->
        let sink = "let log s = print_endline s\n" in
        let worker =
          "let m = Mutex.create ()\n\
           let run () =\n\
          \  Mutex.lock m;\n\
          \  Fun.protect ~finally:(fun () -> Mutex.unlock m)\n\
          \    (fun () -> Sink.log \"x\")\n"
        in
        (* The lock-holding unit alone is clean: [Sink.log] is opaque, so
           nothing marks it as blocking. *)
        Alcotest.(check (list string))
          "worker.ml alone is clean" []
          (List.map (fun (f : Finding.t) -> f.id) (findings ~filename:"worker.ml" worker));
        with_temp_project
          [ ("sink.ml", sink); ("worker.ml", worker) ]
          (fun dir ->
            let report = Lint.lint_paths [ dir ] in
            let l001 =
              List.filter (fun (f : Finding.t) -> f.id = "L001") report.findings
            in
            Alcotest.(check int) "whole-program view finds it" 1 (List.length l001);
            let f = List.hd l001 in
            Alcotest.(check string)
              "anchored at the call under the lock" "worker.ml"
              (Filename.basename f.Finding.file);
            Alcotest.(check bool)
              "names the callee's summary" true
              (contains f.Finding.message "log performs IO")));
  ]

(* ------------------------- L002: lock leaked on an exceptional path ---- *)

let l002_tests =
  [
    tc "opaque call between bare lock and unlock" (fun () ->
        let fs =
          findings
            "let m = Mutex.create ()\n\
             let run f =\n\
            \  Mutex.lock m;\n\
            \  f ();\n\
            \  Mutex.unlock m\n"
        in
        Alcotest.(check (list (pair int string)))
          "flagged at the lock site"
          [ (3, "L002") ]
          (List.map (fun (f : Finding.t) -> (f.line, f.id)) fs);
        Alcotest.(check bool)
          "prescribes Fun.protect over the same mutex" true
          (contains (List.hd fs).Finding.message
             "Fun.protect ~finally:(fun () -> Mutex.unlock m)"));
    tc "explicit raise under the lock" (fun () ->
        check_ids "flagged"
          [ (3, "L002") ]
          "let m = Mutex.create ()\n\
           let run b =\n\
          \  Mutex.lock m;\n\
          \  if b then raise Exit;\n\
          \  Mutex.unlock m\n");
    tc "Fun.protect discharges the lock" (fun () ->
        check_ids "clean" []
          "let m = Mutex.create ()\n\
           let run f =\n\
          \  Mutex.lock m;\n\
          \  Fun.protect ~finally:(fun () -> Mutex.unlock m) f\n");
    tc "total critical section needs no finalizer" (fun () ->
        check_ids "clean" []
          "let m = Mutex.create ()\n\
           let n = Atomic.make 0\n\
           let bump () =\n\
          \  Mutex.lock m;\n\
          \  Atomic.incr n;\n\
          \  Mutex.unlock m\n");
    tc "catch-all try absorbs the exceptional path" (fun () ->
        check_ids "clean" []
          "let m = Mutex.create ()\n\
           let run f =\n\
          \  Mutex.lock m;\n\
          \  (try f () with _ -> ());\n\
          \  Mutex.unlock m\n");
    tc "attribute suppression at the lock site" (fun () ->
        check_ids "suppressed" []
          "let m = Mutex.create ()\n\
           let run f =\n\
          \  (Mutex.lock m [@lint.allow \"L002\"]);\n\
          \  f ();\n\
          \  Mutex.unlock m\n");
  ]

(* ------------------- X001: save/restore skipped on exceptional path ---- *)

let x001_tests =
  [
    tc "atomic save/restore around an opaque call" (fun () ->
        let fs =
          findings
            "let flag = Atomic.make false\n\
             let with_flag f =\n\
            \  let saved = Atomic.get flag in\n\
            \  Atomic.set flag true;\n\
            \  let r = f () in\n\
            \  Atomic.set flag saved;\n\
            \  r\n"
        in
        Alcotest.(check (list (pair int string)))
          "flagged at the save"
          [ (3, "X001") ]
          (List.map (fun (f : Finding.t) -> (f.line, f.id)) fs);
        Alcotest.(check bool)
          "names the saved state and the binding" true
          (contains (List.hd fs).Finding.message "Atomic.get flag"
          && contains (List.hd fs).Finding.message "saved"));
    tc "ref save/restore around an opaque call" (fun () ->
        check_ids "flagged"
          [ (3, "X001") ]
          "let depth = ref 0 [@@lint.allow \"D001\"]\n\
           let deeper f =\n\
          \  let saved = !depth in\n\
          \  depth := saved + 1;\n\
          \  let r = f () in\n\
          \  depth := saved;\n\
          \  r\n");
    tc "restore inside Fun.protect ~finally discharges" (fun () ->
        check_ids "clean" []
          "let flag = Atomic.make false\n\
           let with_flag f =\n\
          \  let saved = Atomic.get flag in\n\
          \  Atomic.set flag true;\n\
          \  Fun.protect ~finally:(fun () -> Atomic.set flag saved) f\n");
    tc "a read with no matching restore is not a save" (fun () ->
        check_ids "clean" []
          "let flag = Atomic.make false\n\
           let peek f =\n\
          \  let v = Atomic.get flag in\n\
          \  f ();\n\
          \  v\n");
    tc "attribute suppression on the saving expression" (fun () ->
        check_ids "suppressed" []
          "let flag = Atomic.make false\n\
           let with_flag f =\n\
          \  let saved = (Atomic.get flag [@lint.allow \"X001\"]) in\n\
          \  Atomic.set flag true;\n\
          \  let r = f () in\n\
          \  Atomic.set flag saved;\n\
          \  r\n");
  ]

(* --------------------- X002: unlock without a lock on this path -------- *)

let x002_tests =
  [
    tc "double unlock" (fun () ->
        let fs =
          findings
            "let m = Mutex.create ()\n\
             let run () =\n\
            \  Mutex.lock m;\n\
            \  Mutex.unlock m;\n\
            \  Mutex.unlock m\n"
        in
        Alcotest.(check (list (pair int string)))
          "flagged at the second unlock"
          [ (5, "X002") ]
          (List.map (fun (f : Finding.t) -> (f.line, f.id)) fs));
    tc "maybe-held joins stay silent; the definite re-unlock fires" (fun () ->
        (* After the branch the lock is only *maybe* held, so the first
           unlock passes; it leaves the lock statically free, so the second
           unlock is a definite error. *)
        check_ids "flagged"
          [ (6, "X002") ]
          "let m = Mutex.create ()\n\
           let n = Atomic.make 0\n\
           let run b =\n\
          \  if b then Mutex.lock m else Atomic.incr n;\n\
          \  Mutex.unlock m;\n\
          \  Mutex.unlock m\n");
    tc "balanced lock/unlock is fine" (fun () ->
        check_ids "clean" []
          "let m = Mutex.create ()\n\
           let n = Atomic.make 0\n\
           let bump () =\n\
          \  Mutex.lock m;\n\
          \  Atomic.incr n;\n\
          \  Mutex.unlock m\n");
    tc "a release helper entered with unknown lock state is not flagged"
      (fun () ->
        (* The caller may well hold the lock; only a *statically* unlocked
           path is an error. *)
        check_ids "clean" []
          "let m = Mutex.create ()\nlet release () = Mutex.unlock m\n");
    tc "attribute suppression at the unlock site" (fun () ->
        check_ids "suppressed" []
          "let m = Mutex.create ()\n\
           let run () =\n\
          \  Mutex.lock m;\n\
          \  Mutex.unlock m;\n\
          \  (Mutex.unlock m [@lint.allow \"X002\"])\n");
  ]

(* ------------------------------------ the deliberately leaking fixture -- *)

let dataflow_fixture_tests =
  [
    tc "one leaking function trips all four checks" (fun () ->
        check_ids "all four"
          [ (4, "L002"); (5, "X001"); (7, "L001"); (11, "X002") ]
          "let m = Mutex.create ()\n\
           let flag = Atomic.make false\n\
           let leak f =\n\
          \  Mutex.lock m;\n\
          \  let saved = Atomic.get flag in\n\
          \  Atomic.set flag true;\n\
          \  print_endline \"working\";\n\
          \  let r = f () in\n\
          \  Atomic.set flag saved;\n\
          \  Mutex.unlock m;\n\
          \  Mutex.unlock m;\n\
          \  r\n");
    tc "each finding is individually suppressible" (fun () ->
        check_ids "all suppressed" []
          "let m = Mutex.create ()\n\
           let flag = Atomic.make false\n\
           let leak f =\n\
          \  (Mutex.lock m [@lint.allow \"L002\"]);\n\
          \  let saved = (Atomic.get flag [@lint.allow \"X001\"]) in\n\
          \  Atomic.set flag true;\n\
          \  (print_endline \"working\" [@lint.allow \"L001\"]);\n\
          \  let r = f () in\n\
          \  Atomic.set flag saved;\n\
          \  Mutex.unlock m;\n\
          \  (Mutex.unlock m [@lint.allow \"X002\"]);\n\
          \  r\n");
  ]

(* ------------------------- qcheck: lock balance vs a path interpreter -- *)

(* A tiny shape language over one mutex, rendered to source and linted; a
   reference interpreter enumerates every execution path and decides
   whether some path exits exceptionally with the lock held — which is
   exactly L002's claim.  This pits the CFG construction (exceptional
   edges, try re-joins, Fun.protect inlining, joins at merges) against an
   independent, obviously-correct semantics. *)
type shape =
  | Nop
  | Lock
  | Unlock
  | Raise
  | Seq of shape * shape
  | If of shape * shape
  | Try of shape * shape
  | Protect of shape * shape  (* body, finally *)

let rec render = function
  | Nop -> "()"
  | Lock -> "Mutex.lock m"
  | Unlock -> "Mutex.unlock m"
  | Raise -> "raise Exit"
  | Seq (a, b) -> Printf.sprintf "(%s; %s)" (render a) (render b)
  | If (a, b) -> Printf.sprintf "(if p then %s else %s)" (render a) (render b)
  | Try (a, b) -> Printf.sprintf "(try %s with _ -> %s)" (render a) (render b)
  | Protect (a, f) ->
      Printf.sprintf "(Fun.protect ~finally:(fun () -> %s) (fun () -> %s))"
        (render f) (render a)

type outcome = Normal | Exc

(* Every (held, outcome) end state reachable by some path. *)
let rec eval s held =
  match s with
  | Nop -> [ (held, Normal) ]
  | Lock -> [ (true, Normal) ]
  | Unlock -> [ (false, Normal) ]
  | Raise -> [ (held, Exc) ]
  | Seq (a, b) ->
      List.concat_map
        (fun (h, o) -> match o with Normal -> eval b h | Exc -> [ (h, Exc) ])
        (eval a held)
  | If (a, b) -> eval a held @ eval b held
  | Try (a, b) ->
      List.concat_map
        (fun (h, o) -> match o with Normal -> [ (h, Normal) ] | Exc -> eval b h)
        (eval a held)
  | Protect (a, f) ->
      List.concat_map
        (fun (h, o) ->
          List.map
            (fun (hf, fo) ->
              (hf, match (o, fo) with Normal, Normal -> Normal | _ -> Exc))
            (eval f h))
        (eval a held)

let shape_gen =
  QCheck.Gen.(
    sized
    @@ fix (fun self n ->
           if n <= 0 then oneofl [ Nop; Lock; Unlock; Raise ]
           else
             frequency
               [
                 (2, oneofl [ Nop; Lock; Unlock; Raise ]);
                 (3, map2 (fun a b -> Seq (a, b)) (self (n / 2)) (self (n / 2)));
                 (1, map2 (fun a b -> If (a, b)) (self (n / 2)) (self (n / 2)));
                 (1, map2 (fun a b -> Try (a, b)) (self (n / 2)) (self (n / 2)));
                 ( 1,
                   map2 (fun a b -> Protect (a, b)) (self (n / 2)) (self (n / 2))
                 );
               ]))

let shape_arbitrary = QCheck.make ~print:render shape_gen

let dataflow_qcheck_tests =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"L002 agrees with the path interpreter" ~count:300
         shape_arbitrary (fun s ->
           let src =
             "let m = Mutex.create ()\nlet run p = " ^ render s ^ "\n"
           in
           let got =
             List.exists
               (fun (f : Finding.t) -> f.id = "L002")
               (findings src)
           in
           let want =
             List.exists (fun (h, o) -> h && o = Exc) (eval s false)
           in
           got = want));
  ]

(* --------------------------------------------- --only/--skip selection -- *)

let select_tests =
  [
    tc "empty filters keep the whole catalog in order" (fun () ->
        Alcotest.(check (result (list string) string))
          "identity"
          (Ok (List.map (fun (c : Checks.check_info) -> c.id) Checks.catalog))
          (Checks.select ~only:[] ~skip:[]));
    tc "only restricts, in catalog order regardless of input order" (fun () ->
        Alcotest.(check (result (list string) string))
          "catalog order"
          (Ok [ "L001"; "X002" ])
          (Checks.select ~only:[ "X002"; "L001" ] ~skip:[]));
    tc "skip removes from the catalog" (fun () ->
        match Checks.select ~only:[] ~skip:[ "D001"; "H001" ] with
        | Error e -> Alcotest.failf "unexpected error: %s" e
        | Ok ids ->
            Alcotest.(check bool)
              "removed" true
              ((not (List.mem "D001" ids)) && not (List.mem "H001" ids));
            Alcotest.(check bool) "kept the rest" true (List.mem "L002" ids));
    tc "skip intersects only" (fun () ->
        Alcotest.(check (result (list string) string))
          "only minus skip"
          (Ok [ "L001" ])
          (Checks.select ~only:[ "L001"; "L002" ] ~skip:[ "L002" ]));
    tc "unknown IDs are an error" (fun () ->
        (match Checks.select ~only:[ "Z999" ] ~skip:[] with
        | Ok _ -> Alcotest.fail "expected an error"
        | Error e -> Alcotest.(check bool) "names the ID" true (contains e "Z999"));
        match Checks.select ~only:[] ~skip:[ "Q000" ] with
        | Ok _ -> Alcotest.fail "expected an error"
        | Error e -> Alcotest.(check bool) "names the ID" true (contains e "Q000"));
  ]

(* ---------------------------------------------- versioned JSON envelope -- *)

let mk_finding ?(file = "a.ml") ?(line = 1) id =
  Finding.make ~file ~line ~col:0 ~id ~message:"m"

let json_report_tests =
  [
    tc "schema version and check catalog header" (fun () ->
        let s = Lint.report_to_json Lint.empty_report in
        Alcotest.(check bool) "version" true (contains s "\"schema_version\": 4");
        Alcotest.(check bool) "catalog has D001" true (contains s "{\"id\": \"D001\"");
        Alcotest.(check bool) "catalog has R003" true (contains s "{\"id\": \"R003\"");
        Alcotest.(check bool) "catalog has E001" true (contains s "{\"id\": \"E001\"");
        Alcotest.(check bool) "catalog has E002" true (contains s "{\"id\": \"E002\"");
        Alcotest.(check bool) "catalog has N001" true (contains s "{\"id\": \"N001\"");
        Alcotest.(check bool) "catalog has N002" true (contains s "{\"id\": \"N002\"");
        Alcotest.(check bool) "catalog has L001" true (contains s "{\"id\": \"L001\"");
        Alcotest.(check bool) "catalog has L002" true (contains s "{\"id\": \"L002\"");
        Alcotest.(check bool) "catalog has X001" true (contains s "{\"id\": \"X001\"");
        Alcotest.(check bool) "catalog has X002" true (contains s "{\"id\": \"X002\"");
        Alcotest.(check bool) "empty findings" true (contains s "\"findings\": []");
        Alcotest.(check bool)
          "empty suppression block" true
          (contains s "\"suppressed\": {\"total\": 0, \"by_id\": {}}");
        Alcotest.(check bool) "empty errors" true (contains s "\"errors\": []"));
    tc "an --only filter shrinks the checks array" (fun () ->
        let s = Lint.report_to_json ~only:[ "L001"; "X002" ] Lint.empty_report in
        Alcotest.(check bool) "kept L001" true (contains s "{\"id\": \"L001\"");
        Alcotest.(check bool) "kept X002" true (contains s "{\"id\": \"X002\"");
        Alcotest.(check bool) "dropped D001" false (contains s "{\"id\": \"D001\"");
        Alcotest.(check bool) "dropped L002" false (contains s "{\"id\": \"L002\"");
        let il = index_of s "{\"id\": \"L001\"" and ix = index_of s "{\"id\": \"X002\"" in
        Alcotest.(check bool) "catalog order preserved" true (il >= 0 && il < ix));
    tc "parse errors are part of the envelope" (fun () ->
        let r =
          {
            Lint.findings = [];
            suppressed = [];
            errors = [ { Lint.path = "x.ml"; message = "boom" } ];
          }
        in
        Alcotest.(check bool)
          "one compact error object" true
          (contains (Lint.report_to_json r) "{\"path\":\"x.ml\",\"message\":\"boom\"}"));
    tc "findings are emitted sorted regardless of input order" (fun () ->
        let r =
          {
            Lint.findings = [ mk_finding ~file:"b.ml" ~line:9 "R001"; mk_finding "D001" ];
            suppressed = [];
            errors = [];
          }
        in
        let s = Lint.report_to_json r in
        let ia = index_of s "\"a.ml\"" and ib = index_of s "\"b.ml\"" in
        Alcotest.(check bool) "both present" true (ia >= 0 && ib >= 0);
        Alcotest.(check bool) "a.ml before b.ml" true (ia < ib));
    tc "per-ID suppressed counts" (fun () ->
        let r =
          {
            Lint.findings = [];
            suppressed =
              [ mk_finding "D001"; mk_finding ~line:2 "D001"; mk_finding ~line:3 "R001" ];
            errors = [];
          }
        in
        Alcotest.(check bool)
          "totals and per-ID map" true
          (contains (Lint.report_to_json r)
             "\"suppressed\": {\"total\": 3, \"by_id\": {\"D001\": 2, \"R001\": 1}}"));
    tc "byte-stable across runs" (fun () ->
        let r =
          { Lint.findings = [ mk_finding "D002" ]; suppressed = []; errors = [] }
        in
        Alcotest.(check string) "identical" (Lint.report_to_json r)
          (Lint.report_to_json r));
    tc "every catalog entry has --explain metadata" (fun () ->
        List.iter
          (fun (c : Checks.check_info) ->
            Alcotest.(check bool) c.id true
              (String.length c.detail > 40 && Checks.find_check c.id = Some c))
          Checks.catalog);
    tc "unknown check ID has no metadata" (fun () ->
        Alcotest.(check bool) "none" true (Checks.find_check "Z999" = None));
  ]

(* ---------------------------------------------------------------- N001 -- *)

let n001_tests =
  [
    tc "hashtbl fold building a list in library code" (fun () ->
        let fs =
          findings ~filename:"lib/storage/store.ml"
            "let ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t []\n"
        in
        Alcotest.(check (list (pair int string)))
          "flagged at the fold"
          [ (1, "N001") ]
          (List.map (fun (f : Finding.t) -> (f.line, f.id)) fs);
        Alcotest.(check bool)
          "prescribes the sort" true
          (contains (List.hd fs).Finding.message "List.sort"));
    tc "canonicalizing sort in the same binding is the fix" (fun () ->
        check_ids "clean" [] ~filename:"lib/storage/store.ml"
          "let ids t = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t [])\n");
    tc "non-library code not hit" (fun () ->
        check_ids "clean" [] ~filename:"bin/tool.ml"
          "let ids t = Hashtbl.fold (fun id _ acc -> id :: acc) t []\n");
    tc "attribute suppression" (fun () ->
        check_ids "suppressed" [] ~filename:"lib/storage/store.ml"
          "let ids t = (Hashtbl.fold (fun id _ acc -> id :: acc) t [] [@lint.allow \"N001\"])\n");
  ]

(* ---------------------------------------------------------------- N002 -- *)

let n002_tests =
  [
    tc "float fold over a parallel map" (fun () ->
        let fs =
          findings ~filename:"lib/core/eval.ml"
            "let total f items =\n\
            \  List.fold_left ( +. ) 0.0 (Par.map_list ~domains:2 f items)\n"
        in
        Alcotest.(check (list (pair int string)))
          "flagged at the fold"
          [ (2, "N002") ]
          (List.map (fun (f : Finding.t) -> (f.line, f.id)) fs);
        Alcotest.(check bool)
          "prescribes the sanctioned helper" true
          (contains (List.hd fs).Finding.message "Par.sum_list"));
    tc "Par.sum_list is the sanctioned reduction" (fun () ->
        check_ids "clean" [] ~filename:"lib/core/eval.ml"
          "let total f items = Par.sum_list ~domains:2 f items\n");
    tc "float fold with no fan-out nearby is fine" (fun () ->
        check_ids "clean" [] ~filename:"lib/core/eval.ml"
          "let total xs = List.fold_left ( +. ) 0.0 xs\n");
    tc "float accumulation escaping into a parallel task" (fun () ->
        let fs =
          ids ~filename:"lib/core/eval.ml"
            "type t = { mutable sum : float }\n\
             let add t items = Par.iter (fun x -> t.sum <- t.sum +. x) items\n"
        in
        (* The same write is also a cross-domain race; both diagnoses stand. *)
        Alcotest.(check bool) "N002 at the accumulation" true
          (List.mem (2, "N002") fs);
        Alcotest.(check bool) "R001 too" true (List.mem (2, "R001") fs));
    tc "attribute suppression on the binding" (fun () ->
        check_ids "suppressed" [] ~filename:"lib/core/eval.ml"
          "let total f items =\n\
          \  List.fold_left ( +. ) 0.0 (Par.map_list ~domains:2 f items)\n\
          \  [@@lint.allow \"N002\"]\n");
  ]

(* ---------------------------------------------------------------- E001 -- *)

let e001_tests =
  [
    tc "print in library code" (fun () ->
        let fs =
          findings ~filename:"lib/core/report.ml" "let show x = print_endline x\n"
        in
        Alcotest.(check (list (pair int string)))
          "flagged at the IO site"
          [ (1, "E001") ]
          (List.map (fun (f : Finding.t) -> (f.line, f.id)) fs);
        Alcotest.(check bool)
          "names the primitive" true
          (contains (List.hd fs).Finding.message "print_endline"));
    tc "lib/obs and the persistence module are sanctioned" (fun () ->
        check_ids "obs clean" [] ~filename:"lib/obs/obs.ml"
          "let show x = print_endline x\n";
        check_ids "persist clean" [] ~filename:"lib/storage/persist.ml"
          "let save x = print_endline x\n");
    tc "bin/ and bench/ are outside the boundary" (fun () ->
        check_ids "bin clean" [] ~filename:"bin/tool.ml"
          "let show x = print_endline x\n";
        check_ids "bench clean" [] ~filename:"bench/main.ml"
          "let show x = print_endline x\n");
    tc "attribute suppression" (fun () ->
        check_ids "suppressed" [] ~filename:"lib/core/report.ml"
          "let show x = (print_endline x [@lint.allow \"E001\"])\n");
  ]

(* ---------------------------------------------------------------- E002 -- *)

let e002_tests =
  [
    tc "shared write reachable from optimize_batch" (fun () ->
        let fs =
          findings ~filename:"lib/optimizer/optimizer.ml"
            "let bump tbl k = Hashtbl.replace tbl k ()\n\
             let optimize_batch tbl stmts = List.map (fun s -> bump tbl s; s) stmts\n"
        in
        Alcotest.(check (list (pair int string)))
          "flagged at the write"
          [ (1, "E002") ]
          (List.map (fun (f : Finding.t) -> (f.line, f.id)) fs);
        Alcotest.(check bool)
          "names the batch root" true
          (contains (List.hd fs).Finding.message "optimize_batch"));
    tc "warm_stats is a sanctioned sink" (fun () ->
        check_ids "clean" [] ~filename:"lib/optimizer/optimizer.ml"
          "let warm_stats tbl = Hashtbl.replace tbl 0 ()\n\
           let optimize_batch tbl stmts = warm_stats tbl; stmts\n");
    tc "no finding without a batch root" (fun () ->
        check_ids "clean" [] ~filename:"lib/optimizer/optimizer.ml"
          "let bump tbl k = Hashtbl.replace tbl k ()\nlet run tbl s = bump tbl s\n");
    tc "per-call local containers are exempt" (fun () ->
        check_ids "clean" [] ~filename:"lib/optimizer/optimizer.ml"
          "let optimize_batch stmts =\n\
          \  let q = Queue.create () in\n\
          \  List.iter (fun s -> Queue.add s q) stmts;\n\
          \  Queue.length q\n");
    tc "attribute suppression at the write site" (fun () ->
        check_ids "suppressed" [] ~filename:"lib/optimizer/optimizer.ml"
          "let bump tbl k = (Hashtbl.replace tbl k () [@lint.allow \"E002\"])\n\
           let optimize_batch tbl stmts = List.map (fun s -> bump tbl s; s) stmts\n");
  ]

(* -------------------------------------------------- effect summaries ---- *)

let effects_tests =
  [
    tc "golden per-binding summaries for a benefit-like slice" (fun () ->
        with_temp_project
          [
            ( "slice.ml",
              "let log s = print_endline s\n\
               let choose tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n\
               let total f xs = List.fold_left ( +. ) 0.0 (List.map f xs)\n\
               let install c = Catalog.set_virtual_indexes c []\n\
               let run c tbl = log \"go\"; install c; List.length (choose tbl)\n" );
          ]
          (fun dir ->
            let dump, errs = Lint.effects_dump [ dir ] in
            Alcotest.(check (list string))
              "no errors" []
              (List.map (fun (e : Lint.error) -> e.message) errs);
            let p = Filename.concat dir "slice.ml" in
            Alcotest.(check string) "exact summary dump"
              (String.concat ""
                 [
                   p ^ " choose: local=OrderDependent total=OrderDependent\n";
                   p ^ " install: local=WritesMutable total=WritesMutable\n";
                   p ^ " log: local=PerformsIO total=PerformsIO\n";
                   p ^ " run: local=Pure total=WritesMutable,PerformsIO,OrderDependent\n";
                   p ^ " total: local=Pure total=Pure\n";
                 ])
              dump));
    tc "dump is byte-deterministic" (fun () ->
        with_temp_project
          [
            ("a.ml", "let f () = B.g ()\n");
            ("b.ml", "let g () = print_string \"x\"\nlet h t = Hashtbl.clear t\n");
          ]
          (fun dir ->
            let d1, _ = Lint.effects_dump [ dir ] in
            let d2, _ = Lint.effects_dump [ dir ] in
            Alcotest.(check string) "identical" d1 d2));
    tc "IO propagates across units" (fun () ->
        with_temp_project
          [
            ("sink.ml", "let log s = print_endline s\n");
            ("driver.ml", "let run () = Sink.log \"x\"\n");
          ]
          (fun dir ->
            let dump, _ = Lint.effects_dump [ dir ] in
            Alcotest.(check bool)
              "driver picks up the callee's IO" true
              (contains dump "driver.ml run: local=Pure total=PerformsIO")));
    tc "order-dependence propagates through cross-unit recursion" (fun () ->
        with_temp_project
          [
            ("store.ml", "let ids tbl = Hashtbl.fold (fun k _ acc -> k :: acc) tbl []\n");
            ( "top.ml",
              "let rec pick tbl n = if n = 0 then Store.ids tbl else pick tbl (n - 1)\n"
            );
          ]
          (fun dir ->
            let dump, _ = Lint.effects_dump [ dir ] in
            Alcotest.(check bool)
              "fixpoint reaches through the recursive binding" true
              (contains dump "top.ml pick: local=Pure total=OrderDependent")));
  ]

let suites =
  [
    ("lint.d001", d001_tests);
    ("lint.d002", d002_tests);
    ("lint.d003", d003_tests);
    ("lint.d004", d004_tests);
    ("lint.h001", h001_tests);
    ("lint.h002", h002_tests);
    ("lint.callgraph", callgraph_tests);
    ("lint.r001", r001_tests);
    ("lint.r002", r002_tests);
    ("lint.r003", r003_tests);
    ("lint.l001", l001_tests);
    ("lint.l002", l002_tests);
    ("lint.x001", x001_tests);
    ("lint.x002", x002_tests);
    ("lint.dataflow_fixture", dataflow_fixture_tests);
    ("lint.dataflow_qcheck", dataflow_qcheck_tests);
    ("lint.select", select_tests);
    ("lint.n001", n001_tests);
    ("lint.n002", n002_tests);
    ("lint.e001", e001_tests);
    ("lint.e002", e002_tests);
    ("lint.effects", effects_tests);
    ("lint.allow_file", allow_file_tests);
    ("lint.format", format_tests);
    ("lint.json_report", json_report_tests);
    ("lint.self_check", self_check_tests);
  ]
