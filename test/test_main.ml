(* Test entry point: every suite from every module. *)

let () =
  Random.self_init ();
  Alcotest.run "xia"
    (Test_xml.suites @ Test_xpath.suites @ Test_pattern.suites
   @ Test_storage.suites @ Test_index.suites @ Test_query.suites
   @ Test_optimizer.suites @ Test_executor.suites @ Test_generalize.suites
   @ Test_advisor.suites @ Test_workload.suites @ Test_integration.suites
   @ Test_histogram.suites @ Test_sqlxml.suites @ Test_persist.suites @ Test_fuzz.suites
   @ Test_disjunction.suites @ Test_adversarial.suites @ Test_par.suites
   @ Test_perf.suites @ Test_batch.suites @ Test_lint.suites @ Test_obs.suites
   @ Test_summary.suites @ Test_eval.suites)
