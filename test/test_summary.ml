(* Workload compression (Workload_summary) and upper-bound pruning tests.

   - Differential: on duplicate-heavy workloads (cost-homogeneous clusters)
     the compressed advisor recommends exactly the raw advisor's indexes,
     across benchmarks and domain counts.
   - Bounded regret: on a heterogeneous workload (same signatures, different
     constants) the compressed recommendation's true estimated cost stays
     close to the raw recommendation's.
   - Clustering determinism: the signature partition is a stable,
     permutation-insensitive function of the workload.
   - Pruning soundness: every pruned search returns the same outcome as its
     unpruned twin, and the pruned counter actually fires at scale. *)

module A = Xia_advisor.Advisor
module B = Xia_advisor.Benefit
module C = Xia_advisor.Candidate
module S = Xia_advisor.Search
module En = Xia_advisor.Enumeration
module WS = Xia_advisor.Workload_summary
module Cat = Xia_index.Catalog
module W = Xia_workload.Workload
module Synthetic = Xia_workload.Synthetic

let tc name f = Alcotest.test_case name `Quick f

let xmark_catalog =
  lazy
    (let catalog = Cat.create () in
     Xia_workload.Xmark.load ~scale:Xia_workload.Xmark.tiny_scale ~seed:7 catalog;
     catalog)

(* [k] literal copies of every item (fresh labels, same statement value and
   frequency): every cluster is cost-homogeneous by construction. *)
let dup k (wl : W.t) =
  List.concat_map
    (fun (it : W.item) ->
      List.init k (fun i ->
          { it with W.label = Printf.sprintf "%s#%d" it.W.label i }))
    wl

let defs_of (r : A.recommendation) =
  List.map
    (fun (c : C.t) -> Xia_index.Index_def.logical_key c.C.def)
    r.A.outcome.S.config

(* ---------- differential: compressed == raw on homogeneous clusters ------- *)

let differential_case (name, catalog, wl) =
  tc (name ^ ": compressed = raw on duplicate-heavy workload") (fun () ->
      let catalog = Lazy.force catalog in
      let wl = dup 4 wl in
      List.iter
        (fun domains ->
          List.iter
            (fun alg ->
              let budget = 512 * 1024 in
              let raw =
                A.advise ~domains ~compress:false catalog wl ~budget alg
              in
              let comp =
                A.advise ~domains ~compress:true catalog wl ~budget alg
              in
              let label what =
                Printf.sprintf "%s/%s/domains=%d %s" name
                  (A.algorithm_name alg) domains what
              in
              Alcotest.(check bool)
                (label "compressed flag") true comp.A.summary.WS.compressed;
              Alcotest.(check bool)
                (label "fewer clusters") true
                (comp.A.summary.WS.cluster_count
                < comp.A.summary.WS.statements);
              Alcotest.(check (list string))
                (label "identical indexes") (defs_of raw) (defs_of comp);
              Alcotest.(check int)
                (label "identical size") raw.A.outcome.S.size
                comp.A.outcome.S.size)
            [ A.Greedy; A.Greedy_heuristics; A.Top_down_full ])
        [ 1; 4 ])

let differential_fixtures =
  [
    ("tpox", Helpers.shared_catalog, Xia_workload.Tpox.workload ());
    ("xmark", xmark_catalog, Xia_workload.Xmark.workload ());
  ]

let synthetic_differential =
  tc "synthetic: compressed = raw on duplicate-heavy workload" (fun () ->
      let catalog = Lazy.force Helpers.shared_catalog in
      let wl =
        dup 4
          (Synthetic.workload ~seed:13 catalog (Cat.table_names catalog) 10)
      in
      List.iter
        (fun domains ->
          let budget = 512 * 1024 in
          let raw =
            A.advise ~domains ~compress:false catalog wl ~budget A.Greedy
          in
          let comp =
            A.advise ~domains ~compress:true catalog wl ~budget A.Greedy
          in
          Alcotest.(check (list string))
            (Printf.sprintf "identical indexes (domains=%d)" domains)
            (defs_of raw) (defs_of comp))
        [ 1; 4 ])

(* ---------- bounded regret on a heterogeneous workload ------------------- *)

(* Random synthetic queries repeat paths with different constants: clusters
   form (shared signatures) but per-member costs differ, so the compressed
   recommendation may legitimately deviate.  Its TRUE estimated cost over
   the SOURCE workload must still land close to the raw recommendation's,
   and must never be worse than recommending nothing. *)
let bounded_regret =
  tc "heterogeneous workload: bounded regret" (fun () ->
      let catalog = Lazy.force Helpers.shared_catalog in
      let wl =
        Synthetic.skewed_workload ~seed:5 ~alpha:0.9 ~distinct:12 catalog
          (Cat.table_names catalog) 60
      in
      let budget = 256 * 1024 in
      let raw = A.advise ~domains:1 ~compress:false catalog wl ~budget A.Greedy in
      let comp = A.advise ~domains:1 ~compress:true catalog wl ~budget A.Greedy in
      let cost defs = A.estimated_workload_cost catalog wl defs in
      let base = cost [] in
      let raw_cost = cost (A.indexes raw) in
      let comp_cost = cost (A.indexes comp) in
      Alcotest.(check bool) "raw improves" true (raw_cost <= base);
      Alcotest.(check bool) "compressed improves" true (comp_cost <= base);
      Alcotest.(check bool)
        (Printf.sprintf "regret bounded (raw %.1f, compressed %.1f)" raw_cost
           comp_cost)
        true
        (comp_cost <= raw_cost *. 1.25))

(* ---------- clustering determinism --------------------------------------- *)

(* The partition (as a set of member-label sets) must be identical across
   repeated runs and across input permutations; domain counts cannot touch
   it (clustering is a pure sequential pass).  First-occurrence cluster
   ORDER tracks the permuted input, so only the partition is compared. *)
let qcheck_clustering =
  QCheck.Test.make ~count:8
    ~name:"signature clustering is deterministic and permutation-insensitive"
    QCheck.(make Gen.(int_range 1 1000))
    (fun seed ->
      let catalog = Lazy.force Helpers.shared_catalog in
      let wl =
        Synthetic.skewed_workload ~seed ~distinct:8 catalog
          (Cat.table_names catalog) 24
      in
      let partition wl =
        let s = WS.compress catalog wl in
        let items = Array.of_list wl in
        WS.members s
        |> List.map (fun members ->
               List.sort compare
                 (List.map (fun i -> items.(i).W.label) members))
        |> List.sort compare
      in
      let rng = Random.State.make [| seed + 17 |] in
      let shuffled =
        wl
        |> List.map (fun it -> (Random.State.bits rng, it))
        |> List.sort (fun (a, _) (b, _) -> compare a b)
        |> List.map snd
      in
      let p = partition wl in
      p = partition wl && p = partition shuffled)

(* ---------- pruning soundness -------------------------------------------- *)

let config_ids (o : S.outcome) =
  List.map (fun (c : C.t) -> c.C.id) o.S.config

let prune_case (name, catalog, wl) =
  tc (name ^ ": prune on = prune off") (fun () ->
      let catalog = Lazy.force catalog in
      let set = En.candidates catalog wl in
      let budget =
        let ev = B.create ~domains:1 catalog wl in
        (S.all_index ev set).S.size / 2
      in
      List.iter
        (fun (sname, search) ->
          let run prune =
            let ev = B.create ~domains:1 catalog wl in
            search ~prune ev set ~budget
          in
          let on = run true and off = run false in
          Alcotest.(check (list int))
            (sname ^ " config") (config_ids off) (config_ids on);
          Alcotest.(check int) (sname ^ " size") off.S.size on.S.size;
          Alcotest.(check bool)
            (sname ^ " benefit") true
            (Float.equal off.S.benefit on.S.benefit);
          Alcotest.(check int) (sname ^ " off pruned nothing") 0 off.S.pruned)
        [
          ("greedy", fun ~prune ev set ~budget -> S.greedy ~prune ev set ~budget);
          ( "top-down lite",
            fun ~prune ev set ~budget -> S.top_down_lite ~prune ev set ~budget );
          ( "top-down full",
            fun ~prune ev set ~budget -> S.top_down_full ~prune ev set ~budget );
        ])

let prune_fixtures =
  [
    ("tpox", Helpers.shared_catalog, Xia_workload.Tpox.workload ());
    ("xmark", xmark_catalog, Xia_workload.Xmark.workload ());
    ( "tpox+synthetic",
      Helpers.shared_catalog,
      Xia_workload.Tpox.workload ()
      @ Synthetic.workload ~seed:11
          (Lazy.force Helpers.shared_catalog)
          (Cat.table_names (Lazy.force Helpers.shared_catalog))
          8 );
  ]

let pruned_counter_fires =
  tc "pruned counter strictly positive at scale" (fun () ->
      let catalog = Lazy.force Helpers.shared_catalog in
      let wl =
        Synthetic.skewed_workload ~seed:31 ~distinct:24 catalog
          (Cat.table_names catalog) 2000
      in
      (* Above the auto threshold: compression must kick in unforced. *)
      let r = A.advise ~domains:1 catalog wl ~budget:(256 * 1024) A.Greedy in
      Alcotest.(check bool) "auto-compressed" true r.A.summary.WS.compressed;
      Alcotest.(check int) "statements" 2000 r.A.summary.WS.statements;
      Alcotest.(check bool)
        "clusters bounded by templates" true
        (r.A.summary.WS.cluster_count <= 24);
      Alcotest.(check bool)
        (Printf.sprintf "pruned > 0 (got %d)" r.A.outcome.S.pruned)
        true
        (r.A.outcome.S.pruned > 0))

let summary_tests =
  List.map differential_case differential_fixtures
  @ [ synthetic_differential; bounded_regret ]

(* The eval harness's prune plumbing: quality scores are bit-identical with
   pruning on and off — only per-algorithm optimizer-call counts may
   differ.  Extends the search-level prune twins above to the whole
   regret/validation pipeline (and, via Advisor.run_search, covers the new
   ?prune plumbing on the advisor API). *)
let prune_eval_path =
  tc "eval path: prune on = prune off (regret bit-for-bit)" (fun () ->
      let module Eval = Xia_eval.Eval in
      let spec =
        List.filter (fun s -> s.Eval.s_name = "tpox-small") Eval.default_specs
      in
      let run prune = Eval.run ~domains:1 ~prune ~small:true spec in
      let on = run true and off = run false in
      List.iter2
        (fun (a : Eval.case_result) (b : Eval.case_result) ->
          Alcotest.(check string) "case" a.Eval.r_case b.Eval.r_case;
          Alcotest.(check bool)
            "spearman" true
            (Float.equal a.Eval.r_spearman b.Eval.r_spearman);
          List.iter2
            (fun (x : Eval.entry) (y : Eval.entry) ->
              let label =
                Printf.sprintf "%s/%.2f/%s" x.Eval.e_case x.Eval.e_frac
                  x.Eval.e_algorithm
              in
              Alcotest.(check string) (label ^ " alg") x.Eval.e_algorithm
                y.Eval.e_algorithm;
              Alcotest.(check bool)
                (label ^ " regret") true
                (Float.equal x.Eval.e_regret y.Eval.e_regret);
              Alcotest.(check bool)
                (label ^ " benefit") true
                (Float.equal x.Eval.e_benefit y.Eval.e_benefit);
              Alcotest.(check int) (label ^ " rank") x.Eval.e_rank y.Eval.e_rank)
            a.Eval.r_entries b.Eval.r_entries)
        on off)

(* ?prune on the one-shot advisor API: pruned and unpruned twins recommend
   identical indexes, and prune:false really probes everything. *)
let prune_advise_api =
  tc "Advisor.advise ?prune twins agree" (fun () ->
      let catalog = Lazy.force Helpers.shared_catalog in
      let wl = Xia_workload.Tpox.workload () in
      let budget = 256 * 1024 in
      List.iter
        (fun alg ->
          let run prune =
            A.advise ~prune ~domains:1 ~compress:false catalog wl ~budget alg
          in
          let on = run true and off = run false in
          Alcotest.(check (list string))
            (A.algorithm_name alg ^ " indexes") (defs_of off) (defs_of on);
          Alcotest.(check int)
            (A.algorithm_name alg ^ " off pruned nothing") 0
            off.A.outcome.S.pruned)
        [ A.Greedy; A.Top_down_lite; A.Top_down_full ])

let prune_tests =
  List.map prune_case prune_fixtures
  @ [ pruned_counter_fires; prune_eval_path; prune_advise_api ]

let suites =
  [
    ("summary.differential", summary_tests);
    ("summary.pruning", prune_tests);
    Helpers.qsuite "summary.qcheck" [ qcheck_clustering ];
  ]
