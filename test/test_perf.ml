(* Differential suites for the sublinear matching machinery: the trie walk
   against the linear NFA oracle on fuzzed data, interner determinism and
   uniqueness (including under concurrent interning from several domains),
   and the sharded sub-configuration cache against a sequential evaluator. *)

module Pattern = Xia_xpath.Pattern
module Interner = Xia_xpath.Interner
module Path_stats = Xia_storage.Path_stats
module Doc_store = Xia_storage.Doc_store
module Catalog = Xia_index.Catalog
module Index_def = Xia_index.Index_def
module Candidate = Xia_advisor.Candidate
module Benefit = Xia_advisor.Benefit
module Enumeration = Xia_advisor.Enumeration

let tc name f = Alcotest.test_case name `Quick f

let keys infos = List.map (fun (i : Path_stats.path_info) -> i.Path_stats.path_key) infos

(* ---------------- trie walk ≡ linear filter ---------------- *)

let stats_of_docs docs =
  let store = Doc_store.create "FUZZ" in
  List.iter (fun d -> ignore (Doc_store.insert store d)) docs;
  Path_stats.collect store

let trie_tests =
  [
    tc "matching equals the linear oracle on the tiny TPoX tables" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        List.iter
          (fun table ->
            let stats = Catalog.stats catalog table in
            List.iter
              (fun s ->
                let p = Helpers.pattern s in
                Alcotest.(check (list string))
                  (Printf.sprintf "%s ~ %s" table s)
                  (keys (Path_stats.matching_linear stats p))
                  (keys (Path_stats.matching stats p)))
              [
                "/Security/Symbol"; "/Security//*"; "//Yield"; "/Security/SecInfo/*/Sector";
                "//@id"; "/*"; "//*"; "/Nothing/Here"; "//Price/LastTrade";
              ])
          (Catalog.table_names catalog));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200 ~name:"trie matching ≡ linear matching (fuzzed)"
         (QCheck.pair
            (QCheck.make
               ~print:(fun ds -> String.concat "\n" (List.map Xia_xml.Printer.to_string ds))
               QCheck.Gen.(list_size (int_range 1 8) Helpers.doc_gen))
            Helpers.pattern_arbitrary)
         (fun (docs, pat) ->
           let stats = stats_of_docs docs in
           keys (Path_stats.matching stats pat)
           = keys (Path_stats.matching_linear stats pat)));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:200
         ~name:"matching is stable across repeated (cached) calls"
         (QCheck.pair
            (QCheck.make
               ~print:(fun ds -> String.concat "\n" (List.map Xia_xml.Printer.to_string ds))
               QCheck.Gen.(list_size (int_range 1 5) Helpers.doc_gen))
            Helpers.pattern_arbitrary)
         (fun (docs, pat) ->
           let stats = stats_of_docs docs in
           let first = keys (Path_stats.matching stats pat) in
           let second = keys (Path_stats.matching stats pat) in
           first = second));
  ]

(* ---------------- interner ---------------- *)

let interner_tests =
  [
    tc "intern is idempotent and injective" (fun () ->
        let t : string Interner.t = Interner.create () in
        let a = Interner.intern t "alpha" in
        let b = Interner.intern t "beta" in
        Alcotest.(check int) "same value, same id" a (Interner.intern t "alpha");
        Alcotest.(check bool) "distinct values, distinct ids" true (a <> b);
        Alcotest.(check string) "value round-trips" "alpha" (Interner.value t a);
        Alcotest.(check (option int)) "find sees interned" (Some b) (Interner.find t "beta");
        Alcotest.(check (option int)) "find misses fresh" None (Interner.find t "gamma");
        Alcotest.(check int) "size counts distinct" 2 (Interner.size t));
    tc "concurrent interning from several domains is consistent" (fun () ->
        let t : string Interner.t = Interner.create () in
        let labels = Array.init 200 (fun i -> Printf.sprintf "label-%d" (i mod 83)) in
        let workers =
          List.init 4 (fun _ ->
              Domain.spawn (fun () -> Array.map (Interner.intern t) labels))
        in
        let maps = List.map Domain.join workers in
        (* Every domain observed the same value→id mapping... *)
        List.iter
          (fun ids -> Alcotest.(check bool) "identical maps" true (ids = List.hd maps))
          maps;
        (* ...ids are dense and unique per distinct value... *)
        Alcotest.(check int) "83 distinct labels" 83 (Interner.size t);
        (* ...and every id resolves back to its string. *)
        Array.iteri
          (fun i id ->
            Alcotest.(check string) "round-trip" labels.(i) (Interner.value t id))
          (List.hd maps));
    tc "pattern ids agree with structural equality" (fun () ->
        let p1 = Helpers.pattern "/Security/Symbol" in
        let p2 = Helpers.pattern "/Security/Symbol" in
        let p3 = Helpers.pattern "//Symbol" in
        Alcotest.(check int) "equal patterns share an id" (Pattern.id p1) (Pattern.id p2);
        Alcotest.(check bool) "distinct patterns differ" true (Pattern.id p1 <> Pattern.id p3));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~count:300 ~name:"Pattern.id equal iff Pattern.equal (fuzzed)"
         (QCheck.pair Helpers.pattern_arbitrary Helpers.pattern_arbitrary)
         (fun (p1, p2) ->
           Bool.equal (Pattern.equal p1 p2) (Pattern.id p1 = Pattern.id p2)));
    tc "logical_id agrees with logical_key" (fun () ->
        let def table pat dtype =
          Index_def.make ~table ~pattern:(Helpers.pattern pat) ~dtype ()
        in
        let pairs =
          [
            (def "T" "/a/b" Index_def.Dstring, def "T" "/a/b" Index_def.Dstring, true);
            (def "T" "/a/b" Index_def.Dstring, def "T" "/a/b" Index_def.Ddouble, false);
            (def "T" "/a/b" Index_def.Dstring, def "U" "/a/b" Index_def.Dstring, false);
            (def "T" "/a/b" Index_def.Dstring, def "T" "//b" Index_def.Dstring, false);
          ]
        in
        List.iter
          (fun (a, b, same) ->
            Alcotest.(check bool)
              (Index_def.logical_key a ^ " vs " ^ Index_def.logical_key b)
              same
              (Index_def.logical_id a = Index_def.logical_id b))
          pairs);
    tc "cache computes once and is shared across domains" (fun () ->
        let cache : (int, int) Interner.Cache.t = Interner.Cache.create () in
        let computed = Atomic.make 0 in
        let compute k () =
          Atomic.incr computed;
          k * 7
        in
        let workers =
          List.init 4 (fun _ ->
              Domain.spawn (fun () ->
                  Array.init 50 (fun i ->
                      Interner.Cache.find_or_compute cache (i mod 10) (compute (i mod 10)))))
        in
        let results = List.map Domain.join workers in
        List.iter
          (fun arr ->
            Array.iteri
              (fun i v -> Alcotest.(check int) "computed value" ((i mod 10) * 7) v)
              arr)
          results;
        (* First publish wins; duplicate concurrent computes are possible but
           bounded by the race window, never by the call count. *)
        Alcotest.(check bool)
          "far fewer computes than calls" true
          (Atomic.get computed >= 10 && Atomic.get computed <= 40);
        Alcotest.(check (option int)) "find after compute" (Some 21) (Interner.Cache.find cache 3));
  ]

(* ---------------- sharded cache ≡ sequential evaluator ---------------- *)

let shard_tests =
  [
    tc "counters and benefits identical: domains=1 vs domains=3" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let workload =
          Xia_workload.Workload.of_strings
            [
              {|for $s in SECURITY('SDOC')/Security where $s/Symbol = "BCIIPRC" return $s|};
              {|for $s in SECURITY('SDOC')/Security[Yield>4.5] where $s/SecInfo/*/Sector = "Energy" return $s|};
              {|for $c in CUSTACC('CADOC')/Customer where $c/Nationality = "Norway" return $c|};
            ]
        in
        let run domains =
          let ev = Benefit.create ~domains catalog workload in
          let set = Enumeration.candidates catalog workload in
          let basics = Candidate.basics set in
          let b_all = Benefit.benefit ev basics in
          let b_each = List.map (Benefit.individual_benefit ev) basics in
          let b_again = Benefit.benefit ev basics in
          ( b_all,
            b_each,
            b_again,
            Benefit.evaluations ev,
            Benefit.cache_hits ev,
            Benefit.cached_sub_configs ev )
        in
        let a1, e1, g1, ev1, h1, c1 = run 1 in
        let a3, e3, g3, ev3, h3, c3 = run 3 in
        Alcotest.(check (float 0.0)) "config benefit" a1 a3;
        List.iter2 (fun x y -> Alcotest.(check (float 0.0)) "individual benefit" x y) e1 e3;
        Alcotest.(check (float 0.0)) "cached re-read" g1 g3;
        Alcotest.(check int) "evaluations" ev1 ev3;
        Alcotest.(check int) "cache hits" h1 h3;
        Alcotest.(check int) "cached sub-configs" c1 c3;
        Alcotest.(check bool) "second benefit call hit the cache" true (h1 > 0));
    tc "candidate_size is memoized and matches Candidate.size" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let workload =
          Xia_workload.Workload.of_strings
            [ {|for $s in SECURITY('SDOC')/Security where $s/Symbol = "BCIIPRC" return $s|} ]
        in
        let ev = Benefit.create ~domains:1 catalog workload in
        let set = Enumeration.candidates catalog workload in
        List.iter
          (fun c ->
            let direct = Candidate.size catalog c in
            Alcotest.(check int) "first read" direct (Benefit.candidate_size ev c);
            Alcotest.(check int) "memoized read" direct (Benefit.candidate_size ev c))
          (Candidate.to_list set);
        let config = Candidate.basics set in
        Alcotest.(check int)
          "config_size sums members"
          (List.fold_left (fun acc c -> acc + Candidate.size catalog c) 0 config)
          (Benefit.config_size ev config));
  ]

let suites =
  [
    ("perf.trie", trie_tests);
    ("perf.interner", interner_tests);
    ("perf.shards", shard_tests);
  ]
