(* Adversarial and regression tests: deep documents, pathological patterns,
   and deterministic algorithm-ordering regressions observed in the paper
   experiments. *)

module Pat = Xia_xpath.Pattern
module E = Xia_xpath.Eval
module A = Xia_advisor.Advisor
module S = Xia_advisor.Search

let tc name f = Alcotest.test_case name `Quick f

let deep_doc depth =
  let rec build n = if n = 0 then Xia_xml.Types.leaf "leaf" "v" else
      Xia_xml.Types.element "n" [ build (n - 1) ] in
  build depth

let deep_tests =
  [
    tc "evaluation survives 2000-deep documents" (fun () ->
        let doc = deep_doc 2000 in
        let ms = E.eval_doc doc (Helpers.xpath "//leaf") in
        Alcotest.(check int) "one leaf" 1 (List.length ms));
    tc "iter_nodes survives deep documents" (fun () ->
        let n = ref 0 in
        Xia_xml.Types.iter_nodes (fun _ _ _ -> incr n) (deep_doc 2000);
        (* 2000 wrappers + the leaf element; text nodes are not visited *)
        Alcotest.(check int) "nodes" 2001 !n);
    tc "serialization round-trips deep documents" (fun () ->
        let doc = deep_doc 1000 in
        let doc' = Xia_xml.Parser.parse_exn (Xia_xml.Printer.to_string doc) in
        Alcotest.(check bool) "equal" true (Xia_xml.Types.equal doc doc'));
    tc "wide documents" (fun () ->
        let doc =
          Xia_xml.Types.element "r"
            (List.init 5000 (fun i -> Xia_xml.Types.leaf "c" (string_of_int i)))
        in
        Alcotest.(check int) "all" 5000
          (List.length (E.eval_doc doc (Helpers.xpath "/r/c"))));
  ]

let pattern_tests =
  [
    tc "long pattern containment" (fun () ->
        let mk n sep =
          Pat.of_string ("/" ^ String.concat sep (List.init n (fun _ -> "a")))
        in
        let child = mk 20 "/" and desc = mk 20 "//" in
        Alcotest.(check bool) "desc covers child" true
          (Pat.covers ~general:desc ~specific:child);
        Alcotest.(check bool) "child not covers desc" false
          (Pat.covers ~general:child ~specific:desc));
    tc "alternating wildcard/descendant containment" (fun () ->
        let g = Pat.of_string "//a//*//b" in
        let s = Pat.of_string "/a/x/y/z/b" in
        Alcotest.(check bool) "covers" true (Pat.covers ~general:g ~specific:s);
        Alcotest.(check bool) "not too short" false
          (Pat.covers ~general:g ~specific:(Pat.of_string "/a/b")));
    tc "recursive-label pattern matches repeated tags" (fun () ->
        let p = Pat.of_string "/n//n//leaf" in
        Alcotest.(check bool) "deep" true
          (Pat.accepts p (List.init 10 (fun _ -> "n") @ [ "leaf" ])));
    tc "containment of many-branch patterns terminates quickly" (fun () ->
        let g = Pat.of_string "//a//b//c//d//e" in
        let s = Pat.of_string "/a/x/b/y/c/z/d/w/e" in
        let covers, elapsed =
          Xia_obs.Trace.timed "test.pattern_containment" (fun () ->
              Pat.covers ~general:g ~specific:s)
        in
        Alcotest.(check bool) "covers" true covers;
        Alcotest.(check bool) "fast" true (elapsed < 1.0));
    tc "generalization of long dissimilar patterns terminates" (fun () ->
        let a = Pat.of_string "/a/b/c/d/e/f/g/h" in
        let b = Pat.of_string "/a/h/g/f/e/d/c/b" in
        let results, elapsed =
          Xia_obs.Trace.timed "test.generalize_pair" (fun () ->
              Xia_advisor.Generalize.pair a b)
        in
        Alcotest.(check bool) "nonempty" true (results <> []);
        Alcotest.(check bool) "fast" true (elapsed < 1.0);
        List.iter
          (fun g ->
            Alcotest.(check bool) "covers both" true
              (Pat.covers ~general:g ~specific:a && Pat.covers ~general:g ~specific:b))
          results);
  ]

(* Deterministic regressions of the algorithm orderings the paper reports,
   on the shared tiny TPoX fixture. *)
let ordering_tests =
  [
    tc "heuristics never below plain greedy at the all-index budget" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let session = A.create_session catalog (Xia_workload.Tpox.workload ()) in
        let all = A.session_advise session ~budget:max_int A.All_index in
        let budget = all.A.outcome.S.size in
        let g = A.session_advise session ~budget A.Greedy in
        let h = A.session_advise session ~budget A.Greedy_heuristics in
        Alcotest.(check bool) "h >= g" true (h.A.est_speedup >= g.A.est_speedup -. 1e-9));
    tc "all-index dominates every algorithm at every budget" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let session = A.create_session catalog (Xia_workload.Tpox.workload ()) in
        let all = A.session_advise session ~budget:max_int A.All_index in
        List.iter
          (fun frac ->
            let budget =
              int_of_float (frac *. float_of_int all.A.outcome.S.size)
            in
            List.iter
              (fun alg ->
                let r = A.session_advise session ~budget alg in
                Alcotest.(check bool)
                  (Printf.sprintf "%s@%.2f" (A.algorithm_name alg) frac)
                  true
                  (r.A.est_speedup <= all.A.est_speedup +. 1e-9))
              A.all_algorithms)
          [ 0.5; 1.0; 2.0 ]);
    tc "top-down full at least matches top-down lite" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let session = A.create_session catalog (Xia_workload.Tpox.workload ()) in
        let all = A.session_advise session ~budget:max_int A.All_index in
        let budget = all.A.outcome.S.size * 3 / 2 in
        let lite = A.session_advise session ~budget A.Top_down_lite in
        let full = A.session_advise session ~budget A.Top_down_full in
        Alcotest.(check bool) "full >= lite - eps" true
          (full.A.est_speedup >= lite.A.est_speedup -. 0.10));
  ]

let suites =
  [
    ("adversarial.deep", deep_tests);
    ("adversarial.patterns", pattern_tests);
    ("adversarial.ordering", ordering_tests);
  ]
