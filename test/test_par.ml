(* Tests for the Par work pool, the determinism of the parallel what-if
   evaluator, and the regressions fixed alongside it (catalog exception
   safety, DP small-budget clamp). *)

module A = Xia_advisor.Advisor
module B = Xia_advisor.Benefit
module C = Xia_advisor.Candidate
module S = Xia_advisor.Search
module En = Xia_advisor.Enumeration
module Par = Xia_advisor.Par
module Cat = Xia_index.Catalog
module O = Xia_optimizer.Optimizer
module W = Xia_workload.Workload

let tc name f = Alcotest.test_case name `Quick f

exception Boom of int

let pool_tests =
  [
    tc "map matches sequential map" (fun () ->
        let arr = Array.init 100 (fun i -> i) in
        let expected = Array.map (fun x -> (x * x) + 1) arr in
        List.iter
          (fun domains ->
            Alcotest.(check (array int))
              (Printf.sprintf "domains=%d" domains)
              expected
              (Par.map ~domains (fun x -> (x * x) + 1) arr))
          [ 1; 2; 4; 16 ]);
    tc "map on empty and singleton arrays" (fun () ->
        Alcotest.(check (array int)) "empty" [||] (Par.map ~domains:4 succ [||]);
        Alcotest.(check (array int)) "one" [| 8 |] (Par.map ~domains:4 succ [| 7 |]));
    tc "map_list preserves order" (fun () ->
        let l = List.init 50 string_of_int in
        Alcotest.(check (list string))
          "same" l
          (Par.map_list ~domains:4 Fun.id l));
    tc "smallest-index exception is re-raised" (fun () ->
        let f x = if x mod 3 = 0 && x > 0 then raise (Boom x) else x in
        List.iter
          (fun domains ->
            match Par.map ~domains f (Array.init 40 (fun i -> i)) with
            | _ -> Alcotest.fail "expected Boom"
            | exception Boom i ->
                Alcotest.(check int)
                  (Printf.sprintf "domains=%d" domains)
                  3 i)
          [ 1; 2; 4 ];
        (* The pool survives a failed batch. *)
        Alcotest.(check (array int))
          "usable after" [| 2; 3 |]
          (Par.map ~domains:4 succ [| 1; 2 |]));
    tc "nested maps do not deadlock" (fun () ->
        let result =
          Par.map ~domains:4
            (fun i ->
              Array.fold_left ( + ) 0 (Par.map ~domains:4 (fun j -> i * j) (Array.init 20 Fun.id)))
            (Array.init 10 Fun.id)
        in
        Alcotest.(check (array int))
          "sums" (Array.init 10 (fun i -> i * 190)) result);
  ]

(* ---------- parallel evaluator determinism ---------- *)

let tiny_workload catalog =
  Xia_workload.Tpox.workload ()
  @ Xia_workload.Synthetic.workload ~seed:11 catalog (Cat.table_names catalog) 8

let config_ids (o : S.outcome) = List.map (fun (c : C.t) -> c.C.id) o.S.config

let check_same_outcome label (a : S.outcome) (b : S.outcome) =
  Alcotest.(check (list int)) (label ^ " config") (config_ids a) (config_ids b);
  Alcotest.(check int) (label ^ " size") a.S.size b.S.size;
  Alcotest.(check bool)
    (label ^ " benefit")
    true
    (Float.equal a.S.benefit b.S.benefit);
  Alcotest.(check int) (label ^ " calls") a.S.optimizer_calls b.S.optimizer_calls

(* Run one algorithm with a fresh evaluator per domain count; every result
   component (and the evaluator counters) must be bit-for-bit identical. *)
let differential_tests =
  let run_all name search =
    tc (name ^ " identical across domains") (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let workload = tiny_workload catalog in
        let set = En.candidates catalog workload in
        let outcomes =
          List.map
            (fun domains ->
              let ev = B.create ~domains catalog workload in
              let all = S.all_index ev set in
              let budget = all.S.size / 2 in
              let o = search ev set ~budget in
              (o, B.evaluations ev, B.cache_hits ev))
            [ 1; 2; 4 ]
        in
        match outcomes with
        | (o1, e1, h1) :: rest ->
            List.iter
              (fun (o, e, h) ->
                check_same_outcome name o1 o;
                Alcotest.(check int) (name ^ " evaluations") e1 e;
                Alcotest.(check int) (name ^ " cache hits") h1 h)
              rest
        | [] -> assert false)
  in
  [
    run_all "greedy" (fun ev set ~budget -> S.greedy ev set ~budget);
    run_all "greedy+heuristics" (fun ev set ~budget -> S.greedy_heuristics ev set ~budget);
    run_all "top-down full" (fun ev set ~budget -> S.top_down_full ev set ~budget);
    run_all "dp" S.dynamic_programming;
  ]

let qcheck_differential =
  QCheck.Test.make ~count:5 ~name:"random synthetic workloads: parallel = sequential"
    QCheck.(make Gen.(int_range 1 1000))
    (fun seed ->
      let catalog = Lazy.force Helpers.shared_catalog in
      let workload =
        Xia_workload.Synthetic.workload ~seed catalog (Cat.table_names catalog) 10
      in
      let set = En.candidates catalog workload in
      let outcome domains =
        let ev = B.create ~domains catalog workload in
        let all = S.all_index ev set in
        S.greedy_heuristics ev set ~budget:(max 1 (all.S.size / 2))
      in
      let o1 = outcome 1 and o2 = outcome 2 and o4 = outcome 4 in
      config_ids o1 = config_ids o2
      && config_ids o1 = config_ids o4
      && o1.S.size = o2.S.size
      && o1.S.size = o4.S.size
      && Float.equal o1.S.benefit o2.S.benefit
      && Float.equal o1.S.benefit o4.S.benefit)

(* ---------- regression: exception safety of what-if evaluation ---------- *)

let exception_safety_tests =
  [
    tc "raising statement leaves later evaluations unaffected" (fun () ->
        let catalog = Helpers.fresh_tiny_catalog () in
        let good = W.of_strings [ {|for $s in SECURITY('SDOC')/Security where $s/Symbol = "X" return $s|} ] in
        let bad =
          W.of_strings [ "for $x in NO_SUCH_TABLE/a where $x/b = \"1\" return $x" ]
        in
        let d =
          Xia_index.Index_def.make ~table:"SECURITY"
            ~pattern:(Helpers.pattern "/Security/Symbol")
            ~dtype:Xia_index.Index_def.Dstring ()
        in
        let base = A.estimated_workload_cost catalog good [] in
        (* The what-if evaluation of the bad workload raises mid-flight; it
           must not leave the virtual configuration installed (the old
           set/clear dance did). *)
        (try ignore (A.estimated_workload_cost catalog bad [ d ]) with _ -> ());
        Alcotest.(check int)
          "no virtual indexes left behind" 0
          (List.length (Cat.virtual_indexes catalog "SECURITY"));
        let base' = A.estimated_workload_cost catalog good [] in
        Alcotest.(check bool) "base cost unchanged" true (Float.equal base base'));
    tc "explicit virtual_config ignores catalog virtual indexes" (fun () ->
        let catalog = Helpers.fresh_tiny_catalog () in
        let stmt =
          Helpers.statement
            {|for $s in SECURITY('SDOC')/Security where $s/Symbol = "X" return $s|}
        in
        let d =
          Xia_index.Index_def.make ~table:"SECURITY"
            ~pattern:(Helpers.pattern "/Security/Symbol")
            ~dtype:Xia_index.Index_def.Dstring ()
        in
        let base = O.statement_cost ~mode:O.Evaluate ~virtual_config:[] catalog stmt in
        (* Legacy catalog state must not leak into explicit-config calls. *)
        Cat.set_virtual_indexes catalog [ d ];
        let still_base =
          O.statement_cost ~mode:O.Evaluate ~virtual_config:[] catalog stmt
        in
        let with_index =
          O.statement_cost ~mode:O.Evaluate ~virtual_config:[ d ] catalog stmt
        in
        Cat.clear_virtual_indexes catalog;
        Alcotest.(check bool) "base unchanged" true (Float.equal base still_base);
        Alcotest.(check bool) "index helps" true (with_index < base));
  ]

(* ---------- regression: DP with a budget below one granularity unit ---------- *)

let dp_tests =
  [
    tc "small budget still recommends a fitting index" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let workload = Xia_workload.Tpox.workload () in
        let set = En.candidates catalog workload in
        let ev = B.create ~domains:1 catalog workload in
        let pool =
          List.filter
            (fun (c : C.t) -> B.individual_benefit ev c > 0.0)
            (C.to_list set)
        in
        match
          List.sort (fun a b -> compare (C.size catalog a) (C.size catalog b)) pool
        with
        | [] -> Alcotest.fail "fixture has no beneficial candidate"
        | smallest :: _ ->
            (* Exactly one index fits. *)
            let budget = C.size catalog smallest in
            let o = S.dynamic_programming ev set ~budget in
            Alcotest.(check bool) "non-empty" true (o.S.config <> []);
            Alcotest.(check bool) "fits" true (o.S.size <= budget);
            (* Sub-page budget: the knapsack capacity in units used to
               truncate to 0; with the clamp the search still runs and
               (since no index is smaller than a page) returns empty. *)
            let tiny = S.dynamic_programming ev set ~budget:(Xia_storage.Cost_params.page_size - 1) in
            Alcotest.(check (list int)) "nothing fits" [] (config_ids tiny));
  ]

let suites =
  [
    ("par.pool", pool_tests);
    ("par.differential", differential_tests);
    Helpers.qsuite "par.qcheck" [ qcheck_differential ];
    ("par.exception-safety", exception_safety_tests);
    ("par.dp-budget", dp_tests);
  ]
