(* Normalizer for the observability CLI fixtures: rewrites every
   timing-dependent numeric JSON field to "_" so the remaining structure —
   span names, nesting, argument values, metric names and deterministic
   counters — can be diffed byte-for-byte against a committed fixture.

   trace mode scrubs "ts" and "dur" (wall-clock position and duration of
   every span); metrics mode scrubs "sum_us" and the per-bucket "n" tallies
   of histograms (latency-dependent), keeping counter values and histogram
   "count" fields, which are deterministic at --domains 1; eval mode scrubs
   the per-case "elapsed" seconds of the quality-evaluation report, whose
   every other number (regret, ranks, call counts, spearman) is
   deterministic.

   Usage: scrub_obs (trace|metrics|eval) FILE *)

let is_number_char = function
  | '0' .. '9' | '.' | '-' | '+' | 'e' | 'E' -> true
  | _ -> false

(* Replace every `"field":<number>` in [line] with `"field":"_"`. *)
let scrub_field field line =
  let key = Printf.sprintf "\"%s\":" field in
  let klen = String.length key and n = String.length line in
  let b = Buffer.create n in
  let i = ref 0 in
  while !i < n do
    if !i + klen <= n && String.sub line !i klen = key && !i + klen < n
       && is_number_char line.[!i + klen]
    then begin
      Buffer.add_string b key;
      Buffer.add_string b "\"_\"";
      i := !i + klen;
      while !i < n && is_number_char line.[!i] do
        incr i
      done
    end
    else begin
      Buffer.add_char b line.[!i];
      incr i
    end
  done;
  Buffer.contents b

let () =
  let usage () =
    prerr_endline "usage: scrub_obs (trace|metrics|eval) FILE";
    exit 2
  in
  if Array.length Sys.argv <> 3 then usage ();
  let fields =
    match Sys.argv.(1) with
    | "trace" -> [ "ts"; "dur" ]
    | "metrics" -> [ "sum_us"; "n" ]
    | "eval" -> [ "elapsed" ]
    | _ -> usage ()
  in
  let ic = open_in Sys.argv.(2) in
  (try
     while true do
       print_endline (List.fold_left (fun l f -> scrub_field f l) (input_line ic) fields)
     done
   with End_of_file -> ());
  close_in ic
