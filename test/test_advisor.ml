(* Tests for enumeration, benefit evaluation, search algorithms and the
   end-to-end advisor. *)

module A = Xia_advisor.Advisor
module B = Xia_advisor.Benefit
module C = Xia_advisor.Candidate
module S = Xia_advisor.Search
module En = Xia_advisor.Enumeration
module Cat = Xia_index.Catalog
module D = Xia_index.Index_def
module W = Xia_workload.Workload

let tc name f = Alcotest.test_case name `Quick f

(* Deterministic fixture shared by the suite: tiny TPoX + its 11 queries.
   The catalog is only read (virtual indexes are set and cleared). *)
let fixture =
  lazy
    (let catalog = Lazy.force Helpers.shared_catalog in
     let wl = Xia_workload.Tpox.workload () in
     let session = A.create_session catalog wl in
     session)

let enumeration_tests =
  [
    tc "basic candidates cover all queries" (fun () ->
        let s = Lazy.force fixture in
        let basics = C.basics s.A.candidates in
        Alcotest.(check bool) "many" true (List.length basics >= 10);
        (* every query is in some candidate's affected set *)
        let covered =
          List.fold_left
            (fun acc c -> C.Int_set.union acc c.C.affected)
            C.Int_set.empty basics
        in
        Alcotest.(check int) "all stmts" (W.size s.A.workload)
          (C.Int_set.cardinal covered));
    tc "generalization adds candidates" (fun () ->
        let s = Lazy.force fixture in
        Alcotest.(check bool) "generals exist" true
          (List.length (C.generals s.A.candidates) > 0));
    tc "shared pattern has two affected statements" (fun () ->
        let s = Lazy.force fixture in
        (* /Security/Symbol is used by Q1 and Q3 *)
        let d =
          D.make ~table:"SECURITY" ~pattern:(Helpers.pattern "/Security/Symbol")
            ~dtype:D.Dstring ()
        in
        match C.find_by_key s.A.candidates (D.logical_key d) with
        | Some c -> Alcotest.(check int) "two" 2 (C.Int_set.cardinal c.C.affected)
        | None -> Alcotest.fail "symbol candidate missing");
  ]

let benefit_tests =
  [
    tc "empty configuration has zero benefit" (fun () ->
        let s = Lazy.force fixture in
        Alcotest.(check (float 0.0001)) "zero" 0.0 (B.benefit s.A.evaluator []));
    tc "benefit of a useful index is positive" (fun () ->
        let s = Lazy.force fixture in
        let d =
          D.make ~table:"SECURITY" ~pattern:(Helpers.pattern "/Security/Symbol")
            ~dtype:D.Dstring ()
        in
        let c = Option.get (C.find_by_key s.A.candidates (D.logical_key d)) in
        Alcotest.(check bool) "positive" true (B.individual_benefit s.A.evaluator c > 0.0));
    tc "benefit never exceeds base cost" (fun () ->
        let s = Lazy.force fixture in
        let all = C.to_list s.A.candidates in
        Alcotest.(check bool) "bounded" true
          (B.benefit s.A.evaluator all <= B.base_workload_cost s.A.evaluator));
    tc "sub-configurations split disjoint affected sets" (fun () ->
        let s = Lazy.force fixture in
        let by_pat p table =
          let d = D.make ~table ~pattern:(Helpers.pattern p) ~dtype:D.Dstring () in
          Option.get (C.find_by_key s.A.candidates (D.logical_key d))
        in
        let sec = by_pat "/Security/Symbol" "SECURITY" in
        let cust = by_pat "/Customer/Nationality" "CUSTACC" in
        Alcotest.(check int) "two groups" 2
          (List.length (B.sub_configurations [ sec; cust ])));
    tc "sub-configurations merge overlapping affected sets" (fun () ->
        let s = Lazy.force fixture in
        let by p dt =
          let d = D.make ~table:"SECURITY" ~pattern:(Helpers.pattern p) ~dtype:dt () in
          Option.get (C.find_by_key s.A.candidates (D.logical_key d))
        in
        (* Yield and Sector both come from Q2 -> same sub-configuration. *)
        let yield = by "/Security/Yield" D.Ddouble in
        let sector = by "/Security/SecInfo/*/Sector" D.Dstring in
        Alcotest.(check int) "one group" 1
          (List.length (B.sub_configurations [ yield; sector ])));
    tc "cache avoids repeat optimizer calls" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let ev = B.create catalog (Xia_workload.Tpox.workload ()) in
        let set = En.candidates catalog (Xia_workload.Tpox.workload ()) in
        let c = List.hd (C.basics set) in
        let _ = B.benefit ev [ c ] in
        let calls = B.evaluations ev in
        let _ = B.benefit ev [ c ] in
        Alcotest.(check int) "no new calls" calls (B.evaluations ev);
        Alcotest.(check bool) "hit recorded" true (B.cache_hits ev > 0));
    tc "maintenance charge positive with DML" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let wl = Xia_workload.Tpox.workload_with_updates ~update_freq:50.0 () in
        let ev = B.create catalog wl in
        let set = En.candidates catalog wl in
        let order_idx =
          List.filter
            (fun c -> String.equal c.C.def.D.table Xia_workload.Tpox.order_table)
            (C.basics set)
        in
        Alcotest.(check bool) "nonempty" true (order_idx <> []);
        Alcotest.(check bool) "charged" true (B.maintenance_charge ev order_idx > 0.0));
    tc "heavy insert traffic erodes an index's benefit" (fun () ->
        (* Inserts gain nothing from indexes but pay maintenance, so raising
           their frequency strictly lowers the benefit. *)
        let catalog = Lazy.force Helpers.shared_catalog in
        let insert =
          Xia_workload.Workload.item "INS"
            (Helpers.statement
               {|insert into XORDER <FIXML><Order ID="X1" Acct="A1" Side="1"><OrdQty Qty="10"/></Order></FIXML>|})
        in
        let pick freq =
          let wl =
            Xia_workload.Tpox.workload ()
            @ [ { insert with Xia_workload.Workload.freq } ]
          in
          let ev = B.create catalog wl in
          let set = En.candidates catalog wl in
          let d =
            D.make ~table:Xia_workload.Tpox.order_table
              ~pattern:(Helpers.pattern "/FIXML/Order/@ID") ~dtype:D.Dstring ()
          in
          let c = Option.get (C.find_by_key set (D.logical_key d)) in
          B.individual_benefit ev c
        in
        let light = pick 1.0 and heavy = pick 100_000.0 in
        Alcotest.(check bool) "light positive" true (light > 0.0);
        Alcotest.(check bool) "heavy lower" true (heavy < light));
  ]

let budget_of session frac =
  let all = A.session_advise session ~budget:max_int A.All_index in
  int_of_float (frac *. float_of_int all.A.outcome.S.size)

let search_tests =
  [
    tc "every algorithm respects the budget" (fun () ->
        let s = Lazy.force fixture in
        let budget = budget_of s 0.5 in
        List.iter
          (fun alg ->
            let r = A.session_advise s ~budget alg in
            Alcotest.(check bool)
              (A.algorithm_name alg ^ " fits")
              true
              (r.A.outcome.S.size <= budget))
          A.all_algorithms);
    tc "zero budget recommends nothing" (fun () ->
        let s = Lazy.force fixture in
        List.iter
          (fun alg ->
            let r = A.session_advise s ~budget:0 alg in
            Alcotest.(check int) (A.algorithm_name alg) 0 (List.length r.A.outcome.S.config))
          A.all_algorithms);
    tc "speedup grows with budget" (fun () ->
        let s = Lazy.force fixture in
        let sp frac =
          (A.session_advise s ~budget:(budget_of s frac) A.Greedy_heuristics).A.est_speedup
        in
        let s25 = sp 0.25 and s100 = sp 1.0 in
        Alcotest.(check bool) "monotone-ish" true (s100 >= s25));
    tc "all-index speedup at least matches heuristics at full budget" (fun () ->
        let s = Lazy.force fixture in
        let all = A.session_advise s ~budget:max_int A.All_index in
        let h = A.session_advise s ~budget:all.A.outcome.S.size A.Greedy_heuristics in
        Alcotest.(check bool) "bound" true (all.A.est_speedup >= h.A.est_speedup -. 0.01));
    tc "heuristics avoids redundant generals" (fun () ->
        let s = Lazy.force fixture in
        let r = A.session_advise s ~budget:(budget_of s 2.0) A.Greedy_heuristics in
        (* with generous budget heuristics should stay essentially specific *)
        Alcotest.(check bool) "few generals" true (r.A.general_count <= 1));
    tc "top-down recommends generals when budget allows" (fun () ->
        let s = Lazy.force fixture in
        let r2 = A.session_advise s ~budget:(budget_of s 2.0) A.Top_down_lite in
        let r05 = A.session_advise s ~budget:(budget_of s 0.5) A.Top_down_lite in
        Alcotest.(check bool) "more generals with more budget" true
          (r2.A.general_count >= r05.A.general_count);
        Alcotest.(check bool) "some generals at 2x" true (r2.A.general_count > 0));
    tc "dp beats or ties greedy on its own objective" (fun () ->
        let s = Lazy.force fixture in
        let budget = budget_of s 0.4 in
        let sum_indiv (r : A.recommendation) =
          List.fold_left
            (fun acc c -> acc +. B.individual_benefit s.A.evaluator c)
            0.0 r.A.outcome.S.config
        in
        let g = A.session_advise s ~budget A.Greedy in
        let dp = A.session_advise s ~budget A.Dynamic_programming in
        Alcotest.(check bool) "dp >= greedy" true
          (sum_indiv dp >= sum_indiv g -. 1e-6));
    tc "configs contain no duplicate indexes" (fun () ->
        let s = Lazy.force fixture in
        List.iter
          (fun alg ->
            let r = A.session_advise s ~budget:(budget_of s 1.5) alg in
            let keys = List.map (fun c -> D.logical_key c.C.def) r.A.outcome.S.config in
            Alcotest.(check int) (A.algorithm_name alg)
              (List.length keys)
              (List.length (List.sort_uniq String.compare keys)))
          A.all_algorithms);
    tc "recommended indexes are actually used by the optimizer" (fun () ->
        let s = Lazy.force fixture in
        let r = A.session_advise s ~budget:(budget_of s 1.0) A.Greedy_heuristics in
        let defs = A.indexes r in
        Cat.set_virtual_indexes s.A.catalog defs;
        let used =
          List.concat_map
            (fun (item : W.item) ->
              Xia_optimizer.Plan.indexes_used
                (Xia_optimizer.Optimizer.optimize ~mode:Xia_optimizer.Optimizer.Evaluate
                   s.A.catalog item.W.statement))
            s.A.workload
        in
        Cat.clear_virtual_indexes s.A.catalog;
        List.iter
          (fun d ->
            Alcotest.(check bool)
              (Printf.sprintf "%s used" (Xia_xpath.Pattern.to_string d.D.pattern))
              true
              (List.exists (D.same d) used))
          defs);
  ]

let advisor_tests =
  [
    tc "advise end-to-end produces a sane recommendation" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let wl = Xia_workload.Tpox.workload () in
        let r = A.advise catalog wl ~budget:(4 * 1024 * 1024) A.Greedy_heuristics in
        Alcotest.(check bool) "has indexes" true (List.length (A.indexes r) > 0);
        Alcotest.(check bool) "speedup > 1" true (r.A.est_speedup > 1.0);
        Alcotest.(check bool) "cost improved" true (r.A.new_cost < r.A.base_cost));
    tc "estimated speedup of empty config is 1" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let wl = Xia_workload.Tpox.workload () in
        Alcotest.(check (float 0.001)) "one" 1.0 (A.estimated_speedup catalog wl []));
    tc "actual speedup > 1 with recommended indexes" (fun () ->
        let catalog = Helpers.fresh_tiny_catalog () in
        let wl = Xia_workload.Tpox.workload () in
        let r = A.advise catalog wl ~budget:(4 * 1024 * 1024) A.Greedy_heuristics in
        let speedup = A.actual_speedup ~metric:`Cost catalog wl (A.indexes r) in
        Alcotest.(check bool) "faster" true (speedup > 1.0));
    tc "training on fewer queries generalizes with top-down" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let wl = Xia_workload.Tpox.workload () in
        let train = W.prefix 4 wl in
        let td = A.advise catalog train ~budget:(32 * 1024 * 1024) A.Top_down_lite in
        let h = A.advise catalog train ~budget:(32 * 1024 * 1024) A.Greedy_heuristics in
        let sp defs = A.estimated_speedup catalog wl defs in
        (* Top-down recommends more general indexes, and its configuration is
           competitive on the full (partially unseen) workload. *)
        Alcotest.(check bool) "more general" true
          (td.A.general_count >= h.A.general_count);
        Alcotest.(check bool) "competitive" true
          (sp (A.indexes td) >= 0.8 *. sp (A.indexes h)));
    tc "drop recommendations flag unused and update-swamped indexes" (fun () ->
        let catalog = Helpers.fresh_tiny_catalog () in
        let wl = Xia_workload.Tpox.workload_with_updates ~update_freq:100_000.0 () in
        (* A useful index, an unused one, and one on the update-hot table. *)
        let mk table p =
          D.make ~table ~pattern:(Helpers.pattern p) ~dtype:D.Dstring ()
        in
        let useful = mk "SECURITY" "/Security/Symbol" in
        let unused = mk "SECURITY" "/Security/Name" in
        let hot = mk Xia_workload.Tpox.order_table "/FIXML/Order/@Acct" in
        List.iter
          (fun d -> ignore (Cat.create_index catalog d))
          [ useful; unused; hot ];
        let drops = A.drop_recommendations catalog wl in
        Cat.drop_all_indexes catalog;
        let dropped d = List.exists (fun (x, _) -> D.same x d) drops in
        Alcotest.(check bool) "unused dropped" true (dropped unused);
        Alcotest.(check bool) "useful kept" false (dropped useful);
        Alcotest.(check bool) "hot dropped" true (dropped hot);
        (match List.find_opt (fun (x, _) -> D.same x unused) drops with
        | Some (_, A.Unused) -> ()
        | _ -> Alcotest.fail "expected Unused reason");
        match List.find_opt (fun (x, _) -> D.same x hot) drops with
        | Some (_, A.Maintenance_exceeds_benefit _) -> ()
        | _ -> Alcotest.fail "expected maintenance reason");
    tc "no drops recommended for a useful query-only configuration" (fun () ->
        let catalog = Helpers.fresh_tiny_catalog () in
        let wl = Xia_workload.Tpox.workload () in
        let d =
          D.make ~table:"SECURITY" ~pattern:(Helpers.pattern "/Security/Symbol")
            ~dtype:D.Dstring ()
        in
        ignore (Cat.create_index catalog d);
        let drops = A.drop_recommendations catalog wl in
        Cat.drop_all_indexes catalog;
        Alcotest.(check int) "none" 0 (List.length drops));
    tc "algorithm names are distinct" (fun () ->
        let names = List.map A.algorithm_name (A.All_index :: A.all_algorithms) in
        Alcotest.(check int) "distinct" (List.length names)
          (List.length (List.sort_uniq String.compare names)));
  ]

let suites =
  [
    ("advisor.enumeration", enumeration_tests);
    ("advisor.benefit", benefit_tests);
    ("advisor.search", search_tests);
    ("advisor.end_to_end", advisor_tests);
  ]
