(* Differential suites for the batched what-if entry point: one
   [Optimizer.optimize_batch] invocation must produce bit-for-bit the plans
   per-statement [Optimizer.optimize] calls produce, for any domain count;
   evaluator counters must be deterministic across runs; and the cost-model
   regressions fixed alongside batching (multi-binding DML [affected],
   stale-candidate rejection, full-fingerprint shard selection) stay fixed. *)

module O = Xia_optimizer.Optimizer
module Plan = Xia_optimizer.Plan
module Index_def = Xia_index.Index_def
module Catalog = Xia_index.Catalog
module W = Xia_workload.Workload
module B = Xia_advisor.Benefit
module C = Xia_advisor.Candidate
module En = Xia_advisor.Enumeration
module S = Xia_advisor.Search

let tc name f = Alcotest.test_case name `Quick f

let xmark_catalog =
  lazy
    (let catalog = Catalog.create () in
     Xia_workload.Xmark.load ~scale:Xia_workload.Xmark.tiny_scale ~seed:7 catalog;
     catalog)

(* (label, catalog, workload) fixtures the differential runs over. *)
let fixtures () =
  let tpox = Lazy.force Helpers.shared_catalog in
  let xmark = Lazy.force xmark_catalog in
  [
    ("tpox", tpox, Xia_workload.Tpox.workload ());
    ("xmark", xmark, Xia_workload.Xmark.workload ());
    ( "synthetic",
      tpox,
      Xia_workload.Synthetic.workload ~seed:5 tpox (Catalog.table_names tpox) 12 );
  ]

let ids_used plan = List.map Index_def.logical_id (Plan.indexes_used plan)

let check_plan_equal label (a : Plan.t) (b : Plan.t) =
  Alcotest.(check bool)
    (label ^ " total_cost") true
    (Float.equal a.Plan.total_cost b.Plan.total_cost);
  Alcotest.(check bool)
    (label ^ " affected_docs") true
    (Float.equal a.Plan.affected_docs b.Plan.affected_docs);
  Alcotest.(check (list int)) (label ^ " indexes used") (ids_used a) (ids_used b);
  List.iter2
    (fun (x : Plan.planned_binding) (y : Plan.planned_binding) ->
      Alcotest.(check bool)
        (label ^ " binding est_cost") true
        (Float.equal x.Plan.est_cost y.Plan.est_cost))
    a.Plan.bindings b.Plan.bindings

(* Virtual configurations to exercise: none, every basic candidate def, and
   each statement's own basics would be redundant — a couple of singletons
   cover the sparse end. *)
let configs_for catalog workload =
  let set = En.candidates catalog workload in
  let all = List.map (fun (c : C.t) -> c.C.def) (C.basics set) in
  let singles = match all with [] -> [] | d :: _ -> [ [ d ] ] in
  [ [] ; all ] @ singles

let differential_tests =
  [
    tc "batched ≡ per-statement, bit for bit" (fun () ->
        List.iter
          (fun (label, catalog, workload) ->
            let stmts =
              Array.of_list
                (List.map (fun (it : W.item) -> it.W.statement) workload)
            in
            List.iter
              (fun virtual_config ->
                let expected =
                  Array.map
                    (O.optimize ~mode:O.Evaluate ~virtual_config catalog)
                    stmts
                in
                List.iter
                  (fun domains ->
                    let got =
                      O.optimize_batch ~mode:O.Evaluate ~domains ~virtual_config
                        catalog stmts
                    in
                    Alcotest.(check int)
                      (label ^ " length") (Array.length expected)
                      (Array.length got);
                    Array.iteri
                      (fun i p ->
                        check_plan_equal
                          (Printf.sprintf "%s[%d] domains=%d cfg=%d" label i
                             domains (List.length virtual_config))
                          expected.(i) p)
                      got)
                  [ 1; 4 ])
              (configs_for catalog workload))
          (fixtures ()));
    tc "batch counters: one invocation, n-1 setups saved" (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let workload = Xia_workload.Tpox.workload () in
        let stmts =
          Array.of_list (List.map (fun (it : W.item) -> it.W.statement) workload)
        in
        let calls0 = Atomic.get O.counters.O.optimize_calls in
        let batched0 = Atomic.get O.counters.O.batched_calls in
        let saved0 = Atomic.get O.counters.O.batch_setup_saved in
        ignore (O.optimize_batch ~mode:O.Evaluate ~virtual_config:[] catalog stmts);
        Alcotest.(check int)
          "one optimize_calls" 1
          (Atomic.get O.counters.O.optimize_calls - calls0);
        Alcotest.(check int)
          "one batched_calls" 1
          (Atomic.get O.counters.O.batched_calls - batched0);
        Alcotest.(check int)
          "n-1 setups saved"
          (Array.length stmts - 1)
          (Atomic.get O.counters.O.batch_setup_saved - saved0);
        (* Empty batches are free. *)
        Alcotest.(check (array Alcotest.reject))
          "empty batch" [||]
          (O.optimize_batch ~mode:O.Evaluate ~virtual_config:[] catalog [||]));
  ]

(* ---------- counter determinism across runs and domain counts ---------- *)

let advise_run catalog workload domains =
  let calls0 = Atomic.get O.counters.O.optimize_calls in
  let saved0 = Atomic.get O.counters.O.batch_setup_saved in
  let ev = B.create ~domains catalog workload in
  let set = En.candidates catalog workload in
  let all = S.all_index ev set in
  let o = S.greedy_heuristics ev set ~budget:(max 1 (all.S.size / 2)) in
  ignore (B.workload_cost ev o.S.config);
  ( List.map (fun (c : C.t) -> c.C.id) o.S.config,
    B.evaluations ev,
    B.cache_hits ev,
    Atomic.get O.counters.O.optimize_calls - calls0,
    Atomic.get O.counters.O.batch_setup_saved - saved0 )

let determinism_tests =
  [
    tc "evaluations/cache_hits/optimize_calls identical across runs and domains"
      (fun () ->
        let catalog = Lazy.force Helpers.shared_catalog in
        let workload =
          Xia_workload.Tpox.workload ()
          @ Xia_workload.Synthetic.workload ~seed:3 catalog
              (Catalog.table_names catalog) 8
        in
        match
          List.map (advise_run catalog workload) [ 1; 1; 4 ]
        with
        | (cfg1, ev1, h1, c1, s1) :: rest ->
            List.iter
              (fun (cfg, ev, h, c, s) ->
                Alcotest.(check (list int)) "config" cfg1 cfg;
                Alcotest.(check int) "evaluations" ev1 ev;
                Alcotest.(check int) "cache hits" h1 h;
                Alcotest.(check int) "optimize_calls delta" c1 c;
                Alcotest.(check int) "setup_saved delta" s1 s)
              rest;
            (* Batching must beat the per-statement protocol (the ≥5× target
               on the full advise flow is ratcheted by @bench-ratchet; this
               mini-flow is dominated by singleton deltas, so just require a
               clear win). *)
            Alcotest.(check bool)
              (Printf.sprintf "batched %d << raw %d" c1 (c1 + s1))
              true
              (c1 * 2 <= c1 + s1)
        | [] -> assert false);
  ]

(* ---------- regression: multi-binding DML affected estimate ---------- *)

let affected_tests =
  [
    tc "affected_docs_of_bindings: min over locating bindings" (fun () ->
        let catalog = Helpers.fresh_tiny_catalog () in
        let del =
          Helpers.statement
            {|delete from SECURITY where /Security[Symbol="BCIIPRC"]|}
        in
        let plan = O.optimize ~mode:O.Evaluate ~virtual_config:[] catalog del in
        (match plan.Plan.bindings with
        | [ b ] ->
            (* Single binding: exactly the binding's own estimate (the old
               behavior for this arity). *)
            Alcotest.(check bool)
              "singleton = est_docs" true
              (Float.equal b.Plan.est_docs
                 (O.affected_docs_of_bindings plan.Plan.bindings));
            Alcotest.(check bool)
              "plan agrees" true
              (Float.equal plan.Plan.affected_docs b.Plan.est_docs);
            (* Multi-binding statements must take the most selective
               binding's estimate — not silently zero the cost (the old
               [_ -> 0.0] fallback). *)
            let wide = { b with Plan.est_docs = 41.0 } in
            let narrow = { b with Plan.est_docs = 5.0 } in
            Alcotest.(check bool)
              "min over bindings" true
              (Float.equal 5.0 (O.affected_docs_of_bindings [ wide; narrow ]));
            Alcotest.(check bool)
              "never zero when bindings locate docs" true
              (O.affected_docs_of_bindings [ wide; narrow ] > 0.0)
        | _ -> Alcotest.fail "delete should plan exactly one binding");
        Alcotest.(check (float 0.0))
          "no locating binding -> 0" 0.0
          (O.affected_docs_of_bindings []));
  ]

(* ---------- regression: stale candidate sets are rejected ---------- *)

let stale_tests =
  [
    tc "affected index outside the workload raises" (fun () ->
        let catalog = Helpers.fresh_tiny_catalog () in
        let big =
          W.of_strings
            [
              {|for $s in SECURITY('SDOC')/Security where $s/Symbol = "BCIIPRC" return $s|};
              {|for $s in SECURITY('SDOC')/Security where $s/Yield > 4.5 return $s|};
            ]
        in
        let set = En.candidates catalog big in
        (* Evaluator over a 1-statement prefix: candidates affected by
           statement 1 now reference a statement this evaluator has never
           costed.  The old code silently dropped them (undercounting the
           delta); it must fail loudly instead. *)
        let ev = B.create ~domains:1 catalog (W.prefix 1 big) in
        let stale =
          List.filter
            (fun (c : C.t) -> C.Int_set.mem 1 c.C.affected)
            (C.basics set)
        in
        Alcotest.(check bool) "fixture has a stale candidate" true (stale <> []);
        Alcotest.check_raises "stale candidate set rejected"
          (Invalid_argument
             "Benefit.sub_config_delta: affected statement index 1 outside \
              the 1-statement workload (stale candidate set?)")
          (fun () -> ignore (B.benefit ev [ List.hd stale ])));
  ]

(* ---------- regression: shard selection digests the whole key ---------- *)

let shard_tests =
  [
    tc "fingerprints sharing a long prefix spread over shards" (fun () ->
        (* [Hashtbl.hash] inspects a bounded prefix, so these 32 keys —
           identical in their first 30 elements — all collapsed onto one
           stripe before the fix. *)
        let keys =
          List.init 32 (fun k -> Array.append (Array.make 30 7) [| k |])
        in
        let shards =
          List.sort_uniq compare (List.map B.shard_index keys)
        in
        List.iter
          (fun s ->
            Alcotest.(check bool) "in range" true (s >= 0 && s < 16))
          shards;
        Alcotest.(check bool)
          (Printf.sprintf "%d distinct shards > 1" (List.length shards))
          true
          (List.length shards > 1);
        (* Deterministic: the same key always owns the same stripe. *)
        List.iter
          (fun k ->
            Alcotest.(check int) "stable" (B.shard_index k) (B.shard_index k))
          keys);
  ]

let suites =
  [
    ("batch.differential", differential_tests);
    ("batch.determinism", determinism_tests);
    ("batch.affected", affected_tests);
    ("batch.stale", stale_tests);
    ("batch.shards", shard_tests);
  ]
