(* Lint smoke-test fixture: never compiled, only parsed by xia_lint.
   Named "benefit.ml" so the D003 what-if reentrancy check applies: the
   catalog mutation below is reachable from both toplevel functions. *)

let install catalog defs = Catalog.set_virtual_indexes catalog defs

let benefit catalog defs =
  install catalog defs;
  0.0

let read_only catalog =
  Catalog.warm_stats catalog;
  Catalog.stats catalog "T"
