(* Lint smoke-test fixture: never compiled, only parsed by xia_lint.
   Exercises D001 (toplevel mutable state), D002 (Sys.time), H002
   (failwith without a note) and H001 (no .mli for this file). *)

let cache = Hashtbl.create 16
let counter = ref 0

let elapsed f =
  let t0 = Sys.time () in
  f ();
  Sys.time () -. t0

let boom () = failwith "unhandled"

let fine () =
  (* function-local allocation: not D001 *)
  let buf = Buffer.create 64 in
  Buffer.contents buf

let suppressed = (ref 0 [@lint.allow "D001"])
