(* Tests for histograms and their effect on selectivity estimation. *)

module H = Xia_storage.Histogram
module Sel = Xia_optimizer.Selectivity
module Cat = Xia_index.Catalog
module DS = Xia_storage.Doc_store
module D = Xia_index.Index_def
module R = Xia_query.Rewriter

let tc name f = Alcotest.test_case name `Quick f

let uniform_sample = List.init 1000 (fun i -> float_of_int i)

let histogram_tests =
  [
    tc "create on empty sample is None" (fun () ->
        Alcotest.(check bool) "none" true (H.create [] = None));
    tc "create on constant sample is None" (fun () ->
        Alcotest.(check bool) "none" true (H.create [ 5.0; 5.0; 5.0 ] = None));
    tc "bounds and totals" (fun () ->
        let h = Option.get (H.create uniform_sample) in
        let lo, hi = H.bounds h in
        Alcotest.(check (float 0.001)) "lo" 0.0 lo;
        Alcotest.(check (float 0.001)) "hi" 999.0 hi;
        Alcotest.(check int) "total" 1000 (H.total h);
        Alcotest.(check int) "buckets" H.default_buckets (H.bucket_count h));
    tc "fraction_below on uniform data" (fun () ->
        let h = Option.get (H.create uniform_sample) in
        Alcotest.(check (float 0.02)) "half" 0.5 (H.fraction_below h 499.5);
        Alcotest.(check (float 0.02)) "tenth" 0.1 (H.fraction_below h 99.9);
        Alcotest.(check (float 0.001)) "below lo" 0.0 (H.fraction_below h (-1.0));
        Alcotest.(check (float 0.001)) "above hi" 1.0 (H.fraction_below h 2000.0));
    tc "fraction_between" (fun () ->
        let h = Option.get (H.create uniform_sample) in
        Alcotest.(check (float 0.03)) "quarter" 0.25 (H.fraction_between h 250.0 500.0);
        Alcotest.(check (float 0.001)) "empty" 0.0 (H.fraction_between h 500.0 500.0));
    tc "skewed distribution is captured" (fun () ->
        (* 90% of mass at the low end. *)
        let sample =
          List.init 900 (fun i -> float_of_int (i mod 10))
          @ List.init 100 (fun i -> 10.0 +. float_of_int i)
        in
        let h = Option.get (H.create sample) in
        (* value < 10 covers 90% of values but only ~9% of the range;
           interpolation within the straddled bucket costs some precision *)
        Alcotest.(check bool) "skew detected" true (H.fraction_below h 10.0 > 0.7));
    tc "point_density" (fun () ->
        let h = Option.get (H.create uniform_sample) in
        Alcotest.(check bool) "roughly 1/buckets" true
          (let d = H.point_density h 500.0 in
           d > 0.03 && d < 0.1);
        Alcotest.(check (float 0.0001)) "outside" 0.0 (H.point_density h 5000.0));
    tc "custom bucket count" (fun () ->
        let h = Option.get (H.create ~buckets:4 uniform_sample) in
        Alcotest.(check int) "four" 4 (H.bucket_count h));
  ]

(* A table with a skewed numeric path: 90% of values uniform in [0,100), a
   sparse tail up to 1000 — skew coarser than the histogram bucket width, so
   equi-width buckets capture it. *)
let skewed_catalog () =
  let catalog = Cat.create () in
  let store = DS.create "T" in
  for i = 0 to 999 do
    let v =
      if i mod 10 < 9 then float_of_int (i mod 100)
      else float_of_int (100 + (i mod 900))
    in
    ignore (DS.insert store (Helpers.xml (Printf.sprintf "<a><v>%.1f</v></a>" v)))
  done;
  ignore (Cat.add_table catalog store);
  ignore (Cat.runstats catalog "T");
  catalog

let with_histograms flag f =
  let saved = Atomic.get Sel.use_histograms in
  Atomic.set Sel.use_histograms flag;
  Fun.protect ~finally:(fun () -> Atomic.set Sel.use_histograms saved) f

let selectivity_tests =
  [
    tc "runstats attaches histograms" (fun () ->
        let catalog = skewed_catalog () in
        let stats = Cat.stats catalog "T" in
        match Xia_storage.Path_stats.find stats [ "a"; "v" ] with
        | Some info -> Alcotest.(check bool) "present" true (info.histogram <> None)
        | None -> Alcotest.fail "path missing");
    tc "histogram beats uniform assumption on skewed data" (fun () ->
        let catalog = skewed_catalog () in
        let stats = Cat.stats catalog "T" in
        let cond = R.Ccompare (Xia_xpath.Ast.Lt, Xia_xpath.Ast.Number_lit 100.0) in
        let est flag =
          with_histograms flag (fun () ->
              (Sel.lookup_estimate stats (Helpers.pattern "/a/v") D.Ddouble cond)
                .Sel.entries_matched)
        in
        (* truth: 900 of 1000 values are < 100 *)
        let with_hist = est true and without = est false in
        Alcotest.(check bool) "hist close" true (Float.abs (with_hist -. 900.0) < 150.0);
        Alcotest.(check bool) "uniform far" true (without < 300.0));
    tc "optimizer picks better plans with histograms" (fun () ->
        (* On the skewed table, "v > 900" is rare (true sel ~1%): the uniform
           model estimates ~10%; both should still index, but estimated rows
           must differ. *)
        let catalog = skewed_catalog () in
        let stmt = Helpers.statement "for $x in T/a where $x/v < 100 return $x" in
        let docs flag =
          with_histograms flag (fun () ->
              match (Xia_optimizer.Optimizer.optimize catalog stmt).Xia_optimizer.Plan.bindings with
              | [ b ] -> b.Xia_optimizer.Plan.est_docs
              | _ -> Alcotest.fail "one binding expected")
        in
        Alcotest.(check bool) "hist estimates many" true (docs true > 700.0);
        Alcotest.(check bool) "uniform underestimates" true (docs false < 400.0));
  ]

let suites =
  [ ("histogram.core", histogram_tests); ("histogram.selectivity", selectivity_tests) ]
