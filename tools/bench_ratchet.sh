#!/usr/bin/env bash
# Bench ratchet: the advisor exhibits' optimizer-call counts must never
# regress, and wall-clock must stay within a noise tolerance of baseline.
#
# Re-runs the quick-scale advisor exhibits (par plus the scale10k
# compression pair) in a scratch directory (so the committed
# BENCH_advisor.json is never clobbered), extracts per-exhibit
# optimizer_calls / optimizer_calls_raw / wall_seconds from the fresh JSON,
# and compares against the committed bench.baseline (one
# "exhibit metric value" triple per line, '#' comments allowed).
#
# The scale10k/scale10k-raw pair is the workload-compression acceptance
# exhibit: the compressed run's raw-equivalent calls must stay >= 10x below
# the uncompressed run's — checked explicitly below, on top of the
# per-exhibit ratchets.
#
# Call counts are deterministic — any increase fails hard.  Wall-clock is
# noisy, so it only fails above WALL_TOL x baseline (default 3.0; override
# via the environment for stricter CI hosts).
#
# The baseline may also carry absolute micro-benchmark ceilings:
#   micro <test> budget_ns <ceiling>
# checked against the committed BENCH_micro.json's ns_per_run for that
# test (no re-run — the committed exhibit must stay within budget when it
# is regenerated).  Budgets are hand-set, so --write-baseline preserves
# them verbatim.
#
#   dune build @bench-ratchet       via the build (sandboxed source copy)
#   ./tools/bench_ratchet.sh        standalone from a checkout
#
# Re-baseline — after a deliberate cost-model change, or to lock in a new
# batching win (run standalone, not through dune, so the file lands in the
# checkout):
#   ./tools/bench_ratchet.sh --write-baseline
#
# The baseline must agree with the committed BENCH_advisor.json: regenerate
# both together (`dune exec bench/main.exe -- quick par scale10k scale10k-raw`,
# then `./tools/bench_ratchet.sh --write-baseline`).

set -euo pipefail
cd "$(dirname "$0")/.."

WALL_TOL="${WALL_TOL:-3.0}"
EXHIBITS="par scale10k scale10k-raw"
COMPRESS_MIN_RATIO=10

mode=check
exe=""
for arg in "$@"; do
  case "$arg" in
    --write-baseline) mode=write ;;
    *) exe="$arg" ;;
  esac
done

if [ -z "$exe" ]; then
  exe=_build/default/bench/main.exe
  if [ ! -x "$exe" ]; then
    dune build bench/main.exe
  fi
fi
exe=$(realpath "$exe")

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
(cd "$scratch" && "$exe" quick $EXHIBITS >bench.log 2>&1) || {
  echo "bench-ratchet: bench run failed:" >&2
  cat "$scratch/bench.log" >&2
  exit 2
}
fresh="$scratch/BENCH_advisor.json"
if [ ! -f "$fresh" ]; then
  echo "bench-ratchet: bench run produced no BENCH_advisor.json" >&2
  exit 2
fi

# One exhibit object per line; pull "<name> <metric> <value>" triples out of
# the compact JSON with awk (no jq in the toolchain image).
metrics_of() {
  awk '
    match($0, /"name": "[^"]*"/) {
      name = substr($0, RSTART + 9, RLENGTH - 10)
      for (m = 1; m <= 3; m++) {
        metric = (m == 1 ? "optimizer_calls" : m == 2 ? "optimizer_calls_raw" : "wall_seconds")
        pat = "\"" metric "\": "
        if (index($0, pat) > 0) {
          v = $0; sub(".*" pat, "", v); sub(/[,}].*/, "", v)
          print name, metric, v
        }
      }
    }' "$1"
}

fresh_metrics=$(metrics_of "$fresh")

if [ "$mode" = write ]; then
  budgets=""
  if [ -f bench.baseline ]; then
    budgets=$(grep '^micro ' bench.baseline || true)
  fi
  {
    echo "# Advisor-bench ratchet baseline: per-exhibit optimizer call counts"
    echo "# and wall-clock from the quick-scale run, plus hand-set absolute"
    echo "# micro ceilings (\"micro <test> budget_ns <ceiling>\", checked"
    echo "# against the committed BENCH_micro.json).  Checked by"
    echo "# tools/bench_ratchet.sh; regenerate (together with the committed"
    echo "# BENCH_advisor.json) via ./tools/bench_ratchet.sh --write-baseline"
    printf '%s\n' "$fresh_metrics"
    [ -n "$budgets" ] && printf '%s\n' "$budgets"
  } >bench.baseline
  echo "bench-ratchet: wrote bench.baseline"
  exit 0
fi

if [ ! -f bench.baseline ]; then
  echo "bench-ratchet: bench.baseline missing; create it with ./tools/bench_ratchet.sh --write-baseline" >&2
  exit 2
fi

baseline_of() {
  awk -v ex="$1" -v metric="$2" '$1 == ex && $2 == metric { print $3 }' bench.baseline
}

fail=0
while read -r ex metric value; do
  [ -z "$ex" ] && continue
  base=$(baseline_of "$ex" "$metric")
  if [ -z "$base" ]; then
    echo "bench-ratchet: $ex.$metric not in baseline — re-baseline with ./tools/bench_ratchet.sh --write-baseline" >&2
    fail=1
    continue
  fi
  case "$metric" in
    wall_seconds)
      if awk -v v="$value" -v b="$base" -v tol="$WALL_TOL" 'BEGIN { exit !(v > b * tol) }'; then
        echo "bench-ratchet: $ex wall-clock regressed: ${value}s vs baseline ${base}s (tolerance ${WALL_TOL}x)" >&2
        fail=1
      fi
      ;;
    *)
      if [ "$value" -gt "$base" ]; then
        echo "bench-ratchet: $ex.$metric regressed: $value calls, baseline $base" >&2
        fail=1
      elif [ "$value" -lt "$base" ]; then
        echo "bench-ratchet: $ex.$metric improved: $value calls, baseline $base — tighten with ./tools/bench_ratchet.sh --write-baseline"
      fi
      ;;
  esac
done <<<"$fresh_metrics"

# Compression acceptance: the compressed scale exhibit must need at most
# 1/COMPRESS_MIN_RATIO of the uncompressed path's raw-equivalent calls.
fresh_of() {
  awk -v ex="$1" -v metric="$2" '$1 == ex && $2 == metric { print $3 }' <<<"$fresh_metrics"
}
raw_compressed=$(fresh_of scale10k optimizer_calls_raw)
raw_uncompressed=$(fresh_of scale10k-raw optimizer_calls_raw)
if [ -n "$raw_compressed" ] && [ -n "$raw_uncompressed" ]; then
  if [ $((raw_compressed * COMPRESS_MIN_RATIO)) -gt "$raw_uncompressed" ]; then
    echo "bench-ratchet: compression ratio regressed: scale10k raw-equivalent $raw_compressed vs uncompressed $raw_uncompressed (must be >= ${COMPRESS_MIN_RATIO}x apart)" >&2
    fail=1
  fi
else
  echo "bench-ratchet: scale10k/scale10k-raw missing from fresh metrics" >&2
  fail=1
fi

# Absolute micro ceilings against the committed BENCH_micro.json.
if grep -q '^micro ' bench.baseline 2>/dev/null; then
  if [ ! -f BENCH_micro.json ]; then
    echo "bench-ratchet: bench.baseline has micro budgets but BENCH_micro.json is missing" >&2
    fail=1
  else
    while read -r _ test metric ceiling; do
      [ "$metric" = budget_ns ] || continue
      actual=$(awk -v t="$test" '
        match($0, /"name": "[^"]*"/) {
          name = substr($0, RSTART + 9, RLENGTH - 10)
          if (name == t && match($0, /"ns_per_run": [0-9.]+/)) {
            v = substr($0, RSTART + 14, RLENGTH - 14)
            print v
          }
        }' BENCH_micro.json)
      if [ -z "$actual" ]; then
        echo "bench-ratchet: micro test $test not in BENCH_micro.json — regenerate it (dune exec bench/main.exe -- micro)" >&2
        fail=1
      elif awk -v v="$actual" -v b="$ceiling" 'BEGIN { exit !(v > b) }'; then
        echo "bench-ratchet: micro $test over budget: ${actual} ns/run, ceiling ${ceiling}" >&2
        fail=1
      fi
    done < <(grep '^micro ' bench.baseline)
  fi
fi

if [ "$fail" -ne 0 ]; then
  {
    echo "bench-ratchet: bench metrics above baseline.  Either fix the"
    echo "bench-ratchet: regression, or — if the cost change is deliberate —"
    echo "bench-ratchet: re-baseline and commit:"
    echo "bench-ratchet:   ./tools/bench_ratchet.sh --write-baseline && git add bench.baseline"
  } >&2
  exit 1
fi
echo "bench-ratchet: OK (calls at or below baseline, wall-clock within ${WALL_TOL}x)"
