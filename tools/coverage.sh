#!/usr/bin/env bash
# Coverage build over lib/ via bisect_ppx.
#
# bisect_ppx is an *optional* dependency: every lib/*/dune declares
# (instrumentation (backend bisect_ppx)), which dune treats as inert unless
# a build passes --instrument-with bisect_ppx, so the default build and the
# test suite never need the backend installed.
#
#   dune build @coverage    report whether the backend is installed
#   ./tools/coverage.sh     instrumented test run + HTML/summary report
#
# The first positional argument (supplied by the @coverage alias as
# %{lib-available:bisect_ppx}) short-circuits the availability probe.

set -euo pipefail
cd "$(dirname "$0")/.."

available="${1:-}"
if [ -z "$available" ]; then
  if command -v ocamlfind >/dev/null 2>&1 \
     && ocamlfind query bisect_ppx >/dev/null 2>&1; then
    available=true
  else
    available=false
  fi
fi

if [ "$available" != "true" ]; then
  echo "coverage: bisect_ppx is not installed; skipping the instrumented build."
  echo "coverage: 'opam install bisect_ppx' then re-run ./tools/coverage.sh"
  exit 0
fi

if [ -n "${INSIDE_DUNE:-}" ]; then
  # Invoked from the @coverage alias: a nested dune build would contend for
  # the lock of the build that is running this action, so only report.
  echo "coverage: bisect_ppx is installed."
  echo "coverage: run ./tools/coverage.sh directly for the instrumented build and report."
  exit 0
fi

rm -f _build/default/test/bisect*.coverage
dune build --instrument-with bisect_ppx --force @runtest
bisect-ppx-report html -o _coverage _build/default/test/bisect*.coverage
bisect-ppx-report summary _build/default/test/bisect*.coverage
echo "coverage: HTML report in _coverage/index.html"
