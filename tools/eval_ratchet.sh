#!/usr/bin/env bash
# Recommendation-quality ratchet: regret against the exhaustive optimum must
# never fall, the search's optimizer-call counts must never rise, and the
# predicted-vs-actual correlation (executor validation) must never fall.
#
# Re-runs `xia_advise eval --small` in a scratch directory (so the committed
# EVAL_advisor.json is never clobbered), extracts per-(case x budget x
# algorithm) regret / optimizer_calls / ratio and the per-case spearman from
# the fresh JSON, and compares against the committed eval.baseline (one
# "key metric value" triple per line, '#' comments allowed; keys are
# case:frac:algorithm, or just the case name for spearman).
#
# Every ratcheted number is deterministic (ground truth is the exhaustive
# optimum under the unperturbed cost model; "actual" is the executor's
# simulated cost, not wall-clock), so any regret or spearman decrease and
# any call-count increase fails hard.  Additionally every predicted/actual
# ratio must sit inside a sanity band [RATIO_MIN, RATIO_MAX]: the cost model
# may be scaled arbitrarily relative to the executor, but a drift of the
# RATIO outside the band means the model's ranking power is suspect.
#
#   dune build @eval-ratchet        via the build (sandboxed source copy)
#   ./tools/eval_ratchet.sh         standalone from a checkout
#
# XIA_EVAL_PERTURB (default 1) is forwarded to `eval --perturb`: it
# multiplies every index-plan cost during the search phase while ground
# truth stays unperturbed, so a large factor collapses recommendations and
# the ratchet MUST fail — the harness's own negative test
# (test/dune's eval_ratchet_perturb rule) relies on that.
#
# Re-baseline — after a deliberate cost-model or search change (run
# standalone, not through dune, so the files land in the checkout):
#   ./tools/eval_ratchet.sh --write-baseline
# This regenerates BOTH eval.baseline and the committed EVAL_advisor.json
# from one fresh run, so the two can never drift apart.

set -euo pipefail
cd "$(dirname "$0")/.."

RATIO_MIN="${RATIO_MIN:-0.25}"
RATIO_MAX="${RATIO_MAX:-4.0}"
PERTURB="${XIA_EVAL_PERTURB:-1}"

mode=check
exe=""
for arg in "$@"; do
  case "$arg" in
    --write-baseline) mode=write ;;
    *) exe="$arg" ;;
  esac
done

if [ -z "$exe" ]; then
  exe=_build/default/bin/xia_advise.exe
  if [ ! -x "$exe" ]; then
    dune build bin/xia_advise.exe
  fi
fi
exe=$(realpath "$exe")

scratch=$(mktemp -d)
trap 'rm -rf "$scratch"' EXIT
(cd "$scratch" && "$exe" eval --small --perturb "$PERTURB" \
  --json EVAL_advisor.json >eval.log 2>&1) || {
  echo "eval-ratchet: eval run failed:" >&2
  cat "$scratch/eval.log" >&2
  exit 2
}
fresh="$scratch/EVAL_advisor.json"
if [ ! -f "$fresh" ]; then
  echo "eval-ratchet: eval run produced no EVAL_advisor.json" >&2
  exit 2
fi

# One entry object per line, compact "name":value fields (no space).  Entry
# lines carry "algorithm"; case-header lines carry "spearman".
metrics_of() {
  awk '
    function field(name,    v, pat) {
      pat = "\"" name "\":"
      if (index($0, pat) == 0) return ""
      v = $0; sub(".*" pat, "", v); sub(/^"/, "", v); sub(/[",}].*/, "", v)
      return v
    }
    field("algorithm") != "" {
      key = field("case") ":" field("frac") ":" field("algorithm")
      print key, "regret", field("regret")
      print key, "calls", field("optimizer_calls")
      print key, "ratio", field("ratio")
      next
    }
    field("spearman") != "" {
      print field("case"), "spearman", field("spearman")
    }' "$1"
}

fresh_metrics=$(metrics_of "$fresh")

if [ "$mode" = write ]; then
  {
    echo "# Recommendation-quality ratchet baseline: per-(case x budget x"
    echo "# algorithm) regret vs the exhaustive optimum, search optimizer-call"
    echo "# counts, predicted/actual ratios, and per-case Spearman correlation"
    echo "# of predicted vs executed benefit.  Checked by tools/eval_ratchet.sh;"
    echo "# regenerate (together with the committed EVAL_advisor.json) via"
    echo "# ./tools/eval_ratchet.sh --write-baseline"
    printf '%s\n' "$fresh_metrics"
  } >eval.baseline
  cp "$fresh" EVAL_advisor.json
  echo "eval-ratchet: wrote eval.baseline and EVAL_advisor.json"
  exit 0
fi

if [ ! -f eval.baseline ]; then
  echo "eval-ratchet: eval.baseline missing; create it with ./tools/eval_ratchet.sh --write-baseline" >&2
  exit 2
fi

baseline_of() {
  awk -v key="$1" -v metric="$2" '$1 == key && $2 == metric { print $3 }' eval.baseline
}

fail=0
while read -r key metric value; do
  [ -z "$key" ] && continue
  if [ "$metric" = ratio ]; then
    # Sanity band, not a ratchet: -1 marks "no measurable improvement".
    if awk -v v="$value" -v lo="$RATIO_MIN" -v hi="$RATIO_MAX" \
        'BEGIN { exit !(v != -1 && (v < lo || v > hi)) }'; then
      echo "eval-ratchet: $key predicted/actual ratio $value outside sanity band [$RATIO_MIN, $RATIO_MAX]" >&2
      fail=1
    fi
    continue
  fi
  base=$(baseline_of "$key" "$metric")
  if [ -z "$base" ]; then
    echo "eval-ratchet: $key.$metric not in baseline — re-baseline with ./tools/eval_ratchet.sh --write-baseline" >&2
    fail=1
    continue
  fi
  case "$metric" in
    regret|spearman)
      if awk -v v="$value" -v b="$base" 'BEGIN { exit !(v < b) }'; then
        echo "eval-ratchet: $key $metric regressed: $value vs baseline $base" >&2
        fail=1
      elif awk -v v="$value" -v b="$base" 'BEGIN { exit !(v > b) }'; then
        echo "eval-ratchet: $key $metric improved: $value vs baseline $base — tighten with ./tools/eval_ratchet.sh --write-baseline"
      fi
      ;;
    calls)
      if [ "$value" -gt "$base" ]; then
        echo "eval-ratchet: $key optimizer calls regressed: $value, baseline $base" >&2
        fail=1
      elif [ "$value" -lt "$base" ]; then
        echo "eval-ratchet: $key optimizer calls improved: $value, baseline $base — tighten with ./tools/eval_ratchet.sh --write-baseline"
      fi
      ;;
  esac
done <<<"$fresh_metrics"

if [ "$fail" -ne 0 ]; then
  {
    echo "eval-ratchet: recommendation quality below baseline.  Either fix"
    echo "eval-ratchet: the regression, or — if the cost-model or search"
    echo "eval-ratchet: change is deliberate — re-baseline and commit:"
    echo "eval-ratchet:   ./tools/eval_ratchet.sh --write-baseline && git add eval.baseline EVAL_advisor.json"
  } >&2
  exit 1
fi
echo "eval-ratchet: OK (regret and spearman at or above baseline, calls at or below, ratios in band)"
