#!/usr/bin/env bash
# Lint ratchet: per-check-ID finding counts must never regress.
#
# Runs bin/xia_lint over lib/, bin/ and bench/ WITHOUT the allow file — the
# ratchet tracks the raw debt the suppressions hide — and compares the
# per-ID finding counts against the committed lint.baseline (one "ID count"
# pair per line, '#' comments allowed).  A count above baseline fails; a
# count below baseline passes but nags until the baseline is tightened.
#
#   dune build @lint-ratchet        via the build (sandboxed source copy)
#   ./tools/lint_ratchet.sh         standalone from a checkout
#
# Re-baseline — only after deliberately accepting new debt, or to lock in
# paid-down debt (run standalone, not through dune, so the file lands in
# the checkout):
#   ./tools/lint_ratchet.sh --write-baseline

set -euo pipefail
cd "$(dirname "$0")/.."

mode=check
exe=""
for arg in "$@"; do
  case "$arg" in
    --write-baseline) mode=write ;;
    *) exe="$arg" ;;
  esac
done

if [ -z "$exe" ]; then
  exe=_build/default/bin/xia_lint.exe
  if [ ! -x "$exe" ]; then
    dune build bin/xia_lint.exe
  fi
fi

out=$(mktemp)
trap 'rm -f "$out"' EXIT
status=0
"$exe" --json lib bin bench >"$out" || status=$?
if [ "$status" -gt 1 ]; then
  echo "lint-ratchet: xia_lint failed (exit $status)" >&2
  exit "$status"
fi

# Findings are one compact object per line ('"id":"D001"', no space); the
# catalog header in the envelope uses '"id": "D001"' with a space, so this
# pattern only counts findings.
counts=$(grep -o '"id":"[A-Z0-9]*"' "$out" | sed 's/"id":"\([A-Z0-9]*\)"/\1/' \
  | sort | uniq -c | awk '{print $2, $1}' || true)

if [ "$mode" = write ]; then
  {
    echo "# xia_lint ratchet baseline: raw (unsuppressed) per-check-ID finding"
    echo "# counts over lib/ bin/ bench/.  Checked by tools/lint_ratchet.sh;"
    echo "# regenerate with ./tools/lint_ratchet.sh --write-baseline"
    printf '%s\n' "$counts"
  } >lint.baseline
  echo "lint-ratchet: wrote lint.baseline"
  exit 0
fi

if [ ! -f lint.baseline ]; then
  echo "lint-ratchet: lint.baseline missing; create it with ./tools/lint_ratchet.sh --write-baseline" >&2
  exit 2
fi

baseline_of() {
  awk -v id="$1" '$1 == id { print $2 }' lint.baseline
}

fail=0
while read -r id n; do
  [ -z "$id" ] && continue
  base=$(baseline_of "$id")
  base=${base:-0}
  if [ "$n" -gt "$base" ]; then
    echo "lint-ratchet: $id regressed: $n findings, baseline $base" >&2
    fail=1
  elif [ "$n" -lt "$base" ]; then
    echo "lint-ratchet: $id improved: $n findings, baseline $base — tighten with ./tools/lint_ratchet.sh --write-baseline"
  fi
done <<<"$counts"

# IDs still in the baseline but gone from the report: debt fully paid.
while read -r id base; do
  case "$id" in '' | '#'*) continue ;; esac
  if ! printf '%s\n' "$counts" | awk -v id="$id" '$1 == id { found = 1 } END { exit !found }'; then
    echo "lint-ratchet: $id fully paid down (baseline $base) — tighten with ./tools/lint_ratchet.sh --write-baseline"
  fi
done <lint.baseline

if [ "$fail" -ne 0 ]; then
  {
    echo "lint-ratchet: new findings above baseline.  Either fix them, or — if"
    echo "lint-ratchet: the debt is deliberate — re-baseline and commit:"
    echo "lint-ratchet:   ./tools/lint_ratchet.sh --write-baseline && git add lint.baseline"
  } >&2
  exit 1
fi
echo "lint-ratchet: OK (counts at or below baseline)"
