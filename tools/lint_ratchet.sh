#!/usr/bin/env bash
# Lint ratchet: per-check-ID finding counts must never regress, and
# neither may the number of findings the allow file suppresses.
#
# Two xia_lint runs over lib/, bin/ and bench/:
#   1. WITHOUT the allow file — the raw debt the suppressions hide.
#      Baseline lines: "ID count".
#   2. WITH the allow file — the per-ID suppression totals from the JSON
#      report's "suppressed"."by_id" object.  Baseline lines:
#      "allow ID count" (format v2; a baseline without any "allow" line
#      is the v1 format and fails with a re-baseline hint).
#
# Either count rising above its baseline fails; a count below baseline
# passes but nags until the baseline is tightened.
#
#   dune build @lint-ratchet        via the build (sandboxed source copy)
#   ./tools/lint_ratchet.sh         standalone from a checkout
#
# Re-baseline — only after deliberately accepting new debt, or to lock in
# paid-down debt (run standalone, not through dune, so the file lands in
# the checkout):
#   ./tools/lint_ratchet.sh --write-baseline

set -euo pipefail
cd "$(dirname "$0")/.."

mode=check
exe=""
for arg in "$@"; do
  case "$arg" in
    --write-baseline) mode=write ;;
    *) exe="$arg" ;;
  esac
done

if [ -z "$exe" ]; then
  exe=_build/default/bin/xia_lint.exe
  if [ ! -x "$exe" ]; then
    dune build bin/xia_lint.exe
  fi
fi

out=$(mktemp)
trap 'rm -f "$out"' EXIT
status=0
"$exe" --json lib bin bench >"$out" || status=$?
if [ "$status" -gt 1 ]; then
  echo "lint-ratchet: xia_lint failed (exit $status)" >&2
  exit "$status"
fi

suppressed_out=$(mktemp)
trap 'rm -f "$out" "$suppressed_out"' EXIT
status=0
"$exe" --json --allow-file lint.allow lib bin bench >"$suppressed_out" || status=$?
if [ "$status" -gt 1 ]; then
  echo "lint-ratchet: xia_lint --allow-file failed (exit $status)" >&2
  exit "$status"
fi

# Findings are one compact object per line ('"id":"D001"', no space); the
# catalog header in the envelope uses '"id": "D001"' with a space, so this
# pattern only counts findings.
counts=$(grep -o '"id":"[A-Z0-9]*"' "$out" | sed 's/"id":"\([A-Z0-9]*\)"/\1/' \
  | sort | uniq -c | awk '{print $2, $1}' || true)

# Per-ID suppression totals from the "suppressed"."by_id" object — one line
# in the envelope, '"ID": n' pairs inside the braces.
allow_counts=$(grep -o '"by_id": {[^}]*}' "$suppressed_out" \
  | grep -o '"[A-Z0-9]*": [0-9]*' \
  | sed 's/"\([A-Z0-9]*\)": \([0-9]*\)/allow \1 \2/' || true)

if [ "$mode" = write ]; then
  {
    echo "# xia_lint ratchet baseline (format v2): raw (unsuppressed)"
    echo "# per-check-ID finding counts over lib/ bin/ bench/ (\"ID count\"),"
    echo "# plus per-ID allow-file suppression totals (\"allow ID count\")."
    echo "# Checked by tools/lint_ratchet.sh; regenerate with"
    echo "# ./tools/lint_ratchet.sh --write-baseline"
    printf '%s\n' "$counts"
    [ -n "$allow_counts" ] && printf '%s\n' "$allow_counts"
  } >lint.baseline
  echo "lint-ratchet: wrote lint.baseline"
  exit 0
fi

if [ ! -f lint.baseline ]; then
  echo "lint-ratchet: lint.baseline missing; create it with ./tools/lint_ratchet.sh --write-baseline" >&2
  exit 2
fi

if ! grep -q '^allow ' lint.baseline && [ -n "$allow_counts" ]; then
  echo "lint-ratchet: lint.baseline is the v1 format (no 'allow ID count' lines); re-baseline with ./tools/lint_ratchet.sh --write-baseline" >&2
  exit 2
fi

baseline_of() {
  awk -v id="$1" '$1 == id { print $2 }' lint.baseline
}

allow_baseline_of() {
  awk -v id="$1" '$1 == "allow" && $2 == id { print $3 }' lint.baseline
}

fail=0
while read -r id n; do
  [ -z "$id" ] && continue
  base=$(baseline_of "$id")
  base=${base:-0}
  if [ "$n" -gt "$base" ]; then
    echo "lint-ratchet: $id regressed: $n findings, baseline $base" >&2
    fail=1
  elif [ "$n" -lt "$base" ]; then
    echo "lint-ratchet: $id improved: $n findings, baseline $base — tighten with ./tools/lint_ratchet.sh --write-baseline"
  fi
done <<<"$counts"

while read -r _ id n; do
  [ -z "$id" ] && continue
  base=$(allow_baseline_of "$id")
  base=${base:-0}
  if [ "$n" -gt "$base" ]; then
    echo "lint-ratchet: $id suppressions regressed: $n suppressed, baseline $base — fix the finding instead of widening lint.allow" >&2
    fail=1
  elif [ "$n" -lt "$base" ]; then
    echo "lint-ratchet: $id suppressions improved: $n suppressed, baseline $base — tighten with ./tools/lint_ratchet.sh --write-baseline"
  fi
done <<<"$allow_counts"

# IDs still in the baseline but gone from the report: debt fully paid.
while read -r id base; do
  case "$id" in '' | '#'* | allow) continue ;; esac
  if ! printf '%s\n' "$counts" | awk -v id="$id" '$1 == id { found = 1 } END { exit !found }'; then
    echo "lint-ratchet: $id fully paid down (baseline $base) — tighten with ./tools/lint_ratchet.sh --write-baseline"
  fi
done <lint.baseline
while read -r _ id base; do
  [ -z "$id" ] && continue
  if ! printf '%s\n' "$allow_counts" | awk -v id="$id" '$2 == id { found = 1 } END { exit !found }'; then
    echo "lint-ratchet: $id suppressions fully paid down (baseline $base) — tighten with ./tools/lint_ratchet.sh --write-baseline"
  fi
done < <(grep '^allow ' lint.baseline || true)

if [ "$fail" -ne 0 ]; then
  {
    echo "lint-ratchet: new findings above baseline.  Either fix them, or — if"
    echo "lint-ratchet: the debt is deliberate — re-baseline and commit:"
    echo "lint-ratchet:   ./tools/lint_ratchet.sh --write-baseline && git add lint.baseline"
  } >&2
  exit 1
fi
echo "lint-ratchet: OK (raw and suppression counts at or below baseline)"
