(* Experiment harness: regenerates every table and figure of the paper's
   evaluation section, plus extension/ablation experiments, plus a bechamel
   micro-benchmark suite of the advisor's building blocks.

     dune exec bench/main.exe                 # everything (paper exhibits)
     dune exec bench/main.exe -- fig2 table3  # selected experiments
     dune exec bench/main.exe -- quick        # tiny data scale, all exhibits
     dune exec bench/main.exe -- micro        # bechamel micro-benchmarks

   Budgets: the paper reports disk budgets in MB against a 95 MB All-Index
   configuration; we sweep the same *ratios* against our measured All-Index
   size and print both the byte budget and the paper-equivalent MB. *)

module Advisor = Xia_advisor.Advisor
module Search = Xia_advisor.Search
module Candidate = Xia_advisor.Candidate
module Benefit = Xia_advisor.Benefit
module Enumeration = Xia_advisor.Enumeration
module Catalog = Xia_index.Catalog
module Optimizer = Xia_optimizer.Optimizer
module W = Xia_workload.Workload
module Tpox = Xia_workload.Tpox
module Xmark = Xia_workload.Xmark
module Synthetic = Xia_workload.Synthetic
module Obs = Xia_obs.Obs
module Trace = Xia_obs.Trace

let paper_all_index_mb = 95.0

(* Atomic rather than a bare ref: module-toplevel mutable state must be
   domain-safe (the lint's D001 rule), even though the flag is only written
   during argument parsing. *)
let quick = Atomic.make false

let line = String.make 86 '-'

let header title =
  Format.printf "@.%s@.== %s@.%s@." line title line

(* Lazy, not a closure over a memo ref: forced only after the quick flag is
   parsed, and safe to share once forced. *)
let tpox_catalog =
  let memo =
    Lazy.from_fun (fun () ->
        let catalog = Catalog.create () in
        if Atomic.get quick then Tpox.load ~scale:Tpox.tiny_scale catalog
        else Tpox.load catalog;
        catalog)
  in
  fun () -> Lazy.force memo

let paper_mb_of ~all_size bytes =
  paper_all_index_mb *. float_of_int bytes /. float_of_int all_size

let bytes_of_paper_mb ~all_size mb =
  int_of_float (mb /. paper_all_index_mb *. float_of_int all_size)

(* ---------- Table I / Algorithm 1: the running example ---------- *)

let table1 () =
  header
    "Table I / Section V: basic candidates of Q1,Q2 and their generalization";
  let catalog = tpox_catalog () in
  let q1 =
    {|for $sec in SECURITY('SDOC')/Security where $sec/Symbol = "BCIIPRC" return $sec|}
  in
  let q2 =
    {|for $sec in SECURITY('SDOC')/Security[Yield>4.5] where $sec/SecInfo/*/Sector = "Energy" return <Security>{$sec/Name}</Security>|}
  in
  let wl = W.of_strings [ q1; q2 ] in
  let set = Enumeration.candidates catalog wl in
  Format.printf "Workload: the paper's Q1 and Q2.@.@.";
  List.iter
    (fun (c : Candidate.t) ->
      Format.printf "  C%d  %-35s %-8s %s@." (c.Candidate.id + 1)
        (Xia_xpath.Pattern.to_string c.Candidate.def.Xia_index.Index_def.pattern)
        (Xia_index.Index_def.data_type_to_string c.Candidate.def.Xia_index.Index_def.dtype)
        (match c.Candidate.origin with
        | Candidate.Basic -> "(basic)"
        | Candidate.General -> "(generalized)"))
    (Candidate.to_list set);
  Format.printf
    "@.Paper: C1=/Security/Symbol, C2=/Security/SecInfo/*/Sector, C3=/Security/Yield,@.\
     and generalization adds C4=/Security//* (string).@."

(* ---------- Figure 2: estimated speedup vs disk budget ---------- *)

let budget_fractions = [ 0.1; 0.2; 0.35; 0.5; 0.65; 0.8; 1.0; 1.25; 1.5; 2.0 ]

let fig2 () =
  header "Figure 2: estimated workload speedup vs disk space budget (TPoX, 11 queries)";
  let catalog = tpox_catalog () in
  let workload = Tpox.workload () in
  let session = Advisor.create_session catalog workload in
  let all = Advisor.session_advise session ~budget:max_int Advisor.All_index in
  let all_size = all.Advisor.outcome.Search.size in
  Format.printf "All-Index configuration: %d indexes, %d KB, speedup %.2fx@.@."
    (List.length all.Advisor.outcome.Search.config)
    (all_size / 1024) all.Advisor.est_speedup;
  Format.printf "%9s %9s | %8s %10s %9s %9s %8s | %9s@." "budget" "~paperMB"
    "greedy" "heuristic" "td-lite" "td-full" "dp" "all-index";
  Format.printf "%s@." line;
  List.iter
    (fun frac ->
      let budget = int_of_float (frac *. float_of_int all_size) in
      let sp alg = (Advisor.session_advise session ~budget alg).Advisor.est_speedup in
      Format.printf "%8dK %8.0fM | %7.2fx %9.2fx %8.2fx %8.2fx %7.2fx | %8.2fx@."
        (budget / 1024)
        (paper_mb_of ~all_size budget)
        (sp Advisor.Greedy) (sp Advisor.Greedy_heuristics) (sp Advisor.Top_down_lite)
        (sp Advisor.Top_down_full) (sp Advisor.Dynamic_programming)
        all.Advisor.est_speedup)
    budget_fractions;
  Format.printf
    "@.Expected shape (paper): speedup rises with budget toward All-Index; plain@.\
     greedy needs more space for the same speedup (it picks redundant indexes);@.\
     heuristics/td-lite track each other; td-full is best and can beat DP.@."

(* ---------- Figure 3: advisor run time vs disk budget ---------- *)

let fig3 () =
  header "Figure 3: advisor run time (fresh advisor per point) vs disk budget";
  let catalog = tpox_catalog () in
  (* A richer workload (11 TPoX + 29 synthetic queries) so the searches have
     enough candidates for their run times to diverge. *)
  let workload =
    Tpox.workload ()
    @ Synthetic.workload ~seed:5 catalog (Catalog.table_names catalog) 29
  in
  (* Measure the All-Index size once. *)
  let session = Advisor.create_session catalog workload in
  let all = Advisor.session_advise session ~budget:max_int Advisor.All_index in
  let all_size = all.Advisor.outcome.Search.size in
  Format.printf "%9s | %26s %26s %26s@." "~paperMB" "heuristic (s / calls)"
    "td-lite (s / calls)" "td-full (s / calls)";
  Format.printf "%s@." line;
  let algorithms =
    [ Advisor.Greedy_heuristics; Advisor.Top_down_lite; Advisor.Top_down_full ]
  in
  List.iter
    (fun frac ->
      let budget = int_of_float (frac *. float_of_int all_size) in
      let cells =
        List.map
          (fun alg ->
            let r, elapsed =
              Trace.timed "fig3.advise" (fun () ->
                  Advisor.advise catalog workload ~budget alg)
            in
            (elapsed, r.Advisor.outcome.Search.optimizer_calls))
          algorithms
      in
      Format.printf "%8.0fM |" (paper_mb_of ~all_size budget);
      List.iter (fun (s, c) -> Format.printf "    %10.3fs / %6d" s c) cells;
      Format.printf "@.")
    [ 0.25; 0.5; 1.0; 1.5; 2.0 ];
  Format.printf
    "@.Expected shape (paper): top-down full is the most expensive (up to ~7x the@.\
     heuristic search) and gets cheaper as the budget grows (fewer replacements).@."

(* ---------- Table III: number of candidate indexes ---------- *)

let table3 () =
  header "Table III: candidate counts for synthetic random-path workloads";
  let catalog = tpox_catalog () in
  let tables = Catalog.table_names catalog in
  Format.printf "%8s | %12s | %12s | %8s@." "queries" "basic cands" "total cands"
    "growth";
  Format.printf "%s@." line;
  List.iter
    (fun n ->
      let wl = Synthetic.workload ~seed:7 catalog tables n in
      let set = Enumeration.candidates catalog wl in
      let basic = List.length (Candidate.basics set) in
      let total = Candidate.cardinality set in
      Format.printf "%8d | %12d | %12d | %7.0f%%@." n basic total
        (100.0 *. float_of_int (total - basic) /. float_of_int (max 1 basic)))
    [ 10; 20; 30; 40; 50 ];
  Format.printf
    "@.Paper: 12->16, 23->34, 33->49, 42->60, 52->81 (expansion up to ~50%%).@."

(* ---------- Table IV: general vs specific indexes recommended ---------- *)

let table4 () =
  header "Table IV: general (G) and specific (S) indexes recommended per budget";
  let catalog = tpox_catalog () in
  let workload = Tpox.workload () in
  let session = Advisor.create_session catalog workload in
  let all = Advisor.session_advise session ~budget:max_int Advisor.All_index in
  let all_size = all.Advisor.outcome.Search.size in
  Format.printf "%10s | %16s | %16s | %16s@." "budget" "top-down lite" "top-down full"
    "heuristics";
  Format.printf "%s@." line;
  List.iter
    (fun paper_mb ->
      let budget = bytes_of_paper_mb ~all_size paper_mb in
      let gs alg =
        let r = Advisor.session_advise session ~budget alg in
        (r.Advisor.general_count, r.Advisor.specific_count)
      in
      let gl, sl = gs Advisor.Top_down_lite in
      let gf, sf = gs Advisor.Top_down_full in
      let gh, sh = gs Advisor.Greedy_heuristics in
      Format.printf "%8.0fMB | %8s %7s | %8s %7s | %8s %7s@." paper_mb
        (Printf.sprintf "G: %d" gl) (Printf.sprintf "S: %d" sl)
        (Printf.sprintf "G: %d" gf) (Printf.sprintf "S: %d" sf)
        (Printf.sprintf "G: %d" gh) (Printf.sprintf "S: %d" sh))
    [ 100.0; 500.0; 1000.0; 2000.0 ];
  Format.printf
    "@.Paper: heuristics recommends (almost) no general indexes; top-down@.\
     recommends more general indexes the more disk space it has.@."

(* ---------- Figures 4 and 5: generalization to unseen queries ---------- *)

let train_test_workloads () =
  let catalog = tpox_catalog () in
  let test = Tpox.workload () @ Tpox.variation_queries () in
  (catalog, test)

let fig4 () =
  header "Figure 4: estimated speedup on a 20-query test workload vs training size";
  let catalog, test = train_test_workloads () in
  let session = Advisor.create_session catalog test in
  let all = Advisor.session_advise session ~budget:max_int Advisor.All_index in
  let budget = bytes_of_paper_mb ~all_size:all.Advisor.outcome.Search.size 2000.0 in
  Format.printf "(disk budget: paper-equivalent 2000 MB)@.@.";
  Format.printf "%6s | %10s | %10s | %10s@." "train" "all-index" "td-lite" "heuristic";
  Format.printf "%s@." line;
  let ns = if Atomic.get quick then [ 1; 5; 10; 15; 20 ] else [ 1; 2; 4; 6; 8; 10; 12; 14; 16; 18; 20 ] in
  List.iter
    (fun n ->
      let train = W.prefix n test in
      let td = Advisor.advise catalog train ~budget Advisor.Top_down_lite in
      let h = Advisor.advise catalog train ~budget Advisor.Greedy_heuristics in
      let sp r = Advisor.estimated_speedup catalog test (Advisor.indexes r) in
      Format.printf "%6d | %9.2fx | %9.2fx | %9.2fx@." n all.Advisor.est_speedup (sp td)
        (sp h))
    ns;
  Format.printf
    "@.Expected shape (paper): top-down above the heuristic while the training@.\
     workload is partial (generalization to unseen queries); both approach the@.\
     All-Index line as training grows; the specific configuration wins at n=20.@."

let fig5 () =
  header "Figure 5: ACTUAL (executed) speedup on the test workload vs training size";
  let catalog, test = train_test_workloads () in
  let session = Advisor.create_session catalog test in
  let all = Advisor.session_advise session ~budget:max_int Advisor.All_index in
  let budget = bytes_of_paper_mb ~all_size:all.Advisor.outcome.Search.size 2000.0 in
  let _, base_cost, _ = Advisor.execute_workload catalog test [] in
  let actual defs =
    let _, cost, _ = Advisor.execute_workload catalog test defs in
    base_cost /. cost
  in
  Format.printf "%6s | %10s | %10s | %10s@." "train" "all-index" "td-lite" "heuristic";
  Format.printf "%s@." line;
  let all_actual = actual (Advisor.indexes all) in
  let ns = if Atomic.get quick then [ 1; 10; 20 ] else [ 1; 4; 8; 12; 16; 20 ] in
  List.iter
    (fun n ->
      let train = W.prefix n test in
      let td = Advisor.advise catalog train ~budget Advisor.Top_down_lite in
      let h = Advisor.advise catalog train ~budget Advisor.Greedy_heuristics in
      Format.printf "%6d | %9.2fx | %9.2fx | %9.2fx@." n all_actual
        (actual (Advisor.indexes td))
        (actual (Advisor.indexes h)))
    ns;
  Format.printf
    "@.Expected shape (paper): actual speedups corroborate the estimates, with@.\
     smaller magnitudes (paper: up to ~7x actual vs thousands estimated).@."

(* ---------- Extension: XMark ---------- *)

let xmark () =
  header "Extension (tech-report): XMark workload";
  let catalog = Catalog.create () in
  if Atomic.get quick then Xmark.load ~scale:Xmark.tiny_scale catalog else Xmark.load catalog;
  let workload = Xmark.workload () in
  let session = Advisor.create_session catalog workload in
  let all = Advisor.session_advise session ~budget:max_int Advisor.All_index in
  let all_size = all.Advisor.outcome.Search.size in
  Format.printf "Candidates: %d basic, %d total.  All-Index: %d KB, %.2fx@.@."
    (List.length (Candidate.basics session.Advisor.candidates))
    (Candidate.cardinality session.Advisor.candidates)
    (all_size / 1024) all.Advisor.est_speedup;
  Format.printf "%9s | %8s %10s %9s %9s %8s@." "budget" "greedy" "heuristic" "td-lite"
    "td-full" "dp";
  Format.printf "%s@." line;
  List.iter
    (fun frac ->
      let budget = int_of_float (frac *. float_of_int all_size) in
      let sp alg = (Advisor.session_advise session ~budget alg).Advisor.est_speedup in
      Format.printf "%8dK | %7.2fx %9.2fx %8.2fx %8.2fx %7.2fx@." (budget / 1024)
        (sp Advisor.Greedy) (sp Advisor.Greedy_heuristics) (sp Advisor.Top_down_lite)
        (sp Advisor.Top_down_full) (sp Advisor.Dynamic_programming))
    [ 0.25; 0.5; 1.0; 2.0 ]

(* ---------- Extension: virtual-index cost accuracy ---------- *)

let accuracy () =
  header "Extension (tech-report): accuracy of virtual-index cost estimation";
  let catalog = tpox_catalog () in
  let workload = Tpox.workload () in
  let session = Advisor.create_session catalog workload in
  let all = Advisor.session_advise session ~budget:max_int Advisor.All_index in
  let defs = Advisor.indexes all in
  (* Virtual vs materialized size. *)
  Catalog.drop_all_indexes catalog;
  Format.printf "%-55s %12s %12s %7s@." "index pattern" "est size" "real size" "ratio";
  Format.printf "%s@." line;
  List.iter
    (fun (d : Xia_index.Index_def.t) ->
      let est =
        (Xia_index.Index_stats.derive_cached (Catalog.stats catalog d.table) d)
          .Xia_index.Index_stats.size_bytes
      in
      let pi = Catalog.create_index catalog d in
      let real = Xia_index.Physical_index.size_bytes pi in
      Format.printf "%-55s %11dB %11dB %6.2f@."
        (Printf.sprintf "%s %s" d.table (Xia_xpath.Pattern.to_string d.pattern))
        est real
        (float_of_int est /. float_of_int (max 1 real)))
    defs;
  (* Estimated vs executed cost per query, with all indexes in place. *)
  Format.printf "@.%-6s %14s %14s %8s@." "query" "est cost" "actual work" "ratio";
  Format.printf "%s@." line;
  List.iter
    (fun (item : W.item) ->
      let est =
        Optimizer.statement_cost ~mode:Optimizer.Evaluate ~virtual_config:defs catalog
          item.W.statement
      in
      let actual =
        (Xia_optimizer.Executor.run_statement catalog item.W.statement)
          .Xia_optimizer.Executor.metrics
          .Xia_optimizer.Executor.simulated_cost
      in
      Format.printf "%-6s %14.0f %14.0f %8.2f@." item.W.label est actual (est /. actual))
    workload;
  Catalog.drop_all_indexes catalog

(* ---------- Extension: maintenance-cost sensitivity ---------- *)

let maint () =
  header "Extension (tech-report): maintenance cost vs update frequency";
  let catalog = tpox_catalog () in
  let budget = 64 * 1024 * 1024 in
  Format.printf "%10s | %7s | %16s | %12s@." "DML freq" "indexes" "XORDER indexes"
    "est speedup";
  Format.printf "%s@." line;
  List.iter
    (fun update_freq ->
      let wl = Tpox.workload_with_updates ~update_freq () in
      let r = Advisor.advise catalog wl ~budget Advisor.Greedy_heuristics in
      let on_orders =
        List.length
          (List.filter
             (fun (d : Xia_index.Index_def.t) -> String.equal d.table Tpox.order_table)
             (Advisor.indexes r))
      in
      Format.printf "%10.0f | %7d | %16d | %11.2fx@." update_freq
        (List.length (Advisor.indexes r))
        on_orders r.Advisor.est_speedup)
    [ 0.0; 10.0; 1_000.0; 10_000.0; 100_000.0 ];
  Format.printf "@.Indexes on the update-heavy table drop out as DML frequency rises.@."

(* ---------- Ablation: the beta threshold of the heuristic search ---------- *)

let beta () =
  header "Ablation: beta size-expansion threshold (greedy with heuristics)";
  let catalog = tpox_catalog () in
  (* Synthetic queries produce overlapping patterns whose specific indexes
     double-store entries, so a general index can undercut (1+beta) of their
     total size. *)
  let workload =
    Tpox.workload ()
    @ Synthetic.workload ~seed:5 catalog (Catalog.table_names catalog) 29
  in
  let session = Advisor.create_session catalog workload in
  let all = Advisor.session_advise session ~budget:max_int Advisor.All_index in
  let budget = 2 * all.Advisor.outcome.Search.size in
  Format.printf "%8s | %8s %8s | %12s@." "beta" "G" "S" "est speedup";
  Format.printf "%s@." line;
  List.iter
    (fun b ->
      let r = Advisor.session_advise ~beta:b session ~budget Advisor.Greedy_heuristics in
      Format.printf "%8.2f | %8d %8d | %11.2fx@." b r.Advisor.general_count
        r.Advisor.specific_count r.Advisor.est_speedup)
    [ 0.0; 0.1; 0.5; 1.0; 4.0 ];
  Format.printf
    "@.Paper uses beta = 0.10.  A general index is admitted only when it also@.beats its children on benefit, so beta binds rarely on index-friendly@.workloads.@."

(* ---------- Ablation: histograms vs uniform range estimation ---------- *)

let hist () =
  header "Ablation: per-path histograms vs uniform-range selectivity";
  (* A skewed table: 90% of values uniform in [0,100), tail to 1000. *)
  let catalog = Catalog.create () in
  let store = Xia_storage.Doc_store.create "SKEW" in
  for i = 0 to 4999 do
    let v =
      if i mod 10 < 9 then float_of_int (i mod 100)
      else float_of_int (100 + (i mod 900))
    in
    ignore
      (Xia_storage.Doc_store.insert store
         (Xia_xml.Parser.parse_exn (Printf.sprintf "<a><v>%.1f</v></a>" v)))
  done;
  ignore (Catalog.add_table catalog store);
  ignore (Catalog.runstats catalog "SKEW");
  Format.printf "%14s | %10s | %12s | %12s@." "predicate" "true docs" "est (hist)"
    "est (uniform)";
  Format.printf "%s@." line;
  List.iter
    (fun (label, q, truth) ->
      let stmt = Xia_query.Parser.parse_statement_exn q in
      let est flag =
        let saved = Atomic.get Xia_optimizer.Selectivity.use_histograms in
        Atomic.set Xia_optimizer.Selectivity.use_histograms flag;
        Fun.protect
          ~finally:(fun () ->
            Atomic.set Xia_optimizer.Selectivity.use_histograms saved)
          (fun () ->
            match (Optimizer.optimize catalog stmt).Xia_optimizer.Plan.bindings with
            | [ b ] -> b.Xia_optimizer.Plan.est_docs
            | _ -> 0.0)
      in
      Format.printf "%14s | %10d | %12.0f | %12.0f@." label truth (est true) (est false))
    [
      ("v < 100", "for $x in SKEW/a where $x/v < 100 return $x", 4500);
      ("v < 50", "for $x in SKEW/a where $x/v < 50 return $x", 2250);
      ("v > 500", "for $x in SKEW/a where $x/v > 500 return $x", 250);
      ("v > 900", "for $x in SKEW/a where $x/v > 900 return $x", 50);
    ];
  Format.printf
    "@.Histograms track the skewed distribution; the uniform assumption misprices@.\
     both ends, which misleads the doc-scan-vs-index-scan decision.@."

(* ---------- Section VI-C: optimizer-call reduction ---------- *)

let calls () =
  header "Section VI-C: optimizer calls saved by affected sets + sub-config cache";
  let catalog = tpox_catalog () in
  let workload = Tpox.workload () in
  Format.printf "%-20s | %10s | %12s | %10s@." "algorithm" "calls" "naive calls"
    "cache hits";
  Format.printf "%s@." line;
  List.iter
    (fun alg ->
      let set = Enumeration.candidates catalog workload in
      let ev = Benefit.create catalog workload in
      let session = { Advisor.catalog; workload; candidates = set; evaluator = ev } in
      let all = Advisor.session_advise session ~budget:max_int Advisor.All_index in
      let budget = all.Advisor.outcome.Search.size in
      (* Fresh evaluator so counters reflect only this search. *)
      let ev = Benefit.create catalog workload in
      let session = { Advisor.catalog; workload; candidates = set; evaluator = ev } in
      let _ = Advisor.session_advise session ~budget alg in
      let naive = (Benefit.cache_hits ev + Benefit.cached_sub_configs ev) * W.size workload in
      Format.printf "%-20s | %10d | %12d | %10d@." (Advisor.algorithm_name alg)
        (Benefit.evaluations ev) naive (Benefit.cache_hits ev))
    Advisor.all_algorithms;
  Format.printf
    "@.'naive calls' = what evaluating every requested (sub-)configuration against@.\
     the whole workload would cost without affected sets and caching.@."

(* ---------- Ablation: index ORing for disjunctive predicates ---------- *)

let ixor () =
  header "Ablation: index ORing (disjunctive predicates need an index per branch)";
  let catalog = tpox_catalog () in
  let q =
    Xia_query.Parser.parse_statement_exn
      {|for $c in CUSTACC('CADOC')/Customer where $c/Nationality = "Norway" or $c/CountryOfResidence = "Norway" return $c|}
  in
  let nat =
    Xia_index.Index_def.make ~table:Tpox.custacc_table
      ~pattern:(Xia_xpath.Pattern.of_string "/Customer/Nationality")
      ~dtype:Xia_index.Index_def.Dstring ()
  in
  let residence =
    Xia_index.Index_def.make ~table:Tpox.custacc_table
      ~pattern:(Xia_xpath.Pattern.of_string "/Customer/CountryOfResidence")
      ~dtype:Xia_index.Index_def.Dstring ()
  in
  Format.printf
    "query: Nationality = \"Norway\" OR CountryOfResidence = \"Norway\"@.@.";
  Format.printf "%-28s | %12s | %s@." "configuration" "est cost" "plan";
  Format.printf "%s@." line;
  List.iter
    (fun (label, defs) ->
      let plan = Optimizer.optimize ~mode:Optimizer.Evaluate ~virtual_config:defs catalog q in
      let shape =
        match plan.Xia_optimizer.Plan.bindings with
        | [ b ] -> Fmt.str "%a" Xia_optimizer.Plan.pp_binding_plan b.Xia_optimizer.Plan.plan
        | _ -> "?"
      in
      Format.printf "%-28s | %12.0f | %s@." label plan.Xia_optimizer.Plan.total_cost shape)
    [
      ("no indexes", []);
      ("Nationality only", [ nat ]);
      ("CountryOfResidence only", [ residence ]);
      ("both (index ORing)", [ nat; residence ]);
    ];
  Format.printf
    "@.A disjunction is index-eligible only when every branch has an index; the@.\
     advisor therefore recommends the pair together or not at all.@."

(* ---------- Scalability: advisor cost vs workload size ---------- *)

let scale () =
  header "Scalability: advisor run time and optimizer calls vs workload size";
  let catalog = tpox_catalog () in
  let tables = Catalog.table_names catalog in
  Format.printf "%8s | %8s | %8s | %10s | %10s | %9s@." "queries" "basic" "total"
    "advise (s)" "calls" "speedup";
  Format.printf "%s@." line;
  List.iter
    (fun n ->
      let wl =
        Tpox.workload () @ Synthetic.workload ~seed:13 catalog tables (n - 11)
      in
      let (set, ev, r), elapsed =
        Trace.timed "scale.advise" (fun () ->
            let set = Enumeration.candidates catalog wl in
            let ev = Benefit.create catalog wl in
            let session =
              { Advisor.catalog; workload = wl; candidates = set; evaluator = ev }
            in
            let all = Advisor.session_advise session ~budget:max_int Advisor.All_index in
            let r =
              Advisor.session_advise session ~budget:all.Advisor.outcome.Search.size
                Advisor.Greedy_heuristics
            in
            (set, ev, r))
      in
      Format.printf "%8d | %8d | %8d | %10.3f | %10d | %8.2fx@." n
        (List.length (Candidate.basics set))
        (Candidate.cardinality set) elapsed (Benefit.evaluations ev)
        r.Advisor.est_speedup)
    [ 11; 20; 40; 60; 80; 100 ];
  Format.printf
    "@.End-to-end advisor cost grows roughly linearly in workload size thanks to@.\
     affected sets and the sub-configuration cache.@."

(* ---------- Parallel what-if evaluation ---------- *)

(* Advisor phase (fresh evaluator + searches) at domains=1 vs domains=4.
   Recommendations must be identical — the parallel evaluator is
   deterministic by construction — and the wall-clock ratio shows the
   multicore speedup (≈1x on a single-CPU machine). *)
let par () =
  header "Parallel what-if evaluation: domains=1 vs domains=4";
  let catalog = tpox_catalog () in
  let workload =
    Tpox.workload ()
    @ Synthetic.workload ~seed:21 catalog (Catalog.table_names catalog)
        (if Atomic.get quick then 29 else 69)
  in
  let set = Enumeration.candidates catalog workload in
  let algorithms =
    [ Advisor.Greedy; Advisor.Top_down_full; Advisor.Dynamic_programming ]
  in
  let run domains =
    let saved0 = Atomic.get Optimizer.counters.Optimizer.batch_setup_saved in
    let (outs, ev), elapsed =
      Trace.timed "par.advisor_phase" (fun () ->
          let ev = Benefit.create ~domains catalog workload in
          let session = { Advisor.catalog; workload; candidates = set; evaluator = ev } in
          let all = Advisor.session_advise session ~budget:max_int Advisor.All_index in
          let budget = all.Advisor.outcome.Search.size / 2 in
          (List.map (Advisor.session_advise session ~budget) algorithms, ev))
    in
    let saved =
      Atomic.get Optimizer.counters.Optimizer.batch_setup_saved - saved0
    in
    (elapsed, outs, ev, saved)
  in
  let t1, outs1, ev1, saved1 = run 1 in
  let tn, outsn, evn, savedn = run 4 in
  let config_ids (r : Advisor.recommendation) =
    List.map (fun (c : Candidate.t) -> c.Candidate.id) r.Advisor.outcome.Search.config
  in
  let identical =
    List.for_all2
      (fun (a : Advisor.recommendation) (b : Advisor.recommendation) ->
        config_ids a = config_ids b
        && a.Advisor.outcome.Search.size = b.Advisor.outcome.Search.size
        && Float.equal a.Advisor.outcome.Search.benefit b.Advisor.outcome.Search.benefit)
      outs1 outsn
  in
  Format.printf "workload: %d statements, %d candidates@." (W.size workload)
    (Candidate.cardinality set);
  Format.printf
    "advisor phase, domains=1: %8.3fs  (%d batched optimizer calls; raw-equivalent %d)@."
    t1 (Benefit.evaluations ev1)
    (Benefit.evaluations ev1 + saved1);
  Format.printf
    "advisor phase, domains=4: %8.3fs  (%d batched optimizer calls; raw-equivalent %d)@."
    tn (Benefit.evaluations evn)
    (Benefit.evaluations evn + savedn);
  Format.printf "speedup: %.2fx; identical recommendations: %b@."
    (if tn > 0.0 then t1 /. tn else 1.0)
    identical;
  if Domain.recommended_domain_count () = 1 then
    Format.printf
      "note: this machine reports 1 CPU; the parallel evaluator needs a multicore@.\
       host to show wall-clock gains (results are identical either way).@."

(* ---------- Workload compression at scale ---------- *)

(* A 10k-statement (100k at full scale) Zipf-skewed synthetic workload,
   advised with and without workload compression.  Both paths run as
   SEPARATE exhibits so BENCH_advisor.json carries one record each — the
   compressed record's raw-equivalent optimizer calls must sit >= 10x below
   the raw record's (the acceptance criterion of the compression work), and
   the ratchet guards each independently. *)
let scale10k_params () =
  if Atomic.get quick then (10_000, 64) else (100_000, 256)

let scale10k_workload () =
  let catalog = tpox_catalog () in
  let n, distinct = scale10k_params () in
  let workload =
    Synthetic.skewed_workload ~seed:31 ~alpha:1.1 ~distinct catalog
      (Catalog.table_names catalog) n
  in
  (catalog, workload, distinct)

(* Disk budget without touching the optimizer: the skewed workload's basic
   candidates are exactly those of its distinct template pool
   ([skewed_workload ~seed] draws templates from [workload ~seed:(seed+1)]),
   so half the pool's All-Index size is computable from [Candidate.size]
   alone — enumeration and size derivation are pure statement/statistics
   analysis. *)
let scale10k_budget catalog distinct =
  let pool =
    Synthetic.workload ~seed:32 ~label_prefix:"T" catalog
      (Catalog.table_names catalog) distinct
  in
  let pool_set = Enumeration.candidates catalog pool in
  List.fold_left
    (fun acc c -> acc + Candidate.size catalog c)
    0 (Candidate.basics pool_set)
  / 2

let scale10k_impl ~compress =
  let catalog, workload, distinct = scale10k_workload () in
  let budget = scale10k_budget catalog distinct in
  let calls0 = Atomic.get Optimizer.counters.Optimizer.optimize_calls in
  let saved0 = Atomic.get Optimizer.counters.Optimizer.batch_setup_saved in
  let r, elapsed =
    Trace.timed "scale10k.advise" (fun () ->
        Advisor.advise ~compress catalog workload ~budget Advisor.Greedy)
  in
  let calls = Atomic.get Optimizer.counters.Optimizer.optimize_calls - calls0 in
  let raw =
    calls + Atomic.get Optimizer.counters.Optimizer.batch_setup_saved - saved0
  in
  Format.printf "workload: %d statements (%d distinct templates), budget %d bytes@."
    (W.size workload) distinct budget;
  Format.printf "summary: %a@." Xia_advisor.Workload_summary.pp_info
    r.Advisor.summary;
  Format.printf
    "greedy advise: %.3fs, %d batched optimizer calls (raw-equivalent %d), %d pruned@."
    elapsed calls raw r.Advisor.outcome.Search.pruned;
  Format.printf "%a@." Advisor.pp_recommendation r;
  (r, raw)

let scale10k () =
  header "Workload compression: advise 10k+ statements on representatives";
  ignore (scale10k_impl ~compress:true)

let scale10k_raw () =
  header "Workload compression baseline: the same workload, uncompressed";
  ignore (scale10k_impl ~compress:false)

(* ---------- Recommendation quality vs the exhaustive optimum ---------- *)

(* The committed eval cases (lib/eval): regret against the true optimum and
   executor-validated benefit, the same numbers `xia_advise eval --small`
   reports and tools/eval_ratchet.sh ratchets.  Always at the tiny scale —
   the exhaustive oracle is exponential in the candidate pool, so the full
   benchmark scale is out of reach by design. *)
let eval_quality () =
  header "Recommendation quality: regret vs exhaustive optimum (tiny scale)";
  let cases = Xia_eval.Eval.run ~small:true Xia_eval.Eval.default_specs in
  List.iter (fun c -> Format.printf "%a@." Xia_eval.Eval.pp_case c) cases

(* ---------- Bechamel micro-benchmarks ---------- *)

let micro () =
  header "Micro-benchmarks (bechamel)";
  let open Bechamel in
  let catalog = tpox_catalog () in
  let workload = Tpox.workload () in
  let stats = Catalog.stats catalog Tpox.security_table in
  let doc =
    let rng = Random.State.make [| 3 |] in
    Tpox.security rng 0
  in
  let q2 =
    Xia_query.Parser.parse_statement_exn
      {|for $sec in SECURITY('SDOC')/Security[Yield>4.5] where $sec/SecInfo/*/Sector = "Energy" return $sec|}
  in
  let pat_g = Xia_xpath.Pattern.of_string "/Security//*" in
  let pat_s = Xia_xpath.Pattern.of_string "/Security/SecInfo/*/Sector" in
  let path = Xia_xpath.Parser.parse_exn "/Security[Yield>4.5]/SecInfo/*/Sector" in
  let nfa_of p =
    Xia_xpath.Nfa.of_steps
      (List.map (fun s -> (s.Xia_xpath.Pattern.axis, s.Xia_xpath.Pattern.test)) p)
  in
  (* Warm evaluator for the benefit micros: every sub-configuration below is
     already cached, so the measurement isolates the cache lookup path
     (fingerprint + shard probe) the searches actually sit on. *)
  let ev = Benefit.create catalog workload in
  let set = Enumeration.candidates catalog workload in
  let basics = Candidate.basics set in
  ignore (Benefit.benefit ev basics);
  List.iter (fun c -> ignore (Benefit.individual_benefit ev c)) basics;
  let tests =
    [
      Test.make ~name:"xpath.parse"
        (Staged.stage (fun () ->
             ignore (Xia_xpath.Parser.parse_exn "/Security[Yield>4.5]/SecInfo/*/Sector")));
      Test.make ~name:"xpath.eval_doc"
        (Staged.stage (fun () -> ignore (Xia_xpath.Eval.eval_doc doc path)));
      Test.make ~name:"nfa.containment"
        (Staged.stage (fun () ->
             ignore (Xia_xpath.Nfa.contained (nfa_of pat_s) (nfa_of pat_g))));
      Test.make ~name:"generalize.pair"
        (Staged.stage (fun () ->
             ignore
               (Xia_advisor.Generalize.pair pat_s
                  (Xia_xpath.Pattern.of_string "/Security/Symbol"))));
      Test.make ~name:"optimizer.enumerate"
        (Staged.stage (fun () -> ignore (Optimizer.enumerate_indexes catalog q2)));
      Test.make ~name:"optimizer.evaluate"
        (Staged.stage (fun () ->
             ignore (Optimizer.statement_cost ~mode:Optimizer.Evaluate catalog q2)));
      (* Old vs new matching: the linear scan re-runs the NFA over every
         distinct path; the production path is one trie walk, served from the
         shared per-stats cache on repeats. *)
      Test.make ~name:"stats.matching_linear"
        (Staged.stage (fun () ->
             ignore (Xia_storage.Path_stats.matching_linear stats pat_g)));
      Test.make ~name:"stats.matching"
        (Staged.stage (fun () -> ignore (Xia_storage.Path_stats.matching stats pat_g)));
      Test.make ~name:"benefit.basics_warm"
        (Staged.stage (fun () -> ignore (Benefit.benefit ev basics)));
      Test.make ~name:"benefit.single_warm"
        (Staged.stage (fun () ->
             ignore (Benefit.individual_benefit ev (List.hd basics))));
      Test.make ~name:"advisor.enumerate_workload"
        (Staged.stage (fun () -> ignore (Enumeration.basic_candidates catalog workload)));
      (* Whole-program lint over lib/: parse every unit, build the cross-unit
         call graph, run all checks.  The directory probe covers both launch
         modes (dune exec from the checkout root; @bench-quick from the build
         context, where the lib/ sources are materialized next to the exe). *)
      (let lint_dir =
         List.find_opt Sys.file_exists [ "lib"; "../lib"; "../../lib" ]
         |> Option.value ~default:"lib"
       in
       Test.make ~name:"lint"
         (Staged.stage (fun () ->
              ignore (Xia_analysis.Lint.lint_paths [ lint_dir ]))));
      (* The interprocedural effect pass alone: parse every unit, build the
         call graph, run Effects.analyze to fixpoint and render the summary
         dump — the @lint budget in bench.baseline rides on this staying
         cheap. *)
      (let lint_dir =
         List.find_opt Sys.file_exists [ "lib"; "../lib"; "../../lib" ]
         |> Option.value ~default:"lib"
       in
       Test.make ~name:"lint.effects"
         (Staged.stage (fun () ->
              ignore (Xia_analysis.Lint.effects_dump [ lint_dir ]))));
      (* The flow-sensitive L/X-series alone: parse every unit, build the
         call graph and effect summaries, then per-binding CFG construction
         (exceptional edges, Fun.protect inlining) plus the can-raise and
         optimizer-reachability fixpoints and the worklist solve.  The
         absolute budget in bench.baseline keeps whole-program dataflow
         cheap enough to stay in the default @lint alias. *)
      (let lint_dir =
         List.find_opt Sys.file_exists [ "lib"; "../lib"; "../../lib" ]
         |> Option.value ~default:"lib"
       in
       Test.make ~name:"lint.dataflow"
         (Staged.stage (fun () ->
              ignore (Xia_analysis.Lint.dataflow_findings [ lint_dir ]))));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  List.concat_map
    (fun test ->
      let raw = Benchmark.all cfg [ instance ] test in
      let results = Analyze.all ols instance raw in
      Hashtbl.fold
        (fun name ols acc ->
          match Analyze.OLS.estimates ols with
          | Some (est :: _) ->
              Format.printf "  %-32s %14.1f ns/run@." name est;
              (name, est) :: acc
          | Some [] | None ->
              Format.printf "  %-32s (no estimate)@." name;
              acc)
        results [])
    tests

(* ---------- Observability overhead (enabled vs disabled) ---------- *)

(* The acceptance bar for the observability layer: with the master switch
   off, the instrumented hot paths (statistics matching, warm benefit
   lookups) must cost the same as before instrumentation to within noise.
   This measures each micro with the switch off and on and prints the
   ratio; the off-mode numbers are comparable to the historical
   BENCH_micro.json entries of the same name. *)
let micro_obs () =
  header "Observability overhead: micro-benchmarks with tracing off vs on";
  let open Bechamel in
  let catalog = tpox_catalog () in
  let workload = Tpox.workload () in
  let stats = Catalog.stats catalog Tpox.security_table in
  let pat_g = Xia_xpath.Pattern.of_string "/Security//*" in
  let ev = Benefit.create catalog workload in
  let set = Enumeration.candidates catalog workload in
  let basics = Candidate.basics set in
  ignore (Benefit.benefit ev basics);
  List.iter (fun c -> ignore (Benefit.individual_benefit ev c)) basics;
  let cases =
    [
      ("stats.matching", fun () -> ignore (Xia_storage.Path_stats.matching stats pat_g));
      ("benefit.single_warm", fun () -> ignore (Benefit.individual_benefit ev (List.hd basics)));
      ("benefit.basics_warm", fun () -> ignore (Benefit.benefit ev basics));
    ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.25) () in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let measure name f =
    let raw = Benchmark.all cfg [ instance ] (Test.make ~name (Staged.stage f)) in
    let results = Analyze.all ols instance raw in
    Hashtbl.fold
      (fun _ ols acc ->
        match Analyze.OLS.estimates ols with Some (est :: _) -> est | _ -> acc)
      results Float.nan
  in
  Format.printf "  %-24s %14s %14s %9s@." "micro" "off (ns)" "on (ns)" "overhead";
  List.concat_map
    (fun (name, f) ->
      let off = measure name f in
      let on = Obs.with_enabled true (fun () -> measure name f) in
      (* Spans recorded while measuring with the switch on are observability
         noise, not exhibit telemetry: drop them. *)
      ignore (Trace.flush ());
      Format.printf "  %-24s %14.1f %14.1f %8.1f%%@." name off on
        (100.0 *. ((on /. off) -. 1.0));
      [ (name ^ "@obs=off", off); (name ^ "@obs=on", on) ])
    cases

(* ---------- machine-readable benchmark reports ---------- *)

(* One record per exhibit run: wall-clock plus the deltas of the process-wide
   optimizer-call and sub-configuration-cache-hit counters, plus the phase
   breakdown aggregated from the exhibit's trace spans (observability is on
   while exhibits run): per span name, how many spans fired and their total
   self-reported duration. *)
type phase = { ph_name : string; ph_count : int; ph_seconds : float }

type exhibit_record = {
  ex_name : string;
  wall_seconds : float;
  optimizer_calls : int;  (* invocations: a batch of any size counts one *)
  raw_calls : int;
      (* per-statement equivalent: invocations + batch setups saved *)
  sub_cache_hits : int;
  phases : phase list;
}

(* Aggregate a flushed span list by span name, largest total first. *)
let phases_of_spans spans =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun (s : Trace.span) ->
      let count, total =
        Option.value ~default:(0, 0.0) (Hashtbl.find_opt tbl s.Trace.name)
      in
      Hashtbl.replace tbl s.Trace.name
        (count + 1, total +. (s.Trace.stop_s -. s.Trace.start_s)))
    spans;
  Hashtbl.fold
    (fun ph_name (ph_count, ph_seconds) acc -> { ph_name; ph_count; ph_seconds } :: acc)
    tbl []
  |> List.sort (fun a b -> Float.compare b.ph_seconds a.ph_seconds)

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let scale_name () = if Atomic.get quick then "quick" else "full"

let write_advisor_json path records =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"xia-advisor-exhibits\",\n  \"scale\": %S,\n  \"exhibits\": [\n"
    (scale_name ());
  List.iteri
    (fun i r ->
      let phases =
        String.concat ", "
          (List.map
             (fun p ->
               Printf.sprintf "{\"name\": \"%s\", \"count\": %d, \"seconds\": %.4f}"
                 (json_escape p.ph_name) p.ph_count p.ph_seconds)
             r.phases)
      in
      Printf.fprintf oc
        "    {\"name\": \"%s\", \"wall_seconds\": %.4f, \"optimizer_calls\": %d, \"optimizer_calls_raw\": %d, \"sub_cache_hits\": %d, \"phases\": [%s]}%s\n"
        (json_escape r.ex_name) r.wall_seconds r.optimizer_calls r.raw_calls
        r.sub_cache_hits phases
        (if i = List.length records - 1 then "" else ","))
    records;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Format.printf "@.wrote %s (%d exhibits)@." path (List.length records)

let write_micro_json path estimates =
  let oc = open_out path in
  Printf.fprintf oc "{\n  \"bench\": \"xia-micro\",\n  \"scale\": %S,\n  \"tests\": [\n"
    (scale_name ());
  List.iteri
    (fun i (name, ns) ->
      Printf.fprintf oc "    {\"name\": \"%s\", \"ns_per_run\": %.1f}%s\n"
        (json_escape name) ns
        (if i = List.length estimates - 1 then "" else ","))
    estimates;
  Printf.fprintf oc "  ]\n}\n";
  close_out oc;
  Format.printf "wrote %s (%d tests)@." path (List.length estimates)

(* ---------- main ---------- *)

let experiments =
  [
    ("table1", table1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("table3", table3);
    ("table4", table4);
    ("fig4", fig4);
    ("fig5", fig5);
    ("xmark", xmark);
    ("accuracy", accuracy);
    ("maint", maint);
    ("beta", beta);
    ("hist", hist);
    ("calls", calls);
    ("ixor", ixor);
    ("scale", scale);
    ("par", par);
    ("scale10k", scale10k);
    ("scale10k-raw", scale10k_raw);
    ("eval-quality", eval_quality);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let args =
    List.filter
      (fun a ->
        if String.equal a "quick" then begin
          Atomic.set quick true;
          false
        end
        else true)
      args
  in
  let selected =
    match args with
    | [] -> List.map fst experiments @ [ "micro"; "micro-obs" ]
    | l -> l
  in
  Format.printf "XML Index Advisor - experiment harness%s@."
    (if Atomic.get quick then " (quick scale)" else "");
  let records = ref [] in
  let micro_estimates = ref [] in
  let instrumented name f =
    let calls0 = Atomic.get Optimizer.counters.Optimizer.optimize_calls in
    let saved0 = Atomic.get Optimizer.counters.Optimizer.batch_setup_saved in
    let hits0 = Benefit.total_cache_hits () in
    (* Exhibits run with observability on so the record gets a per-phase
       breakdown; micro-benchmarks below run with it off (the overhead of
       the enabled path is itself measured by the micro-obs experiment). *)
    Obs.set_enabled true;
    ignore (Trace.flush ());
    let (), wall_seconds = Trace.timed ("exhibit." ^ name) f in
    Obs.set_enabled false;
    let phases = phases_of_spans (Trace.flush ()) in
    records :=
      {
        ex_name = name;
        wall_seconds;
        optimizer_calls =
          Atomic.get Optimizer.counters.Optimizer.optimize_calls - calls0;
        raw_calls =
          Atomic.get Optimizer.counters.Optimizer.optimize_calls - calls0
          + Atomic.get Optimizer.counters.Optimizer.batch_setup_saved
          - saved0;
        sub_cache_hits = Benefit.total_cache_hits () - hits0;
        phases;
      }
      :: !records
  in
  List.iter
    (fun name ->
      if String.equal name "micro" then micro_estimates := !micro_estimates @ micro ()
      else if String.equal name "micro-obs" then
        micro_estimates := !micro_estimates @ micro_obs ()
      else
        match List.assoc_opt name experiments with
        | Some f -> instrumented name f
        | None ->
            Format.printf "unknown experiment %S; available: %s, micro, micro-obs@." name
              (String.concat ", " (List.map fst experiments)))
    selected;
  if !records <> [] then write_advisor_json "BENCH_advisor.json" (List.rev !records);
  if !micro_estimates <> [] then write_micro_json "BENCH_micro.json" !micro_estimates;
  Format.printf "@.Done.@."
