(* Command-line front end for the XML Index Advisor.

   xia_advise advise  --workload tpox --budget-mb 4 --algorithm heuristics
   xia_advise explain --workload tpox --query "for $s in SECURITY('SDOC')/Security ..."
   xia_advise candidates --workload tpox *)

module Advisor = Xia_advisor.Advisor
module Catalog = Xia_index.Catalog
module Optimizer = Xia_optimizer.Optimizer
module W = Xia_workload.Workload

(* ---------- shared setup ---------- *)

type benchmark = Tpox | Xmark

(* Either generated benchmark data or user directories of XML files
   ("TABLE=DIR" pairs). *)
let load_catalog benchmark small data_dirs =
  let catalog = Catalog.create () in
  if data_dirs <> [] then begin
    List.iter
      (fun spec ->
        match String.index_opt spec '=' with
        | None -> invalid_arg (Printf.sprintf "--data expects TABLE=DIR, got %S" spec)
        | Some i ->
            let table = String.sub spec 0 i in
            let dir = String.sub spec (i + 1) (String.length spec - i - 1) in
            let store = Xia_storage.Doc_store.create table in
            let report = Xia_storage.Persist.load_directory store dir in
            List.iter
              (fun (file, err) -> Format.eprintf "warning: %s: %s@." file err)
              report.Xia_storage.Persist.failed;
            Format.printf "Loaded %d documents into %s from %s@."
              report.Xia_storage.Persist.loaded table dir;
            ignore (Catalog.add_table catalog store))
      data_dirs;
    Catalog.runstats_all catalog
  end
  else begin
    match benchmark, small with
    | Tpox, false -> Xia_workload.Tpox.load catalog
    | Tpox, true -> Xia_workload.Tpox.load ~scale:Xia_workload.Tpox.tiny_scale catalog
    | Xmark, false -> Xia_workload.Xmark.load catalog
    | Xmark, true -> Xia_workload.Xmark.load ~scale:Xia_workload.Xmark.tiny_scale catalog
  end;
  catalog

let base_workload benchmark update_freq synthetic workload_file catalog =
  match workload_file with
  | Some path -> W.of_file path
  | None ->
      let queries =
        match benchmark with
        | Tpox ->
            if update_freq > 0.0 then
              Xia_workload.Tpox.workload_with_updates ~update_freq ()
            else Xia_workload.Tpox.workload ()
        | Xmark -> Xia_workload.Xmark.workload ()
      in
      if synthetic = 0 then queries
      else
        queries
        @ Xia_workload.Synthetic.workload catalog (Catalog.table_names catalog) synthetic

let algorithm_of_string = function
  | "greedy" -> Ok Advisor.Greedy
  | "heuristics" | "greedy-heuristics" -> Ok Advisor.Greedy_heuristics
  | "top-down-lite" | "tdlite" -> Ok Advisor.Top_down_lite
  | "top-down-full" | "tdfull" -> Ok Advisor.Top_down_full
  | "dp" | "dynamic-programming" -> Ok Advisor.Dynamic_programming
  | "all" | "all-index" -> Ok Advisor.All_index
  | s -> Error (Printf.sprintf "unknown algorithm %S" s)

(* ---------- commands ---------- *)

let advise_cmd benchmark small data_dirs workload_file budget_mb algorithm beta
    update_freq synthetic domains compress trace_file metrics_file verbose =
  (* Either observability flag switches the whole pipeline's spans and
     metrics on for this run. *)
  if trace_file <> None || metrics_file <> None then Xia_obs.Obs.set_enabled true;
  let catalog = load_catalog benchmark small data_dirs in
  let workload = base_workload benchmark update_freq synthetic workload_file catalog in
  match algorithm_of_string algorithm with
  | Error e ->
      prerr_endline e;
      1
  | Ok alg ->
      let budget = int_of_float (budget_mb *. 1024.0 *. 1024.0) in
      let r, elapsed =
        Xia_obs.Trace.timed "cli.advise" (fun () ->
            Advisor.advise ~beta ?domains ?compress catalog workload ~budget alg)
      in
      if r.Advisor.summary.Xia_advisor.Workload_summary.compressed then
        Format.printf "workload compressed: %a@."
          Xia_advisor.Workload_summary.pp_info r.Advisor.summary;
      Format.printf "%a@." Advisor.pp_recommendation r;
      Format.printf
        "base cost %.0f -> new cost %.0f (estimated speedup %.2fx)@.advisor time %.2fs, optimizer calls %d@."
        r.Advisor.base_cost r.Advisor.new_cost r.Advisor.est_speedup elapsed
        r.Advisor.outcome.Xia_advisor.Search.optimizer_calls;
      if verbose then begin
        Format.printf "@.Workload:@.%a@." W.pp workload
      end;
      Option.iter
        (fun path ->
          Xia_obs.Trace.write_file path
            (Xia_obs.Trace.export_chrome (Xia_obs.Trace.flush ())))
        trace_file;
      Option.iter
        (fun path ->
          Xia_obs.Trace.write_file path
            (Xia_obs.Metrics.to_json (Xia_obs.Metrics.snapshot ())))
        metrics_file;
      0

let explain_cmd benchmark small data_dirs query with_recommended =
  let catalog = load_catalog benchmark small data_dirs in
  match Xia_query.Sqlxml.parse_any query with
  | Error msg ->
      prerr_endline msg;
      1
  | Ok (`Xquery stmt) | Ok (`Sqlxml stmt) ->
      Format.printf "Statement: %s@.@." (Xia_query.Printer.statement_to_string stmt);
      Format.printf "Indexable patterns (Enumerate Indexes mode):@.";
      let candidates = Optimizer.enumerate_indexes catalog stmt in
      List.iter
        (fun (table, pattern, dtype) ->
          Format.printf "  %s on %s AS %s@."
            (Xia_xpath.Pattern.to_string pattern)
            table
            (Xia_index.Index_def.data_type_to_string dtype))
        candidates;
      Format.printf "@.Plan without indexes:@.  %a@."
        Xia_optimizer.Plan.pp
        (Optimizer.optimize ~mode:Optimizer.Evaluate catalog stmt);
      if with_recommended then begin
        let defs =
          List.map
            (fun (table, pattern, dtype) -> Xia_index.Index_def.make ~table ~pattern ~dtype ())
            candidates
        in
        Format.printf "@.Plan with every candidate indexed (virtually):@.  %a@."
          Xia_optimizer.Plan.pp
          (Optimizer.optimize ~mode:Optimizer.Evaluate ~virtual_config:defs catalog stmt)
      end;
      0

let candidates_cmd benchmark small data_dirs workload_file update_freq synthetic =
  let catalog = load_catalog benchmark small data_dirs in
  let workload = base_workload benchmark update_freq synthetic workload_file catalog in
  let set = Xia_advisor.Enumeration.candidates catalog workload in
  Format.printf "Workload: %d statements@." (W.size workload);
  Format.printf "Basic candidates: %d, total after generalization: %d@.@."
    (List.length (Xia_advisor.Candidate.basics set))
    (Xia_advisor.Candidate.cardinality set);
  List.iter
    (fun c ->
      Format.printf "  %a (size %d KB)@." Xia_advisor.Candidate.pp c
        (Xia_advisor.Candidate.size catalog c / 1024))
    (Xia_advisor.Candidate.to_list set);
  0

(* What-if: evaluate a user-supplied configuration. *)
let whatif_cmd benchmark small data_dirs workload_file update_freq synthetic index_specs =
  let catalog = load_catalog benchmark small data_dirs in
  let workload = base_workload benchmark update_freq synthetic workload_file catalog in
  let parse_spec spec =
    match String.split_on_char ':' spec with
    | [ table; pattern; dtype ] ->
        let dtype =
          match String.uppercase_ascii dtype with
          | "VARCHAR" | "STRING" | "S" -> Xia_index.Index_def.Dstring
          | "DOUBLE" | "NUMBER" | "D" -> Xia_index.Index_def.Ddouble
          | other -> invalid_arg (Printf.sprintf "unknown type %S" other)
        in
        Xia_index.Index_def.make ~table
          ~pattern:(Xia_xpath.Pattern.of_string pattern) ~dtype ()
    | _ -> invalid_arg (Printf.sprintf "--index expects TABLE:PATTERN:TYPE, got %S" spec)
  in
  match List.map parse_spec index_specs with
  | exception Invalid_argument msg ->
      prerr_endline msg;
      1
  | defs ->
      let report = Xia_advisor.Report.evaluate_configuration catalog workload defs in
      Format.printf "%a@." Xia_advisor.Report.pp report;
      0

(* Review a materialized configuration: recommend drops. *)
let review_cmd benchmark small data_dirs workload_file update_freq synthetic index_specs =
  let catalog = load_catalog benchmark small data_dirs in
  let workload = base_workload benchmark update_freq synthetic workload_file catalog in
  let parse_spec spec =
    match String.split_on_char ':' spec with
    | [ table; pattern; dtype ] ->
        let dtype =
          match String.uppercase_ascii dtype with
          | "VARCHAR" | "STRING" | "S" -> Xia_index.Index_def.Dstring
          | "DOUBLE" | "NUMBER" | "D" -> Xia_index.Index_def.Ddouble
          | other -> invalid_arg (Printf.sprintf "unknown type %S" other)
        in
        Xia_index.Index_def.make ~table
          ~pattern:(Xia_xpath.Pattern.of_string pattern) ~dtype ()
    | _ -> invalid_arg (Printf.sprintf "--index expects TABLE:PATTERN:TYPE, got %S" spec)
  in
  match List.map parse_spec index_specs with
  | exception Invalid_argument msg ->
      prerr_endline msg;
      1
  | defs ->
      List.iter (fun d -> ignore (Catalog.create_index catalog d)) defs;
      let drops = Advisor.drop_recommendations catalog workload in
      if drops = [] then Format.printf "No drops recommended: every index earns its keep.@."
      else begin
        Format.printf "Recommended drops:@.";
        List.iter
          (fun (d, reason) ->
            Format.printf "  DROP INDEX %s  -- %a@." d.Xia_index.Index_def.name
              Advisor.pp_drop_reason reason)
          drops
      end;
      0

(* Recommendation-quality evaluation: regret vs the exhaustive optimum plus
   executor validation, on the committed small cases.  The heavy lifting
   (two-evaluator protocol, scoring, JSON rendering) lives in lib/eval; this
   command only selects cases, prints the tables and writes the files. *)
let eval_cmd benchmark small json_file perturb domains trace_file metrics_file =
  if trace_file <> None || metrics_file <> None then Xia_obs.Obs.set_enabled true;
  let specs =
    let all = Xia_eval.Eval.default_specs in
    match benchmark with
    | None -> all
    | Some Tpox ->
        List.filter (fun s -> s.Xia_eval.Eval.s_bench = Xia_eval.Eval.Tpox) all
    | Some Xmark ->
        List.filter (fun s -> s.Xia_eval.Eval.s_bench = Xia_eval.Eval.Xmark) all
  in
  if perturb <> 1.0 then
    Format.printf "search-phase cost model perturbed: index costs x %.2f@." perturb;
  let results, elapsed =
    Xia_obs.Trace.timed "cli.eval" (fun () ->
        Xia_eval.Eval.run ?domains ~perturb ~small specs)
  in
  List.iter (fun r -> Format.printf "%a@." Xia_eval.Eval.pp_case r) results;
  Format.printf "eval time %.2fs@." elapsed;
  Option.iter
    (fun path ->
      let json = Xia_eval.Eval.to_json ~small ~perturb results in
      if path = "-" then print_string json
      else begin
        let oc = open_out path in
        output_string oc json;
        close_out oc;
        Format.printf "wrote %s@." path
      end)
    json_file;
  Option.iter
    (fun path ->
      Xia_obs.Trace.write_file path
        (Xia_obs.Trace.export_chrome (Xia_obs.Trace.flush ())))
    trace_file;
  Option.iter
    (fun path ->
      Xia_obs.Trace.write_file path
        (Xia_obs.Metrics.to_json (Xia_obs.Metrics.snapshot ())))
    metrics_file;
  0

(* Generate benchmark data to directories of XML files. *)
let generate_cmd benchmark small out_dir =
  let catalog = load_catalog benchmark small [] in
  List.iter
    (fun table ->
      let dir = Filename.concat out_dir table in
      Xia_storage.Persist.save_directory (Catalog.store catalog table) dir;
      Format.printf "%s: %d documents -> %s@." table
        (Xia_storage.Doc_store.doc_count (Catalog.store catalog table))
        dir)
    (Catalog.table_names catalog);
  0

(* Show the dataguide with statistics: the DBA's view of RUNSTATS. *)
let stats_cmd benchmark small data_dirs =
  let catalog = load_catalog benchmark small data_dirs in
  List.iter
    (fun table ->
      let stats = Catalog.stats catalog table in
      Format.printf "@.Table %s: %d documents, %d elements, %d KB, %d distinct paths@."
        table stats.Xia_storage.Path_stats.doc_count
        stats.Xia_storage.Path_stats.total_elements
        (stats.Xia_storage.Path_stats.total_bytes / 1024)
        (Xia_storage.Path_stats.path_count stats);
      Format.printf "%-55s %8s %8s %9s %8s@." "path" "nodes" "docs" "distinct" "numeric";
      Xia_storage.Path_stats.iter
        (fun info ->
          Format.printf "%-55s %8d %8d %9d %7.0f%%@." info.Xia_storage.Path_stats.path_key
            info.Xia_storage.Path_stats.node_count info.Xia_storage.Path_stats.doc_count
            info.Xia_storage.Path_stats.distinct_values
            (100.0
            *. float_of_int info.Xia_storage.Path_stats.numeric_count
            /. float_of_int (max 1 info.Xia_storage.Path_stats.node_count)))
        stats)
    (Catalog.table_names catalog);
  0

(* ---------- cmdliner wiring ---------- *)

open Cmdliner

let benchmark_arg =
  let bench_conv = Arg.enum [ ("tpox", Tpox); ("xmark", Xmark) ] in
  Arg.(value & opt bench_conv Tpox & info [ "workload"; "w" ] ~doc:"Benchmark: tpox or xmark.")

let small_arg =
  Arg.(value & flag & info [ "small" ] ~doc:"Use a tiny data scale (fast).")

let data_arg =
  Arg.(
    value & opt_all string []
    & info [ "data" ]
        ~doc:"Load a table from a directory of XML files: TABLE=DIR (repeatable).")

let workload_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "workload-file"; "f" ]
        ~doc:"Read the workload from a file (one statement per line, optional 'freq|' prefix; XQuery or SQL/XML).")

let index_arg =
  Arg.(
    value & opt_all string []
    & info [ "index"; "i" ]
        ~doc:"Index to evaluate: TABLE:PATTERN:TYPE, e.g. SECURITY:/Security/Symbol:VARCHAR (repeatable).")

let budget_arg =
  Arg.(value & opt float 4.0 & info [ "budget-mb"; "b" ] ~doc:"Disk budget in MB.")

let algorithm_arg =
  Arg.(
    value
    & opt string "heuristics"
    & info [ "algorithm"; "a" ]
        ~doc:
          "Search algorithm: greedy, heuristics, top-down-lite, top-down-full, dp or all-index.")

let beta_arg =
  Arg.(
    value & opt float 0.10
    & info [ "beta" ] ~doc:"Size-expansion threshold for general indexes.")

let updates_arg =
  Arg.(
    value & opt float 0.0
    & info [ "update-freq" ] ~doc:"Frequency of the DML statements (TPoX only; 0 = none).")

let synthetic_arg =
  Arg.(
    value & opt int 0
    & info [ "synthetic" ] ~doc:"Append N synthetic random-path queries.")

let domains_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "domains" ]
        ~doc:
          "Domains used for parallel what-if evaluation (default: the \
           machine's recommended domain count).  The recommendation is \
           identical for every value.")

let compress_arg =
  Arg.(
    value
    & opt (enum [ ("auto", None); ("on", Some true); ("off", Some false) ]) None
    & info [ "compress" ]
        ~doc:
          "Workload compression: $(b,on) clusters statements by candidate \
           signature and advises the weighted representatives, $(b,off) \
           advises every statement, $(b,auto) (default) compresses at 256+ \
           statements.")

let trace_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Enable observability and write a Chrome trace_event JSON of the \
           run to $(docv) (load in chrome://tracing or ui.perfetto.dev).")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Enable observability and write a JSON snapshot of pipeline \
           metrics (counters, gauges, latency histograms) to $(docv).")

let verbose_arg = Arg.(value & flag & info [ "verbose"; "v" ] ~doc:"Print the workload.")

let query_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "query"; "q" ] ~doc:"Statement to explain (mini-XQuery).")

let with_recommended_arg =
  Arg.(
    value & flag
    & info [ "with-indexes" ] ~doc:"Also show the plan with all candidates indexed.")

let advise_term =
  Term.(
    const advise_cmd $ benchmark_arg $ small_arg $ data_arg $ workload_file_arg
    $ budget_arg $ algorithm_arg $ beta_arg $ updates_arg $ synthetic_arg
    $ domains_arg $ compress_arg $ trace_arg $ metrics_arg $ verbose_arg)

let explain_term =
  Term.(
    const explain_cmd $ benchmark_arg $ small_arg $ data_arg $ query_arg
    $ with_recommended_arg)

let candidates_term =
  Term.(
    const candidates_cmd $ benchmark_arg $ small_arg $ data_arg $ workload_file_arg
    $ updates_arg $ synthetic_arg)

let whatif_term =
  Term.(
    const whatif_cmd $ benchmark_arg $ small_arg $ data_arg $ workload_file_arg
    $ updates_arg $ synthetic_arg $ index_arg)

let eval_workload_arg =
  let bench_conv = Arg.enum [ ("tpox", Tpox); ("xmark", Xmark) ] in
  Arg.(
    value
    & opt (some bench_conv) None
    & info [ "workload"; "w" ]
        ~doc:
          "Restrict evaluation to one benchmark's cases (default: all; the \
           synthetic case rides with tpox).")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write the machine-readable evaluation report (one entry object \
           per line) to $(docv); $(b,-) writes it to stdout.")

let perturb_arg =
  Arg.(
    value & opt float 1.0
    & info [ "perturb" ] ~docv:"FACTOR"
        ~doc:
          "Multiply every index-plan cost by $(docv) during the search phase \
           only; ground truth stays unperturbed, so a broken cost model \
           shows up as regret.  Test hook for tools/eval_ratchet.sh.")

let eval_term =
  Term.(
    const eval_cmd $ eval_workload_arg $ small_arg $ json_arg $ perturb_arg
    $ domains_arg $ trace_arg $ metrics_arg)

let out_dir_arg =
  Arg.(
    value & opt string "./xia-data"
    & info [ "out"; "o" ] ~doc:"Output directory (one subdirectory per table).")

let generate_term = Term.(const generate_cmd $ benchmark_arg $ small_arg $ out_dir_arg)

let review_term =
  Term.(
    const review_cmd $ benchmark_arg $ small_arg $ data_arg $ workload_file_arg
    $ updates_arg $ synthetic_arg $ index_arg)

let stats_term = Term.(const stats_cmd $ benchmark_arg $ small_arg $ data_arg)

let cmds =
  [
    Cmd.v (Cmd.info "advise" ~doc:"Recommend an index configuration.") advise_term;
    Cmd.v (Cmd.info "explain" ~doc:"Show candidates and plans for one statement.") explain_term;
    Cmd.v
      (Cmd.info "candidates" ~doc:"Show the candidate set (basic + generalized).")
      candidates_term;
    Cmd.v
      (Cmd.info "whatif" ~doc:"Evaluate a user-supplied index configuration (what-if).")
      whatif_term;
    Cmd.v
      (Cmd.info "eval"
         ~doc:
           "Score every search algorithm against the exhaustive optimum \
            (regret) and the executor (predicted vs actual benefit).")
      eval_term;
    Cmd.v
      (Cmd.info "generate" ~doc:"Write benchmark data to directories of XML files.")
      generate_term;
    Cmd.v
      (Cmd.info "review"
         ~doc:"Materialize a configuration and recommend drops (unused or update-swamped).")
      review_term;
    Cmd.v
      (Cmd.info "stats" ~doc:"Show the dataguide (paths with statistics) of each table.")
      stats_term;
  ]

let () =
  Logs.set_reporter (Logs.format_reporter ());
  Logs.set_level
    (if Array.exists (fun a -> a = "-v" || a = "--verbose") Sys.argv then
       Some Logs.Info
     else Some Logs.Warning);
  let info =
    Cmd.info "xia_advise" ~version:"1.0.0"
      ~doc:"XML Index Advisor with tight optimizer coupling (ICDE 2008 reproduction)"
  in
  exit (Cmd.eval' (Cmd.group info cmds))
