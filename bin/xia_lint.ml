(* xia_lint — domain-safety and hygiene analyzer for this repository.

   Usage: xia_lint [--json] [--allow-file FILE] [--whatif-modules a,b]
                   [--only ID[,ID...]] [--skip ID[,ID...]]
                   [--callgraph] [--effects] [--explain ID] PATH...

   Lints every .ml under the given paths (default: lib) as one program: the
   whole library set is parsed once, a cross-unit call graph is built from
   it, the interprocedural effect pass (Xia_analysis.Effects) summarizes
   every binding, and the check catalog in Xia_analysis.Checks /
   Xia_analysis.Races runs over the shared graph and summaries.
   --callgraph prints the graph as Graphviz DOT instead of linting;
   --effects prints the per-binding effect summaries; --explain ID prints
   one check's documentation.  --only/--skip filter the catalog (stable
   intersection, reflected in the JSON envelope's "checks" array) so the
   ratchet scripts and local runs can target one check cheaply.
   Exit codes: 0 clean, 1 findings, 2 usage/parse/allow-file errors. *)

module Lint = Xia_analysis.Lint
module Checks = Xia_analysis.Checks
module Finding = Xia_analysis.Finding
module Suppress = Xia_analysis.Suppress

let () =
  let json = ref false in
  let callgraph = ref false in
  let effects = ref false in
  let explain = ref "" in
  let allow_file = ref "" in
  let whatif = ref "" in
  let only = ref "" in
  let skip = ref "" in
  let paths = ref [] in
  let spec =
    [
      ("--json", Arg.Set json, " emit the versioned JSON report");
      ( "--callgraph",
        Arg.Set callgraph,
        " print the cross-unit call graph as Graphviz DOT and exit" );
      ( "--effects",
        Arg.Set effects,
        " print the per-binding interprocedural effect summaries and exit" );
      ( "--explain",
        Arg.Set_string explain,
        "ID print one check's title and rationale and exit" );
      ( "--allow-file",
        Arg.Set_string allow_file,
        "FILE per-site suppressions (ID path[:line] -- reason)" );
      ( "--whatif-modules",
        Arg.Set_string whatif,
        "NAMES comma-separated module basenames subject to D003 (default: \
         benefit,optimizer)" );
      ( "--only",
        Arg.Set_string only,
        "IDS run only these comma-separated check IDs" );
      ( "--skip",
        Arg.Set_string skip,
        "IDS run every check except these comma-separated IDs" );
    ]
  in
  let usage =
    "xia_lint [--json] [--allow-file FILE] [--only IDS] [--skip IDS] \
     [--callgraph] [--effects] [--explain ID] PATH..."
  in
  Arg.parse spec (fun p -> paths := p :: !paths) usage;
  if !explain <> "" then begin
    match Checks.find_check !explain with
    | Some c ->
        Printf.printf "%s — %s\n\n%s\n" c.Checks.id c.Checks.title c.Checks.detail;
        exit 0
    | None ->
        Printf.eprintf "xia_lint: unknown check ID %s (known: %s)\n" !explain
          (String.concat ", " (List.map (fun c -> c.Checks.id) Checks.catalog));
        exit 2
  end;
  let paths = match List.rev !paths with [] -> [ "lib" ] | ps -> ps in
  if !callgraph then begin
    let dot, errors = Lint.callgraph_dot paths in
    List.iter
      (fun (e : Lint.error) -> Printf.eprintf "xia_lint: %s: %s\n" e.path e.message)
      errors;
    print_string dot;
    exit (if errors = [] then 0 else 2)
  end;
  if !effects then begin
    let dump, errors = Lint.effects_dump paths in
    List.iter
      (fun (e : Lint.error) -> Printf.eprintf "xia_lint: %s: %s\n" e.path e.message)
      errors;
    print_string dump;
    exit (if errors = [] then 0 else 2)
  end;
  let config =
    if !whatif = "" then Checks.default_config
    else
      {
        Checks.default_config with
        Checks.whatif_modules =
          String.split_on_char ',' !whatif
          |> List.map String.trim
          |> List.filter (fun s -> s <> "");
      }
  in
  let allow =
    if !allow_file = "" then []
    else
      match Suppress.load_allow_file !allow_file with
      | Ok entries -> entries
      | Error msgs ->
          List.iter (Printf.eprintf "xia_lint: %s\n") msgs;
          exit 2
  in
  let split_ids s =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun s -> s <> "")
  in
  let selected =
    if !only = "" && !skip = "" then None
    else
      match Checks.select ~only:(split_ids !only) ~skip:(split_ids !skip) with
      | Ok ids -> Some ids
      | Error msg ->
          Printf.eprintf "xia_lint: %s\n" msg;
          exit 2
  in
  let report = Lint.lint_paths ~config ~allow paths in
  if report.Lint.errors <> [] then begin
    List.iter
      (fun (e : Lint.error) -> Printf.eprintf "xia_lint: %s: %s\n" e.path e.message)
      report.Lint.errors;
    exit 2
  end;
  let report =
    match selected with
    | None -> report
    | Some ids ->
        let keep (f : Finding.t) = List.mem f.Finding.id ids in
        {
          report with
          Lint.findings = List.filter keep report.Lint.findings;
          Lint.suppressed = List.filter keep report.Lint.suppressed;
        }
  in
  if !json then print_string (Lint.report_to_json ?only:selected report)
  else begin
    List.iter (fun f -> print_endline (Finding.to_string f)) report.Lint.findings;
    if report.Lint.findings <> [] then
      Printf.eprintf "xia_lint: %d finding(s), %d suppressed\n"
        (List.length report.Lint.findings)
        (List.length report.Lint.suppressed)
  end;
  exit (if report.Lint.findings = [] then 0 else 1)
