(** Database catalog: tables, statistics, real indexes and virtual indexes.

    Virtual indexes have definitions and derived statistics but no entries;
    they are visible to the optimizer only in its advisor modes. *)

module Doc_store = Xia_storage.Doc_store
module Path_stats = Xia_storage.Path_stats

type table = {
  store : Doc_store.t;
  mutable stats : Path_stats.t option;
  mutable real_indexes : Physical_index.t list;
  mutable virtual_indexes : Index_def.t list;
}

type t

val create : unit -> t

(** @raise Invalid_argument on duplicate table names. *)
val add_table : t -> Doc_store.t -> table

val find_table : t -> string -> table option

(** @raise Invalid_argument on unknown tables. *)
val table_exn : t -> string -> table

val table_names : t -> string list
val store : t -> string -> Doc_store.t

(** Collect (and cache) statistics for one table. *)
val runstats : t -> string -> Path_stats.t

val runstats_all : t -> unit

(** Cached statistics, recollected automatically when the table changed. *)
val stats : t -> string -> Path_stats.t

(** Force-collect any missing or stale statistics for every table.  Call
    before evaluating from several domains concurrently: it guarantees later
    [stats] reads are pure lookups. *)
val warm_stats : t -> unit

(** Materialize an index. @raise Invalid_argument on logical duplicates. *)
val create_index : t -> Index_def.t -> Physical_index.t

(** Drop a real index by name; [false] if absent. *)
val drop_index : t -> string -> bool

val drop_all_indexes : t -> unit

(** Rebuild real indexes whose base table changed. *)
val refresh_indexes : t -> unit

val real_indexes : t -> string -> Physical_index.t list

(** Install a virtual-index configuration (replaces the previous one).
    Legacy interface: prefer passing [?virtual_config] to
    [Optimizer.optimize], which is reentrant and does not mutate the
    catalog. *)
val set_virtual_indexes : t -> Index_def.t list -> unit

val clear_virtual_indexes : t -> unit
val virtual_indexes : t -> string -> Index_def.t list

val total_data_bytes : t -> int
