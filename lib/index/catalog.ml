(* Database catalog: tables with their statistics and their real and virtual
   indexes.

   Virtual indexes exist only here — they have definitions and derived
   statistics but no physical entries, and are visible to the optimizer in
   its special advisor modes only.  This mirrors the paper's server-side
   extension: "virtual indexes are added to the database catalog and to all
   the internal data structures of the optimizer, but they are not physically
   created". *)

module Doc_store = Xia_storage.Doc_store
module Path_stats = Xia_storage.Path_stats

type table = {
  store : Doc_store.t;
  mutable stats : Path_stats.t option;
  mutable real_indexes : Physical_index.t list;
  mutable virtual_indexes : Index_def.t list;
}

type t = {
  tables : (string, table) Hashtbl.t;
}

let create () = { tables = Hashtbl.create 8 }

let add_table t store =
  let name = Doc_store.name store in
  if Hashtbl.mem t.tables name then
    invalid_arg (Printf.sprintf "Catalog.add_table: table %s already exists" name);
  let table = { store; stats = None; real_indexes = []; virtual_indexes = [] } in
  Hashtbl.add t.tables name table;
  table

let find_table t name = Hashtbl.find_opt t.tables name

let table_exn t name =
  match find_table t name with
  | Some tbl -> tbl
  | None -> invalid_arg (Printf.sprintf "Catalog: unknown table %s" name)

let table_names t =
  List.sort String.compare (Hashtbl.fold (fun name _ acc -> name :: acc) t.tables [])

let store t name = (table_exn t name).store

(* RUNSTATS: (re)collect statistics for one table. *)
let runstats t name =
  let tbl = table_exn t name in
  let stats = Path_stats.collect tbl.store in
  tbl.stats <- Some stats;
  stats

let runstats_all t = List.iter (fun name -> ignore (runstats t name)) (table_names t)

(* Statistics, collected on first use and refreshed when stale. *)
let stats t name =
  let tbl = table_exn t name in
  match tbl.stats with
  | Some s when s.Path_stats.generation = Doc_store.generation tbl.store -> s
  | Some _ | None -> runstats t name

(* Force-collect any missing or stale statistics.  The parallel what-if
   evaluator calls this before fanning out so that concurrent [stats] reads
   never hit the lazy collection path (a write to [tbl.stats]) from several
   domains at once. *)
let warm_stats t = List.iter (fun name -> ignore (stats t name)) (table_names t)

let create_index t (def : Index_def.t) =
  let tbl = table_exn t def.table in
  if
    List.exists (fun pi -> Index_def.same (Physical_index.def pi) def) tbl.real_indexes
  then invalid_arg (Printf.sprintf "Catalog.create_index: duplicate of %s" def.name);
  let pi = Physical_index.build tbl.store def in
  tbl.real_indexes <- pi :: tbl.real_indexes;
  pi

let drop_index t name =
  let dropped = ref false in
  Hashtbl.iter
    (fun _ tbl ->
      let keep, gone =
        List.partition
          (fun pi -> not (String.equal (Physical_index.def pi).Index_def.name name))
          tbl.real_indexes
      in
      if gone <> [] then begin
        tbl.real_indexes <- keep;
        dropped := true
      end)
    t.tables;
  !dropped

let drop_all_indexes t =
  Hashtbl.iter (fun _ tbl -> tbl.real_indexes <- []) t.tables

(* Bring stale real indexes up to date: incrementally from the table's
   change log when it reaches back far enough and the delta is small,
   otherwise by a full rebuild. *)
let refresh_indexes t =
  Hashtbl.iter
    (fun _ tbl ->
      let gen = Doc_store.generation tbl.store in
      tbl.real_indexes <-
        List.map
          (fun pi ->
            if Physical_index.built_generation pi = gen then pi
            else
              match Doc_store.changes_since tbl.store (Physical_index.built_generation pi) with
              | Some changes
                when List.length changes <= max 64 (Doc_store.doc_count tbl.store / 2) ->
                  Physical_index.apply_changes pi ~generation:gen changes
              | Some _ | None -> Physical_index.build tbl.store (Physical_index.def pi))
          tbl.real_indexes)
    t.tables

let real_indexes t name = (table_exn t name).real_indexes

(* Virtual index management.  Legacy mutation-based interface: the optimizer
   now takes the virtual configuration as an explicit [?virtual_config]
   argument, which is reentrant and safe under parallel evaluation; this
   catalog-wide mutable configuration remains only as a fallback for callers
   that install a configuration once and run many statements against it. *)
let set_virtual_indexes t defs =
  Hashtbl.iter (fun _ tbl -> tbl.virtual_indexes <- []) t.tables;
  List.iter
    (fun (def : Index_def.t) ->
      let tbl = table_exn t def.table in
      tbl.virtual_indexes <- def :: tbl.virtual_indexes)
    defs

let clear_virtual_indexes t =
  Hashtbl.iter (fun _ tbl -> tbl.virtual_indexes <- []) t.tables

let virtual_indexes t name = (table_exn t name).virtual_indexes

let total_data_bytes t =
  Hashtbl.fold (fun _ tbl acc -> acc + Doc_store.total_bytes tbl.store) t.tables 0
