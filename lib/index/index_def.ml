(* Logical definition of a partial XML index: an index pattern over one XML
   column plus the SQL data type of the indexed values, mirroring DB2's

     CREATE INDEX ... ON t(xmlcol)
       GENERATE KEY USING XMLPATTERN '/Security/Yield' AS SQL DOUBLE      *)

type data_type =
  | Dstring
  | Ddouble

let data_type_to_string = function
  | Dstring -> "VARCHAR"
  | Ddouble -> "DOUBLE"

let pp_data_type ppf t = Fmt.string ppf (data_type_to_string t)

let equal_data_type a b =
  match a, b with
  | Dstring, Dstring | Ddouble, Ddouble -> true
  | Dstring, Ddouble | Ddouble, Dstring -> false

type t = {
  name : string;
  table : string;
  pattern : Xia_xpath.Pattern.t;
  dtype : data_type;
}

(* Atomic: fresh-name allocation must stay race-free when candidates are
   generated from several domains (--domains > 1). *)
let counter = Atomic.make 0

let fresh_name table pattern dtype =
  let n = Atomic.fetch_and_add counter 1 + 1 in
  Printf.sprintf "IDX%d_%s_%s_%s" n table
    (match dtype with Dstring -> "S" | Ddouble -> "D")
    (let s = Xia_xpath.Pattern.to_string pattern in
     String.map
       (fun c ->
         match c with
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> c
         | _ -> '_')
       s)

let make ?name ~table ~pattern ~dtype () =
  let name =
    match name with Some n -> n | None -> fresh_name table pattern dtype
  in
  { name; table; pattern; dtype }

(* Logical identity ignores the name: same table, same pattern, same type. *)
let same a b =
  String.equal a.table b.table
  && equal_data_type a.dtype b.dtype
  && Xia_xpath.Pattern.equal a.pattern b.pattern

let logical_key d =
  Printf.sprintf "%s|%s|%s" d.table
    (data_type_to_string d.dtype)
    (Xia_xpath.Pattern.key d.pattern)

(* Interned logical identity: (table id, dtype, pattern id) triples map to
   dense ints without rebuilding the key string.  Ids are for identity
   (fingerprints, cache keys) only; user-visible orderings stay on
   [logical_key]. *)
let id_interner : (int * data_type * int) Xia_xpath.Interner.t =
  Xia_xpath.Interner.create ()

let logical_id d =
  Xia_xpath.Interner.intern id_interner
    (Xia_xpath.Interner.label d.table, d.dtype, Xia_xpath.Pattern.id d.pattern)

(* [covers ~general ~specific]: the general index can serve every lookup the
   specific one can — same table and type, containing pattern. *)
let covers ~general ~specific =
  String.equal general.table specific.table
  && equal_data_type general.dtype specific.dtype
  && Xia_xpath.Pattern.covers ~general:general.pattern ~specific:specific.pattern

let pp ppf d =
  Fmt.pf ppf "%s ON %s XMLPATTERN '%s' AS %s" d.name d.table
    (Xia_xpath.Pattern.to_string d.pattern)
    (data_type_to_string d.dtype)
