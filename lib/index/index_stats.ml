(* Statistics of an index derived purely from data statistics.

   This is how virtual indexes get costed: the advisor never materializes
   them, it sums the per-path RUNSTATS numbers over the dataguide paths the
   index pattern covers and fits a B-tree size model on top, exactly the
   derivation direction the paper describes (index statistics from data
   statistics). *)

module Path_stats = Xia_storage.Path_stats
module Cost_params = Xia_storage.Cost_params

type t = {
  entries : int;
  distinct_keys : int;
  avg_key_bytes : float;
  matched_docs : int;
  entries_per_doc : float;
  size_bytes : int;
  leaf_pages : int;
  levels : int;
  min_num : float;
  max_num : float;
}

let empty =
  {
    entries = 0;
    distinct_keys = 0;
    avg_key_bytes = 0.0;
    matched_docs = 0;
    entries_per_doc = 0.0;
    size_bytes = 0;
    leaf_pages = 0;
    levels = 1;
    min_num = infinity;
    max_num = neg_infinity;
  }

let btree_shape ~entries ~avg_key_bytes =
  if entries = 0 then (Cost_params.page_size, 1, 1)
  else begin
    let entry_bytes =
      (avg_key_bytes *. Cost_params.key_prefix_compression)
      +. float_of_int (Cost_params.rid_bytes + Cost_params.entry_overhead_bytes)
    in
    let per_page =
      max 2
        (int_of_float
           (float_of_int Cost_params.page_size *. Cost_params.leaf_fill_factor /. entry_bytes))
    in
    let leaf_pages = max 1 ((entries + per_page - 1) / per_page) in
    let fanout =
      max 8 (Cost_params.page_size / (int_of_float avg_key_bytes + Cost_params.rid_bytes + 8))
    in
    let rec levels_above pages acc =
      if pages <= 1 then acc else levels_above ((pages + fanout - 1) / fanout) (acc + 1)
    in
    let levels = levels_above leaf_pages 1 in
    let internal_pages = max 0 ((leaf_pages + fanout - 1) / fanout) in
    let size_bytes = (leaf_pages + internal_pages + 1) * Cost_params.page_size in
    (size_bytes, leaf_pages, levels)
  end

let derive (stats : Path_stats.t) (def : Index_def.t) =
  let infos = Path_stats.matching stats def.pattern in
  let entries, distinct, key_bytes, docs, min_num, max_num =
    List.fold_left
      (fun (entries, distinct, key_bytes, docs, mn, mx) (info : Path_stats.path_info) ->
        match def.dtype with
        | Index_def.Ddouble ->
            ( entries + info.numeric_count,
              distinct + info.distinct_numeric,
              key_bytes +. (8.0 *. float_of_int info.numeric_count),
              docs + (if info.numeric_count > 0 then info.doc_count else 0),
              Float.min mn info.min_num,
              Float.max mx info.max_num )
        | Index_def.Dstring ->
            ( entries + info.node_count,
              distinct + info.distinct_values,
              key_bytes +. float_of_int info.total_value_bytes,
              docs + info.doc_count,
              mn,
              mx ))
      (0, 0, 0.0, 0, infinity, neg_infinity)
      infos
  in
  if entries = 0 then { empty with size_bytes = Cost_params.page_size }
  else begin
    (* Summing per-path doc counts over-counts documents containing several of
       the covered paths; clamp at the table's document count. *)
    let matched_docs = min docs stats.doc_count in
    let avg_key_bytes = key_bytes /. float_of_int entries in
    let size_bytes, leaf_pages, levels = btree_shape ~entries ~avg_key_bytes in
    {
      entries;
      distinct_keys = max 1 (min distinct entries);
      avg_key_bytes;
      matched_docs;
      entries_per_doc =
        (if matched_docs = 0 then 0.0 else float_of_int entries /. float_of_int matched_docs);
      size_bytes;
      leaf_pages;
      levels;
      min_num;
      max_num;
    }
  end

(* Shared read-mostly memo keyed by (interned logical id, generation):
   derivation is pure, and the advisor's parallel what-if evaluator derives
   statistics from several domains at once.  Replaces a per-domain
   [Domain.DLS] table that was duplicated per domain, cold after every
   spawn, and keyed by a rebuilt [logical_key] string. *)
let derivation_cache : (int * int, t) Xia_xpath.Interner.Cache.t =
  Xia_xpath.Interner.Cache.create ()

let derive_cached stats def =
  Xia_xpath.Interner.Cache.find_or_compute derivation_cache
    (Index_def.logical_id def, stats.Path_stats.generation)
    (fun () -> derive stats def)

let pp ppf s =
  Fmt.pf ppf "{entries=%d; distinct=%d; docs=%d; size=%dB; leaves=%d; levels=%d}"
    s.entries s.distinct_keys s.matched_docs s.size_bytes s.leaf_pages s.levels
