(* Materialized partial XML index.

   Entries are (key, doc, node) triples for every node covered by the index
   pattern (and, for Ddouble, whose value parses as a number), kept sorted by
   key for binary-search lookups — a flat stand-in for a B-tree with the same
   asymptotics. *)

module Doc_store = Xia_storage.Doc_store
module Cost_params = Xia_storage.Cost_params

type key =
  | Kstring of string
  | Kdouble of float

let compare_key a b =
  match a, b with
  | Kstring x, Kstring y -> String.compare x y
  | Kdouble x, Kdouble y -> Float.compare x y
  | Kstring _, Kdouble _ -> 1
  | Kdouble _, Kstring _ -> -1

let pp_key ppf = function
  | Kstring s -> Fmt.pf ppf "%S" s
  | Kdouble f -> Fmt.float ppf f

type entry = {
  key : key;
  doc : Doc_store.doc_id;
  node : Xia_xml.Types.node_id;
}

type t = {
  def : Index_def.t;
  entries : entry array;
  built_generation : int;
  key_bytes : int;
}

let def t = t.def
let entry_count t = Array.length t.entries
let built_generation t = t.built_generation

let key_of_value dtype value =
  match dtype with
  | Index_def.Dstring -> Some (Kstring value)
  | Index_def.Ddouble -> (
      match float_of_string_opt (String.trim value) with
      | Some v -> Some (Kdouble v)
      | None -> None)

(* Memoize pattern acceptance per distinct label path: documents of a table
   share a small dataguide, so this avoids re-running the NFA per node. *)
let acceptor (def : Index_def.t) =
  let accepts_memo : (string, bool) Hashtbl.t = Hashtbl.create 64 in
  fun path ->
    let k = String.concat "/" path in
    match Hashtbl.find_opt accepts_memo k with
    | Some b -> b
    | None ->
        let b = Xia_xpath.Pattern.accepts def.pattern path in
        Hashtbl.add accepts_memo k b;
        b

let key_size = function Kstring s -> String.length s | Kdouble _ -> 8

let entries_of_doc (def : Index_def.t) accepts doc_id doc =
  let acc = ref [] in
  Xia_xml.Types.iter_nodes
    (fun node path value ->
      if accepts path then
        match key_of_value def.dtype value with
        | None -> ()
        | Some key -> acc := { key; doc = doc_id; node } :: !acc)
    doc;
  !acc

let compare_entry a b =
  match compare_key a.key b.key with
  | 0 -> (
      match compare a.doc b.doc with
      | 0 -> Xia_xml.Types.compare_node_id a.node b.node
      | c -> c)
  | c -> c

let of_entry_list def ~generation acc =
  let entries = Array.of_list acc in
  Array.sort compare_entry entries;
  let key_bytes = Array.fold_left (fun n e -> n + key_size e.key) 0 entries in
  { def; entries; built_generation = generation; key_bytes }

let build store (def : Index_def.t) =
  let accepts = acceptor def in
  let acc = ref [] in
  Doc_store.iter
    (fun doc_id doc -> acc := List.rev_append (entries_of_doc def accepts doc_id doc) !acc)
    store;
  of_entry_list def ~generation:(Doc_store.generation store) !acc

(* Incremental maintenance: fold a change list into the index without
   rescanning the whole table.  Every touched document's old entries are
   dropped; documents whose final state is present contribute fresh ones. *)
let apply_changes pi ~generation (changes : Doc_store.change list) =
  let net : (Doc_store.doc_id, Xia_xml.Types.t option) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (c : Doc_store.change) ->
      match c.kind with
      | `Insert -> Hashtbl.replace net c.doc_id (Some c.doc)
      | `Delete -> Hashtbl.replace net c.doc_id None)
    changes;
  let kept =
    Array.to_list pi.entries
    |> List.filter (fun e -> not (Hashtbl.mem net e.doc))
  in
  let accepts = acceptor pi.def in
  let added =
    (* Hash iteration order is fine here: [of_entry_list] sorts the combined
       entry list under a total order before anything reads it. *)
    (Hashtbl.fold
       (fun doc_id doc acc ->
         match doc with
         | None -> acc
         | Some doc -> List.rev_append (entries_of_doc pi.def accepts doc_id doc) acc)
       net [] [@lint.allow "N001"])
  in
  of_entry_list pi.def ~generation (List.rev_append added kept)

(* First position with key >= k (lower bound). *)
let lower_bound t k =
  let lo = ref 0 and hi = ref (Array.length t.entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_key t.entries.(mid).key k < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

(* First position with key > k (upper bound). *)
let upper_bound t k =
  let lo = ref 0 and hi = ref (Array.length t.entries) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if compare_key t.entries.(mid).key k <= 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let slice t lo hi =
  let rec collect i acc = if i < lo then acc else collect (i - 1) (t.entries.(i) :: acc) in
  if hi <= lo then [] else collect (hi - 1) []

let lookup_eq t k = slice t (lower_bound t k) (upper_bound t k)

type bound =
  | Unbounded
  | Inclusive of key
  | Exclusive of key

let lookup_range t ~lo ~hi =
  let start =
    match lo with
    | Unbounded -> 0
    | Inclusive k -> lower_bound t k
    | Exclusive k -> upper_bound t k
  in
  let stop =
    match hi with
    | Unbounded -> Array.length t.entries
    | Inclusive k -> upper_bound t k
    | Exclusive k -> lower_bound t k
  in
  slice t start stop

let lookup_ne t k =
  slice t 0 (lower_bound t k) @ slice t (upper_bound t k) (Array.length t.entries)

let all t = slice t 0 (Array.length t.entries)

let iter f t = Array.iter f t.entries

(* Actual size under the same layout model used for virtual indexes, so that
   real and virtual configurations are measured with one yardstick. *)
let size_bytes t =
  let entries = Array.length t.entries in
  if entries = 0 then Cost_params.page_size
  else
    let avg_key_bytes = float_of_int t.key_bytes /. float_of_int entries in
    let size, _, _ = Index_stats.btree_shape ~entries ~avg_key_bytes in
    size

let distinct_doc_count entries =
  let seen = Hashtbl.create 64 in
  List.iter (fun e -> Hashtbl.replace seen e.doc ()) entries;
  Hashtbl.length seen
