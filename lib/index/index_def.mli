(** Logical definition of a partial XML index: table + index pattern + SQL
    data type of the keys (DB2's [GENERATE KEY USING XMLPATTERN ... AS ...]).

    A [Ddouble] index stores only the nodes whose value parses as a number; a
    [Dstring] index stores every matched node's string value. *)

type data_type =
  | Dstring
  | Ddouble

val data_type_to_string : data_type -> string
val pp_data_type : Format.formatter -> data_type -> unit
val equal_data_type : data_type -> data_type -> bool

type t = {
  name : string;
  table : string;
  pattern : Xia_xpath.Pattern.t;
  dtype : data_type;
}

(** Create a definition; a unique name is generated when [name] is absent. *)
val make :
  ?name:string ->
  table:string ->
  pattern:Xia_xpath.Pattern.t ->
  dtype:data_type ->
  unit ->
  t

(** Logical identity: same table, pattern and type (names ignored). *)
val same : t -> t -> bool

(** Canonical key of the logical identity. *)
val logical_key : t -> string

(** Interned int id of the logical identity: equal iff {!logical_key} is
    equal, computed without rebuilding the key string.  Stable within a run
    only — identity (fingerprints, cache keys), never user-visible order. *)
val logical_id : t -> int

(** [covers ~general ~specific]: the general index can serve every lookup of
    the specific one (same table/type, containing pattern). *)
val covers : general:t -> specific:t -> bool

val pp : Format.formatter -> t -> unit
