(** Exhaustive configuration search: the ground-truth optimum for small
    instances.

    Enumerates every budget-feasible subset of the WHOLE candidate set —
    not just the [useful_ids] probe pool, which the top-down searches can
    step outside of — and evaluates each with the full
    {!Xia_advisor.Benefit.benefit} machinery: batched what-if calls,
    sub-configuration cache, [Par] fan-out across the evaluator's domains.
    The result is the true optimum of the search problem, which turns every
    algorithm's outcome into a regret score.  Small instances only: the
    subset count is exponential in the pool size, so {!search} refuses pools
    above [limit]. *)

module Benefit = Xia_advisor.Benefit
module Candidate = Xia_advisor.Candidate

type result = {
  config : Candidate.t list;  (** an optimal feasible configuration *)
  benefit : float;            (** its full-evaluation benefit *)
  size : int;                 (** its estimated size in bytes *)
  pool : int;                 (** candidates enumerated over *)
  feasible : int;             (** budget-feasible subsets evaluated
                                  (including the empty configuration) *)
  optimizer_calls : int;      (** evaluator calls consumed by the sweep *)
  elapsed : float;            (** seconds, via [Obs.now_s] *)
  benefits : float array;     (** benefit of every feasible subset, in
                                  enumeration order (position 0 = empty) *)
}

(** Default pool-size ceiling (2^14 subsets before budget filtering). *)
val default_limit : int

(** Sort a configuration by logical index key.  {!Xia_advisor.Benefit.benefit}
    partitions a configuration into interaction groups in first-member order
    and sums group deltas in that order, so the same candidate SET in two
    list orders can score low-bit-different benefits; every ground-truth
    comparison (the oracle's enumeration and each algorithm's recommendation)
    must evaluate configurations in this one canonical order. *)
val canonical : Candidate.t list -> Candidate.t list

(** [search ev set ~budget] enumerates every subset of the candidate set
    whose total weight fits the capacity and returns the best, under the
    SAME benefit evaluator the algorithms under test use — identical
    configurations therefore score bit-for-bit identical benefits, so the
    optimum dominates every algorithm's outcome exactly (no epsilon).

    [ids] restricts the pool to candidates whose id is a key (differential
    tests pass {!Benefit.useful_ids} to mirror the knapsack's universe);
    default is the whole set.  [weight] (default
    {!Benefit.candidate_size}) and [capacity] (default [budget]) define
    feasibility: a subset is feasible iff the sum of its members' weights
    is at most the capacity.  The override exists for the
    dynamic-programming differential test, which must reproduce DP's
    rounded-up unit granularity to compare like with like.

    Ties on benefit break deterministically: smaller size, then fewer
    indexes, then lexicographic logical keys.

    @raise Invalid_argument when the pool exceeds [limit] (default
    {!default_limit}) — exhaustive search is for small instances only. *)
val search :
  ?limit:int ->
  ?ids:(int, unit) Hashtbl.t ->
  ?weight:(Candidate.t -> int) ->
  ?capacity:int ->
  Benefit.t ->
  Candidate.set ->
  budget:int ->
  result

(** [rank r benefit] is 1 + the number of feasible subsets whose benefit
    strictly exceeds [benefit]: rank 1 means optimal.  Counts over
    [r.benefits], so equal-benefit configurations share a rank. *)
val rank : result -> float -> int
