(* Recommendation-quality evaluation harness.

   Two-evaluator protocol: the algorithms under test search on an evaluator
   built while [Optimizer.index_cost_factor] = [perturb]; ground truth
   (exhaustive optimum, regret scoring) always runs on a second evaluator
   built after the factor is reset to 1.0.  A deliberately broken cost model
   therefore degrades the recommendations, never the yardstick — which is
   exactly what lets tools/eval_ratchet.sh fail on quality regressions.

   No IO here: the report renders to a string ([to_json]) or a formatter
   ([pp_case]); printing and file writes live in bin/. *)

module Catalog = Xia_index.Catalog
module Workload = Xia_workload.Workload
module Tpox = Xia_workload.Tpox
module Xmark = Xia_workload.Xmark
module Synthetic = Xia_workload.Synthetic
module Advisor = Xia_advisor.Advisor
module Benefit = Xia_advisor.Benefit
module Candidate = Xia_advisor.Candidate
module Enumeration = Xia_advisor.Enumeration
module Search = Xia_advisor.Search
module Index_def = Xia_index.Index_def
module Optimizer = Xia_optimizer.Optimizer
module Obs = Xia_obs.Obs
module Trace = Xia_obs.Trace

type bench = Tpox | Xmark

type spec = {
  s_name : string;
  s_bench : bench;
  s_prefix : int;
  s_synthetic : int;
  s_fracs : float list;
}

(* The committed cases.  Budget fractions are of the case's All-Index size
   and were tuned so that, at the tiny scale, every algorithm recommends a
   non-empty configuration (regret > 0) and the heuristic search stays at
   regret >= 0.9 — the acceptance floor the ratchet then holds. *)
let default_specs =
  [
    {
      s_name = "tpox-small";
      s_bench = Tpox;
      s_prefix = 6;
      s_synthetic = 0;
      s_fracs = [ 0.35; 0.7 ];
    };
    {
      s_name = "xmark-small";
      s_bench = Xmark;
      s_prefix = 6;
      s_synthetic = 0;
      s_fracs = [ 0.35; 0.7 ];
    };
    {
      s_name = "synthetic-small";
      s_bench = Tpox;
      s_prefix = 0;
      s_synthetic = 8;
      s_fracs = [ 0.35; 0.7 ];
    };
  ]

let spec_names specs = List.map (fun s -> s.s_name) specs

type entry = {
  e_case : string;
  e_frac : float;
  e_budget : int;
  e_algorithm : string;
  e_benefit : float;
  e_optimal : float;
  e_regret : float;
  e_rank : int;
  e_feasible : int;
  e_optimizer_calls : int;
  e_predicted : float;
  e_actual : float;
  e_ratio : float;
}

type case_result = {
  r_case : string;
  r_statements : int;
  r_candidates : int;
  r_pool : int;
  r_entries : entry list;
  r_spearman : float;
  r_elapsed : float;
}

(* Whitespace-free algorithm keys: stable identifiers for the JSON report,
   the baseline file and the awk extraction in tools/eval_ratchet.sh. *)
let algorithm_key = function
  | Advisor.Greedy -> "greedy"
  | Advisor.Greedy_heuristics -> "heuristics"
  | Advisor.Top_down_lite -> "tdlite"
  | Advisor.Top_down_full -> "tdfull"
  | Advisor.Dynamic_programming -> "dp"
  | Advisor.All_index -> "allindex"

(* --- Spearman rank correlation, tie-corrected ------------------------- *)

(* Average ranks: ties share the mean of the rank positions they span. *)
let average_ranks (xs : float array) =
  let n = Array.length xs in
  let order = Array.init n (fun i -> i) in
  Array.sort
    (fun i j ->
      let c = Float.compare xs.(i) xs.(j) in
      if c <> 0 then c else Int.compare i j)
    order;
  let ranks = Array.make n 0.0 in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while
      !j + 1 < n && Float.equal xs.(order.(!j + 1)) xs.(order.(!i))
    do
      incr j
    done;
    (* positions !i..!j (0-based) hold equal values: average 1-based rank *)
    let r = (float_of_int (!i + !j) /. 2.0) +. 1.0 in
    for k = !i to !j do
      ranks.(order.(k)) <- r
    done;
    i := !j + 1
  done;
  ranks

let spearman xs ys =
  let n = Array.length xs in
  if n < 2 || Array.length ys <> n then 0.0
  else begin
    let rx = average_ranks xs and ry = average_ranks ys in
    let mean a = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
    let mx = mean rx and my = mean ry in
    let sxy = ref 0.0 and sxx = ref 0.0 and syy = ref 0.0 in
    for i = 0 to n - 1 do
      let dx = rx.(i) -. mx and dy = ry.(i) -. my in
      sxy := !sxy +. (dx *. dy);
      sxx := !sxx +. (dx *. dx);
      syy := !syy +. (dy *. dy)
    done;
    if !sxx <= 0.0 || !syy <= 0.0 then 0.0
    else !sxy /. sqrt (!sxx *. !syy)
  end

(* --- Case construction ------------------------------------------------ *)

let build_case ~small spec =
  let catalog = Catalog.create () in
  let bench_workload =
    match spec.s_bench with
    | Tpox ->
        if small then Tpox.load ~scale:Tpox.tiny_scale ~seed:7 catalog
        else Tpox.load ~seed:7 catalog;
        Tpox.workload ()
    | Xmark ->
        if small then Xmark.load ~scale:Xmark.tiny_scale ~seed:7 catalog
        else Xmark.load ~seed:7 catalog;
        Xmark.workload ()
  in
  let tables =
    match spec.s_bench with
    | Tpox -> [ Tpox.security_table; Tpox.custacc_table; Tpox.order_table ]
    | Xmark -> [ Xmark.item_table; Xmark.person_table; Xmark.auction_table ]
  in
  let prefix =
    if spec.s_prefix <= 0 then [] else Workload.prefix spec.s_prefix bench_workload
  in
  let synthetic =
    if spec.s_synthetic <= 0 then []
    else Synthetic.workload ~seed:13 ~label_prefix:spec.s_name catalog tables
        spec.s_synthetic
  in
  (catalog, prefix @ synthetic)

(* --- Scoring ---------------------------------------------------------- *)

let config_fingerprint config =
  String.concat "\x00"
    (List.sort String.compare
       (List.map (fun (c : Candidate.t) -> Index_def.logical_key c.Candidate.def)
          config))

let defs_of config = List.map (fun (c : Candidate.t) -> c.Candidate.def) config

(* Executed (simulated) workload cost of a configuration, memoized per case
   by the configuration's logical fingerprint: several algorithms usually
   agree on a config and the executor pass is the expensive step. *)
let executed_cost memo catalog workload config =
  let key = config_fingerprint config in
  match Hashtbl.find_opt memo key with
  | Some c -> c
  | None ->
      let _wall, cost, _rows =
        Advisor.execute_workload catalog workload (defs_of config)
      in
      Hashtbl.add memo key cost;
      cost

let run_case ?domains ~perturb ~prune ~small spec =
  Trace.with_span "eval.case" ~args:(fun () -> [ ("case", spec.s_name) ])
  @@ fun () ->
  let t0 = Obs.now_s () in
  let catalog, workload = build_case ~small spec in
  (* Search phase: evaluator and algorithms see the (possibly perturbed)
     cost model. *)
  Atomic.set Optimizer.index_cost_factor perturb;
  let search_ev = Benefit.create ?domains catalog workload in
  let set = Enumeration.candidates catalog workload in
  let all_size = Benefit.config_size search_ev (Candidate.basics set) in
  let budgets =
    List.map
      (fun f -> (f, int_of_float (ceil (f *. float_of_int all_size))))
      spec.s_fracs
  in
  let search_outcomes =
    List.map
      (fun (frac, budget) ->
        let outcomes =
          List.map
            (fun alg ->
              let outcome =
                match alg with
                | Advisor.Greedy -> Search.greedy ~prune search_ev set ~budget
                | Advisor.Greedy_heuristics ->
                    Search.greedy_heuristics search_ev set ~budget
                | Advisor.Top_down_lite ->
                    Search.top_down_lite ~prune search_ev set ~budget
                | Advisor.Top_down_full ->
                    Search.top_down_full ~prune search_ev set ~budget
                | Advisor.Dynamic_programming ->
                    Search.dynamic_programming search_ev set ~budget
                | Advisor.All_index -> Search.all_index search_ev set
              in
              (algorithm_key alg, outcome))
            Advisor.all_algorithms
        in
        (frac, budget, outcomes))
      budgets
  in
  let search_base = Benefit.base_workload_cost search_ev in
  let predicted_of config =
    search_base -. Benefit.workload_cost search_ev config
  in
  (* Scoring phase: ground truth under the unperturbed model.  The factor is
     reset (not restored): 1.0 is the process-wide resting state and the
     yardstick must never inherit a perturbation. *)
  Atomic.set Optimizer.index_cost_factor 1.0;
  let truth_ev = Benefit.create ?domains catalog workload in
  let _base_wall, base_cost, _rows =
    Advisor.execute_workload catalog workload []
  in
  let memo : (string, float) Hashtbl.t = Hashtbl.create 16 in
  let pool = ref 0 in
  let entries =
    List.concat_map
      (fun (frac, budget, outcomes) ->
        Trace.with_span "eval.validate" ~args:(fun () ->
            [ ("case", spec.s_name); ("budget", string_of_int budget) ])
        @@ fun () ->
        let exh = Exhaustive.search truth_ev set ~budget in
        if exh.Exhaustive.pool > !pool then pool := exh.Exhaustive.pool;
        let score algorithm config optimizer_calls ~predicted =
          (* Canonical order: same-set configurations must score bitwise
             the same benefit as the oracle's enumeration of that set. *)
          let config = Exhaustive.canonical config in
          let benefit = Benefit.benefit truth_ev config in
          let actual =
            base_cost -. executed_cost memo catalog workload config
          in
          {
            e_case = spec.s_name;
            e_frac = frac;
            e_budget = budget;
            e_algorithm = algorithm;
            e_benefit = benefit;
            e_optimal = exh.Exhaustive.benefit;
            e_regret =
              (if exh.Exhaustive.benefit > 0.0 then
                 benefit /. exh.Exhaustive.benefit
               else 1.0);
            e_rank = Exhaustive.rank exh benefit;
            e_feasible = exh.Exhaustive.feasible;
            e_optimizer_calls = optimizer_calls;
            e_predicted = predicted;
            e_actual = actual;
            e_ratio = (if actual > 0.0 then predicted /. actual else -1.0);
          }
        in
        let algorithm_entries =
          List.map
            (fun (key, (outcome : Search.outcome)) ->
              score key outcome.Search.config outcome.Search.optimizer_calls
                ~predicted:(predicted_of outcome.Search.config))
            outcomes
        in
        let truth_base = Benefit.base_workload_cost truth_ev in
        let oracle =
          score "exhaustive" exh.Exhaustive.config
            exh.Exhaustive.optimizer_calls
            ~predicted:
              (truth_base -. Benefit.workload_cost truth_ev exh.Exhaustive.config)
        in
        algorithm_entries @ [ oracle ])
      search_outcomes
  in
  let predicted = Array.of_list (List.map (fun e -> e.e_predicted) entries) in
  let actual = Array.of_list (List.map (fun e -> e.e_actual) entries) in
  {
    r_case = spec.s_name;
    r_statements = Workload.size workload;
    r_candidates = Candidate.cardinality set;
    r_pool = !pool;
    r_entries = entries;
    r_spearman = spearman predicted actual;
    r_elapsed = Obs.now_s () -. t0;
  }

let run ?domains ?(perturb = 1.0) ?(prune = true) ~small specs =
  let results =
    List.map (fun spec -> run_case ?domains ~perturb ~prune ~small spec) specs
  in
  (* run_case leaves the factor at 1.0; make that invariant hold even for an
     empty spec list. *)
  Atomic.set Optimizer.index_cost_factor 1.0;
  results

(* --- Rendering -------------------------------------------------------- *)

(* Compact ["name":value] fields with no space after the colon, one entry
   object per line: awk-greppable by the ratchet and scrubbable by
   test/scrub_obs.ml's eval mode (which blanks "elapsed"). *)
let entry_json b e =
  Buffer.add_string b
    (Printf.sprintf
       "{\"case\":\"%s\",\"frac\":%.2f,\"budget\":%d,\"algorithm\":\"%s\",\
        \"benefit\":%.3f,\"optimal\":%.3f,\"regret\":%.6f,\"rank\":%d,\
        \"feasible\":%d,\"optimizer_calls\":%d,\"predicted\":%.3f,\
        \"actual\":%.3f,\"ratio\":%.4f}"
       e.e_case e.e_frac e.e_budget e.e_algorithm e.e_benefit e.e_optimal
       e.e_regret e.e_rank e.e_feasible e.e_optimizer_calls e.e_predicted
       e.e_actual e.e_ratio)

let case_json b r =
  Buffer.add_string b
    (Printf.sprintf
       "{\"case\":\"%s\",\"statements\":%d,\"candidates\":%d,\"pool\":%d,\
        \"spearman\":%.4f,\"elapsed\":%.6f,\"entries\":[\n"
       r.r_case r.r_statements r.r_candidates r.r_pool r.r_spearman r.r_elapsed);
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_string b ",\n";
      entry_json b e)
    r.r_entries;
  Buffer.add_string b "\n]}"

let to_json ~small ~perturb results =
  let b = Buffer.create 4096 in
  Buffer.add_string b
    (Printf.sprintf "{\"eval\":\"advisor-quality\",\"scale\":\"%s\",\
                     \"perturb\":%.2f,\"cases\":[\n"
       (if small then "small" else "default")
       perturb);
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_string b ",\n";
      case_json b r)
    results;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let pp_case ppf r =
  Format.fprintf ppf
    "@[<v>case %s: %d statements, %d candidates, pool %d, spearman %.4f@,"
    r.r_case r.r_statements r.r_candidates r.r_pool r.r_spearman;
  Format.fprintf ppf "  %-11s %5s %10s %7s %5s %6s %6s@," "algorithm" "frac"
    "benefit" "regret" "rank" "calls" "ratio";
  List.iter
    (fun e ->
      Format.fprintf ppf "  %-11s %5.2f %10.3f %7.4f %5d %6d %6.2f@,"
        e.e_algorithm e.e_frac e.e_benefit e.e_regret e.e_rank
        e.e_optimizer_calls e.e_ratio)
    r.r_entries;
  Format.fprintf ppf "@]"
