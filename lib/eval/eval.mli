(** Recommendation-quality evaluation harness.

    For each committed case (a small catalog + workload), every search
    algorithm runs at several disk budgets and is scored against ground
    truth on two axes:

    - {b regret}: the recommended configuration's full-evaluation benefit
      divided by the exhaustive optimum ({!Exhaustive.search}), plus the
      recommendation's rank among all budget-feasible subsets;
    - {b executor validation}: the recommended indexes are materialized
      ({!Xia_index.Catalog.create_index}) and the workload executed for
      real; the predicted cost improvement is compared with the measured
      (simulated-cost) improvement, summarized per case as a tie-corrected
      Spearman rank correlation — the cost-model-drift detector.

    Search runs under {!Xia_optimizer.Optimizer.index_cost_factor} =
    [perturb]; scoring always runs under the unperturbed model, so a
    perturbed (deliberately broken) cost model shows up as regret < 1, not
    as a shifted yardstick.  All reported numbers except [elapsed] are
    deterministic — the quality ratchet ([tools/eval_ratchet.sh]) compares
    them byte-for-byte against [eval.baseline]. *)

module Catalog = Xia_index.Catalog
module Workload = Xia_workload.Workload

type bench = Tpox | Xmark

(** One committed evaluation case: benchmark catalog, workload prefix,
    appended synthetic queries, and budget fractions of the case's
    All-Index size. *)
type spec = {
  s_name : string;
  s_bench : bench;
  s_prefix : int;      (** benchmark queries taken, from the front (0 = none) *)
  s_synthetic : int;   (** synthetic random-path queries appended *)
  s_fracs : float list;
}

(** The committed cases the ratchet and the CLI run: small TPoX, small
    XMark, and a synthetic workload over the TPoX catalog. *)
val default_specs : spec list

val spec_names : spec list -> string list

(** Per (case × budget × algorithm) scores.  [e_algorithm] is a short
    whitespace-free key ([greedy], [heuristics], [tdlite], [tdfull], [dp],
    or [exhaustive] for the oracle's own row). *)
type entry = {
  e_case : string;
  e_frac : float;            (** budget as a fraction of All-Index size *)
  e_budget : int;            (** bytes *)
  e_algorithm : string;
  e_benefit : float;         (** ground-truth benefit of the recommendation *)
  e_optimal : float;         (** exhaustive optimum benefit *)
  e_regret : float;          (** [e_benefit /. e_optimal]; 1.0 when the
                                 optimum is non-positive *)
  e_rank : int;              (** 1 = optimal among feasible subsets *)
  e_feasible : int;          (** feasible subsets at this budget *)
  e_optimizer_calls : int;   (** evaluator calls the search consumed *)
  e_predicted : float;       (** predicted cost improvement (search model) *)
  e_actual : float;          (** executed simulated-cost improvement *)
  e_ratio : float;           (** predicted/actual; [-1.] when actual <= 0 *)
}

type case_result = {
  r_case : string;
  r_statements : int;
  r_candidates : int;        (** candidate-set cardinality *)
  r_pool : int;              (** candidates the oracle enumerates over *)
  r_entries : entry list;
  r_spearman : float;        (** predicted vs actual over the case's entries *)
  r_elapsed : float;         (** seconds, via [Obs] — the only
                                 non-deterministic field *)
}

(** Tie-corrected Spearman rank correlation of two equal-length samples
    (average ranks for ties; 0 on degenerate inputs). *)
val spearman : float array -> float array -> float

(** Run the cases.  [domains] bounds the what-if fan-out (results identical
    for every value); [perturb] (default 1.0) is applied to
    {!Xia_optimizer.Optimizer.index_cost_factor} for the search phase only
    and the factor is reset to 1.0 before scoring; [prune] (default true)
    is passed to the prunable searches — configurations and every quality
    score (benefit, regret, rank, spearman) are identical either way, only
    the per-algorithm optimizer-call counts differ; [small] selects the tiny
    benchmark scale. *)
val run :
  ?domains:int -> ?perturb:float -> ?prune:bool -> small:bool -> spec list ->
  case_result list

(** Machine-readable report: envelope plus one compact object per entry
    line, awk-greppable by [tools/eval_ratchet.sh] (fields are emitted as
    ["name":value] with no space, like the trace/metrics exports). *)
val to_json : small:bool -> perturb:float -> case_result list -> string

val pp_case : Format.formatter -> case_result -> unit
