(* Exhaustive configuration search over the candidate set.

   Every search algorithm's configuration is a subset of the candidate set
   that fits the budget under [Benefit.candidate_size], so enumerating ALL
   such subsets yields a sound, exact upper bound on every algorithm's
   outcome — including the top-down searches, whose descent can retain
   candidates outside the [useful_ids] probe pool (that near-miss is why
   the oracle does NOT restrict itself to the useful pool by default; the
   [ids] override exists for differential tests that must mirror a specific
   algorithm's universe).

   The sweep reuses the evaluator the algorithms ran on, so identical
   configurations score bit-for-bit identical benefits (the
   sub-configuration cache serves repeated sub-results), and the benefit
   calls fan out over the evaluator's domains via [Par.map] — positionally
   deterministic, so the reduction below is independent of the domain
   count. *)

module Benefit = Xia_advisor.Benefit
module Candidate = Xia_advisor.Candidate
module Index_def = Xia_index.Index_def
module Obs = Xia_obs.Obs
module Trace = Xia_obs.Trace
module Par = Xia_par.Par

type result = {
  config : Candidate.t list;
  benefit : float;
  size : int;
  pool : int;
  feasible : int;
  optimizer_calls : int;
  elapsed : float;
  benefits : float array;
}

let default_limit = 14

(* Logical keys of a configuration, sorted: the deterministic final
   tie-break (interned ids are allocation-order-dependent and never decide
   a user-visible ordering; the key STRING is stable). *)
let config_keys config =
  List.sort String.compare
    (List.map (fun (c : Candidate.t) -> Index_def.logical_key c.Candidate.def) config)

(* [Benefit.benefit] partitions a configuration into interaction groups in
   first-member order and sums their deltas in that order, so the SAME set
   of candidates listed in two different orders can score low-bit-different
   float benefits.  Ground-truth comparisons must therefore evaluate every
   configuration — the oracle's and each algorithm's — in one canonical
   order, or an algorithm can appear to "beat" the optimum (or fall short
   of it) by a few ulps purely through summation order. *)
let canonical config =
  List.sort
    (fun (a : Candidate.t) (b : Candidate.t) ->
      String.compare
        (Index_def.logical_key a.Candidate.def)
        (Index_def.logical_key b.Candidate.def))
    config

let search ?(limit = default_limit) ?ids ?weight ?capacity ev set ~budget =
  Trace.with_span "eval.exhaustive" @@ fun () ->
  let t0 = Obs.now_s () in
  let calls_before = Benefit.evaluations ev in
  let weight =
    match weight with Some w -> w | None -> Benefit.candidate_size ev
  in
  let capacity = match capacity with Some c -> c | None -> budget in
  let admitted (c : Candidate.t) =
    (match ids with None -> true | Some h -> Hashtbl.mem h c.id)
    && weight c <= capacity
  in
  let items =
    List.filter admitted (Candidate.to_list set) |> Array.of_list
  in
  let n = Array.length items in
  if n > limit then
    invalid_arg
      (Printf.sprintf
         "Exhaustive.search: %d candidates exceed the small-instance limit %d"
         n limit);
  let weights = Array.map weight items in
  (* Feasible masks, ascending.  Mask 0 (the empty configuration, weight 0)
     is always feasible — even under a zero budget the algorithms can and do
     return empty configurations, so the oracle must admit it too. *)
  let feasible_masks =
    let acc = ref [] in
    for mask = (1 lsl n) - 1 downto 0 do
      let w = ref 0 in
      for i = 0 to n - 1 do
        if mask land (1 lsl i) <> 0 then w := !w + weights.(i)
      done;
      if mask = 0 || !w <= capacity then acc := mask :: !acc
    done;
    Array.of_list !acc
  in
  let config_of mask =
    let cfg = ref [] in
    for i = n - 1 downto 0 do
      if mask land (1 lsl i) <> 0 then cfg := items.(i) :: !cfg
    done;
    canonical !cfg
  in
  let benefits =
    Par.map ~domains:(Benefit.domains ev)
      (fun mask -> Benefit.benefit ev (config_of mask))
      feasible_masks
  in
  (* Sequential reduction over the positional results: deterministic for any
     domain count.  Ties on benefit prefer smaller size, then fewer indexes,
     then lexicographic logical keys. *)
  let size_of mask = Benefit.config_size ev (config_of mask) in
  let count_of mask =
    let c = ref 0 in
    for i = 0 to n - 1 do
      if mask land (1 lsl i) <> 0 then incr c
    done;
    !c
  in
  let best = ref 0 in
  let best_size = ref (size_of feasible_masks.(0)) in
  for i = 1 to Array.length feasible_masks - 1 do
    let b = benefits.(i) and bb = benefits.(!best) in
    let better =
      if b > bb then true
      else if not (Float.equal b bb) then false
      else begin
        let sz = size_of feasible_masks.(i) in
        if sz <> !best_size then sz < !best_size
        else
          let ci = count_of feasible_masks.(i)
          and cb = count_of feasible_masks.(!best) in
          if ci <> cb then ci < cb
          else
            compare
              (config_keys (config_of feasible_masks.(i)))
              (config_keys (config_of feasible_masks.(!best)))
            < 0
      end
    in
    if better then begin
      best := i;
      best_size := size_of feasible_masks.(i)
    end
  done;
  let config = config_of feasible_masks.(!best) in
  {
    config;
    benefit = benefits.(!best);
    size = !best_size;
    pool = n;
    feasible = Array.length feasible_masks;
    optimizer_calls = Benefit.evaluations ev - calls_before;
    elapsed = Obs.now_s () -. t0;
    benefits;
  }

let rank r benefit =
  1 + Array.fold_left (fun acc b -> if b > benefit then acc + 1 else acc) 0 r.benefits
