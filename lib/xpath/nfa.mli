(** Finite automata over rooted label paths, for deciding exactly whether one
    linear XPath pattern matches a concrete path or covers another pattern. *)

type step = Ast.axis * Ast.node_test

type t

(** Compile a list of pattern steps. Attribute tests match labels spelled
    ["@name"].  @raise Invalid_argument beyond 60 steps. *)
val of_steps : step list -> t

(** Does the pattern match this rooted label path? *)
val accepts : t -> string list -> bool

(** {2 Batch stepping}

    State sets are int bitsets: bit [i] means "the first [i] steps have been
    matched".  A walk starts from {!initial}, advances once per path
    component and accepts when {!accepting} holds.  The per-symbol transition
    is two bitwise ops given the symbol's match mask, which lets callers that
    advance many state-sets over a shared path prefix (the path trie) compute
    each symbol's mask once. *)

(** The initial state set (only the empty prefix matched). *)
val initial : int

(** Does this state set accept (all steps matched)? *)
val accepting : t -> int -> bool

(** Bit [i] set iff step [i] uses the descendant axis (self-loops on any
    symbol). *)
val desc_mask : t -> int

(** Bit [i] set iff step [i]'s test matches [sym]. *)
val match_mask : t -> string -> int

(** One transition: [advance_masks ~desc ~matches set] is the successor state
    set of [set] on a symbol with match mask [matches]. *)
val advance_masks : desc:int -> matches:int -> int -> int

(** [contained sub sup]: is every label path matched by [sub] also matched by
    [sup]?  Exact (not heuristic) containment. *)
val contained : t -> t -> bool
