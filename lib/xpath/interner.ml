(* Interning and read-mostly concurrent memoization.

   The advisor's hot paths (index-to-path matching, benefit fingerprints,
   cache keys) used to rebuild and rehash pattern-key *strings* on every
   lookup.  An interner maps those keys to dense integer ids once; everything
   downstream hashes and compares ints.

   Concurrency model: the id table is an immutable bucket map published
   through an [Atomic]; readers never lock.  Writers serialize on a [Mutex],
   re-check under the lock, extend the map and publish the new snapshot with
   [Atomic.set].  Ids are allocated from an [Atomic] counter, so they are
   unique even across interners; because allocation order can vary between
   runs (and between [--domains] settings), ids must only ever be used for
   identity — hashing, equality, cache keys — never for ordering anything
   user-visible.

   [Cache] reuses the same snapshot discipline for pure memoization: a miss
   computes outside the lock (duplicated work is safe for pure functions) and
   publishes the first result. *)

module Int_map = Map.Make (Int)

type 'a t = {
  buckets : ('a * int) list Int_map.t Atomic.t;  (* hash -> collision list *)
  values : 'a array Atomic.t;                    (* id -> key, dense *)
  count : int Atomic.t;                          (* ids allocated so far *)
  lock : Mutex.t;
  hash : 'a -> int;
  equal : 'a -> 'a -> bool;
}

let create ?(hash = Hashtbl.hash) ?(equal = ( = )) () =
  {
    buckets = Atomic.make Int_map.empty;
    values = Atomic.make [||];
    count = Atomic.make 0;
    lock = Mutex.create ();
    hash;
    equal;
  }

let find t key =
  match Int_map.find_opt (t.hash key) (Atomic.get t.buckets) with
  | None -> None
  | Some bucket ->
      let rec scan = function
        | [] -> None
        | (k, id) :: rest -> if t.equal k key then Some id else scan rest
      in
      scan bucket

let intern t key =
  match find t key with
  | Some id -> id
  | None ->
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          match find t key with
          | Some id -> id (* lost the race: another writer added it *)
          | None ->
              let id = Atomic.fetch_and_add t.count 1 in
              let h = t.hash key in
              let map = Atomic.get t.buckets in
              let bucket = Option.value ~default:[] (Int_map.find_opt h map) in
              let old = Atomic.get t.values in
              let values =
                if id < Array.length old then old
                else begin
                  let grown = Array.make (max 64 (2 * (id + 1))) key in
                  Array.blit old 0 grown 0 (Array.length old);
                  grown
                end
              in
              values.(id) <- key;
              (* Publish the value array before the bucket map: a reader that
                 obtains [id] must find [values.(id)] valid. *)
              Atomic.set t.values values;
              Atomic.set t.buckets (Int_map.add h ((key, id) :: bucket) map);
              id)

let value t id = (Atomic.get t.values).(id)

let size t = Atomic.get t.count

(* ---------------------------------------------------------------- labels -- *)

(* The global label interner: element and attribute labels of rooted data
   paths ("Security", "@id", ...).  Shared by the path trie and the
   enumeration dedup tables. *)
let labels : string t = create ~hash:Hashtbl.hash ~equal:String.equal ()

let label s = intern labels s
let label_value id = value labels id

(* ----------------------------------------------------------------- Cache -- *)

module Cache = struct
  (* Read-mostly concurrent memo table for pure functions.  Same snapshot
     discipline as the interner; on a miss the computation runs *outside*
     the lock, so two domains racing on the same key may both compute — the
     first to publish wins, which is safe (and deterministic) because cached
     functions are pure. *)
  type ('k, 'v) t = {
    buckets : ('k * 'v) list Int_map.t Atomic.t;
    lock : Mutex.t;
    hash : 'k -> int;
    equal : 'k -> 'k -> bool;
  }

  let create ?(hash = Hashtbl.hash) ?(equal = ( = )) () =
    { buckets = Atomic.make Int_map.empty; lock = Mutex.create (); hash; equal }

  let find t key =
    match Int_map.find_opt (t.hash key) (Atomic.get t.buckets) with
    | None -> None
    | Some bucket ->
        let rec scan = function
          | [] -> None
          | (k, v) :: rest -> if t.equal k key then Some v else scan rest
        in
        scan bucket

  let find_or_compute t key f =
    match find t key with
    | Some v -> v
    | None ->
        let v = f () in
        Mutex.lock t.lock;
        Fun.protect
          ~finally:(fun () -> Mutex.unlock t.lock)
          (fun () ->
            match find t key with
            | Some v' -> v' (* keep the first published result *)
            | None ->
                let h = t.hash key in
                let map = Atomic.get t.buckets in
                let bucket = Option.value ~default:[] (Int_map.find_opt h map) in
                Atomic.set t.buckets (Int_map.add h ((key, v) :: bucket) map);
                v)
end
