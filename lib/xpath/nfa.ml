(* NFA machinery for linear XPath patterns.

   A linear pattern (steps over child/descendant axes with name, wildcard or
   attribute tests) denotes a language of rooted label paths: words over the
   alphabet of element labels and attribute labels (spelled "@name").  A child
   step consumes exactly one matching label; a descendant step consumes any
   number of arbitrary labels followed by one matching label.

   Containment of two such languages is decided exactly by working over the
   finite alphabet of labels mentioned in either pattern plus two fresh
   symbols - one standing for "any other element label" and one for "any other
   attribute label".  Substituting any concrete unseen label for the fresh
   symbol (and vice versa) cannot change acceptance by either automaton, so
   containment over this finite alphabet coincides with containment over the
   infinite label alphabet. *)

type step = Ast.axis * Ast.node_test

type t = {
  steps : step array;
  desc_mask : int;  (* bit i set iff step i uses the descendant axis *)
}

let of_steps steps =
  let steps = Array.of_list steps in
  if Array.length steps > 60 then invalid_arg "Nfa.of_steps: pattern too long";
  let desc_mask = ref 0 in
  Array.iteri
    (fun i (axis, _) -> if axis = Ast.Descendant then desc_mask := !desc_mask lor (1 lsl i))
    steps;
  { steps; desc_mask = !desc_mask }

(* Fresh symbols for "any element label not mentioned" / "any attribute label
   not mentioned".  '\000' cannot start a parsed name. *)
let other_elem = "\000e"
let other_attr = "\000@"

let is_attr_symbol sym =
  String.length sym > 0 && (sym.[0] = '@' || String.equal sym other_attr)

let test_matches test sym =
  match test with
  | Ast.Elem Ast.Wildcard -> not (is_attr_symbol sym)
  | Ast.Elem (Ast.Name n) -> String.equal sym n
  | Ast.Attr Ast.Wildcard -> is_attr_symbol sym
  | Ast.Attr (Ast.Name n) ->
      String.length sym > 0 && sym.[0] = '@'
      && String.equal (String.sub sym 1 (String.length sym - 1)) n

(* State sets are bitsets over states 0..n where n = #steps; state i means
   "the first i steps have been matched". *)

let initial = 1

let accepting nfa set = set land (1 lsl Array.length nfa.steps) <> 0

(* Batch stepping: one advance is two bitwise ops once the per-symbol match
   mask is known.  States with a pending descendant step self-loop
   ([desc_mask]); states whose step's test matches the symbol shift up one. *)

let desc_mask nfa = nfa.desc_mask

let match_mask nfa sym =
  let n = Array.length nfa.steps in
  let mask = ref 0 in
  for i = 0 to n - 1 do
    let _, test = nfa.steps.(i) in
    if test_matches test sym then mask := !mask lor (1 lsl i)
  done;
  !mask

let advance_masks ~desc ~matches set = (set land desc) lor ((set land matches) lsl 1)

let advance nfa set sym =
  advance_masks ~desc:nfa.desc_mask ~matches:(match_mask nfa sym) set

let accepts nfa word =
  let final = List.fold_left (fun set sym -> advance nfa set sym) initial word in
  accepting nfa final

let names_of_steps steps =
  List.fold_left
    (fun acc (_, test) ->
      match test with
      | Ast.Elem (Ast.Name n) -> n :: acc
      | Ast.Attr (Ast.Name n) -> ("@" ^ n) :: acc
      | Ast.Elem Ast.Wildcard | Ast.Attr Ast.Wildcard -> acc)
    [] steps

(* [contained sub sup]: L(sub) ⊆ L(sup)?  Breadth-first search over pairs of
   subset-states, looking for a reachable pair where [sub] accepts and [sup]
   does not. *)
let contained sub sup =
  let alphabet =
    let names =
      List.sort_uniq String.compare
        (names_of_steps (Array.to_list sub.steps)
        @ names_of_steps (Array.to_list sup.steps))
    in
    other_elem :: other_attr :: names
  in
  let visited = Hashtbl.create 64 in
  let queue = Queue.create () in
  let push pair =
    if not (Hashtbl.mem visited pair) then begin
      Hashtbl.add visited pair ();
      Queue.add pair queue
    end
  in
  push (initial, initial);
  let bad = ref false in
  while (not !bad) && not (Queue.is_empty queue) do
    let a, b = Queue.pop queue in
    if accepting sub a && not (accepting sup b) then bad := true
    else
      List.iter
        (fun sym ->
          let a' = advance sub a sym in
          if a' <> 0 then push (a', advance sup b sym))
        alphabet
  done;
  not !bad
