(** Interning (key → dense int id) and read-mostly concurrent memoization.

    Reads are lock-free: the table is an immutable map published through an
    {!Atomic}.  Writers serialize on a mutex and publish a new snapshot.
    Ids are unique and stable within a run but their allocation order may
    vary across runs and [--domains] settings — use them for identity
    (hashing, cache keys) only, never to order anything user-visible. *)

type 'a t

(** [create ~hash ~equal ()] builds an empty interner.  Defaults:
    [Hashtbl.hash] / structural equality. *)
val create : ?hash:('a -> int) -> ?equal:('a -> 'a -> bool) -> unit -> 'a t

(** The id of [key], allocating a fresh one on first sight. *)
val intern : 'a t -> 'a -> int

(** Read-only lookup: [None] if the key was never interned. *)
val find : 'a t -> 'a -> int option

(** The key interned as [id].  Unspecified for ids not allocated by this
    interner. *)
val value : 'a t -> int -> 'a

(** Number of ids allocated. *)
val size : 'a t -> int

(** The global label interner for rooted-path components ("Security",
    ["@id"], ...). *)
val labels : string t

val label : string -> int
val label_value : int -> string

(** Read-mostly memo table for pure functions.  A miss computes outside the
    lock (racing domains may duplicate work; first publish wins), so the
    computation must be pure. *)
module Cache : sig
  type ('k, 'v) t

  val create : ?hash:('k -> int) -> ?equal:('k -> 'k -> bool) -> unit -> ('k, 'v) t
  val find : ('k, 'v) t -> 'k -> 'v option
  val find_or_compute : ('k, 'v) t -> 'k -> (unit -> 'v) -> 'v
end
