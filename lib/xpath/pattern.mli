(** Linear index patterns: predicate-free paths such as [/Security/Yield],
    [/Security//*], [//Yield] or [/Order/@ID].  These identify partial XML
    indexes, mirroring DB2's [XMLPATTERN] clauses. *)

type step = {
  axis : Ast.axis;
  test : Ast.node_test;
}

type t = step list

(** Drop predicates from a path to obtain its pattern skeleton. *)
val of_path : Ast.path -> t

val to_path : t -> Ast.path
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val of_string_result : string -> (t, Parser.error) result

(** @raise Invalid_argument on malformed input or a path with predicates. *)
val of_string : string -> t

val equal : t -> t -> bool
val compare : t -> t -> int

(** Canonical printable key, usable for hashing. *)
val key : t -> string

(** Interned id: equal patterns get equal ids, lookups are allocation-free.
    Ids are stable within a run but not across runs — identity only, never
    ordering (use {!key}/{!compare} for user-visible order). *)
val id : t -> int

val length : t -> int

(** The universal pattern [//*], matching every element and used by the
    optimizer's Enumerate Indexes mode. *)
val universal : t

val is_universal : t -> bool

(** The universal attribute pattern [//@*]. *)
val universal_attr : t

(** @raise Invalid_argument on the empty pattern. *)
val last_step : t -> step

(** Does the pattern index attribute nodes? *)
val targets_attribute : t -> bool

val has_wildcard : t -> bool
val has_descendant : t -> bool

(** [true] when the pattern can match more than one fixed label sequence. *)
val is_general_shape : t -> bool

(** The pattern's compiled automaton (memoized, shared across domains). *)
val nfa_of : t -> Nfa.t

(** Does the pattern match this concrete rooted label path?  (Attributes are
    labels spelled ["@name"].) *)
val accepts : t -> string list -> bool

(** [covers ~general ~specific]: every node reachable by [specific] is
    reachable by [general], in any document.  Exact language containment;
    memoized. *)
val covers : general:t -> specific:t -> bool

val equivalent : t -> t -> bool

(** The paper's rewrite rule 0: middle wildcard steps are folded into a
    descendant axis on the following step ([/a/*/b] → [/a//b]). *)
val rewrite_middle_wildcards : t -> t

(** Deterministic specificity score (named child steps weigh most); used for
    tie-breaking only. *)
val specificity : t -> int
