(* Linear index patterns.

   An index pattern is a predicate-free linear path, e.g. /Security/Yield,
   /Security//*, //Yield, /Order/@ID.  These are the objects the advisor
   enumerates, generalizes and recommends.  Coverage between patterns (and
   matching against concrete data paths) is decided exactly via Nfa. *)

type step = {
  axis : Ast.axis;
  test : Ast.node_test;
}

type t = step list

let of_path (path : Ast.path) : t =
  List.map (fun (s : Ast.step) -> { axis = s.axis; test = s.test }) path

let to_path (p : t) : Ast.path =
  List.map (fun s -> { Ast.axis = s.axis; test = s.test; predicates = [] }) p

let to_string p = Printer.path_to_string (to_path p)

let pp ppf p = Fmt.string ppf (to_string p)

let of_string_result s =
  match Parser.parse s with
  | Ok path ->
      if Ast.has_predicates path then
        Error { Parser.position = 0; message = "index patterns cannot contain predicates" }
      else Ok (of_path path)
  | Error e -> Error e

let of_string s =
  match of_string_result s with
  | Ok p -> p
  | Error e -> invalid_arg (Fmt.str "Pattern.of_string %S: %a" s Parser.pp_error e)

let equal_step a b = Ast.equal_axis a.axis b.axis && Ast.equal_node_test a.test b.test

let equal a b = List.length a = List.length b && List.for_all2 equal_step a b

let compare a b = String.compare (to_string a) (to_string b)

(* Canonical key for hashing; patterns print unambiguously. *)
let key = to_string

let length = List.length

let universal = [ { axis = Ast.Descendant; test = Ast.Elem Ast.Wildcard } ]

let is_universal p = equal p universal

let universal_attr = [ { axis = Ast.Descendant; test = Ast.Attr Ast.Wildcard } ]

let last_step p =
  match List.rev p with
  | [] -> invalid_arg "Pattern.last_step: empty pattern"
  | s :: _ -> s

let targets_attribute p =
  match (last_step p).test with
  | Ast.Attr _ -> true
  | Ast.Elem _ -> false

let has_wildcard p =
  List.exists
    (fun s ->
      match s.test with
      | Ast.Elem Ast.Wildcard | Ast.Attr Ast.Wildcard -> true
      | Ast.Elem (Ast.Name _) | Ast.Attr (Ast.Name _) -> false)
    p

let has_descendant p = List.exists (fun s -> s.axis = Ast.Descendant) p

(* A pattern is "general-looking" when it could match paths other than one
   fixed label sequence. *)
let is_general_shape p = has_wildcard p || has_descendant p

(* Interned pattern ids.  Interning is structural (over the step list), so
   obtaining a pattern's id never rebuilds its string key; everything
   downstream — the NFA cache, the covers cache, path-matching memos,
   benefit fingerprints — hashes the int instead.  Ids identify patterns
   only; every user-visible ordering stays on the printable key. *)
let interner : t Interner.t = Interner.create ~equal ()

let id p = Interner.intern interner p

(* Memo caches are shared and read-mostly ([Interner.Cache]): the parallel
   what-if evaluator calls [covers]/[accepts] from several domains at once,
   and the old per-domain ([Domain.DLS]) tables were duplicated per domain
   and cold after every spawn.  Reads are lock-free; results are pure, so a
   racing miss merely duplicates a computation. *)
let nfa_cache : (int, Nfa.t) Interner.Cache.t =
  Interner.Cache.create ~hash:Fun.id ~equal:Int.equal ()

let nfa_of p =
  Interner.Cache.find_or_compute nfa_cache (id p) (fun () ->
      Nfa.of_steps (List.map (fun s -> (s.axis, s.test)) p))

let accepts p label_path = Nfa.accepts (nfa_of p) label_path

(* Key of the (general, specific) pair: ids packed into one int.  Ids are
   dense counters, far below 2^31 in any realistic run. *)
let covers_cache : (int, bool) Interner.Cache.t =
  Interner.Cache.create ~hash:Fun.id ~equal:Int.equal ()

(* [covers ~general ~specific]: every node reachable by [specific] is also
   reachable by [general] (in any document). *)
let covers ~general ~specific =
  let k = (id general lsl 31) lor id specific in
  Interner.Cache.find_or_compute covers_cache k (fun () ->
      Nfa.contained (nfa_of specific) (nfa_of general))

let equivalent a b = covers ~general:a ~specific:b && covers ~general:b ~specific:a

(* The paper's rewrite rule 0: any middle step that is a child- or
   descendant-axis wildcard is dropped and the following step's axis becomes
   descendant.  /a/*/b -> /a//b; /a/*/*/b -> /a//b.  The last step is kept
   as-is.  The rewrite can only generalize the language. *)
let rewrite_middle_wildcards (p : t) : t =
  let rec loop = function
    | [] -> []
    | [ last ] -> [ last ]
    | { test = Ast.Elem Ast.Wildcard; _ } :: (_ :: _ as rest) -> (
        match loop rest with
        | next :: tail -> { next with axis = Ast.Descendant } :: tail
        | [] -> assert false (* lint: [loop] never maps a non-empty list to [] *))
    | s :: rest -> s :: loop rest
  in
  (* Collapse runs of descendant wildcards too: //*//b is just //b when the
     wildcard is in the middle. *)
  loop p

(* Rough specificity measure used to order candidates deterministically:
   named child steps are most specific. *)
let specificity p =
  List.fold_left
    (fun acc s ->
      let axis_w = match s.axis with Ast.Child -> 2 | Ast.Descendant -> 0 in
      let test_w =
        match s.test with
        | Ast.Elem (Ast.Name _) | Ast.Attr (Ast.Name _) -> 3
        | Ast.Elem Ast.Wildcard | Ast.Attr Ast.Wildcard -> 0
      in
      acc + axis_w + test_w)
    0 p
