(** A small stdlib-only work pool over OCaml 5 domains.

    Provides the deterministic parallel-map primitive used by the what-if
    evaluator: results are positionally identical to the sequential map, so
    any [domains] value yields bit-for-bit the same advisor output. *)

(** [Domain.recommended_domain_count ()] — the default for the advisor's
    [?domains] knobs. *)
val default_domains : unit -> int

(** [map ~domains f arr] is [Array.map f arr], computed by up to [domains]
    domains cooperating (the caller always participates; helper domains come
    from a process-global pool spawned on first use).  [~domains <= 1]
    degenerates to the plain sequential map.  If [f] raises, the exception
    for the smallest failing index is re-raised after the batch completes —
    the same exception a sequential map would surface.  Nested calls from
    within [f] are safe and cannot deadlock. *)
val map : domains:int -> ('a -> 'b) -> 'a array -> 'b array

(** List version of {!map}; same determinism and exception contract. *)
val map_list : domains:int -> ('a -> 'b) -> 'a list -> 'b list

(** [sum_list ~domains f l] computes [f] over every element in parallel and
    sums the results with a fixed left-to-right sequential fold: bit-for-bit
    reproducible for any [domains] value.  This is the sanctioned
    deterministic parallel float reduction (lint N002). *)
val sum_list : domains:int -> ('a -> float) -> 'a list -> float
