(* A small stdlib-only work pool over OCaml 5 domains.

   The advisor's what-if evaluation is embarrassingly parallel once the
   optimizer takes the virtual configuration as an explicit argument: every
   statement cost and every sub-configuration delta is a pure function of
   (catalog snapshot, statement, configuration).  This module provides the
   deterministic fan-out primitive used by [Benefit] and [Search]:

     Par.map ~domains f arr

   computes [Array.map f arr] with up to [domains] domains cooperating.  The
   result is positionally identical to the sequential map — worker scheduling
   only decides *who* computes each cell, never *what* goes into it — so
   callers get bit-for-bit the same benefits, configurations and orderings
   with any domain count.

   Design notes:

   - One process-global pool of [recommended_domain_count - 1] workers is
     spawned lazily on first use and joined via [at_exit].  Worker domains
     block on a condition variable between jobs, so an idle pool costs
     nothing.
   - A [map] publishes one shared batch (an atomic next-index cursor); the
     calling domain always participates, and up to [domains - 1] helper jobs
     are queued for the pool.  A helper that arrives after the batch is
     drained simply finds no work, so nested [map]s issued from inside a
     worker cannot deadlock: the inner caller can always finish the batch
     alone.
   - Exceptions from [f] are caught per item; after the batch completes, the
     exception raised for the *smallest* item index is re-raised — the same
     one a sequential [Array.map] would have surfaced. *)

module Obs = Xia_obs.Obs
module Trace = Xia_obs.Trace
module Metrics = Xia_obs.Metrics

type pool = {
  jobs : (unit -> unit) Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let default_domains () = Domain.recommended_domain_count ()

(* Observability: batch/item counts and cumulative worker idle time.  The
   idle clock only runs while observability is enabled, so an idle pool still
   costs nothing when it is off. *)
let m_batches = lazy (Xia_obs.Metrics.counter "par.batches")
let m_items = lazy (Xia_obs.Metrics.counter "par.items")
let m_idle_us = lazy (Xia_obs.Metrics.counter "par.idle_us")

let worker_loop pool () =
  let rec next () =
    Mutex.lock pool.lock;
    let job =
      Fun.protect
        ~finally:(fun () -> Mutex.unlock pool.lock)
        (fun () ->
          let rec await () =
            if pool.stop then None
            else
              match Queue.take_opt pool.jobs with
              | Some job -> Some job
              | None ->
                  if Obs.on () then begin
                    let t0 = Obs.now_s () in
                    Condition.wait pool.nonempty pool.lock;
                    Metrics.add (Lazy.force m_idle_us)
                      (int_of_float ((Obs.now_s () -. t0) *. 1e6))
                  end
                  else Condition.wait pool.nonempty pool.lock;
                  await ()
          in
          await ())
    in
    match job with
    | None -> ()
    | Some job ->
        (try job () with _ -> ());
        next ()
  in
  next ()

let the_pool : pool option Atomic.t = Atomic.make None

let shutdown_pool pool =
  Mutex.lock pool.lock;
  pool.stop <- true;
  Condition.broadcast pool.nonempty;
  Mutex.unlock pool.lock;
  List.iter Domain.join pool.workers;
  pool.workers <- []

(* Spawn the global pool on first use (main domain only in practice, but an
   atomic CAS keeps initialization safe from anywhere). *)
let rec get_pool () =
  match Atomic.get the_pool with
  | Some pool -> pool
  | None ->
      let pool =
        {
          jobs = Queue.create ();
          lock = Mutex.create ();
          nonempty = Condition.create ();
          stop = false;
          workers = [];
        }
      in
      if Atomic.compare_and_set the_pool None (Some pool) then begin
        let n = max 0 (default_domains () - 1) in
        pool.workers <- List.init n (fun _ -> Domain.spawn (worker_loop pool));
        at_exit (fun () -> shutdown_pool pool);
        pool
      end
      else get_pool ()

let submit pool job =
  Mutex.lock pool.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock pool.lock)
    (fun () ->
      Queue.push job pool.jobs;
      Condition.signal pool.nonempty)

let map ~domains f arr =
  let n = Array.length arr in
  if n = 0 then [||]
  else if domains <= 1 || n <= 1 then Array.map f arr
  else begin
    if Obs.on () then Metrics.incr (Lazy.force m_batches);
    Trace.with_span "par.batch"
      ~args:(fun () ->
        [ ("items", string_of_int n); ("domains", string_of_int domains) ])
    @@ fun () ->
    let pool = get_pool () in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    (* First-by-index exception, mirroring the sequential failure. *)
    let error : (int * exn) option Atomic.t = Atomic.make None in
    let rec record_error i e =
      match Atomic.get error with
      | Some (j, _) when j <= i -> ()
      | cur -> if not (Atomic.compare_and_set error cur (Some (i, e))) then record_error i e
    in
    let fin_lock = Mutex.create () in
    let fin_cond = Condition.create () in
    let completed = ref 0 in
    let work () =
      let claimed = ref 0 in
      Trace.with_span "par.work"
        ~args:(fun () -> [ ("claimed", string_of_int !claimed) ])
      @@ fun () ->
      let rec claim mine =
        let i = Atomic.fetch_and_add next 1 in
        if i >= n then mine
        else begin
          (try results.(i) <- Some (f arr.(i)) with e -> record_error i e);
          claim (mine + 1)
        end
      in
      let mine = claim 0 in
      claimed := mine;
      if mine > 0 then begin
        if Obs.on () then Metrics.add (Lazy.force m_items) mine;
        Mutex.lock fin_lock;
        completed := !completed + mine;
        if !completed >= n then Condition.broadcast fin_cond;
        Mutex.unlock fin_lock
      end
    in
    let helpers = min (domains - 1) (n - 1) in
    (* Helper jobs reach the batch through this slot, not by capturing [work]
       directly.  When the batch completes the slot is cleared, so jobs still
       sitting unclaimed in the pool queue degrade to no-ops that hold no
       reference to [arr]/[results] — an idle pool never keeps a finished
       batch's data alive. *)
    let slot : (unit -> unit) option Atomic.t = Atomic.make (Some work) in
    let helper_job () =
      match Atomic.get slot with Some w -> w () | None -> ()
    in
    if pool.workers <> [] then
      for _ = 1 to helpers do
        submit pool helper_job
      done;
    work ();
    Mutex.lock fin_lock;
    while !completed < n do
      Condition.wait fin_cond fin_lock
    done;
    Mutex.unlock fin_lock;
    Atomic.set slot None;
    (match Atomic.get error with Some (_, e) -> raise e | None -> ());
    (* lint: every slot was filled — the completion barrier above waits for all n *)
    Array.map (function Some v -> v | None -> assert false) results
  end

let map_list ~domains f l = Array.to_list (map ~domains f (Array.of_list l))

(* The sanctioned deterministic parallel float reduction (what the N002
   lint points at): per-item results come from [map] — positionally stable
   by construction — and the combine is a fixed left-to-right sequential
   fold on the calling domain, so the non-associativity of float addition
   never meets scheduling order. *)
let sum_list ~domains f l =
  Array.fold_left ( +. ) 0.0 (map ~domains f (Array.of_list l))
