(* Table of XML documents.

   The unit of storage is a document in an XML-typed column, as in DB2
   pureXML.  Documents get stable integer ids; DML bumps a generation counter
   so that cached statistics and materialized indexes can detect staleness. *)

type doc_id = int

(* One DML event, tagged with the generation it produced.  Replacement is
   logged as a delete followed by an insert. *)
type change = {
  gen : int;
  kind : [ `Insert | `Delete ];
  doc_id : doc_id;
  doc : Xia_xml.Types.t;
}

(* Bound on the retained change log; beyond it consumers must fall back to a
   full rebuild. *)
let log_limit = 20_000

type t = {
  name : string;
  docs : (doc_id, Xia_xml.Types.t) Hashtbl.t;
  mutable next_id : int;
  mutable total_bytes : int;
  mutable total_elements : int;
  mutable generation : int;
  mutable log : change list;      (* newest first *)
  mutable log_floor : int;        (* generations <= floor are not in the log *)
  mutable log_size : int;
}

let create name =
  {
    name;
    docs = Hashtbl.create 1024;
    next_id = 0;
    total_bytes = 0;
    total_elements = 0;
    generation = 0;
    log = [];
    log_floor = 0;
    log_size = 0;
  }

let record t kind doc_id doc =
  if t.log_size >= log_limit then begin
    (* Truncate: drop history, remember that it is incomplete. *)
    t.log <- [];
    t.log_size <- 0;
    t.log_floor <- t.generation
  end;
  t.log <- { gen = t.generation; kind; doc_id; doc } :: t.log;
  t.log_size <- t.log_size + 1

(* Changes with generation > [gen], oldest first; [None] when the log no
   longer reaches back that far. *)
let changes_since t gen =
  if gen < t.log_floor then None
  else
    Some (List.rev (List.filter (fun c -> c.gen > gen) t.log))

let name t = t.name
let generation t = t.generation
let doc_count t = Hashtbl.length t.docs
let total_bytes t = t.total_bytes
let total_elements t = t.total_elements

let pages t =
  max 1 ((t.total_bytes + Cost_params.page_size - 1) / Cost_params.page_size)

let insert t doc =
  let id = t.next_id in
  t.next_id <- id + 1;
  Hashtbl.replace t.docs id doc;
  t.total_bytes <- t.total_bytes + Xia_xml.Types.byte_size doc;
  t.total_elements <- t.total_elements + Xia_xml.Types.count_elements doc;
  t.generation <- t.generation + 1;
  record t `Insert id doc;
  id

let find t id = Hashtbl.find_opt t.docs id

let delete t id =
  match Hashtbl.find_opt t.docs id with
  | None -> false
  | Some doc ->
      Hashtbl.remove t.docs id;
      t.total_bytes <- t.total_bytes - Xia_xml.Types.byte_size doc;
      t.total_elements <- t.total_elements - Xia_xml.Types.count_elements doc;
      t.generation <- t.generation + 1;
      record t `Delete id doc;
      true

let replace t id doc =
  match Hashtbl.find_opt t.docs id with
  | None -> false
  | Some old ->
      Hashtbl.replace t.docs id doc;
      t.total_bytes <- t.total_bytes - Xia_xml.Types.byte_size old + Xia_xml.Types.byte_size doc;
      t.total_elements <-
        t.total_elements - Xia_xml.Types.count_elements old + Xia_xml.Types.count_elements doc;
      t.generation <- t.generation + 1;
      record t `Delete id old;
      record t `Insert id doc;
      true

let iter f t = Hashtbl.iter f t.docs

let fold f t init = Hashtbl.fold f t.docs init

(* Sorted: hash iteration order must not leak into a result the advisor
   may return or cache (lint N001). *)
let doc_ids t = List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.docs [])

let avg_doc_bytes t =
  let n = doc_count t in
  if n = 0 then 0.0 else float_of_int t.total_bytes /. float_of_int n

let avg_doc_elements t =
  let n = doc_count t in
  if n = 0 then 0.0 else float_of_int t.total_elements /. float_of_int n
