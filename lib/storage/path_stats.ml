(* Per-path data statistics: the moral equivalent of DB2's RUNSTATS output
   for XML columns.

   For every distinct rooted label path occurring in a table (a "dataguide"
   entry) we keep node counts, document counts, distinct-value estimates,
   value sizes and the numeric value range.  Virtual index statistics are
   derived from these, never from physical indexes. *)

type path_info = {
  path : string list;
  path_key : string;
  mutable node_count : int;
  mutable doc_count : int;
  mutable distinct_values : int;
  mutable total_value_bytes : int;
  mutable numeric_count : int;
  mutable distinct_numeric : int;
  mutable min_num : float;
  mutable max_num : float;
  mutable histogram : Histogram.t option;
}

(* Trie over the interned label sequences of the dataguide.  Terminals store
   the path's index into [infos] (the [ordered] list as an array), so a trie
   walk can report matches in exactly the order the linear filter over
   [ordered] would: collect indices, sort ints ascending, map back.  Children
   are plain arrays frozen after collection — the trie is immutable once the
   stats object is published. *)
type trie = {
  terminal : int;            (* index into [infos]; -1 when no path ends here *)
  child_labels : int array;  (* interned label ids, parallel to [child_nodes] *)
  child_nodes : trie array;
}

type t = {
  table : string;
  generation : int;
  doc_count : int;
  total_elements : int;
  total_bytes : int;
  paths : (string, path_info) Hashtbl.t;
  ordered : path_info list; (* deterministic order: by path key *)
  infos : path_info array;  (* [ordered] as an array (same order) *)
  trie : trie;
  matching_cache : (int, path_info list) Xia_xpath.Interner.Cache.t;
      (* pattern id -> covered paths; shared across domains (read-mostly) *)
}

let path_key path = String.concat "/" path

(* Cap on the exact distinct-value sets kept during collection; beyond it we
   keep counting nodes but freeze the distinct estimate (matching the sampled
   nature of real RUNSTATS). *)
let distinct_cap = 200_000

(* Reservoir size for the numeric sample feeding each path's histogram. *)
let sample_cap = 4096

type collector_entry = {
  info : path_info;
  values : (string, unit) Hashtbl.t;
  numerics : (float, unit) Hashtbl.t;
  mutable sample : float list;  (* reservoir of numeric values *)
  mutable sample_size : int;
  mutable last_doc : int;
  rng : Random.State.t;
}

(* Build the label trie over every dataguide path.  Single-threaded (runs
   inside [collect]); the mutable builder nodes are frozen into plain arrays
   before the stats object is published. *)
type trie_builder = {
  mutable b_terminal : int;
  b_children : (int, trie_builder) Hashtbl.t;
}

let build_trie infos =
  let fresh () = { b_terminal = -1; b_children = Hashtbl.create 4 } in
  let root = fresh () in
  Array.iteri
    (fun index info ->
      let node =
        List.fold_left
          (fun node label ->
            let l = Xia_xpath.Interner.label label in
            match Hashtbl.find_opt node.b_children l with
            | Some child -> child
            | None ->
                let child = fresh () in
                Hashtbl.add node.b_children l child;
                child)
          root info.path
      in
      node.b_terminal <- index)
    infos;
  let rec freeze b =
    let kids = Hashtbl.fold (fun l c acc -> (l, c) :: acc) b.b_children [] in
    let kids = List.sort (fun (a, _) (b, _) -> compare a b) kids in
    {
      terminal = b.b_terminal;
      child_labels = Array.of_list (List.map fst kids);
      child_nodes = Array.of_list (List.map (fun (_, c) -> freeze c) kids);
    }
  in
  freeze root

let collect store =
  let acc : (string, collector_entry) Hashtbl.t = Hashtbl.create 256 in
  let touch doc_id path value =
    let key = path_key path in
    let entry =
      match Hashtbl.find_opt acc key with
      | Some e -> e
      | None ->
          let info =
            {
              path;
              path_key = key;
              node_count = 0;
              doc_count = 0;
              distinct_values = 0;
              total_value_bytes = 0;
              numeric_count = 0;
              distinct_numeric = 0;
              min_num = infinity;
              max_num = neg_infinity;
              histogram = None;
            }
          in
          let e =
            {
              info;
              values = Hashtbl.create 64;
              numerics = Hashtbl.create 16;
              sample = [];
              sample_size = 0;
              last_doc = -1;
              rng = Random.State.make [| Hashtbl.hash key |];
            }
          in
          Hashtbl.add acc key e;
          e
    in
    let info = entry.info in
    info.node_count <- info.node_count + 1;
    if entry.last_doc <> doc_id then begin
      entry.last_doc <- doc_id;
      info.doc_count <- info.doc_count + 1
    end;
    info.total_value_bytes <- info.total_value_bytes + String.length value;
    if Hashtbl.length entry.values < distinct_cap && not (Hashtbl.mem entry.values value)
    then Hashtbl.add entry.values value ();
    (match float_of_string_opt (String.trim value) with
    | None -> ()
    | Some v ->
        info.numeric_count <- info.numeric_count + 1;
        if info.min_num > v then info.min_num <- v;
        if info.max_num < v then info.max_num <- v;
        if Hashtbl.length entry.numerics < distinct_cap && not (Hashtbl.mem entry.numerics v)
        then Hashtbl.add entry.numerics v ();
        (* Bernoulli reservoir: keep every value up to the cap, then thin. *)
        if entry.sample_size < sample_cap then begin
          entry.sample <- v :: entry.sample;
          entry.sample_size <- entry.sample_size + 1
        end
        else if Random.State.int entry.rng info.node_count < sample_cap then
          entry.sample <-
            (match entry.sample with _ :: rest -> v :: rest | [] -> [ v ]))
  in
  Doc_store.iter
    (fun doc_id doc ->
      Xia_xml.Types.iter_nodes (fun _id path value -> touch doc_id path value) doc)
    store;
  let paths = Hashtbl.create (Hashtbl.length acc) in
  Hashtbl.iter
    (fun key entry ->
      entry.info.distinct_values <- max 1 (Hashtbl.length entry.values);
      entry.info.distinct_numeric <- Hashtbl.length entry.numerics;
      entry.info.histogram <- Histogram.create entry.sample;
      Hashtbl.add paths key entry.info)
    acc;
  let ordered =
    List.sort
      (fun a b -> String.compare a.path_key b.path_key)
      (Hashtbl.fold (fun _ info l -> info :: l) paths [])
  in
  let infos = Array.of_list ordered in
  {
    table = Doc_store.name store;
    generation = Doc_store.generation store;
    doc_count = Doc_store.doc_count store;
    total_elements = Doc_store.total_elements store;
    total_bytes = Doc_store.total_bytes store;
    paths;
    ordered;
    infos;
    trie = build_trie infos;
    matching_cache = Xia_xpath.Interner.Cache.create ~hash:Fun.id ~equal:Int.equal ();
  }

let find t path = Hashtbl.find_opt t.paths (path_key path)

let iter f t = List.iter f t.ordered

let fold f t init = List.fold_left (fun acc info -> f acc info) init t.ordered

let path_count t = Hashtbl.length t.paths

let all_paths t = List.map (fun info -> info.path) t.ordered

(* Reference implementation of pattern-to-path matching: one full NFA run
   per dataguide path.  Kept (uncached) as the differential-test oracle and
   the "before" side of the micro-benchmarks; [matching] below must return
   the identical list. *)
let matching_linear t pattern =
  List.filter (fun info -> Xia_xpath.Pattern.accepts pattern info.path) t.ordered

(* Paths covered by a linear index pattern, via a single trie walk: the NFA
   state set advances once per shared label prefix instead of once per path,
   and a dead state set prunes the whole subtree.  Each label's match mask is
   computed once per walk ([mask_memo]); matched terminal indices are sorted
   so the result order equals the linear filter's ([ordered] order). *)
let matching_walk t nfa =
  let desc = Xia_xpath.Nfa.desc_mask nfa in
  let mask_memo : (int, int) Hashtbl.t = Hashtbl.create 32 in
  let mask_of label_id =
    match Hashtbl.find_opt mask_memo label_id with
    | Some m -> m
    | None ->
        let m = Xia_xpath.Nfa.match_mask nfa (Xia_xpath.Interner.label_value label_id) in
        Hashtbl.add mask_memo label_id m;
        m
  in
  let matched = ref [] in
  let rec walk node set =
    if node.terminal >= 0 && Xia_xpath.Nfa.accepting nfa set then
      matched := node.terminal :: !matched;
    Array.iteri
      (fun i label_id ->
        let set' = Xia_xpath.Nfa.advance_masks ~desc ~matches:(mask_of label_id) set in
        if set' <> 0 then walk node.child_nodes.(i) set')
      node.child_labels
  in
  walk t.trie Xia_xpath.Nfa.initial;
  List.map
    (fun i -> t.infos.(i))
    (List.sort compare !matched)

(* Memoized per interned pattern id.  The cache lives in the stats object
   itself — stats are immutable once collected and rebuilt wholesale by
   RUNSTATS, so no table/generation key component is needed — and is shared
   across domains (read-mostly), where the old per-domain [Domain.DLS] table
   was duplicated per domain and cold after every spawn. *)
let matching t pattern =
  Xia_xpath.Interner.Cache.find_or_compute t.matching_cache
    (Xia_xpath.Pattern.id pattern)
    (fun () -> matching_walk t (Xia_xpath.Pattern.nfa_of pattern))

let avg_value_bytes info =
  if info.node_count = 0 then 0.0
  else float_of_int info.total_value_bytes /. float_of_int info.node_count
