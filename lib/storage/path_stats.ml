(* Per-path data statistics: the moral equivalent of DB2's RUNSTATS output
   for XML columns.

   For every distinct rooted label path occurring in a table (a "dataguide"
   entry) we keep node counts, document counts, distinct-value estimates,
   value sizes and the numeric value range.  Virtual index statistics are
   derived from these, never from physical indexes. *)

type path_info = {
  path : string list;
  path_key : string;
  mutable node_count : int;
  mutable doc_count : int;
  mutable distinct_values : int;
  mutable total_value_bytes : int;
  mutable numeric_count : int;
  mutable distinct_numeric : int;
  mutable min_num : float;
  mutable max_num : float;
  mutable histogram : Histogram.t option;
}

type t = {
  table : string;
  generation : int;
  doc_count : int;
  total_elements : int;
  total_bytes : int;
  paths : (string, path_info) Hashtbl.t;
  ordered : path_info list; (* deterministic order: by path key *)
}

let path_key path = String.concat "/" path

(* Cap on the exact distinct-value sets kept during collection; beyond it we
   keep counting nodes but freeze the distinct estimate (matching the sampled
   nature of real RUNSTATS). *)
let distinct_cap = 200_000

(* Reservoir size for the numeric sample feeding each path's histogram. *)
let sample_cap = 4096

type collector_entry = {
  info : path_info;
  values : (string, unit) Hashtbl.t;
  numerics : (float, unit) Hashtbl.t;
  mutable sample : float list;  (* reservoir of numeric values *)
  mutable sample_size : int;
  mutable last_doc : int;
  rng : Random.State.t;
}

let collect store =
  let acc : (string, collector_entry) Hashtbl.t = Hashtbl.create 256 in
  let touch doc_id path value =
    let key = path_key path in
    let entry =
      match Hashtbl.find_opt acc key with
      | Some e -> e
      | None ->
          let info =
            {
              path;
              path_key = key;
              node_count = 0;
              doc_count = 0;
              distinct_values = 0;
              total_value_bytes = 0;
              numeric_count = 0;
              distinct_numeric = 0;
              min_num = infinity;
              max_num = neg_infinity;
              histogram = None;
            }
          in
          let e =
            {
              info;
              values = Hashtbl.create 64;
              numerics = Hashtbl.create 16;
              sample = [];
              sample_size = 0;
              last_doc = -1;
              rng = Random.State.make [| Hashtbl.hash key |];
            }
          in
          Hashtbl.add acc key e;
          e
    in
    let info = entry.info in
    info.node_count <- info.node_count + 1;
    if entry.last_doc <> doc_id then begin
      entry.last_doc <- doc_id;
      info.doc_count <- info.doc_count + 1
    end;
    info.total_value_bytes <- info.total_value_bytes + String.length value;
    if Hashtbl.length entry.values < distinct_cap && not (Hashtbl.mem entry.values value)
    then Hashtbl.add entry.values value ();
    (match float_of_string_opt (String.trim value) with
    | None -> ()
    | Some v ->
        info.numeric_count <- info.numeric_count + 1;
        if info.min_num > v then info.min_num <- v;
        if info.max_num < v then info.max_num <- v;
        if Hashtbl.length entry.numerics < distinct_cap && not (Hashtbl.mem entry.numerics v)
        then Hashtbl.add entry.numerics v ();
        (* Bernoulli reservoir: keep every value up to the cap, then thin. *)
        if entry.sample_size < sample_cap then begin
          entry.sample <- v :: entry.sample;
          entry.sample_size <- entry.sample_size + 1
        end
        else if Random.State.int entry.rng info.node_count < sample_cap then
          entry.sample <-
            (match entry.sample with _ :: rest -> v :: rest | [] -> [ v ]))
  in
  Doc_store.iter
    (fun doc_id doc ->
      Xia_xml.Types.iter_nodes (fun _id path value -> touch doc_id path value) doc)
    store;
  let paths = Hashtbl.create (Hashtbl.length acc) in
  Hashtbl.iter
    (fun key entry ->
      entry.info.distinct_values <- max 1 (Hashtbl.length entry.values);
      entry.info.distinct_numeric <- Hashtbl.length entry.numerics;
      entry.info.histogram <- Histogram.create entry.sample;
      Hashtbl.add paths key entry.info)
    acc;
  let ordered =
    List.sort
      (fun a b -> String.compare a.path_key b.path_key)
      (Hashtbl.fold (fun _ info l -> info :: l) paths [])
  in
  {
    table = Doc_store.name store;
    generation = Doc_store.generation store;
    doc_count = Doc_store.doc_count store;
    total_elements = Doc_store.total_elements store;
    total_bytes = Doc_store.total_bytes store;
    paths;
    ordered;
  }

let find t path = Hashtbl.find_opt t.paths (path_key path)

let iter f t = List.iter f t.ordered

let fold f t init = List.fold_left (fun acc info -> f acc info) init t.ordered

let path_count t = Hashtbl.length t.paths

let all_paths t = List.map (fun info -> info.path) t.ordered

(* Paths covered by a linear index pattern.  Memoized per pattern key: the
   stats object is immutable once collected.  The cache is domain-local
   ([Domain.DLS]) because [matching] sits on the parallel what-if path and is
   called from several domains at once; a per-domain table keeps it lock-free
   at the cost of duplicating entries across domains. *)
let matching_cache_key : (string * string * int, path_info list) Hashtbl.t Domain.DLS.key =
  Domain.DLS.new_key (fun () -> Hashtbl.create 64)

let matching t pattern =
  let cache = Domain.DLS.get matching_cache_key in
  let k = (t.table, Xia_xpath.Pattern.key pattern, t.generation) in
  match Hashtbl.find_opt cache k with
  | Some l -> l
  | None ->
      let l =
        List.filter (fun info -> Xia_xpath.Pattern.accepts pattern info.path) t.ordered
      in
      Hashtbl.add cache k l;
      l

let avg_value_bytes info =
  if info.node_count = 0 then 0.0
  else float_of_int info.total_value_bytes /. float_of_int info.node_count
