(** Per-path data statistics for a table — the RUNSTATS equivalent.

    One {!path_info} per distinct rooted label path in the data (attribute
    components spelled ["@name"]). *)

type path_info = {
  path : string list;
  path_key : string;  (** components joined with ["/"] *)
  mutable node_count : int;
  mutable doc_count : int;  (** documents containing the path *)
  mutable distinct_values : int;
  mutable total_value_bytes : int;
  mutable numeric_count : int;  (** nodes whose value parses as a number *)
  mutable distinct_numeric : int;
  mutable min_num : float;
  mutable max_num : float;
  mutable histogram : Histogram.t option;
      (** numeric value histogram from a bounded sample; [None] when the path
          has no (or a single) numeric value *)
}

(** Label trie over the dataguide, built at collection time; immutable. *)
type trie

type t = {
  table : string;
  generation : int;  (** store generation at collection time *)
  doc_count : int;
  total_elements : int;
  total_bytes : int;
  paths : (string, path_info) Hashtbl.t;
  ordered : path_info list;
  infos : path_info array;  (** [ordered] as an array (same order) *)
  trie : trie;
  matching_cache : (int, path_info list) Xia_xpath.Interner.Cache.t;
      (** pattern id → covered paths; shared, read-mostly *)
}

val path_key : string list -> string

(** Scan the whole table and collect statistics (RUNSTATS). *)
val collect : Doc_store.t -> t

val find : t -> string list -> path_info option
val iter : (path_info -> unit) -> t -> unit
val fold : ('a -> path_info -> 'a) -> t -> 'a -> 'a
val path_count : t -> int
val all_paths : t -> string list list

(** Dataguide paths covered by an index pattern, in [ordered] order: a
    single trie walk advancing the pattern's NFA state set once per shared
    label prefix.  Memoized per pattern id (shared across domains). *)
val matching : t -> Xia_xpath.Pattern.t -> path_info list

(** Reference implementation (one NFA run per path, no cache): the
    differential-test oracle and micro-benchmark baseline.  Always equal to
    {!matching}. *)
val matching_linear : t -> Xia_xpath.Pattern.t -> path_info list

val avg_value_bytes : path_info -> float
