(** Flow-sensitive lock-discipline and exception-safety analysis (the
    L/X-series): an intraprocedural CFG over Parsetree expressions with
    explicit exceptional edges, and a forward may-analysis over a small
    product lattice — held locksets (R002's nominal mutex identities) ×
    pending save/restore obligations on [Atomic.t]/[ref]/catalog virtual
    state.

    - [L001] a blocking effect ([PerformsIO] per the {!Effects} summaries,
      or an [Optimizer.optimize*] entry) is reachable while a mutex is
      statically held.
    - [L002] a mutex is acquired and some exceptional path reaches the
      function exit without unlocking it (a bare [Mutex.lock]/[Mutex.unlock]
      pair not wrapped in a [Fun.protect]-style finalizer).
    - [X001] a save/restore idiom ([let old = Atomic.get x … Atomic.set x
      old], [let old = !r … r := old], or the [Catalog.virtual_indexes] /
      [Catalog.set_virtual_indexes] analogue) whose restore is skipped on
      some exceptional path.
    - [X002] [Mutex.unlock] on a path where the mutex is statically not
      held (double unlock, or unlock without a lock on this path).

    CFG construction (exceptional edges for [raise]/[failwith], any call
    whose per-binding can-raise summary is set, [try]/[match]-[exception]
    handlers re-joining, [Fun.protect] finalizers inlined on both the
    normal and the exceptional edge), the lattice, and the soundness /
    incompleteness trade-offs are documented in DESIGN.md §5k.

    Suppression: [\[@lint.allow "ID"\]] at the site a finding anchors to
    (the blocking call for L001, the [Mutex.lock] for L002, the save
    binding for X001, the [Mutex.unlock] for X002), plus allow-file
    entries downstream. *)

(** Run L001, L002, X001 and X002 over every binding of the graph (each
    closure body is analyzed as its own root, entered with an unknown
    lockset).  Findings are deduplicated and carry attribute suppressions
    already applied. *)
val check : Callgraph.t -> Effects.t -> Finding.t list
