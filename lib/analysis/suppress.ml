(* Suppression machinery, two forms:

   1. In-source attributes: [@lint.allow "D001"] on an expression, or
      [@@lint.allow "D001"] on a value binding / structure item.  The payload
      is one string of whitespace/comma-separated check IDs.

   2. A checked-in allow file ("lint.allow") with one per-site entry per
      line:

        D001 lib/core/par.ml:68 -- why this site is intentionally exempt

      The path is matched by component suffix (so entries keep working when
      the tool is invoked from a build sandbox or with a path prefix), the
      ":line" part is optional, and the reason after "--" is mandatory:
      an allowlist entry without a justification is itself an error. *)

type entry = {
  id : string;
  path : string;
  line : int option;
  reason : string;
}

let is_blank s = String.for_all (fun c -> c = ' ' || c = '\t') s

let split_ws s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

(* "path/file.ml:42" -> ("path/file.ml", Some 42); no colon -> (s, None). *)
let split_site s =
  match String.rindex_opt s ':' with
  | None -> Ok (s, None)
  | Some i -> (
      let path = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt rest with
      | Some n when n > 0 -> Ok (path, Some n)
      | _ -> Error (Printf.sprintf "invalid line number %S" rest))

let parse_line ~file lineno raw =
  let line =
    match String.index_opt raw '#' with
    | Some 0 -> ""
    | _ -> raw
  in
  if is_blank line then Ok None
  else
    let err msg =
      Error (Printf.sprintf "%s:%d: %s (expected: ID path[:line] -- reason)" file lineno msg)
    in
    let sep_index =
      (* first "--" token preceded by whitespace: the reason separator *)
      let n = String.length line in
      let rec scan i =
        if i + 1 >= n then None
        else if
          line.[i] = '-' && line.[i + 1] = '-'
          && (i = 0 || line.[i - 1] = ' ' || line.[i - 1] = '\t')
        then Some i
        else scan (i + 1)
      in
      scan 0
    in
    match sep_index with
    | Some i -> (
        let head = String.sub line 0 i in
        let reason = String.trim (String.sub line (i + 2) (String.length line - i - 2)) in
        if reason = "" then err "empty reason after --"
        else
          match split_ws head with
          | [ id; site ] -> (
              match split_site site with
              | Error e -> err e
              | Ok (path, line) -> Ok (Some { id; path; line; reason }))
          | _ -> err "expected exactly 'ID path[:line]' before --")
    | _ -> err "missing ' -- reason'"

let parse_allow_file ~file contents =
  let lines = String.split_on_char '\n' contents in
  let entries, errors =
    List.fold_left
      (fun (entries, errors) (lineno, raw) ->
        match parse_line ~file lineno raw with
        | Ok None -> (entries, errors)
        | Ok (Some e) -> (e :: entries, errors)
        | Error msg -> (entries, msg :: errors))
      ([], [])
      (List.mapi (fun i l -> (i + 1, l)) lines)
  in
  match errors with
  | [] -> Ok (List.rev entries)
  | es -> Error (List.rev es)

let load_allow_file path =
  if not (Sys.file_exists path) then
    Error [ Printf.sprintf "allow file %s does not exist" path ]
  else
    let ic = open_in_bin path in
    let contents = really_input_string ic (in_channel_length ic) in
    close_in ic;
    parse_allow_file ~file:path contents

let path_components p =
  String.split_on_char '/' p |> List.filter (fun c -> c <> "" && c <> ".")

(* [entry_path] matches [file] when its components are a suffix of the
   file's components: "index/index_def.ml" matches "../lib/index/index_def.ml". *)
let path_matches ~entry_path ~file =
  let e = List.rev (path_components entry_path) in
  let f = List.rev (path_components file) in
  let rec prefix = function
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> String.equal x y && prefix (xs, ys)
  in
  prefix (e, f)

let suppresses entry (f : Finding.t) =
  String.equal entry.id f.Finding.id
  && path_matches ~entry_path:entry.path ~file:f.Finding.file
  && match entry.line with None -> true | Some l -> l = f.Finding.line

let apply entries findings =
  List.partition (fun f -> not (List.exists (fun e -> suppresses e f) entries)) findings

(* --- in-source suppression helpers ------------------------------------- *)

let attribute_name = "lint.allow"

let ids_of_payload (payload : Parsetree.payload) =
  match payload with
  | Parsetree.PStr items ->
      List.concat_map
        (fun (item : Parsetree.structure_item) ->
          match item.pstr_desc with
          | Parsetree.Pstr_eval
              ({ pexp_desc = Pexp_constant (Pconst_string (s, _, _)); _ }, _) ->
              String.map (fun c -> if c = ',' || c = ';' then ' ' else c) s
              |> split_ws
          | _ -> [])
        items
  | _ -> []

let allow_ids (attrs : Parsetree.attributes) =
  List.concat_map
    (fun (a : Parsetree.attribute) ->
      if String.equal a.attr_name.txt attribute_name then ids_of_payload a.attr_payload
      else [])
    attrs

(* --- lint-note comments (H002) ----------------------------------------- *)

(* Lines carrying a "(* lint: reason *)" note.  Comments never reach the
   parsetree, so we scan the raw text: a line participates when, with blanks
   removed, it contains "(*lint:". *)
let lint_note_lines source =
  let notes = Hashtbl.create 8 in
  List.iteri
    (fun i line ->
      let squeezed =
        String.to_seq line
        |> Seq.filter (fun c -> c <> ' ' && c <> '\t')
        |> String.of_seq
      in
      let has_note =
        let needle = "(*lint:" in
        let n = String.length needle and m = String.length squeezed in
        let rec scan i = i + n <= m && (String.sub squeezed i n = needle || scan (i + 1)) in
        scan 0
      in
      if has_note then Hashtbl.replace notes (i + 1) ())
    (String.split_on_char '\n' source);
  notes

let has_lint_note notes ~line =
  Hashtbl.mem notes line || Hashtbl.mem notes (line - 1)
