(** Interprocedural effect inference over the cross-unit call graph.

    Per toplevel value binding the pass computes a summary in a small
    effect lattice — the powerset of {!effect_kind}, where the empty set is
    [Pure] — plus witness lists (race accesses, catalog/store mutator
    sites, order-dependent folds, float accumulations) that the D003, R001
    and N/E-series checks query instead of re-walking the graph.  Local
    facts join bottom-up to a fixpoint through recursion, module aliases
    and ambiguous edges (join of all candidates).

    The analysis is syntactic over the untyped parsetree; lattice
    semantics, propagation rules and the soundness/incompleteness
    trade-offs are documented in DESIGN.md §5h. *)

(** One effect dimension; a summary is a set of these. *)
type effect_kind =
  | Reads_mutable      (** reads shared mutable state *)
  | Writes_mutable     (** writes state that may outlive the call *)
  | Performs_io        (** unambiguous channel/console/filesystem traffic *)
  | Order_dependent    (** consumes Hashtbl/Queue iteration order or [==] *)
  | Nondeterministic   (** global [Random], raw clocks, shared float accumulation *)

(** Stable display name: ["ReadsMutable"], ["WritesMutable"], ... *)
val kind_name : effect_kind -> string

(** A classified source site; [s_suppressed] is true when an enclosing
    [\[@lint.allow "<ID>"\]] covers the site for the check that consumes
    this witness kind. *)
type site = { s_loc : Location.t; s_what : string; s_suppressed : bool }

(** A reference to raw module-toplevel mutable state, with the call chain
    from the summarized binding down to the access. *)
type race_witness = {
  w_loc : Location.t;
  w_global : string;    (** binding name of the raw global *)
  w_kind : string;      (** allocator: ["ref"], ["Hashtbl.create"], ... *)
  w_path : string;      (** unit path declaring the global *)
  w_via : string list;  (** call chain, summarized binding first *)
  w_suppressed : bool;
}

(** A read-modify-write float update of non-local state
    ([t := !t +. x], [r.sum <- r.sum +. x]). *)
type acc_witness = {
  a_loc : Location.t;
  a_what : string;
  a_via : string list;
  a_suppressed : bool;
}

type t

(** Run the local scan over every node and propagate to a fixpoint. *)
val analyze : Callgraph.t -> t

(** Effects of the node's own body only. *)
val local_effects : t -> Callgraph.node -> effect_kind list

(** Effects joined over the node and everything it may call. *)
val total_effects : t -> Callgraph.node -> effect_kind list

(** IO sites in the node's own body (E001's witnesses). *)
val local_io : t -> Callgraph.node -> site list

(** Hashtbl/Queue folds in the node's own body whose literal closure builds
    a list with no canonicalizing sort in the same binding (N001's
    witnesses). *)
val local_order : t -> Callgraph.node -> site list

(** Shared-state writes in the node's own body (E002's witnesses).  Atomic
    operations and writes to per-call raw locals are excluded;
    catalog/store mutators are carried separately as mutation sites. *)
val local_writes : t -> Callgraph.node -> site list

(** Alias-expanded [Catalog.*]/[Doc_store.*] mutator references in the
    node's own body (D003's sites).  Attribute-suppressed sites are already
    dropped, mirroring the previous D003 scan. *)
val local_mutations : t -> Callgraph.node -> site list

(** Every binding whose summary contains the mutator site at [loc] — i.e.
    everything the site is transitively reachable from, the site's own host
    included.  Sorted by node key. *)
val mutation_entries : t -> Location.t -> Callgraph.node list

(** Raw-global accesses reachable from this binding, with via chains;
    sorted by (location, global).  Empty for lock-disciplined bindings, and
    never propagated through one. *)
val race_witnesses : t -> Callgraph.node -> race_witness list

val float_accumulations : t -> Callgraph.node -> acc_witness list

(** Resolved call targets of the node (shadow-skipped, deduplicated,
    sorted by key). *)
val calls : t -> Callgraph.node -> Callgraph.node list

(** The node takes a [Mutex.lock] or carries [\[@lint.allow "R001"\]]. *)
val lock_disciplined : t -> Callgraph.node -> bool

(** The node references a [Par.map]/[Par.map_list]/[Par.iter]/
    [Domain.spawn] fan-out point. *)
val has_par_fanout : t -> Callgraph.node -> bool

(** The node references [Par.sum_list], the sanctioned deterministic
    parallel float reduction. *)
val uses_sum_list : t -> Callgraph.node -> bool

(** [List.fold_left]/[Array.fold_left] applications whose folding function
    contains float arithmetic (N002's order-fragile reduction sites). *)
val float_folds : t -> Callgraph.node -> site list

(** Is this node raw module-toplevel mutable state?  Returns the allocator
    kind.  Memoized; [\[@lint.allow "R001"\]] on the binding yields
    [None]. *)
val raw_global : t -> Callgraph.node -> string option

(** Raw mutable locals let-bound anywhere in the node body, name -> kind. *)
val raw_locals : t -> Callgraph.node -> (string, string) Hashtbl.t

(** Deterministic per-binding summary dump, one
    ["<unit path> <name>: local=<flags> total=<flags>"] line per node,
    sorted by node key; flag sets print in fixed order and [Pure] stands
    for the empty set.  Byte-stable across runs (the [--effects] output). *)
val dump : t -> string

(** {1 Shared syntactic classifiers}

    Used by {!Checks} and {!Races}; they live here so the whole analysis
    stack agrees on what counts as mutable state. *)

(** Is [suffix] a component suffix of [path]?
    [has_suffix ~suffix:\["Par"; "map"\] \["Xia_core"; "Par"; "map"\]] is
    [true]. *)
val has_suffix : suffix:string list -> string list -> bool

(** Field names declared [mutable] anywhere in this compilation unit. *)
val mutable_field_names : Parsetree.structure -> (string, unit) Hashtbl.t

(** Classify an expression as raw shared mutable state: every
    [(location, allocator)] pair found descending through wrappers and data
    constructors.  Empty for deferred allocations (functions, [lazy]) and
    Atomic/Mutex/DLS-wrapped initializers. *)
val d001_hits :
  (string, unit) Hashtbl.t ->
  (Location.t * string) list ->
  Parsetree.expression ->
  (Location.t * string) list

(** All variable names bound by patterns anywhere inside the expression. *)
val bound_vars : Parsetree.expression -> (string, unit) Hashtbl.t

(** Does the expression body contain a [Mutex.lock] reference? *)
val contains_mutex_lock : Parsetree.expression -> bool

(** Classify a dotted path as an unambiguous IO builtin (console/channel/
    filesystem traffic); returns the display name.  Callers gate on empty
    graph resolution first, so project bindings sharing a builtin's name
    do not classify. *)
val io_of_path : string list -> string option

(** Read-modify-write float-update sites in an expression as
    [(loc, description, n002_suppressed)] triples; [exempt] names targets
    to skip (per-call locals, closure-bound accumulators), [stack0] seeds
    the attribute-suppression stack. *)
val float_acc_sites :
  ?stack0:string list ->
  exempt:(string -> bool) ->
  Parsetree.expression ->
  (Location.t * string * bool) list
