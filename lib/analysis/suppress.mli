(** Suppression of findings: the checked-in allow file, the
    [\[@lint.allow "ID"\]] attribute, and [(* lint: reason *)] notes. *)

type entry = {
  id : string;           (** check ID, e.g. "D001" *)
  path : string;         (** path matched by component suffix *)
  line : int option;     (** exact line, or any line of the file *)
  reason : string;       (** mandatory justification *)
}

(** Parse allow-file contents; [file] is used in error messages.  Every
    entry must carry a reason after [--]. *)
val parse_allow_file : file:string -> string -> (entry list, string list) result

(** Read and parse an allow file from disk. *)
val load_allow_file : string -> (entry list, string list) result

(** Does this entry suppress this finding? *)
val suppresses : entry -> Finding.t -> bool

(** [apply entries findings] is [(kept, suppressed)]. *)
val apply : entry list -> Finding.t list -> Finding.t list * Finding.t list

(** The attribute name recognized for in-source suppression. *)
val attribute_name : string

(** Check IDs allowed by [\[@lint.allow "..."\]] attributes in [attrs]. *)
val allow_ids : Parsetree.attributes -> string list

(** Lines of [source] carrying a [(* lint: ... *)] note. *)
val lint_note_lines : string -> (int, unit) Hashtbl.t

(** A note on [line] or the line directly above it. *)
val has_lint_note : (int, unit) Hashtbl.t -> line:int -> bool
