(* The R-series (domain races) and N002 (order-fragile parallel float
   reduction), run over the cross-unit call graph and the [Effects]
   summaries computed on it.

   R001  module-level or escaping mutable state reached from a parallel
         task: a closure (or named function) passed to [Par.map] /
         [Par.map_list] / [Par.iter] / [Domain.spawn] that captures a raw
         mutable local ([ref], [Hashtbl.create], ...), mutates a field of a
         captured value, or — transitively, through helpers in any unit —
         references raw module-toplevel mutable state.  The transitive core
         is [Effects.race_witnesses]: the effect pass records every raw-
         global access with its call chain, refuses to propagate through a
         lock-disciplined binding (a body taking [Mutex.lock], or
         [@lint.allow "R001"]), and this check emits the unsuppressed
         witnesses of every task that escapes to another domain.  Wrapped
         state (Atomic, Mutex, Domain.DLS, Lazy, Interner.Cache) never
         classifies as raw.
   R002  inconsistent mutex acquisition order: [Mutex.lock b] while [a] is
         statically held, when somewhere else [a] is locked while [b] is
         held (deadlock by lock-order inversion), including locks taken by
         callees resolved through the graph.  Mutexes are identified
         nominally by the symbolic path of the lock expression ([pool.lock],
         [shard.lock], ...); re-locking the same symbol is reported as a
         self-deadlock (stdlib mutexes are not reentrant).
   R003  non-atomic read-modify-write: [Atomic.set x (... Atomic.get x ...)]
         — the window between get and set loses concurrent updates; use
         [Atomic.fetch_and_add]/[Atomic.incr] or a [compare_and_set] retry
         loop.  Only the syntactically nested shape is matched: a get
         let-bound earlier (the save/restore idiom) is not a hit.
   N002  a parallel fan-out combining float work without [Par.sum_list]:
         either the escaping task accumulates into shared state
         ([t := !t +. x] — racy and order-varying; witness list
         [Effects.float_accumulations], which propagates even through lock
         discipline because a mutex serializes the updates without fixing
         their order), or the fan-out host folds float results with a bare
         [List.fold_left]/[Array.fold_left] whose grouping the scheduler
         picks.

   All checks honor [@lint.allow "ID"] attribute suppression at the site
   the finding anchors to, plus allow-file entries downstream. *)

open Parsetree

let allow id attrs = List.mem id (Suppress.allow_ids attrs)

(* The parallel fan-out entry points.  An argument in function position of
   one of these escapes to another domain. *)
let par_entries =
  [
    ([ "Par"; "map" ], "Par.map");
    ([ "Par"; "map_list" ], "Par.map_list");
    ([ "Par"; "iter" ], "Par.iter");
    ([ "Domain"; "spawn" ], "Domain.spawn");
  ]

let par_entry_of_path path =
  List.find_map
    (fun (suffix, name) -> if Effects.has_suffix ~suffix path then Some name else None)
    par_entries

(* Symbolic identity of a lock/atomic expression: dotted ident or field
   path ("pool.lock", "t.shards.lock"); [None] when the expression has no
   stable name (array cells, call results). *)
let rec sym (e : expression) =
  match e.pexp_desc with
  | Pexp_ident lid -> Some (String.concat "." (Longident.flatten lid.txt))
  | Pexp_field (b, lid) -> (
      match sym b with
      | Some s -> (
          match List.rev (Longident.flatten lid.txt) with
          | f :: _ -> Some (s ^ "." ^ f)
          | [] -> None)
      | None -> None)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> sym e
  | _ -> None

(* ---------------------------------------------------------------- R001 -- *)

type r001_ctx = {
  graph : Callgraph.t;
  eff : Effects.t;
  findings : Finding.t list ref;
}

let r001_capture_message entry name kind =
  Printf.sprintf
    "closure passed to %s captures mutable local %s (%s): shared across domains \
     without synchronization; use Atomic/Mutex or return per-item results"
    entry name kind

let r001_global_message entry name kind path trail =
  let via =
    match trail with [] -> "" | t -> Printf.sprintf " via %s" (String.concat " -> " t)
  in
  Printf.sprintf
    "parallel task passed to %s reaches module-toplevel mutable state %s (%s, %s)%s: \
     unsynchronized cross-domain access; wrap in Atomic/Mutex/Domain.DLS"
    entry name kind path via

let r001_setfield_message entry field =
  Printf.sprintf
    "closure passed to %s writes mutable field %s of a captured value: \
     unsynchronized cross-domain write; guard with a Mutex or make it Atomic"
    entry field

let emit ctx ~id ~message loc =
  ctx.findings := Finding.of_location ~id ~message loc :: !(ctx.findings)

let witness_key (w : Effects.race_witness) =
  let p = w.w_loc.Location.loc_start in
  (p.Lexing.pos_fname, p.Lexing.pos_lnum, p.Lexing.pos_cnum, w.w_global)

(* A named function that escapes to another domain: its summary already
   carries every raw-global access it can transitively reach, each with the
   call chain from the task down to the access.  [visited] is global — one
   finding per racy global reference site is enough no matter how many
   fan-out sites reach it. *)
let emit_escaping_witnesses ctx ~visited ~entry (tgt : Callgraph.node) =
  List.iter
    (fun (w : Effects.race_witness) ->
      let k = witness_key w in
      if not (Hashtbl.mem visited k) then begin
        Hashtbl.replace visited k ();
        if not w.Effects.w_suppressed then
          emit ctx ~id:"R001"
            ~message:(r001_global_message entry w.w_global w.w_kind w.w_path w.w_via)
            w.w_loc
      end)
    (Effects.race_witnesses ctx.eff tgt)

(* Scan a literal closure passed to a fan-out point: the capture checks plus
   the witness query for every helper the closure calls. *)
let scan_closure ctx ~visited ~entry ~locals ~host (c : expression) =
  let bound = Effects.bound_vars c in
  let stack = ref [] in
  let active id = List.exists (List.mem id) !stack in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          stack := Suppress.allow_ids e.pexp_attributes :: !stack;
          (match e.pexp_desc with
          | Pexp_ident lid -> (
              let path = Longident.flatten lid.txt in
              match path with
              | [ x ] when Hashtbl.mem bound x -> ()
              | [ x ] when Hashtbl.mem locals x ->
                  if not (active "R001") then
                    emit ctx ~id:"R001"
                      ~message:(r001_capture_message entry x (Hashtbl.find locals x))
                      e.pexp_loc
              | _ ->
                  List.iter
                    (fun (tgt : Callgraph.node) ->
                      match Effects.raw_global ctx.eff tgt with
                      | Some kind ->
                          if not (active "R001") then
                            emit ctx ~id:"R001"
                              ~message:(r001_global_message entry tgt.name kind tgt.u.path [])
                              e.pexp_loc
                      | None -> emit_escaping_witnesses ctx ~visited ~entry tgt)
                    (Callgraph.resolve ctx.graph host path))
          | Pexp_setfield (base, flid, _) -> (
              (* Any [x.f <- e] is a mutable-field write by construction; the
                 only question is whether [x] is the closure's own. *)
              match List.rev (Longident.flatten flid.txt) with
              | f :: _ ->
                  let base_bound =
                    match base.pexp_desc with
                    | Pexp_ident { txt = Longident.Lident x; _ } -> Hashtbl.mem bound x
                    | _ -> false
                  in
                  if (not base_bound) && not (active "R001") then
                    emit ctx ~id:"R001" ~message:(r001_setfield_message entry f)
                      e.pexp_loc
              | [] -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e;
          stack := List.tl !stack)
    }
  in
  it.expr it c

(* The function argument of a fan-out call: the first unlabeled argument
   ([Par.map ~domains f arr] and [Domain.spawn f] both fit). *)
let task_argument args =
  List.find_map
    (fun (label, (a : expression)) ->
      match label with Asttypes.Nolabel -> Some a | _ -> None)
    args

let rec is_closure (e : expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> is_closure e
  | _ -> false

let rec head_ident (e : expression) =
  match e.pexp_desc with
  | Pexp_ident lid -> Some (Longident.flatten lid.txt)
  | Pexp_apply (f, _) -> head_ident f
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> head_ident e
  | _ -> None

(* ---------------------------------------------------------------- N002 -- *)

let n002_acc_message entry what trail =
  let via =
    match trail with [] -> "" | t -> Printf.sprintf " via %s" (String.concat " -> " t)
  in
  Printf.sprintf
    "parallel task passed to %s performs %s%s: the accumulation order varies \
     across domains, so the sum is not reproducible; return per-task results \
     and combine with Par.sum_list"
    entry what via

let n002_fold_message what =
  Printf.sprintf
    "%s next to a parallel fan-out: float addition is not associative and the \
     fold order is a scheduling accident away from changing; combine the \
     fan-out's results with Par.sum_list (fixed sequential reduction)"
    what

let acc_key (a : Effects.acc_witness) =
  let p = a.a_loc.Location.loc_start in
  (p.Lexing.pos_fname, p.Lexing.pos_lnum, p.Lexing.pos_cnum, "")

let emit_escaping_accs ctx ~visited ~entry (tgt : Callgraph.node) =
  List.iter
    (fun (a : Effects.acc_witness) ->
      let k = acc_key a in
      if not (Hashtbl.mem visited k) then begin
        Hashtbl.replace visited k ();
        if not a.Effects.a_suppressed then
          emit ctx ~id:"N002" ~message:(n002_acc_message entry a.a_what a.a_via) a.a_loc
      end)
    (Effects.float_accumulations ctx.eff tgt)

(* Float accumulation inside a literal task closure: shared targets only —
   names the closure itself binds are per-task. *)
let scan_closure_accs ctx ~entry (c : expression) =
  let bound = Effects.bound_vars c in
  List.iter
    (fun (loc, what, suppressed) ->
      if not suppressed then
        emit ctx ~id:"N002" ~message:(n002_acc_message entry what []) loc)
    (Effects.float_acc_sites ~exempt:(Hashtbl.mem bound) c)

(* ------------------------------------------- fan-out site walk (R001+N002) -- *)

(* Walk one node's body looking for fan-out calls; each task found feeds
   both the race check and the accumulation half of N002.  Afterwards, the
   fold half: a binding that fans out, folds floats, and never references
   the sanctioned reduction. *)
let check_fanout_node ctx ~visited ~acc_visited (n : Callgraph.node) =
  let locals = Effects.raw_locals ctx.eff n in
  let stack = ref [ Suppress.allow_ids n.attrs ] in
  let active id = List.exists (List.mem id) !stack in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          stack := Suppress.allow_ids e.pexp_attributes :: !stack;
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args) -> (
              match
                par_entry_of_path
                  (Callgraph.expand ctx.graph n.u (Longident.flatten lid.txt))
              with
              | Some entry -> (
                  match task_argument args with
                  | Some task when is_closure task ->
                      if not (active "R001") then
                        scan_closure ctx ~visited ~entry ~locals ~host:n.u task;
                      if not (active "N002") then scan_closure_accs ctx ~entry task
                  | Some task -> (
                      match head_ident task with
                      | Some path ->
                          List.iter
                            (fun (tgt : Callgraph.node) ->
                              if not (active "R001") then
                                emit_escaping_witnesses ctx ~visited ~entry tgt;
                              if not (active "N002") then
                                emit_escaping_accs ctx ~visited:acc_visited ~entry tgt)
                            (Callgraph.resolve ctx.graph n.u path)
                      | None -> ())
                  | None -> ())
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e;
          stack := List.tl !stack);
    }
  in
  it.expr it n.expr;
  if
    Effects.has_par_fanout ctx.eff n
    && (not (Effects.uses_sum_list ctx.eff n))
    && not (allow "N002" n.attrs)
  then
    List.iter
      (fun (s : Effects.site) ->
        if not s.Effects.s_suppressed then
          emit ctx ~id:"N002" ~message:(n002_fold_message s.s_what) s.s_loc)
      (Effects.float_folds ctx.eff n)

(* ---------------------------------------------------------------- R002 -- *)

type lock_site = { loc : Location.t; suppressed : bool; via : string option }

(* Direct lock symbols of a node body (for the interprocedural step). *)
let direct_locks (n : Callgraph.node) =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args)
            when Effects.has_suffix ~suffix:[ "Mutex"; "lock" ] (Longident.flatten lid.txt)
            -> (
              match task_argument args with
              | Some m -> ( match sym m with Some s -> acc := s :: !acc | None -> ())
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it n.expr;
  List.sort_uniq String.compare !acc

let transitive_locks graph memo (n : Callgraph.node) =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec visit (n : Callgraph.node) =
    let k = Callgraph.key n in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.replace seen k ();
      let direct =
        match Hashtbl.find_opt memo k with
        | Some d -> d
        | None ->
            let d = direct_locks n in
            Hashtbl.replace memo k d;
            d
      in
      acc := direct @ !acc;
      List.iter visit (Callgraph.succs graph n)
    end
  in
  visit n;
  List.sort_uniq String.compare !acc

let r002_inversion_message b a (rev : lock_site) =
  let p = rev.loc.Location.loc_start in
  Printf.sprintf
    "Mutex.lock on %s while %s is held, but the opposite order occurs at %s:%d: \
     inconsistent acquisition order can deadlock; pick one global order"
    b a p.Lexing.pos_fname p.Lexing.pos_lnum

let r002_self_message a =
  Printf.sprintf
    "Mutex.lock on %s while %s is already held: stdlib mutexes are not reentrant — \
     this self-deadlocks"
    a a

(* [fun () -> body] (or any one-argument literal fun) viewed as the body it
   will run — used to walk [Fun.protect] thunks in-line below. *)
let thunk_body (e : Parsetree.expression) =
  match e.pexp_desc with
  | Pexp_fun (Nolabel, None, _, b) -> Some b
  | _ -> None

let check_r002 graph =
  let pairs : (string * string, lock_site list) Hashtbl.t = Hashtbl.create 32 in
  let add_pair a b site =
    Hashtbl.replace pairs (a, b)
      (Option.value ~default:[] (Hashtbl.find_opt pairs (a, b)) @ [ site ])
  in
  let lock_memo = Hashtbl.create 64 in
  List.iter
    (fun (n : Callgraph.node) ->
      let held = ref [] in
      let stack = ref [ Suppress.allow_ids n.attrs ] in
      let active id = List.exists (List.mem id) !stack in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              stack := Suppress.allow_ids e.pexp_attributes :: !stack;
              (match e.pexp_desc with
              | Pexp_fun _ | Pexp_function _ ->
                  (* A closure body runs later, under whatever locks its
                     caller then holds — not the ones held where it is
                     defined. *)
                  let saved = !held in
                  held := [];
                  Fun.protect
                    ~finally:(fun () -> held := saved)
                    (fun () -> Ast_iterator.default_iterator.expr it e)
              | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args)
                when Effects.has_suffix ~suffix:[ "Fun"; "protect" ]
                       (Longident.flatten lid.txt)
                     && List.exists
                          (function
                            | Asttypes.Labelled "finally", _ -> true | _ -> false)
                          args ->
                  (* Fun.protect runs its body and then its finalizer at the
                     *current* lock level, so literal thunks are walked
                     in-line rather than as deferred closures — otherwise a
                     [Mutex.unlock] in [~finally] would never discharge the
                     lock acquired just above it. *)
                  List.iter
                    (fun ((l : Asttypes.arg_label), a) ->
                      match l with
                      | Labelled "finally" -> ()
                      | _ -> (
                          match thunk_body a with
                          | Some b -> it.expr it b
                          | None -> it.expr it a))
                    args;
                  List.iter
                    (fun ((l : Asttypes.arg_label), a) ->
                      match l with
                      | Labelled "finally" -> (
                          match thunk_body a with
                          | Some b -> it.expr it b
                          | None -> it.expr it a)
                      | _ -> ())
                    args
              | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args) -> (
                  let path = Longident.flatten lid.txt in
                  (if Effects.has_suffix ~suffix:[ "Mutex"; "lock" ] path then
                     match Option.bind (task_argument args) sym with
                     | Some s ->
                         List.iter
                           (fun h ->
                             add_pair h s
                               { loc = e.pexp_loc; suppressed = active "R002"; via = None })
                           !held;
                         held := !held @ [ s ]
                     | None -> ()
                   else if Effects.has_suffix ~suffix:[ "Mutex"; "unlock" ] path then
                     match Option.bind (task_argument args) sym with
                     | Some s -> held := List.filter (fun h -> h <> s) !held
                     | None -> ()
                   else if !held <> [] then
                     List.iter
                       (fun (tgt : Callgraph.node) ->
                         List.iter
                           (fun l ->
                             List.iter
                               (fun h ->
                                 add_pair h l
                                   {
                                     loc = e.pexp_loc;
                                     suppressed = active "R002";
                                     via = Some tgt.name;
                                   })
                               !held)
                           (transitive_locks graph lock_memo tgt))
                       (Callgraph.resolve graph n.u path));
                  Ast_iterator.default_iterator.expr it e)
              | _ -> Ast_iterator.default_iterator.expr it e);
              stack := List.tl !stack)
        }
      in
      it.expr it n.expr)
    (Callgraph.nodes graph);
  let first_site sites =
    List.sort
      (fun (a : lock_site) b ->
        let pa = a.loc.Location.loc_start and pb = b.loc.Location.loc_start in
        compare
          (pa.Lexing.pos_fname, pa.Lexing.pos_lnum, pa.Lexing.pos_cnum)
          (pb.Lexing.pos_fname, pb.Lexing.pos_lnum, pb.Lexing.pos_cnum))
      sites
    |> List.hd
  in
  Hashtbl.fold
    (fun (a, b) sites acc ->
      if a = b then
        List.fold_left
          (fun acc (s : lock_site) ->
            if s.suppressed then acc
            else Finding.of_location ~id:"R002" ~message:(r002_self_message a) s.loc :: acc)
          acc sites
      else
        match Hashtbl.find_opt pairs (b, a) with
        | Some rev_sites ->
            let rev = first_site rev_sites in
            List.fold_left
              (fun acc (s : lock_site) ->
                if s.suppressed then acc
                else
                  Finding.of_location ~id:"R002" ~message:(r002_inversion_message b a rev)
                    s.loc
                  :: acc)
              acc sites
        | None -> acc)
    pairs []

(* ---------------------------------------------------------------- R003 -- *)

let r003_message target =
  Printf.sprintf
    "non-atomic read-modify-write: Atomic.set of %s computed from Atomic.get of \
     the same atomic loses concurrent updates; use Atomic.fetch_and_add/incr or \
     a compare_and_set retry loop"
    target

let contains_get_of (target : string) (e : expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args)
            when Effects.has_suffix ~suffix:[ "Atomic"; "get" ] (Longident.flatten lid.txt)
            -> (
              match Option.bind (task_argument args) sym with
              | Some s when s = target -> found := true
              | _ -> ())
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

let check_r003 structure =
  let findings = ref [] in
  let stack = ref [] in
  let active id = List.exists (List.mem id) !stack in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          stack := Suppress.allow_ids e.pexp_attributes :: !stack;
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args)
            when Effects.has_suffix ~suffix:[ "Atomic"; "set" ] (Longident.flatten lid.txt)
            -> (
              match args with
              | (Asttypes.Nolabel, target) :: (Asttypes.Nolabel, value) :: _ -> (
                  match sym target with
                  | Some s when contains_get_of s value ->
                      if not (active "R003") then
                        findings :=
                          Finding.of_location ~id:"R003" ~message:(r003_message s)
                            e.pexp_loc
                          :: !findings
                  | _ -> ())
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e;
          stack := List.tl !stack);
      value_binding =
        (fun it vb ->
          stack := Suppress.allow_ids vb.pvb_attributes :: !stack;
          Ast_iterator.default_iterator.value_binding it vb;
          stack := List.tl !stack);
    }
  in
  it.structure it structure;
  !findings

(* ------------------------------------------------------------- driver -- *)

let check graph eff =
  let ctx = { graph; eff; findings = ref [] } in
  let visited = Hashtbl.create 64 in
  let acc_visited = Hashtbl.create 16 in
  List.iter (check_fanout_node ctx ~visited ~acc_visited) (Callgraph.nodes graph);
  let r002 = check_r002 graph in
  let r003 =
    List.concat_map
      (fun (u : Callgraph.unit_info) -> check_r003 u.structure)
      (Callgraph.units graph)
  in
  !(ctx.findings) @ r002 @ r003
