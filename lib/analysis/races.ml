(* The R-series: domain-race checks over the cross-unit call graph.

   R001  module-level or escaping mutable state reached from a parallel
         task: a closure (or named function) passed to [Par.map] /
         [Par.map_list] / [Par.iter] / [Domain.spawn] that captures a raw
         mutable local ([ref], [Hashtbl.create], ...), mutates a field of a
         captured value, or — transitively, through helpers in any unit —
         references raw module-toplevel mutable state.  Wrapped state
         (Atomic, Mutex, Domain.DLS, Lazy, Interner.Cache) never classifies
         as raw, and a function whose body takes a [Mutex.lock] is assumed
         lock-disciplined and skipped (its callees included): a linear
         analysis cannot pair each access with its critical section, so it
         defers to the human there rather than spray false positives.
   R002  inconsistent mutex acquisition order: [Mutex.lock b] while [a] is
         statically held, when somewhere else [a] is locked while [b] is
         held (deadlock by lock-order inversion), including locks taken by
         callees resolved through the graph.  Mutexes are identified
         nominally by the symbolic path of the lock expression ([pool.lock],
         [shard.lock], ...); re-locking the same symbol is reported as a
         self-deadlock (stdlib mutexes are not reentrant).
   R003  non-atomic read-modify-write: [Atomic.set x (... Atomic.get x ...)]
         — the window between get and set loses concurrent updates; use
         [Atomic.fetch_and_add]/[Atomic.incr] or a [compare_and_set] retry
         loop.  Only the syntactically nested shape is matched: a get
         let-bound earlier (the save/restore idiom) is not a hit.

   All three honor [@lint.allow "R00x"] attribute suppression at the site
   the finding anchors to, plus allow-file entries downstream. *)

open Parsetree

let allow id attrs = List.mem id (Suppress.allow_ids attrs)

(* The parallel fan-out entry points.  An argument in function position of
   one of these escapes to another domain. *)
let par_entries =
  [
    ([ "Par"; "map" ], "Par.map");
    ([ "Par"; "map_list" ], "Par.map_list");
    ([ "Par"; "iter" ], "Par.iter");
    ([ "Domain"; "spawn" ], "Domain.spawn");
  ]

let par_entry_of_path path =
  List.find_map
    (fun (suffix, name) -> if Checks.has_suffix ~suffix path then Some name else None)
    par_entries

(* Symbolic identity of a lock/atomic expression: dotted ident or field
   path ("pool.lock", "t.shards.lock"); [None] when the expression has no
   stable name (array cells, call results). *)
let rec sym (e : expression) =
  match e.pexp_desc with
  | Pexp_ident lid -> Some (String.concat "." (Longident.flatten lid.txt))
  | Pexp_field (b, lid) -> (
      match sym b with
      | Some s -> (
          match List.rev (Longident.flatten lid.txt) with
          | f :: _ -> Some (s ^ "." ^ f)
          | [] -> None)
      | None -> None)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> sym e
  | _ -> None

(* All variable names bound by patterns anywhere inside [e] (params, lets,
   match arms).  Over-approximate on purpose: treating a sibling-branch
   binder as bound only ever silences a finding, never invents one. *)
let bound_vars (e : expression) =
  let bound = Hashtbl.create 16 in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var v -> Hashtbl.replace bound v.txt ()
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.expr it e;
  bound

let contains_mutex_lock (e : expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident lid
            when Checks.has_suffix ~suffix:[ "Mutex"; "lock" ] (Longident.flatten lid.txt)
            ->
              found := true
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* ---------------------------------------------------------------- R001 -- *)

type r001_ctx = {
  graph : Callgraph.t;
  fields : (string, (string, unit) Hashtbl.t) Hashtbl.t;
      (* unit path -> mutable field names declared in that unit.  Kept
         per-unit on purpose: classifying a record literal by a field name
         that is only [mutable] in some *other* unit's unrelated type would
         invent findings (observed with an immutable stats record sharing
         field names with a mutable one elsewhere). *)
  raw_memo : (string * string, string option) Hashtbl.t;
  findings : Finding.t list ref;
}

let fields_of ctx (u : Callgraph.unit_info) =
  match Hashtbl.find_opt ctx.fields u.path with
  | Some t -> t
  | None ->
      let t = Checks.mutable_field_names u.structure in
      Hashtbl.replace ctx.fields u.path t;
      t

(* Is this graph node raw module-toplevel mutable state?  Returns the
   allocator kind ("ref", "Hashtbl.create", ...).  Deferred allocations
   (functions) and safe wrappers classify as [None] inside [d001_hits]. *)
let raw_global ctx (n : Callgraph.node) =
  let k = Callgraph.key n in
  match Hashtbl.find_opt ctx.raw_memo k with
  | Some r -> r
  | None ->
      let r =
        if allow "R001" n.attrs then None
        else
          match Checks.d001_hits (fields_of ctx n.u) [] n.expr with
          | [] -> None
          | (_, what) :: _ -> Some what
      in
      Hashtbl.replace ctx.raw_memo k r;
      r

let r001_capture_message entry name kind =
  Printf.sprintf
    "closure passed to %s captures mutable local %s (%s): shared across domains \
     without synchronization; use Atomic/Mutex or return per-item results"
    entry name kind

let r001_global_message entry name kind path trail =
  let via =
    match trail with [] -> "" | t -> Printf.sprintf " via %s" (String.concat " -> " t)
  in
  Printf.sprintf
    "parallel task passed to %s reaches module-toplevel mutable state %s (%s, %s)%s: \
     unsynchronized cross-domain access; wrap in Atomic/Mutex/Domain.DLS"
    entry name kind path via

let r001_setfield_message entry field =
  Printf.sprintf
    "closure passed to %s writes mutable field %s of a captured value: \
     unsynchronized cross-domain write; guard with a Mutex or make it Atomic"
    entry field

let emit ctx ~id ~message loc =
  ctx.findings := Finding.of_location ~id ~message loc :: !(ctx.findings)

(* Transitive scan of a named function that escapes to another domain: flag
   references to raw toplevel state in any unit, follow calls.  [visited] is
   global — one finding per racy global reference site is enough no matter
   how many fan-out sites reach it. *)
let rec scan_escaping_node ctx ~visited ~entry ~trail (n : Callgraph.node) =
  let k = Callgraph.key n in
  if not (Hashtbl.mem visited k) then begin
    Hashtbl.replace visited k ();
    if (not (allow "R001" n.attrs)) && not (contains_mutex_lock n.expr) then begin
      let bound = bound_vars n.expr in
      let stack = ref [ Suppress.allow_ids n.attrs ] in
      let active id = List.exists (List.mem id) !stack in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              stack := Suppress.allow_ids e.pexp_attributes :: !stack;
              (match e.pexp_desc with
              | Pexp_ident lid ->
                  let path = Longident.flatten lid.txt in
                  let shadowed =
                    match path with [ x ] -> Hashtbl.mem bound x | _ -> false
                  in
                  if not shadowed then
                    List.iter
                      (fun (tgt : Callgraph.node) ->
                        match raw_global ctx tgt with
                        | Some kind ->
                            if not (active "R001") then
                              emit ctx ~id:"R001"
                                ~message:
                                  (r001_global_message entry tgt.name kind tgt.u.path
                                     (trail @ [ n.name ]))
                                e.pexp_loc
                        | None ->
                            scan_escaping_node ctx ~visited ~entry
                              ~trail:(trail @ [ n.name ]) tgt)
                      (Callgraph.resolve ctx.graph n.u path)
              | _ -> ());
              Ast_iterator.default_iterator.expr it e;
              stack := List.tl !stack)
        }
      in
      it.expr it n.expr
    end
  end

(* Raw mutable locals let-bound anywhere inside a node body, name -> kind.
   Scope is deliberately ignored: a name in this table that a closure uses
   without binding it itself must come from an enclosing scope, and the only
   enclosing definition the analysis knows of is the raw one.  (A closure
   shadowed by an enclosing *parameter* of the same name can false-positive;
   none occur here, and the attribute suppression is the escape hatch.) *)
let raw_locals_of mutable_fields (e : expression) =
  let locals = Hashtbl.create 8 in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun it (vb : value_binding) ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var v -> (
              match Checks.d001_hits mutable_fields [] vb.pvb_expr with
              | [] -> ()
              | (_, what) :: _ -> Hashtbl.replace locals v.txt what)
          | _ -> ());
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  it.expr it e;
  locals

(* Scan a literal closure passed to a fan-out point: the capture checks plus
   the transitive follow-up for every helper the closure calls. *)
let scan_closure ctx ~visited ~entry ~locals ~host (c : expression) =
  let bound = bound_vars c in
  let stack = ref [] in
  let active id = List.exists (List.mem id) !stack in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          stack := Suppress.allow_ids e.pexp_attributes :: !stack;
          (match e.pexp_desc with
          | Pexp_ident lid -> (
              let path = Longident.flatten lid.txt in
              match path with
              | [ x ] when Hashtbl.mem bound x -> ()
              | [ x ] when Hashtbl.mem locals x ->
                  if not (active "R001") then
                    emit ctx ~id:"R001"
                      ~message:(r001_capture_message entry x (Hashtbl.find locals x))
                      e.pexp_loc
              | _ ->
                  List.iter
                    (fun (tgt : Callgraph.node) ->
                      match raw_global ctx tgt with
                      | Some kind ->
                          if not (active "R001") then
                            emit ctx ~id:"R001"
                              ~message:(r001_global_message entry tgt.name kind tgt.u.path [])
                              e.pexp_loc
                      | None -> scan_escaping_node ctx ~visited ~entry ~trail:[] tgt)
                    (Callgraph.resolve ctx.graph host path))
          | Pexp_setfield (base, flid, _) -> (
              (* Any [x.f <- e] is a mutable-field write by construction; the
                 only question is whether [x] is the closure's own. *)
              match List.rev (Longident.flatten flid.txt) with
              | f :: _ ->
                  let base_bound =
                    match base.pexp_desc with
                    | Pexp_ident { txt = Longident.Lident x; _ } -> Hashtbl.mem bound x
                    | _ -> false
                  in
                  if (not base_bound) && not (active "R001") then
                    emit ctx ~id:"R001" ~message:(r001_setfield_message entry f)
                      e.pexp_loc
              | [] -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e;
          stack := List.tl !stack)
    }
  in
  it.expr it c

(* The function argument of a fan-out call: the first unlabeled argument
   ([Par.map ~domains f arr] and [Domain.spawn f] both fit). *)
let task_argument args =
  List.find_map
    (fun (label, (a : expression)) ->
      match label with Asttypes.Nolabel -> Some a | _ -> None)
    args

let rec is_closure (e : expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> is_closure e
  | _ -> false

let rec head_ident (e : expression) =
  match e.pexp_desc with
  | Pexp_ident lid -> Some (Longident.flatten lid.txt)
  | Pexp_apply (f, _) -> head_ident f
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> head_ident e
  | _ -> None

(* Walk one node's body looking for fan-out calls. *)
let check_r001_node ctx ~visited (n : Callgraph.node) =
  let locals = raw_locals_of (fields_of ctx n.u) n.expr in
  let stack = ref [ Suppress.allow_ids n.attrs ] in
  let active id = List.exists (List.mem id) !stack in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          stack := Suppress.allow_ids e.pexp_attributes :: !stack;
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args) -> (
              match
                par_entry_of_path
                  (Callgraph.expand ctx.graph n.u (Longident.flatten lid.txt))
              with
              | Some entry when not (active "R001") -> (
                  match task_argument args with
                  | Some task when is_closure task ->
                      scan_closure ctx ~visited ~entry ~locals ~host:n.u task
                  | Some task -> (
                      match head_ident task with
                      | Some path ->
                          List.iter
                            (fun (tgt : Callgraph.node) ->
                              scan_escaping_node ctx ~visited ~entry ~trail:[] tgt)
                            (Callgraph.resolve ctx.graph n.u path)
                      | None -> ())
                  | None -> ())
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e;
          stack := List.tl !stack);
    }
  in
  it.expr it n.expr

(* ---------------------------------------------------------------- R002 -- *)

type lock_site = { loc : Location.t; suppressed : bool; via : string option }

(* Direct lock symbols of a node body (for the interprocedural step). *)
let direct_locks (n : Callgraph.node) =
  let acc = ref [] in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args)
            when Checks.has_suffix ~suffix:[ "Mutex"; "lock" ] (Longident.flatten lid.txt)
            -> (
              match task_argument args with
              | Some m -> ( match sym m with Some s -> acc := s :: !acc | None -> ())
              | None -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it n.expr;
  List.sort_uniq String.compare !acc

let transitive_locks graph memo (n : Callgraph.node) =
  let seen = Hashtbl.create 8 in
  let acc = ref [] in
  let rec visit (n : Callgraph.node) =
    let k = Callgraph.key n in
    if not (Hashtbl.mem seen k) then begin
      Hashtbl.replace seen k ();
      let direct =
        match Hashtbl.find_opt memo k with
        | Some d -> d
        | None ->
            let d = direct_locks n in
            Hashtbl.replace memo k d;
            d
      in
      acc := direct @ !acc;
      List.iter visit (Callgraph.succs graph n)
    end
  in
  visit n;
  List.sort_uniq String.compare !acc

let r002_inversion_message b a (rev : lock_site) =
  let p = rev.loc.Location.loc_start in
  Printf.sprintf
    "Mutex.lock on %s while %s is held, but the opposite order occurs at %s:%d: \
     inconsistent acquisition order can deadlock; pick one global order"
    b a p.Lexing.pos_fname p.Lexing.pos_lnum

let r002_self_message a =
  Printf.sprintf
    "Mutex.lock on %s while %s is already held: stdlib mutexes are not reentrant — \
     this self-deadlocks"
    a a

let check_r002 graph =
  let pairs : (string * string, lock_site list) Hashtbl.t = Hashtbl.create 32 in
  let add_pair a b site =
    Hashtbl.replace pairs (a, b)
      (Option.value ~default:[] (Hashtbl.find_opt pairs (a, b)) @ [ site ])
  in
  let lock_memo = Hashtbl.create 64 in
  List.iter
    (fun (n : Callgraph.node) ->
      let held = ref [] in
      let stack = ref [ Suppress.allow_ids n.attrs ] in
      let active id = List.exists (List.mem id) !stack in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              stack := Suppress.allow_ids e.pexp_attributes :: !stack;
              (match e.pexp_desc with
              | Pexp_fun _ | Pexp_function _ ->
                  (* A closure body runs later, under whatever locks its
                     caller then holds — not the ones held where it is
                     defined. *)
                  let saved = !held in
                  held := [];
                  Ast_iterator.default_iterator.expr it e;
                  held := saved
              | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args) -> (
                  let path = Longident.flatten lid.txt in
                  (if Checks.has_suffix ~suffix:[ "Mutex"; "lock" ] path then
                     match Option.bind (task_argument args) sym with
                     | Some s ->
                         List.iter
                           (fun h ->
                             add_pair h s
                               { loc = e.pexp_loc; suppressed = active "R002"; via = None })
                           !held;
                         held := !held @ [ s ]
                     | None -> ()
                   else if Checks.has_suffix ~suffix:[ "Mutex"; "unlock" ] path then
                     match Option.bind (task_argument args) sym with
                     | Some s -> held := List.filter (fun h -> h <> s) !held
                     | None -> ()
                   else if !held <> [] then
                     List.iter
                       (fun (tgt : Callgraph.node) ->
                         List.iter
                           (fun l ->
                             List.iter
                               (fun h ->
                                 add_pair h l
                                   {
                                     loc = e.pexp_loc;
                                     suppressed = active "R002";
                                     via = Some tgt.name;
                                   })
                               !held)
                           (transitive_locks graph lock_memo tgt))
                       (Callgraph.resolve graph n.u path));
                  Ast_iterator.default_iterator.expr it e)
              | _ -> Ast_iterator.default_iterator.expr it e);
              stack := List.tl !stack)
        }
      in
      it.expr it n.expr)
    (Callgraph.nodes graph);
  let first_site sites =
    List.sort
      (fun (a : lock_site) b ->
        let pa = a.loc.Location.loc_start and pb = b.loc.Location.loc_start in
        compare
          (pa.Lexing.pos_fname, pa.Lexing.pos_lnum, pa.Lexing.pos_cnum)
          (pb.Lexing.pos_fname, pb.Lexing.pos_lnum, pb.Lexing.pos_cnum))
      sites
    |> List.hd
  in
  Hashtbl.fold
    (fun (a, b) sites acc ->
      if a = b then
        List.fold_left
          (fun acc (s : lock_site) ->
            if s.suppressed then acc
            else Finding.of_location ~id:"R002" ~message:(r002_self_message a) s.loc :: acc)
          acc sites
      else
        match Hashtbl.find_opt pairs (b, a) with
        | Some rev_sites ->
            let rev = first_site rev_sites in
            List.fold_left
              (fun acc (s : lock_site) ->
                if s.suppressed then acc
                else
                  Finding.of_location ~id:"R002" ~message:(r002_inversion_message b a rev)
                    s.loc
                  :: acc)
              acc sites
        | None -> acc)
    pairs []

(* ---------------------------------------------------------------- R003 -- *)

let r003_message target =
  Printf.sprintf
    "non-atomic read-modify-write: Atomic.set of %s computed from Atomic.get of \
     the same atomic loses concurrent updates; use Atomic.fetch_and_add/incr or \
     a compare_and_set retry loop"
    target

let contains_get_of (target : string) (e : expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args)
            when Checks.has_suffix ~suffix:[ "Atomic"; "get" ] (Longident.flatten lid.txt)
            -> (
              match Option.bind (task_argument args) sym with
              | Some s when s = target -> found := true
              | _ -> ())
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

let check_r003 structure =
  let findings = ref [] in
  let stack = ref [] in
  let active id = List.exists (List.mem id) !stack in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          stack := Suppress.allow_ids e.pexp_attributes :: !stack;
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args)
            when Checks.has_suffix ~suffix:[ "Atomic"; "set" ] (Longident.flatten lid.txt)
            -> (
              match args with
              | (Asttypes.Nolabel, target) :: (Asttypes.Nolabel, value) :: _ -> (
                  match sym target with
                  | Some s when contains_get_of s value ->
                      if not (active "R003") then
                        findings :=
                          Finding.of_location ~id:"R003" ~message:(r003_message s)
                            e.pexp_loc
                          :: !findings
                  | _ -> ())
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e;
          stack := List.tl !stack);
      value_binding =
        (fun it vb ->
          stack := Suppress.allow_ids vb.pvb_attributes :: !stack;
          Ast_iterator.default_iterator.value_binding it vb;
          stack := List.tl !stack);
    }
  in
  it.structure it structure;
  !findings

(* ------------------------------------------------------------- driver -- *)

let check graph =
  let ctx =
    { graph; fields = Hashtbl.create 16; raw_memo = Hashtbl.create 64; findings = ref [] }
  in
  let visited = Hashtbl.create 64 in
  List.iter (check_r001_node ctx ~visited) (Callgraph.nodes graph);
  let r002 = check_r002 graph in
  let r003 =
    List.concat_map
      (fun (u : Callgraph.unit_info) -> check_r003 u.structure)
      (Callgraph.units graph)
  in
  !(ctx.findings) @ r002 @ r003
