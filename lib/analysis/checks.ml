(* The check catalog, implemented over the untyped parsetree
   (compiler-libs [Parse] + [Ast_iterator]).  Every check has a stable ID;
   [catalog] below is the single source of truth for IDs, titles and the
   [--explain] text.

   Unit-local checks (this file): D001, D002, D004, H002 walk one
   compilation unit's parsetree; H001 is filesystem-level.  Whole-program
   checks: D003, N001, E001 and E002 (below) are queries over the
   interprocedural effect summaries computed by [Effects] on the
   cross-unit call graph built by [Callgraph]; the R-series race checks
   and N002 live in [Races] on the same summaries.

   Identifier references are matched on [Longident] paths after module-alias
   expansion through the graph — full name resolution (shadowing, functors,
   first-class modules) is out of scope, so a local [let ref = ...] can
   still false-positive and a functor-wrapped mutation can hide.  Neither
   occurs in this codebase; suppressions cover intentional exceptions. *)

open Parsetree

type config = {
  whatif_modules : string list;
      (* lowercase module basenames subject to D003 *)
  io_modules : string list;
      (* lowercase module basenames sanctioned to perform IO (E001) *)
  batch_roots : string list;
      (* binding names whose call closure E002 polices *)
}

let default_config =
  {
    whatif_modules = [ "benefit"; "optimizer" ];
    io_modules = [ "persist" ];
    batch_roots = [ "optimize_batch" ];
  }

let has_suffix = Effects.has_suffix
let allow id attrs = List.mem id (Suppress.allow_ids attrs)

(* ---------------------------------------------------------------- D001 -- *)

(* The D001 state classifiers ([mutable_field_names], [d001_hits], the
   allocator/wrapper tables) live in [Effects]: the effect pass and this
   check must agree on what counts as raw mutable state. *)

let d001_message what =
  Printf.sprintf
    "module-toplevel mutable state (%s): racy under multiple domains; wrap in \
     Atomic/Domain.DLS/Mutex/Lazy or allocate per instance"
    what

(* Walk only module-toplevel bindings (recursing into nested [module M =
   struct .. end]); allocation inside a function body is per-call and fine. *)
let check_d001 structure =
  let mutable_fields = Effects.mutable_field_names structure in
  let findings = ref [] in
  let emit (loc, what) =
    findings := Finding.of_location ~id:"D001" ~message:(d001_message what) loc :: !findings
  in
  let rec items stack =
    List.iter (fun (item : structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : value_binding) ->
                if not (allow "D001" vb.pvb_attributes) then
                  List.iter emit (Effects.d001_hits mutable_fields [] vb.pvb_expr))
              vbs
        | Pstr_module mb ->
            if not (allow "D001" mb.pmb_attributes) then module_expr mb.pmb_expr
        | Pstr_recmodule mbs ->
            List.iter
              (fun (mb : module_binding) ->
                if not (allow "D001" mb.pmb_attributes) then module_expr mb.pmb_expr)
              mbs
        | Pstr_include incl -> module_expr incl.pincl_mod
        | _ -> ())
      stack
  and module_expr me =
    match me.pmod_desc with
    | Pmod_structure s -> items s
    | Pmod_constraint (me, _) -> module_expr me
    | _ -> ()
  in
  items structure;
  !findings

(* -------------------------------------------------- D002, D004 & H002 -- *)

let d002_message =
  "Sys.time measures process CPU time, not wall-clock; use Xia_obs.Obs.now_s \
   for elapsed time (or suppress for genuinely CPU-bound measurement)"

let d004_message =
  "Unix.gettimeofday in lib/ outside lib/obs/: read the clock through \
   Xia_obs.Obs.now_s so library timing shares one sanctioned time source \
   (or suppress for code that deliberately bypasses the obs layer)"

(* D004 applies to library code only: any path with a [lib] component that is
   not under the obs directory.  bin/, bench/ and test/ may read the clock
   directly — they are leaves, not instrumented library surface. *)
let d004_applies filename =
  let components = String.split_on_char '/' filename in
  List.mem "lib" components && not (List.mem "obs" components)

let h002_message what =
  Printf.sprintf "%s without a (* lint: reason *) note explaining why it cannot happen" what

let check_exprs ~notes ~d004 structure =
  let findings = ref [] in
  let stack = ref [] in
  let active id = List.exists (List.mem id) !stack in
  let check (e : expression) =
    match e.pexp_desc with
    | Pexp_ident lid when has_suffix ~suffix:[ "Sys"; "time" ] (Longident.flatten lid.txt)
      ->
        if not (active "D002") then
          findings :=
            Finding.of_location ~id:"D002" ~message:d002_message e.pexp_loc :: !findings
    | Pexp_ident lid
      when d004
           && has_suffix ~suffix:[ "Unix"; "gettimeofday" ] (Longident.flatten lid.txt)
      ->
        if not (active "D004") then
          findings :=
            Finding.of_location ~id:"D004" ~message:d004_message e.pexp_loc :: !findings
    | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, _)
      when List.equal String.equal (Longident.flatten lid.txt) [ "failwith" ]
           || List.equal String.equal (Longident.flatten lid.txt) [ "Stdlib"; "failwith" ]
      ->
        let line = e.pexp_loc.Location.loc_start.Lexing.pos_lnum in
        if not (active "H002") && not (Suppress.has_lint_note notes ~line) then
          findings :=
            Finding.of_location ~id:"H002" ~message:(h002_message "failwith") e.pexp_loc
            :: !findings
    | Pexp_assert
        { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ } ->
        let line = e.pexp_loc.Location.loc_start.Lexing.pos_lnum in
        if not (active "H002") && not (Suppress.has_lint_note notes ~line) then
          findings :=
            Finding.of_location ~id:"H002" ~message:(h002_message "assert false")
              e.pexp_loc
            :: !findings
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          stack := Suppress.allow_ids e.pexp_attributes :: !stack;
          check e;
          Ast_iterator.default_iterator.expr it e;
          stack := List.tl !stack);
      value_binding =
        (fun it vb ->
          stack := Suppress.allow_ids vb.pvb_attributes :: !stack;
          Ast_iterator.default_iterator.value_binding it vb;
          stack := List.tl !stack);
    }
  in
  it.structure it structure;
  !findings

(* ---------------------------------------------------------------- D003 -- *)

(* Whole-program D003: a catalog/store mutator site — in any unit — fires
   when some binding of a what-if module carries it in its effect summary,
   i.e. can reach it through the cross-unit call graph.  [Effects] matches
   mutator paths after alias expansion ([Catalog.runstats],
   [Xia_index.Catalog.runstats], or any local alias of either), so the
   check polices the catalog/store API boundary; mutation smuggled through
   an unqualified internal helper of the mutated module itself is out of
   reach (DESIGN.md §5f).  The reachable-entries list in the message names
   every binding whose summary contains the site ([mutation_entries], the
   pass's reverse index — the site's host included), qualified with the
   unit module name when it lives in another unit. *)
let check_d003_program ~config eff graph =
  let is_whatif (u : Callgraph.unit_info) = List.mem u.basename config.whatif_modules in
  List.concat_map
    (fun (n : Callgraph.node) ->
      List.filter_map
        (fun (s : Effects.site) ->
          let hosts = Effects.mutation_entries eff s.s_loc in
          if not (List.exists (fun (r : Callgraph.node) -> is_whatif r.u) hosts) then
            None
          else
            let entries =
              List.map
                (fun (r : Callgraph.node) ->
                  if String.equal r.u.path n.u.path then r.name
                  else r.u.modname ^ "." ^ r.name)
                hosts
              |> List.sort String.compare
            in
            let message =
              Printf.sprintf
                "catalog/store mutation %s on a what-if evaluation path (in %s, \
                 reachable from: %s); what-if evaluation must not mutate shared \
                 state — pass ?virtual_config instead"
                s.s_what n.name (String.concat ", " entries)
            in
            Some (Finding.of_location ~id:"D003" ~message s.s_loc))
        (Effects.local_mutations eff n))
    (Callgraph.nodes graph)

(* --------------------------------------------------------- N001 & E-series -- *)

let in_lib path = List.mem "lib" (String.split_on_char '/' path)
let in_dir d path = List.mem d (String.split_on_char '/' path)

let n001_message what =
  Printf.sprintf
    "%s builds a list in hash iteration order with no canonicalizing sort in \
     the same binding; the unspecified order escapes into the result — sort \
     it (List.sort) before it leaves the function"
    what

(* N001: an order-dependent fold in library code whose literal closure
   builds a list and whose binding never sorts — the iteration order leaks
   into a value the advise path may return or cache.  Library-scoped: bin/
   and bench/ print for humans and may keep hash order. *)
let check_n001_program eff graph =
  List.concat_map
    (fun (n : Callgraph.node) ->
      if not (in_lib n.u.path) then []
      else
        List.filter_map
          (fun (s : Effects.site) ->
            if s.s_suppressed then None
            else
              Some (Finding.of_location ~id:"N001" ~message:(n001_message s.s_what) s.s_loc))
          (Effects.local_order eff n))
    (Callgraph.nodes graph)

let e001_message what =
  Printf.sprintf
    "IO effect (%s) in library code outside lib/obs and the persistence \
     boundary: route output through Xia_obs.Obs and file traffic through the \
     sanctioned IO modules, or lift the channel to the caller"
    what

(* E001: IO in lib/ outside the sanctioned surfaces.  lib/obs owns logging,
   lib/analysis is the linter itself (it reads the source tree it checks),
   and [config.io_modules] names the persistence boundary. *)
let check_e001_program ~config eff graph =
  List.concat_map
    (fun (n : Callgraph.node) ->
      if
        (not (in_lib n.u.path))
        || in_dir "obs" n.u.path
        || in_dir "analysis" n.u.path
        || List.mem n.u.basename config.io_modules
      then []
      else
        List.filter_map
          (fun (s : Effects.site) ->
            if s.s_suppressed then None
            else
              Some (Finding.of_location ~id:"E001" ~message:(e001_message s.s_what) s.s_loc))
          (Effects.local_io eff n))
    (Callgraph.nodes graph)

let e002_message what root via =
  Printf.sprintf
    "shared-state write (%s) reachable from %s's virtual-config path%s; \
     what-if evaluation beyond the sanctioned warm_stats/table_env sites \
     must stay effect-free — thread state through arguments or move the \
     write outside the batch"
    what root
    (match via with [] -> "" | _ -> " via " ^ String.concat " -> " via)

(* E002: walk the call closure of every [config.batch_roots] binding (the
   virtual-config what-if path) and flag raw shared-state writes.  Cuts:
   [warm_stats]/[table_env] are the sanctioned synchronization points,
   lib/obs and the Par runtime are instrumentation/scheduling, and a
   lock-disciplined callee (Mutex body or [@lint.allow "R001"]) manages its
   own state.  Atomic writes never produce witnesses in the first place. *)
let check_e002_program ~config eff graph =
  let sanctioned (m : Callgraph.node) =
    List.mem m.name [ "warm_stats"; "table_env" ]
    || in_dir "obs" m.u.path
    || String.equal m.u.basename "par"
    || Effects.lock_disciplined eff m
  in
  let emitted = Hashtbl.create 16 in
  let findings = ref [] in
  let emit root via (s : Effects.site) =
    let p = s.s_loc.Location.loc_start in
    let dedup = (p.Lexing.pos_fname, p.Lexing.pos_lnum, p.Lexing.pos_cnum) in
    if (not s.s_suppressed) && not (Hashtbl.mem emitted dedup) then begin
      Hashtbl.replace emitted dedup ();
      findings :=
        Finding.of_location ~id:"E002" ~message:(e002_message s.s_what root via) s.s_loc
        :: !findings
    end
  in
  let roots =
    List.filter
      (fun (n : Callgraph.node) -> List.mem n.name config.batch_roots)
      (Callgraph.nodes graph)
  in
  List.iter
    (fun (root : Callgraph.node) ->
      let seen = Hashtbl.create 64 in
      let rec visit via (m : Callgraph.node) =
        let k = Callgraph.key m in
        if not (Hashtbl.mem seen k) then begin
          Hashtbl.replace seen k ();
          List.iter (emit root.name via) (Effects.local_writes eff m);
          let via' = via @ [ m.name ] in
          List.iter
            (fun (c : Callgraph.node) -> if not (sanctioned c) then visit via' c)
            (Effects.calls eff m)
        end
      in
      visit [] root)
    roots;
  List.rev !findings

(* ---------------------------------------------------------------- H001 -- *)

let module_of_path path = String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* Executable directories: their modules are program entry points with no
   importable surface, so demanding an .mli is noise.  Matched on any path
   component, so `bench/main.ml` and `foo/bin/tool.ml` are both exempt. *)
let h001_exempt_dirs = [ "bin"; "bench" ]

let h001_exempt path =
  List.exists (fun d -> List.mem d h001_exempt_dirs) (String.split_on_char '/' path)

let missing_mli ~mls ~mlis =
  let have = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace have (Filename.remove_extension p) ()) mlis;
  List.filter_map
    (fun ml ->
      if h001_exempt ml || Hashtbl.mem have (Filename.remove_extension ml) then None
      else
        Some
          (Finding.make ~file:ml ~line:1 ~col:0 ~id:"H001"
             ~message:
               (Printf.sprintf
                  "module %s has no interface: add %si to state the public \
                   surface" (module_of_path ml) ml)))
    mls

(* ------------------------------------------------------------- driver -- *)

(* Unit-local parsetree checks for one compilation unit.  [source] is the
   raw text (for lint-note comments); H001 is filesystem-level and lives in
   [missing_mli]; D003 and the R-series are whole-program
   ([check_d003_program], [Races.check]). *)
let check_structure ~filename ~source structure =
  let notes = Suppress.lint_note_lines source in
  List.sort Finding.compare
    (check_d001 structure @ check_exprs ~notes ~d004:(d004_applies filename) structure)

(* ------------------------------------------------------ check catalog -- *)

type check_info = {
  id : string;
  title : string;   (* one line, also emitted in the --json "checks" array *)
  detail : string;  (* the --explain ID text *)
}

let catalog =
  [
    {
      id = "D001";
      title = "module-toplevel mutable state";
      detail =
        "A module-toplevel binding that evaluates to raw mutable state (ref, \
         Hashtbl, Buffer, Queue, array, record literal with mutable fields, or \
         a closure capturing one) is shared by every domain that touches the \
         module.  Wrap it in Atomic, Domain.DLS, Mutex or Lazy, or allocate it \
         per instance.";
    };
    {
      id = "D002";
      title = "Sys.time used for timing";
      detail =
        "Sys.time measures process CPU time, which diverges from wall-clock the \
         moment work runs on several domains.  Use Xia_obs.Obs.now_s, or \
         suppress for genuinely CPU-bound measurement.";
    };
    {
      id = "D003";
      title = "catalog/store mutation on a what-if path";
      detail =
        "A catalog or document-store mutator (Catalog.create_index, \
         Doc_store.insert, ...) is transitively reachable — across compilation \
         units, through the cross-module call graph — from a binding of a \
         what-if evaluation module (benefit, optimizer).  What-if evaluation \
         must never mutate shared state: pass ?virtual_config instead.  \
         Catalog.warm_stats is the sanctioned pre-fan-out synchronization \
         point and deliberately exempt.";
    };
    {
      id = "D004";
      title = "wall-clock read outside lib/obs";
      detail =
        "Unix.gettimeofday in lib/ code outside lib/obs/: library timing must \
         go through Xia_obs.Obs.now_s so all instrumentation shares one \
         sanctioned clock.  bin/, bench/ and test/ may read the clock \
         directly.";
    };
    {
      id = "E001";
      title = "IO effect in library code";
      detail =
        "The effect pass found an unambiguous IO operation (printf, print_*, \
         output_*, open_*, In_channel/Out_channel, Sys file ops) in lib/ code \
         outside lib/obs, lib/analysis and the sanctioned persistence modules.  \
         Library code reports through Xia_obs.Obs and performs file traffic \
         behind the persistence boundary; everything else lifts the channel to \
         the bin/ or bench/ caller.";
    };
    {
      id = "E002";
      title = "shared-state write on the virtual-config path";
      detail =
        "A write to shared mutable state (ref assignment, container mutator, \
         mutable-field write) is transitively reachable from \
         Optimizer.optimize_batch's virtual-config what-if path.  The batch \
         contract allows exactly two synchronization points — Catalog.warm_stats \
         before the fan-out and the memoized table_env — plus Atomic/Mutex-\
         disciplined state; anything else can corrupt concurrent what-if \
         evaluations.  Thread state through arguments instead.";
    };
    {
      id = "H001";
      title = "module without an .mli interface";
      detail =
        "Every library module states its public surface in an .mli.  bin/ and \
         bench/ executable directories are exempt: entry points have no \
         importable surface.";
    };
    {
      id = "H002";
      title = "failwith/assert false without a lint note";
      detail =
        "A failwith or assert false without a (* lint: reason *) note on the \
         same or previous line.  The note documents why the case cannot \
         happen; without it the dead branch is indistinguishable from an \
         unhandled one.";
    };
    {
      id = "L001";
      title = "blocking call while a mutex is held";
      detail =
        "A call with a blocking effect — PerformsIO per the interprocedural \
         effect summaries, or an Optimizer.optimize* entry (transitively) — \
         is reachable while a mutex is statically held on some path of the \
         flow-sensitive CFG.  IO and optimizer latency under a lock \
         serializes every domain contending on it.  Move the call outside \
         the critical section, or suppress at the call site when the \
         blocking work is the critical section's purpose.";
    };
    {
      id = "L002";
      title = "mutex not released on an exceptional path";
      detail =
        "A Mutex.lock has an exceptional path to the function exit — raise, \
         failwith, assert, or a call that may raise — on which no \
         Mutex.unlock runs: the next contender deadlocks.  Wrap the \
         critical section in Fun.protect ~finally:(fun () -> Mutex.unlock \
         m).  The analysis is flow-sensitive: a body made only of \
         known-total primitives (Mutex/Condition/Atomic operations, !/:=, \
         comparisons, non-dividing arithmetic) has no exceptional edge and \
         needs no finalizer; any container operation or unresolved call is \
         assumed to raise.";
    };
    {
      id = "N001";
      title = "hash iteration order escapes into a result";
      detail =
        "A Hashtbl/Queue fold or iter in lib/ whose closure builds a list, in a \
         binding that never sorts: the container's unspecified iteration order \
         escapes into a value the advise path may return or cache, so the same \
         workload can produce differently-ordered recommendations across runs.  \
         Sort the result (List.sort) before it leaves the function, or suppress \
         when a later total-order sort canonicalizes it.";
    };
    {
      id = "N002";
      title = "order-fragile parallel float reduction";
      detail =
        "A parallel fan-out combines float work without the sanctioned \
         deterministic reduction: either the task body accumulates into shared \
         state (t := !t +. x) — racy and order-varying — or the fan-out's \
         results are folded with bare float arithmetic whose grouping depends \
         on scheduling history.  Use Par.sum_list (fixed sequential combine \
         over per-task results), which keeps the sum bit-for-bit reproducible.";
    };
    {
      id = "R001";
      title = "mutable state reachable from a parallel task";
      detail =
        "A closure or named function passed to Par.map/Par.map_list/Par.iter/\
         Domain.spawn captures a raw mutable local, writes a mutable record \
         field of a captured value, or — transitively, through helpers in any \
         unit — references raw module-toplevel mutable state.  Multiple \
         domains then race on the same memory.  Wrap the state in \
         Atomic/Mutex/Domain.DLS (or Interner.Cache for memo tables), or \
         return per-item results and combine after the join.  A function \
         whose body takes a Mutex.lock is assumed lock-disciplined and \
         skipped.";
    };
    {
      id = "R002";
      title = "inconsistent mutex acquisition order";
      detail =
        "Mutex.lock while another mutex is statically held, when the opposite \
         nesting order occurs elsewhere (directly or through callees resolved \
         via the call graph): two domains taking the locks in opposite orders \
         can deadlock.  Mutexes are identified by the symbolic path of the \
         lock expression (pool.lock, shard.lock); re-locking the same symbol \
         is reported as a self-deadlock because stdlib mutexes are not \
         reentrant.";
    };
    {
      id = "R003";
      title = "non-atomic read-modify-write on an Atomic.t";
      detail =
        "Atomic.set x (... Atomic.get x ...): the window between the get and \
         the set loses concurrent updates.  Use Atomic.fetch_and_add, \
         Atomic.incr, or a compare_and_set retry loop.";
    };
    {
      id = "X001";
      title = "save/restore skipped on an exceptional path";
      detail =
        "A saved value — let old = Atomic.get x, let old = !r, or let old = \
         Catalog.virtual_indexes c — with a syntactically matching restore \
         (Atomic.set x old / r := old / Catalog.set_virtual_indexes c old) \
         later in the same scope is not restored on some exceptional path, \
         leaking stale state to the next caller.  Perform the restore in a \
         Fun.protect ~finally.  Bindings with no matching restore anywhere \
         create no obligation: reading state without restoring it is not \
         the save/restore idiom.";
    };
    {
      id = "X002";
      title = "unlock without a matching lock on this path";
      detail =
        "Mutex.unlock runs at a point where the mutex is statically not \
         held: a double unlock, or an unlock only some branch pairs with a \
         lock.  Stdlib mutexes raise Sys_error on releasing an unlocked \
         mutex.  Unlocks at an unknown entry state (release helpers called \
         with the lock held) stay silent.";
    };
  ]

let find_check id = List.find_opt (fun c -> String.equal c.id id) catalog

(* Stable check-filter used by xia_lint's --only/--skip: intersect the
   requested IDs with the catalog, preserving catalog order; unknown IDs
   are an error (a typo must not silently run everything). *)
let select ~only ~skip =
  let known = List.map (fun c -> c.id) catalog in
  let unknown =
    List.filter (fun id -> not (List.mem id known)) (only @ skip)
  in
  match unknown with
  | _ :: _ ->
      Error
        (Printf.sprintf "unknown check id%s: %s (known: %s)"
           (if List.length unknown > 1 then "s" else "")
           (String.concat ", " unknown)
           (String.concat ", " known))
  | [] ->
      Ok
        (List.filter
           (fun id ->
             (only = [] || List.mem id only) && not (List.mem id skip))
           known)
