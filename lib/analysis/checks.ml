(* The check catalog, implemented over the untyped parsetree
   (compiler-libs [Parse] + [Ast_iterator]).  Every check has a stable ID;
   [catalog] below is the single source of truth for IDs, titles and the
   [--explain] text.

   Unit-local checks (this file): D001, D002, D004, H002 walk one
   compilation unit's parsetree; H001 is filesystem-level.  Whole-program
   checks: D003 (below) runs interprocedural reachability over the
   cross-unit call graph built by [Callgraph]; the R-series race checks
   live in [Races] on the same graph.

   Identifier references are matched on [Longident] paths after module-alias
   expansion through the graph — full name resolution (shadowing, functors,
   first-class modules) is out of scope, so a local [let ref = ...] can
   still false-positive and a functor-wrapped mutation can hide.  Neither
   occurs in this codebase; suppressions cover intentional exceptions. *)

open Parsetree

type config = {
  whatif_modules : string list;
      (* lowercase module basenames subject to D003 *)
}

let default_config = { whatif_modules = [ "benefit"; "optimizer" ] }

let has_suffix ~suffix path =
  let rec strip k l = if k <= 0 then Some l else match l with [] -> None | _ :: t -> strip (k - 1) t in
  match strip (List.length path - List.length suffix) path with
  | Some tail -> List.equal String.equal tail suffix
  | None -> false

let allow id attrs = List.mem id (Suppress.allow_ids attrs)

(* ---------------------------------------------------------------- D001 -- *)

(* Field names declared [mutable] anywhere in this compilation unit.  The
   parsetree carries no type information, so this is the file-local
   approximation of "record literal with mutable fields". *)
let mutable_field_names structure =
  let fields = Hashtbl.create 16 in
  let type_declaration _it (td : type_declaration) =
    (match td.ptype_kind with
    | Ptype_record labels ->
        List.iter
          (fun (ld : label_declaration) ->
            if ld.pld_mutable = Asttypes.Mutable then
              Hashtbl.replace fields ld.pld_name.txt ())
          labels
    | _ -> ());
    ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          type_declaration it td;
          Ast_iterator.default_iterator.type_declaration it td);
    }
  in
  it.structure it structure;
  fields

(* A binding whose right-hand side evaluates to one of these at module
   initialization is shared mutable state. *)
let flagged_allocators =
  [
    ([ "Hashtbl"; "create" ], "Hashtbl.create");
    ([ "Buffer"; "create" ], "Buffer.create");
    ([ "Queue"; "create" ], "Queue.create");
    ([ "Stack"; "create" ], "Stack.create");
    ([ "Weak"; "create" ], "Weak.create");
    ([ "Dynarray"; "create" ], "Dynarray.create");
    ([ "Bytes"; "create" ], "Bytes.create");
    ([ "Bytes"; "make" ], "Bytes.make");
    ([ "Array"; "make" ], "Array.make");
    ([ "Array"; "create_float" ], "Array.create_float");
    ([ "Array"; "init" ], "Array.init");
    ([ "Array"; "make_matrix" ], "Array.make_matrix");
  ]

(* Wrappers that make toplevel state domain-safe (or defer it): their
   arguments may allocate freely. *)
let safe_wrappers =
  [
    [ "Atomic"; "make" ];
    [ "DLS"; "new_key" ];
    [ "Mutex"; "create" ];
    [ "Condition"; "create" ];
    [ "Semaphore"; "Counting"; "make" ];
    [ "Semaphore"; "Binary"; "make" ];
    [ "Lazy"; "from_fun" ];
    [ "Lazy"; "from_val" ];
  ]

let d001_message what =
  Printf.sprintf
    "module-toplevel mutable state (%s): racy under multiple domains; wrap in \
     Atomic/Domain.DLS/Mutex/Lazy or allocate per instance"
    what

(* Does this expression evaluate to a function?  Walks through the wrappers
   a closure definition commonly sits under. *)
let rec returns_closure (e : expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e)
  | Pexp_letmodule (_, _, e) | Pexp_letexception (_, e) | Pexp_let (_, _, e)
  | Pexp_sequence (_, e) ->
      returns_closure e
  | Pexp_ifthenelse (_, t, Some f) -> returns_closure t || returns_closure f
  | _ -> false

(* Classify the right-hand side of a module-toplevel binding.  Descends
   through wrappers that merely surround the initializer and through data
   constructors whose payload would still be reachable shared state. *)
let rec d001_hits mutable_fields acc (e : expression) =
  if allow "D001" e.pexp_attributes then acc
  else
    match e.pexp_desc with
    (* Deferred allocation: a fresh value per call, not shared state. *)
    | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ | Pexp_lazy _ -> acc
    | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e)
    | Pexp_letmodule (_, _, e) | Pexp_letexception (_, e) ->
        d001_hits mutable_fields acc e
    | Pexp_let (_, vbs, body) ->
        (* A memoizing closure — [let memo = ref None in fun () -> ...] — is
           toplevel shared state with extra steps: the closure outlives the
           binding and every caller shares the captured allocation.  Scan the
           let-in bindings whenever the whole expression evaluates to a
           function; a let-in whose body is a plain value ran once at init
           and its locals are unreachable afterwards. *)
        let acc =
          if returns_closure body then
            List.fold_left
              (fun acc (vb : value_binding) ->
                if allow "D001" vb.pvb_attributes then acc
                else d001_hits mutable_fields acc vb.pvb_expr)
              acc vbs
          else acc
        in
        d001_hits mutable_fields acc body
    | Pexp_sequence (_, e2) -> d001_hits mutable_fields acc e2
    | Pexp_ifthenelse (_, t, f) ->
        let acc = d001_hits mutable_fields acc t in
        Option.fold ~none:acc ~some:(d001_hits mutable_fields acc) f
    | Pexp_tuple es -> List.fold_left (d001_hits mutable_fields) acc es
    | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) ->
        d001_hits mutable_fields acc e
    | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, _) ->
        let path = Longident.flatten lid.txt in
        if List.exists (fun suffix -> has_suffix ~suffix path) safe_wrappers then acc
        else if List.equal String.equal path [ "ref" ]
                || List.equal String.equal path [ "Stdlib"; "ref" ]
        then (e.pexp_loc, "ref") :: acc
        else (
          match
            List.find_opt (fun (suffix, _) -> has_suffix ~suffix path) flagged_allocators
          with
          | Some (_, name) -> (e.pexp_loc, name) :: acc
          | None -> acc)
    | Pexp_record (fields, base) ->
        let mutable_labels =
          List.filter_map
            (fun ((lid : Longident.t Location.loc), _) ->
              match List.rev (Longident.flatten lid.txt) with
              | last :: _ when Hashtbl.mem mutable_fields last -> Some last
              | _ -> None)
            fields
        in
        if mutable_labels <> [] then
          ( e.pexp_loc,
            Printf.sprintf "record literal with mutable field %s"
              (String.concat ", " mutable_labels) )
          :: acc
        else
          let acc =
            List.fold_left (fun acc (_, fe) -> d001_hits mutable_fields acc fe) acc fields
          in
          Option.fold ~none:acc ~some:(d001_hits mutable_fields acc) base
    | Pexp_array _ -> (e.pexp_loc, "array literal") :: acc
    | _ -> acc

(* Walk only module-toplevel bindings (recursing into nested [module M =
   struct .. end]); allocation inside a function body is per-call and fine. *)
let check_d001 structure =
  let mutable_fields = mutable_field_names structure in
  let findings = ref [] in
  let emit (loc, what) =
    findings := Finding.of_location ~id:"D001" ~message:(d001_message what) loc :: !findings
  in
  let rec items stack =
    List.iter (fun (item : structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : value_binding) ->
                if not (allow "D001" vb.pvb_attributes) then
                  List.iter emit (d001_hits mutable_fields [] vb.pvb_expr))
              vbs
        | Pstr_module mb ->
            if not (allow "D001" mb.pmb_attributes) then module_expr mb.pmb_expr
        | Pstr_recmodule mbs ->
            List.iter
              (fun (mb : module_binding) ->
                if not (allow "D001" mb.pmb_attributes) then module_expr mb.pmb_expr)
              mbs
        | Pstr_include incl -> module_expr incl.pincl_mod
        | _ -> ())
      stack
  and module_expr me =
    match me.pmod_desc with
    | Pmod_structure s -> items s
    | Pmod_constraint (me, _) -> module_expr me
    | _ -> ()
  in
  items structure;
  !findings

(* -------------------------------------------------- D002, D004 & H002 -- *)

let d002_message =
  "Sys.time measures process CPU time, not wall-clock; use Xia_obs.Obs.now_s \
   for elapsed time (or suppress for genuinely CPU-bound measurement)"

let d004_message =
  "Unix.gettimeofday in lib/ outside lib/obs/: read the clock through \
   Xia_obs.Obs.now_s so library timing shares one sanctioned time source \
   (or suppress for code that deliberately bypasses the obs layer)"

(* D004 applies to library code only: any path with a [lib] component that is
   not under the obs directory.  bin/, bench/ and test/ may read the clock
   directly — they are leaves, not instrumented library surface. *)
let d004_applies filename =
  let components = String.split_on_char '/' filename in
  List.mem "lib" components && not (List.mem "obs" components)

let h002_message what =
  Printf.sprintf "%s without a (* lint: reason *) note explaining why it cannot happen" what

let check_exprs ~notes ~d004 structure =
  let findings = ref [] in
  let stack = ref [] in
  let active id = List.exists (List.mem id) !stack in
  let check (e : expression) =
    match e.pexp_desc with
    | Pexp_ident lid when has_suffix ~suffix:[ "Sys"; "time" ] (Longident.flatten lid.txt)
      ->
        if not (active "D002") then
          findings :=
            Finding.of_location ~id:"D002" ~message:d002_message e.pexp_loc :: !findings
    | Pexp_ident lid
      when d004
           && has_suffix ~suffix:[ "Unix"; "gettimeofday" ] (Longident.flatten lid.txt)
      ->
        if not (active "D004") then
          findings :=
            Finding.of_location ~id:"D004" ~message:d004_message e.pexp_loc :: !findings
    | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, _)
      when List.equal String.equal (Longident.flatten lid.txt) [ "failwith" ]
           || List.equal String.equal (Longident.flatten lid.txt) [ "Stdlib"; "failwith" ]
      ->
        let line = e.pexp_loc.Location.loc_start.Lexing.pos_lnum in
        if not (active "H002") && not (Suppress.has_lint_note notes ~line) then
          findings :=
            Finding.of_location ~id:"H002" ~message:(h002_message "failwith") e.pexp_loc
            :: !findings
    | Pexp_assert
        { pexp_desc = Pexp_construct ({ txt = Longident.Lident "false"; _ }, None); _ } ->
        let line = e.pexp_loc.Location.loc_start.Lexing.pos_lnum in
        if not (active "H002") && not (Suppress.has_lint_note notes ~line) then
          findings :=
            Finding.of_location ~id:"H002" ~message:(h002_message "assert false")
              e.pexp_loc
            :: !findings
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          stack := Suppress.allow_ids e.pexp_attributes :: !stack;
          check e;
          Ast_iterator.default_iterator.expr it e;
          stack := List.tl !stack);
      value_binding =
        (fun it vb ->
          stack := Suppress.allow_ids vb.pvb_attributes :: !stack;
          Ast_iterator.default_iterator.value_binding it vb;
          stack := List.tl !stack);
    }
  in
  it.structure it structure;
  !findings

(* ---------------------------------------------------------------- D003 -- *)

(* Mutation entry points of the shared catalog/store API.  [warm_stats] is
   deliberately absent: it is the sanctioned synchronization point what-if
   entry code calls *before* fanning out (PR 1's contract). *)
let catalog_mutators =
  [
    "add_table"; "create_index"; "drop_index"; "drop_all_indexes";
    "refresh_indexes"; "set_virtual_indexes"; "clear_virtual_indexes";
    "runstats"; "runstats_all";
  ]

let store_mutators = [ "insert"; "delete"; "replace" ]

let mutator_of_path path =
  match List.rev path with
  | f :: m :: _ when String.equal m "Catalog" && List.mem f catalog_mutators ->
      Some ("Catalog." ^ f)
  | f :: m :: _ when String.equal m "Doc_store" && List.mem f store_mutators ->
      Some ("Doc_store." ^ f)
  | _ -> None

(* Whole-program D003: a mutator call site — in any unit — fires when some
   binding of a what-if module can reach it through the cross-unit call
   graph.  Mutator paths are matched after alias expansion
   ([Catalog.runstats], [Xia_index.Catalog.runstats], or any local alias of
   either), so the check polices the catalog/store API boundary; mutation
   smuggled through an unqualified internal helper of the mutated module
   itself is out of reach (DESIGN.md §5f).  The reachable-entries list in
   the message names every binding the site is reachable from, qualified
   with the unit module name when it lives in another unit. *)
let check_d003_program ~config graph =
  let is_whatif (u : Callgraph.unit_info) = List.mem u.basename config.whatif_modules in
  List.concat_map
    (fun (n : Callgraph.node) ->
      let sites = ref [] in
      let stack = ref [ Suppress.allow_ids n.attrs ] in
      let active id = List.exists (List.mem id) !stack in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              stack := Suppress.allow_ids e.pexp_attributes :: !stack;
              (match e.pexp_desc with
              | Pexp_ident lid -> (
                  match
                    mutator_of_path (Callgraph.expand graph n.u (Longident.flatten lid.txt))
                  with
                  | Some m when not (active "D003") -> sites := (e.pexp_loc, m) :: !sites
                  | _ -> ())
              | _ -> ());
              Ast_iterator.default_iterator.expr it e;
              stack := List.tl !stack);
        }
      in
      it.expr it n.expr;
      match List.rev !sites with
      | [] -> []
      | sites ->
          let reaching = Callgraph.reaching graph n in
          if not (List.exists (fun (r : Callgraph.node) -> is_whatif r.u) reaching) then
            []
          else
            let entries =
              List.map
                (fun (r : Callgraph.node) ->
                  if String.equal r.u.path n.u.path then r.name
                  else r.u.modname ^ "." ^ r.name)
                reaching
              |> List.sort String.compare
            in
            List.map
              (fun (loc, mutator) ->
                let message =
                  Printf.sprintf
                    "catalog/store mutation %s on a what-if evaluation path (in %s, \
                     reachable from: %s); what-if evaluation must not mutate shared \
                     state — pass ?virtual_config instead"
                    mutator n.name (String.concat ", " entries)
                in
                Finding.of_location ~id:"D003" ~message loc)
              sites)
    (Callgraph.nodes graph)

(* ---------------------------------------------------------------- H001 -- *)

let module_of_path path = String.capitalize_ascii (Filename.remove_extension (Filename.basename path))

(* Executable directories: their modules are program entry points with no
   importable surface, so demanding an .mli is noise.  Matched on any path
   component, so `bench/main.ml` and `foo/bin/tool.ml` are both exempt. *)
let h001_exempt_dirs = [ "bin"; "bench" ]

let h001_exempt path =
  List.exists (fun d -> List.mem d h001_exempt_dirs) (String.split_on_char '/' path)

let missing_mli ~mls ~mlis =
  let have = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace have (Filename.remove_extension p) ()) mlis;
  List.filter_map
    (fun ml ->
      if h001_exempt ml || Hashtbl.mem have (Filename.remove_extension ml) then None
      else
        Some
          (Finding.make ~file:ml ~line:1 ~col:0 ~id:"H001"
             ~message:
               (Printf.sprintf
                  "module %s has no interface: add %si to state the public \
                   surface" (module_of_path ml) ml)))
    mls

(* ------------------------------------------------------------- driver -- *)

(* Unit-local parsetree checks for one compilation unit.  [source] is the
   raw text (for lint-note comments); H001 is filesystem-level and lives in
   [missing_mli]; D003 and the R-series are whole-program
   ([check_d003_program], [Races.check]). *)
let check_structure ~filename ~source structure =
  let notes = Suppress.lint_note_lines source in
  List.sort Finding.compare
    (check_d001 structure @ check_exprs ~notes ~d004:(d004_applies filename) structure)

(* ------------------------------------------------------ check catalog -- *)

type check_info = {
  id : string;
  title : string;   (* one line, also emitted in the --json "checks" array *)
  detail : string;  (* the --explain ID text *)
}

let catalog =
  [
    {
      id = "D001";
      title = "module-toplevel mutable state";
      detail =
        "A module-toplevel binding that evaluates to raw mutable state (ref, \
         Hashtbl, Buffer, Queue, array, record literal with mutable fields, or \
         a closure capturing one) is shared by every domain that touches the \
         module.  Wrap it in Atomic, Domain.DLS, Mutex or Lazy, or allocate it \
         per instance.";
    };
    {
      id = "D002";
      title = "Sys.time used for timing";
      detail =
        "Sys.time measures process CPU time, which diverges from wall-clock the \
         moment work runs on several domains.  Use Xia_obs.Obs.now_s, or \
         suppress for genuinely CPU-bound measurement.";
    };
    {
      id = "D003";
      title = "catalog/store mutation on a what-if path";
      detail =
        "A catalog or document-store mutator (Catalog.create_index, \
         Doc_store.insert, ...) is transitively reachable — across compilation \
         units, through the cross-module call graph — from a binding of a \
         what-if evaluation module (benefit, optimizer).  What-if evaluation \
         must never mutate shared state: pass ?virtual_config instead.  \
         Catalog.warm_stats is the sanctioned pre-fan-out synchronization \
         point and deliberately exempt.";
    };
    {
      id = "D004";
      title = "wall-clock read outside lib/obs";
      detail =
        "Unix.gettimeofday in lib/ code outside lib/obs/: library timing must \
         go through Xia_obs.Obs.now_s so all instrumentation shares one \
         sanctioned clock.  bin/, bench/ and test/ may read the clock \
         directly.";
    };
    {
      id = "H001";
      title = "module without an .mli interface";
      detail =
        "Every library module states its public surface in an .mli.  bin/ and \
         bench/ executable directories are exempt: entry points have no \
         importable surface.";
    };
    {
      id = "H002";
      title = "failwith/assert false without a lint note";
      detail =
        "A failwith or assert false without a (* lint: reason *) note on the \
         same or previous line.  The note documents why the case cannot \
         happen; without it the dead branch is indistinguishable from an \
         unhandled one.";
    };
    {
      id = "R001";
      title = "mutable state reachable from a parallel task";
      detail =
        "A closure or named function passed to Par.map/Par.map_list/Par.iter/\
         Domain.spawn captures a raw mutable local, writes a mutable record \
         field of a captured value, or — transitively, through helpers in any \
         unit — references raw module-toplevel mutable state.  Multiple \
         domains then race on the same memory.  Wrap the state in \
         Atomic/Mutex/Domain.DLS (or Interner.Cache for memo tables), or \
         return per-item results and combine after the join.  A function \
         whose body takes a Mutex.lock is assumed lock-disciplined and \
         skipped.";
    };
    {
      id = "R002";
      title = "inconsistent mutex acquisition order";
      detail =
        "Mutex.lock while another mutex is statically held, when the opposite \
         nesting order occurs elsewhere (directly or through callees resolved \
         via the call graph): two domains taking the locks in opposite orders \
         can deadlock.  Mutexes are identified by the symbolic path of the \
         lock expression (pool.lock, shard.lock); re-locking the same symbol \
         is reported as a self-deadlock because stdlib mutexes are not \
         reentrant.";
    };
    {
      id = "R003";
      title = "non-atomic read-modify-write on an Atomic.t";
      detail =
        "Atomic.set x (... Atomic.get x ...): the window between the get and \
         the set loses concurrent updates.  Use Atomic.fetch_and_add, \
         Atomic.incr, or a compare_and_set retry loop.";
    };
  ]

let find_check id = List.find_opt (fun c -> String.equal c.id id) catalog
