(* Cross-compilation-unit call graph over the untyped parsetree.

   The linter sees [Longident] paths, not resolved values, so this module
   reconstructs just enough of OCaml's name resolution to connect toplevel
   bindings across units:

   - the dune library layout ([lib/index/dune] declaring [(name xia_index)]
     makes [Xia_index.Catalog] resolve to [lib/index/catalog.ml]);
   - toplevel module aliases ([module Catalog = Xia_index.Catalog]), expanded
     to a fixpoint before resolution;
   - toplevel [open]s, tried as qualification prefixes;
   - sibling units: within one library directory, [Catalog.stats] resolves to
     [catalog.ml] next door.

   Resolution is conservative on ambiguity: every plausible target becomes an
   edge, so reachability over-approximates the real program.  What it cannot
   see — first-class functions passed as arguments, functor applications,
   shadowing by local modules — is documented in DESIGN.md §5f; clients must
   treat absence of a path as "not proven reachable", never "unreachable
   proven". *)

open Parsetree

type unit_info = {
  path : string;      (* as given to the driver, e.g. "lib/core/benefit.ml" *)
  basename : string;  (* lowercase, extension-stripped: "benefit" *)
  modname : string;   (* the unit's module name: "Benefit" *)
  dir : string;       (* Filename.dirname path *)
  source : string;
  structure : structure;
}

type node = {
  u : unit_info;
  name : string;  (* toplevel binding name; dotted inside nested modules *)
  expr : expression;
  attrs : attributes;
  loc : Location.t;
}

let make_unit ~path ~source structure =
  let base = Filename.remove_extension (Filename.basename path) in
  {
    path;
    basename = String.lowercase_ascii base;
    modname = String.capitalize_ascii base;
    dir = Filename.dirname path;
    source;
    structure;
  }

(* ------------------------------------------------- per-unit collection -- *)

(* Toplevel [module X = Path] aliases and [open Path] statements.  Only the
   unit toplevel is scanned: aliases inside nested modules or expressions are
   rare in this codebase and ignoring them only loses edges for code that
   also hides from qualified matching. *)
let scan_toplevel structure =
  let aliases = Hashtbl.create 8 in
  let opens = ref [] in
  List.iter
    (fun (item : structure_item) ->
      match item.pstr_desc with
      | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } -> (
          match pmb_expr.pmod_desc with
          | Pmod_ident lid -> Hashtbl.replace aliases name (Longident.flatten lid.txt)
          | _ -> ())
      | Pstr_open { popen_expr = { pmod_desc = Pmod_ident lid; _ }; _ } ->
          opens := Longident.flatten lid.txt :: !opens
      | _ -> ())
    structure;
  (aliases, List.rev !opens)

let binding_name (vb : value_binding) =
  let rec of_pat (p : pattern) =
    match p.ppat_desc with
    | Ppat_var v -> Some v.txt
    | Ppat_constraint (p, _) -> of_pat p
    | _ -> None
  in
  of_pat vb.pvb_pat

(* Toplevel value bindings of a unit, recursing into named nested modules
   with dotted names ("Cache.find_or_compute").  Bindings with non-variable
   patterns still run at module initialization; they get a synthetic
   "(init:LINE)" name so their call sites participate in reachability. *)
let collect_bindings u =
  let acc = ref [] in
  let rec items prefix stack =
    List.iter
      (fun (item : structure_item) ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun (vb : value_binding) ->
                let name =
                  match binding_name vb with
                  | Some n -> prefix ^ n
                  | None ->
                      Printf.sprintf "%s(init:%d)" prefix
                        vb.pvb_loc.Location.loc_start.Lexing.pos_lnum
                in
                acc :=
                  {
                    u;
                    name;
                    expr = vb.pvb_expr;
                    attrs = vb.pvb_attributes;
                    loc = vb.pvb_loc;
                  }
                  :: !acc)
              vbs
        | Pstr_module { pmb_name = { txt = Some name; _ }; pmb_expr; _ } ->
            module_expr (prefix ^ name ^ ".") pmb_expr
        | Pstr_recmodule mbs ->
            List.iter
              (fun (mb : module_binding) ->
                match mb.pmb_name.txt with
                | Some name -> module_expr (prefix ^ name ^ ".") mb.pmb_expr
                | None -> ())
              mbs
        | Pstr_include incl -> module_expr prefix incl.pincl_mod
        | _ -> ())
      stack
  and module_expr prefix me =
    match me.pmod_desc with
    | Pmod_structure s -> items prefix s
    | Pmod_constraint (me, _) -> module_expr prefix me
    | _ -> ()
  in
  items "" u.structure;
  List.rev !acc

(* ------------------------------------------------------- library layout -- *)

(* Extract the wrapped-library module name from a dune file: the token after
   the first [(name] inside a [(library] stanza, capitalized.  Good enough
   for this repository's one-library-per-directory layout; a directory whose
   dune cannot be read simply contributes no library-qualified names. *)
let library_name_of_dune contents =
  let find_sub ~start needle =
    let n = String.length needle and m = String.length contents in
    let rec scan i =
      if i + n > m then None
      else if String.sub contents i n = needle then Some i
      else scan (i + 1)
    in
    scan start
  in
  match find_sub ~start:0 "(library" with
  | None -> None
  | Some lib_at -> (
      match find_sub ~start:lib_at "(name" with
      | None -> None
      | Some name_at ->
          let m = String.length contents in
          let rec skip_ws i =
            if i < m && (contents.[i] = ' ' || contents.[i] = '\n' || contents.[i] = '\t')
            then skip_ws (i + 1)
            else i
          in
          let start = skip_ws (name_at + 5) in
          let rec tok i =
            if
              i < m
              && contents.[i] <> ')'
              && contents.[i] <> ' '
              && contents.[i] <> '\n'
              && contents.[i] <> '\t'
            then tok (i + 1)
            else i
          in
          let stop = tok start in
          if stop > start then
            Some (String.capitalize_ascii (String.sub contents start (stop - start)))
          else None)

let read_file_opt path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> Some (really_input_string ic (in_channel_length ic)))

(* ----------------------------------------------------------- the graph -- *)

type t = {
  units : unit_info list;
  node_tbl : (string * string, node) Hashtbl.t;  (* (unit path, name) -> node *)
  node_list : node list;
  by_dir_mod : (string * string, unit_info) Hashtbl.t;  (* (dir, Modname) *)
  by_mod : (string, unit_info list) Hashtbl.t;          (* Modname -> units *)
  lib_dir : (string, string) Hashtbl.t;  (* "Xia_index" -> source dir *)
  aliases : (string, (string, string list) Hashtbl.t) Hashtbl.t;  (* unit path *)
  opens : (string, string list list) Hashtbl.t;                   (* unit path *)
  succ : (string * string, (string * string) list) Hashtbl.t;
  pred : (string * string, (string * string) list) Hashtbl.t;
}

let key n = (n.u.path, n.name)

let units t = t.units
let nodes t = t.node_list
let find_node t ~unit_path ~name = Hashtbl.find_opt t.node_tbl (unit_path, name)

(* Expand leading module-alias components to a fixpoint (bounded: an alias
   chain longer than the alias table is a cycle). *)
let expand t (u : unit_info) path =
  let tbl = Hashtbl.find_opt t.aliases u.path in
  match tbl with
  | None -> path
  | Some aliases ->
      let budget = Hashtbl.length aliases + 1 in
      let rec go budget path =
        if budget <= 0 then path
        else
          match path with
          | head :: rest when Hashtbl.mem aliases head ->
              go (budget - 1) (Hashtbl.find aliases head @ rest)
          | _ -> path
      in
      go budget path

(* Resolve an absolute (alias-free) dotted path seen from [u] to nodes.
   Collects every plausible target; sorts for determinism. *)
let resolve_abs t (u : unit_info) path =
  let node_in unit name =
    match Hashtbl.find_opt t.node_tbl (unit.path, name) with
    | Some n -> [ n ]
    | None -> []
  in
  match path with
  | [] -> []
  | [ n ] -> node_in u n
  | m :: rest -> (
      let dotted = String.concat "." rest in
      let via_library =
        match Hashtbl.find_opt t.lib_dir m with
        | Some dir -> (
            match rest with
            | sub :: fs -> (
                match Hashtbl.find_opt t.by_dir_mod (dir, sub) with
                | Some unit when fs <> [] -> node_in unit (String.concat "." fs)
                | _ -> [])
            | [] -> [])
        | None -> []
      in
      let via_sibling =
        match Hashtbl.find_opt t.by_dir_mod (u.dir, m) with
        | Some unit -> node_in unit dotted
        | None -> []
      in
      let via_nested = node_in u (String.concat "." path) in
      match via_library @ via_sibling @ via_nested with
      | [] ->
          (* Last resort, conservative: any unit anywhere with this module
             name (an [open]ed library we failed to trace, or a test
             project without dune metadata). *)
          List.concat_map
            (fun unit -> node_in unit dotted)
            (Option.value ~default:[] (Hashtbl.find_opt t.by_mod m))
      | found -> found)

let resolve t (u : unit_info) path =
  let path = expand t u path in
  let direct = resolve_abs t u path in
  let via_opens =
    List.concat_map
      (fun o -> resolve_abs t u (expand t u o @ path))
      (Option.value ~default:[] (Hashtbl.find_opt t.opens u.path))
  in
  let seen = Hashtbl.create 4 in
  List.filter
    (fun n ->
      let k = key n in
      if Hashtbl.mem seen k then false
      else begin
        Hashtbl.replace seen k ();
        true
      end)
    (direct @ via_opens)

let succs t n =
  List.filter_map
    (fun k -> Hashtbl.find_opt t.node_tbl k)
    (Option.value ~default:[] (Hashtbl.find_opt t.succ (key n)))

let preds t n =
  List.filter_map
    (fun k -> Hashtbl.find_opt t.node_tbl k)
    (Option.value ~default:[] (Hashtbl.find_opt t.pred (key n)))

let build units_in =
  let units = List.sort (fun a b -> String.compare a.path b.path) units_in in
  let node_tbl = Hashtbl.create 256 in
  let by_dir_mod = Hashtbl.create 64 in
  let by_mod = Hashtbl.create 64 in
  let lib_dir = Hashtbl.create 16 in
  let aliases = Hashtbl.create 64 in
  let opens = Hashtbl.create 64 in
  let all_nodes = ref [] in
  List.iter
    (fun u ->
      Hashtbl.replace by_dir_mod (u.dir, u.modname) u;
      Hashtbl.replace by_mod u.modname
        (Option.value ~default:[] (Hashtbl.find_opt by_mod u.modname) @ [ u ]);
      let als, ops = scan_toplevel u.structure in
      Hashtbl.replace aliases u.path als;
      Hashtbl.replace opens u.path ops;
      let ns = collect_bindings u in
      List.iter (fun n -> Hashtbl.replace node_tbl (key n) n) ns;
      all_nodes := !all_nodes @ ns)
    units;
  let dirs = List.sort_uniq String.compare (List.map (fun u -> u.dir) units) in
  List.iter
    (fun dir ->
      match read_file_opt (Filename.concat dir "dune") with
      | None -> ()
      | Some contents -> (
          match library_name_of_dune contents with
          | Some libmod -> Hashtbl.replace lib_dir libmod dir
          | None -> ()))
    dirs;
  let t =
    {
      units;
      node_tbl;
      node_list = !all_nodes;
      by_dir_mod;
      by_mod;
      lib_dir;
      aliases;
      opens;
      succ = Hashtbl.create 256;
      pred = Hashtbl.create 256;
    }
  in
  (* Edges: every [Pexp_ident] in a node's body that resolves to other nodes.
     A value reference counts the same as a call — conservative for
     reachability (a binding stored in a data structure may be invoked
     later). *)
  List.iter
    (fun n ->
      let targets = Hashtbl.create 8 in
      let it =
        {
          Ast_iterator.default_iterator with
          expr =
            (fun it e ->
              (match e.pexp_desc with
              | Pexp_ident lid ->
                  List.iter
                    (fun tgt ->
                      let tk = key tgt in
                      if tk <> key n then Hashtbl.replace targets tk ())
                    (resolve t n.u (Longident.flatten lid.txt))
              | _ -> ());
              Ast_iterator.default_iterator.expr it e);
        }
      in
      it.expr it n.expr;
      let tks = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) targets []) in
      Hashtbl.replace t.succ (key n) tks;
      List.iter
        (fun tk ->
          Hashtbl.replace t.pred tk
            (Option.value ~default:[] (Hashtbl.find_opt t.pred tk) @ [ key n ]))
        tks)
    t.node_list;
  t

(* ------------------------------------------------------------------ DOT -- *)

let dot_id n = Printf.sprintf "%s.%s" n.u.basename n.name

let to_dot t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "digraph callgraph {\n";
  Buffer.add_string buf "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  let sorted = List.sort (fun a b -> compare (key a) (key b)) t.node_list in
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [tooltip=\"%s\"];\n" (dot_id n) n.u.path))
    sorted;
  List.iter
    (fun n ->
      List.iter
        (fun s ->
          Buffer.add_string buf
            (Printf.sprintf "  \"%s\" -> \"%s\";\n" (dot_id n) (dot_id s)))
        (succs t n))
    sorted;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
