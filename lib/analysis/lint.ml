(* Analyzer driver: parse OCaml sources with compiler-libs once, build the
   cross-unit call graph once, run the unit-local and whole-program check
   catalog over it, apply allow-file suppressions, report.

   The unit of work is a source *string* ([lint_source]) so the test suite
   can exercise every check on inline fixtures — a one-unit program runs the
   identical whole-program pipeline over a one-unit graph; [lint_paths]
   layers the filesystem walk (and the filesystem-level H001 check) on
   top. *)

type error = { path : string; message : string }

type report = {
  findings : Finding.t list;   (* kept, sorted *)
  suppressed : Finding.t list; (* matched by an allow-file entry *)
  errors : error list;         (* unreadable / unparsable inputs *)
}

let empty_report = { findings = []; suppressed = []; errors = [] }

let parse_structure ~filename source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf filename;
  try Ok (Parse.implementation lexbuf) with
  | Syntaxerr.Error _ as e ->
      let msg =
        match Location.error_of_exn e with
        | Some (`Ok err) -> Format.asprintf "%a" Location.print_report err
        | _ -> "syntax error"
      in
      Error { path = filename; message = String.trim msg }
  | e -> Error { path = filename; message = Printexc.to_string e }

(* Every parsetree-level finding of a program: the unit-local checks per
   unit, then the whole-program checks (D003, N001, E001, E002, the
   R-series and N002) over the shared graph and one effect-inference
   pass, then the flow-sensitive L/X-series over the same graph and
   summaries. *)
let program_findings ~config units =
  let graph = Callgraph.build units in
  let eff = Effects.analyze graph in
  let per_unit =
    List.concat_map
      (fun (u : Callgraph.unit_info) ->
        Checks.check_structure ~filename:u.path ~source:u.source u.structure)
      units
  in
  per_unit
  @ Checks.check_d003_program ~config eff graph
  @ Checks.check_n001_program eff graph
  @ Checks.check_e001_program ~config eff graph
  @ Checks.check_e002_program ~config eff graph
  @ Races.check graph eff
  @ Dataflow.check graph eff

let lint_source ?(config = Checks.default_config) ~filename source =
  match parse_structure ~filename source with
  | Error e -> Error e
  | Ok structure ->
      let u = Callgraph.make_unit ~path:filename ~source structure in
      Ok (List.sort Finding.compare (program_findings ~config [ u ]))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?config path =
  match read_file path with
  | exception Sys_error m -> Error { path; message = m }
  | source -> lint_source ?config ~filename:path source

(* Recursively collect .ml/.mli files under [paths]; skips _build and dot
   directories.  Sorted for deterministic reports. *)
let collect_sources paths =
  let mls = ref [] and mlis = ref [] and errors = ref [] in
  let rec visit path =
    match (Sys.is_directory path : bool) with
    | exception Sys_error m -> errors := { path; message = m } :: !errors
    | true ->
        let base = Filename.basename path in
        if base <> "_build" && not (String.length base > 1 && base.[0] = '.') then
          Array.iter
            (fun entry -> visit (Filename.concat path entry))
            (let entries = Sys.readdir path in
             Array.sort String.compare entries;
             entries)
    | false ->
        if Filename.check_suffix path ".ml" then mls := path :: !mls
        else if Filename.check_suffix path ".mli" then mlis := path :: !mlis
  in
  List.iter visit paths;
  (List.rev !mls, List.rev !mlis, List.rev !errors)

(* Parse every .ml into a unit; unreadable/unparsable files become errors
   and drop out of the graph (their findings are unknowable anyway). *)
let load_units mls =
  List.fold_left
    (fun (units, errors) ml ->
      match read_file ml with
      | exception Sys_error m -> (units, { path = ml; message = m } :: errors)
      | source -> (
          match parse_structure ~filename:ml source with
          | Ok structure ->
              (Callgraph.make_unit ~path:ml ~source structure :: units, errors)
          | Error e -> (units, e :: errors)))
    ([], []) mls
  |> fun (units, errors) -> (List.rev units, List.rev errors)

let lint_paths ?(config = Checks.default_config) ?(allow = []) paths =
  let mls, mlis, walk_errors = collect_sources paths in
  let units, parse_errors = load_units mls in
  let all = Checks.missing_mli ~mls ~mlis @ program_findings ~config units in
  let kept, suppressed = Suppress.apply allow all in
  {
    findings = List.sort Finding.compare kept;
    suppressed = List.sort Finding.compare suppressed;
    errors = walk_errors @ parse_errors;
  }

(* DOT rendering of the cross-unit call graph for the given paths.  Parse
   errors do not abort: the graph over the parsable subset is still useful,
   and the errors ride along for the caller to report. *)
let callgraph_dot paths =
  let mls, _, walk_errors = collect_sources paths in
  let units, parse_errors = load_units mls in
  (Callgraph.to_dot (Callgraph.build units), walk_errors @ parse_errors)

(* Deterministic per-binding effect-summary dump over the same unit set
   (the [--effects] output). *)
let effects_dump paths =
  let mls, _, walk_errors = collect_sources paths in
  let units, parse_errors = load_units mls in
  (Effects.dump (Effects.analyze (Callgraph.build units)), walk_errors @ parse_errors)

(* Just the flow-sensitive L/X-series over the unit set (the bench
   harness's [lint.dataflow] exhibit: CFG construction + fixpoints +
   worklist, without the rest of the catalog). *)
let dataflow_findings paths =
  let mls, _, walk_errors = collect_sources paths in
  let units, parse_errors = load_units mls in
  let graph = Callgraph.build units in
  (Dataflow.check graph (Effects.analyze graph), walk_errors @ parse_errors)

(* ------------------------------------------------------ JSON rendering -- *)

(* Schema version of the machine-readable report.  Bump when the envelope
   shape changes; the fixtures in test/ lock the bytes.  v3: N/E-series
   checks in the catalog, top-level "errors" array.  v4: the
   flow-sensitive L/X-series in the catalog; the "checks" array reflects
   an --only/--skip filter when one is active. *)
let json_schema_version = 4

let report_to_json ?only (r : report) =
  let cat =
    match only with
    | None -> Checks.catalog
    | Some ids ->
        List.filter (fun (c : Checks.check_info) -> List.mem c.id ids) Checks.catalog
  in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"schema_version\": %d,\n" json_schema_version);
  Buffer.add_string buf "  \"checks\": [\n";
  let n_checks = List.length cat in
  List.iteri
    (fun i (c : Checks.check_info) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"id\": \"%s\", \"title\": \"%s\"}%s\n"
           (Finding.json_escape c.id)
           (Finding.json_escape c.title)
           (if i = n_checks - 1 then "" else ",")))
    cat;
  Buffer.add_string buf "  ],\n";
  (match List.sort Finding.compare r.findings with
  | [] -> Buffer.add_string buf "  \"findings\": [],\n"
  | fs ->
      Buffer.add_string buf "  \"findings\": [\n";
      let n = List.length fs in
      List.iteri
        (fun i f ->
          Buffer.add_string buf
            (Printf.sprintf "    %s%s\n" (Finding.to_json f)
               (if i = n - 1 then "" else ",")))
        fs;
      Buffer.add_string buf "  ],\n");
  let by_id =
    List.sort_uniq String.compare
      (List.map (fun (f : Finding.t) -> f.Finding.id) r.suppressed)
    |> List.map (fun id ->
           ( id,
             List.length
               (List.filter (fun (f : Finding.t) -> String.equal f.Finding.id id)
                  r.suppressed) ))
  in
  Buffer.add_string buf
    (Printf.sprintf "  \"suppressed\": {\"total\": %d, \"by_id\": {%s}},\n"
       (List.length r.suppressed)
       (String.concat ", "
          (List.map
             (fun (id, n) -> Printf.sprintf "\"%s\": %d" (Finding.json_escape id) n)
             by_id)));
  (match r.errors with
  | [] -> Buffer.add_string buf "  \"errors\": []\n"
  | es ->
      Buffer.add_string buf "  \"errors\": [\n";
      let n = List.length es in
      List.iteri
        (fun i e ->
          Buffer.add_string buf
            (Printf.sprintf "    {\"path\":\"%s\",\"message\":\"%s\"}%s\n"
               (Finding.json_escape e.path)
               (Finding.json_escape e.message)
               (if i = n - 1 then "" else ",")))
        es;
      Buffer.add_string buf "  ]\n");
  Buffer.add_string buf "}\n";
  Buffer.contents buf
