(* Analyzer driver: parse OCaml sources with compiler-libs, run the check
   catalog, apply allow-file suppressions, report.

   The unit of work is a source *string* ([lint_source]) so the test suite
   can exercise every check on inline fixtures; [lint_paths] layers the
   filesystem walk (and the filesystem-level H001 check) on top. *)

type error = { path : string; message : string }

type report = {
  findings : Finding.t list;   (* kept, sorted *)
  suppressed : Finding.t list; (* matched by an allow-file entry *)
  errors : error list;         (* unreadable / unparsable inputs *)
}

let empty_report = { findings = []; suppressed = []; errors = [] }

let parse_structure ~filename source =
  let lexbuf = Lexing.from_string source in
  Lexing.set_filename lexbuf filename;
  try Ok (Parse.implementation lexbuf) with
  | Syntaxerr.Error _ as e ->
      let msg =
        match Location.error_of_exn e with
        | Some (`Ok err) -> Format.asprintf "%a" Location.print_report err
        | _ -> "syntax error"
      in
      Error { path = filename; message = String.trim msg }
  | e -> Error { path = filename; message = Printexc.to_string e }

let lint_source ?(config = Checks.default_config) ~filename source =
  match parse_structure ~filename source with
  | Error e -> Error e
  | Ok structure -> Ok (Checks.check_structure ~config ~filename ~source structure)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let lint_file ?config path =
  match read_file path with
  | exception Sys_error m -> Error { path; message = m }
  | source -> lint_source ?config ~filename:path source

(* Recursively collect .ml/.mli files under [paths]; skips _build and dot
   directories.  Sorted for deterministic reports. *)
let collect_sources paths =
  let mls = ref [] and mlis = ref [] and errors = ref [] in
  let rec visit path =
    match (Sys.is_directory path : bool) with
    | exception Sys_error m -> errors := { path; message = m } :: !errors
    | true ->
        let base = Filename.basename path in
        if base <> "_build" && not (String.length base > 1 && base.[0] = '.') then
          Array.iter
            (fun entry -> visit (Filename.concat path entry))
            (let entries = Sys.readdir path in
             Array.sort String.compare entries;
             entries)
    | false ->
        if Filename.check_suffix path ".ml" then mls := path :: !mls
        else if Filename.check_suffix path ".mli" then mlis := path :: !mlis
  in
  List.iter visit paths;
  (List.rev !mls, List.rev !mlis, List.rev !errors)

let lint_paths ?(config = Checks.default_config) ?(allow = []) paths =
  let mls, mlis, walk_errors = collect_sources paths in
  let findings, errors =
    List.fold_left
      (fun (findings, errors) ml ->
        match lint_file ~config ml with
        | Ok fs -> (fs :: findings, errors)
        | Error e -> (findings, e :: errors))
      ([], List.rev walk_errors) mls
  in
  let all = Checks.missing_mli ~mls ~mlis @ List.concat (List.rev findings) in
  let kept, suppressed = Suppress.apply allow all in
  {
    findings = List.sort Finding.compare kept;
    suppressed = List.sort Finding.compare suppressed;
    errors = List.rev errors;
  }
