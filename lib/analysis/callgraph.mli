(** Cross-compilation-unit call graph over the untyped parsetree.

    Nodes are toplevel value bindings (dotted names inside nested modules);
    edges connect a binding to every binding its body may reference, resolving
    [Longident] paths through the dune library layout, toplevel module
    aliases and [open]s — conservatively on ambiguity, so reachability
    over-approximates the real program.  See DESIGN.md §5f for the soundness
    and incompleteness trade-offs. *)

type unit_info = {
  path : string;      (** as given to the driver, e.g. "lib/core/benefit.ml" *)
  basename : string;  (** lowercase, extension-stripped: "benefit" *)
  modname : string;   (** the unit's module name: "Benefit" *)
  dir : string;       (** [Filename.dirname path] *)
  source : string;
  structure : Parsetree.structure;
}

type node = {
  u : unit_info;
  name : string;  (** toplevel binding name; dotted inside nested modules *)
  expr : Parsetree.expression;
  attrs : Parsetree.attributes;
  loc : Location.t;
}

type t

val make_unit : path:string -> source:string -> Parsetree.structure -> unit_info

(** Build the graph: collect bindings, aliases and opens per unit, read each
    unit directory's [dune] file for the wrapped-library module name, then
    resolve every identifier reference to edges. *)
val build : unit_info list -> t

val units : t -> unit_info list
val nodes : t -> node list
val find_node : t -> unit_path:string -> name:string -> node option

(** Stable node identity: [(unit path, binding name)]. *)
val key : node -> string * string

(** Alias-expand the leading components of a dotted path as seen from a
    unit (e.g. [\["Catalog"; "stats"\]] to
    [\["Xia_index"; "Catalog"; "stats"\]]). *)
val expand : t -> unit_info -> string list -> string list

(** Every node a dotted path may denote, seen from [unit_info] (alias
    expansion, library qualification, sibling units, [open]s; all plausible
    targets on ambiguity). *)
val resolve : t -> unit_info -> string list -> node list

val succs : t -> node -> node list
val preds : t -> node -> node list

(** Deterministic Graphviz rendering (nodes and edges sorted). *)
val to_dot : t -> string
