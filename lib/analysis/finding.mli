(** Analyzer findings: stable check ID + source location + message. *)

type t = {
  file : string;
  line : int;
  col : int;
  id : string;
  message : string;
}

val make : file:string -> line:int -> col:int -> id:string -> message:string -> t

(** Build a finding from a compiler-libs location (uses [loc_start]). *)
val of_location : id:string -> message:string -> Location.t -> t

(** Orders by file, then line, then column, then ID. *)
val compare : t -> t -> int

(** Render as [file:line [ID] message] — the tool's text output format. *)
val to_string : t -> string

(** Escape a string for embedding in a JSON string literal. *)
val json_escape : string -> string

(** One finding as a JSON object. *)
val to_json : t -> string

(** A sorted JSON array of findings, one object per line, trailing newline.
    Byte-stable for identical inputs (regression-locked by the tests). *)
val list_to_json : t list -> string
