(* Flow-sensitive lock-discipline and exception-safety analysis: the
   L/X-series.  An intraprocedural CFG over Parsetree expressions with
   explicit exceptional edges, and a forward may-analysis over a small
   product lattice:

     per-mutex lock state  (Unknown | NotHeld | Held provs | Mixed provs)
   × pending save/restore obligations on Atomic.t / ref / catalog
     virtual state

   Mutexes are identified nominally, like R002: the symbolic path of the
   lock expression ("pool.lock", "shard.lock").  Each toplevel binding and
   each closure body is a separate analysis root entered with an Unknown
   lockset — held-ness does not flow through calls (documented
   incompleteness; DESIGN.md §5k).

   Exceptional edges:
   - [raise]/[failwith]/[invalid_arg]/[assert] divert to the current
     handler (the enclosing [try]'s handler node, or the root's
     exceptional exit).
   - A call may raise unless it is in a closed whitelist of known-total
     primitives (Mutex/Condition/Atomic operations, [!]/[:=], comparison
     and integer/float arithmetic except [/] and [mod]) or every resolved
     target's can-raise summary — a per-binding syntactic fixpoint over
     the call graph — is clear.  Unresolved calls (stdlib containers,
     local closures, computed heads) are assumed to raise: Hashtbl/Queue
     bodies under a lock need a finalizer, and that is the point.
   - [try]/[match]-with-[exception] handlers catch the body's exceptional
     edge and re-join; without a catch-all pattern the exception also
     propagates outward.
   - [Fun.protect ~finally:F B] is inlined: B's exceptional edge runs a
     copy of F's body and then re-raises; the normal edge runs F's body
     too.  Literal thunks are walked in place (so a finalizer's
     [Mutex.unlock]/restore discharges the obligation in this CFG);
     opaque arguments degrade to may-raise calls routed through the
     finalizer on both edges.

   The checks:
   - L001  a Blocking event (PerformsIO per the Effects summaries, or an
           Optimizer.optimize* entry, transitively) while any mutex is
           may-held.
   - L002  at the root's exceptional exit, a mutex is still may-held:
           reported once per contributing lock site.
   - X001  at the root's exceptional exit, a save/restore obligation is
           still pending: reported at the save binding.  An obligation is
           only created when a syntactically matching restore exists
           somewhere in the same root, so lock-passing/value-moving code
           does not fire.
   - X002  [Mutex.unlock] at a state where the mutex is statically
           NotHeld (double unlock / unlock-without-lock).  Unknown and
           Mixed states stay silent: entry-state unlock helpers and
           may-paths are not reportable.

   Suppression is captured at CFG build time from the enclosing
   [@lint.allow "ID"] attribute stack, at the site each finding anchors
   to. *)

open Parsetree

let has_suffix = Effects.has_suffix
let active stack id = List.exists (List.mem id) stack

(* Symbolic identity of a lock/atomic expression, mirroring R002. *)
let rec sym (e : expression) =
  match e.pexp_desc with
  | Pexp_ident lid -> Some (String.concat "." (Longident.flatten lid.txt))
  | Pexp_field (b, lid) -> (
      match sym b with
      | Some s -> (
          match List.rev (Longident.flatten lid.txt) with
          | f :: _ -> Some (s ^ "." ^ f)
          | [] -> None)
      | None -> None)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> sym e
  | _ -> None

let rec ident_name (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> Some x
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> ident_name e
  | _ -> None

let first_nolabel args =
  List.find_map
    (fun (l, a) -> match l with Asttypes.Nolabel -> Some a | _ -> None)
    args

let nolabel_args args =
  List.filter_map
    (fun (l, a) -> match l with Asttypes.Nolabel -> Some a | _ -> None)
    args

(* ----------------------------------------------- raise classification -- *)

(* Calls that unconditionally raise. *)
let raiser path =
  match path with
  | [ x ] | [ "Stdlib"; x ] ->
      List.mem x [ "raise"; "raise_notrace"; "failwith"; "invalid_arg" ]
  | _ -> false

(* The closed whitelist of known-total primitives.  Deliberately minimal:
   container operations (Hashtbl/Queue/List/Array) are NOT here even when
   individually total, because the analysis treats everything outside this
   set as arbitrary code — a critical section made only of entries below
   provably needs no finalizer, anything else does.  [/] and [mod] raise
   Division_by_zero and stay out. *)
let total_idents =
  [
    "!"; ":="; "~-"; "~-."; "~+"; "~+."; "not"; "ignore"; "ref"; "incr";
    "decr"; "fst"; "snd"; "succ"; "pred"; "min"; "max"; "abs"; "compare";
    "+"; "-"; "*"; "+."; "-."; "*."; "/."; "="; "<>"; "<"; ">"; "<="; ">=";
    "=="; "!="; "^"; "&&"; "||"; "land"; "lor"; "lxor"; "lsl"; "lsr"; "asr";
    "float_of_int"; "int_of_float"; "truncate"; "string_of_int";
    "string_of_float"; "string_of_bool";
  ]

let total_suffixes =
  [
    [ "Mutex"; "lock" ]; [ "Mutex"; "unlock" ]; [ "Mutex"; "try_lock" ];
    [ "Condition"; "wait" ]; [ "Condition"; "signal" ];
    [ "Condition"; "broadcast" ];
    [ "Atomic"; "get" ]; [ "Atomic"; "set" ]; [ "Atomic"; "make" ];
    [ "Atomic"; "incr" ]; [ "Atomic"; "decr" ]; [ "Atomic"; "fetch_and_add" ];
    [ "Atomic"; "compare_and_set" ]; [ "Atomic"; "exchange" ];
  ]

let never_raises path =
  (match path with
  | [ x ] | [ "Stdlib"; x ] -> List.mem x total_idents
  | _ -> false)
  || List.exists (fun suffix -> has_suffix ~suffix path) total_suffixes

let catch_all_pat p =
  let rec all p =
    match p.ppat_desc with
    | Ppat_any | Ppat_var _ -> true
    | Ppat_alias (p, _) | Ppat_constraint (p, _) -> all p
    | Ppat_or (a, b) -> all a || all b
    | _ -> false
  in
  all p

(* A [try] case that catches every exception. *)
let catch_all_case (c : case) = c.pc_guard = None && catch_all_pat c.pc_lhs

(* A [match]-with-[exception] case that catches every exception. *)
let exc_catch_all (c : case) =
  c.pc_guard = None
  &&
  match c.pc_lhs.ppat_desc with
  | Ppat_exception p -> catch_all_pat p
  | _ -> false

(* Apply [f] to every immediate child expression of [e], in syntactic
   order (the standard one-level Ast_iterator trick). *)
let iter_child_exprs f e =
  let it =
    { Ast_iterator.default_iterator with expr = (fun _ c -> f c) }
  in
  Ast_iterator.default_iterator.expr it e

(* Per-binding can-raise fixpoint: a syntactic walk of each body modelling
   [try]-with-catch-all, deferring closure bodies, and resolving calls
   through the graph; iterated until no summary flips.  Unresolved calls
   are assumed to raise. *)
let compute_raises graph =
  let nodes = Callgraph.nodes graph in
  let tbl : (string * string, bool) Hashtbl.t =
    Hashtbl.create (2 * List.length nodes)
  in
  List.iter (fun n -> Hashtbl.replace tbl (Callgraph.key n) false) nodes;
  let call_raises u path =
    if raiser path then true
    else if never_raises path then false
    else
      match Callgraph.resolve graph u path with
      | [] -> true
      | targets ->
          List.exists
            (fun t ->
              match Hashtbl.find_opt tbl (Callgraph.key t) with
              | Some b -> b
              | None -> true)
            targets
  in
  let rec raises u e =
    match e.pexp_desc with
    | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ | Pexp_newtype _ -> false
    | Pexp_ident _ | Pexp_constant _ -> false
    | Pexp_assert _ -> true
    | Pexp_try (b, cases) ->
        let in_cases =
          List.exists
            (fun c ->
              (match c.pc_guard with Some g -> raises u g | None -> false)
              || raises u c.pc_rhs)
            cases
        in
        if List.exists catch_all_case cases then in_cases
        else raises u b || in_cases
    | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args) ->
        List.exists (fun (_, a) -> raises u a) args
        || call_raises u (Longident.flatten lid.txt)
    | Pexp_apply (_, _) -> true (* computed callee *)
    | _ ->
        let acc = ref false in
        iter_child_exprs (fun c -> if raises u c then acc := true) e;
        !acc
  in
  let rec body_of e =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, b) | Pexp_newtype (_, b) -> body_of b
    | Pexp_constraint (b, _) | Pexp_coerce (b, _, _) -> body_of b
    | _ -> e
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun (n : Callgraph.node) ->
        let k = Callgraph.key n in
        if not (Hashtbl.find tbl k) then begin
          let b = body_of n.Callgraph.expr in
          let r =
            match b.pexp_desc with
            | Pexp_function cases ->
                List.exists
                  (fun c ->
                    (match c.pc_guard with
                    | Some g -> raises n.Callgraph.u g
                    | None -> false)
                    || raises n.Callgraph.u c.pc_rhs)
                  cases
            | _ -> raises n.Callgraph.u b
          in
          if r then begin
            Hashtbl.replace tbl k true;
            changed := true
          end
        end)
      nodes
  done;
  tbl

(* --------------------------------------------- blocking classification -- *)

let starts_with_optimize s =
  String.length s >= 8 && String.sub s 0 8 = "optimize"

(* An alias-expanded reference to Optimizer.optimize*. *)
let optimizer_entry_path expanded =
  match List.rev expanded with
  | last :: "Optimizer" :: _ when starts_with_optimize last -> true
  | _ -> false

let optimizer_entry_node (n : Callgraph.node) =
  n.Callgraph.u.Callgraph.basename = "optimizer"
  && starts_with_optimize n.Callgraph.name

(* Transitive optimizer reach: a binding is blocking if it is an
   optimize* entry of the optimizer unit or calls (per the resolved
   Effects call lists) a binding that is. *)
let compute_opt_reach graph eff =
  let nodes = Callgraph.nodes graph in
  let tbl : (string * string, unit) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun n -> if optimizer_entry_node n then Hashtbl.replace tbl (Callgraph.key n) ())
    nodes;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        let k = Callgraph.key n in
        if
          (not (Hashtbl.mem tbl k))
          && List.exists
               (fun t -> Hashtbl.mem tbl (Callgraph.key t))
               (Effects.calls eff n)
        then begin
          Hashtbl.replace tbl k ();
          changed := true
        end)
      nodes
  done;
  tbl

(* ----------------------------------------------------- CFG construction -- *)

type obligation = {
  o_sym : string;   (* symbolic target: "enabled", "c" *)
  o_var : string;   (* the binder holding the saved value *)
  o_what : string;  (* display: "Atomic.get enabled" *)
  o_loc : Location.t;
  o_sup : bool;     (* X001-suppressed at the save site *)
}

type ev =
  | Nop
  | Lock of { lsym : string; lloc : Location.t; lsup : bool }
  | Unlock of { usym : string; uloc : Location.t; usup : bool }
  | Blocking of { bwhat : string; bloc : Location.t; bsup : bool }
  | Save of obligation
  | Restore of { rsym : string; rvar : string }

type cfg = {
  mutable n : int;
  mutable evs : ev list;          (* reversed *)
  mutable edges : (int * int) list;
}

type pending = {
  p_u : Callgraph.unit_info;
  p_expr : expression;
  p_stack : string list list;     (* attribute stack snapshot *)
}

type ctx = {
  g : cfg;
  graph : Callgraph.t;
  eff : Effects.t;
  u : Callgraph.unit_info;
  raise_tbl : (string * string, bool) Hashtbl.t;
  opt_tbl : (string * string, unit) Hashtbl.t;
  restores : (string * string, unit) Hashtbl.t;  (* (sym, var) in this root *)
  stack : string list list ref;
  queue : pending Queue.t;        (* closure roots discovered while walking *)
}

let node ctx ev =
  let i = ctx.g.n in
  ctx.g.n <- i + 1;
  ctx.g.evs <- ev :: ctx.g.evs;
  i

let edge ctx a b = ctx.g.edges <- (a, b) :: ctx.g.edges
let enqueue ctx e = Queue.add { p_u = ctx.u; p_expr = e; p_stack = !(ctx.stack) } ctx.queue

(* [fun () -> body] (or any one-argument literal fun): the body, for
   inlining Fun.protect thunks. *)
let rec thunk_body e =
  match e.pexp_desc with
  | Pexp_fun (Asttypes.Nolabel, None, _, b) -> Some b
  | Pexp_constraint (e, _) -> thunk_body e
  | _ -> None

(* Pre-scan one root for syntactic restore sites [(sym, var)]: an
   obligation is only tracked when a matching restore exists somewhere in
   the root (closures included — inlined finalizers are the common
   carrier). *)
let scan_restores graph (u : Callgraph.unit_info) expr =
  let tbl : (string * string, unit) Hashtbl.t = Hashtbl.create 4 in
  let record args =
    match nolabel_args args with
    | [ target; value ] -> (
        match (sym target, ident_name value) with
        | Some s, Some v -> Hashtbl.replace tbl (s, v) ()
        | _ -> ())
    | _ -> ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args) ->
              let path = Longident.flatten lid.txt in
              if
                has_suffix ~suffix:[ "Atomic"; "set" ] path
                || path = [ ":=" ]
                || path = [ "Stdlib"; ":=" ]
                || has_suffix ~suffix:[ "Catalog"; "set_virtual_indexes" ]
                     (Callgraph.expand graph u path)
              then record args
          | _ -> ());
          Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it expr;
  tbl

(* A [let v = <save>] shape: Atomic.get / ! / Catalog.virtual_indexes of a
   symbolic target. *)
let save_shape ctx e =
  match e.pexp_desc with
  | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args) -> (
      let path = Longident.flatten lid.txt in
      match Option.bind (first_nolabel args) sym with
      | None -> None
      | Some s ->
          if has_suffix ~suffix:[ "Atomic"; "get" ] path then
            Some (s, Printf.sprintf "Atomic.get %s" s)
          else if path = [ "!" ] || path = [ "Stdlib"; "!" ] then
            Some (s, Printf.sprintf "!%s" s)
          else if
            has_suffix ~suffix:[ "Catalog"; "virtual_indexes" ]
              (Callgraph.expand ctx.graph ctx.u path)
          then Some (s, Printf.sprintf "Catalog.virtual_indexes %s" s)
          else None)
  | _ -> None

(* The matching restore shape: Atomic.set x v / x := v /
   Catalog.set_virtual_indexes c v where (sym x, v) is a tracked key. *)
let restore_shape ctx path args =
  let pair () =
    match nolabel_args args with
    | [ target; value ] -> (
        match (sym target, ident_name value) with
        | Some s, Some v when Hashtbl.mem ctx.restores (s, v) -> Some (s, v)
        | _ -> None)
    | _ -> None
  in
  if has_suffix ~suffix:[ "Atomic"; "set" ] path then pair ()
  else if path = [ ":=" ] || path = [ "Stdlib"; ":=" ] then pair ()
  else if
    has_suffix ~suffix:[ "Catalog"; "set_virtual_indexes" ]
      (Callgraph.expand ctx.graph ctx.u path)
  then pair ()
  else None

let rec var_of_pattern p =
  match p.ppat_desc with
  | Ppat_var v -> Some v.Asttypes.txt
  | Ppat_constraint (p, _) -> var_of_pattern p
  | _ -> None

(* What makes a call site blocking: a direct optimizer entry reference, an
   unresolved IO builtin, or a resolved target whose summary performs IO /
   reaches an optimizer entry. *)
let blocking_of_call ctx path expanded targets =
  if optimizer_entry_path expanded then
    Some (String.concat "." path ^ " (optimizer entry)")
  else
    match targets with
    | [] -> Effects.io_of_path path
    | _ ->
        List.find_map
          (fun (t : Callgraph.node) ->
            if Hashtbl.mem ctx.opt_tbl (Callgraph.key t) then
              Some (Printf.sprintf "%s reaches an optimizer entry" t.name)
            else if List.mem Effects.Performs_io (Effects.total_effects ctx.eff t)
            then Some (Printf.sprintf "%s performs IO" t.name)
            else None)
          targets

(* ------------------------------------------------------------ the walk -- *)

(* [walk ctx ~cur ~exc e]: extend the CFG with [e]'s evaluation starting
   at node [cur]; exceptional control escapes to [exc].  Returns the node
   reached on normal completion. *)
let rec walk ctx ~cur ~exc e =
  ctx.stack := Suppress.allow_ids e.pexp_attributes :: !(ctx.stack);
  let res = walk_desc ctx ~cur ~exc e in
  ctx.stack := List.tl !(ctx.stack);
  res

and walk_list ctx ~cur ~exc es =
  List.fold_left (fun cur e -> walk ctx ~cur ~exc e) cur es

and walk_cases ctx ~entry ~exc ~join cases =
  List.iter
    (fun c ->
      let cur =
        match c.pc_guard with
        | Some g -> walk ctx ~cur:entry ~exc g
        | None -> entry
      in
      let c_end = walk ctx ~cur ~exc c.pc_rhs in
      edge ctx c_end join)
    cases

and walk_desc ctx ~cur ~exc e =
  match e.pexp_desc with
  | Pexp_ident _ | Pexp_constant _ | Pexp_unreachable -> cur
  | Pexp_fun _ | Pexp_function _ | Pexp_lazy _ | Pexp_newtype _ ->
      (* Deferred body: its own root, entered with an Unknown lockset. *)
      enqueue ctx e;
      cur
  | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args) ->
      walk_call ctx ~cur ~exc e (Longident.flatten lid.txt) args
  | Pexp_apply (h, args) ->
      let cur = walk ctx ~cur ~exc h in
      let cur = walk_list ctx ~cur ~exc (List.map snd args) in
      edge ctx cur exc;
      (* computed callee: may raise *)
      cur
  | Pexp_let (_, vbs, body) ->
      let cur =
        List.fold_left
          (fun cur vb ->
            ctx.stack := Suppress.allow_ids vb.pvb_attributes :: !(ctx.stack);
            let cur = walk ctx ~cur ~exc vb.pvb_expr in
            let cur =
              match (var_of_pattern vb.pvb_pat, save_shape ctx vb.pvb_expr) with
              | Some v, Some (s, what) when Hashtbl.mem ctx.restores (s, v) ->
                  let nd =
                    node ctx
                      (Save
                         {
                           o_sym = s;
                           o_var = v;
                           o_what = what;
                           o_loc = vb.pvb_loc;
                           o_sup =
                             active !(ctx.stack) "X001"
                             || List.mem "X001"
                                  (Suppress.allow_ids
                                     vb.pvb_expr.pexp_attributes);
                         })
                  in
                  edge ctx cur nd;
                  nd
              | _ -> cur
            in
            ctx.stack := List.tl !(ctx.stack);
            cur)
          cur vbs
      in
      walk ctx ~cur ~exc body
  | Pexp_sequence (a, b) ->
      let cur = walk ctx ~cur ~exc a in
      walk ctx ~cur ~exc b
  | Pexp_ifthenelse (c, t, f) ->
      let c_end = walk ctx ~cur ~exc c in
      let t_end = walk ctx ~cur:c_end ~exc t in
      let j = node ctx Nop in
      edge ctx t_end j;
      (match f with
      | Some f -> edge ctx (walk ctx ~cur:c_end ~exc f) j
      | None -> edge ctx c_end j);
      j
  | Pexp_match (scrut, cases) ->
      let exc_cases, val_cases =
        List.partition
          (fun c ->
            match c.pc_lhs.ppat_desc with Ppat_exception _ -> true | _ -> false)
          cases
      in
      let j = node ctx Nop in
      let s_end =
        match exc_cases with
        | [] -> walk ctx ~cur ~exc scrut
        | _ ->
            (* exception cases catch only scrutinee evaluation *)
            let h = node ctx Nop in
            let s_end = walk ctx ~cur ~exc:h scrut in
            if not (List.exists exc_catch_all exc_cases) then edge ctx h exc;
            walk_cases ctx ~entry:h ~exc ~join:j exc_cases;
            s_end
      in
      (match val_cases with
      | [] -> edge ctx s_end j
      | _ -> walk_cases ctx ~entry:s_end ~exc ~join:j val_cases);
      j
  | Pexp_try (b, cases) ->
      let h = node ctx Nop in
      let b_end = walk ctx ~cur ~exc:h b in
      if not (List.exists catch_all_case cases) then edge ctx h exc;
      let j = node ctx Nop in
      edge ctx b_end j;
      walk_cases ctx ~entry:h ~exc ~join:j cases;
      j
  | Pexp_while (c, body) ->
      let head = node ctx Nop in
      edge ctx cur head;
      let c_end = walk ctx ~cur:head ~exc c in
      let b_end = walk ctx ~cur:c_end ~exc body in
      edge ctx b_end head;
      c_end
  | Pexp_for (_, lo, hi, _, body) ->
      let cur = walk ctx ~cur ~exc lo in
      let cur = walk ctx ~cur ~exc hi in
      let head = node ctx Nop in
      edge ctx cur head;
      let b_end = walk ctx ~cur:head ~exc body in
      edge ctx b_end head;
      head
  | Pexp_assert a -> (
      match a.pexp_desc with
      | Pexp_construct ({ txt = Longident.Lident "false"; _ }, None) ->
          edge ctx cur exc;
          node ctx Nop (* dead: no in-edges *)
      | _ ->
          let cur = walk ctx ~cur ~exc a in
          edge ctx cur exc;
          (* Assert_failure *)
          cur)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> walk ctx ~cur ~exc e
  | Pexp_open (_, e) | Pexp_letmodule (_, _, e) | Pexp_letexception (_, e) ->
      walk ctx ~cur ~exc e
  | Pexp_construct (_, arg) | Pexp_variant (_, arg) -> (
      match arg with Some a -> walk ctx ~cur ~exc a | None -> cur)
  | Pexp_tuple es | Pexp_array es -> walk_list ctx ~cur ~exc es
  | Pexp_record (fields, base) ->
      let cur =
        match base with Some b -> walk ctx ~cur ~exc b | None -> cur
      in
      walk_list ctx ~cur ~exc (List.map snd fields)
  | Pexp_field (b, _) -> walk ctx ~cur ~exc b
  | Pexp_setfield (b, _, v) ->
      let cur = walk ctx ~cur ~exc b in
      walk ctx ~cur ~exc v
  | _ ->
      (* generic fallback: children in syntactic order, no raising *)
      let kids = ref [] in
      iter_child_exprs (fun c -> kids := c :: !kids) e;
      walk_list ctx ~cur ~exc (List.rev !kids)

and walk_call ctx ~cur ~exc e path args =
  if has_suffix ~suffix:[ "Fun"; "protect" ] path && first_nolabel args <> None
  then walk_protect ctx ~cur ~exc args
  else begin
    let cur = walk_list ctx ~cur ~exc (List.map snd args) in
    let target_sym () = Option.bind (first_nolabel args) sym in
    if has_suffix ~suffix:[ "Mutex"; "lock" ] path then
      match target_sym () with
      | Some s ->
          let nd =
            node ctx
              (Lock
                 { lsym = s; lloc = e.pexp_loc; lsup = active !(ctx.stack) "L002" })
          in
          edge ctx cur nd;
          nd
      | None -> cur
    else if has_suffix ~suffix:[ "Mutex"; "unlock" ] path then
      match target_sym () with
      | Some s ->
          let nd =
            node ctx
              (Unlock
                 { usym = s; uloc = e.pexp_loc; usup = active !(ctx.stack) "X002" })
          in
          edge ctx cur nd;
          nd
      | None -> cur
    else if raiser path then begin
      edge ctx cur exc;
      node ctx Nop (* dead *)
    end
    else
      match restore_shape ctx path args with
      | Some (s, v) ->
          let nd = node ctx (Restore { rsym = s; rvar = v }) in
          edge ctx cur nd;
          nd
      | None ->
          if never_raises path then cur
          else begin
            let expanded = Callgraph.expand ctx.graph ctx.u path in
            let targets = Callgraph.resolve ctx.graph ctx.u path in
            let may_raise =
              match targets with
              | [] -> true
              | _ ->
                  List.exists
                    (fun t ->
                      Hashtbl.find_opt ctx.raise_tbl (Callgraph.key t)
                      <> Some false)
                    targets
            in
            match blocking_of_call ctx path expanded targets with
            | Some what ->
                let nd =
                  node ctx
                    (Blocking
                       {
                         bwhat = what;
                         bloc = e.pexp_loc;
                         bsup = active !(ctx.stack) "L001";
                       })
                in
                edge ctx cur nd;
                if may_raise then edge ctx nd exc;
                nd
            | None ->
                if may_raise then edge ctx cur exc;
                cur
          end
  end

(* Fun.protect ~finally:F B: run B with its exceptional edge collected,
   then run (a copy of) F on both the normal and the exceptional edge; the
   exceptional copy re-raises afterwards. *)
and walk_protect ctx ~cur ~exc args =
  let finally =
    List.find_map
      (fun (l, a) ->
        match l with
        | Asttypes.Labelled "finally" -> Some a
        | _ -> None)
      args
  in
  let body = first_nolabel args in
  (* Argument expressions evaluate first; literal thunks contribute no
     events and are inlined below instead. *)
  let cur =
    List.fold_left
      (fun cur (_, a) -> if thunk_body a <> None then cur else walk ctx ~cur ~exc a)
      cur args
  in
  match body with
  | None ->
      (* partial application: just a may-raise call *)
      edge ctx cur exc;
      cur
  | Some b ->
      let exc_collect = node ctx Nop in
      let b_end =
        match thunk_body b with
        | Some inner -> walk ctx ~cur ~exc:exc_collect inner
        | None ->
            (* opaque thunk: may-raise call routed through the finalizer *)
            let call = node ctx Nop in
            edge ctx cur call;
            edge ctx call exc_collect;
            call
      in
      let fin_literal = Option.bind finally thunk_body in
      (match fin_literal with
      | Some fin ->
          let n_end = walk ctx ~cur:b_end ~exc fin in
          let x_end = walk ctx ~cur:exc_collect ~exc fin in
          edge ctx x_end exc;
          (* re-raise *)
          n_end
      | None ->
          (* opaque finalizer: a may-raise call on both edges *)
          let fin_call from_ =
            let c = node ctx Nop in
            edge ctx from_ c;
            edge ctx c exc;
            c
          in
          let n_end = fin_call b_end in
          let x_after = fin_call exc_collect in
          edge ctx x_after exc;
          n_end)

(* --------------------------------------------------- forward analysis -- *)

module StrMap = Map.Make (String)

type prov = { p_loc : Location.t; p_sup : bool }

type lockst = NotHeld | Held of prov list | Mixed of prov list
(* Unknown is the absence of an entry in the map. *)

type state = { locks : lockst StrMap.t; obs : obligation list }

let join_provs a b = List.sort_uniq compare (a @ b)

let join_lock a b =
  match (a, b) with
  | None, None -> None
  | Some x, None | None, Some x -> (
      (* other side is Unknown *)
      match x with
      | NotHeld -> Some NotHeld
      | Held p | Mixed p -> Some (Mixed p))
  | Some NotHeld, Some NotHeld -> Some NotHeld
  | Some (Held p), Some (Held q) -> Some (Held (join_provs p q))
  | Some (Held p | Mixed p), Some (Held q | Mixed q) ->
      Some (Mixed (join_provs p q))
  | Some NotHeld, Some (Held p | Mixed p)
  | Some (Held p | Mixed p), Some NotHeld ->
      Some (Mixed p)

let join_state a b =
  {
    locks = StrMap.merge (fun _ x y -> join_lock x y) a.locks b.locks;
    obs = List.sort_uniq compare (a.obs @ b.obs);
  }

let transfer ~record ev st =
  match ev with
  | Nop -> st
  | Lock { lsym; lloc; lsup } ->
      let prev =
        match StrMap.find_opt lsym st.locks with
        | Some (Held p | Mixed p) -> p
        | _ -> []
      in
      {
        st with
        locks =
          StrMap.add lsym
            (Held (join_provs [ { p_loc = lloc; p_sup = lsup } ] prev))
            st.locks;
      }
  | Unlock { usym; uloc; usup } ->
      (match StrMap.find_opt usym st.locks with
      | Some NotHeld ->
          if not usup then
            record
              (Finding.of_location ~id:"X002"
                 ~message:
                   (Printf.sprintf
                      "Mutex.unlock on %s without a matching lock on this \
                       path (double unlock?): stdlib mutexes are not \
                       reentrant and error on double release"
                      usym)
                 uloc)
      | _ -> ());
      { st with locks = StrMap.add usym NotHeld st.locks }
  | Blocking { bwhat; bloc; bsup } ->
      let held =
        StrMap.fold
          (fun s l acc ->
            match l with Held _ | Mixed _ -> s :: acc | NotHeld -> acc)
          st.locks []
        |> List.sort String.compare
      in
      (match held with
      | [] -> ()
      | _ ->
          if not bsup then
            record
              (Finding.of_location ~id:"L001"
                 ~message:
                   (Printf.sprintf
                      "blocking call (%s) while mutex %s is held: IO/optimizer \
                       latency serializes every domain contending on the \
                       lock; move the call outside the critical section"
                      bwhat (String.concat ", " held))
                 bloc));
      st
  | Save ob -> { st with obs = List.sort_uniq compare (ob :: st.obs) }
  | Restore { rsym; rvar } ->
      {
        st with
        obs =
          List.filter
            (fun o -> not (String.equal o.o_sym rsym && String.equal o.o_var rvar))
            st.obs;
      }

let run_analysis ctx ~entry ~exit_x ~record =
  let n = ctx.g.n in
  let evs = Array.of_list (List.rev ctx.g.evs) in
  let succs = Array.make n [] in
  List.iter (fun (a, b) -> succs.(a) <- b :: succs.(a)) ctx.g.edges;
  Array.iteri (fun i l -> succs.(i) <- List.sort_uniq compare l) succs;
  let states : state option array = Array.make n None in
  states.(entry) <- Some { locks = StrMap.empty; obs = [] };
  let queue = Queue.create () in
  let inq = Array.make n false in
  let push i =
    if not inq.(i) then begin
      inq.(i) <- true;
      Queue.add i queue
    end
  in
  push entry;
  while not (Queue.is_empty queue) do
    let i = Queue.pop queue in
    inq.(i) <- false;
    match states.(i) with
    | None -> ()
    | Some st ->
        let out = transfer ~record evs.(i) st in
        List.iter
          (fun j ->
            let merged =
              match states.(j) with
              | None -> out
              | Some t -> join_state t out
            in
            if states.(j) <> Some merged then begin
              states.(j) <- Some merged;
              push j
            end)
          succs.(i)
  done;
  (* Root exceptional exit: leaked locks (L002) and pending save/restore
     obligations (X001). *)
  match states.(exit_x) with
  | None -> ()
  | Some st ->
      StrMap.iter
        (fun s l ->
          match l with
          | Held provs | Mixed provs ->
              List.iter
                (fun p ->
                  if not p.p_sup then
                    record
                      (Finding.of_location ~id:"L002"
                         ~message:
                           (Printf.sprintf
                              "Mutex.lock on %s: an exceptional path exits \
                               without unlocking it; wrap the critical \
                               section in Fun.protect ~finally:(fun () -> \
                               Mutex.unlock %s)"
                              s s)
                         p.p_loc))
                provs
          | NotHeld -> ())
        st.locks;
      List.iter
        (fun o ->
          if not o.o_sup then
            record
              (Finding.of_location ~id:"X001"
                 ~message:
                   (Printf.sprintf
                      "saved state %s (bound as %s) is not restored on some \
                       exceptional path; perform the restore in a Fun.protect \
                       ~finally"
                      o.o_what o.o_var)
                 o.o_loc))
        st.obs

(* --------------------------------------------------------------- roots -- *)

let analyze_root ~graph ~eff ~raise_tbl ~opt_tbl ~queue ~record (p : pending) =
  let g = { n = 0; evs = []; edges = [] } in
  let ctx =
    {
      g;
      graph;
      eff;
      u = p.p_u;
      raise_tbl;
      opt_tbl;
      restores = scan_restores graph p.p_u p.p_expr;
      stack = ref p.p_stack;
      queue;
    }
  in
  let entry = node ctx Nop in
  let exit_x = node ctx Nop in
  let exit_n = node ctx Nop in
  let rec split e =
    match e.pexp_desc with
    | Pexp_fun (_, _, _, b) | Pexp_newtype (_, b) | Pexp_lazy b -> split b
    | Pexp_constraint (b, _) | Pexp_coerce (b, _, _) -> split b
    | _ -> e
  in
  let body = split p.p_expr in
  (match body.pexp_desc with
  | Pexp_function cases -> walk_cases ctx ~entry ~exc:exit_x ~join:exit_n cases
  | _ ->
      let b_end = walk ctx ~cur:entry ~exc:exit_x body in
      edge ctx b_end exit_n);
  run_analysis ctx ~entry ~exit_x ~record

let check graph eff =
  let raise_tbl = compute_raises graph in
  let opt_tbl = compute_opt_reach graph eff in
  (* Deduplicated sticky findings: keyed by (id, location); the final
     transfer of a node runs with its final (largest) in-state, so the
     last write carries the complete message. *)
  let findings : (string * string * int * int, Finding.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let record (f : Finding.t) =
    Hashtbl.replace findings (f.Finding.id, f.Finding.file, f.Finding.line, f.Finding.col) f
  in
  let queue = Queue.create () in
  List.iter
    (fun (n : Callgraph.node) ->
      Queue.add
        {
          p_u = n.Callgraph.u;
          p_expr = n.Callgraph.expr;
          p_stack = [ Suppress.allow_ids n.Callgraph.attrs ];
        }
        queue)
    (Callgraph.nodes graph);
  while not (Queue.is_empty queue) do
    analyze_root ~graph ~eff ~raise_tbl ~opt_tbl ~queue ~record
      (Queue.pop queue)
  done;
  List.sort Finding.compare (Hashtbl.fold (fun _ f acc -> f :: acc) findings [])
