(** The check catalog.

    Unit-local checks (one compilation unit's parsetree):

    - [D001] module-toplevel mutable state not wrapped in
      Atomic/Domain.DLS/Mutex/Lazy (domain-safety).
    - [D002] [Sys.time] used for timing (CPU time, not wall-clock).
    - [D004] [Unix.gettimeofday] in [lib/] code outside [lib/obs/]: library
      wall-clock reads must go through [Xia_obs.Obs.now_s].
    - [H001] module without an [.mli] interface (filesystem-level).
    - [H002] [failwith]/[assert false] without a [(* lint: reason *)] note.

    Whole-program checks (interprocedural, queries over the {!Effects}
    summaries computed on the cross-unit call graph built by {!Callgraph}):

    - [D003] catalog/store mutation transitively reachable — across
      compilation units — from a binding of a what-if evaluation module,
      enforcing PR 1's reentrancy contract.
    - [N001] hash iteration order escaping into a returned/cached result in
      [lib/].
    - [E001] IO effects in [lib/] outside the sanctioned surfaces.
    - [E002] shared-state writes reachable from the virtual-config batch
      path.
    - [R001]/[R002]/[R003] the domain-race series and [N002] (order-fragile
      parallel float reduction); implemented in {!Races}.

    Flow-sensitive checks (a forward may-analysis over an intraprocedural
    CFG with explicit exceptional edges; implemented in {!Dataflow},
    semantics in DESIGN.md §5k):

    - [L001] blocking effect ([PerformsIO] or an [Optimizer.optimize*]
      entry) reachable while a mutex is held.
    - [L002] mutex acquired with an exceptional path to exit that never
      unlocks it (bare lock/unlock pairs not wrapped in a
      [Fun.protect]-style finalizer).
    - [X001] save/restore idiom whose restore is skipped on some
      exceptional path.
    - [X002] double unlock / unlock-without-lock on some path.

    Identifier references are matched on [Longident] paths after
    module-alias expansion through the graph; full name resolution
    (shadowing, functors, first-class modules) is out of scope.  Suppress
    intentional sites with [\[@lint.allow "ID"\]] or an allow-file entry. *)

type config = {
  whatif_modules : string list;
      (** lowercase module basenames whose bindings are D003 entry points,
          e.g. [\["benefit"; "optimizer"\]] *)
  io_modules : string list;
      (** lowercase module basenames sanctioned to perform IO — the
          persistence boundary E001 carves out, e.g. [\["persist"\]] *)
  batch_roots : string list;
      (** binding names whose transitive call closure E002 polices,
          e.g. [\["optimize_batch"\]] *)
}

val default_config : config

(** Run every unit-local parsetree check (D001, D002, D004, H002) on one
    compilation unit.  [source] is the raw file text, used to honor
    [(* lint: reason *)] notes; [filename] selects D004 applicability.
    Attribute suppressions are already applied; allow-file suppression is the
    caller's job. *)
val check_structure :
  filename:string ->
  source:string ->
  Parsetree.structure ->
  Finding.t list

(** Whole-program D003 over the effect summaries: flags every
    alias-expanded [Catalog.*]/[Doc_store.*] mutator site carried in the
    summary of a what-if-module binding. *)
val check_d003_program :
  config:config -> Effects.t -> Callgraph.t -> Finding.t list

(** N001: order-dependent folds in [lib/] whose literal closure builds a
    list with no canonicalizing sort in the same binding. *)
val check_n001_program : Effects.t -> Callgraph.t -> Finding.t list

(** E001: IO sites in [lib/] outside [lib/obs], [lib/analysis] and
    [config.io_modules]. *)
val check_e001_program :
  config:config -> Effects.t -> Callgraph.t -> Finding.t list

(** E002: shared-state writes in the transitive call closure of
    [config.batch_roots] bindings, beyond the sanctioned
    [warm_stats]/[table_env]/lock-disciplined sites. *)
val check_e002_program :
  config:config -> Effects.t -> Callgraph.t -> Finding.t list

(** [missing_mli ~mls ~mlis] — H001: every [.ml] path with no matching
    [.mli] path (compared by extension-stripped name). *)
val missing_mli : mls:string list -> mlis:string list -> Finding.t list

(** {1 Check metadata} *)

type check_info = {
  id : string;
  title : string;   (** one line; emitted in the [--json] ["checks"] array *)
  detail : string;  (** the [--explain ID] text *)
}

(** Every check, in catalog (ID) order. *)
val catalog : check_info list

val find_check : string -> check_info option

(** [select ~only ~skip] — the check IDs to run, in catalog order: the
    catalog intersected with [only] (everything when empty) minus [skip].
    Any ID unknown to the catalog is an error. *)
val select :
  only:string list -> skip:string list -> (string list, string) result
