(** The check catalog.

    - [D001] module-toplevel mutable state not wrapped in
      Atomic/Domain.DLS/Mutex/Lazy (domain-safety).
    - [D002] [Sys.time] used for timing (CPU time, not wall-clock).
    - [D003] catalog/store mutation reachable from the what-if evaluation
      modules (call-graph approximation of PR 1's reentrancy contract).
    - [D004] [Unix.gettimeofday] in [lib/] code outside [lib/obs/]: library
      wall-clock reads must go through [Xia_obs.Obs.now_s].
    - [H001] module without an [.mli] interface.
    - [H002] [failwith]/[assert false] without a [(* lint: reason *)] note.

    The analysis is syntactic: it matches [Longident] paths without name
    resolution.  Suppress intentional sites with [\[@lint.allow "ID"\]] or an
    allow-file entry. *)

type config = {
  whatif_modules : string list;
      (** lowercase module basenames subject to D003,
          e.g. [\["benefit"; "optimizer"\]] *)
}

val default_config : config

(** Run every parsetree-level check (D001, D002, D003, D004, H002) on one
    compilation unit.  [source] is the raw file text, used to honor
    [(* lint: reason *)] notes; [filename] selects D003 and D004
    applicability.
    Attribute suppressions are already applied; allow-file suppression is the
    caller's job. *)
val check_structure :
  config:config ->
  filename:string ->
  source:string ->
  Parsetree.structure ->
  Finding.t list

(** [missing_mli ~mls ~mlis] — H001: every [.ml] path with no matching
    [.mli] path (compared by extension-stripped name). *)
val missing_mli : mls:string list -> mlis:string list -> Finding.t list
