(** The check catalog.

    Unit-local checks (one compilation unit's parsetree):

    - [D001] module-toplevel mutable state not wrapped in
      Atomic/Domain.DLS/Mutex/Lazy (domain-safety).
    - [D002] [Sys.time] used for timing (CPU time, not wall-clock).
    - [D004] [Unix.gettimeofday] in [lib/] code outside [lib/obs/]: library
      wall-clock reads must go through [Xia_obs.Obs.now_s].
    - [H001] module without an [.mli] interface (filesystem-level).
    - [H002] [failwith]/[assert false] without a [(* lint: reason *)] note.

    Whole-program checks (interprocedural, over the cross-unit call graph
    built by {!Callgraph}):

    - [D003] catalog/store mutation transitively reachable — across
      compilation units — from a binding of a what-if evaluation module,
      enforcing PR 1's reentrancy contract.
    - [R001]/[R002]/[R003] the domain-race series; implemented in {!Races}.

    Identifier references are matched on [Longident] paths after
    module-alias expansion through the graph; full name resolution
    (shadowing, functors, first-class modules) is out of scope.  Suppress
    intentional sites with [\[@lint.allow "ID"\]] or an allow-file entry. *)

type config = {
  whatif_modules : string list;
      (** lowercase module basenames whose bindings are D003 entry points,
          e.g. [\["benefit"; "optimizer"\]] *)
}

val default_config : config

(** Run every unit-local parsetree check (D001, D002, D004, H002) on one
    compilation unit.  [source] is the raw file text, used to honor
    [(* lint: reason *)] notes; [filename] selects D004 applicability.
    Attribute suppressions are already applied; allow-file suppression is the
    caller's job. *)
val check_structure :
  filename:string ->
  source:string ->
  Parsetree.structure ->
  Finding.t list

(** Whole-program D003 over the shared call graph: flags every
    alias-expanded [Catalog.*]/[Doc_store.*] mutator call site reachable
    from a binding of a what-if module. *)
val check_d003_program : config:config -> Callgraph.t -> Finding.t list

(** [missing_mli ~mls ~mlis] — H001: every [.ml] path with no matching
    [.mli] path (compared by extension-stripped name). *)
val missing_mli : mls:string list -> mlis:string list -> Finding.t list

(** {1 Check metadata} *)

type check_info = {
  id : string;
  title : string;   (** one line; emitted in the [--json] ["checks"] array *)
  detail : string;  (** the [--explain ID] text *)
}

(** Every check, in catalog (ID) order. *)
val catalog : check_info list

val find_check : string -> check_info option

(** {1 Shared classification helpers} (used by {!Races}) *)

(** Is [suffix] a component suffix of [path]?
    [has_suffix ~suffix:\["Par"; "map"\] \["Xia_core"; "Par"; "map"\]] is
    [true]. *)
val has_suffix : suffix:string list -> string list -> bool

(** Field names declared [mutable] anywhere in this compilation unit. *)
val mutable_field_names : Parsetree.structure -> (string, unit) Hashtbl.t

(** Classify an expression as raw shared mutable state: every
    [(location, allocator)] pair found descending through wrappers and data
    constructors.  Empty for deferred allocations (functions, [lazy]) and
    Atomic/Mutex/DLS-wrapped initializers. *)
val d001_hits :
  (string, unit) Hashtbl.t ->
  (Location.t * string) list ->
  Parsetree.expression ->
  (Location.t * string) list
