(* A single analyzer finding: a stable check ID anchored at a source
   location, plus a human-readable message.  Findings are value types so the
   whole pipeline (collect, suppress, sort, render) stays pure. *)

type t = {
  file : string;
  line : int;
  col : int;
  id : string;
  message : string;
}

let make ~file ~line ~col ~id ~message = { file; line; col; id; message }

let of_location ~id ~message (loc : Location.t) =
  let p = loc.Location.loc_start in
  {
    file = p.Lexing.pos_fname;
    line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol;
    id;
    message;
  }

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.id b.id in
        if c <> 0 then c else String.compare a.message b.message

(* The text format is part of the tool's contract: file:line [ID] message. *)
let to_string f = Printf.sprintf "%s:%d [%s] %s" f.file f.line f.id f.message

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json f =
  Printf.sprintf "{\"file\":\"%s\",\"line\":%d,\"col\":%d,\"id\":\"%s\",\"message\":\"%s\"}"
    (json_escape f.file) f.line f.col (json_escape f.id) (json_escape f.message)

(* Machine-readable report: a JSON array, one finding object per line, sorted
   for byte-stable output (regression-locked by the test suite). *)
let list_to_json findings =
  let sorted = List.sort compare findings in
  match sorted with
  | [] -> "[]\n"
  | fs ->
      let body = String.concat ",\n  " (List.map to_json fs) in
      "[\n  " ^ body ^ "\n]\n"
