(** The R-series domain-race checks, run over the whole-program call graph:

    - [R001] mutable state reachable from a parallel task: a closure or
      named function passed to [Par.map]/[Par.map_list]/[Par.iter]/
      [Domain.spawn] that captures a raw mutable local, writes a mutable
      record field of a captured value, or (transitively, across units)
      references raw module-toplevel mutable state.  Atomic/Mutex/
      Domain.DLS/Lazy-wrapped state never classifies as raw; a function
      whose body takes a [Mutex.lock] is assumed lock-disciplined and
      skipped.
    - [R002] inconsistent mutex acquisition order, including locks taken by
      callees resolved through the graph; re-locking the same mutex symbol
      is a self-deadlock.
    - [R003] non-atomic read-modify-write:
      [Atomic.set x (... Atomic.get x ...)].

    Semantics, worked examples and the soundness/incompleteness trade-offs
    are documented in DESIGN.md §5f. *)

(** Run R001, R002 and R003 over every unit of the graph.  Attribute
    suppressions ([\[@lint.allow "R001"\]] etc.) are applied; allow-file
    suppression is the caller's job. *)
val check : Callgraph.t -> Finding.t list
