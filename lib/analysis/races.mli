(** The R-series domain-race checks and N002, run over the whole-program
    call graph and the {!Effects} summaries computed on it:

    - [R001] mutable state reachable from a parallel task: a closure or
      named function passed to [Par.map]/[Par.map_list]/[Par.iter]/
      [Domain.spawn] that captures a raw mutable local, writes a mutable
      record field of a captured value, or (transitively, across units —
      via [Effects.race_witnesses]) references raw module-toplevel mutable
      state.  Atomic/Mutex/Domain.DLS/Lazy-wrapped state never classifies
      as raw; a lock-disciplined function (body takes a [Mutex.lock])
      contributes no witnesses and blocks their propagation.
    - [R002] inconsistent mutex acquisition order, including locks taken by
      callees resolved through the graph; re-locking the same mutex symbol
      is a self-deadlock.
    - [R003] non-atomic read-modify-write:
      [Atomic.set x (... Atomic.get x ...)].
    - [N002] parallel float reduction without [Par.sum_list]: an escaping
      task accumulating floats into shared state
      ([Effects.float_accumulations] — propagates through lock discipline,
      since a mutex serializes updates without fixing their order), or a
      fan-out host folding float results with a bare
      [List.fold_left]/[Array.fold_left].

    Semantics, worked examples and the soundness/incompleteness trade-offs
    are documented in DESIGN.md §5f and §5h. *)

(** Run R001, R002, R003 and N002 over every unit of the graph.  Attribute
    suppressions ([\[@lint.allow "R001"\]] etc.) are applied; allow-file
    suppression is the caller's job. *)
val check : Callgraph.t -> Effects.t -> Finding.t list
