(* Interprocedural effect inference over the cross-unit call graph.

   Per toplevel value binding (a [Callgraph.node]) the pass computes a
   summary in a small effect lattice — the powerset of

     ReadsMutable      reads shared mutable state (deref, container read,
                       mutable-field read, Atomic.get, raw toplevel global)
     WritesMutable     writes state that may outlive the call (ref
                       assignment, container mutator, mutable-field write
                       whose target is not a per-call local allocation;
                       Atomic writes count but are synchronized — see the
                       witness rules below)
     PerformsIO        unambiguous channel/console/filesystem traffic
                       (printf/print_*/output_*/open_*/In_channel/...;
                       [sprintf]/[asprintf] are pure string builders and do
                       not count, and [fprintf] is excluded because a pp
                       function cannot know its formatter's sink)
     OrderDependent    consumes Hashtbl/Queue iteration order
                       ([fold]/[iter]/[to_seq*]) or physical equality
     Nondeterministic  global [Random.*] (seeded [Random.State.*] is
                       deterministic and exempt), raw clock reads, float
                       accumulation into shared state

   [Pure] is the empty set.  Local facts are joined bottom-up through the
   graph to a fixpoint: the lattice is finite and witness tables only gain
   keys, so sweeps terminate through recursion; module aliases are already
   expanded by [Callgraph.resolve]; an ambiguous reference joins the
   summaries of every plausible target.

   Alongside the flags, the pass carries witness lists so downstream checks
   anchor findings at real source locations:

     race witnesses      references to raw toplevel mutable state, with the
                         call chain ("via" trail) from the summarized
                         binding down to the access — R001's transitive
                         core.  A binding carrying [@lint.allow "R001"] or
                         taking a [Mutex.lock] is lock-disciplined: it
                         contributes no race witnesses and blocks their
                         propagation through itself, exactly like the
                         bespoke traversal this pass replaced.
     mutation witnesses  alias-expanded [Catalog.*]/[Doc_store.*] mutator
                         references — D003's core; the reverse index
                         ([mutation_entries]) names every binding a mutator
                         site is reachable from.  Propagates through lock
                         discipline: a mutex does not make a what-if
                         mutation acceptable.
     order witnesses     Hashtbl/Queue folds whose literal closure builds a
                         list with no canonicalizing sort anywhere in the
                         same binding — N001's sites.  Iteration through an
                         opaque function value only sets the flag.
     float accumulations read-modify-write float updates of non-local
                         state ([t := !t +. x], [r.sum <- r.sum +. x]) —
                         N002's transitive core.  Also propagates through
                         lock discipline: a mutex serializes the updates
                         but does not fix their order, so the sum still
                         varies across domains.

   Soundness/incompleteness trade-offs (DESIGN.md §5h): the analysis is
   syntactic over the untyped parsetree.  Atomic/Mutex/DLS-wrapped state is
   treated as synchronized (Atomic writes never become shared-write
   witnesses); mutation through a wrapper the matcher does not know, a
   container operation referenced point-free rather than applied, and
   first-class-function escape are invisible; flags over-approximate
   through ambiguous edges.  Absence of a flag is evidence, not proof. *)

open Parsetree

(* ------------------------------------------ shared syntactic classifiers -- *)

let allow id attrs = List.mem id (Suppress.allow_ids attrs)

let has_suffix ~suffix path =
  let rec strip k l = if k <= 0 then Some l else match l with [] -> None | _ :: t -> strip (k - 1) t in
  match strip (List.length path - List.length suffix) path with
  | Some tail -> List.equal String.equal tail suffix
  | None -> false

(* Field names declared [mutable] anywhere in this compilation unit.  The
   parsetree carries no type information, so this is the file-local
   approximation of "record literal with mutable fields". *)
let mutable_field_names structure =
  let fields = Hashtbl.create 16 in
  let type_declaration _it (td : type_declaration) =
    (match td.ptype_kind with
    | Ptype_record labels ->
        List.iter
          (fun (ld : label_declaration) ->
            if ld.pld_mutable = Asttypes.Mutable then
              Hashtbl.replace fields ld.pld_name.txt ())
          labels
    | _ -> ());
    ()
  in
  let it =
    {
      Ast_iterator.default_iterator with
      type_declaration =
        (fun it td ->
          type_declaration it td;
          Ast_iterator.default_iterator.type_declaration it td);
    }
  in
  it.structure it structure;
  fields

(* A binding whose right-hand side evaluates to one of these at module
   initialization is shared mutable state. *)
let flagged_allocators =
  [
    ([ "Hashtbl"; "create" ], "Hashtbl.create");
    ([ "Buffer"; "create" ], "Buffer.create");
    ([ "Queue"; "create" ], "Queue.create");
    ([ "Stack"; "create" ], "Stack.create");
    ([ "Weak"; "create" ], "Weak.create");
    ([ "Dynarray"; "create" ], "Dynarray.create");
    ([ "Bytes"; "create" ], "Bytes.create");
    ([ "Bytes"; "make" ], "Bytes.make");
    ([ "Array"; "make" ], "Array.make");
    ([ "Array"; "create_float" ], "Array.create_float");
    ([ "Array"; "init" ], "Array.init");
    ([ "Array"; "make_matrix" ], "Array.make_matrix");
  ]

(* Wrappers that make toplevel state domain-safe (or defer it): their
   arguments may allocate freely. *)
let safe_wrappers =
  [
    [ "Atomic"; "make" ];
    [ "DLS"; "new_key" ];
    [ "Mutex"; "create" ];
    [ "Condition"; "create" ];
    [ "Semaphore"; "Counting"; "make" ];
    [ "Semaphore"; "Binary"; "make" ];
    [ "Lazy"; "from_fun" ];
    [ "Lazy"; "from_val" ];
  ]

(* Does this expression evaluate to a function?  Walks through the wrappers
   a closure definition commonly sits under. *)
let rec returns_closure (e : expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e)
  | Pexp_letmodule (_, _, e) | Pexp_letexception (_, e) | Pexp_let (_, _, e)
  | Pexp_sequence (_, e) ->
      returns_closure e
  | Pexp_ifthenelse (_, t, Some f) -> returns_closure t || returns_closure f
  | _ -> false

(* Classify the right-hand side of a module-toplevel binding as raw shared
   mutable state.  Descends through wrappers that merely surround the
   initializer and through data constructors whose payload would still be
   reachable shared state. *)
let rec d001_hits mutable_fields acc (e : expression) =
  if allow "D001" e.pexp_attributes then acc
  else
    match e.pexp_desc with
    (* Deferred allocation: a fresh value per call, not shared state. *)
    | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ | Pexp_lazy _ -> acc
    | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e)
    | Pexp_letmodule (_, _, e) | Pexp_letexception (_, e) ->
        d001_hits mutable_fields acc e
    | Pexp_let (_, vbs, body) ->
        (* A memoizing closure — [let memo = ref None in fun () -> ...] — is
           toplevel shared state with extra steps: the closure outlives the
           binding and every caller shares the captured allocation.  Scan the
           let-in bindings whenever the whole expression evaluates to a
           function; a let-in whose body is a plain value ran once at init
           and its locals are unreachable afterwards. *)
        let acc =
          if returns_closure body then
            List.fold_left
              (fun acc (vb : value_binding) ->
                if allow "D001" vb.pvb_attributes then acc
                else d001_hits mutable_fields acc vb.pvb_expr)
              acc vbs
          else acc
        in
        d001_hits mutable_fields acc body
    | Pexp_sequence (_, e2) -> d001_hits mutable_fields acc e2
    | Pexp_ifthenelse (_, t, f) ->
        let acc = d001_hits mutable_fields acc t in
        Option.fold ~none:acc ~some:(d001_hits mutable_fields acc) f
    | Pexp_tuple es -> List.fold_left (d001_hits mutable_fields) acc es
    | Pexp_construct (_, Some e) | Pexp_variant (_, Some e) ->
        d001_hits mutable_fields acc e
    | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, _) ->
        let path = Longident.flatten lid.txt in
        if List.exists (fun suffix -> has_suffix ~suffix path) safe_wrappers then acc
        else if List.equal String.equal path [ "ref" ]
                || List.equal String.equal path [ "Stdlib"; "ref" ]
        then (e.pexp_loc, "ref") :: acc
        else (
          match
            List.find_opt (fun (suffix, _) -> has_suffix ~suffix path) flagged_allocators
          with
          | Some (_, name) -> (e.pexp_loc, name) :: acc
          | None -> acc)
    | Pexp_record (fields, base) ->
        let mutable_labels =
          List.filter_map
            (fun ((lid : Longident.t Location.loc), _) ->
              match List.rev (Longident.flatten lid.txt) with
              | last :: _ when Hashtbl.mem mutable_fields last -> Some last
              | _ -> None)
            fields
        in
        if mutable_labels <> [] then
          ( e.pexp_loc,
            Printf.sprintf "record literal with mutable field %s"
              (String.concat ", " mutable_labels) )
          :: acc
        else
          let acc =
            List.fold_left (fun acc (_, fe) -> d001_hits mutable_fields acc fe) acc fields
          in
          Option.fold ~none:acc ~some:(d001_hits mutable_fields acc) base
    | Pexp_array _ -> (e.pexp_loc, "array literal") :: acc
    | _ -> acc

(* All variable names bound by patterns anywhere inside [e] (params, lets,
   match arms).  Over-approximate on purpose: treating a sibling-branch
   binder as bound only ever silences a finding, never invents one. *)
let bound_vars (e : expression) =
  let bound = Hashtbl.create 16 in
  let it =
    {
      Ast_iterator.default_iterator with
      pat =
        (fun it p ->
          (match p.ppat_desc with
          | Ppat_var v -> Hashtbl.replace bound v.txt ()
          | _ -> ());
          Ast_iterator.default_iterator.pat it p);
    }
  in
  it.expr it e;
  bound

let contains_mutex_lock (e : expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident lid
            when has_suffix ~suffix:[ "Mutex"; "lock" ] (Longident.flatten lid.txt) ->
              found := true
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* Raw mutable locals let-bound anywhere inside a node body, name -> kind.
   Scope is deliberately ignored: a name in this table that an inner
   expression uses without binding it itself must come from an enclosing
   scope, and the only enclosing definition the analysis knows of is the
   raw one. *)
let raw_locals_of mutable_fields (e : expression) =
  let locals = Hashtbl.create 8 in
  let it =
    {
      Ast_iterator.default_iterator with
      value_binding =
        (fun it (vb : value_binding) ->
          (match vb.pvb_pat.ppat_desc with
          | Ppat_var v -> (
              match d001_hits mutable_fields [] vb.pvb_expr with
              | [] -> ()
              | (_, what) :: _ -> Hashtbl.replace locals v.txt what)
          | _ -> ());
          Ast_iterator.default_iterator.value_binding it vb);
    }
  in
  it.expr it e;
  locals

(* ------------------------------------------------------------ the lattice -- *)

type effect_kind =
  | Reads_mutable
  | Writes_mutable
  | Performs_io
  | Order_dependent
  | Nondeterministic

let all_kinds =
  [ Reads_mutable; Writes_mutable; Performs_io; Order_dependent; Nondeterministic ]

let kind_bit = function
  | Reads_mutable -> 1
  | Writes_mutable -> 2
  | Performs_io -> 4
  | Order_dependent -> 8
  | Nondeterministic -> 16

let kind_name = function
  | Reads_mutable -> "ReadsMutable"
  | Writes_mutable -> "WritesMutable"
  | Performs_io -> "PerformsIO"
  | Order_dependent -> "OrderDependent"
  | Nondeterministic -> "Nondeterministic"

let kinds_of_bits bits = List.filter (fun k -> bits land kind_bit k <> 0) all_kinds

let bits_to_string bits =
  match kinds_of_bits bits with
  | [] -> "Pure"
  | ks -> String.concat "," (List.map kind_name ks)

(* -------------------------------------------------------------- witnesses -- *)

type site = { s_loc : Location.t; s_what : string; s_suppressed : bool }

type race_witness = {
  w_loc : Location.t;
  w_global : string;      (* binding name of the raw global *)
  w_kind : string;        (* allocator: "ref", "Hashtbl.create", ... *)
  w_path : string;        (* unit path declaring the global *)
  w_via : string list;    (* call chain, summarized binding first *)
  w_suppressed : bool;
}

type acc_witness = {
  a_loc : Location.t;
  a_what : string;
  a_via : string list;
  a_suppressed : bool;
}

let loc_key (loc : Location.t) =
  let p = loc.Location.loc_start in
  Printf.sprintf "%s:%d:%d" p.Lexing.pos_fname p.Lexing.pos_lnum p.Lexing.pos_cnum

(* ----------------------------------------------------------- op classifiers -- *)

(* Mutation entry points of the shared catalog/store API (D003's site set).
   [warm_stats] is deliberately absent: it is the sanctioned synchronization
   point what-if entry code calls *before* fanning out (PR 1's contract). *)
let catalog_mutators =
  [
    "add_table"; "create_index"; "drop_index"; "drop_all_indexes";
    "refresh_indexes"; "set_virtual_indexes"; "clear_virtual_indexes";
    "runstats"; "runstats_all";
  ]

let store_mutators = [ "insert"; "delete"; "replace" ]

let mutator_of_path path =
  match List.rev path with
  | f :: m :: _ when String.equal m "Catalog" && List.mem f catalog_mutators ->
      Some ("Catalog." ^ f)
  | f :: m :: _ when String.equal m "Doc_store" && List.mem f store_mutators ->
      Some ("Doc_store." ^ f)
  | _ -> None

(* Container mutators applied to a subject argument. *)
let container_mutators =
  [
    ("Hashtbl", [ "add"; "replace"; "remove"; "reset"; "clear"; "filter_map_inplace" ]);
    ("Queue", [ "add"; "push"; "pop"; "take"; "clear"; "transfer" ]);
    ("Stack", [ "push"; "pop"; "clear" ]);
    ( "Buffer",
      [
        "add_string"; "add_char"; "add_bytes"; "add_buffer"; "add_substring";
        "add_subbytes"; "clear"; "reset"; "truncate";
      ] );
    ("Array", [ "set"; "unsafe_set"; "fill"; "blit" ]);
    ("Bytes", [ "set"; "unsafe_set"; "fill"; "blit" ]);
    ("Dynarray", [ "add_last"; "append"; "clear"; "set"; "remove_last" ]);
  ]

(* Mutators whose *element* comes first and the container second
   ([Queue.add x q], [Stack.push x s]) — the subject-argument extraction
   must skip to the second positional argument for these. *)
let element_first_mutators = [ "Queue.add"; "Queue.push"; "Stack.push" ]

let container_mutator_of_path path =
  match List.rev path with
  | f :: m :: _ ->
      List.find_map
        (fun (mname, fns) ->
          if String.equal m mname && List.mem f fns then Some (mname ^ "." ^ f) else None)
        container_mutators
  | _ -> None

(* Container reads ([Hashtbl.hash] is a pure function of its argument and
   deliberately absent). *)
let container_readers =
  [
    ("Hashtbl", [ "find"; "find_opt"; "find_all"; "mem"; "length" ]);
    ("Queue", [ "peek"; "peek_opt"; "top"; "length"; "is_empty" ]);
    ("Stack", [ "top"; "top_opt"; "length"; "is_empty" ]);
    ("Buffer", [ "contents"; "length"; "nth"; "sub"; "to_bytes" ]);
  ]

let container_reader_of_path path =
  match List.rev path with
  | f :: m :: _ ->
      List.exists
        (fun (mname, fns) -> String.equal m mname && List.mem f fns)
        container_readers
  | _ -> false

let atomic_writers = [ "set"; "incr"; "decr"; "fetch_and_add"; "exchange"; "compare_and_set" ]

(* Iteration entry points whose callback observes container order. *)
let order_sources =
  [
    ([ "Hashtbl"; "fold" ], "Hashtbl.fold");
    ([ "Hashtbl"; "iter" ], "Hashtbl.iter");
    ([ "Queue"; "fold" ], "Queue.fold");
    ([ "Queue"; "iter" ], "Queue.iter");
  ]

let seq_sources =
  [
    [ "Hashtbl"; "to_seq" ]; [ "Hashtbl"; "to_seq_keys" ]; [ "Hashtbl"; "to_seq_values" ];
    [ "Queue"; "to_seq" ];
  ]

let sort_suffixes =
  [
    [ "List"; "sort" ]; [ "List"; "sort_uniq" ]; [ "List"; "stable_sort" ];
    [ "List"; "fast_sort" ]; [ "Array"; "sort" ]; [ "Array"; "stable_sort" ];
  ]

(* Unambiguous IO sinks.  [sprintf]/[asprintf] build strings and are pure;
   [fprintf] is excluded because a pp function cannot know whether its
   formatter argument reaches a real channel. *)
let io_single_idents =
  [
    "print_string"; "print_endline"; "print_newline"; "print_char"; "print_int";
    "print_float"; "print_bytes"; "prerr_string"; "prerr_endline"; "prerr_newline";
    "prerr_char"; "prerr_int"; "prerr_float"; "prerr_bytes"; "read_line"; "read_int";
    "read_int_opt"; "read_float"; "read_float_opt"; "output_string"; "output_bytes";
    "output_char"; "output_byte"; "output_value"; "output_binary_int"; "open_in";
    "open_in_bin"; "open_in_gen"; "open_out"; "open_out_bin"; "open_out_gen";
    "close_in"; "close_in_noerr"; "close_out"; "close_out_noerr"; "input_line";
    "input_char"; "input_byte"; "input_value"; "really_input_string"; "input";
    "in_channel_length"; "out_channel_length"; "flush"; "flush_all";
    "stdin"; "stdout"; "stderr";
  ]

let io_suffixes =
  [
    [ "Printf"; "printf" ]; [ "Printf"; "eprintf" ];
    [ "Format"; "printf" ]; [ "Format"; "eprintf" ];
    [ "Format"; "std_formatter" ]; [ "Format"; "err_formatter" ];
    [ "Sys"; "command" ]; [ "Sys"; "remove" ]; [ "Sys"; "rename" ];
    [ "Sys"; "mkdir" ]; [ "Sys"; "rmdir" ]; [ "Sys"; "readdir" ];
    [ "Sys"; "chdir" ]; [ "Sys"; "getcwd" ]; [ "Sys"; "is_directory" ];
    [ "Sys"; "file_exists" ];
    [ "Unix"; "openfile" ]; [ "Unix"; "read" ]; [ "Unix"; "write" ];
    [ "Unix"; "close" ]; [ "Unix"; "system" ]; [ "Unix"; "mkdir" ];
    [ "Unix"; "unlink" ]; [ "Unix"; "rename" ]; [ "Unix"; "stat" ];
  ]

let io_of_path path =
  match path with
  | [ x ] when List.mem x io_single_idents -> Some x
  | [ "Stdlib"; x ] when List.mem x io_single_idents -> Some x
  | _ -> (
      match List.find_opt (fun suffix -> has_suffix ~suffix path) io_suffixes with
      | Some suffix -> Some (String.concat "." suffix)
      | None -> (
          match List.rev path with
          | f :: m :: _ when String.equal m "In_channel" || String.equal m "Out_channel" ->
              Some (m ^ "." ^ f)
          | _ -> None))

(* Global [Random.*] draws from process-wide hidden state; seeded
   [Random.State.*] is deterministic and exempt (its [State] component keeps
   the second-to-last element from being ["Random"]). *)
let nondet_of_path path =
  match List.rev path with
  | f :: m :: _ when String.equal m "Random" -> Some ("Random." ^ f)
  | _ ->
      List.find_map
        (fun (suffix, name) -> if has_suffix ~suffix path then Some name else None)
        [
          ([ "Unix"; "gettimeofday" ], "Unix.gettimeofday");
          ([ "Unix"; "time" ], "Unix.time");
          ([ "Sys"; "time" ], "Sys.time");
        ]

let phys_eq_path path =
  match path with
  | [ "==" ] | [ "!=" ] | [ "Stdlib"; "==" ] | [ "Stdlib"; "!=" ] -> true
  | _ -> false

(* The parallel fan-out entry points (mirrors Races.par_entries). *)
let par_entry_suffixes =
  [ [ "Par"; "map" ]; [ "Par"; "map_list" ]; [ "Par"; "iter" ]; [ "Domain"; "spawn" ] ]

let float_ops = [ "+."; "-."; "*."; "/." ]

(* --------------------------------------------------- small AST predicates -- *)

let subject_arg args =
  List.find_map
    (fun (label, (a : expression)) ->
      match label with Asttypes.Nolabel -> Some a | _ -> None)
    args

(* The second positional argument (for element-first container ops). *)
let second_arg args =
  match
    List.filter_map
      (fun (label, (a : expression)) ->
        match label with Asttypes.Nolabel -> Some a | _ -> None)
      args
  with
  | _ :: a :: _ -> Some a
  | _ -> None

let rec head_ident_name (e : expression) =
  match e.pexp_desc with
  | Pexp_ident { txt = Longident.Lident x; _ } -> Some x
  | Pexp_field (b, _) -> head_ident_name b
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> head_ident_name e
  | _ -> None

(* Symbolic identity of a target expression ("pool.lock", "t.docs"). *)
let rec sym (e : expression) =
  match e.pexp_desc with
  | Pexp_ident lid -> Some (String.concat "." (Longident.flatten lid.txt))
  | Pexp_field (b, lid) -> (
      match sym b with
      | Some s -> (
          match List.rev (Longident.flatten lid.txt) with
          | f :: _ -> Some (s ^ "." ^ f)
          | [] -> None)
      | None -> None)
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) | Pexp_open (_, e) -> sym e
  | _ -> None

let rec is_closure (e : expression) =
  match e.pexp_desc with
  | Pexp_fun _ | Pexp_function _ | Pexp_newtype _ -> true
  | Pexp_constraint (e, _) | Pexp_coerce (e, _, _) -> is_closure e
  | _ -> false

let contains_float_op (e : expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident { txt = Longident.Lident op; _ } when List.mem op float_ops ->
              found := true
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* Does [e] read back the symbolic target [target] (deref or field path)? *)
let reads_target ~target (e : expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_apply
              ({ pexp_desc = Pexp_ident { txt = Longident.Lident "!"; _ }; _ }, args) -> (
              match Option.bind (subject_arg args) sym with
              | Some s when String.equal s target -> found := true
              | _ -> ())
          | Pexp_field _ -> (
              match sym e with
              | Some s when String.equal s target -> found := true
              | _ -> ())
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* Does this closure body build a list (cons, append, rev_append)? *)
let builds_list (e : expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_construct ({ txt = Longident.Lident "::"; _ }, Some _) -> found := true
          | Pexp_ident { txt = Longident.Lident "@"; _ } -> found := true
          | Pexp_ident lid
            when List.exists
                   (fun suffix -> has_suffix ~suffix (Longident.flatten lid.txt))
                   [ [ "List"; "rev_append" ]; [ "List"; "append" ]; [ "List"; "cons" ];
                     [ "Seq"; "cons" ] ] ->
              found := true
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

let contains_sort (e : expression) =
  let found = ref false in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          (match e.pexp_desc with
          | Pexp_ident lid
            when List.exists
                   (fun suffix -> has_suffix ~suffix (Longident.flatten lid.txt))
                   sort_suffixes ->
              found := true
          | _ -> ());
          if not !found then Ast_iterator.default_iterator.expr it e);
    }
  in
  it.expr it e;
  !found

(* Read-modify-write float updates ([t := !t +. x], [r.sum <- r.sum +. x])
   whose target head is not exempted (per-call raw locals for a whole node,
   closure-bound names for a parallel task body).  [stack0] seeds the
   suppression stack with the enclosing binding's attributes; the [bool] per
   site is "suppressed by an [@lint.allow "N002"] attribute". *)
let float_acc_sites ?(stack0 = []) ~exempt (e : expression) =
  let acc = ref [] in
  let stack = ref [ stack0 ] in
  let active id = List.exists (List.mem id) !stack in
  let exempted base =
    match head_ident_name base with Some x -> exempt x | None -> false
  in
  let record loc tsym =
    acc := (loc, Printf.sprintf "float accumulation into %s" tsym, active "N002") :: !acc
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          stack := Suppress.allow_ids e.pexp_attributes :: !stack;
          (match e.pexp_desc with
          | Pexp_apply
              ( { pexp_desc = Pexp_ident { txt = Longident.Lident ":="; _ }; _ },
                (Asttypes.Nolabel, target) :: (Asttypes.Nolabel, value) :: _ ) -> (
              match sym target with
              | Some tsym
                when (not (exempted target))
                     && contains_float_op value
                     && reads_target ~target:tsym value ->
                  record e.pexp_loc tsym
              | _ -> ())
          | Pexp_setfield (base, flid, value) -> (
              match (sym base, List.rev (Longident.flatten flid.txt)) with
              | Some bsym, f :: _ ->
                  let tsym = bsym ^ "." ^ f in
                  if
                    (not (exempted base))
                    && contains_float_op value
                    && reads_target ~target:tsym value
                  then record e.pexp_loc tsym
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e;
          stack := List.tl !stack);
    }
  in
  it.expr it e;
  List.rev !acc

(* --------------------------------------------------------- internal state -- *)

type info = {
  locals : (string, string) Hashtbl.t;  (* raw per-call allocations, name -> kind *)
  calls : (string * string) list;       (* resolved references, shadow-skipped, sorted *)
  local_flags : int;
  io : site list;
  order : site list;                    (* N001 witnesses *)
  writes : site list;                   (* shared-target writes, E002 witnesses *)
  mutations : site list;                (* catalog/store mutator refs, D003 *)
  globals : race_witness list;          (* direct raw-global refs, via = [] *)
  accs : acc_witness list;              (* float accumulations, via = [] *)
  fanout : bool;                        (* references a Par/Domain fan-out *)
  sum_list : bool;                      (* references Par.sum_list *)
  ffolds : site list;                   (* float List/Array.fold_left sites *)
  blocked : bool;                       (* lock-disciplined or allow "R001" *)
}

type summary = {
  mutable total : int;
  race : (string, race_witness) Hashtbl.t;  (* loc+global -> witness *)
  muts : (string, site) Hashtbl.t;          (* loc -> mutator site *)
  faccs : (string, acc_witness) Hashtbl.t;  (* loc -> accumulation *)
}

type t = {
  graph : Callgraph.t;
  infos : (string * string, info) Hashtbl.t;
  sums : (string * string, summary) Hashtbl.t;
  sorted : Callgraph.node list;
  mut_hosts : (string, (string * string) list) Hashtbl.t;
      (* mutator-site loc -> keys of every node whose summary contains it *)
  fields : (string, (string, unit) Hashtbl.t) Hashtbl.t;
      (* unit path -> mutable field names declared there.  Kept per-unit on
         purpose: classifying a record literal by a field name that is only
         [mutable] in some *other* unit's unrelated type would invent
         findings. *)
  raw_memo : (string * string, string option) Hashtbl.t;
}

let fields_of t (u : Callgraph.unit_info) =
  match Hashtbl.find_opt t.fields u.path with
  | Some f -> f
  | None ->
      let f = mutable_field_names u.structure in
      Hashtbl.replace t.fields u.path f;
      f

(* Is this graph node raw module-toplevel mutable state?  Returns the
   allocator kind ("ref", "Hashtbl.create", ...).  A node carrying
   [@lint.allow "R001"] never classifies as raw: the suppression covers
   every access to it. *)
let raw_global t (n : Callgraph.node) =
  let k = Callgraph.key n in
  match Hashtbl.find_opt t.raw_memo k with
  | Some r -> r
  | None ->
      let r =
        if allow "R001" n.attrs then None
        else
          match d001_hits (fields_of t n.u) [] n.expr with
          | [] -> None
          | (_, what) :: _ -> Some what
      in
      Hashtbl.replace t.raw_memo k r;
      r

(* ------------------------------------------------------ per-node local scan -- *)

let scan_node t (n : Callgraph.node) =
  let graph = t.graph in
  let mutable_fields = fields_of t n.u in
  let locals = raw_locals_of mutable_fields n.expr in
  let bound = bound_vars n.expr in
  let has_sort = contains_sort n.expr in
  let calls = Hashtbl.create 8 in
  let flags = ref 0 in
  let io = ref [] and order = ref [] and writes = ref [] in
  let mutations = ref [] and globals = ref [] and ffolds = ref [] in
  let fanout = ref false and sum_list = ref false in
  let set k = flags := !flags lor kind_bit k in
  let stack = ref [ Suppress.allow_ids n.attrs ] in
  let active id = List.exists (List.mem id) !stack in
  let local_target target =
    match Option.bind target head_ident_name with
    | Some x -> Hashtbl.mem locals x
    | None -> false
  in
  let record_write what loc =
    set Writes_mutable;
    writes := { s_loc = loc; s_what = what; s_suppressed = active "E002" } :: !writes
  in
  (* Classification of one (shadow-checked) identifier reference. *)
  let classify_ident path loc =
    let expanded = Callgraph.expand graph n.u path in
    (if List.exists (fun suffix -> has_suffix ~suffix expanded) par_entry_suffixes then
       fanout := true);
    (if has_suffix ~suffix:[ "Par"; "sum_list" ] expanded then sum_list := true);
    (match mutator_of_path expanded with
    | Some m ->
        set Writes_mutable;
        if not (active "D003") then
          mutations := { s_loc = loc; s_what = m; s_suppressed = false } :: !mutations
    | None -> ());
    let targets = Callgraph.resolve graph n.u path in
    if targets = [] then begin
      (* No project binding answers to this path: classify stdlib/runtime
         builtins.  Gating on empty resolution keeps a sibling binding that
         happens to share a builtin's name (an [input] helper, say) from
         classifying as the builtin. *)
      (match io_of_path path with
      | Some what ->
          set Performs_io;
          io := { s_loc = loc; s_what = what; s_suppressed = active "E001" } :: !io
      | None -> ());
      (match nondet_of_path path with Some _ -> set Nondeterministic | None -> ());
      if phys_eq_path path then set Order_dependent
    end
    else
      List.iter
        (fun (tgt : Callgraph.node) ->
          let tk = Callgraph.key tgt in
          if tk <> Callgraph.key n then Hashtbl.replace calls tk ();
          match raw_global t tgt with
          | Some kind ->
              set Reads_mutable;
              globals :=
                {
                  w_loc = loc;
                  w_global = tgt.name;
                  w_kind = kind;
                  w_path = tgt.u.path;
                  w_via = [];
                  w_suppressed = active "R001";
                }
                :: !globals
          | None -> ())
        targets
  in
  let it =
    {
      Ast_iterator.default_iterator with
      expr =
        (fun it e ->
          stack := Suppress.allow_ids e.pexp_attributes :: !stack;
          (match e.pexp_desc with
          | Pexp_ident lid -> (
              let path = Longident.flatten lid.txt in
              match path with
              | [ x ] when Hashtbl.mem bound x -> ()  (* shadowed by a binder *)
              | _ -> classify_ident path e.pexp_loc)
          | Pexp_apply ({ pexp_desc = Pexp_ident lid; _ }, args) -> (
              let path = Longident.flatten lid.txt in
              let target = subject_arg args in
              match path with
              | [ ":=" ] | [ "Stdlib"; ":=" ] ->
                  if not (local_target target) then
                    record_write
                      (match Option.bind target sym with
                      | Some s -> Printf.sprintf "assignment to %s" s
                      | None -> "ref assignment")
                      e.pexp_loc
              | [ "incr" ] | [ "Stdlib"; "incr" ] | [ "decr" ] | [ "Stdlib"; "decr" ] ->
                  if not (local_target target) then
                    record_write
                      (match Option.bind target sym with
                      | Some s -> Printf.sprintf "counter update of %s" s
                      | None -> "counter update")
                      e.pexp_loc
              | [ "!" ] | [ "Stdlib"; "!" ] ->
                  if not (local_target target) then set Reads_mutable
              | _ ->
                  (match container_mutator_of_path path with
                  | Some what ->
                      let target =
                        if List.mem what element_first_mutators then second_arg args
                        else target
                      in
                      if not (local_target target) then
                        record_write
                          (match Option.bind target sym with
                          | Some s -> Printf.sprintf "%s on %s" what s
                          | None -> what)
                          e.pexp_loc
                  | None -> ());
                  (if container_reader_of_path path && not (local_target target) then
                     set Reads_mutable);
                  (if has_suffix ~suffix:[ "Atomic"; "get" ] path then set Reads_mutable);
                  (if
                     List.exists
                       (fun f -> has_suffix ~suffix:[ "Atomic"; f ] path)
                       atomic_writers
                   then
                     (* Synchronized: a write, but never a shared-write
                        (E002) witness. *)
                     set Writes_mutable);
                  (if
                     (has_suffix ~suffix:[ "List"; "fold_left" ] path
                     || has_suffix ~suffix:[ "Array"; "fold_left" ] path)
                     && (match args with
                        | (Asttypes.Nolabel, f) :: _ -> contains_float_op f
                        | _ -> false)
                   then
                     ffolds :=
                       {
                         s_loc = e.pexp_loc;
                         s_what = String.concat "." path ^ " over floats";
                         s_suppressed = active "N002";
                       }
                       :: !ffolds);
                  (match
                     List.find_opt
                       (fun (suffix, _) -> has_suffix ~suffix path)
                       order_sources
                   with
                  | Some (_, what) -> (
                      set Order_dependent;
                      let closure =
                        List.find_map
                          (fun (label, (a : expression)) ->
                            match label with
                            | Asttypes.Nolabel when is_closure a -> Some a
                            | _ -> None)
                          args
                      in
                      match closure with
                      | Some c when builds_list c && not has_sort ->
                          order :=
                            {
                              s_loc = e.pexp_loc;
                              s_what = what;
                              s_suppressed = active "N001";
                            }
                            :: !order
                      | _ -> ())
                  | None ->
                      if List.exists (fun suffix -> has_suffix ~suffix path) seq_sources
                      then set Order_dependent))
          | Pexp_setfield (base, flid, _) ->
              let base_local =
                match head_ident_name base with
                | Some x -> Hashtbl.mem locals x
                | None -> false
              in
              if not base_local then
                record_write
                  (let fname =
                     match List.rev (Longident.flatten flid.txt) with
                     | f :: _ -> f
                     | [] -> "?"
                   in
                   match sym base with
                   | Some s -> Printf.sprintf "mutable-field write %s.%s" s fname
                   | None -> Printf.sprintf "mutable-field write .%s" fname)
                  e.pexp_loc
          | Pexp_field (_, flid) -> (
              match List.rev (Longident.flatten flid.txt) with
              | f :: _ when Hashtbl.mem mutable_fields f -> set Reads_mutable
              | _ -> ())
          | _ -> ());
          Ast_iterator.default_iterator.expr it e;
          stack := List.tl !stack);
    }
  in
  it.expr it n.expr;
  let accs =
    List.map
      (fun (loc, what, suppressed) ->
        set Nondeterministic;
        { a_loc = loc; a_what = what; a_via = []; a_suppressed = suppressed })
      (float_acc_sites
         ~stack0:(Suppress.allow_ids n.attrs)
         ~exempt:(fun x -> Hashtbl.mem locals x)
         n.expr)
  in
  {
    locals;
    calls = List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) calls []);
    local_flags = !flags;
    io = List.rev !io;
    order = List.rev !order;
    writes = List.rev !writes;
    mutations = List.rev !mutations;
    globals = List.rev !globals;
    accs;
    fanout = !fanout;
    sum_list = !sum_list;
    ffolds = List.rev !ffolds;
    blocked = allow "R001" n.attrs || contains_mutex_lock n.expr;
  }

(* ---------------------------------------------------------------- fixpoint -- *)

let analyze graph =
  let t =
    {
      graph;
      infos = Hashtbl.create 256;
      sums = Hashtbl.create 256;
      sorted =
        List.sort
          (fun a b -> compare (Callgraph.key a) (Callgraph.key b))
          (Callgraph.nodes graph);
      mut_hosts = Hashtbl.create 64;
      fields = Hashtbl.create 16;
      raw_memo = Hashtbl.create 64;
    }
  in
  (* Local pass. *)
  List.iter
    (fun n ->
      let info = scan_node t n in
      Hashtbl.replace t.infos (Callgraph.key n) info;
      let s =
        {
          total = info.local_flags;
          race = Hashtbl.create 4;
          muts = Hashtbl.create 4;
          faccs = Hashtbl.create 4;
        }
      in
      if not info.blocked then
        List.iter
          (fun w ->
            let key = loc_key w.w_loc ^ "|" ^ w.w_global in
            if not (Hashtbl.mem s.race key) then
              Hashtbl.replace s.race key { w with w_via = [ n.name ] })
          info.globals;
      List.iter
        (fun (m : site) ->
          let key = loc_key m.s_loc in
          if not (Hashtbl.mem s.muts key) then Hashtbl.replace s.muts key m)
        info.mutations;
      List.iter
        (fun a ->
          let key = loc_key a.a_loc in
          if not (Hashtbl.mem s.faccs key) then
            Hashtbl.replace s.faccs key { a with a_via = [ n.name ] })
        info.accs;
      Hashtbl.replace t.sums (Callgraph.key n) s)
    t.sorted;
  (* Bottom-up joins to a fixpoint.  Monotone: flag sets only grow and
     witness tables only gain keys (the first call chain to arrive wins and
     is never replaced), so the sweep terminates even through recursion.
     Race witnesses respect lock discipline; mutation and float-accumulation
     witnesses propagate regardless — a mutex neither sanctions a what-if
     mutation nor fixes a summation order. *)
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun n ->
        let k = Callgraph.key n in
        let info = Hashtbl.find t.infos k in
        let s = Hashtbl.find t.sums k in
        List.iter
          (fun ck ->
            match Hashtbl.find_opt t.sums ck with
            | None -> ()
            | Some cs ->
                let joined = s.total lor cs.total in
                if joined <> s.total then begin
                  s.total <- joined;
                  changed := true
                end;
                if not info.blocked then
                  Hashtbl.iter
                    (fun wkey w ->
                      if not (Hashtbl.mem s.race wkey) then begin
                        Hashtbl.replace s.race wkey { w with w_via = n.name :: w.w_via };
                        changed := true
                      end)
                    cs.race;
                Hashtbl.iter
                  (fun mkey m ->
                    if not (Hashtbl.mem s.muts mkey) then begin
                      Hashtbl.replace s.muts mkey m;
                      changed := true
                    end)
                  cs.muts;
                Hashtbl.iter
                  (fun akey a ->
                    if not (Hashtbl.mem s.faccs akey) then begin
                      Hashtbl.replace s.faccs akey { a with a_via = n.name :: a.a_via };
                      changed := true
                    end)
                  cs.faccs)
          info.calls)
      t.sorted
  done;
  (* Reverse index for D003: which bindings reach each mutator site. *)
  List.iter
    (fun n ->
      let k = Callgraph.key n in
      let s = Hashtbl.find t.sums k in
      Hashtbl.iter
        (fun _ (m : site) ->
          let lkey = loc_key m.s_loc in
          let prev = Option.value ~default:[] (Hashtbl.find_opt t.mut_hosts lkey) in
          Hashtbl.replace t.mut_hosts lkey (k :: prev))
        s.muts)
    t.sorted;
  t

(* --------------------------------------------------------------- accessors -- *)

let info t n = Hashtbl.find t.infos (Callgraph.key n)
let summary t n = Hashtbl.find t.sums (Callgraph.key n)

let local_effects t n = kinds_of_bits (info t n).local_flags
let total_effects t n = kinds_of_bits (summary t n).total
let local_io t n = (info t n).io
let local_order t n = (info t n).order
let local_writes t n = (info t n).writes
let local_mutations t n = (info t n).mutations
let raw_locals t n = (info t n).locals
let lock_disciplined t n = (info t n).blocked
let has_par_fanout t n = (info t n).fanout
let uses_sum_list t n = (info t n).sum_list
let float_folds t n = (info t n).ffolds

let calls t n =
  List.filter_map
    (fun (unit_path, name) -> Callgraph.find_node t.graph ~unit_path ~name)
    (info t n).calls

let race_witnesses t n =
  let s = summary t n in
  Hashtbl.fold (fun _ w acc -> w :: acc) s.race []
  |> List.sort (fun a b ->
         compare (loc_key a.w_loc, a.w_global) (loc_key b.w_loc, b.w_global))

let float_accumulations t n =
  let s = summary t n in
  Hashtbl.fold (fun _ a acc -> a :: acc) s.faccs []
  |> List.sort (fun a b -> compare (loc_key a.a_loc) (loc_key b.a_loc))

let mutation_entries t loc =
  let keys = Option.value ~default:[] (Hashtbl.find_opt t.mut_hosts (loc_key loc)) in
  List.filter_map
    (fun (unit_path, name) -> Callgraph.find_node t.graph ~unit_path ~name)
    keys
  |> List.sort_uniq (fun a b -> compare (Callgraph.key a) (Callgraph.key b))

(* -------------------------------------------------------------------- dump -- *)

let dump t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (n : Callgraph.node) ->
      let i = info t n in
      let s = summary t n in
      Buffer.add_string buf
        (Printf.sprintf "%s %s: local=%s total=%s\n" n.u.path n.name
           (bits_to_string i.local_flags)
           (bits_to_string s.total)))
    t.sorted;
  Buffer.contents buf
