(** Analyzer driver: parse with compiler-libs once, build the cross-unit
    call graph once, run the unit-local and whole-program checks, apply the
    allow file. *)

type error = { path : string; message : string }

type report = {
  findings : Finding.t list;   (** kept findings, sorted *)
  suppressed : Finding.t list; (** findings matched by an allow-file entry *)
  errors : error list;         (** unreadable / unparsable inputs *)
}

val empty_report : report

(** Lint one source string as a one-unit program (every parsetree-level
    check including D003, the R-series and the flow-sensitive L/X-series;
    no H001). *)
val lint_source :
  ?config:Checks.config ->
  filename:string ->
  string ->
  (Finding.t list, error) result

(** Lint one file from disk. *)
val lint_file : ?config:Checks.config -> string -> (Finding.t list, error) result

(** Lint every [.ml] under [paths] (recursively; skips [_build] and dot
    directories) as one program sharing one call graph, including the H001
    interface check, then apply the allow-file [entries]. *)
val lint_paths :
  ?config:Checks.config -> ?allow:Suppress.entry list -> string list -> report

(** Deterministic Graphviz rendering of the call graph over every [.ml]
    under [paths], plus any walk/parse errors (the graph covers the parsable
    subset). *)
val callgraph_dot : string list -> string * error list

(** Deterministic per-binding effect-summary dump ({!Effects.dump}) over
    every [.ml] under [paths], plus any walk/parse errors (the dump covers
    the parsable subset). *)
val effects_dump : string list -> string * error list

(** Just the flow-sensitive L/X-series ({!Dataflow.check}) over every
    [.ml] under [paths], plus any walk/parse errors (the bench harness's
    [lint.dataflow] exhibit). *)
val dataflow_findings : string list -> Finding.t list * error list

(** Schema version of {!report_to_json}'s envelope. *)
val json_schema_version : int

(** The versioned machine-readable report: schema version, check catalog,
    findings sorted by (file, line, col, id), suppressed totals per check
    ID, walk/parse errors.  Byte-stable for identical inputs
    (fixture-locked in test/).  [only] restricts the emitted "checks"
    array to the given IDs (the --only/--skip filter); the caller filters
    the findings themselves. *)
val report_to_json : ?only:string list -> report -> string
