(** Analyzer driver: parse with compiler-libs, run checks, apply the allow
    file. *)

type error = { path : string; message : string }

type report = {
  findings : Finding.t list;   (** kept findings, sorted *)
  suppressed : Finding.t list; (** findings matched by an allow-file entry *)
  errors : error list;         (** unreadable / unparsable inputs *)
}

val empty_report : report

(** Lint one source string (parsetree-level checks only; no H001). *)
val lint_source :
  ?config:Checks.config ->
  filename:string ->
  string ->
  (Finding.t list, error) result

(** Lint one file from disk. *)
val lint_file : ?config:Checks.config -> string -> (Finding.t list, error) result

(** Lint every [.ml] under [paths] (recursively; skips [_build] and dot
    directories), including the H001 interface check, then apply the
    allow-file [entries]. *)
val lint_paths :
  ?config:Checks.config -> ?allow:Suppress.entry list -> string list -> report
