(** Configuration search: the paper's five algorithms plus the All-Index
    reference configuration. *)

type outcome = {
  algorithm : string;
  config : Candidate.t list;
  size : int;               (** estimated total size in bytes *)
  benefit : float;          (** full-evaluation benefit of the final config *)
  optimizer_calls : int;    (** evaluator calls consumed by the search *)
  pruned : int;             (** evaluations skipped by upper-bound pruning *)
  elapsed : float;          (** seconds *)
}

(** β = 0.10, the size-expansion threshold of the heuristic search. *)
val beta_default : float

(** Basic candidates covered by a candidate. *)
val covered_basics : Candidate.set -> Candidate.t -> Candidate.t list

(** Plain greedy on individual benefit density; ignores interaction.

    With [~prune:true] (the default) candidates are cost-probed lazily: each
    starts at its {!Benefit.atomic_upper_bound} density and is only
    evaluated exactly when it reaches the front of the queue, and candidates
    that provably cannot be admitted (non-positive bound and not plan-used,
    or no remaining budget headroom) are skipped without probing.  The
    returned configuration is IDENTICAL to [~prune:false] — the bound
    dominates the exact value and the tie-breaking order is shared — only
    [optimizer_calls] drops and [pruned] rises. *)
val greedy : ?prune:bool -> Benefit.t -> Candidate.set -> budget:int -> outcome

(** Greedy with the covered-pattern bitmap and the two general-index
    admission conditions (IB and (1+β) size). *)
val greedy_heuristics :
  ?beta:float -> Benefit.t -> Candidate.set -> budget:int -> outcome

type td_variant = Lite | Full

(** Top-down DAG descent.  With [~prune:true] (the default) the search space
    is built with pruned probes ({!Benefit.useful_ids}), the Lite variant
    substitutes the exact [0. -. mc] shortcut for zero-upper-bound
    candidates, and the greedy fallback drops zero-bound candidates without
    probing.  Outcomes are identical to [~prune:false] bit-for-bit. *)
val top_down :
  ?variant:td_variant -> ?prune:bool -> Benefit.t -> Candidate.set -> budget:int -> outcome

val top_down_lite : ?prune:bool -> Benefit.t -> Candidate.set -> budget:int -> outcome
val top_down_full : ?prune:bool -> Benefit.t -> Candidate.set -> budget:int -> outcome

(** Exact 0/1 knapsack on individual benefits (optimal modulo interaction). *)
val dynamic_programming : Benefit.t -> Candidate.set -> budget:int -> outcome

(** All basic candidates: an index for every indexable workload pattern. *)
val all_index : Benefit.t -> Candidate.set -> outcome

val pp_outcome : Format.formatter -> outcome -> unit
