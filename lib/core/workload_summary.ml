(* Workload compression by basic-candidate signature (CoPhy-style).

   The advisor's benefit machinery is linear in workload size on every probe:
   what-if costs, maintenance charges and affected-set unions all walk the
   statement list.  Large workloads are dominated by repetition — the same
   query template with different constants, or literally duplicated
   statements — and every statement's interaction with the candidate space is
   fully described by its *basic-candidate signature*: the set of (table,
   pattern, type) triples the optimizer's Enumerate Indexes mode derives from
   it.  Two statements with the same signature produce the same basic
   candidates, are affected by the same candidate indexes, and differ only in
   the constants of their predicates.

   A summary therefore clusters statements by signature and runs the whole
   benefit/search loop on one representative per cluster, weighted by the
   cluster's summed frequency.  Enumerating candidates over the
   representatives yields exactly the same candidate-definition set as the
   full workload (the signature IS the enumerated pattern set), so only the
   per-statement cost estimates are approximated: the representative's cost
   stands in for its cluster-mates'.  When every cluster is cost-homogeneous
   (exact duplicates), compressed and raw recommendations coincide; otherwise
   the regret is bounded by the within-cluster cost spread.

   Signatures are sorted arrays of interned triple ids — PR 3's interner
   makes them integer comparisons, and [Optimizer.enumerate_indexes] is a
   pure statement analysis (it never invokes the cost model), so
   fingerprinting 10k statements costs milliseconds, not optimizer calls.

   DML statements additionally key on their kind and target tables: the
   maintenance charge depends on both, so an Insert and a Delete — or two
   Inserts against different tables — must never share a representative even
   if they enumerate the same patterns.

   Clusters are emitted in first-occurrence order: hash-iteration order must
   never reach the result (lint N001), and the representative list must be a
   stable function of the input list. *)

module Workload = Xia_workload.Workload
module Optimizer = Xia_optimizer.Optimizer
module Interner = Xia_xpath.Interner
module Ast = Xia_query.Ast

(* Triple interner: (table label id, pattern id, dtype tag) -> dense id.
   Toplevel is fine: the interner is internally domain-safe (atomic snapshot
   publication), and ids are only ever used for identity. *)
let atoms : (int * int * int) Interner.t = Interner.create ()

let m_statements = lazy (Xia_obs.Metrics.counter "summary.statements")
let m_clusters = lazy (Xia_obs.Metrics.counter "summary.clusters")
let g_ratio = lazy (Xia_obs.Metrics.gauge "summary.compression_ratio")

let dtype_tag = function
  | Xia_index.Index_def.Dstring -> 0
  | Xia_index.Index_def.Ddouble -> 1

(* Basic-candidate signature of a statement: the sorted interned ids of the
   (table, pattern, type) triples Enumerate Indexes derives from it.  Pure
   statement analysis — no cost-model invocation is counted or made. *)
let signature catalog stmt =
  let triples = Optimizer.enumerate_indexes catalog stmt in
  let ids =
    List.map
      (fun (table, pattern, dtype) ->
        Interner.intern atoms
          (Interner.label table, Xia_xpath.Pattern.id pattern, dtype_tag dtype))
      triples
  in
  let arr = Array.of_list (List.sort_uniq compare ids) in
  arr

let kind_tag = function
  | Ast.Select _ -> 0
  | Ast.Insert _ -> 1
  | Ast.Delete _ -> 2
  | Ast.Update _ -> 3

(* Cluster key: statement kind, then (for DML) the sorted target-table ids
   and a separator, then the signature.  Queries with equal signatures
   cluster together; DML only merges within the same kind and table set. *)
let cluster_key catalog (stmt : Ast.statement) =
  let sg = signature catalog stmt in
  let kind = kind_tag stmt in
  if kind = 0 then Array.append [| 0 |] sg
  else
    let tables =
      Array.of_list (List.sort_uniq compare (List.map Interner.label (Ast.tables stmt)))
    in
    Array.concat [ [| kind |]; tables; [| -1 |]; sg ]

type cluster = {
  rep : int;            (* index (into the source workload) of the representative *)
  members : int list;   (* member indices, ascending; head = rep *)
  weight : float;       (* summed frequency of the members *)
}

type t = {
  source : Workload.t;
  clusters : cluster array;  (* first-occurrence order *)
  compressed : bool;
}

type info = {
  statements : int;
  cluster_count : int;
  compressed : bool;
}

let raw (workload : Workload.t) =
  let clusters =
    Array.of_list
      (List.mapi
         (fun i (item : Workload.item) ->
           { rep = i; members = [ i ]; weight = item.freq })
         workload)
  in
  { source = workload; clusters; compressed = false }

let compress catalog (workload : Workload.t) =
  Xia_obs.Trace.with_span "summary.compress"
    ~args:(fun () -> [ ("statements", string_of_int (List.length workload)) ])
  @@ fun () ->
  let by_key = Hashtbl.create 64 in
  let order = ref [] in  (* cluster reps in reverse first-occurrence order *)
  List.iteri
    (fun i (item : Workload.item) ->
      let key = cluster_key catalog item.statement in
      match Hashtbl.find_opt by_key key with
      | Some (members, weight) ->
          Hashtbl.replace by_key key (i :: members, weight +. item.freq)
      | None ->
          order := (key, i) :: !order;
          Hashtbl.replace by_key key ([ i ], item.freq))
    workload;
  let clusters =
    Array.of_list
      (List.rev_map
         (fun (key, rep) ->
           let members, weight = Hashtbl.find by_key key in
           { rep; members = List.rev members; weight })
         !order)
  in
  let t = { source = workload; clusters; compressed = true } in
  if Xia_obs.Obs.on () then begin
    Xia_obs.Metrics.add (Lazy.force m_statements) (List.length workload);
    Xia_obs.Metrics.add (Lazy.force m_clusters) (Array.length clusters);
    let n = List.length workload in
    if Array.length clusters > 0 then
      Xia_obs.Metrics.set (Lazy.force g_ratio)
        (float_of_int n /. float_of_int (Array.length clusters))
  end;
  t

let source t = t.source

let statement_count t = List.length t.source

let cluster_count t = Array.length t.clusters

let is_compressed (t : t) = t.compressed

let compression_ratio t =
  let c = cluster_count t in
  if c = 0 then 1.0 else float_of_int (statement_count t) /. float_of_int c

let info (t : t) =
  { statements = statement_count t; cluster_count = cluster_count t;
    compressed = t.compressed }

(* The summarized workload the benefit/search loop runs on: one
   representative item per cluster, in cluster order.  Representatives keep
   their own label/statement/frequency; the cluster weight lives in
   {!weights} (so the raw path is the identity and weighted sums stay in one
   code path in [Benefit]). *)
let workload t =
  let items = Array.of_list t.source in
  Array.to_list (Array.map (fun c -> items.(c.rep)) t.clusters)

(* Per-representative weights, aligned with {!workload}: the summed
   frequency of each cluster (for a raw summary, exactly the item
   frequencies). *)
let weights t = Array.map (fun c -> c.weight) t.clusters

(* Cluster membership as lists of source indices, for tests and reporting. *)
let members t = Array.to_list (Array.map (fun c -> c.members) t.clusters)

let pp_info ppf i =
  if i.compressed then
    Fmt.pf ppf "%d statements -> %d clusters (%.1fx)" i.statements
      i.cluster_count
      (if i.cluster_count = 0 then 1.0
       else float_of_int i.statements /. float_of_int i.cluster_count)
  else Fmt.pf ppf "%d statements (uncompressed)" i.statements
