(* Candidate generalization (Section V of the paper).

   Pairs of index patterns are generalized with generalizeStep (Algorithm 1)
   and advanceStep (Table II), then rewritten with rule 0 (middle wildcard
   steps fold into a descendant axis).  The paper's worked examples pin down
   the exact semantics:

   - /Security/Symbol ⊕ /Security/SecInfo/*/Sector → /Security//*
   - /a/b/d ⊕ /a/d/b/d → { /a//d, /a//b/d }

   In particular, advanceStep rule 4's first alternative advances both
   pointers WITHOUT appending a filler step: the worked example issues
   generalizeStep(/Security, /Symbol, /SecInfo/x/Sector) with genXPath equal
   to /Security, not /Security/x (writing x for the star).  The two
   re-occurrence alternatives and rules 2-3 do append a wildcard filler for
   the steps they skip. *)

module Pattern = Xia_xpath.Pattern
module Xp = Xia_xpath.Ast
module Index_def = Xia_index.Index_def

let wildcard_step = { Pattern.axis = Xp.Child; test = Xp.Elem Xp.Wildcard }

let gen_axis a b =
  match a, b with
  | Xp.Descendant, _ | _, Xp.Descendant -> Xp.Descendant
  | Xp.Child, Xp.Child -> Xp.Child

(* Generalize two name tests of the same node kind. *)
let gen_test a b =
  match a, b with
  | Xp.Elem ta, Xp.Elem tb ->
      Some (Xp.Elem (if Xp.equal_name_test ta tb then ta else Xp.Wildcard))
  | Xp.Attr ta, Xp.Attr tb ->
      Some (Xp.Attr (if Xp.equal_name_test ta tb then ta else Xp.Wildcard))
  | Xp.Elem _, Xp.Attr _ | Xp.Attr _, Xp.Elem _ -> None

(* [pi] and [pj] are the remaining steps of each expression, with the head as
   the "current node"; [gen] is the reversed generalized path built so far. *)
let rec generalize_step gen pi pj acc =
  match pi, pj with
  | [], _ | _, [] -> acc (* exhausted expressions cannot be generalized *)
  | [ _ ], _ :: _ :: _ | _ :: _ :: _, [ _ ] ->
      (* Exactly one expression is at its last step: only advance. *)
      advance_step gen pi pj acc
  | si :: _, sj :: _ -> (
      match gen_test si.Pattern.test sj.Pattern.test with
      | None -> acc (* element/attribute kind mismatch: no generalization *)
      | Some test ->
          let node = { Pattern.axis = gen_axis si.Pattern.axis sj.Pattern.axis; test } in
          advance_step (node :: gen) pi pj acc)

and advance_step gen pi pj acc =
  match pi, pj with
  | [], _ | _, [] -> acc
  | [ _ ], [ _ ] -> gen :: acc (* rule 1: both at their last step *)
  | [ _ ], _ :: ((_ :: _) as rest_j) ->
      (* rule 2: fast-forward pj to its last step, filler for skipped steps *)
      let last_j = [ List.nth rest_j (List.length rest_j - 1) ] in
      generalize_step (wildcard_step :: gen) pi last_j acc
  | _ :: ((_ :: _) as rest_i), [ _ ] ->
      (* rule 3: symmetric *)
      let last_i = [ List.nth rest_i (List.length rest_i - 1) ] in
      generalize_step (wildcard_step :: gen) last_i pj acc
  | _ :: ((si' :: _) as rest_i), _ :: ((sj' :: _) as rest_j) ->
      (* rule 4: advance both; also try re-occurrence alignments *)
      let acc = generalize_step gen rest_i rest_j acc in
      let occurrence_of step steps =
        let rec drop = function
          | [] -> None
          | s :: _ as l when Xp.equal_node_test s.Pattern.test step.Pattern.test -> Some l
          | _ :: rest -> drop rest
        in
        drop steps
      in
      let acc =
        match occurrence_of si' rest_j with
        | Some pj_aligned when pj_aligned != rest_j ->
            generalize_step (wildcard_step :: gen) rest_i pj_aligned acc
        | Some _ | None -> acc
      in
      let acc =
        match occurrence_of sj' rest_i with
        | Some pi_aligned when pi_aligned != rest_i ->
            generalize_step (wildcard_step :: gen) pi_aligned rest_j acc
        | Some _ | None -> acc
      in
      acc

(* All generalizations of a pattern pair, normalized by rewrite rule 0 and
   deduplicated. *)
let pair p q =
  if p = [] || q = [] then []
  else begin
    let raw = generalize_step [] p q [] in
    let normalized =
      List.map (fun rev -> Pattern.rewrite_middle_wildcards (List.rev rev)) raw
    in
    let seen = Hashtbl.create 8 in
    List.filter
      (fun pat ->
        let k = Pattern.key pat in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      normalized
  end

(* Compatibility: only candidates over the same table with the same data type
   are generalized together (the paper's "data type and namespace" check). *)
let compatible (a : Candidate.t) (b : Candidate.t) =
  String.equal a.def.Index_def.table b.def.Index_def.table
  && Index_def.equal_data_type a.def.Index_def.dtype b.def.Index_def.dtype

(* Guard against pathological explosion on adversarial workloads; far above
   anything the experiments produce. *)
let max_candidates = 20_000

let m_rounds = lazy (Xia_obs.Metrics.counter "generalize.rounds")
let m_added = lazy (Xia_obs.Metrics.counter "generalize.added")

(* Expand the candidate set to a fixpoint: repeatedly generalize every
   compatible pair (including newly produced generals), wiring DAG edges as
   we go. *)
let close set =
  let rounds = ref 0 in
  let before = Candidate.cardinality set in
  Xia_obs.Trace.with_span "generalize.close"
    ~args:(fun () ->
      [
        ("rounds", string_of_int !rounds);
        ("added", string_of_int (Candidate.cardinality set - before));
      ])
  @@ fun () ->
  let queue = Queue.create () in
  List.iter (fun c -> Queue.add c queue) (Candidate.to_list set);
  let processed = Hashtbl.create 64 in
  let consider (a : Candidate.t) (b : Candidate.t) =
    if a.id <> b.id && compatible a b then
      List.iter
        (fun pat ->
          let same_as_input =
            Pattern.equal pat a.def.Index_def.pattern
            || Pattern.equal pat b.def.Index_def.pattern
          in
          let def =
            Index_def.make ~table:a.def.Index_def.table ~pattern:pat
              ~dtype:a.def.Index_def.dtype ()
          in
          if same_as_input then begin
            (* One input already is the generalization of the other: record
               the edge, no new node. *)
            match Candidate.find_by_key set (Index_def.logical_key def) with
            | Some parent ->
                if parent.id <> a.id then Candidate.add_edge ~parent ~child:a;
                if parent.id <> b.id then Candidate.add_edge ~parent ~child:b
            | None -> ()
          end
          else if Candidate.cardinality set < max_candidates then begin
            let existed = Candidate.find_by_key set (Index_def.logical_key def) in
            let parent =
              match existed with
              | Some c -> c
              | None ->
                  let c = Candidate.add set ~origin:Candidate.General def in
                  Queue.add c queue;
                  c
            in
            Candidate.add_edge ~parent ~child:a;
            Candidate.add_edge ~parent ~child:b
          end)
        (pair a.def.Index_def.pattern b.def.Index_def.pattern)
  in
  let rec drain () =
    match Queue.take_opt queue with
    | None -> ()
    | Some c ->
        incr rounds;
        let others = List.filter (fun o -> Hashtbl.mem processed o.Candidate.id) (Candidate.to_list set) in
        Hashtbl.replace processed c.Candidate.id ();
        List.iter (fun o -> consider c o) others;
        drain ()
  in
  drain ();
  if Xia_obs.Obs.on () then begin
    Xia_obs.Metrics.add (Lazy.force m_rounds) !rounds;
    Xia_obs.Metrics.add (Lazy.force m_added) (Candidate.cardinality set - before)
  end;
  Candidate.compute_affected set
