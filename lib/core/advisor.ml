(* The XML Index Advisor: end-to-end recommendation pipeline.

   enumerate (optimizer, Enumerate Indexes mode)
     → generalize (fixpoint + DAG)
     → search (one of five algorithms, under a disk budget)
     → recommendation with estimated speedup and optimizer-call accounting. *)

module Catalog = Xia_index.Catalog
module Index_def = Xia_index.Index_def
module Workload = Xia_workload.Workload
module Optimizer = Xia_optimizer.Optimizer
module Executor = Xia_optimizer.Executor

let log_src = Logs.Src.create "xia.advisor" ~doc:"XML Index Advisor phases"

module Log = (val Logs.src_log log_src)

(* Wall-clock: with parallel evaluation, CPU time would overstate elapsed.
   Each phase also records a trace span when observability is enabled. *)
let timed what f =
  let r, dt = Xia_obs.Trace.timed ("advisor." ^ what) f in
  Log.info (fun m -> m "%s: %.3fs" what dt);
  r

type algorithm =
  | Greedy
  | Greedy_heuristics
  | Top_down_lite
  | Top_down_full
  | Dynamic_programming
  | All_index

let algorithm_name = function
  | Greedy -> "greedy"
  | Greedy_heuristics -> "greedy+heuristics"
  | Top_down_lite -> "top-down lite"
  | Top_down_full -> "top-down full"
  | Dynamic_programming -> "dynamic programming"
  | All_index -> "all index"

let all_algorithms =
  [ Greedy; Greedy_heuristics; Top_down_lite; Top_down_full; Dynamic_programming ]

type recommendation = {
  algorithm : algorithm;
  outcome : Search.outcome;
  base_cost : float;       (* workload cost with no indexes *)
  new_cost : float;        (* workload cost under the recommendation *)
  est_speedup : float;     (* base / new *)
  general_count : int;
  specific_count : int;
  summary : Workload_summary.info;  (* what the search actually ran on *)
}

let indexes r = List.map (fun c -> c.Candidate.def) r.outcome.Search.config

let run_search ?beta ?prune ev set ~budget = function
  | Greedy -> Search.greedy ?prune ev set ~budget
  | Greedy_heuristics -> Search.greedy_heuristics ?beta ev set ~budget
  | Top_down_lite -> Search.top_down_lite ?prune ev set ~budget
  | Top_down_full -> Search.top_down_full ?prune ev set ~budget
  | Dynamic_programming -> Search.dynamic_programming ev set ~budget
  | All_index -> Search.all_index ev set

let summarize ev algorithm (outcome : Search.outcome) =
  let base_cost = Benefit.base_workload_cost ev in
  let new_cost = Benefit.workload_cost ev outcome.Search.config in
  let general_count =
    List.length (List.filter Candidate.is_general outcome.Search.config)
  in
  {
    algorithm;
    outcome;
    base_cost;
    new_cost;
    est_speedup = (if new_cost > 0.0 then base_cost /. new_cost else 1.0);
    general_count;
    specific_count = List.length outcome.Search.config - general_count;
    summary = Workload_summary.info (Benefit.summary ev);
  }

(* Workloads at or above this size are compressed by default ([?compress]
   unset): below it, the clustering pass costs more bookkeeping than the
   probes it saves; above it, repetition is the common case.  Explicit
   [~compress:(Some _)] always wins. *)
let compress_threshold = 256

let resolve_compress compress workload =
  match compress with
  | Some b -> b
  | None -> List.length workload >= compress_threshold

let summarize_workload ~compress catalog workload =
  if compress then
    timed "workload compression" (fun () ->
        Workload_summary.compress catalog workload)
  else Workload_summary.raw workload

(* One-shot advise: builds candidates and an evaluator internally.  The
   candidate set is enumerated over the summary's REPRESENTATIVE workload —
   affected-set indices must index the evaluator's statement array — which
   yields the same candidate definitions as the full workload (clustered
   statements share their signature, hence their enumerated patterns). *)
let advise ?beta ?prune ?domains ?compress catalog workload ~budget algorithm =
  Xia_obs.Trace.with_span "advisor.advise"
    ~args:(fun () -> [ ("algorithm", algorithm_name algorithm) ])
    (fun () ->
      let compress = resolve_compress compress workload in
      let summary = summarize_workload ~compress catalog workload in
      let search_workload = Workload_summary.workload summary in
      let set =
        timed "enumerate+generalize" (fun () ->
            Enumeration.candidates catalog search_workload)
      in
      Log.info (fun m ->
          m "candidates: %d basic, %d total"
            (List.length (Candidate.basics set))
            (Candidate.cardinality set));
      let ev =
        timed "base cost evaluation" (fun () ->
            Benefit.of_summary ?domains catalog summary)
      in
      let outcome =
        timed (algorithm_name algorithm) (fun () ->
            run_search ?beta ?prune ev set ~budget algorithm)
      in
      summarize ev algorithm outcome)

(* Shared-candidate variant for sweeps: reuse the candidate set and evaluator
   across budgets/algorithms (the sub-configuration cache carries over, as in
   a long-running advisor session). *)
type session = {
  catalog : Catalog.t;
  workload : Workload.t;  (* the SOURCE workload (never the representatives) *)
  candidates : Candidate.set;
  evaluator : Benefit.t;
}

let create_session ?domains ?compress catalog workload =
  let compress = resolve_compress compress workload in
  let summary = summarize_workload ~compress catalog workload in
  let candidates =
    timed "enumerate+generalize" (fun () ->
        Enumeration.candidates catalog (Workload_summary.workload summary))
  in
  let evaluator =
    timed "base cost evaluation" (fun () ->
        Benefit.of_summary ?domains catalog summary)
  in
  { catalog; workload; candidates; evaluator }

let session_advise ?beta ?prune session ~budget algorithm =
  Xia_obs.Trace.with_span "advisor.session_advise"
    ~args:(fun () -> [ ("algorithm", algorithm_name algorithm) ])
    (fun () ->
      let outcome =
        run_search ?beta ?prune session.evaluator session.candidates ~budget
          algorithm
      in
      summarize session.evaluator algorithm outcome)

(* Estimated cost of an arbitrary workload under an arbitrary configuration
   of index definitions (used for train/test experiments where the test
   workload differs from the advisor's training workload). *)
let estimated_workload_cost catalog (workload : Workload.t) defs =
  List.fold_left
    (fun acc (item : Workload.item) ->
      acc
      +. item.freq
         *. Optimizer.statement_cost ~mode:Optimizer.Evaluate ~virtual_config:defs
              catalog item.statement)
    0.0 workload

let estimated_speedup catalog workload defs =
  let base = estimated_workload_cost catalog workload [] in
  let with_indexes = estimated_workload_cost catalog workload defs in
  if with_indexes > 0.0 then base /. with_indexes else 1.0

(* Actually materialize a configuration, run the workload, drop the indexes
   again; returns total wall-clock seconds and simulated I/O. *)
let execute_workload catalog (workload : Workload.t) defs =
  Catalog.drop_all_indexes catalog;
  List.iter (fun def -> ignore (Catalog.create_index catalog def)) defs;
  let wall = ref 0.0 and cost = ref 0.0 and rows = ref 0 in
  List.iter
    (fun (item : Workload.item) ->
      let r = Executor.run_statement catalog item.statement in
      wall := !wall +. (item.freq *. r.Executor.wall_seconds);
      cost := !cost +. (item.freq *. r.Executor.metrics.Executor.simulated_cost);
      rows := !rows + r.Executor.rows)
    workload;
  Catalog.drop_all_indexes catalog;
  (!wall, !cost, !rows)

(* Actual speedup: measured ratio between the no-index run and the configured
   run.  [`Wall] uses elapsed wall-clock time; [`Cost] the deterministic
   simulated cost of the work actually performed (pages touched, nodes
   navigated). *)
let actual_speedup ?(metric = `Cost) catalog workload defs =
  let wall0, cost0, _ = execute_workload catalog workload [] in
  let wall1, cost1, _ = execute_workload catalog workload defs in
  match metric with
  | `Wall -> if wall1 > 0.0 then wall0 /. wall1 else 1.0
  | `Cost -> if cost1 > 0.0 then cost0 /. cost1 else 1.0

(* Review the catalog's REAL indexes against a workload: recommend dropping
   any index that no plan uses, or whose maintenance charge under the
   workload exceeds the cost increase its removal would cause. *)
type drop_reason =
  | Unused
  | Maintenance_exceeds_benefit of { benefit : float; maintenance : float }

let pp_drop_reason ppf = function
  | Unused -> Fmt.string ppf "never used by any plan"
  | Maintenance_exceeds_benefit { benefit; maintenance } ->
      Fmt.pf ppf "maintenance %.0f exceeds benefit %.0f" maintenance benefit

let drop_recommendations catalog (workload : Workload.t) =
  let defs =
    List.concat_map
      (fun table ->
        List.map Xia_index.Physical_index.def (Catalog.real_indexes catalog table))
      (Catalog.table_names catalog)
  in
  let report = Report.evaluate_configuration catalog workload defs in
  List.filter_map
    (fun (d : Index_def.t) ->
      if List.exists (Index_def.same d) report.Report.unused then Some (d, Unused)
      else begin
        (* Net effect of keeping just this index vs dropping it. *)
        let without = List.filter (fun x -> not (Index_def.same x d)) defs in
        let with_cost = estimated_workload_cost catalog workload defs in
        let without_cost = estimated_workload_cost catalog workload without in
        let benefit = without_cost -. with_cost in
        let maintenance =
          Report.(evaluate_configuration catalog workload [ d ]).Report.maintenance
        in
        if maintenance > benefit then
          Some (d, Maintenance_exceeds_benefit { benefit; maintenance })
        else None
      end)
    defs

let pp_recommendation ppf r =
  Fmt.pf ppf "%s: %d indexes (%d general, %d specific), size=%d, est speedup %.2fx@."
    (algorithm_name r.algorithm)
    (List.length r.outcome.Search.config)
    r.general_count r.specific_count r.outcome.Search.size r.est_speedup;
  List.iter
    (fun (c : Candidate.t) ->
      Fmt.pf ppf "  CREATE INDEX %a@." Index_def.pp c.Candidate.def)
    r.outcome.Search.config
