(* Re-export: [Par] moved to its own library (lib/par) so the optimizer's
   batched what-if entry point can fan out over domains without depending on
   the advisor.  Advisor-side callers keep their [Par.map] spelling. *)
include Xia_par.Par
