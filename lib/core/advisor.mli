(** The XML Index Advisor: enumerate → generalize → search → recommend. *)

module Catalog = Xia_index.Catalog
module Index_def = Xia_index.Index_def
module Workload = Xia_workload.Workload

type algorithm =
  | Greedy
  | Greedy_heuristics
  | Top_down_lite
  | Top_down_full
  | Dynamic_programming
  | All_index

val algorithm_name : algorithm -> string

(** The five search algorithms (excludes [All_index]). *)
val all_algorithms : algorithm list

type recommendation = {
  algorithm : algorithm;
  outcome : Search.outcome;
  base_cost : float;
  new_cost : float;
  est_speedup : float;
  general_count : int;
  specific_count : int;
  summary : Workload_summary.info;
      (** what the search ran on: statement/cluster counts and whether the
          workload was compressed *)
}

(** Recommended index definitions. *)
val indexes : recommendation -> Index_def.t list

(** Workloads at or above this many statements are compressed when
    [?compress] is left unset. *)
val compress_threshold : int

(** One-shot recommendation for a workload under a disk budget (bytes).
    [domains] bounds the parallel what-if fan-out (default
    [Par.default_domains ()]); the recommendation is identical for every
    value.  [compress] forces workload compression on or off; unset, it
    turns on at {!compress_threshold} statements.  [prune] (default true) is
    forwarded to the prunable searches; recommendations are identical either
    way — only the optimizer-call count changes. *)
val advise :
  ?beta:float ->
  ?prune:bool ->
  ?domains:int ->
  ?compress:bool ->
  Catalog.t ->
  Workload.t ->
  budget:int ->
  algorithm ->
  recommendation

(** A session reuses the candidate set and the benefit-evaluation cache
    across several budgets and algorithms. *)
type session = {
  catalog : Catalog.t;
  workload : Workload.t;  (** the source workload (never the representatives) *)
  candidates : Candidate.set;
  evaluator : Benefit.t;
}

val create_session :
  ?domains:int -> ?compress:bool -> Catalog.t -> Workload.t -> session

val session_advise :
  ?beta:float -> ?prune:bool -> session -> budget:int -> algorithm -> recommendation

(** Estimated (optimizer) cost of a workload under a virtual configuration. *)
val estimated_workload_cost :
  Catalog.t -> Workload.t -> Index_def.t list -> float

(** No-index cost divided by configured cost. *)
val estimated_speedup : Catalog.t -> Workload.t -> Index_def.t list -> float

(** Materialize the configuration, run the workload for real, drop the
    indexes; returns (wall seconds, simulated execution cost, result rows). *)
val execute_workload :
  Catalog.t -> Workload.t -> Index_def.t list -> float * float * int

(** Measured speedup of the configured run over the no-index run.  [`Cost]
    (default) compares the deterministic simulated cost of the work actually
    done; [`Wall] compares elapsed wall-clock time. *)
val actual_speedup :
  ?metric:[ `Cost | `Wall ] -> Catalog.t -> Workload.t -> Index_def.t list -> float

(** Why an existing index should be dropped. *)
type drop_reason =
  | Unused
  | Maintenance_exceeds_benefit of { benefit : float; maintenance : float }

val pp_drop_reason : Format.formatter -> drop_reason -> unit

(** Review the catalog's materialized indexes against a workload and
    recommend drops: indexes no plan uses, or whose maintenance charge
    exceeds the benefit of keeping them. *)
val drop_recommendations :
  Catalog.t -> Workload.t -> (Index_def.t * drop_reason) list

val pp_recommendation : Format.formatter -> recommendation -> unit
