(* What-if analysis: evaluate a user-supplied index configuration over a
   workload through the optimizer's Evaluate Indexes mode, with a
   per-statement breakdown — the advisor-as-a-service counterpart of DB2's
   EVALUATE INDEXES explain mode. *)

module Catalog = Xia_index.Catalog
module Index_def = Xia_index.Index_def
module Index_stats = Xia_index.Index_stats
module Maintenance = Xia_index.Maintenance
module Optimizer = Xia_optimizer.Optimizer
module Plan = Xia_optimizer.Plan
module Workload = Xia_workload.Workload

type statement_report = {
  label : string;
  statement_text : string;
  freq : float;
  base_cost : float;
  new_cost : float;
  speedup : float;
  plan : string;                   (* rendered plan under the configuration *)
  indexes_used : Index_def.t list;
}

type t = {
  defs : Index_def.t list;
  total_size : int;
  statements : statement_report list;
  base_total : float;              (* frequency-weighted *)
  new_total : float;
  est_speedup : float;
  maintenance : float;             (* total mc charge of the configuration *)
  unused : Index_def.t list;       (* defs no statement's plan uses *)
}

let evaluate_configuration catalog (workload : Workload.t) defs =
  let total_size =
    List.fold_left
      (fun acc (d : Index_def.t) ->
        acc + (Index_stats.derive_cached (Catalog.stats catalog d.table) d).Index_stats.size_bytes)
      0 defs
  in
  let base_plans =
    List.map
      (fun (item : Workload.item) ->
        Optimizer.optimize ~virtual_config:[] catalog item.statement)
      workload
  in
  let new_plans =
    List.map
      (fun (item : Workload.item) ->
        Optimizer.optimize ~virtual_config:defs catalog item.statement)
      workload
  in
  let statements =
    List.map2
      (fun (item : Workload.item) (base_plan, new_plan) ->
        {
          label = item.label;
          statement_text = Xia_query.Printer.statement_to_string item.statement;
          freq = item.freq;
          base_cost = base_plan.Plan.total_cost;
          new_cost = new_plan.Plan.total_cost;
          speedup =
            (if new_plan.Plan.total_cost > 0.0 then
               base_plan.Plan.total_cost /. new_plan.Plan.total_cost
             else 1.0);
          plan = Fmt.str "%a" Plan.pp new_plan;
          indexes_used = Plan.indexes_used new_plan;
        })
      workload
      (List.combine base_plans new_plans)
  in
  let weighted f =
    List.fold_left2
      (fun acc (item : Workload.item) r -> acc +. (item.freq *. f r))
      0.0 workload statements
  in
  let base_total = weighted (fun r -> r.base_cost) in
  let new_total = weighted (fun r -> r.new_cost) in
  let maintenance =
    List.fold_left2
      (fun acc (item : Workload.item) base_plan ->
        match item.statement with
        | Xia_query.Ast.Select _ -> acc
        | Xia_query.Ast.Insert _ | Xia_query.Ast.Delete _ | Xia_query.Ast.Update _ ->
            let kind =
              match item.statement with
              | Xia_query.Ast.Insert _ -> Maintenance.Dml_insert
              | Xia_query.Ast.Delete _ -> Maintenance.Dml_delete
              | Xia_query.Ast.Update _ | Xia_query.Ast.Select _ -> Maintenance.Dml_update
            in
            let tables = Xia_query.Ast.tables item.statement in
            List.fold_left
              (fun acc (d : Index_def.t) ->
                if List.mem d.table tables then
                  let stats = Index_stats.derive_cached (Catalog.stats catalog d.table) d in
                  acc
                  +. item.freq
                     *. Maintenance.cost stats kind
                          ~docs_affected:base_plan.Plan.affected_docs
                else acc)
              acc defs)
      0.0 workload base_plans
  in
  let unused =
    List.filter
      (fun d ->
        not (List.exists (fun r -> List.exists (Index_def.same d) r.indexes_used) statements))
      defs
  in
  {
    defs;
    total_size;
    statements;
    base_total;
    new_total;
    est_speedup = (if new_total > 0.0 then base_total /. new_total else 1.0);
    maintenance;
    unused;
  }

let pp ppf t =
  Fmt.pf ppf "Configuration: %d indexes, %d KB estimated@."
    (List.length t.defs) (t.total_size / 1024);
  List.iter (fun d -> Fmt.pf ppf "  %a@." Index_def.pp d) t.defs;
  Fmt.pf ppf "@.%-6s %6s %12s %12s %9s  %s@." "stmt" "freq" "base" "with idx" "speedup"
    "indexes used";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-6s %6.1f %12.0f %12.0f %8.2fx  %s@." r.label r.freq r.base_cost
        r.new_cost r.speedup
        (String.concat ", "
           (List.map (fun (d : Index_def.t) -> d.name) r.indexes_used)))
    t.statements;
  Fmt.pf ppf "@.workload: base %.0f -> %.0f  (%.2fx), maintenance charge %.0f@."
    t.base_total t.new_total t.est_speedup t.maintenance;
  match t.unused with
  | [] -> ()
  | unused ->
      Fmt.pf ppf "WARNING: %d index(es) unused by every plan:@." (List.length unused);
      List.iter (fun (d : Index_def.t) -> Fmt.pf ppf "  %a@." Index_def.pp d) unused
