(* Basic candidate enumeration (Section IV).

   Every workload statement is optimized in the Enumerate Indexes mode; the
   patterns the optimizer matched against the universal virtual index become
   basic candidates, each recording which statements produced it (the seed of
   its affected set). *)

module Index_def = Xia_index.Index_def

let m_statements = lazy (Xia_obs.Metrics.counter "enumeration.statements")
let m_patterns = lazy (Xia_obs.Metrics.counter "enumeration.patterns")

(* Enumerate basic candidates for a workload into a fresh candidate set. *)
let basic_candidates catalog (workload : Xia_workload.Workload.t) =
  let set = Candidate.create_set () in
  Xia_obs.Trace.with_span "enumeration.basic"
    ~args:(fun () ->
      [
        ("statements", string_of_int (List.length workload));
        ("candidates", string_of_int (Candidate.cardinality set));
      ])
    (fun () ->
      List.iteri
        (fun stmt_index (item : Xia_workload.Workload.item) ->
          let patterns =
            Xia_optimizer.Optimizer.enumerate_indexes catalog item.statement
          in
          if Xia_obs.Obs.on () then begin
            Xia_obs.Metrics.incr (Lazy.force m_statements);
            Xia_obs.Metrics.add (Lazy.force m_patterns) (List.length patterns)
          end;
          List.iter
            (fun (table, pattern, dtype) ->
              let def = Index_def.make ~table ~pattern ~dtype () in
              let c = Candidate.add set ~origin:Candidate.Basic def in
              Candidate.mark_affected c stmt_index)
            patterns)
        workload);
  set

(* Full candidate generation: enumerate then generalize. *)
let candidates catalog workload =
  Xia_obs.Trace.with_span "enumeration.candidates" (fun () ->
      let set = basic_candidates catalog workload in
      Generalize.close set;
      set)
