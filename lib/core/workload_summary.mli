(** Workload compression by basic-candidate signature.

    Clusters statements whose Enumerate-Indexes signatures (sorted interned
    (table, pattern, type) triples) coincide — DML additionally by kind and
    target tables — and summarizes the workload as one representative per
    cluster weighted by the cluster's summed frequency.  The benefit/search
    loop runs on the representatives; enumeration over them yields exactly
    the candidate-definition set of the full workload, so only per-statement
    costs are approximated (exactly when clusters are cost-homogeneous).

    Clustering is deterministic and order-insensitive: permuting the input
    permutes clusters (first-occurrence order) but never changes the
    partition. *)

module Workload = Xia_workload.Workload

type t

type info = {
  statements : int;      (** source workload size *)
  cluster_count : int;
  compressed : bool;
}

(** Identity summary: one singleton cluster per statement, weight = its
    frequency.  The raw and compressed paths share all downstream code. *)
val raw : Workload.t -> t

(** Cluster by signature.  Costs one [enumerate_indexes] pass (pure
    statement analysis — no optimizer cost-model calls) over the workload. *)
val compress : Xia_index.Catalog.t -> Workload.t -> t

(** Basic-candidate signature of one statement: sorted interned triple ids.
    Exposed for the differential tests. *)
val signature : Xia_index.Catalog.t -> Xia_query.Ast.statement -> int array

val source : t -> Workload.t

(** One representative item per cluster, in cluster (first-occurrence)
    order.  This is the workload the evaluator and candidate enumeration
    run on. *)
val workload : t -> Workload.t

(** Summed cluster frequencies, aligned with {!workload}. *)
val weights : t -> float array

(** Cluster membership as source-statement index lists, aligned with
    {!workload} (head of each list is the representative). *)
val members : t -> int list list

val statement_count : t -> int
val cluster_count : t -> int
val compression_ratio : t -> float
val is_compressed : t -> bool
val info : t -> info
val pp_info : Format.formatter -> info -> unit
