(* Configuration search (Section VI).

   Five algorithms over the candidate set, all knapsack-style under a disk
   budget:

   - greedy: density-ordered greedy on individual benefits, ignoring index
     interaction (the paper's strawman);
   - greedy with heuristics: additionally tracks which workload patterns are
     already covered (skipping redundant indexes) and admits a general index
     only if it is at least as beneficial as the candidates it generalizes
     and at most (1+β) their total size;
   - top-down lite / full: start from the DAG roots (most general candidates)
     and repeatedly replace the general index with the smallest ΔB/ΔC by its
     children until the configuration fits; lite sums individual benefits,
     full re-evaluates configurations;
   - dynamic programming: exact 0/1 knapsack on individual benefits (optimal
     modulo index interaction). *)

module Int_set = Candidate.Int_set
module Index_def = Xia_index.Index_def
module Obs = Xia_obs.Obs
module Trace = Xia_obs.Trace
module Metrics = Xia_obs.Metrics

(* Per-algorithm event counter, e.g. "search.greedy.admitted".  Looked up by
   name on each use; only reached when observability is on, and the registry
   is tiny, so the lookup is off the disabled path entirely. *)
let count name n =
  if n > 0 && Obs.on () then Metrics.add (Metrics.counter name) n

type outcome = {
  algorithm : string;
  config : Candidate.t list;
  size : int;
  benefit : float;          (* full-evaluation benefit of the final config *)
  optimizer_calls : int;    (* evaluator calls consumed by this search *)
  pruned : int;             (* evaluations skipped by upper-bound pruning *)
  elapsed : float;
}

let beta_default = 0.10

let candidate_size ev c = Benefit.candidate_size ev c

let config_size ev config = Benefit.config_size ev config

let density ev benefit_of c =
  let s = float_of_int (max 1 (candidate_size ev c)) in
  benefit_of c /. s

(* Candidates ordered by decreasing benefit density (deterministic
   tie-breaking on specificity then key).  Densities — and the logical key
   strings used as the final tie-break — are precomputed once per candidate,
   the former in parallel across the evaluator's domains, rather than
   recomputed inside the comparator.  The tie-break stays on the key
   *string*: interned ids are allocation-order-dependent and must never
   decide a user-visible ordering. *)
let by_density ev benefit_of cands =
  let arr = Array.of_list cands in
  let scores = Par.map ~domains:(Benefit.domains ev) (density ev benefit_of) arr in
  let score = Hashtbl.create (Array.length arr) in
  Array.iteri
    (fun i (c : Candidate.t) ->
      Hashtbl.replace score c.id (scores.(i), Index_def.logical_key c.def))
    arr;
  let density_of (c : Candidate.t) = fst (Hashtbl.find score c.id) in
  let key_of (c : Candidate.t) = snd (Hashtbl.find score c.id) in
  List.sort
    (fun a b ->
      match compare (density_of b) (density_of a) with
      | 0 -> (
          match
            compare
              (Xia_xpath.Pattern.specificity b.Candidate.def.Index_def.pattern)
              (Xia_xpath.Pattern.specificity a.Candidate.def.Index_def.pattern)
          with
          | 0 -> String.compare (key_of a) (key_of b)
          | c -> c)
      | c -> c)
    cands

let finalize ~algorithm ev ~calls_before ~pruned_before ~t0 config =
  {
    algorithm;
    config;
    size = config_size ev config;
    benefit = Benefit.benefit ev config;
    optimizer_calls = Benefit.evaluations ev - calls_before;
    pruned = Benefit.pruned_count ev - pruned_before;
    elapsed = Obs.now_s () -. t0;
  }

(* -------- Plain greedy -------- *)

(* Search pool: candidates with positive individual benefit or used by some
   plan in combination. *)
let pool ?prune ev set =
  let useful = Benefit.useful_ids ?prune ev set in
  List.filter (fun (c : Candidate.t) -> Hashtbl.mem useful c.id) (Candidate.to_list set)

(* Lazy-evaluation entry for the pruned greedy (CELF-style): [le_value] is
   the candidate's benefit DENSITY — initialized from its atomic upper bound
   and only refreshed to the exact value when the entry reaches the front of
   the queue.  Since the upper bound dominates the exact benefit, an entry
   whose EXACT density tops the queue is guaranteed to top the exact
   ordering: every other entry's eventual exact density sits at or below its
   current (bounding) value.  Popping therefore reproduces the eager sorted
   order exactly — including ties, because the comparator below is the same
   total order [by_density] sorts with. *)
type celf_entry = {
  le_cand : Candidate.t;
  le_size : int;
  le_spec : int;
  le_key : string;
  le_used : bool;             (* kept by the plan-usage criterion *)
  mutable le_value : float;   (* density; an upper bound until [le_exact] *)
  mutable le_exact : bool;
}

(* Same total order as [by_density]: density desc, specificity desc, logical
   key asc.  Floats compare with the polymorphic [compare], as there. *)
let celf_better a b =
  match compare a.le_value b.le_value with
  | n when n <> 0 -> n > 0
  | _ -> (
      match compare a.le_spec b.le_spec with
      | n when n <> 0 -> n > 0
      | _ -> String.compare a.le_key b.le_key < 0)

let celf_entry ev used_tbl ~value ~exact (c : Candidate.t) =
  {
    le_cand = c;
    le_size = candidate_size ev c;
    le_spec = Xia_xpath.Pattern.specificity c.Candidate.def.Index_def.pattern;
    le_key = Index_def.logical_key c.Candidate.def;
    le_used = Hashtbl.mem used_tbl (Index_def.logical_id c.Candidate.def);
    le_value = value;
    le_exact = exact;
  }

(* Pruned greedy: identical configuration to the eager version (sort the
   whole pool by exact density, admit in order while the budget fits), but
   candidates are only cost-probed when their upper bound forces them to the
   front.  Exactness argument:

   - the queue holds {plan-used} ∪ {upper bound > 0}; everything else has
     individual benefit <= 0.0 -. mc <= 0 and is outside the eager pool, so
     skipping its probe outright cannot change the result (counted pruned);
   - a refreshed entry with exact benefit <= 0 that is not plan-used is
     dropped — the eager pool ([useful_ids]) excludes exactly those;
   - a popped EXACT entry precedes every remaining entry in the eager order
     (see [celf_entry]), so admissions happen in the eager sequence and the
     budget accumulator agrees step for step;
   - once the remaining budget is below the smallest remaining entry size,
     no remaining entry can be admitted and none can change the state
     (rejection keeps the accumulator), so the stale remainder is skipped
     without probing (counted pruned). *)
let greedy_pruned ev set ~budget ~calls_before ~pruned_before ~t0 =
  let used_tbl = Benefit.used_in_plans ev set in
  let entries = ref [] in
  List.iter
    (fun (c : Candidate.t) ->
      let ub = Benefit.atomic_upper_bound ev set c in
      let e = celf_entry ev used_tbl ~value:0.0 ~exact:false c in
      if e.le_used || ub > 0.0 then begin
        e.le_value <- ub /. float_of_int (max 1 e.le_size);
        entries := e :: !entries
      end
      else Benefit.count_pruned ev 1)
    (Candidate.to_list set);
  let config = ref [] in
  let used_bytes = ref 0 in
  let continue_ = ref true in
  while !continue_ && !entries <> [] do
    let min_size =
      List.fold_left (fun acc e -> min acc e.le_size) max_int !entries
    in
    if !used_bytes + min_size > budget then begin
      (* Nothing left can fit; an eager run would probe and reject each. *)
      Benefit.count_pruned ev
        (List.length (List.filter (fun e -> not e.le_exact) !entries));
      count "search.greedy.rejected" (List.length !entries);
      entries := [];
      continue_ := false
    end
    else begin
      let top =
        List.fold_left
          (fun best e -> if celf_better e best then e else best)
          (List.hd !entries) (List.tl !entries)
      in
      if not top.le_exact then begin
        let v = Benefit.individual_benefit ev top.le_cand in
        if v <= 0.0 && not top.le_used then
          (* outside the eager pool: probed (not pruned), then dropped *)
          entries := List.filter (fun e -> e != top) !entries
        else begin
          top.le_value <- v /. float_of_int (max 1 top.le_size);
          top.le_exact <- true
        end
      end
      else begin
        if !used_bytes + top.le_size <= budget then begin
          count "search.greedy.admitted" 1;
          config := top.le_cand :: !config;
          used_bytes := !used_bytes + top.le_size
        end
        else count "search.greedy.rejected" 1;
        entries := List.filter (fun e -> e != top) !entries
      end
    end
  done;
  finalize ~algorithm:"greedy" ev ~calls_before ~pruned_before ~t0
    (List.rev !config)

let greedy ?(prune = true) ev set ~budget =
  Trace.with_span "search.greedy" @@ fun () ->
  let t0 = Obs.now_s () in
  let calls_before = Benefit.evaluations ev in
  let pruned_before = Benefit.pruned_count ev in
  if prune then greedy_pruned ev set ~budget ~calls_before ~pruned_before ~t0
  else begin
    let cands = by_density ev (Benefit.individual_benefit ev) (pool ev set) in
    let config, _ =
      List.fold_left
        (fun (config, used) c ->
          let s = candidate_size ev c in
          if used + s <= budget then begin
            count "search.greedy.admitted" 1;
            (c :: config, used + s)
          end
          else begin
            count "search.greedy.rejected" 1;
            (config, used)
          end)
        ([], 0) cands
    in
    finalize ~algorithm:"greedy" ev ~calls_before ~pruned_before ~t0
      (List.rev config)
  end

(* -------- Greedy with heuristics -------- *)

(* Basic candidates covered by a candidate (for the covered-pattern bitmap). *)
let covered_basics set (c : Candidate.t) =
  List.filter
    (fun (b : Candidate.t) -> Index_def.covers ~general:c.def ~specific:b.def)
    (Candidate.basics set)

let greedy_heuristics ?(beta = beta_default) ev set ~budget =
  Trace.with_span "search.greedy_heuristics" @@ fun () ->
  let t0 = Obs.now_s () in
  let calls_before = Benefit.evaluations ev in
  let pruned_before = Benefit.pruned_count ev in
  let cands = by_density ev (Benefit.individual_benefit ev) (pool ev set) in
  let covered = ref Int_set.empty in
  let config = ref [] in
  let used = ref 0 in
  let cur_benefit = ref 0.0 in
  let in_config (c : Candidate.t) =
    List.exists (fun (x : Candidate.t) -> x.id = c.id) !config
  in
  let admit c s basic_ids =
    count "search.greedy_heuristics.admitted" 1;
    config := c :: !config;
    used := !used + s;
    cur_benefit := Benefit.benefit ev !config;
    covered := Int_set.union !covered basic_ids
  in
  (* Candidates whose value only shows in combination (e.g. the two sides of
     an OR filter, or index-ANDing partners): try the whole interaction group
     at once. *)
  let try_partner_group (c : Candidate.t) =
    let partners =
      List.filter
        (fun (x : Candidate.t) ->
          (not (in_config x))
          && x.id <> c.id
          && not (Int_set.disjoint x.affected c.affected))
        cands
    in
    let group = c :: partners in
    if List.length group >= 2 && List.length group <= 6 then begin
      let group_size =
        List.fold_left (fun acc x -> acc + candidate_size ev x) 0 group
      in
      if !used + group_size <= budget then begin
        let ib = Benefit.benefit ev (group @ !config) in
        if ib > !cur_benefit then
          List.iter
            (fun (x : Candidate.t) ->
              let ids =
                Int_set.of_list
                  (List.map (fun b -> b.Candidate.id) (covered_basics set x))
              in
              admit x (candidate_size ev x) ids)
            group
      end
    end
  in
  List.iter
    (fun (c : Candidate.t) ->
      let s = candidate_size ev c in
      if (not (in_config c)) && !used + s <= budget then begin
        let basics = covered_basics set c in
        let basic_ids = Int_set.of_list (List.map (fun b -> b.Candidate.id) basics) in
        let adds_coverage = not (Int_set.subset basic_ids !covered) in
        if adds_coverage then begin
          if Candidate.is_general c then begin
            (* The general index must beat the indexes it generalizes and
               not blow up the size budget share. *)
            let children = Candidate.children_of set c in
            let children_size =
              List.fold_left (fun acc x -> acc + candidate_size ev x) 0 children
            in
            let ib_general = Benefit.benefit ev (c :: !config) in
            let ib_children = Benefit.benefit ev (children @ !config) in
            if
              ib_general >= ib_children
              && float_of_int s <= (1.0 +. beta) *. float_of_int children_size
              && ib_general > !cur_benefit
            then admit c s basic_ids
          end
          else begin
            let ib = Benefit.benefit ev (c :: !config) in
            if ib > !cur_benefit then admit c s basic_ids
            else if not (Candidate.is_general c) then try_partner_group c
          end
        end
      end)
    cands;
  count "search.greedy_heuristics.rejected"
    (List.length cands - List.length !config);
  finalize ~algorithm:"greedy+heuristics" ev ~calls_before ~pruned_before ~t0
    (List.rev !config)

(* -------- Top-down -------- *)

type td_variant = Lite | Full

let dedup_by_id config =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun (c : Candidate.t) ->
      if Hashtbl.mem seen c.id then false
      else begin
        Hashtbl.add seen c.id ();
        true
      end)
    config

(* Greedy fallback once no general candidate can be replaced: keep the best
   subset of the (now specific) configuration that fits.  Under [prune],
   candidates whose upper bound is non-positive are dropped before the
   density sort without probing: their individual benefit is at most
   [0. -. mc <= 0], so the fold's [> 0.0] admission test can never pass for
   them, and rejected candidates never change the accumulator — the kept
   list is identical. *)
let greedy_fallback ?(prune = false) ev set ~budget config =
  let config =
    if not prune then config
    else
      List.filter
        (fun (c : Candidate.t) ->
          if Benefit.atomic_upper_bound ev set c <= 0.0 then begin
            Benefit.count_pruned ev 1;
            false
          end
          else true)
        config
  in
  let ordered = by_density ev (Benefit.individual_benefit ev) config in
  let kept, _ =
    List.fold_left
      (fun (kept, used) c ->
        let s = candidate_size ev c in
        if used + s <= budget && Benefit.individual_benefit ev c > 0.0 then
          (c :: kept, used + s)
        else (kept, used))
      ([], 0) ordered
  in
  List.rev kept

let top_down ?(variant = Full) ?(prune = true) ev set ~budget =
  let span, counter_prefix =
    match variant with
    | Lite -> ("search.top_down_lite", "search.top_down_lite")
    | Full -> ("search.top_down_full", "search.top_down_full")
  in
  Trace.with_span span @@ fun () ->
  let t0 = Obs.now_s () in
  let calls_before = Benefit.evaluations ev in
  let pruned_before = Benefit.pruned_count ev in
  let algorithm =
    match variant with Lite -> "top-down lite" | Full -> "top-down full"
  in
  (* Force the floors memo from this thread before any parallel round: the
     bound computations inside the fan-out must hit the memo, not race to
     build it (racing would keep results exact but skew the cache-hit
     counters away from the sequential run). *)
  if prune then ignore (Benefit.floors ev set);
  (* Individual benefit with the zero-bound shortcut: a candidate whose
     upper bound is 0 provably has a delta term of exactly +0.0, so its
     benefit is [0.0 -. mc] bit-for-bit — no optimizer probe needed.  Only
     the Lite variant scores with individual benefits; Full re-evaluates
     whole configurations, where the bound says nothing. *)
  let ib_sharp (c : Candidate.t) =
    if prune && Benefit.atomic_upper_bound ev set c <= 0.0 then begin
      Benefit.count_pruned ev 1;
      0.0 -. Benefit.maintenance_charge ev [ c ]
    end
    else Benefit.individual_benefit ev c
  in
  (* Preprocessing: drop candidates with zero or negative benefit that no
     optimizer plan uses (the paper's two removal reasons). *)
  let in_space = Benefit.useful_ids ~prune ev set in
  let space_mem (c : Candidate.t) = Hashtbl.mem in_space c.id in
  let space = List.filter space_mem (Candidate.to_list set) in
  let roots =
    List.filter
      (fun c -> not (List.exists space_mem (Candidate.parents_of set c)))
      space
  in
  let children_in_space c =
    List.filter space_mem (Candidate.children_of set c)
  in
  let config = ref (dedup_by_id roots) in
  let guard = ref (4 * max 1 (Candidate.cardinality set)) in
  let continue_ = ref true in
  while !continue_ && config_size ev !config > budget && !guard > 0 do
    decr guard;
    (* Snapshot the configuration for the round: the workers below run on
       other domains and must not read the ref cell directly. *)
    let current = !config in
    let replaceable =
      List.filter (fun c -> children_in_space c <> []) current
    in
    (* Score each replaceable general index by ΔB/ΔC.  The scores are
       independent (the configuration is fixed for the round), so they are
       computed in parallel; order is preserved by the positional map. *)
    let scored =
      Par.map_list ~domains:(Benefit.domains ev)
        (fun (g : Candidate.t) ->
          let children =
            List.filter
              (fun (ch : Candidate.t) ->
                not (List.exists (fun (x : Candidate.t) -> x.id = ch.id) current))
              (children_in_space g)
          in
          let delta_c =
            candidate_size ev g
            - List.fold_left (fun acc c -> acc + candidate_size ev c) 0 children
          in
          if delta_c <= 0 then None
          else
            let delta_b =
              match variant with
              | Lite ->
                  (* Already inside the fan-out's task: domains:1 keeps the
                     children sum a plain (deterministic) sequential fold. *)
                  ib_sharp g -. Par.sum_list ~domains:1 ib_sharp children
              | Full ->
                  let rest =
                    List.filter (fun (x : Candidate.t) -> x.id <> g.id) current
                  in
                  Benefit.benefit ev (g :: rest) -. Benefit.benefit ev (children @ rest)
            in
            Some (g, children, delta_b, delta_c))
        replaceable
      |> List.filter_map Fun.id
    in
    count (counter_prefix ^ ".rounds") 1;
    match scored with
    | [] -> continue_ := false
    | _ ->
        count (counter_prefix ^ ".replacements") 1;
        let ratio (_, _, db, dc) = db /. float_of_int dc in
        let best =
          List.fold_left
            (fun best x ->
              let r = ratio x and rb = ratio best in
              if r < rb then x
              else if Float.equal r rb then
                (* ties: largest ΔC *)
                let (_, _, _, dc) = x and (_, _, _, dcb) = best in
                if dc > dcb then x else best
              else best)
            (List.hd scored) (List.tl scored)
        in
        let g, children, _, _ = best in
        config :=
          dedup_by_id
            (children @ List.filter (fun (x : Candidate.t) -> x.id <> g.id) !config)
  done;
  let config =
    if config_size ev !config > budget then
      greedy_fallback ~prune ev set ~budget !config
    else !config
  in
  finalize ~algorithm ev ~calls_before ~pruned_before ~t0 config

let top_down_lite ?prune ev set ~budget = top_down ~variant:Lite ?prune ev set ~budget
let top_down_full ?prune ev set ~budget = top_down ~variant:Full ?prune ev set ~budget

(* -------- Dynamic programming (exact knapsack, no interaction) -------- *)

let dynamic_programming ev set ~budget =
  Trace.with_span "search.dynamic_programming" @@ fun () ->
  let t0 = Obs.now_s () in
  let calls_before = Benefit.evaluations ev in
  let pruned_before = Benefit.pruned_count ev in
  let items =
    List.filter (fun c -> candidate_size ev c <= budget) (pool ev set)
  in
  let items = Array.of_list items in
  let n = Array.length items in
  if n = 0 then
    finalize ~algorithm:"dynamic programming" ev ~calls_before ~pruned_before
      ~t0 []
  else begin
    (* Size granularity keeps the table small; round item sizes UP so the
       budget is never exceeded.  [units] is clamped to at least 1: every
       item here fits the budget, yet [budget / unit] is 0 whenever the
       budget is below one granularity unit, which used to make the knapsack
       capacity zero and silently return the empty configuration. *)
    let unit = max Xia_storage.Cost_params.page_size (budget / 2048) in
    let units = max 1 (budget / unit) in
    let w_of i = (candidate_size ev items.(i) + unit - 1) / unit in
    let values = Par.map ~domains:(Benefit.domains ev) (Benefit.individual_benefit ev) items in
    let v_of i = values.(i) in
    let value = Array.make (units + 1) 0.0 in
    let take = Array.make_matrix n (units + 1) false in
    if Obs.on () then begin
      (* Table-fill work: item i touches capacities w_of i .. units. *)
      let steps = ref 0 in
      for i = 0 to n - 1 do
        steps := !steps + max 0 (units - w_of i + 1)
      done;
      count "search.dynamic_programming.knapsack_steps" !steps
    end;
    for i = 0 to n - 1 do
      let w = w_of i and v = v_of i in
      for cap = units downto w do
        let with_item = value.(cap - w) +. v in
        if with_item > value.(cap) then begin
          value.(cap) <- with_item;
          take.(i).(cap) <- true
        end
      done
    done;
    (* Reconstruct: walk items backwards. *)
    let config = ref [] in
    let cap = ref units in
    for i = n - 1 downto 0 do
      if take.(i).(!cap) then begin
        config := items.(i) :: !config;
        cap := !cap - w_of i
      end
    done;
    count "search.dynamic_programming.admitted" (List.length !config);
    count "search.dynamic_programming.rejected" (n - List.length !config);
    finalize ~algorithm:"dynamic programming" ev ~calls_before ~pruned_before
      ~t0 !config
  end

(* -------- All-Index configuration -------- *)

(* Indexes for every indexable XPath expression in the workload: all basic
   candidates.  The best possible configuration for a query-only workload. *)
let all_index ev set =
  Trace.with_span "search.all_index" @@ fun () ->
  let t0 = Obs.now_s () in
  let calls_before = Benefit.evaluations ev in
  let pruned_before = Benefit.pruned_count ev in
  finalize ~algorithm:"all index" ev ~calls_before ~pruned_before ~t0
    (Candidate.basics set)

let pp_outcome ppf o =
  Fmt.pf ppf "%-18s size=%8d benefit=%12.1f calls=%5d time=%.3fs indexes=%d" o.algorithm
    o.size o.benefit o.optimizer_calls o.elapsed (List.length o.config)
