(** Re-export of {!Xia_par.Par}, the deterministic domain work pool (moved to
    its own library so [lib/optimizer] can use it too).  See [lib/par/par.mli]
    for the full contract. *)

include module type of Xia_par.Par
